/// \file trace_inspect.cpp
/// Command-line trace utility: generate a trace from any built-in proxy
/// app, save it as .lstrace, reload, validate, and summarize — the
/// round-trip a user would run on externally produced traces.
///
///   ./trace_inspect --app=jacobi --out=/tmp/jacobi.lstrace
///   ./trace_inspect --in=/tmp/jacobi.lstrace
///   ./trace_inspect --in=/tmp/damaged.lstrace --recover
///
/// --recover loads a damaged .lstrace in best-effort mode (see
/// docs/ROBUSTNESS.md): garbled lines are skipped, truncation tolerated,
/// and the salvage repaired; the recovery report is printed and the
/// analysis runs on whatever survived.

#include <algorithm>
#include <cstdio>
#include <exception>
#include <fstream>

#include "apps/jacobi2d.hpp"
#include "apps/lassen.hpp"
#include "apps/lulesh.hpp"
#include "apps/mergetree.hpp"
#include "apps/nasbt.hpp"
#include "apps/pdes.hpp"
#include "metrics/concurrency.hpp"
#include "metrics/efficiency.hpp"
#include "order/io.hpp"
#include "order/validate.hpp"
#include "order/stats.hpp"
#include "order/stepping.hpp"
#include "trace/io.hpp"
#include "trace/validate.hpp"
#include "util/flags.hpp"
#include "util/obs_flags.hpp"
#include "util/table.hpp"
#include "vis/html.hpp"

namespace {

/// grid > 0 overrides the app's chare/rank grid (jacobi & lassen:
/// chares per side; lulesh: nx=ny=nz; nasbt: rank grid); iterations > 0
/// overrides the iteration/window count. 0 keeps the app default.
logstruct::trace::Trace generate(const std::string& app, std::uint64_t seed,
                                 std::int32_t grid,
                                 std::int32_t iterations) {
  using namespace logstruct::apps;
  if (app == "jacobi") {
    Jacobi2DConfig cfg;
    cfg.seed = seed;
    if (grid > 0) cfg.chares_x = cfg.chares_y = grid;
    if (iterations > 0) cfg.iterations = iterations;
    return run_jacobi2d(cfg);
  }
  if (app == "lulesh") {
    LuleshConfig cfg;
    cfg.seed = seed;
    if (grid > 0) cfg.nx = cfg.ny = cfg.nz = grid;
    if (iterations > 0) cfg.iterations = iterations;
    return run_lulesh_charm(cfg);
  }
  if (app == "lulesh-mpi") {
    LuleshConfig cfg;
    cfg.seed = seed;
    if (grid > 0) cfg.nx = cfg.ny = cfg.nz = grid;
    if (iterations > 0) cfg.iterations = iterations;
    return run_lulesh_mpi(cfg);
  }
  if (app == "lassen") {
    LassenConfig cfg;
    cfg.seed = seed;
    if (grid > 0) cfg.chares_x = cfg.chares_y = grid;
    if (iterations > 0) cfg.iterations = iterations;
    return run_lassen_charm(cfg);
  }
  if (app == "lassen-mpi") {
    LassenConfig cfg;
    cfg.seed = seed;
    if (grid > 0) cfg.chares_x = cfg.chares_y = grid;
    if (iterations > 0) cfg.iterations = iterations;
    return run_lassen_mpi(cfg);
  }
  if (app == "pdes") {
    PdesConfig cfg;
    cfg.seed = seed;
    if (grid > 0) cfg.num_chares = grid;
    if (iterations > 0) cfg.windows = iterations;
    return run_pdes(cfg);
  }
  if (app == "mergetree") {
    MergeTreeConfig cfg;
    cfg.num_ranks = 64;
    cfg.seed = seed;
    if (grid > 0) cfg.num_ranks = grid;
    return run_mergetree_mpi(cfg);
  }
  if (app == "nasbt") {
    NasBtConfig cfg;
    cfg.seed = seed;
    if (grid > 0) cfg.grid = grid;
    if (iterations > 0) cfg.iterations = iterations;
    return run_nasbt_mpi(cfg);
  }
  std::fprintf(stderr,
               "unknown app '%s' (jacobi, lulesh, lulesh-mpi, lassen, "
               "lassen-mpi, pdes, mergetree, nasbt)\n",
               app.c_str());
  std::exit(1);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace logstruct;

  util::Flags flags;
  flags.define_string("app", "jacobi", "built-in app to trace");
  flags.define_string("in", "", "load this .lstrace instead of simulating");
  flags.define_bool("recover", false,
                    "tolerate a malformed --in file: skip garbled lines, "
                    "repair the salvage, and report what was fixed");
  flags.define_string("report-out", "",
                      "write the recovery report (JSON) here");
  flags.define_string("out", "", "save the trace here");
  flags.define_int("seed", 1, "simulation seed");
  flags.define_int("grid", 0,
                   "override the app's chare/rank grid size (0 = default)");
  flags.define_int("iterations", 0,
                   "override the app's iteration count (0 = default)");
  flags.define_int("repeat", 1,
                   "run the extraction pipeline this many times — keeps "
                   "the process alive so a live /metrics scrape "
                   "(--obs-port) lands mid-run");
  flags.define_bool("mpi", false, "analyze with the MPI-model options");
  flags.define_string("html", "",
                      "write an interactive structure viewer here");
  flags.define_string("structure-out", "",
                      "archive the computed structure (.lstruct) here");
  flags.define_string("structure-in", "",
                      "load an archived structure instead of recomputing");
  util::define_obs_flags(flags);
  if (!flags.parse(argc, argv)) return 1;
  util::apply_obs_flags(flags);

  trace::Trace t;
  const std::string in = flags.get_string("in");
  std::string app = flags.get_string("app");
  trace::RecoveryReport report;
  if (!in.empty() && flags.get_bool("recover")) {
    t = trace::load_trace(in, trace::ReadOptions::recovering(), report);
    report.export_counters();
    if (report.empty()) {
      std::printf("loaded %s (clean)\n", in.c_str());
    } else {
      std::printf("loaded %s with recovery:\n%s", in.c_str(),
                  report.to_string().c_str());
    }
    const std::string rout = flags.get_string("report-out");
    if (!rout.empty()) {
      std::ofstream rf(rout);
      if (rf) rf << report.to_json() << '\n';
      if (!rf) {
        std::fprintf(stderr, "failed to write %s\n", rout.c_str());
        return 3;
      }
      std::printf("wrote recovery report: %s\n", rout.c_str());
    }
    if (report.fatal()) {
      std::fprintf(stderr, "nothing salvageable in %s\n", in.c_str());
      return 2;
    }
  } else if (!in.empty()) {
    try {
      t = trace::load_trace(in);
    } catch (const std::exception& e) {
      std::fprintf(stderr, "failed to load %s: %s (try --recover)\n",
                   in.c_str(), e.what());
      return 2;
    }
    std::printf("loaded %s\n", in.c_str());
  } else {
    t = generate(app, static_cast<std::uint64_t>(flags.get_int("seed")),
                 static_cast<std::int32_t>(flags.get_int("grid")),
                 static_cast<std::int32_t>(flags.get_int("iterations")));
    std::printf("simulated %s\n", app.c_str());
  }

  auto problems = trace::validate(t);
  if (!problems.empty()) {
    std::printf("trace has %zu problems:\n", problems.size());
    for (std::size_t i = 0; i < problems.size() && i < 10; ++i)
      std::printf("  %s\n", problems[i].c_str());
    return 2;
  }
  std::puts("trace validates cleanly");

  bool mpi_mode = flags.get_bool("mpi") || app.find("mpi") !=
                                               std::string::npos ||
                  app == "mergetree" || app == "nasbt";
  order::Options opts =
      mpi_mode ? order::Options::mpi() : order::Options::charm();
  order::LogicalStructure ls;
  const std::string sin = flags.get_string("structure-in");
  if (!sin.empty()) {
    ls = order::load_structure(sin, t);
    auto sp = order::validate_structure(t, ls);
    if (!sp.empty()) {
      std::fprintf(stderr, "archived structure invalid: %s\n",
                   sp.front().c_str());
      return 4;
    }
    std::printf("loaded structure: %s\n", sin.c_str());
  } else {
    const std::int64_t repeat =
        std::max<std::int64_t>(1, flags.get_int("repeat"));
    for (std::int64_t r = 0; r < repeat; ++r)
      ls = order::extract_structure(t, opts);
  }
  order::StructureStats stats = order::compute_stats(t, ls);

  util::TablePrinter table({"property", "value"});
  table.row().add("events").add(static_cast<std::int64_t>(t.num_events()));
  table.row().add("serial blocks").add(
      static_cast<std::int64_t>(t.num_blocks()));
  table.row().add("chares").add(static_cast<std::int64_t>(t.num_chares()));
  table.row().add("processors").add(
      static_cast<std::int64_t>(t.num_procs()));
  table.row().add("trace end (us)").add(t.end_time() / 1000.0);
  table.row().add("phases").add(static_cast<std::int64_t>(stats.num_phases));
  table.row().add("  application").add(
      static_cast<std::int64_t>(stats.app_phases));
  table.row().add("  runtime").add(
      static_cast<std::int64_t>(stats.runtime_phases));
  table.row().add("global steps").add(
      static_cast<std::int64_t>(stats.width));
  table.row().add("avg events/occupied step").add(stats.avg_occupancy);
  table.print();

  const std::string sout = flags.get_string("structure-out");
  if (!sout.empty()) {
    if (order::save_structure(ls, sout))
      std::printf("saved structure: %s\n", sout.c_str());
  }

  const std::string html = flags.get_string("html");
  if (!html.empty()) {
    vis::HtmlOptions hopts;
    hopts.title = app + " logical structure";
    if (vis::save_html(t, ls, html, hopts))
      std::printf("wrote viewer: %s\n", html.c_str());
  }

  const std::string out = flags.get_string("out");
  if (!out.empty()) {
    if (!trace::save_trace(t, out)) {
      std::fprintf(stderr, "failed to write %s\n", out.c_str());
      return 3;
    }
    std::printf("saved %s\n", out.c_str());
  }
  if (!metrics::write_efficiency_report(flags, t, ls, argv[0])) return 3;
  if (!metrics::write_concurrency_report(flags, t, ls, argv[0])) return 3;
  util::finish_obs(flags, argv[0]);
  return 0;
}
