/// \file quickstart.cpp
/// Five-minute tour of the library:
///   1. simulate a Charm++-model application (Jacobi 2D),
///   2. recover its logical structure from the event trace,
///   3. print the physical-time and logical views side by side,
///   4. compute the paper's performance metrics over the structure.
///
///   ./quickstart [--chares-x=4 --chares-y=4 --pes=4 --iterations=2
///                 --seed=1 --no-reorder]

#include <cstdio>

#include "apps/jacobi2d.hpp"
#include "metrics/duration.hpp"
#include "metrics/idle.hpp"
#include "metrics/imbalance.hpp"
#include "order/stats.hpp"
#include "order/stepping.hpp"
#include "trace/validate.hpp"
#include "util/flags.hpp"
#include "util/obs_flags.hpp"
#include "util/table.hpp"
#include "vis/ascii.hpp"
#include "vis/cluster.hpp"
#include "vis/html.hpp"

int main(int argc, char** argv) {
  using namespace logstruct;

  util::Flags flags;
  flags.define_int("chares-x", 4, "chare grid width");
  flags.define_int("chares-y", 4, "chare grid height");
  flags.define_int("pes", 4, "processing elements");
  flags.define_int("iterations", 2, "Jacobi iterations");
  flags.define_int("seed", 1, "simulation seed");
  flags.define_bool("reorder", true, "reorder events (Sec. 3.2.1)");
  flags.define_bool("cluster", false,
                    "collapse identical chare timelines into classes");
  flags.define_string("html", "", "write the interactive viewer here");
  util::define_obs_flags(flags);
  if (!flags.parse(argc, argv)) return 1;
  util::apply_obs_flags(flags);

  // 1. Simulate.
  apps::Jacobi2DConfig cfg;
  cfg.chares_x = static_cast<std::int32_t>(flags.get_int("chares-x"));
  cfg.chares_y = static_cast<std::int32_t>(flags.get_int("chares-y"));
  cfg.num_pes = static_cast<std::int32_t>(flags.get_int("pes"));
  cfg.iterations = static_cast<std::int32_t>(flags.get_int("iterations"));
  cfg.seed = static_cast<std::uint64_t>(flags.get_int("seed"));
  trace::Trace t = apps::run_jacobi2d(cfg);
  if (!trace::validate_cli(flags, t, "jacobi2d")) return 2;
  std::printf("simulated Jacobi 2D: %d chares on %d PEs, %d events in %d "
              "serial blocks\n\n",
              cfg.chares_x * cfg.chares_y, cfg.num_pes, t.num_events(),
              t.num_blocks());

  // 2. Recover logical structure.
  order::Options opts = flags.get_bool("reorder")
                            ? order::Options::charm()
                            : order::Options::charm_no_reorder();
  order::LogicalStructure ls = order::extract_structure(t, opts);
  order::StructureStats stats = order::compute_stats(t, ls);
  std::printf("recovered %d phases (%d application, %d runtime), "
              "%d global steps\n\n",
              stats.num_phases, stats.app_phases, stats.runtime_phases,
              stats.width);

  // 3. Views.
  std::fputs(vis::render_physical_ascii(t, ls).c_str(), stdout);
  std::fputs("\n", stdout);
  if (flags.get_bool("cluster")) {
    std::fputs(vis::render_clustered_ascii(t, ls).c_str(), stdout);
  } else {
    std::fputs(vis::render_logical_ascii(t, ls).c_str(), stdout);
  }

  // 4. Metrics.
  metrics::IdleExperienced ie = metrics::idle_experienced(t);
  metrics::DifferentialDuration dd = metrics::differential_duration(t, ls);
  metrics::Imbalance imb = metrics::imbalance(t, ls);

  trace::TimeNs total_ie = 0;
  for (auto v : ie.per_event) total_ie += v;
  trace::TimeNs max_imb = 0;
  for (auto v : imb.per_phase) max_imb = std::max(max_imb, v);

  util::TablePrinter table({"metric", "value"});
  table.row().add("total idle experienced (us)").add(total_ie / 1000.0);
  table.row().add("max differential duration (us)").add(dd.max_value /
                                                        1000.0);
  if (dd.max_event != trace::kNone) {
    table.row()
        .add("  ...at chare")
        .add(t.chare(t.event(dd.max_event).chare).name);
    table.row()
        .add("  ...at global step")
        .add(static_cast<std::int64_t>(
            ls.global_step[static_cast<std::size_t>(dd.max_event)]));
  }
  table.row().add("max phase imbalance (us)").add(max_imb / 1000.0);
  std::fputs("\n", stdout);
  table.print();

  const std::string html = flags.get_string("html");
  if (!html.empty()) {
    vis::HtmlOptions hopts;
    hopts.title = "Jacobi 2D logical structure";
    hopts.metric.assign(dd.per_event.begin(), dd.per_event.end());
    hopts.metric_name = "differential duration (ns)";
    if (vis::save_html(t, ls, html, hopts))
      std::printf("wrote viewer: %s\n", html.c_str());
  }
  util::finish_obs(flags, argv[0]);
  return 0;
}
