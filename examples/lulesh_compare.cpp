/// \file lulesh_compare.cpp
/// Reproduce the paper's §6.1 comparison: the logical structure of LULESH
/// computed from an MPI trace and from a Charm++ trace correspond — MPI
/// shows setup + {3 p2p phases + allreduce} per iteration, Charm++ shows
/// setup + {2 p2p phases + runtime reduction} per iteration.
///
///   ./lulesh_compare [--iterations=4 --svg-prefix=lulesh]

#include <cstdio>
#include <fstream>

#include "apps/lulesh.hpp"
#include "order/stats.hpp"
#include "order/stepping.hpp"
#include "trace/validate.hpp"
#include "util/flags.hpp"
#include "util/obs_flags.hpp"
#include "util/table.hpp"
#include "vis/ascii.hpp"
#include "vis/svg.hpp"

namespace {

void report(const char* label, const logstruct::trace::Trace& t,
            const logstruct::order::LogicalStructure& ls) {
  using namespace logstruct;
  std::printf("== %s ==\n", label);
  util::TablePrinter table(
      {"phase", "kind", "events", "chares", "offset", "height"});
  for (const auto& row : order::phase_table(t, ls)) {
    table.row()
        .add(static_cast<std::int64_t>(row.id))
        .add(row.runtime ? "runtime" : "app")
        .add(static_cast<std::int64_t>(row.events))
        .add(static_cast<std::int64_t>(row.chares))
        .add(static_cast<std::int64_t>(row.offset))
        .add(static_cast<std::int64_t>(row.height));
  }
  table.print();
  std::fputs(vis::render_logical_ascii(t, ls).c_str(), stdout);
  std::fputs("\n", stdout);
}

void save_svg(const std::string& path, const std::string& svg) {
  std::ofstream f(path);
  f << svg;
  if (f) std::printf("wrote %s\n", path.c_str());
}

}  // namespace

int main(int argc, char** argv) {
  using namespace logstruct;

  util::Flags flags;
  flags.define_int("iterations", 4, "LULESH iterations");
  flags.define_string("svg-prefix", "", "write <prefix>_{mpi,charm}.svg");
  util::define_obs_flags(flags);
  if (!flags.parse(argc, argv)) return 1;
  util::apply_obs_flags(flags);

  apps::LuleshConfig cfg;  // 2x2x2 sub-domains
  cfg.iterations = static_cast<std::int32_t>(flags.get_int("iterations"));

  trace::Trace mpi = apps::run_lulesh_mpi(cfg);
  if (!trace::validate_cli(flags, mpi, "lulesh/mpi")) return 2;
  order::LogicalStructure mpi_ls =
      order::extract_structure(mpi, order::Options::mpi_baseline13());
  report("LULESH / MPI (8 ranks)", mpi, mpi_ls);

  trace::Trace charm = apps::run_lulesh_charm(cfg);
  if (!trace::validate_cli(flags, charm, "lulesh/charm")) return 2;
  order::LogicalStructure charm_ls =
      order::extract_structure(charm, order::Options::charm());
  report("LULESH / Charm++ (8 chares, 2 PEs)", charm, charm_ls);

  const std::string prefix = flags.get_string("svg-prefix");
  if (!prefix.empty()) {
    save_svg(prefix + "_mpi.svg", vis::render_logical_svg(mpi, mpi_ls));
    save_svg(prefix + "_charm.svg",
             vis::render_logical_svg(charm, charm_ls));
  }
  util::finish_obs(flags, argv[0]);
  return 0;
}
