/// \file efficiency_compare.cpp
/// The paper's attribution claim made runnable: the same POP efficiency
/// metrics computed over wall-clock time bins and over recovered phases,
/// side by side. A persistent hotspot chare drags one phase per
/// iteration; phase windows pin the load imbalance to exactly those
/// compute phases, while equal-width bins smear it across slices that
/// mix compute with reductions.
///
///   ./efficiency_compare [--iterations=4 --slow-chare=5 --bins=0]
///
/// Exits nonzero if the two slicings agree (identical summaries would
/// mean recovered structure adds nothing over wall-clock slicing) or if
/// the POP identities parallel = balance x comm and comm = serialization
/// x transfer fail on any window, so the ctest entry enforces both the
/// claim and the algebra. --eff-json writes both suites as a
/// logstruct-effmetrics/v1 artifact (docs/METRICS.md).

#include <cmath>
#include <cstdio>
#include <string>

#include "apps/jacobi2d.hpp"
#include "metrics/efficiency.hpp"
#include "metrics/windows.hpp"
#include "order/stepping.hpp"
#include "trace/validate.hpp"
#include "util/flags.hpp"
#include "util/obs_flags.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace logstruct;

  util::Flags flags;
  flags.define_int("iterations", 4, "Jacobi iterations");
  flags.define_int("seed", 1, "simulation seed");
  flags.define_int("slow-chare", 5, "persistent hotspot chare (-1 off)");
  flags.define_int("bins", 0,
                   "wall-clock bins to compare against (0 = one per "
                   "recovered phase)");
  util::define_obs_flags(flags);
  if (!flags.parse(argc, argv)) return 1;
  util::apply_obs_flags(flags);

  apps::Jacobi2DConfig cfg;
  cfg.chares_x = 4;
  cfg.chares_y = 4;
  cfg.num_pes = 8;
  cfg.iterations = static_cast<std::int32_t>(flags.get_int("iterations"));
  cfg.seed = static_cast<std::uint64_t>(flags.get_int("seed"));
  cfg.slow_chare = static_cast<std::int32_t>(flags.get_int("slow-chare"));
  cfg.slow_every_iteration = cfg.slow_chare >= 0;
  cfg.slow_factor = 4.0;
  trace::Trace t = apps::run_jacobi2d(cfg);
  if (!trace::validate_cli(flags, t, "jacobi2d")) return 2;
  order::LogicalStructure ls =
      order::extract_structure(t, order::Options::charm());

  std::int64_t bins = flags.get_int("bins");
  if (bins <= 0) bins = ls.num_phases() > 0 ? ls.num_phases() : 1;
  const metrics::WindowSet bin_set =
      metrics::WindowSet::time_bins(t, static_cast<std::int32_t>(bins));
  const metrics::WindowSet phase_set = metrics::WindowSet::phases(t, ls.phases);

  const metrics::EfficiencySuite by_bin = metrics::efficiency_suite(t, bin_set);
  const metrics::EfficiencySuite by_phase =
      metrics::efficiency_suite(t, phase_set);

  auto print_suite = [](const char* title,
                        const metrics::EfficiencySuite& s) {
    std::printf("%s (%d windows, %d degraded):\n", title, s.num_windows(),
                s.degraded_windows);
    util::TablePrinter table({"window", "span (us)", "events", "parallel",
                              "load bal", "comm", "serial", "transfer"});
    for (std::int32_t w = 0; w < s.num_windows(); ++w) {
      const auto wz = static_cast<std::size_t>(w);
      std::string name = s.kind == metrics::WindowKind::Phase
                             ? "phase " + std::to_string(s.windows[wz].phase)
                             : "bin " + std::to_string(w);
      if (s.loads.events[wz] == 0) name += " (empty)";
      table.row()
          .add(name)
          .add(static_cast<double>(s.windows[wz].span()) / 1000.0, 1)
          .add(static_cast<std::int64_t>(s.loads.events[wz]))
          .add(s.parallel.per_window[wz], 3)
          .add(s.balance.per_window[wz], 3)
          .add(s.communication.per_window[wz], 3)
          .add(s.sertrans.serialization[wz], 3)
          .add(s.sertrans.transfer[wz], 3);
    }
    table.print();
    std::printf(
        "  worst load balance %.3f (window %d), mean parallel %.3f\n\n",
        s.balance.summary.min, s.balance.summary.min_window,
        s.parallel.summary.mean);
  };

  std::printf("jacobi2d, %d iterations, hotspot chare %d\n\n",
              cfg.iterations, cfg.slow_chare);
  print_suite("wall-clock bins", by_bin);
  print_suite("recovered phases", by_phase);

  metrics::write_efficiency_report(flags, t, ls, argv[0]);
  util::finish_obs(flags, argv[0]);

  // The POP identities must hold on every non-empty window of both
  // suites (up to clamping and one rounding step).
  for (const metrics::EfficiencySuite* s : {&by_bin, &by_phase}) {
    for (std::int32_t w = 0; w < s->num_windows(); ++w) {
      const auto wz = static_cast<std::size_t>(w);
      if (s->loads.events[wz] == 0) continue;
      // The identities hold before clamping to [0, 1]; a factor that sits
      // exactly at 1.0 may have been clamped, so only unclamped windows
      // are checkable.
      const double lb_comm =
          s->balance.per_window[wz] * s->communication.per_window[wz];
      const double ser_tr = s->sertrans.serialization[wz] *
                            s->sertrans.transfer[wz];
      const bool comm_clamped = s->communication.per_window[wz] >= 1.0;
      const bool ser_clamped = s->sertrans.serialization[wz] >= 1.0 ||
                               s->sertrans.transfer[wz] >= 1.0;
      if ((!comm_clamped &&
           std::fabs(s->parallel.per_window[wz] - lb_comm) > 1e-9) ||
          (!ser_clamped &&
           std::fabs(s->communication.per_window[wz] - ser_tr) > 1e-9)) {
        std::fprintf(stderr, "FAIL: POP identity broken in window %d\n", w);
        return 3;
      }
    }
  }

  // The claim this example exists to demonstrate: slicing by the
  // recovered phases yields materially different efficiency numbers
  // than equal-width wall-clock bins — a bin averages the imbalanced
  // compute phase with its reduction neighbors, a phase window doesn't.
  const double d_parallel =
      std::fabs(by_phase.parallel.summary.mean - by_bin.parallel.summary.mean);
  const double d_balance =
      std::fabs(by_phase.balance.summary.min - by_bin.balance.summary.min);
  if (d_parallel < 1e-3 && d_balance < 1e-3) {
    std::fprintf(stderr,
                 "FAIL: phase slicing indistinguishable from bins "
                 "(d_parallel=%.6f d_balance=%.6f)\n",
                 d_parallel, d_balance);
    return 3;
  }
  std::printf("phase slicing vs bins: mean parallel %.3f vs %.3f, worst "
              "load balance %.3f vs %.3f\n",
              by_phase.parallel.summary.mean, by_bin.parallel.summary.mean,
              by_phase.balance.summary.min, by_bin.balance.summary.min);
  return 0;
}
