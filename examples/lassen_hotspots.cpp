/// \file lassen_hotspots.cpp
/// Reproduce the paper's §6.2 analysis on LASSEN: color the logical
/// structure by differential duration, find the recurring long-duration
/// events, and compare the 8-chare and 64-chare decompositions (the finer
/// one splits the wavefront, shrinking both differential duration and
/// imbalance).
///
///   ./lassen_hotspots [--iterations=10 --svg-prefix=lassen]

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <map>

#include "apps/lassen.hpp"
#include "metrics/critical_path.hpp"
#include "metrics/duration.hpp"
#include "metrics/imbalance.hpp"
#include "metrics/profile.hpp"
#include "order/stepping.hpp"
#include "util/flags.hpp"
#include "util/obs_flags.hpp"
#include "util/table.hpp"
#include "vis/svg.hpp"

namespace {

struct RunSummary {
  logstruct::trace::TimeNs max_diff_dur = 0;
  logstruct::trace::TimeNs total_imbalance = 0;  ///< summed over phases
  /// chare index -> how many iterations it held the per-iteration maximum
  /// differential duration.
  std::map<std::int32_t, int> hot_chares;
};

RunSummary analyze(const logstruct::apps::LassenConfig& cfg,
                   const std::string& svg_path) {
  using namespace logstruct;
  trace::Trace t = apps::run_lassen_charm(cfg);
  order::LogicalStructure ls =
      order::extract_structure(t, order::Options::charm());
  metrics::DifferentialDuration dd = metrics::differential_duration(t, ls);
  metrics::Imbalance imb = metrics::imbalance(t, ls);

  RunSummary s;
  s.max_diff_dur = dd.max_value;
  for (auto v : imb.per_phase) s.total_imbalance += v;

  // Per application phase, the chare with the largest differential
  // duration — the paper's "same chare and role each iteration" pattern.
  std::map<std::int32_t, std::pair<trace::TimeNs, std::int32_t>> per_phase;
  for (trace::EventId e = 0; e < t.num_events(); ++e) {
    std::int32_t ph = ls.phases.phase_of_event[static_cast<std::size_t>(e)];
    if (ls.phases.runtime[static_cast<std::size_t>(ph)]) continue;
    auto& best = per_phase[ph];
    if (dd.per_event[static_cast<std::size_t>(e)] > best.first) {
      best = {dd.per_event[static_cast<std::size_t>(e)],
              t.chare(t.event(e).chare).index};
    }
  }
  for (const auto& [ph, best] : per_phase) {
    if (best.first > 0) ++s.hot_chares[best.second];
  }

  if (!svg_path.empty()) {
    vis::SvgOptions opts;
    opts.values.assign(dd.per_event.begin(), dd.per_event.end());
    std::ofstream f(svg_path);
    f << vis::render_logical_svg(t, ls, opts);
    if (f) std::printf("wrote %s\n", svg_path.c_str());
  }
  return s;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace logstruct;

  util::Flags flags;
  flags.define_int("iterations", 10, "LASSEN iterations");
  flags.define_string("svg-prefix", "", "write <prefix>_{8,64}.svg");
  util::define_obs_flags(flags);
  if (!flags.parse(argc, argv)) return 1;
  util::apply_obs_flags(flags);

  apps::LassenConfig coarse;  // 4x2 = 8 chares
  coarse.iterations = static_cast<std::int32_t>(flags.get_int("iterations"));
  apps::LassenConfig fine = coarse;  // 8x8 = 64 chares
  fine.chares_x = 8;
  fine.chares_y = 8;

  std::string prefix = flags.get_string("svg-prefix");
  RunSummary s8 = analyze(coarse, prefix.empty() ? "" : prefix + "_8.svg");
  RunSummary s64 = analyze(fine, prefix.empty() ? "" : prefix + "_64.svg");

  util::TablePrinter table({"decomposition", "max diff duration (us)",
                            "total imbalance (us)", "recurring hot chares"});
  auto hot_str = [](const RunSummary& s) {
    std::string out;
    int shown = 0;
    for (const auto& [chare, n] : s.hot_chares) {
      if (shown++ == 6) {
        out += "...";
        break;
      }
      out += "#" + std::to_string(chare) + "x" + std::to_string(n) + " ";
    }
    return out;
  };
  table.row()
      .add("8 chares (4x2)")
      .add(s8.max_diff_dur / 1000.0)
      .add(s8.total_imbalance / 1000.0)
      .add(hot_str(s8));
  table.row()
      .add("64 chares (8x8)")
      .add(s64.max_diff_dur / 1000.0)
      .add(s64.total_imbalance / 1000.0)
      .add(hot_str(s64));
  table.print();

  std::printf("\n64-chare / 8-chare max differential duration ratio: %.2f "
              "(paper: ~0.25)\n",
              static_cast<double>(s64.max_diff_dur) /
                  static_cast<double>(s8.max_diff_dur));
  std::printf("64-chare / 8-chare overall imbalance ratio: %.2f "
              "(paper: < 0.5)\n",
              static_cast<double>(s64.total_imbalance) /
                  static_cast<double>(s8.total_imbalance));

  // Extended analysis on the coarse run: where does the time go (the
  // Projections-style profile) and through whom does the critical path
  // run (expected: the wavefront chares).
  {
    trace::Trace t = apps::run_lassen_charm(coarse);
    order::LogicalStructure ls =
        order::extract_structure(t, order::Options::charm());
    std::printf("\nentry profile (8-chare run):\n");
    util::TablePrinter prof({"entry", "calls", "total (us)", "mean (us)"});
    for (const auto& row : metrics::entry_profile(t)) {
      prof.row()
          .add(row.name)
          .add(row.executions)
          .add(row.total_ns / 1000.0)
          .add(row.mean_ns() / 1000.0);
    }
    prof.print();

    metrics::CriticalPath cp = metrics::critical_path(t, ls);
    std::printf("\ncritical path: %.1f us across %zu events "
                "(%.0f%% of the makespan); heaviest chares:",
                cp.length_ns / 1000.0, cp.events.size(),
                100.0 * cp.coverage);
    std::vector<std::pair<trace::TimeNs, trace::ChareId>> shares;
    for (trace::ChareId c = 0; c < t.num_chares(); ++c)
      if (cp.chare_share[static_cast<std::size_t>(c)] > 0)
        shares.emplace_back(cp.chare_share[static_cast<std::size_t>(c)], c);
    std::sort(shares.rbegin(), shares.rend());
    for (std::size_t i = 0; i < shares.size() && i < 4; ++i)
      std::printf(" %s (%.0f us)",
                  t.chare(shares[i].second).name.c_str(),
                  shares[i].first / 1000.0);
    std::printf("\n");
  }
  util::finish_obs(flags, argv[0]);
  return 0;
}
