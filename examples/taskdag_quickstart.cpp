/// \file taskdag_quickstart.cpp
/// The §7 path end to end: build an explicit task graph for a non-Charm
/// runtime, execute it on simulated workers, and recover its logical
/// structure with the very same pipeline — sub-domain timelines instead
/// of worker timelines.
///
///   ./taskdag_quickstart [--width=10 --steps=6 --workers=4
///                         --graph=stencil|forkjoin --html=out.html]

#include <cstdio>

#include "order/stats.hpp"
#include "order/stepping.hpp"
#include "order/validate.hpp"
#include "sim/taskdag/taskdag.hpp"
#include "trace/validate.hpp"
#include "util/flags.hpp"
#include "util/obs_flags.hpp"
#include "vis/ascii.hpp"
#include "vis/html.hpp"

int main(int argc, char** argv) {
  using namespace logstruct;

  util::Flags flags;
  flags.define_string("graph", "stencil", "stencil or forkjoin");
  flags.define_int("width", 10, "stencil sub-domains");
  flags.define_int("steps", 6, "stencil time steps");
  flags.define_int("levels", 5, "fork-join levels");
  flags.define_int("workers", 4, "simulated workers");
  flags.define_int("seed", 1, "scheduling seed");
  flags.define_string("html", "", "write the interactive viewer here");
  util::define_obs_flags(flags);
  if (!flags.parse(argc, argv)) return 1;
  util::apply_obs_flags(flags);

  sim::taskdag::TaskGraph g;
  if (flags.get_string("graph") == "forkjoin") {
    g = sim::taskdag::fork_join(
        static_cast<std::int32_t>(flags.get_int("levels")));
  } else {
    g = sim::taskdag::stencil_1d(
        static_cast<std::int32_t>(flags.get_int("width")),
        static_cast<std::int32_t>(flags.get_int("steps")));
  }

  sim::taskdag::TaskDagConfig cfg;
  cfg.num_workers = static_cast<std::int32_t>(flags.get_int("workers"));
  cfg.seed = static_cast<std::uint64_t>(flags.get_int("seed"));
  trace::Trace t = sim::taskdag::simulate(g, cfg);
  if (!trace::validate_cli(flags, t, "taskdag")) return 2;
  std::printf("executed %zu tasks over %d sub-domains on %d workers\n",
              g.size(), t.num_chares(), t.num_procs());

  order::LogicalStructure ls =
      order::extract_structure(t, order::Options::charm());
  auto problems = order::validate_structure(t, ls);
  if (!problems.empty()) {
    std::printf("structure problems: %s\n", problems.front().c_str());
    return 1;
  }
  order::StructureStats stats = order::compute_stats(t, ls);
  std::printf("recovered %d phases, %d global steps\n\n", stats.num_phases,
              stats.width);

  std::fputs(vis::render_physical_ascii(t, ls).c_str(), stdout);
  std::fputs("\n", stdout);
  std::fputs(vis::render_logical_ascii(t, ls).c_str(), stdout);

  const std::string html = flags.get_string("html");
  if (!html.empty()) {
    vis::HtmlOptions hopts;
    hopts.title = flags.get_string("graph") + " task graph";
    if (vis::save_html(t, ls, html, hopts))
      std::printf("wrote viewer: %s\n", html.c_str());
  }
  util::finish_obs(flags, argv[0]);
  return 0;
}
