/// \file metrics_tour.cpp
/// All of the library's metrics on one trace, side by side: the paper's
/// three (§4: idle experienced, differential duration, imbalance), the
/// traditional lateness it argues against, Projections-style profiles,
/// the critical path, and the time-resolved POP efficiency suite broken
/// down per recovered phase. Also demonstrates the iteration-structure
/// detector on the phase signature.
///
///   ./metrics_tour [--iterations=4 --seed=1 --slow-chare=5]

#include <algorithm>
#include <cstdio>
#include <vector>

#include "apps/jacobi2d.hpp"
#include "metrics/critical_path.hpp"
#include "metrics/duration.hpp"
#include "metrics/concurrency.hpp"
#include "metrics/efficiency.hpp"
#include "metrics/idle.hpp"
#include "metrics/imbalance.hpp"
#include "metrics/lateness.hpp"
#include "metrics/profile.hpp"
#include "order/stats.hpp"
#include "order/stepping.hpp"
#include "trace/validate.hpp"
#include "util/flags.hpp"
#include "util/obs_flags.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace logstruct;

  util::Flags flags;
  flags.define_int("iterations", 4, "Jacobi iterations");
  flags.define_int("seed", 1, "simulation seed");
  flags.define_int("slow-chare", 5, "persistent hotspot chare (-1 off)");
  util::define_obs_flags(flags);
  if (!flags.parse(argc, argv)) return 1;
  util::apply_obs_flags(flags);

  apps::Jacobi2DConfig cfg;
  cfg.chares_x = 4;
  cfg.chares_y = 4;
  cfg.num_pes = 8;
  cfg.iterations = static_cast<std::int32_t>(flags.get_int("iterations"));
  cfg.seed = static_cast<std::uint64_t>(flags.get_int("seed"));
  cfg.slow_chare = static_cast<std::int32_t>(flags.get_int("slow-chare"));
  cfg.slow_every_iteration = cfg.slow_chare >= 0;
  cfg.slow_factor = 4.0;
  trace::Trace t = apps::run_jacobi2d(cfg);
  if (!trace::validate_cli(flags, t, "jacobi2d")) return 2;
  order::LogicalStructure ls =
      order::extract_structure(t, order::Options::charm());

  // Structure summary with iteration detection.
  std::string sig = order::phase_signature(t, ls);
  order::PhasePattern pattern = order::detect_pattern(sig);
  std::printf("phase signature: %s", sig.c_str());
  if (pattern.repeats >= 2) {
    std::printf("  =  \"%s\" + \"%s\" x %d", pattern.lead.c_str(),
                pattern.unit.c_str(), pattern.repeats);
  }
  std::printf("\n\n");

  // The paper's metrics.
  metrics::IdleExperienced ie = metrics::idle_experienced(t);
  metrics::DifferentialDuration dd = metrics::differential_duration(t, ls);
  metrics::Imbalance imb = metrics::imbalance(t, ls);
  metrics::Lateness late = metrics::lateness(t, ls);
  metrics::CriticalPath cp = metrics::critical_path(t, ls);

  trace::TimeNs total_ie = 0;
  for (auto v : ie.per_event) total_ie += v;
  trace::TimeNs total_imb = 0;
  for (auto v : imb.per_phase) total_imb += v;

  util::TablePrinter table({"metric", "headline", "where it points"});
  auto at = [&](trace::EventId e) {
    if (e == trace::kNone) return std::string("-");
    return t.chare(t.event(e).chare).name + " @ step " +
           std::to_string(ls.global_step[static_cast<std::size_t>(e)]);
  };
  table.row()
      .add("idle experienced (Sec. 4)")
      .add(std::to_string(total_ie / 1000) + " us total")
      .add("blocks starved behind the reductions");
  table.row()
      .add("differential duration (Sec. 4)")
      .add(std::to_string(dd.max_value / 1000) + " us max")
      .add(at(dd.max_event));
  table.row()
      .add("imbalance (Sec. 4)")
      .add(std::to_string(total_imb / 1000) + " us summed")
      .add("the hotspot chare's processor");
  table.row()
      .add("lateness ([13], for contrast)")
      .add(std::to_string(late.max_value / 1000) + " us max")
      .add(at(late.max_event));
  table.row()
      .add("critical path (extension)")
      .add(std::to_string(cp.length_ns / 1000) + " us, " +
           std::to_string(static_cast<int>(100 * cp.coverage)) +
           "% of makespan")
      .add(std::to_string(cp.events.size()) + " events");
  table.print();

  // Which chare dominates each metric? With a persistent hotspot, the
  // paper's metrics and the critical path all converge on it; lateness
  // spreads blame across everything the reduction made wait.
  if (cfg.slow_chare >= 0) {
    auto argmax_chare = [&](const std::vector<trace::TimeNs>& per_event) {
      std::vector<trace::TimeNs> per_chare(
          static_cast<std::size_t>(t.num_chares()), 0);
      for (trace::EventId e = 0; e < t.num_events(); ++e)
        per_chare[static_cast<std::size_t>(t.event(e).chare)] +=
            per_event[static_cast<std::size_t>(e)];
      return static_cast<trace::ChareId>(
          std::max_element(per_chare.begin(), per_chare.end()) -
          per_chare.begin());
    };
    std::printf("\nhotspot attribution (injected at jacobi[%d]):\n",
                cfg.slow_chare);
    std::printf("  differential duration -> %s\n",
                t.chare(argmax_chare(dd.per_event)).name.c_str());
    std::printf("  critical-path share   -> %s\n",
                t.chare(static_cast<trace::ChareId>(
                            std::max_element(cp.chare_share.begin(),
                                             cp.chare_share.end()) -
                            cp.chare_share.begin()))
                    .name.c_str());
    std::printf("  lateness              -> %s (diffuse, as Sec. 4 "
                "argues)\n",
                t.chare(argmax_chare(late.per_event)).name.c_str());
  }

  // Time-resolved POP efficiency per recovered phase: where does the
  // hotspot phase lose its parallel efficiency — balance, transfer, or
  // serialization? (docs/METRICS.md has the definitions.)
  const metrics::WindowSet phase_windows =
      metrics::WindowSet::phases(t, ls.phases);
  const metrics::EfficiencySuite eff =
      metrics::efficiency_suite(t, phase_windows);
  std::printf("\nper-phase efficiency (POP):\n");
  util::TablePrinter eff_table({"phase", "events", "parallel", "load bal",
                                "comm", "serial", "transfer"});
  for (std::int32_t w = 0; w < eff.num_windows(); ++w) {
    const auto wz = static_cast<std::size_t>(w);
    if (eff.loads.events[wz] == 0) continue;
    eff_table.row()
        .add("phase " + std::to_string(eff.windows[wz].phase))
        .add(static_cast<std::int64_t>(eff.loads.events[wz]))
        .add(eff.parallel.per_window[wz], 3)
        .add(eff.balance.per_window[wz], 3)
        .add(eff.communication.per_window[wz], 3)
        .add(eff.sertrans.serialization[wz], 3)
        .add(eff.sertrans.transfer[wz], 3);
  }
  eff_table.print();
  std::printf("  worst load balance: %.3f in phase window %d "
              "(mean parallel %.3f)\n",
              eff.balance.summary.min, eff.balance.summary.min_window,
              eff.parallel.summary.mean);

  // Projections-style profile and utilization for the traditional view.
  std::printf("\nentry profile:\n");
  util::TablePrinter prof({"entry", "calls", "total (us)", "mean (us)"});
  for (const auto& row : metrics::entry_profile(t)) {
    prof.row()
        .add(row.name)
        .add(row.executions)
        .add(row.total_ns / 1000.0)
        .add(row.mean_ns() / 1000.0);
  }
  prof.print();

  std::printf("\nutilization:\n");
  util::TablePrinter util_table({"PE", "busy", "idle", "other"});
  for (const auto& row : metrics::utilization(t)) {
    util_table.row()
        .add(static_cast<std::int64_t>(row.proc))
        .add(row.busy, 2)
        .add(row.idle, 2)
        .add(row.other, 2);
  }
  util_table.print();
  if (!metrics::write_efficiency_report(flags, t, ls, argv[0])) return 3;
  if (!metrics::write_concurrency_report(flags, t, ls, argv[0])) return 3;
  util::finish_obs(flags, argv[0]);
  return 0;
}
