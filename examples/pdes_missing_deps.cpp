/// \file pdes_missing_deps.cpp
/// Reproduce the paper's Fig. 24: in the PDES mini-app, the call into the
/// completion detector is not recorded, so the detector (runtime) phase
/// cannot be ordered after the simulation phase and overlaps its global
/// steps. Re-running with the dependency traced shows the repaired
/// structure.
///
///   ./pdes_missing_deps [--chares=16 --pes=4 --windows=2]

#include <cstdio>

#include "apps/pdes.hpp"
#include "order/stats.hpp"
#include "order/stepping.hpp"
#include "trace/validate.hpp"
#include "util/flags.hpp"
#include "util/obs_flags.hpp"
#include "vis/ascii.hpp"

namespace {

/// Maximum overlap between any simulation (app) phase's step range and any
/// detector (runtime) phase's step range.
double max_app_runtime_overlap(const logstruct::trace::Trace& t,
                               const logstruct::order::LogicalStructure& ls) {
  double worst = 0;
  for (std::int32_t p = 0; p < ls.num_phases(); ++p) {
    if (ls.phases.runtime[static_cast<std::size_t>(p)]) continue;
    for (std::int32_t q = 0; q < ls.num_phases(); ++q) {
      if (!ls.phases.runtime[static_cast<std::size_t>(q)]) continue;
      worst = std::max(worst, logstruct::order::step_overlap(ls, q, p));
    }
  }
  (void)t;
  return worst;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace logstruct;

  util::Flags flags;
  flags.define_int("chares", 16, "simulation chares");
  flags.define_int("pes", 4, "processing elements");
  flags.define_int("windows", 1, "PDES windows (1 = the paper's Fig. 24 view)");
  util::define_obs_flags(flags);
  if (!flags.parse(argc, argv)) return 1;
  util::apply_obs_flags(flags);

  apps::PdesConfig cfg;
  cfg.num_chares = static_cast<std::int32_t>(flags.get_int("chares"));
  cfg.num_pes = static_cast<std::int32_t>(flags.get_int("pes"));
  cfg.windows = static_cast<std::int32_t>(flags.get_int("windows"));

  for (bool traced : {false, true}) {
    cfg.trace_detector_calls = traced;
    trace::Trace t = apps::run_pdes(cfg);
    if (!trace::validate_cli(flags, t, "pdes")) return 2;
    order::LogicalStructure ls =
        order::extract_structure(t, order::Options::charm());
    std::printf("== detector calls %s ==\n",
                traced ? "TRACED" : "NOT TRACED (paper's situation)");
    std::fputs(vis::render_logical_ascii(t, ls).c_str(), stdout);
    std::printf("max detector-phase overlap with a simulation phase: "
                "%.0f%% of the detector phase's steps\n\n",
                100.0 * max_app_runtime_overlap(t, ls));
  }
  std::puts("Without the recorded dependency nothing orders the detector");
  std::puts("after the work that triggered it; tracing the call repairs");
  std::puts("the sequence (paper Sec. 7.1).");
  util::finish_obs(flags, argv[0]);
  return 0;
}
