# Empty compiler generated dependencies file for fig01_nasbt.
# This may be replaced when dependencies are built.
