file(REMOVE_RECURSE
  "CMakeFiles/fig01_nasbt.dir/fig01_nasbt.cpp.o"
  "CMakeFiles/fig01_nasbt.dir/fig01_nasbt.cpp.o.d"
  "fig01_nasbt"
  "fig01_nasbt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig01_nasbt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
