file(REMOVE_RECURSE
  "CMakeFiles/fig10_mergetree.dir/fig10_mergetree.cpp.o"
  "CMakeFiles/fig10_mergetree.dir/fig10_mergetree.cpp.o.d"
  "fig10_mergetree"
  "fig10_mergetree.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_mergetree.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
