# Empty dependencies file for fig10_mergetree.
# This may be replaced when dependencies are built.
