file(REMOVE_RECURSE
  "CMakeFiles/sec7_other_tbr.dir/sec7_other_tbr.cpp.o"
  "CMakeFiles/sec7_other_tbr.dir/sec7_other_tbr.cpp.o.d"
  "sec7_other_tbr"
  "sec7_other_tbr.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sec7_other_tbr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
