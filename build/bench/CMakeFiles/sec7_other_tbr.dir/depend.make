# Empty dependencies file for sec7_other_tbr.
# This may be replaced when dependencies are built.
