# Empty compiler generated dependencies file for fig16_lulesh_structure.
# This may be replaced when dependencies are built.
