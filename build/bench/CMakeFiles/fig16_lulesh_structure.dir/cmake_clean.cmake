file(REMOVE_RECURSE
  "CMakeFiles/fig16_lulesh_structure.dir/fig16_lulesh_structure.cpp.o"
  "CMakeFiles/fig16_lulesh_structure.dir/fig16_lulesh_structure.cpp.o.d"
  "fig16_lulesh_structure"
  "fig16_lulesh_structure.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig16_lulesh_structure.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
