# Empty dependencies file for fig20_lassen_structure.
# This may be replaced when dependencies are built.
