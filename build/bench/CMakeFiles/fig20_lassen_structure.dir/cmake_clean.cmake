file(REMOVE_RECURSE
  "CMakeFiles/fig20_lassen_structure.dir/fig20_lassen_structure.cpp.o"
  "CMakeFiles/fig20_lassen_structure.dir/fig20_lassen_structure.cpp.o.d"
  "fig20_lassen_structure"
  "fig20_lassen_structure.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig20_lassen_structure.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
