file(REMOVE_RECURSE
  "CMakeFiles/fig15_diffdur.dir/fig15_diffdur.cpp.o"
  "CMakeFiles/fig15_diffdur.dir/fig15_diffdur.cpp.o.d"
  "fig15_diffdur"
  "fig15_diffdur.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig15_diffdur.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
