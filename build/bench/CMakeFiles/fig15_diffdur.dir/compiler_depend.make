# Empty compiler generated dependencies file for fig15_diffdur.
# This may be replaced when dependencies are built.
