file(REMOVE_RECURSE
  "CMakeFiles/fig08_jacobi_reorder.dir/fig08_jacobi_reorder.cpp.o"
  "CMakeFiles/fig08_jacobi_reorder.dir/fig08_jacobi_reorder.cpp.o.d"
  "fig08_jacobi_reorder"
  "fig08_jacobi_reorder.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig08_jacobi_reorder.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
