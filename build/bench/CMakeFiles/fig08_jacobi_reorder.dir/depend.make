# Empty dependencies file for fig08_jacobi_reorder.
# This may be replaced when dependencies are built.
