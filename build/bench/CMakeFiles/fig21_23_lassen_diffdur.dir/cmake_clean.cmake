file(REMOVE_RECURSE
  "CMakeFiles/fig21_23_lassen_diffdur.dir/fig21_23_lassen_diffdur.cpp.o"
  "CMakeFiles/fig21_23_lassen_diffdur.dir/fig21_23_lassen_diffdur.cpp.o.d"
  "fig21_23_lassen_diffdur"
  "fig21_23_lassen_diffdur.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig21_23_lassen_diffdur.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
