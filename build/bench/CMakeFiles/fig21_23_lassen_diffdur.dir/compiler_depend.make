# Empty compiler generated dependencies file for fig21_23_lassen_diffdur.
# This may be replaced when dependencies are built.
