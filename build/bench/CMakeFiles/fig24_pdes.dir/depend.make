# Empty dependencies file for fig24_pdes.
# This may be replaced when dependencies are built.
