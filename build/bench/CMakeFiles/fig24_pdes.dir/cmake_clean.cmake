file(REMOVE_RECURSE
  "CMakeFiles/fig24_pdes.dir/fig24_pdes.cpp.o"
  "CMakeFiles/fig24_pdes.dir/fig24_pdes.cpp.o.d"
  "fig24_pdes"
  "fig24_pdes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig24_pdes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
