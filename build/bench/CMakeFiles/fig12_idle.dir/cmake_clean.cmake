file(REMOVE_RECURSE
  "CMakeFiles/fig12_idle.dir/fig12_idle.cpp.o"
  "CMakeFiles/fig12_idle.dir/fig12_idle.cpp.o.d"
  "fig12_idle"
  "fig12_idle.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig12_idle.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
