# Empty compiler generated dependencies file for fig12_idle.
# This may be replaced when dependencies are built.
