file(REMOVE_RECURSE
  "CMakeFiles/fig14_imbalance.dir/fig14_imbalance.cpp.o"
  "CMakeFiles/fig14_imbalance.dir/fig14_imbalance.cpp.o.d"
  "fig14_imbalance"
  "fig14_imbalance.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig14_imbalance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
