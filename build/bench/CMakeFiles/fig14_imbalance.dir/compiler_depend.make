# Empty compiler generated dependencies file for fig14_imbalance.
# This may be replaced when dependencies are built.
