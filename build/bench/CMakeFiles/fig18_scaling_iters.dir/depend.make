# Empty dependencies file for fig18_scaling_iters.
# This may be replaced when dependencies are built.
