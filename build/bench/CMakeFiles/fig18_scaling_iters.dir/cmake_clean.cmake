file(REMOVE_RECURSE
  "CMakeFiles/fig18_scaling_iters.dir/fig18_scaling_iters.cpp.o"
  "CMakeFiles/fig18_scaling_iters.dir/fig18_scaling_iters.cpp.o.d"
  "fig18_scaling_iters"
  "fig18_scaling_iters.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig18_scaling_iters.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
