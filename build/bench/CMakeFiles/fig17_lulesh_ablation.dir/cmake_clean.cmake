file(REMOVE_RECURSE
  "CMakeFiles/fig17_lulesh_ablation.dir/fig17_lulesh_ablation.cpp.o"
  "CMakeFiles/fig17_lulesh_ablation.dir/fig17_lulesh_ablation.cpp.o.d"
  "fig17_lulesh_ablation"
  "fig17_lulesh_ablation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig17_lulesh_ablation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
