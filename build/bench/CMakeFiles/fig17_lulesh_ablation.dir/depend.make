# Empty dependencies file for fig17_lulesh_ablation.
# This may be replaced when dependencies are built.
