file(REMOVE_RECURSE
  "CMakeFiles/fig19_scaling_chares.dir/fig19_scaling_chares.cpp.o"
  "CMakeFiles/fig19_scaling_chares.dir/fig19_scaling_chares.cpp.o.d"
  "fig19_scaling_chares"
  "fig19_scaling_chares.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig19_scaling_chares.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
