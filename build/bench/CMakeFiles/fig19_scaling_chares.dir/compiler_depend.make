# Empty compiler generated dependencies file for fig19_scaling_chares.
# This may be replaced when dependencies are built.
