file(REMOVE_RECURSE
  "CMakeFiles/sec5_tracing_overhead.dir/sec5_tracing_overhead.cpp.o"
  "CMakeFiles/sec5_tracing_overhead.dir/sec5_tracing_overhead.cpp.o.d"
  "sec5_tracing_overhead"
  "sec5_tracing_overhead.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sec5_tracing_overhead.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
