# Empty dependencies file for sec5_tracing_overhead.
# This may be replaced when dependencies are built.
