# Empty compiler generated dependencies file for logstruct_vis.
# This may be replaced when dependencies are built.
