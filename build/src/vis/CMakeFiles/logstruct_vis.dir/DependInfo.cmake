
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/vis/ascii.cpp" "src/vis/CMakeFiles/logstruct_vis.dir/ascii.cpp.o" "gcc" "src/vis/CMakeFiles/logstruct_vis.dir/ascii.cpp.o.d"
  "/root/repo/src/vis/cluster.cpp" "src/vis/CMakeFiles/logstruct_vis.dir/cluster.cpp.o" "gcc" "src/vis/CMakeFiles/logstruct_vis.dir/cluster.cpp.o.d"
  "/root/repo/src/vis/color.cpp" "src/vis/CMakeFiles/logstruct_vis.dir/color.cpp.o" "gcc" "src/vis/CMakeFiles/logstruct_vis.dir/color.cpp.o.d"
  "/root/repo/src/vis/html.cpp" "src/vis/CMakeFiles/logstruct_vis.dir/html.cpp.o" "gcc" "src/vis/CMakeFiles/logstruct_vis.dir/html.cpp.o.d"
  "/root/repo/src/vis/svg.cpp" "src/vis/CMakeFiles/logstruct_vis.dir/svg.cpp.o" "gcc" "src/vis/CMakeFiles/logstruct_vis.dir/svg.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/order/CMakeFiles/logstruct_order.dir/DependInfo.cmake"
  "/root/repo/build/src/metrics/CMakeFiles/logstruct_metrics.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/logstruct_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/logstruct_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/logstruct_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
