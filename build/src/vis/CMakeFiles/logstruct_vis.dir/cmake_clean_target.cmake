file(REMOVE_RECURSE
  "liblogstruct_vis.a"
)
