file(REMOVE_RECURSE
  "CMakeFiles/logstruct_vis.dir/ascii.cpp.o"
  "CMakeFiles/logstruct_vis.dir/ascii.cpp.o.d"
  "CMakeFiles/logstruct_vis.dir/cluster.cpp.o"
  "CMakeFiles/logstruct_vis.dir/cluster.cpp.o.d"
  "CMakeFiles/logstruct_vis.dir/color.cpp.o"
  "CMakeFiles/logstruct_vis.dir/color.cpp.o.d"
  "CMakeFiles/logstruct_vis.dir/html.cpp.o"
  "CMakeFiles/logstruct_vis.dir/html.cpp.o.d"
  "CMakeFiles/logstruct_vis.dir/svg.cpp.o"
  "CMakeFiles/logstruct_vis.dir/svg.cpp.o.d"
  "liblogstruct_vis.a"
  "liblogstruct_vis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/logstruct_vis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
