
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/apps/jacobi2d.cpp" "src/apps/CMakeFiles/logstruct_apps.dir/jacobi2d.cpp.o" "gcc" "src/apps/CMakeFiles/logstruct_apps.dir/jacobi2d.cpp.o.d"
  "/root/repo/src/apps/lassen_charm.cpp" "src/apps/CMakeFiles/logstruct_apps.dir/lassen_charm.cpp.o" "gcc" "src/apps/CMakeFiles/logstruct_apps.dir/lassen_charm.cpp.o.d"
  "/root/repo/src/apps/lassen_mpi.cpp" "src/apps/CMakeFiles/logstruct_apps.dir/lassen_mpi.cpp.o" "gcc" "src/apps/CMakeFiles/logstruct_apps.dir/lassen_mpi.cpp.o.d"
  "/root/repo/src/apps/lulesh_charm.cpp" "src/apps/CMakeFiles/logstruct_apps.dir/lulesh_charm.cpp.o" "gcc" "src/apps/CMakeFiles/logstruct_apps.dir/lulesh_charm.cpp.o.d"
  "/root/repo/src/apps/lulesh_mpi.cpp" "src/apps/CMakeFiles/logstruct_apps.dir/lulesh_mpi.cpp.o" "gcc" "src/apps/CMakeFiles/logstruct_apps.dir/lulesh_mpi.cpp.o.d"
  "/root/repo/src/apps/mergetree.cpp" "src/apps/CMakeFiles/logstruct_apps.dir/mergetree.cpp.o" "gcc" "src/apps/CMakeFiles/logstruct_apps.dir/mergetree.cpp.o.d"
  "/root/repo/src/apps/nasbt.cpp" "src/apps/CMakeFiles/logstruct_apps.dir/nasbt.cpp.o" "gcc" "src/apps/CMakeFiles/logstruct_apps.dir/nasbt.cpp.o.d"
  "/root/repo/src/apps/pdes.cpp" "src/apps/CMakeFiles/logstruct_apps.dir/pdes.cpp.o" "gcc" "src/apps/CMakeFiles/logstruct_apps.dir/pdes.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/logstruct_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/logstruct_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/logstruct_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/logstruct_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
