# Empty dependencies file for logstruct_apps.
# This may be replaced when dependencies are built.
