file(REMOVE_RECURSE
  "CMakeFiles/logstruct_apps.dir/jacobi2d.cpp.o"
  "CMakeFiles/logstruct_apps.dir/jacobi2d.cpp.o.d"
  "CMakeFiles/logstruct_apps.dir/lassen_charm.cpp.o"
  "CMakeFiles/logstruct_apps.dir/lassen_charm.cpp.o.d"
  "CMakeFiles/logstruct_apps.dir/lassen_mpi.cpp.o"
  "CMakeFiles/logstruct_apps.dir/lassen_mpi.cpp.o.d"
  "CMakeFiles/logstruct_apps.dir/lulesh_charm.cpp.o"
  "CMakeFiles/logstruct_apps.dir/lulesh_charm.cpp.o.d"
  "CMakeFiles/logstruct_apps.dir/lulesh_mpi.cpp.o"
  "CMakeFiles/logstruct_apps.dir/lulesh_mpi.cpp.o.d"
  "CMakeFiles/logstruct_apps.dir/mergetree.cpp.o"
  "CMakeFiles/logstruct_apps.dir/mergetree.cpp.o.d"
  "CMakeFiles/logstruct_apps.dir/nasbt.cpp.o"
  "CMakeFiles/logstruct_apps.dir/nasbt.cpp.o.d"
  "CMakeFiles/logstruct_apps.dir/pdes.cpp.o"
  "CMakeFiles/logstruct_apps.dir/pdes.cpp.o.d"
  "liblogstruct_apps.a"
  "liblogstruct_apps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/logstruct_apps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
