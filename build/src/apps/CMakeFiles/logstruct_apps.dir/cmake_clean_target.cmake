file(REMOVE_RECURSE
  "liblogstruct_apps.a"
)
