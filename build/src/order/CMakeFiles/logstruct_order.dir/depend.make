# Empty dependencies file for logstruct_order.
# This may be replaced when dependencies are built.
