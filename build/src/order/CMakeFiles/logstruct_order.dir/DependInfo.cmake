
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/order/infer.cpp" "src/order/CMakeFiles/logstruct_order.dir/infer.cpp.o" "gcc" "src/order/CMakeFiles/logstruct_order.dir/infer.cpp.o.d"
  "/root/repo/src/order/initial.cpp" "src/order/CMakeFiles/logstruct_order.dir/initial.cpp.o" "gcc" "src/order/CMakeFiles/logstruct_order.dir/initial.cpp.o.d"
  "/root/repo/src/order/io.cpp" "src/order/CMakeFiles/logstruct_order.dir/io.cpp.o" "gcc" "src/order/CMakeFiles/logstruct_order.dir/io.cpp.o.d"
  "/root/repo/src/order/merges.cpp" "src/order/CMakeFiles/logstruct_order.dir/merges.cpp.o" "gcc" "src/order/CMakeFiles/logstruct_order.dir/merges.cpp.o.d"
  "/root/repo/src/order/partition_graph.cpp" "src/order/CMakeFiles/logstruct_order.dir/partition_graph.cpp.o" "gcc" "src/order/CMakeFiles/logstruct_order.dir/partition_graph.cpp.o.d"
  "/root/repo/src/order/phases.cpp" "src/order/CMakeFiles/logstruct_order.dir/phases.cpp.o" "gcc" "src/order/CMakeFiles/logstruct_order.dir/phases.cpp.o.d"
  "/root/repo/src/order/stats.cpp" "src/order/CMakeFiles/logstruct_order.dir/stats.cpp.o" "gcc" "src/order/CMakeFiles/logstruct_order.dir/stats.cpp.o.d"
  "/root/repo/src/order/stepping.cpp" "src/order/CMakeFiles/logstruct_order.dir/stepping.cpp.o" "gcc" "src/order/CMakeFiles/logstruct_order.dir/stepping.cpp.o.d"
  "/root/repo/src/order/validate.cpp" "src/order/CMakeFiles/logstruct_order.dir/validate.cpp.o" "gcc" "src/order/CMakeFiles/logstruct_order.dir/validate.cpp.o.d"
  "/root/repo/src/order/wclock.cpp" "src/order/CMakeFiles/logstruct_order.dir/wclock.cpp.o" "gcc" "src/order/CMakeFiles/logstruct_order.dir/wclock.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/trace/CMakeFiles/logstruct_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/logstruct_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/logstruct_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
