file(REMOVE_RECURSE
  "CMakeFiles/logstruct_order.dir/infer.cpp.o"
  "CMakeFiles/logstruct_order.dir/infer.cpp.o.d"
  "CMakeFiles/logstruct_order.dir/initial.cpp.o"
  "CMakeFiles/logstruct_order.dir/initial.cpp.o.d"
  "CMakeFiles/logstruct_order.dir/io.cpp.o"
  "CMakeFiles/logstruct_order.dir/io.cpp.o.d"
  "CMakeFiles/logstruct_order.dir/merges.cpp.o"
  "CMakeFiles/logstruct_order.dir/merges.cpp.o.d"
  "CMakeFiles/logstruct_order.dir/partition_graph.cpp.o"
  "CMakeFiles/logstruct_order.dir/partition_graph.cpp.o.d"
  "CMakeFiles/logstruct_order.dir/phases.cpp.o"
  "CMakeFiles/logstruct_order.dir/phases.cpp.o.d"
  "CMakeFiles/logstruct_order.dir/stats.cpp.o"
  "CMakeFiles/logstruct_order.dir/stats.cpp.o.d"
  "CMakeFiles/logstruct_order.dir/stepping.cpp.o"
  "CMakeFiles/logstruct_order.dir/stepping.cpp.o.d"
  "CMakeFiles/logstruct_order.dir/validate.cpp.o"
  "CMakeFiles/logstruct_order.dir/validate.cpp.o.d"
  "CMakeFiles/logstruct_order.dir/wclock.cpp.o"
  "CMakeFiles/logstruct_order.dir/wclock.cpp.o.d"
  "liblogstruct_order.a"
  "liblogstruct_order.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/logstruct_order.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
