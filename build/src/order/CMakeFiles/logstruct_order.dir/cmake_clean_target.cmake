file(REMOVE_RECURSE
  "liblogstruct_order.a"
)
