file(REMOVE_RECURSE
  "liblogstruct_sim.a"
)
