# Empty dependencies file for logstruct_sim.
# This may be replaced when dependencies are built.
