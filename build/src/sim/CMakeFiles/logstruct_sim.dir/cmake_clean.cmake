file(REMOVE_RECURSE
  "CMakeFiles/logstruct_sim.dir/charm/loadbalancer.cpp.o"
  "CMakeFiles/logstruct_sim.dir/charm/loadbalancer.cpp.o.d"
  "CMakeFiles/logstruct_sim.dir/charm/reduction.cpp.o"
  "CMakeFiles/logstruct_sim.dir/charm/reduction.cpp.o.d"
  "CMakeFiles/logstruct_sim.dir/charm/runtime.cpp.o"
  "CMakeFiles/logstruct_sim.dir/charm/runtime.cpp.o.d"
  "CMakeFiles/logstruct_sim.dir/mpi/mpisim.cpp.o"
  "CMakeFiles/logstruct_sim.dir/mpi/mpisim.cpp.o.d"
  "CMakeFiles/logstruct_sim.dir/mpi/program.cpp.o"
  "CMakeFiles/logstruct_sim.dir/mpi/program.cpp.o.d"
  "CMakeFiles/logstruct_sim.dir/taskdag/taskdag.cpp.o"
  "CMakeFiles/logstruct_sim.dir/taskdag/taskdag.cpp.o.d"
  "liblogstruct_sim.a"
  "liblogstruct_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/logstruct_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
