
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/charm/loadbalancer.cpp" "src/sim/CMakeFiles/logstruct_sim.dir/charm/loadbalancer.cpp.o" "gcc" "src/sim/CMakeFiles/logstruct_sim.dir/charm/loadbalancer.cpp.o.d"
  "/root/repo/src/sim/charm/reduction.cpp" "src/sim/CMakeFiles/logstruct_sim.dir/charm/reduction.cpp.o" "gcc" "src/sim/CMakeFiles/logstruct_sim.dir/charm/reduction.cpp.o.d"
  "/root/repo/src/sim/charm/runtime.cpp" "src/sim/CMakeFiles/logstruct_sim.dir/charm/runtime.cpp.o" "gcc" "src/sim/CMakeFiles/logstruct_sim.dir/charm/runtime.cpp.o.d"
  "/root/repo/src/sim/mpi/mpisim.cpp" "src/sim/CMakeFiles/logstruct_sim.dir/mpi/mpisim.cpp.o" "gcc" "src/sim/CMakeFiles/logstruct_sim.dir/mpi/mpisim.cpp.o.d"
  "/root/repo/src/sim/mpi/program.cpp" "src/sim/CMakeFiles/logstruct_sim.dir/mpi/program.cpp.o" "gcc" "src/sim/CMakeFiles/logstruct_sim.dir/mpi/program.cpp.o.d"
  "/root/repo/src/sim/taskdag/taskdag.cpp" "src/sim/CMakeFiles/logstruct_sim.dir/taskdag/taskdag.cpp.o" "gcc" "src/sim/CMakeFiles/logstruct_sim.dir/taskdag/taskdag.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/trace/CMakeFiles/logstruct_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/logstruct_util.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/logstruct_graph.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
