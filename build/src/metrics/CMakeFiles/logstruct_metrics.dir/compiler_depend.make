# Empty compiler generated dependencies file for logstruct_metrics.
# This may be replaced when dependencies are built.
