file(REMOVE_RECURSE
  "CMakeFiles/logstruct_metrics.dir/critical_path.cpp.o"
  "CMakeFiles/logstruct_metrics.dir/critical_path.cpp.o.d"
  "CMakeFiles/logstruct_metrics.dir/duration.cpp.o"
  "CMakeFiles/logstruct_metrics.dir/duration.cpp.o.d"
  "CMakeFiles/logstruct_metrics.dir/idle.cpp.o"
  "CMakeFiles/logstruct_metrics.dir/idle.cpp.o.d"
  "CMakeFiles/logstruct_metrics.dir/imbalance.cpp.o"
  "CMakeFiles/logstruct_metrics.dir/imbalance.cpp.o.d"
  "CMakeFiles/logstruct_metrics.dir/lateness.cpp.o"
  "CMakeFiles/logstruct_metrics.dir/lateness.cpp.o.d"
  "CMakeFiles/logstruct_metrics.dir/profile.cpp.o"
  "CMakeFiles/logstruct_metrics.dir/profile.cpp.o.d"
  "CMakeFiles/logstruct_metrics.dir/subblock.cpp.o"
  "CMakeFiles/logstruct_metrics.dir/subblock.cpp.o.d"
  "liblogstruct_metrics.a"
  "liblogstruct_metrics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/logstruct_metrics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
