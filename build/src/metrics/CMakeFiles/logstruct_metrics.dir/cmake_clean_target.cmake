file(REMOVE_RECURSE
  "liblogstruct_metrics.a"
)
