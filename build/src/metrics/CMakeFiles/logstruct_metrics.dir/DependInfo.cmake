
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/metrics/critical_path.cpp" "src/metrics/CMakeFiles/logstruct_metrics.dir/critical_path.cpp.o" "gcc" "src/metrics/CMakeFiles/logstruct_metrics.dir/critical_path.cpp.o.d"
  "/root/repo/src/metrics/duration.cpp" "src/metrics/CMakeFiles/logstruct_metrics.dir/duration.cpp.o" "gcc" "src/metrics/CMakeFiles/logstruct_metrics.dir/duration.cpp.o.d"
  "/root/repo/src/metrics/idle.cpp" "src/metrics/CMakeFiles/logstruct_metrics.dir/idle.cpp.o" "gcc" "src/metrics/CMakeFiles/logstruct_metrics.dir/idle.cpp.o.d"
  "/root/repo/src/metrics/imbalance.cpp" "src/metrics/CMakeFiles/logstruct_metrics.dir/imbalance.cpp.o" "gcc" "src/metrics/CMakeFiles/logstruct_metrics.dir/imbalance.cpp.o.d"
  "/root/repo/src/metrics/lateness.cpp" "src/metrics/CMakeFiles/logstruct_metrics.dir/lateness.cpp.o" "gcc" "src/metrics/CMakeFiles/logstruct_metrics.dir/lateness.cpp.o.d"
  "/root/repo/src/metrics/profile.cpp" "src/metrics/CMakeFiles/logstruct_metrics.dir/profile.cpp.o" "gcc" "src/metrics/CMakeFiles/logstruct_metrics.dir/profile.cpp.o.d"
  "/root/repo/src/metrics/subblock.cpp" "src/metrics/CMakeFiles/logstruct_metrics.dir/subblock.cpp.o" "gcc" "src/metrics/CMakeFiles/logstruct_metrics.dir/subblock.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/order/CMakeFiles/logstruct_order.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/logstruct_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/logstruct_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/logstruct_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
