# Empty dependencies file for logstruct_graph.
# This may be replaced when dependencies are built.
