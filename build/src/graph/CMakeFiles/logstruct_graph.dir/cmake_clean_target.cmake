file(REMOVE_RECURSE
  "liblogstruct_graph.a"
)
