file(REMOVE_RECURSE
  "CMakeFiles/logstruct_graph.dir/digraph.cpp.o"
  "CMakeFiles/logstruct_graph.dir/digraph.cpp.o.d"
  "CMakeFiles/logstruct_graph.dir/leaps.cpp.o"
  "CMakeFiles/logstruct_graph.dir/leaps.cpp.o.d"
  "CMakeFiles/logstruct_graph.dir/scc.cpp.o"
  "CMakeFiles/logstruct_graph.dir/scc.cpp.o.d"
  "CMakeFiles/logstruct_graph.dir/topo.cpp.o"
  "CMakeFiles/logstruct_graph.dir/topo.cpp.o.d"
  "CMakeFiles/logstruct_graph.dir/union_find.cpp.o"
  "CMakeFiles/logstruct_graph.dir/union_find.cpp.o.d"
  "liblogstruct_graph.a"
  "liblogstruct_graph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/logstruct_graph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
