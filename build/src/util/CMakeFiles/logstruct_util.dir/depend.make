# Empty dependencies file for logstruct_util.
# This may be replaced when dependencies are built.
