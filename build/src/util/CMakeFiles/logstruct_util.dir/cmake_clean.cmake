file(REMOVE_RECURSE
  "CMakeFiles/logstruct_util.dir/csv.cpp.o"
  "CMakeFiles/logstruct_util.dir/csv.cpp.o.d"
  "CMakeFiles/logstruct_util.dir/flags.cpp.o"
  "CMakeFiles/logstruct_util.dir/flags.cpp.o.d"
  "CMakeFiles/logstruct_util.dir/rng.cpp.o"
  "CMakeFiles/logstruct_util.dir/rng.cpp.o.d"
  "CMakeFiles/logstruct_util.dir/stats.cpp.o"
  "CMakeFiles/logstruct_util.dir/stats.cpp.o.d"
  "CMakeFiles/logstruct_util.dir/table.cpp.o"
  "CMakeFiles/logstruct_util.dir/table.cpp.o.d"
  "liblogstruct_util.a"
  "liblogstruct_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/logstruct_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
