file(REMOVE_RECURSE
  "liblogstruct_util.a"
)
