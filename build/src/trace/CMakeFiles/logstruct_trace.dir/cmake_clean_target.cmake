file(REMOVE_RECURSE
  "liblogstruct_trace.a"
)
