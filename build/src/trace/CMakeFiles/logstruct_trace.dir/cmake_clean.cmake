file(REMOVE_RECURSE
  "CMakeFiles/logstruct_trace.dir/builder.cpp.o"
  "CMakeFiles/logstruct_trace.dir/builder.cpp.o.d"
  "CMakeFiles/logstruct_trace.dir/io.cpp.o"
  "CMakeFiles/logstruct_trace.dir/io.cpp.o.d"
  "CMakeFiles/logstruct_trace.dir/projections.cpp.o"
  "CMakeFiles/logstruct_trace.dir/projections.cpp.o.d"
  "CMakeFiles/logstruct_trace.dir/sdag.cpp.o"
  "CMakeFiles/logstruct_trace.dir/sdag.cpp.o.d"
  "CMakeFiles/logstruct_trace.dir/skew.cpp.o"
  "CMakeFiles/logstruct_trace.dir/skew.cpp.o.d"
  "CMakeFiles/logstruct_trace.dir/trace.cpp.o"
  "CMakeFiles/logstruct_trace.dir/trace.cpp.o.d"
  "CMakeFiles/logstruct_trace.dir/validate.cpp.o"
  "CMakeFiles/logstruct_trace.dir/validate.cpp.o.d"
  "liblogstruct_trace.a"
  "liblogstruct_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/logstruct_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
