
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/trace/builder.cpp" "src/trace/CMakeFiles/logstruct_trace.dir/builder.cpp.o" "gcc" "src/trace/CMakeFiles/logstruct_trace.dir/builder.cpp.o.d"
  "/root/repo/src/trace/io.cpp" "src/trace/CMakeFiles/logstruct_trace.dir/io.cpp.o" "gcc" "src/trace/CMakeFiles/logstruct_trace.dir/io.cpp.o.d"
  "/root/repo/src/trace/projections.cpp" "src/trace/CMakeFiles/logstruct_trace.dir/projections.cpp.o" "gcc" "src/trace/CMakeFiles/logstruct_trace.dir/projections.cpp.o.d"
  "/root/repo/src/trace/sdag.cpp" "src/trace/CMakeFiles/logstruct_trace.dir/sdag.cpp.o" "gcc" "src/trace/CMakeFiles/logstruct_trace.dir/sdag.cpp.o.d"
  "/root/repo/src/trace/skew.cpp" "src/trace/CMakeFiles/logstruct_trace.dir/skew.cpp.o" "gcc" "src/trace/CMakeFiles/logstruct_trace.dir/skew.cpp.o.d"
  "/root/repo/src/trace/trace.cpp" "src/trace/CMakeFiles/logstruct_trace.dir/trace.cpp.o" "gcc" "src/trace/CMakeFiles/logstruct_trace.dir/trace.cpp.o.d"
  "/root/repo/src/trace/validate.cpp" "src/trace/CMakeFiles/logstruct_trace.dir/validate.cpp.o" "gcc" "src/trace/CMakeFiles/logstruct_trace.dir/validate.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/graph/CMakeFiles/logstruct_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/logstruct_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
