# Empty compiler generated dependencies file for logstruct_trace.
# This may be replaced when dependencies are built.
