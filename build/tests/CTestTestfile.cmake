# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/util_test[1]_include.cmake")
include("/root/repo/build/tests/graph_test[1]_include.cmake")
include("/root/repo/build/tests/sim_test[1]_include.cmake")
include("/root/repo/build/tests/apps_test[1]_include.cmake")
include("/root/repo/build/tests/order_test[1]_include.cmake")
include("/root/repo/build/tests/metrics_test[1]_include.cmake")
include("/root/repo/build/tests/vis_test[1]_include.cmake")
include("/root/repo/build/tests/trace_test[1]_include.cmake")
