
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/graph/digraph_test.cpp" "tests/CMakeFiles/graph_test.dir/graph/digraph_test.cpp.o" "gcc" "tests/CMakeFiles/graph_test.dir/graph/digraph_test.cpp.o.d"
  "/root/repo/tests/graph/leaps_test.cpp" "tests/CMakeFiles/graph_test.dir/graph/leaps_test.cpp.o" "gcc" "tests/CMakeFiles/graph_test.dir/graph/leaps_test.cpp.o.d"
  "/root/repo/tests/graph/scc_test.cpp" "tests/CMakeFiles/graph_test.dir/graph/scc_test.cpp.o" "gcc" "tests/CMakeFiles/graph_test.dir/graph/scc_test.cpp.o.d"
  "/root/repo/tests/graph/topo_test.cpp" "tests/CMakeFiles/graph_test.dir/graph/topo_test.cpp.o" "gcc" "tests/CMakeFiles/graph_test.dir/graph/topo_test.cpp.o.d"
  "/root/repo/tests/graph/union_find_test.cpp" "tests/CMakeFiles/graph_test.dir/graph/union_find_test.cpp.o" "gcc" "tests/CMakeFiles/graph_test.dir/graph/union_find_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/apps/CMakeFiles/logstruct_apps.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/logstruct_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/vis/CMakeFiles/logstruct_vis.dir/DependInfo.cmake"
  "/root/repo/build/src/metrics/CMakeFiles/logstruct_metrics.dir/DependInfo.cmake"
  "/root/repo/build/src/order/CMakeFiles/logstruct_order.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/logstruct_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/logstruct_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/logstruct_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
