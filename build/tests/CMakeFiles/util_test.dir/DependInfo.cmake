
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/util/csv_test.cpp" "tests/CMakeFiles/util_test.dir/util/csv_test.cpp.o" "gcc" "tests/CMakeFiles/util_test.dir/util/csv_test.cpp.o.d"
  "/root/repo/tests/util/flags_test.cpp" "tests/CMakeFiles/util_test.dir/util/flags_test.cpp.o" "gcc" "tests/CMakeFiles/util_test.dir/util/flags_test.cpp.o.d"
  "/root/repo/tests/util/rng_test.cpp" "tests/CMakeFiles/util_test.dir/util/rng_test.cpp.o" "gcc" "tests/CMakeFiles/util_test.dir/util/rng_test.cpp.o.d"
  "/root/repo/tests/util/stats_test.cpp" "tests/CMakeFiles/util_test.dir/util/stats_test.cpp.o" "gcc" "tests/CMakeFiles/util_test.dir/util/stats_test.cpp.o.d"
  "/root/repo/tests/util/table_test.cpp" "tests/CMakeFiles/util_test.dir/util/table_test.cpp.o" "gcc" "tests/CMakeFiles/util_test.dir/util/table_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/apps/CMakeFiles/logstruct_apps.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/logstruct_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/vis/CMakeFiles/logstruct_vis.dir/DependInfo.cmake"
  "/root/repo/build/src/metrics/CMakeFiles/logstruct_metrics.dir/DependInfo.cmake"
  "/root/repo/build/src/order/CMakeFiles/logstruct_order.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/logstruct_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/logstruct_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/logstruct_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
