
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/order/block_units_test.cpp" "tests/CMakeFiles/order_test.dir/order/block_units_test.cpp.o" "gcc" "tests/CMakeFiles/order_test.dir/order/block_units_test.cpp.o.d"
  "/root/repo/tests/order/fuzz_test.cpp" "tests/CMakeFiles/order_test.dir/order/fuzz_test.cpp.o" "gcc" "tests/CMakeFiles/order_test.dir/order/fuzz_test.cpp.o.d"
  "/root/repo/tests/order/infer_test.cpp" "tests/CMakeFiles/order_test.dir/order/infer_test.cpp.o" "gcc" "tests/CMakeFiles/order_test.dir/order/infer_test.cpp.o.d"
  "/root/repo/tests/order/io_validate_test.cpp" "tests/CMakeFiles/order_test.dir/order/io_validate_test.cpp.o" "gcc" "tests/CMakeFiles/order_test.dir/order/io_validate_test.cpp.o.d"
  "/root/repo/tests/order/merges_test.cpp" "tests/CMakeFiles/order_test.dir/order/merges_test.cpp.o" "gcc" "tests/CMakeFiles/order_test.dir/order/merges_test.cpp.o.d"
  "/root/repo/tests/order/parallel_stepping_test.cpp" "tests/CMakeFiles/order_test.dir/order/parallel_stepping_test.cpp.o" "gcc" "tests/CMakeFiles/order_test.dir/order/parallel_stepping_test.cpp.o.d"
  "/root/repo/tests/order/partition_graph_test.cpp" "tests/CMakeFiles/order_test.dir/order/partition_graph_test.cpp.o" "gcc" "tests/CMakeFiles/order_test.dir/order/partition_graph_test.cpp.o.d"
  "/root/repo/tests/order/phases_test.cpp" "tests/CMakeFiles/order_test.dir/order/phases_test.cpp.o" "gcc" "tests/CMakeFiles/order_test.dir/order/phases_test.cpp.o.d"
  "/root/repo/tests/order/pipeline_property_test.cpp" "tests/CMakeFiles/order_test.dir/order/pipeline_property_test.cpp.o" "gcc" "tests/CMakeFiles/order_test.dir/order/pipeline_property_test.cpp.o.d"
  "/root/repo/tests/order/stats_test.cpp" "tests/CMakeFiles/order_test.dir/order/stats_test.cpp.o" "gcc" "tests/CMakeFiles/order_test.dir/order/stats_test.cpp.o.d"
  "/root/repo/tests/order/stepping_test.cpp" "tests/CMakeFiles/order_test.dir/order/stepping_test.cpp.o" "gcc" "tests/CMakeFiles/order_test.dir/order/stepping_test.cpp.o.d"
  "/root/repo/tests/order/stressor_matrix_test.cpp" "tests/CMakeFiles/order_test.dir/order/stressor_matrix_test.cpp.o" "gcc" "tests/CMakeFiles/order_test.dir/order/stressor_matrix_test.cpp.o.d"
  "/root/repo/tests/order/wclock_test.cpp" "tests/CMakeFiles/order_test.dir/order/wclock_test.cpp.o" "gcc" "tests/CMakeFiles/order_test.dir/order/wclock_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/apps/CMakeFiles/logstruct_apps.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/logstruct_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/vis/CMakeFiles/logstruct_vis.dir/DependInfo.cmake"
  "/root/repo/build/src/metrics/CMakeFiles/logstruct_metrics.dir/DependInfo.cmake"
  "/root/repo/build/src/order/CMakeFiles/logstruct_order.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/logstruct_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/logstruct_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/logstruct_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
