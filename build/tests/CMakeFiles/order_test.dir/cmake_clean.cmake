file(REMOVE_RECURSE
  "CMakeFiles/order_test.dir/order/block_units_test.cpp.o"
  "CMakeFiles/order_test.dir/order/block_units_test.cpp.o.d"
  "CMakeFiles/order_test.dir/order/fuzz_test.cpp.o"
  "CMakeFiles/order_test.dir/order/fuzz_test.cpp.o.d"
  "CMakeFiles/order_test.dir/order/infer_test.cpp.o"
  "CMakeFiles/order_test.dir/order/infer_test.cpp.o.d"
  "CMakeFiles/order_test.dir/order/io_validate_test.cpp.o"
  "CMakeFiles/order_test.dir/order/io_validate_test.cpp.o.d"
  "CMakeFiles/order_test.dir/order/merges_test.cpp.o"
  "CMakeFiles/order_test.dir/order/merges_test.cpp.o.d"
  "CMakeFiles/order_test.dir/order/parallel_stepping_test.cpp.o"
  "CMakeFiles/order_test.dir/order/parallel_stepping_test.cpp.o.d"
  "CMakeFiles/order_test.dir/order/partition_graph_test.cpp.o"
  "CMakeFiles/order_test.dir/order/partition_graph_test.cpp.o.d"
  "CMakeFiles/order_test.dir/order/phases_test.cpp.o"
  "CMakeFiles/order_test.dir/order/phases_test.cpp.o.d"
  "CMakeFiles/order_test.dir/order/pipeline_property_test.cpp.o"
  "CMakeFiles/order_test.dir/order/pipeline_property_test.cpp.o.d"
  "CMakeFiles/order_test.dir/order/stats_test.cpp.o"
  "CMakeFiles/order_test.dir/order/stats_test.cpp.o.d"
  "CMakeFiles/order_test.dir/order/stepping_test.cpp.o"
  "CMakeFiles/order_test.dir/order/stepping_test.cpp.o.d"
  "CMakeFiles/order_test.dir/order/stressor_matrix_test.cpp.o"
  "CMakeFiles/order_test.dir/order/stressor_matrix_test.cpp.o.d"
  "CMakeFiles/order_test.dir/order/wclock_test.cpp.o"
  "CMakeFiles/order_test.dir/order/wclock_test.cpp.o.d"
  "order_test"
  "order_test.pdb"
  "order_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/order_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
