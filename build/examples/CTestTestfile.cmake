# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(example_quickstart "/root/repo/build/examples/quickstart" "--iterations=2")
set_tests_properties(example_quickstart PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;15;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_quickstart_noreorder "/root/repo/build/examples/quickstart" "--no-reorder")
set_tests_properties(example_quickstart_noreorder PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;17;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_lulesh_compare "/root/repo/build/examples/lulesh_compare" "--iterations=2")
set_tests_properties(example_lulesh_compare PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;19;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_lassen_hotspots "/root/repo/build/examples/lassen_hotspots" "--iterations=6")
set_tests_properties(example_lassen_hotspots PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;21;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_pdes_missing_deps "/root/repo/build/examples/pdes_missing_deps")
set_tests_properties(example_pdes_missing_deps PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;23;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_trace_inspect_roundtrip "/root/repo/build/examples/trace_inspect" "--app=lassen" "--out=/root/repo/build/examples/smoke.lstrace" "--html=/root/repo/build/examples/smoke.html" "--structure-out=/root/repo/build/examples/smoke.lstruct")
set_tests_properties(example_trace_inspect_roundtrip PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;24;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_taskdag_stencil "/root/repo/build/examples/taskdag_quickstart")
set_tests_properties(example_taskdag_stencil PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;29;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_metrics_tour "/root/repo/build/examples/metrics_tour" "--iterations=3")
set_tests_properties(example_metrics_tour PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;30;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_taskdag_forkjoin "/root/repo/build/examples/taskdag_quickstart" "--graph=forkjoin")
set_tests_properties(example_taskdag_forkjoin PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;31;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_trace_inspect_load "/root/repo/build/examples/trace_inspect" "--in=/root/repo/build/examples/smoke.lstrace")
set_tests_properties(example_trace_inspect_load PROPERTIES  DEPENDS "example_trace_inspect_roundtrip" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;33;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_trace_inspect_structure_reload "/root/repo/build/examples/trace_inspect" "--in=/root/repo/build/examples/smoke.lstrace" "--structure-in=/root/repo/build/examples/smoke.lstruct")
set_tests_properties(example_trace_inspect_structure_reload PROPERTIES  DEPENDS "example_trace_inspect_roundtrip" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;37;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_quickstart_cluster_html "/root/repo/build/examples/quickstart" "--cluster" "--html=/root/repo/build/examples/smoke_view.html")
set_tests_properties(example_quickstart_cluster_html PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;42;add_test;/root/repo/examples/CMakeLists.txt;0;")
