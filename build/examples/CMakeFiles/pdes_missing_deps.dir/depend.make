# Empty dependencies file for pdes_missing_deps.
# This may be replaced when dependencies are built.
