file(REMOVE_RECURSE
  "CMakeFiles/pdes_missing_deps.dir/pdes_missing_deps.cpp.o"
  "CMakeFiles/pdes_missing_deps.dir/pdes_missing_deps.cpp.o.d"
  "pdes_missing_deps"
  "pdes_missing_deps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pdes_missing_deps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
