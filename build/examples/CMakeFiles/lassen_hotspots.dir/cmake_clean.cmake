file(REMOVE_RECURSE
  "CMakeFiles/lassen_hotspots.dir/lassen_hotspots.cpp.o"
  "CMakeFiles/lassen_hotspots.dir/lassen_hotspots.cpp.o.d"
  "lassen_hotspots"
  "lassen_hotspots.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lassen_hotspots.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
