# Empty compiler generated dependencies file for lassen_hotspots.
# This may be replaced when dependencies are built.
