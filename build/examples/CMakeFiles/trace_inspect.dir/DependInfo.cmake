
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/trace_inspect.cpp" "examples/CMakeFiles/trace_inspect.dir/trace_inspect.cpp.o" "gcc" "examples/CMakeFiles/trace_inspect.dir/trace_inspect.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/apps/CMakeFiles/logstruct_apps.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/logstruct_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/vis/CMakeFiles/logstruct_vis.dir/DependInfo.cmake"
  "/root/repo/build/src/metrics/CMakeFiles/logstruct_metrics.dir/DependInfo.cmake"
  "/root/repo/build/src/order/CMakeFiles/logstruct_order.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/logstruct_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/logstruct_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/logstruct_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
