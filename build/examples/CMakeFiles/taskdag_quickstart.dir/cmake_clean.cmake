file(REMOVE_RECURSE
  "CMakeFiles/taskdag_quickstart.dir/taskdag_quickstart.cpp.o"
  "CMakeFiles/taskdag_quickstart.dir/taskdag_quickstart.cpp.o.d"
  "taskdag_quickstart"
  "taskdag_quickstart.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/taskdag_quickstart.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
