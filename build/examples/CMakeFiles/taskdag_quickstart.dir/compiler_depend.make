# Empty compiler generated dependencies file for taskdag_quickstart.
# This may be replaced when dependencies are built.
