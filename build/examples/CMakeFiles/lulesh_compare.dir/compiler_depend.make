# Empty compiler generated dependencies file for lulesh_compare.
# This may be replaced when dependencies are built.
