file(REMOVE_RECURSE
  "CMakeFiles/lulesh_compare.dir/lulesh_compare.cpp.o"
  "CMakeFiles/lulesh_compare.dir/lulesh_compare.cpp.o.d"
  "lulesh_compare"
  "lulesh_compare.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lulesh_compare.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
