/// Ablation (paper §1, challenge 2): "logically linked tasks may migrate
/// across processors." The chare-centric logical structure must be
/// insensitive to migration — the same phases and steps — even though the
/// processor timelines change completely. A process-centric organization
/// cannot offer that.

#include <set>
#include <string>

#include "apps/jacobi2d.hpp"
#include "bench_common.hpp"
#include "order/stats.hpp"
#include "order/stepping.hpp"
#include "util/flags.hpp"
#include "util/obs_flags.hpp"
#include "util/table.hpp"

namespace {

using namespace logstruct;

struct Run {
  order::StructureStats stats;
  std::string phase_kinds;  // 'a'/'r' per phase in offset order
  int chares_spanning_pes = 0;
};

Run measure(const apps::Jacobi2DConfig& cfg) {
  trace::Trace t = apps::run_jacobi2d(cfg);
  order::LogicalStructure ls =
      order::extract_structure(t, order::Options::charm());
  Run r;
  r.stats = order::compute_stats(t, ls);
  for (const auto& row : order::phase_table(t, ls))
    r.phase_kinds += row.runtime ? 'r' : 'a';
  for (trace::ChareId c = 0; c < t.num_chares(); ++c) {
    if (t.chare(c).runtime) continue;
    std::set<trace::ProcId> procs;
    for (trace::BlockId b : t.blocks_of_chare(c))
      procs.insert(t.block(b).proc);
    if (procs.size() > 1) ++r.chares_spanning_pes;
  }
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  util::Flags flags;
  flags.define_int("iterations", 4, "Jacobi iterations");
  util::define_obs_flags(flags);
  if (!flags.parse(argc, argv)) return 1;
  util::apply_obs_flags(flags);

  bench::figure_header(
      "Ablation — task migration (paper Sec. 1, challenge 2)",
      "when every chare migrates to another PE mid-run, the chare-centric "
      "logical structure keeps the same phase pattern while the processor "
      "timelines change");

  apps::Jacobi2DConfig fixed;
  fixed.chares_x = 4;
  fixed.chares_y = 4;
  fixed.num_pes = 4;
  fixed.iterations = static_cast<std::int32_t>(flags.get_int("iterations"));
  apps::Jacobi2DConfig moving = fixed;
  moving.migrate_at_iteration = fixed.iterations / 2;

  Run a = measure(fixed);
  Run b = measure(moving);

  util::TablePrinter table({"configuration", "phases", "phase pattern",
                            "steps", "chares spanning >1 PE"});
  table.row()
      .add("static placement")
      .add(static_cast<std::int64_t>(a.stats.num_phases))
      .add(a.phase_kinds)
      .add(static_cast<std::int64_t>(a.stats.width))
      .add(static_cast<std::int64_t>(a.chares_spanning_pes));
  table.row()
      .add("migrate at iteration " +
           std::to_string(moving.migrate_at_iteration))
      .add(static_cast<std::int64_t>(b.stats.num_phases))
      .add(b.phase_kinds)
      .add(static_cast<std::int64_t>(b.stats.width))
      .add(static_cast<std::int64_t>(b.chares_spanning_pes));
  table.print();

  bench::verdict(b.chares_spanning_pes == 16,
                 "every chare's timeline spans two processors after the "
                 "migration");
  bench::verdict(a.phase_kinds == b.phase_kinds &&
                     a.stats.num_phases == b.stats.num_phases,
                 "the chare-centric phase pattern is unchanged by the "
                 "migration");
  bench::verdict(b.stats.chare_step_violations == 0,
                 "DAG properties hold across the migration");
  util::finish_obs(flags, argv[0]);
  return 0;
}
