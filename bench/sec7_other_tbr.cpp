/// Section 7: "we expect our organization by data sub-domains, constraints
/// on phases, and reordering scheme to apply to other task-based models."
/// A generic explicit-task-DAG runtime (OmpSs/OCR-style list scheduling,
/// no Charm++ anywhere) traced per the §7.1 guidelines feeds the same
/// pipeline: grouping by data sub-domain recovers the iterated-stencil
/// wavefront that the worker timelines scramble beyond recognition.

#include <algorithm>
#include <set>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "order/stats.hpp"
#include "order/stepping.hpp"
#include "order/validate.hpp"
#include "sim/taskdag/taskdag.hpp"
#include "util/flags.hpp"
#include "util/obs_flags.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace logstruct;
  util::Flags flags;
  flags.define_int("width", 12, "stencil sub-domains");
  flags.define_int("steps", 8, "stencil time steps");
  flags.define_int("workers", 4, "simulated workers");
  util::define_obs_flags(flags);
  if (!flags.parse(argc, argv)) return 1;
  util::apply_obs_flags(flags);

  bench::figure_header(
      "Section 7 — applicability to other task-based runtimes",
      "a generic task-DAG runtime traced per the Sec. 7.1 guidelines "
      "yields the same recoverable structure: sub-domain timelines show "
      "the stencil's time-step bands, worker timelines do not");

  const auto width = static_cast<std::int32_t>(flags.get_int("width"));
  const auto steps = static_cast<std::int32_t>(flags.get_int("steps"));
  sim::taskdag::TaskGraph g = sim::taskdag::stencil_1d(width, steps);
  sim::taskdag::TaskDagConfig cfg;
  cfg.num_workers = static_cast<std::int32_t>(flags.get_int("workers"));
  trace::Trace t = sim::taskdag::simulate(g, cfg);
  order::LogicalStructure ls =
      order::extract_structure(t, order::Options::charm());
  bool sound = order::validate_structure(t, ls).empty();

  // Band statistics on SUB-DOMAIN timelines: spread of the k-th task's
  // starting step across owners; and the same measured on WORKER
  // timelines by wall-clock rank (what a process-centric view offers).
  std::vector<std::int32_t> owner_lo(static_cast<std::size_t>(steps),
                                     1 << 30);
  std::vector<std::int32_t> owner_hi(static_cast<std::size_t>(steps), -1);
  for (trace::ChareId c = 0; c < t.num_chares(); ++c) {
    auto blocks = t.blocks_of_chare(c);
    for (std::int32_t k = 0;
         k < static_cast<std::int32_t>(blocks.size()); ++k) {
      const auto bev =
          t.events_of_block(blocks[static_cast<std::size_t>(k)]);
      std::int32_t st =
          ls.global_step[static_cast<std::size_t>(bev.front())];
      owner_lo[static_cast<std::size_t>(k)] =
          std::min(owner_lo[static_cast<std::size_t>(k)], st);
      owner_hi[static_cast<std::size_t>(k)] =
          std::max(owner_hi[static_cast<std::size_t>(k)], st);
    }
  }
  bool bands_ordered = true;
  std::int32_t worst_spread = 0;
  for (std::int32_t k = 0; k < steps; ++k) {
    worst_spread = std::max(
        worst_spread, owner_hi[static_cast<std::size_t>(k)] -
                          owner_lo[static_cast<std::size_t>(k)]);
    if (k > 0 && owner_hi[static_cast<std::size_t>(k - 1)] >=
                     owner_lo[static_cast<std::size_t>(k)])
      bands_ordered = false;
  }

  // How scrambled is the schedule? Count, per worker, adjacent block
  // pairs that belong to non-adjacent time steps (task index / width).
  std::int64_t scrambled = 0, adjacent_pairs = 0;
  {
    std::vector<std::int32_t> task_step(g.size());
    for (std::size_t i = 0; i < g.size(); ++i)
      task_step[i] = static_cast<std::int32_t>(i) / width;
    // Recover each block's task id via (owner, per-owner position).
    std::vector<std::int32_t> owner_seen(
        static_cast<std::size_t>(width), 0);
    std::vector<std::int32_t> block_step(
        static_cast<std::size_t>(t.num_blocks()), 0);
    for (trace::ChareId c = 0; c < t.num_chares(); ++c) {
      for (trace::BlockId b : t.blocks_of_chare(c)) {
        block_step[static_cast<std::size_t>(b)] =
            owner_seen[static_cast<std::size_t>(c)]++;
      }
    }
    for (trace::ProcId w = 0; w < t.num_procs(); ++w) {
      auto blocks = t.blocks_of_proc(w);
      for (std::size_t i = 1; i < blocks.size(); ++i) {
        ++adjacent_pairs;
        if (std::abs(block_step[static_cast<std::size_t>(blocks[i])] -
                     block_step[static_cast<std::size_t>(blocks[i - 1])]) >
            1)
          ++scrambled;
      }
    }
  }

  util::TablePrinter table({"view", "observation"});
  table.row().add("worker timelines").add(
      std::to_string(scrambled) + "/" + std::to_string(adjacent_pairs) +
      " adjacent executions jump time steps");
  table.row().add("sub-domain timelines").add(
      "time-step bands ordered, worst in-band spread " +
      std::to_string(worst_spread) + " steps");
  table.print();

  bench::verdict(sound, "pipeline invariants hold on the non-Charm trace");
  bench::verdict(bands_ordered && worst_spread <= 8,
                 "sub-domain grouping recovers the stencil's time-step "
                 "bands");
  bench::verdict(scrambled > 0,
                 "the schedule really was scrambled (" +
                     std::to_string(scrambled) +
                     " cross-step jumps on workers)");
  util::finish_obs(flags, argv[0]);
  return 0;
}
