/// Figure 12: idle experienced by events in a 16-chare execution of
/// Jacobi 2D, shown in logical and physical time. Chares idle while
/// waiting for the reduction; the metric charges the idle to the blocks
/// that starved.

#include "apps/jacobi2d.hpp"
#include "bench_common.hpp"
#include "metrics/idle.hpp"
#include "order/stepping.hpp"
#include "util/flags.hpp"
#include "util/obs_flags.hpp"
#include "util/table.hpp"
#include "vis/ascii.hpp"

int main(int argc, char** argv) {
  using namespace logstruct;
  util::Flags flags;
  flags.define_int("iterations", 3, "Jacobi iterations");
  flags.define_int("seed", 1, "simulation seed");
  util::define_obs_flags(flags);
  if (!flags.parse(argc, argv)) return 1;
  util::apply_obs_flags(flags);

  bench::figure_header(
      "Figure 12 — idle experienced, 16-chare Jacobi 2D",
      "tasks experience idle while waiting for the reduction; the events "
      "right after recorded idle (and those whose dependency predates its "
      "end) carry the metric");

  apps::Jacobi2DConfig cfg;
  cfg.chares_x = 4;
  cfg.chares_y = 4;
  cfg.num_pes = 8;
  cfg.iterations = static_cast<std::int32_t>(flags.get_int("iterations"));
  cfg.seed = static_cast<std::uint64_t>(flags.get_int("seed"));
  trace::Trace t = apps::run_jacobi2d(cfg);
  order::LogicalStructure ls =
      order::extract_structure(t, order::Options::charm());
  metrics::IdleExperienced ie = metrics::idle_experienced(t);

  // Aggregate idle experienced per phase: it should concentrate in the
  // runtime (reduction) phases and the application phase right after.
  std::vector<trace::TimeNs> per_phase(
      static_cast<std::size_t>(ls.num_phases()), 0);
  trace::TimeNs total = 0;
  std::int64_t affected = 0;
  for (trace::EventId e = 0; e < t.num_events(); ++e) {
    trace::TimeNs v = ie.per_event[static_cast<std::size_t>(e)];
    if (v == 0) continue;
    per_phase[static_cast<std::size_t>(
        ls.phases.phase_of_event[static_cast<std::size_t>(e)])] += v;
    total += v;
    ++affected;
  }

  util::TablePrinter table({"phase", "kind", "idle experienced (us)"});
  trace::TimeNs rt_and_after = 0;
  for (std::int32_t p = 0; p < ls.num_phases(); ++p) {
    table.row()
        .add(static_cast<std::int64_t>(p))
        .add(ls.phases.runtime[static_cast<std::size_t>(p)] ? "runtime"
                                                            : "app")
        .add(per_phase[static_cast<std::size_t>(p)] / 1000.0);
    bool counts = ls.phases.runtime[static_cast<std::size_t>(p)] ||
                  (p > 0 && ls.phases.runtime[static_cast<std::size_t>(p - 1)]);
    if (counts) rt_and_after += per_phase[static_cast<std::size_t>(p)];
  }
  table.print();
  std::printf("total idle experienced: %.1f us across %lld events\n\n",
              total / 1000.0, static_cast<long long>(affected));

  // The paper's figure shows the metric in both views.
  std::vector<double> values(ie.per_event.begin(), ie.per_event.end());
  vis::AsciiOptions vopts;
  vopts.max_cols = 100;
  std::fputs(vis::render_metric_ascii(t, ls, values, true, vopts).c_str(),
             stdout);
  std::fputs("\n", stdout);
  std::fputs(vis::render_metric_ascii(t, ls, values, false, vopts).c_str(),
             stdout);

  bench::verdict(total > 0 && rt_and_after > total / 2,
                 "idle concentrates at the reductions and the phases "
                 "they gate");
  util::finish_obs(flags, argv[0]);
  return 0;
}
