/// Section 5: the added process-local reduction tracing costs a small
/// constant per contribute call. In the simulator the physical execution
/// is identical; the measurable difference is the extra trace records —
/// and the structural payoff: without them, the reduction's process-local
/// control flow is invisible.

#include <sstream>

#include "apps/jacobi2d.hpp"
#include "bench_common.hpp"
#include "order/stats.hpp"
#include "order/stepping.hpp"
#include "trace/io.hpp"
#include "util/flags.hpp"
#include "util/obs_flags.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace logstruct;
  util::Flags flags;
  flags.define_int("iterations", 4, "Jacobi iterations");
  util::define_obs_flags(flags);
  if (!flags.parse(argc, argv)) return 1;
  util::apply_obs_flags(flags);

  bench::figure_header(
      "Section 5 — cost and payoff of the local-reduction tracing",
      "the contribute-side events add a small constant per call "
      "(negligible overhead) and make the process-local reduction "
      "control flow reconstructible");

  apps::Jacobi2DConfig cfg;
  cfg.chares_x = 4;
  cfg.chares_y = 4;
  cfg.num_pes = 4;
  cfg.iterations = static_cast<std::int32_t>(flags.get_int("iterations"));

  util::TablePrinter table({"tracing", "events", "blocks",
                            "trace bytes", "end time (us)",
                            "runtime events"});
  std::int64_t sizes[2] = {0, 0};
  std::int64_t events[2] = {0, 0};
  trace::TimeNs ends[2] = {0, 0};
  for (int with : {0, 1}) {
    cfg.trace_local_reductions = with != 0;
    trace::Trace t = apps::run_jacobi2d(cfg);
    std::ostringstream os;
    trace::write_trace(t, os);
    std::int64_t rt_events = 0;
    for (trace::EventId e = 0; e < t.num_events(); ++e)
      if (t.is_runtime_event(e)) ++rt_events;
    sizes[with] = static_cast<std::int64_t>(os.str().size());
    events[with] = t.num_events();
    ends[with] = t.end_time();
    table.row()
        .add(with ? "with Sec. 5 additions" : "pre-Sec. 5")
        .add(static_cast<std::int64_t>(t.num_events()))
        .add(static_cast<std::int64_t>(t.num_blocks()))
        .add(sizes[with])
        .add(t.end_time() / 1000.0)
        .add(rt_events);
  }
  table.print();

  std::int64_t extra_events = events[1] - events[0];
  std::int64_t contributes = 16 * cfg.iterations;  // one per chare per iter
  std::printf("extra events per contribute call: %.2f (constant)\n",
              static_cast<double>(extra_events) /
                  static_cast<double>(contributes));

  bench::verdict(ends[0] == ends[1],
                 "identical execution time: the tracing itself is free in "
                 "the simulator (negligible in practice per the paper)");
  bench::verdict(extra_events > 0 && extra_events <= 3 * contributes,
                 "bounded constant number of extra records per contribute");
  util::finish_obs(flags, argv[0]);
  return 0;
}
