#pragma once

/// Shared helpers for the figure-reproduction harnesses. Each bench
/// regenerates the rows/series of one paper table or figure and prints a
/// PASS/DEVIATION verdict for the qualitative claim it carries.

#include <cstdio>
#include <string>

namespace logstruct::bench {

inline void figure_header(const char* id, const char* claim) {
  std::printf("\n================================================================\n");
  std::printf("%s\n", id);
  std::printf("paper claim: %s\n", claim);
  std::printf("================================================================\n");
}

inline void verdict(bool ok, const std::string& detail) {
  std::printf("[%s] %s\n", ok ? "PASS" : "DEVIATION", detail.c_str());
}

}  // namespace logstruct::bench
