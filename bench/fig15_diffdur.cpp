/// Figure 15: differential duration on a 16-chare Jacobi 2D: one chare
/// experiences a significantly longer computation block (orange), easily
/// located at its (chare, step) in logical time.

#include "apps/jacobi2d.hpp"
#include "bench_common.hpp"
#include "metrics/duration.hpp"
#include "order/stepping.hpp"
#include "util/flags.hpp"
#include "util/obs_flags.hpp"
#include "vis/ascii.hpp"

int main(int argc, char** argv) {
  using namespace logstruct;
  util::Flags flags;
  flags.define_int("iterations", 3, "Jacobi iterations");
  flags.define_int("slow-chare", 5, "chare with the long computation");
  flags.define_int("slow-iteration", 1, "0-based iteration of the event");
  util::define_obs_flags(flags);
  if (!flags.parse(argc, argv)) return 1;
  util::apply_obs_flags(flags);

  bench::figure_header(
      "Figure 15 — differential duration, 16-chare Jacobi 2D",
      "one chare's computation block takes significantly longer than its "
      "peers at the same logical step; the metric singles it out");

  apps::Jacobi2DConfig cfg;
  cfg.chares_x = 4;
  cfg.chares_y = 4;
  cfg.num_pes = 8;
  cfg.iterations = static_cast<std::int32_t>(flags.get_int("iterations"));
  cfg.compute_noise_ns = 500;
  cfg.slow_chare = static_cast<std::int32_t>(flags.get_int("slow-chare"));
  cfg.slow_iteration =
      static_cast<std::int32_t>(flags.get_int("slow-iteration"));
  cfg.slow_factor = 6.0;
  trace::Trace t = apps::run_jacobi2d(cfg);
  order::LogicalStructure ls =
      order::extract_structure(t, order::Options::charm());
  metrics::DifferentialDuration dd = metrics::differential_duration(t, ls);

  std::printf("max differential duration: %.1f us\n", dd.max_value / 1000.0);
  bool located = dd.max_event != trace::kNone;
  std::int32_t found_chare = -1;
  if (located) {
    found_chare = t.chare(t.event(dd.max_event).chare).index;
    std::printf("  at chare %s (index %d), global step %d, phase %d\n",
                t.chare(t.event(dd.max_event).chare).name.c_str(),
                found_chare,
                ls.global_step[static_cast<std::size_t>(dd.max_event)],
                ls.phases.phase_of_event[static_cast<std::size_t>(
                    dd.max_event)]);
  }

  // The figure: the long computation stands out at its (chare, step).
  std::vector<double> values(dd.per_event.begin(), dd.per_event.end());
  vis::AsciiOptions vopts;
  vopts.max_cols = 100;
  std::fputs(vis::render_metric_ascii(t, ls, values, true, vopts).c_str(),
             stdout);

  // Expected excess: (slow_factor - 1) x base compute.
  trace::TimeNs expected =
      static_cast<trace::TimeNs>((6.0 - 1.0) * cfg.compute_ns);
  bench::verdict(located && found_chare == cfg.slow_chare &&
                     dd.max_value > expected / 2,
                 "metric pinpoints the injected slow chare at its logical "
                 "position");
  util::finish_obs(flags, argv[0]);
  return 0;
}
