/// Google-benchmark micro suite for the pipeline building blocks
/// (Sec. 3.3's complexity discussion): initial partitioning, the merge
/// passes, full phase finding, step assignment, SCC, and leap
/// computation, across trace sizes.

#include <benchmark/benchmark.h>

#include <cstdio>
#include <vector>

#if defined(__GLIBC__)
#include <malloc.h>
#endif

#include "apps/jacobi2d.hpp"
#include "pipeline_json.hpp"
#include "apps/lulesh.hpp"
#include "apps/mergetree.hpp"
#include "sim/taskdag/taskdag.hpp"
#include "graph/leaps.hpp"
#include "graph/scc.hpp"
#include "metrics/efficiency.hpp"
#include "metrics/windows.hpp"
#include "obs/memstats.hpp"
#include "obs/sampler.hpp"
#include "obs/serve.hpp"
#include "order/initial.hpp"
#include "trace/storage/block_cache.hpp"
#include "trace/storage/blocked_trace.hpp"
#include "trace/storage/options.hpp"
#include "order/causality.hpp"
#include "order/merges.hpp"
#include "order/phases.hpp"
#include "order/stepping.hpp"
#include "util/crc32c.hpp"
#include "util/stopwatch.hpp"
#include "util/thread_pool.hpp"

namespace {

using namespace logstruct;

trace::Trace lulesh_trace(std::int32_t grid) {
  apps::LuleshConfig cfg;
  cfg.nx = cfg.ny = cfg.nz = grid;
  cfg.num_pes = 8;
  cfg.iterations = 4;
  return apps::run_lulesh_charm(cfg);
}

void BM_InitialPartitions(benchmark::State& state) {
  trace::Trace t = lulesh_trace(static_cast<std::int32_t>(state.range(0)));
  order::PartitionOptions opts;
  for (auto _ : state) {
    auto pg = order::build_initial_partitions(t, opts);
    benchmark::DoNotOptimize(pg.num_partitions());
  }
  state.SetItemsProcessed(state.iterations() * t.num_events());
}
BENCHMARK(BM_InitialPartitions)->Arg(2)->Arg(4)->Arg(6);

void BM_DependencyMerge(benchmark::State& state) {
  trace::Trace t = lulesh_trace(static_cast<std::int32_t>(state.range(0)));
  order::PartitionOptions opts;
  for (auto _ : state) {
    state.PauseTiming();
    auto pg = order::build_initial_partitions(t, opts);
    pg.cycle_merge();
    state.ResumeTiming();
    order::dependency_merge(pg);
    benchmark::DoNotOptimize(pg.num_partitions());
  }
  state.SetItemsProcessed(state.iterations() * t.num_events());
}
BENCHMARK(BM_DependencyMerge)->Arg(2)->Arg(4)->Arg(6);

void BM_FindPhases(benchmark::State& state) {
  trace::Trace t = lulesh_trace(static_cast<std::int32_t>(state.range(0)));
  order::PartitionOptions opts;
  for (auto _ : state) {
    auto phases = order::find_phases(t, opts);
    benchmark::DoNotOptimize(phases.num_phases());
  }
  state.SetItemsProcessed(state.iterations() * t.num_events());
}
BENCHMARK(BM_FindPhases)->Arg(2)->Arg(4)->Arg(6);

void BM_ExtractStructure(benchmark::State& state) {
  trace::Trace t = lulesh_trace(static_cast<std::int32_t>(state.range(0)));
  for (auto _ : state) {
    auto ls = order::extract_structure(t, order::Options::charm());
    benchmark::DoNotOptimize(ls.max_step);
  }
  state.SetItemsProcessed(state.iterations() * t.num_events());
}
BENCHMARK(BM_ExtractStructure)->Arg(2)->Arg(4)->Arg(6);

/// BM_ExtractStructure with the live-telemetry layer on: the background
/// obs::Sampler (5 ms period) and the /metrics HTTP exporter run for
/// the duration of the benchmark. Compare against BM_ExtractStructure
/// at the same grid, but note the raw pair conflates glibc malloc's
/// lost single-thread fast path (this variant is the first benchmark
/// to create a thread) with telemetry cost — the controlled number is
/// the `obs/live_overhead` pseudo-pass in BENCH_pipeline.json, which
/// interleaves dark/live reps in identical process state and must stay
/// under the < 2% bar (docs/OBSERVABILITY.md).
void BM_ExtractStructureLiveObs(benchmark::State& state) {
  trace::Trace t = lulesh_trace(static_cast<std::int32_t>(state.range(0)));
  obs::Sampler& sampler = obs::Sampler::global();
  obs::MetricsServer server;
  sampler.start(5);
  server.start(0);  // ephemeral loopback port
  for (auto _ : state) {
    auto ls = order::extract_structure(t, order::Options::charm());
    benchmark::DoNotOptimize(ls.max_step);
  }
  server.stop();
  sampler.stop();
  state.counters["obs_samples"] =
      static_cast<double>(sampler.total_samples());
  state.SetLabel("live-obs");
  state.SetItemsProcessed(state.iterations() * t.num_events());
}
BENCHMARK(BM_ExtractStructureLiveObs)->Arg(6);

/// End-to-end extraction on the largest LULESH grid at an explicit
/// thread count (range(0) = grid, range(1) = threads); the threads=1 /
/// threads=hw pair is what the trajectory document records and what the
/// ISSUE's >= 1.5x speedup criterion is measured on. Registered from
/// main() so threads=hardware is resolved at runtime.
void BM_ExtractStructureThreads(benchmark::State& state) {
  trace::Trace t = lulesh_trace(static_cast<std::int32_t>(state.range(0)));
  order::Options opts = order::Options::charm();
  opts.threads = static_cast<int>(state.range(1));
  for (auto _ : state) {
    auto ls = order::extract_structure(t, opts);
    benchmark::DoNotOptimize(ls.max_step);
  }
  state.SetItemsProcessed(state.iterations() * t.num_events());
}

void register_threaded_benchmarks() {
  const int hw = logstruct::util::ThreadPool::hardware_threads();
  std::vector<int> counts = {1};
  if (hw > 1) counts.push_back(hw);
  if (hw != 4) counts.push_back(4);  // fixed oversubscription point
  for (int t : counts) {
    benchmark::RegisterBenchmark("BM_ExtractStructureThreads",
                                 &BM_ExtractStructureThreads)
        ->Args({6, t});
  }
}

/// Full extraction with the trace frozen on each storage backend
/// (range(0): 0 = mem, 1 = blocked with the default 256 MiB cache) —
/// the steady-state read-path overhead of serving every accessor
/// through the block cache instead of raw vectors.
void BM_BlockedExtract(benchmark::State& state) {
  trace::storage::StorageOptions sopts = trace::storage::default_options();
  sopts.kind = state.range(0) != 0
                   ? trace::storage::BackendKind::Blocked
                   : trace::storage::BackendKind::Mem;
  trace::storage::ScopedStorageOptions scope(sopts);
  trace::Trace t = lulesh_trace(6);
  trace::storage::BlockCache::global().reset_stats();
  for (auto _ : state) {
    auto ls = order::extract_structure(t, order::Options::charm());
    benchmark::DoNotOptimize(ls.max_step);
  }
  const trace::storage::BlockCache::Stats stats =
      trace::storage::BlockCache::global().stats();
  const double lookups =
      static_cast<double>(stats.hits) + static_cast<double>(stats.misses);
  state.counters["cache_hit_rate"] =
      lookups > 0 ? static_cast<double>(stats.hits) / lookups : 0.0;
  state.SetLabel(state.range(0) != 0 ? "storage=blocked" : "storage=mem");
  state.SetItemsProcessed(state.iterations() * t.num_events());
}
BENCHMARK(BM_BlockedExtract)->Arg(0)->Arg(1);

/// Phase-window construction + all four POP efficiency kernels over an
/// already-extracted structure (docs/METRICS.md): the cost of the
/// time-resolved metrics layer alone, excluding extraction.
void BM_EfficiencySuite(benchmark::State& state) {
  trace::Trace t = lulesh_trace(static_cast<std::int32_t>(state.range(0)));
  auto ls = order::extract_structure(t, order::Options::charm());
  for (auto _ : state) {
    metrics::WindowSet ws = metrics::WindowSet::phases(t, ls.phases);
    metrics::EfficiencySuite suite = metrics::efficiency_suite(t, ws);
    benchmark::DoNotOptimize(suite.parallel.summary.mean);
  }
  state.SetItemsProcessed(state.iterations() * t.num_events());
}
BENCHMARK(BM_EfficiencySuite)->Arg(2)->Arg(4)->Arg(6);

void BM_StepAssignOnly(benchmark::State& state) {
  trace::Trace t = lulesh_trace(static_cast<std::int32_t>(state.range(0)));
  order::Options opts = order::Options::charm();
  auto phases = order::find_phases(t, opts.partition);
  for (auto _ : state) {
    auto copy = phases;
    auto ls = order::assign_steps(t, std::move(copy), opts);
    benchmark::DoNotOptimize(ls.max_step);
  }
  state.SetItemsProcessed(state.iterations() * t.num_events());
}
BENCHMARK(BM_StepAssignOnly)->Arg(2)->Arg(4)->Arg(6);

graph::Digraph random_dag(std::int32_t n, std::int32_t degree) {
  graph::Digraph g(n);
  std::uint64_t x = 88172645463325252ULL;
  auto rnd = [&x]() {
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    return x;
  };
  for (std::int32_t u = 1; u < n; ++u) {
    for (std::int32_t k = 0; k < degree; ++k) {
      g.add_edge(static_cast<graph::NodeId>(rnd() % static_cast<std::uint64_t>(u)),
                 u);
    }
  }
  g.finalize();
  return g;
}

void BM_Scc(benchmark::State& state) {
  graph::Digraph g = random_dag(static_cast<std::int32_t>(state.range(0)), 3);
  for (auto _ : state) {
    auto scc = graph::strongly_connected_components(g);
    benchmark::DoNotOptimize(scc.num_components);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_Scc)->Arg(1024)->Arg(16384)->Arg(131072);

void BM_Leaps(benchmark::State& state) {
  graph::Digraph g = random_dag(static_cast<std::int32_t>(state.range(0)), 3);
  for (auto _ : state) {
    auto leaps = graph::compute_leaps(g);
    benchmark::DoNotOptimize(leaps.size());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_Leaps)->Arg(1024)->Arg(16384)->Arg(131072);

void BM_MpiSimulation(benchmark::State& state) {
  apps::MergeTreeConfig cfg;
  cfg.num_ranks = static_cast<std::int32_t>(state.range(0));
  for (auto _ : state) {
    trace::Trace t = apps::run_mergetree_mpi(cfg);
    benchmark::DoNotOptimize(t.num_events());
  }
}
BENCHMARK(BM_MpiSimulation)->Arg(64)->Arg(1024);

void BM_TaskDagSimulation(benchmark::State& state) {
  sim::taskdag::TaskGraph g = sim::taskdag::stencil_1d(
      static_cast<std::int32_t>(state.range(0)), 16);
  sim::taskdag::TaskDagConfig cfg;
  for (auto _ : state) {
    trace::Trace t = sim::taskdag::simulate(g, cfg);
    benchmark::DoNotOptimize(t.num_events());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(g.size()));
}
BENCHMARK(BM_TaskDagSimulation)->Arg(16)->Arg(64);

void BM_JacobiSimulation(benchmark::State& state) {
  for (auto _ : state) {
    apps::Jacobi2DConfig cfg;
    cfg.chares_x = 8;
    cfg.chares_y = 8;
    cfg.num_pes = 8;
    cfg.iterations = static_cast<std::int32_t>(state.range(0));
    trace::Trace t = apps::run_jacobi2d(cfg);
    benchmark::DoNotOptimize(t.num_events());
  }
}
BENCHMARK(BM_JacobiSimulation)->Arg(2)->Arg(8);

/// Per-pass wall-time + allocation trajectory over the LULESH grids the
/// BM_* suite uses (grid g => g^3 chares), written as
/// BENCH_pipeline.json (schema logstruct-bench-pipeline/v6; override
/// the path with the BENCH_PIPELINE_JSON environment variable).
/// tools/bench_gate.py diffs these documents across PRs, like-for-like
/// per thread count. The largest grid is re-run at threads=hardware
/// (and at a fixed threads=4 oversubscription point) so the trajectory
/// captures the parallel pipeline's scaling alongside the serial
/// baseline. Each workload also records a `metrics/efficiency_suite`
/// pseudo-pass — phase windows + the four POP kernels over the
/// extracted structure — timed here because the metrics layer runs
/// after the pass manager (docs/METRICS.md) — and an
/// `order/check_causality` pseudo-pass: vector-clock oracle build plus
/// the happened-before check over the recovered structure, at the
/// workload's thread count (docs/CAUSALITY.md). The checker is opt-in
/// in production, so its cost is gated here instead of inside the
/// pass-manager run.
void emit_pipeline_trajectory() {
#if defined(__GLIBC__)
  // Pin glibc's mmap threshold at its dynamic cap. By default the
  // threshold ramps up as large chunks are freed, so whether a
  // workload's big vectors come from mmap (returned to the OS on free)
  // or the sbrk arena (retained, reusable by the next workload) depends
  // on the exact free history and ASLR — which made the storage sweep's
  // per-workload RSS attribution bimodal across runs (~2x swings on the
  // tight-cache row). Pinning the threshold up front reproduces the
  // converged steady state deterministically.
  mallopt(M_MMAP_THRESHOLD, 32 << 20);
#endif
  bench::PipelineTrajectory traj("micro_pipeline");
  auto run_with_efficiency = [&traj](const std::string& name,
                                     const trace::Trace& t,
                                     const order::Options& opts) {
    order::LogicalStructure ls = traj.run(name, t, opts);
    obs::AllocScope allocs;
    util::Stopwatch sw;
    metrics::WindowSet ws = metrics::WindowSet::phases(t, ls.phases);
    metrics::EfficiencySuite suite =
        metrics::efficiency_suite(t, ws, opts.threads);
    benchmark::DoNotOptimize(suite.parallel.summary.mean);
    traj.add_pass("metrics/efficiency_suite", sw.seconds(),
                  allocs.delta().bytes, opts.effective_threads());
    // The causality checker as a bench-gated pseudo-pass: oracle build
    // plus the full happened-before check over the recovered structure.
    // It is opt-in in production, so its cost lives here (not inside
    // traj.run) — but a regression in the oracle's topological sweep or
    // the fallback walk must trip the gate like any real pass.
    obs::AllocScope check_allocs;
    util::Stopwatch check_sw;
    order::CausalityOptions copts;
    copts.threads = opts.threads;
    order::CausalityOracle oracle(t, copts);
    order::CausalityReport report = order::check_causality(t, ls, oracle);
    benchmark::DoNotOptimize(report.edges_checked);
    if (!report.clean()) {
      std::fprintf(stderr, "micro_pipeline: %lld causality violations!\n",
                   static_cast<long long>(report.total_violations));
      std::abort();
    }
    traj.add_pass("order/check_causality", check_sw.seconds(),
                  check_allocs.delta().bytes, opts.effective_threads());
  };
  for (std::int32_t grid : {2, 4, 6}) {
    trace::Trace t = lulesh_trace(grid);
    char name[64];
    std::snprintf(name, sizeof(name), "lulesh/chares=%d",
                  grid * grid * grid);
    run_with_efficiency(name, t, order::Options::charm());
  }
  {
    trace::Trace t = lulesh_trace(6);
    const int hw = util::ThreadPool::hardware_threads();
    std::vector<int> counts;
    if (hw > 1) counts.push_back(hw);
    if (hw != 4) counts.push_back(4);
    for (int threads : counts) {
      order::Options opts = order::Options::charm();
      opts.threads = threads;
      run_with_efficiency("lulesh/chares=216", t, opts);
    }
  }
  {
    apps::Jacobi2DConfig cfg;
    cfg.chares_x = 8;
    cfg.chares_y = 8;
    cfg.num_pes = 8;
    cfg.iterations = 8;
    trace::Trace t = apps::run_jacobi2d(cfg);
    run_with_efficiency("jacobi2d/8x8", t, order::Options::charm());
  }
  {
    apps::MergeTreeConfig cfg;
    cfg.num_ranks = 64;
    trace::Trace t = apps::run_mergetree_mpi(cfg);
    run_with_efficiency("mergetree/ranks=64", t, order::Options::mpi());
  }

  // Storage-backend sweep: one large LULESH run per backend, covering
  // the full lifecycle (simulate + freeze + column sweep + extraction)
  // so the mem backend's resident columns and the blocked backend's
  // bounded cache both show up in the per-workload peak_rss_kb. The
  // gate (tools/bench_gate.py) tracks that number per workload across
  // PRs; the blocked rows must stay materially below the mem row.
  {
    struct StorageCase {
      const char* name;
      trace::storage::BackendKind kind;
      std::uint64_t cache_bytes;
    };
    const StorageCase cases[] = {
        {"mem", trace::storage::BackendKind::Mem, 0},
        {"blocked-256mb", trace::storage::BackendKind::Blocked,
         256ull << 20},
        {"blocked-8mb", trace::storage::BackendKind::Blocked, 8ull << 20},
    };
    for (const StorageCase& c : cases) {
      trace::storage::StorageOptions sopts =
          trace::storage::default_options();
      sopts.kind = c.kind;
      if (c.cache_bytes != 0) sopts.cache_bytes = c.cache_bytes;
      trace::storage::ScopedStorageOptions scope(sopts);
      trace::storage::BlockCache::global().reset_stats();
      obs::reset_peak_rss();
      const std::int64_t rss_start = obs::current_rss_kb();
      obs::AllocScope allocs;
      util::Stopwatch sw;

      apps::LuleshConfig cfg;
      cfg.nx = cfg.ny = cfg.nz = 10;
      cfg.num_pes = 8;
      cfg.iterations = 40;
      trace::Trace t = apps::run_lulesh_charm(cfg);
      benchmark::DoNotOptimize(
          trace::storage::trace_structure_hash(t));  // full column sweep
      order::LogicalStructure ls =
          order::extract_structure(t, order::Options::charm());
      benchmark::DoNotOptimize(ls.max_step);

      bench::PipelineWorkload w;
      w.name = std::string("lulesh-large/storage=") + c.name;
      w.events = t.num_events();
      w.phases = ls.num_phases();
      w.threads = 1;
      w.total_seconds = sw.seconds();
      // Workload-attributed growth, not the process high-water mark:
      // reset_peak_rss() above rebased VmHWM to the RSS at entry.
      const std::int64_t grown = obs::peak_rss_kb() - rss_start;
      w.peak_rss_kb = grown > 0 ? grown : 0;
      w.storage = c.name;
      const trace::storage::BlockCache::Stats stats =
          trace::storage::BlockCache::global().stats();
      w.cache_hits = static_cast<std::int64_t>(stats.hits);
      w.cache_misses = static_cast<std::int64_t>(stats.misses);
      order::PassRecord alloc_rec;
      alloc_rec.name = "storage/lifecycle";
      alloc_rec.seconds = w.total_seconds;
      alloc_rec.alloc_bytes = allocs.delta().bytes;
      alloc_rec.threads = 1;
      alloc_rec.ran = true;
      w.passes.push_back(std::move(alloc_rec));
      traj.add_workload(std::move(w));
    }
  }
  // Checksum kernel probe: CRC32C over a 32 MiB buffer, recorded as the
  // `trace/storage/checksum` pseudo-pass. Every v2 `.lsblk` block write
  // and verified read pays this kernel, so a regression here — say the
  // hardware dispatch silently falling back to the table path — taxes
  // the entire blocked backend; the gate diffs it like any manager
  // pass (tools/bench_gate.py --self-test proves a 2x slip fails).
  {
    std::vector<char> buf(32u << 20);
    std::uint64_t x = 0x9E3779B97F4A7C15ull;
    for (std::size_t i = 0; i < buf.size(); ++i) {
      x ^= x << 13;
      x ^= x >> 7;
      x ^= x << 17;
      buf[i] = static_cast<char>(x);
    }
    std::uint32_t sum = util::crc32c(buf.data(), buf.size());  // warm
    double best = 0;
    for (int rep = 0; rep < 5; ++rep) {
      util::Stopwatch sw;
      sum ^= util::crc32c(buf.data(), buf.size());
      const double s = sw.seconds();
      if (rep == 0 || s < best) best = s;
    }
    benchmark::DoNotOptimize(sum);
    bench::PipelineWorkload w;
    w.name = "crc32c/32mb";
    w.total_seconds = best;
    order::PassRecord rec;
    rec.name = "trace/storage/checksum";
    rec.seconds = best;
    rec.threads = 1;
    rec.ran = true;
    w.passes.push_back(std::move(rec));
    traj.add_workload(std::move(w));
  }
  // Live-telemetry overhead probe: the large LULESH extraction dark vs
  // with the background sampler + /metrics exporter live. Dark and
  // live reps interleave (D L D L ...) so clock drift on shared hosts
  // cancels instead of landing on one side, and both sides run after
  // a thread has existed — comparing a never-threaded process to a
  // threaded one would mis-bill glibc malloc's lost single-thread fast
  // path (~10% on this workload) to the telemetry layer. Serial
  // extraction to match BM_ExtractStructure (on a 1-core host an
  // oversubscribed threads=4 run bills scheduler churn, not telemetry,
  // to the delta). The best-of-reps delta lands as an
  // `obs/live_overhead` pseudo-pass on a live_obs-flagged workload;
  // tools/bench_gate.py diffs it across PRs like any other pass (below
  // the 1 ms wall floor it is recorded but not judged).
  {
    trace::Trace t = lulesh_trace(6);
    order::Options opts = order::Options::charm();
    auto extract_seconds = [&t, &opts] {
      util::Stopwatch sw;
      order::LogicalStructure ls = order::extract_structure(t, opts);
      benchmark::DoNotOptimize(ls.max_step);
      return sw.seconds();
    };
    obs::Sampler& sampler = obs::Sampler::global();
    obs::MetricsServer server;

    // Put the process into the threaded-malloc state and warm caches
    // before either side is timed.
    sampler.start(5);
    sampler.stop();
    extract_seconds();
    double dark = 0;
    double live = 0;
    for (int rep = 0; rep < 5; ++rep) {
      const double d = extract_seconds();
      sampler.start(5);
      server.start(0);
      const double l = extract_seconds();
      server.stop();
      sampler.stop();
      if (rep == 0 || d < dark) dark = d;
      if (rep == 0 || l < live) live = l;
    }

    // Record the live side as a full workload too (per-pass records),
    // with the telemetry running during the recorded pipeline.
    sampler.start(5);
    server.start(0);
    order::LogicalStructure ls =
        traj.run("lulesh/chares=216/live-obs", t, opts);
    benchmark::DoNotOptimize(ls.max_step);
    if (traj.workloads().back().total_seconds < live)
      live = traj.workloads().back().total_seconds;
    server.stop();
    sampler.stop();

    const double overhead = live > dark ? live - dark : 0.0;
    traj.add_pass("obs/live_overhead", overhead, 0, opts.threads);
    traj.mark_live_obs();
  }
  traj.save(/*path=*/{}, /*fallback=*/"BENCH_pipeline.json");
}

}  // namespace

int main(int argc, char** argv) {
  register_threaded_benchmarks();
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  emit_pipeline_trajectory();
  return 0;
}
