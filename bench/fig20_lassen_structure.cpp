/// Figure 20: logical structure of LASSEN from MPI (8 and 64 ranks) and
/// Charm++ (8 and 64 chares on 8 PEs). All four show a repeating
/// {point-to-point phase, allreduce} pattern; the Charm++ traces
/// additionally show a short two-step self-invocation phase between the
/// p2p phase and its allreduce, and the allreduce appears as the
/// reduction tree in the runtime chares.

#include <string>

#include "apps/lassen.hpp"
#include "bench_common.hpp"
#include "order/stats.hpp"
#include "order/stepping.hpp"
#include "util/flags.hpp"
#include "util/obs_flags.hpp"

namespace {

using namespace logstruct;

bool repeating(const std::string& sig, const std::string& unit,
               std::size_t lead, int times) {
  std::string expected = sig.substr(0, lead);
  for (int i = 0; i < times; ++i) expected += unit;
  return sig == expected;
}

}  // namespace

int main(int argc, char** argv) {
  util::Flags flags;
  flags.define_int("iterations", 4, "LASSEN iterations");
  util::define_obs_flags(flags);
  if (!flags.parse(argc, argv)) return 1;
  util::apply_obs_flags(flags);

  bench::figure_header(
      "Figure 20 — LASSEN phase structure, MPI vs Charm++, 8 vs 64",
      "all four traces: repeating {p2p phase, allreduce}; Charm++ adds a "
      "two-step control self-invocation phase before each allreduce");

  const std::int32_t iters =
      static_cast<std::int32_t>(flags.get_int("iterations"));

  struct Case {
    const char* label;
    bool charm;
    std::int32_t cx, cy;
  };
  const Case cases[] = {
      {"MPI, 8 processes", false, 4, 2},
      {"MPI, 64 processes", false, 8, 8},
      {"Charm++, 8 chares / 8 PEs", true, 4, 2},
      {"Charm++, 64 chares / 8 PEs", true, 8, 8},
  };

  bool all_ok = true;
  for (const Case& c : cases) {
    apps::LassenConfig cfg;
    cfg.chares_x = c.cx;
    cfg.chares_y = c.cy;
    cfg.iterations = iters;
    trace::Trace t =
        c.charm ? apps::run_lassen_charm(cfg) : apps::run_lassen_mpi(cfg);
    order::LogicalStructure ls = order::extract_structure(
        t, c.charm ? order::Options::charm()
                   : order::Options::mpi_baseline13());
    std::string sig = order::phase_signature(t, ls);
    std::printf("%-28s : %s\n", c.label,
                sig.size() > 100 ? (sig.substr(0, 100) + "...").c_str()
                                 : sig.c_str());

    // Charm++: per iteration one p2p phase, the runtime reduction, and one
    // two-step self-invocation phase per chare (disjoint in chares, they
    // share the same pair of steps — the paper's short control phase; see
    // EXPERIMENTS.md for the placement nuance).
    std::string unit;
    if (c.charm) {
      unit = "pr" + std::string(static_cast<std::size_t>(c.cx * c.cy), 't');
    } else {
      unit = "pa";
    }
    bool ok = repeating(sig, unit, 0, iters);
    if (!ok) all_ok = false;
  }
  bench::verdict(all_ok,
                 "repeating {p2p, allreduce} everywhere; the two-step "
                 "self-invocation phase appears only in Charm++");
  util::finish_obs(flags, argv[0]);
  return 0;
}
