/// Figure 18: time to calculate logical structure for a 64-chare LULESH
/// execution at increasing iteration counts (paper: 8..512 iterations,
/// 0.2s..9.6s — directly proportional to iterations, unaffected by the
/// doubling of phases).

#include <string>
#include <vector>

#include "apps/lulesh.hpp"
#include "bench_common.hpp"
#include "order/stepping.hpp"
#include "pipeline_json.hpp"
#include "util/csv.hpp"
#include "util/flags.hpp"
#include "util/obs_flags.hpp"
#include "util/stats.hpp"
#include "util/stopwatch.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace logstruct;
  util::Flags flags;
  flags.define_int("max-iterations", 128,
                   "largest iteration count (paper goes to 512; use "
                   "--max-iterations=512 for the full sweep)");
  flags.define_string("csv", "", "write the series here");
  util::define_obs_flags(flags);
  if (!flags.parse(argc, argv)) return 1;
  util::apply_obs_flags(flags);

  bench::figure_header(
      "Figure 18 — extraction time vs iteration count (64-chare LULESH)",
      "computation time is directly proportional to the number of "
      "iterations (log-log slope ~1)");

  std::vector<double> xs, ys;
  util::TablePrinter table({"iterations", "events", "phases",
                            "extraction time (s)"});
  util::CsvWriter csv({"iterations", "events", "phases", "seconds"});
  bench::PipelineTrajectory traj("fig18_scaling_iters");
  for (std::int32_t iters = 8;
       iters <= static_cast<std::int32_t>(flags.get_int("max-iterations"));
       iters *= 2) {
    apps::LuleshConfig cfg;
    cfg.nx = cfg.ny = cfg.nz = 4;  // 64 chares
    cfg.num_pes = 8;
    cfg.iterations = iters;
    trace::Trace t = apps::run_lulesh_charm(cfg);
    order::LogicalStructure ls = traj.run(
        "lulesh64/iters=" + std::to_string(iters), t,
        order::Options::charm());
    double secs = traj.workloads().back().total_seconds;
    table.row()
        .add(static_cast<std::int64_t>(iters))
        .add(static_cast<std::int64_t>(t.num_events()))
        .add(static_cast<std::int64_t>(ls.num_phases()))
        .add(secs, 3);
    csv.row()
        .add(static_cast<std::int64_t>(iters))
        .add(static_cast<std::int64_t>(t.num_events()))
        .add(static_cast<std::int64_t>(ls.num_phases()))
        .add(secs);
    xs.push_back(iters);
    ys.push_back(secs);
  }
  table.print();
  double slope = util::loglog_slope(xs, ys);
  std::printf("log-log slope: %.2f (paper: ~1.0, directly proportional)\n",
              slope);
  if (!flags.get_string("csv").empty()) csv.save(flags.get_string("csv"));
  traj.save();  // written when BENCH_PIPELINE_JSON is set

  bench::verdict(slope > 0.75 && slope < 1.3,
                 "extraction time scales ~linearly with iterations");
  util::finish_obs(flags, argv[0]);
  return 0;
}
