/// Figures 21-23: LASSEN colored by differential duration.
///  - Fig 21/22: a repeated pattern marks the same events of the same
///    chares each iteration (early iterations: the wavefront sits in a
///    small region owned by one chare).
///  - Fig 23: many iterations later the pattern persists but spreads to
///    different, more numerous chares as the front grows.
///  - The 64-chare run's maximum differential duration is roughly a
///    quarter of the 8-chare run's (the front splits into smaller pieces).

#include <algorithm>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "apps/lassen.hpp"
#include "bench_common.hpp"
#include "metrics/duration.hpp"
#include "metrics/imbalance.hpp"
#include "order/stepping.hpp"
#include "util/flags.hpp"
#include "util/obs_flags.hpp"
#include "util/table.hpp"

namespace {

using namespace logstruct;

struct IterationHotset {
  std::vector<std::set<std::int32_t>> hot_per_iter;  // chare indices
  trace::TimeNs max_dd = 0;
  trace::TimeNs total_imb = 0;
};

IterationHotset analyze(const apps::LassenConfig& cfg) {
  trace::Trace t = apps::run_lassen_charm(cfg);
  order::LogicalStructure ls =
      order::extract_structure(t, order::Options::charm());
  metrics::DifferentialDuration dd = metrics::differential_duration(t, ls);
  metrics::Imbalance imb = metrics::imbalance(t, ls);

  IterationHotset out;
  out.max_dd = dd.max_value;
  for (auto v : imb.per_phase) out.total_imb += v;

  // Application p2p phases in offset order ~ iterations; collect the
  // chares whose differential duration exceeds half the phase max.
  std::vector<std::pair<std::int32_t, std::int32_t>> app_phases;  // (off,id)
  for (std::int32_t p = 0; p < ls.num_phases(); ++p) {
    if (ls.phases.runtime[static_cast<std::size_t>(p)]) continue;
    if (ls.phase_height[static_cast<std::size_t>(p)] <= 1) continue;
    app_phases.emplace_back(ls.phase_offset[static_cast<std::size_t>(p)], p);
  }
  std::sort(app_phases.begin(), app_phases.end());
  for (auto [off, p] : app_phases) {
    trace::TimeNs phase_max = 0;
    for (trace::EventId e : ls.phases.events[static_cast<std::size_t>(p)])
      phase_max = std::max(phase_max,
                           dd.per_event[static_cast<std::size_t>(e)]);
    std::set<std::int32_t> hot;
    if (phase_max > 0) {
      for (trace::EventId e :
           ls.phases.events[static_cast<std::size_t>(p)]) {
        if (dd.per_event[static_cast<std::size_t>(e)] * 2 >= phase_max)
          hot.insert(t.chare(t.event(e).chare).index);
      }
    }
    out.hot_per_iter.push_back(std::move(hot));
  }
  return out;
}

std::string set_str(const std::set<std::int32_t>& s) {
  std::string out;
  int shown = 0;
  for (std::int32_t c : s) {
    if (shown++ == 5) {
      out += "...";
      break;
    }
    out += std::to_string(c) + " ";
  }
  return out.empty() ? "-" : out;
}

}  // namespace

int main(int argc, char** argv) {
  util::Flags flags;
  flags.define_int("iterations", 12, "LASSEN iterations");
  util::define_obs_flags(flags);
  if (!flags.parse(argc, argv)) return 1;
  util::apply_obs_flags(flags);

  bench::figure_header(
      "Figures 21-23 — LASSEN differential-duration patterns, 8 vs 64 "
      "chares",
      "long events repeat at the same chares early on, spread to more "
      "chares as the wavefront grows; 64-chare max differential duration "
      "~= 1/4 of 8-chare");

  apps::LassenConfig coarse;  // 4x2
  coarse.iterations = static_cast<std::int32_t>(flags.get_int("iterations"));
  apps::LassenConfig fine = coarse;
  fine.chares_x = 8;
  fine.chares_y = 8;

  IterationHotset s8 = analyze(coarse);
  IterationHotset s64 = analyze(fine);

  util::TablePrinter table({"iteration", "hot chares (8)", "hot chares (64)"});
  std::size_t iters = std::min(s8.hot_per_iter.size(),
                               s64.hot_per_iter.size());
  for (std::size_t i = 0; i < iters; ++i) {
    table.row()
        .add(static_cast<std::int64_t>(i))
        .add(set_str(s8.hot_per_iter[i]))
        .add(set_str(s64.hot_per_iter[i]));
  }
  table.print();

  // Early iterations repeat the same hot chare; late iterations involve
  // more chares than early ones (the growing front).
  bool early_repeats =
      iters >= 3 && !s8.hot_per_iter[1].empty() &&
      s8.hot_per_iter[1] == s8.hot_per_iter[2];
  std::size_t early_n = iters >= 2 ? s64.hot_per_iter[1].size() : 0;
  std::size_t late_n = iters >= 2 ? s64.hot_per_iter[iters - 2].size() : 0;
  double dd_ratio = s8.max_dd > 0 ? static_cast<double>(s64.max_dd) /
                                        static_cast<double>(s8.max_dd)
                                  : 0;
  double imb_ratio =
      s8.total_imb > 0 ? static_cast<double>(s64.total_imb) /
                             static_cast<double>(s8.total_imb)
                       : 0;
  std::printf("\nmax differential duration: 8-chare %.1f us, 64-chare "
              "%.1f us (ratio %.2f; paper ~0.25)\n",
              s8.max_dd / 1000.0, s64.max_dd / 1000.0, dd_ratio);
  std::printf("overall imbalance ratio 64/8: %.2f (paper < 0.5)\n",
              imb_ratio);

  bench::verdict(early_repeats, "early iterations mark the same chares");
  bench::verdict(late_n > early_n,
                 "late iterations spread the long events to more chares (" +
                     std::to_string(early_n) + " -> " +
                     std::to_string(late_n) + ")");
  bench::verdict(dd_ratio < 0.5,
                 "finer decomposition cuts the max differential duration "
                 "(ratio " + std::to_string(dd_ratio) + ")");
  bench::verdict(imb_ratio < 1.0,
                 "finer decomposition reduces overall imbalance (ratio " +
                     std::to_string(imb_ratio) +
                     "; weaker than the paper's <0.5 — see EXPERIMENTS.md)");
  util::finish_obs(flags, argv[0]);
  return 0;
}
