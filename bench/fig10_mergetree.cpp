/// Figure 10: logical structures of a 1,024-process MPI merge tree.
/// (a) The Isaacs'13-style organization (stepping without reordering):
/// data-dependent imbalance forces some groups' second-phase messages far
/// right. (b) Reordering recovers the parallel structure of the initial
/// steps.

#include <algorithm>
#include <string>
#include <vector>

#include "apps/mergetree.hpp"
#include "bench_common.hpp"
#include "order/stats.hpp"
#include "order/stepping.hpp"
#include "util/flags.hpp"
#include "util/obs_flags.hpp"
#include "util/table.hpp"

namespace {

/// Occupancy of the first `k` global steps — the "parallel structure of
/// initial steps" that Fig. 10b recovers: with 1,024 ranks, step 0 should
/// hold ~512 level-0 sends after reordering.
std::vector<std::int64_t> early_occupancy(
    const logstruct::trace::Trace& t,
    const logstruct::order::LogicalStructure& ls, int k) {
  std::vector<std::int64_t> occ(static_cast<std::size_t>(k), 0);
  for (logstruct::trace::EventId e = 0; e < t.num_events(); ++e) {
    std::int32_t st = ls.global_step[static_cast<std::size_t>(e)];
    if (st < k) ++occ[static_cast<std::size_t>(st)];
  }
  return occ;
}

/// Steps of the level-0 receives (receives whose sender is a leaf rank —
/// odd ranks ship exactly one message and never receive): the idealized
/// replay places every one at step 1; irregular receive order pushes some
/// far right.
std::pair<double, std::int32_t> level0_recv_steps(
    const logstruct::trace::Trace& t,
    const logstruct::order::LogicalStructure& ls) {
  double sum = 0;
  std::int64_t count = 0;
  std::int32_t max_step = 0;
  for (logstruct::trace::EventId e = 0; e < t.num_events(); ++e) {
    const auto& ev = t.event(e);
    if (ev.kind != logstruct::trace::EventKind::Recv ||
        ev.partner == logstruct::trace::kNone)
      continue;
    if (t.events_of_chare(t.event(ev.partner).chare).size() != 1) continue;
    std::int32_t st = ls.global_step[static_cast<std::size_t>(e)];
    sum += st;
    ++count;
    max_step = std::max(max_step, st);
  }
  return {count ? sum / static_cast<double>(count) : 0.0, max_step};
}

}  // namespace

int main(int argc, char** argv) {
  using namespace logstruct;
  util::Flags flags;
  flags.define_int("ranks", 1024, "MPI ranks (power of two)");
  flags.define_int("seed", 1, "simulation seed");
  util::define_obs_flags(flags);
  if (!flags.parse(argc, argv)) return 1;
  util::apply_obs_flags(flags);

  bench::figure_header(
      "Figure 10 — 1,024-process MPI merge tree, stepping without vs with "
      "reordering",
      "irregular receive order forces some events to be stepped much later "
      "than their peers; reordering restores the regularity of the early "
      "steps");

  apps::MergeTreeConfig cfg;
  cfg.num_ranks = static_cast<std::int32_t>(flags.get_int("ranks"));
  cfg.seed = static_cast<std::uint64_t>(flags.get_int("seed"));
  trace::Trace t = apps::run_mergetree_mpi(cfg);

  order::LogicalStructure baseline =
      order::extract_structure(t, order::Options::mpi_baseline13());
  order::LogicalStructure reordered =
      order::extract_structure(t, order::Options::mpi());

  constexpr int kEarly = 6;
  auto occ_a = early_occupancy(t, baseline, kEarly);
  auto occ_b = early_occupancy(t, reordered, kEarly);

  util::TablePrinter table({"step", "(a) no reorder", "(b) reordered"});
  for (int s = 0; s < kEarly; ++s) {
    table.row()
        .add(static_cast<std::int64_t>(s))
        .add(occ_a[static_cast<std::size_t>(s)])
        .add(occ_b[static_cast<std::size_t>(s)]);
  }
  table.print();
  std::printf("total width: (a) %d steps, (b) %d steps\n",
              baseline.max_step + 1, reordered.max_step + 1);

  auto [mean_a, max_a] = level0_recv_steps(t, baseline);
  auto [mean_b, max_b] = level0_recv_steps(t, reordered);
  std::printf("level-0 receives: (a) mean step %.1f, worst %d   "
              "(b) mean step %.1f, worst %d\n",
              mean_a, max_a, mean_b, max_b);

  // Without reordering, waitany-style receive order forces many level-0
  // receives to be stepped far later than their peers; the idealized
  // replay pulls them all back to step 1.
  bench::verdict(mean_b < mean_a && max_b < max_a && mean_b <= 1.5,
                 "reordering restores the regularity of the initial steps "
                 "(mean level-0 recv step " + std::to_string(mean_a) +
                     " -> " + std::to_string(mean_b) + ")");
  bench::verdict(reordered.max_step <= baseline.max_step,
                 "reordering never widens the structure");
  util::finish_obs(flags, argv[0]);
  return 0;
}
