/// Figure 19: time to calculate logical structure for eight iterations of
/// LULESH at increasing chare counts (paper: 64..13.8k chares, 0.2s..166s;
/// growth is super-linear at high counts — the Sec. 3.1.4 merge dominates).

#include <string>
#include <vector>

#include "apps/lulesh.hpp"
#include "bench_common.hpp"
#include "order/phases.hpp"
#include "order/stepping.hpp"
#include "pipeline_json.hpp"
#include "util/csv.hpp"
#include "util/flags.hpp"
#include "util/obs_flags.hpp"
#include "util/stats.hpp"
#include "util/stopwatch.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace logstruct;
  util::Flags flags;
  flags.define_int("max-grid", 12,
                   "largest grid dimension (paper reaches 24 = 13,824 "
                   "chares; use --max-grid=24 for the full sweep)");
  flags.define_string("csv", "", "write the series here");
  util::define_obs_flags(flags);
  if (!flags.parse(argc, argv)) return 1;
  util::apply_obs_flags(flags);

  bench::figure_header(
      "Figure 19 — extraction time vs chare count (8-iteration LULESH)",
      "time grows with chare count, super-linearly at the top end "
      "(the Sec. 3.1.4 merge needs more comparisons)");

  const std::vector<std::int32_t> grids{4, 6, 8, 12, 16, 24};
  std::vector<double> xs, ys;
  util::TablePrinter table({"chares", "events", "extraction time (s)",
                            "s per Mevent", "Sec.3.1.4 share"});
  util::CsvWriter csv({"chares", "events", "seconds", "leap_share"});
  bench::PipelineTrajectory traj("fig19_scaling_chares");
  for (std::int32_t g : grids) {
    if (g > static_cast<std::int32_t>(flags.get_int("max-grid"))) break;
    apps::LuleshConfig cfg;
    cfg.nx = cfg.ny = cfg.nz = g;
    cfg.num_pes = 8;
    cfg.iterations = 8;
    trace::Trace t = apps::run_lulesh_charm(cfg);
    order::Options opts = order::Options::charm();
    order::LogicalStructure ls = traj.run(
        "lulesh8it/chares=" + std::to_string(g * g * g), t, opts);
    (void)ls;
    const bench::PipelineWorkload& w = traj.workloads().back();
    double secs = w.total_seconds;
    // The paper attributes the super-linear growth to the §3.1.4 merge
    // ("the greater chare counts requiring more comparisons"): report the
    // inference+leap fixpoint's share of the partition passes.
    double inference = 0, partition_total = 0;
    for (const order::PassRecord& r : w.passes) {
      if (r.name == "reorder" || r.name == "stepping") continue;
      partition_total += r.seconds;
      if (r.name == "infer_source_order" ||
          r.name == "enforce_leap_property" ||
          r.name == "enforce_chare_paths")
        inference += r.seconds;
    }
    double leap_share = inference / std::max(partition_total, 1e-12);
    table.row()
        .add(static_cast<std::int64_t>(g * g * g))
        .add(static_cast<std::int64_t>(t.num_events()))
        .add(secs, 3)
        .add(secs * 1e6 / static_cast<double>(t.num_events()), 3)
        .add(leap_share * 100.0, 1);
    csv.row()
        .add(static_cast<std::int64_t>(g * g * g))
        .add(static_cast<std::int64_t>(t.num_events()))
        .add(secs)
        .add(leap_share);
    xs.push_back(g * g * g);
    ys.push_back(secs);
  }
  table.print();
  double slope = util::loglog_slope(xs, ys);
  std::printf("log-log slope: %.2f (paper's series: ~1.2-1.3, "
              "super-linear)\n",
              slope);
  if (!flags.get_string("csv").empty()) csv.save(flags.get_string("csv"));
  traj.save();  // written when BENCH_PIPELINE_JSON is set

  bench::verdict(slope > 0.9,
                 "time grows at least linearly in chare count with a "
                 "super-linear tendency");
  util::finish_obs(flags, argv[0]);
  return 0;
}
