/// Figure 8: two iterations of Jacobi 2D with 64 chares on 8 processors,
/// steps assigned (a) in recorded order and (b) reordered. Reordering
/// makes both application phases compact and mutually similar.

#include <algorithm>
#include <string>

#include "apps/jacobi2d.hpp"
#include "bench_common.hpp"
#include "order/stats.hpp"
#include "order/stepping.hpp"
#include "util/flags.hpp"
#include "util/obs_flags.hpp"
#include "util/table.hpp"

namespace {

struct Variant {
  const char* label;
  logstruct::order::StructureStats stats;
  double app_compactness;    // mean over application phases
  std::int32_t max_app_height;  // tallest application phase (steps - 1)
};

Variant run(const char* label, const logstruct::trace::Trace& t,
            const logstruct::order::Options& opts) {
  using namespace logstruct;
  order::LogicalStructure ls = order::extract_structure(t, opts);
  Variant v;
  v.label = label;
  v.stats = order::compute_stats(t, ls);
  v.max_app_height = 0;
  double sum = 0;
  int n = 0;
  for (std::int32_t p = 0; p < ls.num_phases(); ++p) {
    if (ls.phases.runtime[static_cast<std::size_t>(p)]) continue;
    sum += order::phase_compactness(t, ls, p);
    v.max_app_height = std::max(
        v.max_app_height, ls.phase_height[static_cast<std::size_t>(p)]);
    ++n;
  }
  v.app_compactness = n ? sum / n : 0;
  return v;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace logstruct;
  util::Flags flags;
  flags.define_int("chares", 64, "total chares (8x8 grid at 64)");
  flags.define_int("pes", 8, "processing elements");
  flags.define_int("iterations", 2, "Jacobi iterations");
  flags.define_int("seed", 1, "simulation seed");
  util::define_obs_flags(flags);
  if (!flags.parse(argc, argv)) return 1;
  util::apply_obs_flags(flags);

  bench::figure_header(
      "Figure 8 — Jacobi 2D step assignment, recorded order vs reordered",
      "without reordering the first application phase is not compact or "
      "recognizable; after reordering both phases reveal the shared "
      "communication pattern");

  apps::Jacobi2DConfig cfg;
  std::int32_t n = static_cast<std::int32_t>(flags.get_int("chares"));
  cfg.chares_x = 8;
  cfg.chares_y = n / 8 > 0 ? n / 8 : 1;
  cfg.num_pes = static_cast<std::int32_t>(flags.get_int("pes"));
  cfg.iterations = static_cast<std::int32_t>(flags.get_int("iterations"));
  cfg.seed = static_cast<std::uint64_t>(flags.get_int("seed"));
  trace::Trace t = apps::run_jacobi2d(cfg);

  Variant recorded = run("recorded order", t, order::Options::charm_no_reorder());
  Variant reordered = run("reordered", t, order::Options::charm());

  util::TablePrinter table({"step assignment", "global steps",
                            "events/occupied step", "max app-phase steps",
                            "app-phase compactness"});
  for (const Variant& v : {recorded, reordered}) {
    table.row()
        .add(v.label)
        .add(static_cast<std::int64_t>(v.stats.width))
        .add(v.stats.avg_occupancy, 2)
        .add(static_cast<std::int64_t>(v.max_app_height + 1))
        .add(v.app_compactness, 3);
  }
  table.print();

  bench::verdict(reordered.app_compactness >= recorded.app_compactness &&
                     reordered.stats.width < recorded.stats.width &&
                     reordered.stats.avg_occupancy >
                         recorded.stats.avg_occupancy,
                 "reordering compacts the structure (width " +
                     std::to_string(recorded.stats.width) + " -> " +
                     std::to_string(reordered.stats.width) +
                     " steps, occupancy " +
                     std::to_string(recorded.stats.avg_occupancy) + " -> " +
                     std::to_string(reordered.stats.avg_occupancy) + ")");
  util::finish_obs(flags, argv[0]);
  return 0;
}
