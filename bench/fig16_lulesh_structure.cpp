/// Figure 16: logical structure of LULESH from (a) MPI and (b) Charm++
/// traces. MPI: setup, then a repeating pattern of three phases followed
/// by an allreduce. Charm++: setup, then a repeating pattern of two
/// phases followed by an allreduce through the runtime chares. The two
/// point-to-point phases mirror the first and third MPI phases.

#include <string>
#include <vector>

#include "apps/lulesh.hpp"
#include "bench_common.hpp"
#include "order/stats.hpp"
#include "order/stepping.hpp"
#include "util/flags.hpp"
#include "util/obs_flags.hpp"

namespace {

using namespace logstruct;

/// Check that `sig`, after `lead` leading phases, repeats `unit` exactly
/// `times` times.
bool repeats(const std::string& sig, std::size_t lead,
             const std::string& unit, int times) {
  std::string expected = sig.substr(0, lead);
  for (int i = 0; i < times; ++i) expected += unit;
  return sig == expected;
}

}  // namespace

int main(int argc, char** argv) {
  util::Flags flags;
  flags.define_int("iterations", 4, "LULESH iterations");
  flags.define_int("seed", 1, "simulation seed");
  util::define_obs_flags(flags);
  if (!flags.parse(argc, argv)) return 1;
  util::apply_obs_flags(flags);

  bench::figure_header(
      "Figure 16 — LULESH logical structure, MPI vs Charm++",
      "MPI: setup + {3 p2p phases + allreduce} per iteration; Charm++: "
      "setup + {2 p2p phases + runtime reduction} per iteration");

  apps::LuleshConfig cfg;  // 8 sub-domains (2x2x2), 2 PEs for Charm++
  cfg.iterations = static_cast<std::int32_t>(flags.get_int("iterations"));
  cfg.seed = static_cast<std::uint64_t>(flags.get_int("seed"));

  // The paper computes MPI structures with the Isaacs'13 organization
  // "without modification" (Sec. 6).
  trace::Trace mpi = apps::run_lulesh_mpi(cfg);
  order::LogicalStructure mpi_ls =
      order::extract_structure(mpi, order::Options::mpi_baseline13());
  std::string mpi_sig = order::phase_signature(mpi, mpi_ls);

  trace::Trace charm = apps::run_lulesh_charm(cfg);
  order::LogicalStructure charm_ls =
      order::extract_structure(charm, order::Options::charm());
  std::string charm_sig = order::phase_signature(charm, charm_ls);

  std::printf("phase signature, offset order "
              "(p=p2p, a=allreduce call, r=runtime reduction):\n");
  std::printf("  MPI     (8 ranks)          : %s\n", mpi_sig.c_str());
  std::printf("  Charm++ (8 chares, 2 PEs)  : %s\n", charm_sig.c_str());

  bool mpi_ok = repeats(mpi_sig, 1, "pppa", cfg.iterations) &&
                mpi_sig[0] == 'p';
  bool charm_ok = repeats(charm_sig, 1, "ppr", cfg.iterations);
  bench::verdict(mpi_ok, "MPI: setup + " +
                             std::to_string(cfg.iterations) +
                             " x {p p p allreduce}");
  bench::verdict(charm_ok, "Charm++: setup + " +
                               std::to_string(cfg.iterations) +
                               " x {p p runtime-reduction}");
  util::finish_obs(flags, argv[0]);
  return 0;
}
