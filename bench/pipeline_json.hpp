#pragma once

/// \file pipeline_json.hpp
/// BENCH_pipeline.json emitter: runs the extraction pipeline through the
/// pass manager, captures the per-pass wall time and allocation bytes
/// the PassManager already records, and writes one perf-trajectory
/// document per harness run. Schema (`logstruct-bench-pipeline/v6`:
/// workloads may carry a `live_obs` annotation (true when the workload
/// ran with the background sampler + HTTP exporter live) and harness
/// pseudo-passes such as `obs/live_overhead` — the wall-time delta the
/// live-telemetry layer adds over a dark extraction, which
/// tools/bench_gate.py gates at the same 1.30x threshold as real
/// passes. v6 adds the bench-gated `order/check_causality` pseudo-pass
/// (vector-clock oracle build + happened-before check over the
/// recovered structure, timed by the micro_pipeline harness so checker
/// cost regressions are caught like any pass). v5 kept v4's per-workload `peak_rss_kb` plus the
/// storage-backend annotation (`storage`, `cache_hits`,
/// `cache_misses`, `cache_hit_rate`), v3's per-workload/per-pass
/// `threads`, v2's per-pass `alloc_bytes`, and the run-level
/// `peak_rss_kb`; older readers that ignore unknown keys keep
/// working) is documented in docs/OBSERVABILITY.md. The committed BENCH_pipeline.json at the repo
/// root concatenates the `runs` arrays of historical runs so
/// `tools/bench_gate.py` can diff per-pass timings and allocations
/// across PRs — like-for-like per thread count, so a threads=8 run is
/// never judged against a threads=1 baseline.

#include <cstdio>
#include <cstdlib>
#include <string>
#include <utility>
#include <vector>

#include "obs/memstats.hpp"
#include "order/context.hpp"
#include "order/phases.hpp"
#include "order/stepping.hpp"
#include "trace/trace.hpp"
#include "util/stopwatch.hpp"

namespace logstruct::bench {

struct PipelineWorkload {
  std::string name;
  std::int64_t events = 0;
  std::int32_t phases = 0;
  /// Pipeline thread budget the workload ran with (Options::threads
  /// resolved); the gate only compares workloads with equal counts.
  int threads = 1;
  double total_seconds = 0;
  /// Peak RSS attributable to this workload, measured by the harness
  /// between obs::reset_peak_rss() and the workload's end; 0 = not
  /// measured (the run-level peak_rss_kb still covers the process).
  std::int64_t peak_rss_kb = 0;
  /// Storage-backend annotation for out-of-core workloads: backend name
  /// ("mem"/"blocked[...]") and the block-cache counter deltas over the
  /// workload; empty/-1 = not a storage-annotated workload.
  std::string storage;
  std::int64_t cache_hits = -1;
  std::int64_t cache_misses = -1;
  /// True when the workload ran with the live-telemetry layer on (the
  /// background obs::Sampler plus the /metrics HTTP exporter); such
  /// workloads also carry an `obs/live_overhead` pseudo-pass with the
  /// wall-time delta over a dark run of the same extraction.
  bool live_obs = false;
  std::vector<order::PassRecord> passes;
};

class PipelineTrajectory {
 public:
  explicit PipelineTrajectory(std::string program, std::string label = {})
      : program_(std::move(program)), label_(std::move(label)) {}

  /// Run the full pipeline (partition passes + stepping passes over one
  /// shared context) on t, recording wall time per pass.
  order::LogicalStructure run(const std::string& name,
                              const trace::Trace& t,
                              const order::Options& opts) {
    order::OrderContext ctx(t, opts);
    std::vector<order::PassRecord> records;
    util::Stopwatch sw;
    order::run_partition_pipeline(ctx, nullptr, &records);
    order::run_stepping_pipeline(ctx, &records);
    PipelineWorkload w;
    w.name = name;
    w.events = t.num_events();
    w.threads = opts.effective_threads();
    w.total_seconds = sw.seconds();
    w.phases = ctx.structure.num_phases();
    w.passes = std::move(records);
    workloads_.push_back(std::move(w));
    return std::move(ctx.structure);
  }

  /// Append an extra pass record to the most recently run workload —
  /// for stages timed by the harness itself rather than the pass
  /// manager (e.g. the `metrics/efficiency_suite` kernels, which run
  /// over the extracted structure). No-op before the first run().
  void add_pass(const std::string& pass_name, double seconds,
                std::int64_t alloc_bytes, int threads) {
    if (workloads_.empty()) return;
    order::PassRecord r;
    r.name = pass_name;
    r.seconds = seconds;
    r.alloc_bytes = alloc_bytes;
    r.threads = threads;
    r.ran = true;
    workloads_.back().passes.push_back(std::move(r));
  }

  /// Attach the storage/memory annotation to the most recently recorded
  /// workload (see PipelineWorkload). No-op before the first run().
  void annotate_storage(std::int64_t peak_rss_kb, std::string storage,
                        std::int64_t cache_hits, std::int64_t cache_misses) {
    if (workloads_.empty()) return;
    PipelineWorkload& w = workloads_.back();
    w.peak_rss_kb = peak_rss_kb;
    w.storage = std::move(storage);
    w.cache_hits = cache_hits;
    w.cache_misses = cache_misses;
  }

  /// Flag the most recently recorded workload as having run with the
  /// live-telemetry layer on (sampler + /metrics exporter). No-op
  /// before the first run().
  void mark_live_obs() {
    if (!workloads_.empty()) workloads_.back().live_obs = true;
  }

  /// Record a harness-built workload that did not go through run() —
  /// used for storage-backend sweeps timed outside the pass manager.
  void add_workload(PipelineWorkload w) {
    workloads_.push_back(std::move(w));
  }

  [[nodiscard]] const std::vector<PipelineWorkload>& workloads() const {
    return workloads_;
  }

  /// Write the document. Resolution order: explicit `path`, then the
  /// BENCH_PIPELINE_JSON environment variable, then `fallback` (pass ""
  /// to make emission opt-in for a harness). Best-effort like the obs
  /// sidecar: failure warns on stderr, never changes the exit code.
  void save(const std::string& path = {},
            const std::string& fallback = {}) const {
    std::string target = path;
    if (target.empty()) {
      if (const char* env = std::getenv("BENCH_PIPELINE_JSON"))
        target = env;
    }
    if (target.empty()) target = fallback;
    if (target.empty()) return;

    std::FILE* f = std::fopen(target.c_str(), "w");
    if (!f) {
      std::fprintf(stderr, "[warn] pipeline trajectory: cannot write %s\n",
                   target.c_str());
      return;
    }
    std::fprintf(f, "{\n  \"schema\": \"logstruct-bench-pipeline/v6\",\n");
    std::fprintf(f, "  \"runs\": [\n    {\n");
    std::fprintf(f, "      \"program\": \"%s\",\n", program_.c_str());
    if (!label_.empty())
      std::fprintf(f, "      \"label\": \"%s\",\n", label_.c_str());
    std::fprintf(f, "      \"peak_rss_kb\": %lld,\n",
                 static_cast<long long>(obs::peak_rss_kb()));
    std::fprintf(f, "      \"alloc_hook\": %s,\n",
                 obs::alloc_hook_active() ? "true" : "false");
    std::fprintf(f, "      \"workloads\": [\n");
    for (std::size_t i = 0; i < workloads_.size(); ++i) {
      const PipelineWorkload& w = workloads_[i];
      std::fprintf(f,
                   "        {\"name\": \"%s\", \"events\": %lld, "
                   "\"phases\": %d, \"threads\": %d, "
                   "\"total_seconds\": %.6f,\n",
                   w.name.c_str(), static_cast<long long>(w.events),
                   w.phases, w.threads, w.total_seconds);
      if (w.peak_rss_kb > 0)
        std::fprintf(f, "         \"peak_rss_kb\": %lld,\n",
                     static_cast<long long>(w.peak_rss_kb));
      if (!w.storage.empty()) {
        const std::int64_t lookups = w.cache_hits + w.cache_misses;
        std::fprintf(
            f,
            "         \"storage\": \"%s\", \"cache_hits\": %lld, "
            "\"cache_misses\": %lld, \"cache_hit_rate\": %.4f,\n",
            w.storage.c_str(), static_cast<long long>(w.cache_hits),
            static_cast<long long>(w.cache_misses),
            lookups > 0 ? static_cast<double>(w.cache_hits) /
                              static_cast<double>(lookups)
                        : 0.0);
      }
      if (w.live_obs) std::fprintf(f, "         \"live_obs\": true,\n");
      std::fprintf(f, "         \"passes\": [\n");
      for (std::size_t p = 0; p < w.passes.size(); ++p) {
        const order::PassRecord& r = w.passes[p];
        std::fprintf(f,
                     "           {\"pass\": \"%s\", \"seconds\": %.6f, "
                     "\"alloc_bytes\": %lld, \"threads\": %d, "
                     "\"ran\": %s}%s\n",
                     r.name.c_str(), r.seconds,
                     static_cast<long long>(r.alloc_bytes), r.threads,
                     r.ran ? "true" : "false",
                     p + 1 < w.passes.size() ? "," : "");
      }
      std::fprintf(f, "         ]}%s\n",
                   i + 1 < workloads_.size() ? "," : "");
    }
    std::fprintf(f, "      ]\n    }\n  ]\n}\n");
    std::fclose(f);
    std::printf("pipeline trajectory written to %s\n", target.c_str());
  }

 private:
  std::string program_;
  std::string label_;
  std::vector<PipelineWorkload> workloads_;
};

}  // namespace logstruct::bench
