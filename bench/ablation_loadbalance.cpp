/// Ablation — load balancing under the structure's metrics, two regimes:
///
///  1. Jacobi 2D with a PERSISTENT hot chare (the Fig. 14/15 diagnosis
///     made permanent): AtSync + GreedyLB isolates the heavy chare and
///     the imbalance metric that found the problem confirms the cure.
///  2. LASSEN's MOVING wavefront: greedy placement from stale
///     measurements chases where the load WAS, destroying the static
///     block mapping's natural spread — measurement-based balancing can
///     lose to doing nothing when the hotspot moves faster than the
///     balancer samples. Both outcomes are asserted.
///
/// In both regimes the chare-centric logical structure stays sound while
/// chares migrate (paper §1, challenge 2).

#include <string>

#include "apps/jacobi2d.hpp"
#include "apps/lassen.hpp"
#include "bench_common.hpp"
#include "metrics/imbalance.hpp"
#include "order/stats.hpp"
#include "order/stepping.hpp"
#include "util/flags.hpp"
#include "util/obs_flags.hpp"
#include "util/table.hpp"

namespace {

using namespace logstruct;

struct Row {
  std::string label;
  trace::TimeNs total_imbalance = 0;
  trace::TimeNs end_time = 0;
  std::int64_t violations = 0;
};

Row measure(std::string label, const trace::Trace& t) {
  order::LogicalStructure ls =
      order::extract_structure(t, order::Options::charm());
  metrics::Imbalance imb = metrics::imbalance(t, ls);
  Row r;
  r.label = std::move(label);
  for (auto v : imb.per_phase) r.total_imbalance += v;
  r.end_time = t.end_time();
  r.violations = order::compute_stats(t, ls).chare_step_violations;
  return r;
}

void print(const Row* rows, std::size_t n) {
  util::TablePrinter table({"configuration", "total imbalance (us)",
                            "makespan (us)", "step collisions"});
  for (std::size_t i = 0; i < n; ++i) {
    table.row()
        .add(rows[i].label)
        .add(rows[i].total_imbalance / 1000.0)
        .add(rows[i].end_time / 1000.0)
        .add(rows[i].violations);
  }
  table.print();
}

}  // namespace

int main(int argc, char** argv) {
  util::Flags flags;
  flags.define_int("iterations", 12, "iterations for both workloads");
  util::define_obs_flags(flags);
  if (!flags.parse(argc, argv)) return 1;
  util::apply_obs_flags(flags);
  const std::int32_t iters =
      static_cast<std::int32_t>(flags.get_int("iterations"));

  bench::figure_header(
      "Ablation — GreedyLB vs the imbalance metric",
      "a persistent hotspot is cured by measurement-based balancing; a "
      "moving one (LASSEN's wavefront) defeats stale measurements — the "
      "metric distinguishes the two");

  // Regime 1: persistent hot chare in Jacobi.
  apps::Jacobi2DConfig jbase;
  jbase.chares_x = 4;
  jbase.chares_y = 4;
  jbase.num_pes = 4;
  jbase.iterations = iters;
  jbase.compute_noise_ns = 0;
  jbase.slow_chare = 5;
  jbase.slow_every_iteration = true;
  jbase.slow_factor = 5.0;
  apps::Jacobi2DConfig jlb = jbase;
  jlb.lb_at_iteration = 1;  // balance early, enjoy the rest of the run
  jlb.lb_strategy = sim::charm::LbStrategy::Greedy;

  Row jac[2] = {measure("jacobi hotspot, static",
                        apps::run_jacobi2d(jbase)),
                measure("jacobi hotspot, GreedyLB@1",
                        apps::run_jacobi2d(jlb))};
  print(jac, 2);
  double j_ratio = static_cast<double>(jac[1].total_imbalance) /
                   static_cast<double>(jac[0].total_imbalance);
  double j_makespan = static_cast<double>(jac[1].end_time) /
                      static_cast<double>(jac[0].end_time);
  std::printf("persistent hotspot: imbalance ratio %.2f, makespan ratio "
              "%.2f\n\n",
              j_ratio, j_makespan);

  // Regime 2: LASSEN's moving wavefront.
  apps::LassenConfig lbase;
  lbase.chares_x = 8;
  lbase.chares_y = 8;
  lbase.iterations = iters;
  apps::LassenConfig llb = lbase;
  llb.lb_period = 3;

  Row las[2] = {measure("lassen wavefront, static",
                        apps::run_lassen_charm(lbase)),
                measure("lassen wavefront, GreedyLB/3",
                        apps::run_lassen_charm(llb))};
  print(las, 2);
  double l_ratio = static_cast<double>(las[1].total_imbalance) /
                   static_cast<double>(las[0].total_imbalance);
  std::printf("moving hotspot: imbalance ratio %.2f (stale measurements "
              "mis-balance)\n",
              l_ratio);

  bench::verdict(j_ratio < 0.6 && j_makespan < 1.0,
                 "persistent hotspot: GreedyLB cuts imbalance and the "
                 "makespan");
  bench::verdict(l_ratio > 0.95,
                 "moving hotspot: greedy balancing from stale measurements "
                 "does not help (and typically hurts)");
  bench::verdict(jac[1].violations == 0 && las[1].violations == 0,
                 "the chare-centric structure stays sound while chares "
                 "migrate");
  util::finish_obs(flags, argv[0]);
  return 0;
}
