/// Figure 24: 16-chare, 4-process PDES. The call into the completion
/// detector is not recorded, so nothing structurally prevents the
/// detector (gray/runtime) phase from covering the same global steps as
/// the simulation (mustard/app) phase. Tracing the call repairs the
/// sequence (Sec. 7.1's recommendation).

#include <algorithm>

#include "apps/pdes.hpp"
#include "bench_common.hpp"
#include "order/stats.hpp"
#include "order/stepping.hpp"
#include "util/flags.hpp"
#include "util/obs_flags.hpp"
#include "util/table.hpp"

namespace {

double max_overlap(const logstruct::order::LogicalStructure& ls) {
  double worst = 0;
  for (std::int32_t q = 0; q < ls.num_phases(); ++q) {
    if (!ls.phases.runtime[static_cast<std::size_t>(q)]) continue;
    for (std::int32_t p = 0; p < ls.num_phases(); ++p) {
      if (ls.phases.runtime[static_cast<std::size_t>(p)]) continue;
      worst = std::max(worst, logstruct::order::step_overlap(ls, q, p));
    }
  }
  return worst;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace logstruct;
  util::Flags flags;
  flags.define_int("chares", 16, "simulation chares");
  flags.define_int("pes", 4, "processing elements");
  util::define_obs_flags(flags);
  if (!flags.parse(argc, argv)) return 1;
  util::apply_obs_flags(flags);

  bench::figure_header(
      "Figure 24 — PDES completion detector, missing control dependency",
      "with the detector call unrecorded, the detector phase covers the "
      "same global steps as the simulation phase; recording it forces the "
      "sequence");

  apps::PdesConfig cfg;
  cfg.num_chares = static_cast<std::int32_t>(flags.get_int("chares"));
  cfg.num_pes = static_cast<std::int32_t>(flags.get_int("pes"));
  cfg.windows = 1;  // the paper's single mustard + gray view

  util::TablePrinter table(
      {"detector call", "phases", "max runtime/app step overlap"});
  double untraced_overlap = 0, traced_overlap = 0;
  for (bool traced : {false, true}) {
    cfg.trace_detector_calls = traced;
    trace::Trace t = apps::run_pdes(cfg);
    order::LogicalStructure ls =
        order::extract_structure(t, order::Options::charm());
    double overlap = max_overlap(ls);
    (traced ? traced_overlap : untraced_overlap) = overlap;
    table.row()
        .add(traced ? "recorded" : "not recorded (paper)")
        .add(static_cast<std::int64_t>(ls.num_phases()))
        .add(overlap, 2);
  }
  table.print();

  bench::verdict(untraced_overlap >= 0.9,
                 "unrecorded dependency: detector phase overlaps the "
                 "simulation phase's steps");
  bench::verdict(traced_overlap == 0.0,
                 "recorded dependency: phases fall into sequence");
  util::finish_obs(flags, argv[0]);
  return 0;
}
