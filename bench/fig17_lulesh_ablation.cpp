/// Figure 17: 8-chare LULESH logical structure computed WITHOUT the
/// §3.1.4 dependency inference and merging (DAG properties still
/// enforced). The initial phase breaks into several phases forced in
/// sequence, and each phase before the allreduce splits.

#include "apps/lulesh.hpp"
#include "bench_common.hpp"
#include "order/stats.hpp"
#include "order/stepping.hpp"
#include "util/flags.hpp"
#include "util/obs_flags.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace logstruct;
  util::Flags flags;
  flags.define_int("iterations", 4, "LULESH iterations");
  util::define_obs_flags(flags);
  if (!flags.parse(argc, argv)) return 1;
  util::apply_obs_flags(flags);

  bench::figure_header(
      "Figure 17 — LULESH structure without Sec. 3.1.4 inference/merging",
      "lacking inferred dependencies, the setup phase splits into several "
      "smaller phases placed one after another and the per-iteration "
      "phases fragment");

  apps::LuleshConfig cfg;
  cfg.iterations = static_cast<std::int32_t>(flags.get_int("iterations"));
  trace::Trace t = apps::run_lulesh_charm(cfg);

  order::LogicalStructure full =
      order::extract_structure(t, order::Options::charm());
  order::LogicalStructure ablated =
      order::extract_structure(t, order::Options::charm_no_inference());

  order::StructureStats fs = order::compute_stats(t, full);
  order::StructureStats as = order::compute_stats(t, ablated);

  util::TablePrinter table(
      {"pipeline", "phases", "app phases", "global steps"});
  table.row()
      .add("full (Fig. 16b)")
      .add(static_cast<std::int64_t>(fs.num_phases))
      .add(static_cast<std::int64_t>(fs.app_phases))
      .add(static_cast<std::int64_t>(fs.width));
  table.row()
      .add("no Sec. 3.1.4 (Fig. 17)")
      .add(static_cast<std::int64_t>(as.num_phases))
      .add(static_cast<std::int64_t>(as.app_phases))
      .add(static_cast<std::int64_t>(as.width));
  table.print();

  // Both structures still satisfy the DAG properties (0 collisions), but
  // the ablated one has strictly more phases and a wider structure.
  bench::verdict(as.num_phases > fs.num_phases &&
                     as.width >= fs.width &&
                     as.chare_step_violations == 0,
                 "ablation fragments phases (" +
                     std::to_string(fs.num_phases) + " -> " +
                     std::to_string(as.num_phases) +
                     ") while DAG properties still hold");
  util::finish_obs(flags, argv[0]);
  return 0;
}
