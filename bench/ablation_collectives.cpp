/// Ablation (paper §7.1): "MPI collective operations are represented as
/// single calls though the actual use of resources ... is complex. None of
/// the underlying dependencies implementing it are recorded." What happens
/// when they ARE recorded? Running LULESH-MPI with the dt allreduce
/// expanded into explicit reduce+broadcast tree messages shows the cost of
/// dropping the abstraction: the two-step collective phase balloons into
/// tree-depth-many steps of runtime-internal structure the developer never
/// wrote and cannot act on.

#include <string>

#include "apps/lulesh.hpp"
#include "bench_common.hpp"
#include "order/stats.hpp"
#include "order/stepping.hpp"
#include "util/flags.hpp"
#include "util/obs_flags.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace logstruct;
  util::Flags flags;
  flags.define_int("iterations", 4, "LULESH iterations");
  flags.define_int("grid", 2, "ranks per dimension (2 = 8 ranks)");
  util::define_obs_flags(flags);
  if (!flags.parse(argc, argv)) return 1;
  util::apply_obs_flags(flags);

  bench::figure_header(
      "Ablation — collective abstraction level (paper Sec. 7.1)",
      "abstracted allreduce: one 2-step phase per iteration; explicit tree "
      "messages: tree-depth-many steps of runtime-internal structure");

  apps::LuleshConfig cfg;
  cfg.nx = cfg.ny = cfg.nz =
      static_cast<std::int32_t>(flags.get_int("grid"));
  cfg.iterations = static_cast<std::int32_t>(flags.get_int("iterations"));

  util::TablePrinter table({"allreduce representation", "phases",
                            "global steps", "phase signature"});
  std::string sigs[2];
  std::int32_t widths[2] = {0, 0};
  for (int tree = 0; tree < 2; ++tree) {
    cfg.tree_collectives = tree != 0;
    trace::Trace t = apps::run_lulesh_mpi(cfg);
    order::LogicalStructure ls =
        order::extract_structure(t, order::Options::mpi_baseline13());
    sigs[tree] = order::phase_signature(t, ls);
    widths[tree] = ls.max_step + 1;
    table.row()
        .add(tree ? "explicit tree messages" : "abstracted (paper)")
        .add(static_cast<std::int64_t>(ls.num_phases()))
        .add(static_cast<std::int64_t>(widths[tree]))
        .add(sigs[tree].size() > 40 ? sigs[tree].substr(0, 40) + "..."
                                    : sigs[tree]);
  }
  table.print();

  bool abstract_clean =
      sigs[0].find('a') != std::string::npos;  // the 2-step call phases
  bool tree_wider = widths[1] > widths[0];
  bench::verdict(abstract_clean,
                 "abstracted collectives appear as single 2-step phases");
  bench::verdict(tree_wider,
                 "explicit tree messages widen the structure (" +
                     std::to_string(widths[0]) + " -> " +
                     std::to_string(widths[1]) +
                     " steps) with runtime-internal detail");
  util::finish_obs(flags, argv[0]);
  return 0;
}
