/// Figure 14: processor imbalance shown per event for a 16-chare Jacobi.
/// The iteration with the injected long event shows greater imbalance;
/// in chare space it appears on BOTH chare timelines of the overloaded
/// processor.

#include <set>

#include "apps/jacobi2d.hpp"
#include "bench_common.hpp"
#include "metrics/imbalance.hpp"
#include "order/stepping.hpp"
#include "util/flags.hpp"
#include "util/obs_flags.hpp"
#include "util/table.hpp"
#include "vis/ascii.hpp"

int main(int argc, char** argv) {
  using namespace logstruct;
  util::Flags flags;
  flags.define_int("iterations", 3, "Jacobi iterations");
  flags.define_int("slow-chare", 5, "chare with the long event");
  flags.define_int("slow-iteration", 1, "0-based iteration of the event");
  util::define_obs_flags(flags);
  if (!flags.parse(argc, argv)) return 1;
  util::apply_obs_flags(flags);

  bench::figure_header(
      "Figure 14 — per-processor imbalance, 16-chare Jacobi 2D",
      "the iteration with the long event shows higher imbalance than the "
      "one after it; in chare space the spread marks both chares of the "
      "overloaded processor");

  apps::Jacobi2DConfig cfg;
  cfg.chares_x = 4;
  cfg.chares_y = 4;
  cfg.num_pes = 8;  // two chares per processor
  cfg.iterations = static_cast<std::int32_t>(flags.get_int("iterations"));
  cfg.compute_noise_ns = 500;
  cfg.slow_chare = static_cast<std::int32_t>(flags.get_int("slow-chare"));
  cfg.slow_iteration =
      static_cast<std::int32_t>(flags.get_int("slow-iteration"));
  cfg.slow_factor = 6.0;
  trace::Trace t = apps::run_jacobi2d(cfg);
  order::LogicalStructure ls =
      order::extract_structure(t, order::Options::charm());
  metrics::Imbalance imb = metrics::imbalance(t, ls);

  util::TablePrinter table({"phase", "kind", "imbalance (us)"});
  trace::TimeNs max_v = 0;
  std::int32_t max_phase = -1;
  for (std::int32_t p = 0; p < ls.num_phases(); ++p) {
    table.row()
        .add(static_cast<std::int64_t>(p))
        .add(ls.phases.runtime[static_cast<std::size_t>(p)] ? "runtime"
                                                            : "app")
        .add(imb.per_phase[static_cast<std::size_t>(p)] / 1000.0);
    if (imb.per_phase[static_cast<std::size_t>(p)] > max_v) {
      max_v = imb.per_phase[static_cast<std::size_t>(p)];
      max_phase = p;
    }
  }
  table.print();

  // Which chares carry the maximum spread in the worst phase? Expect both
  // chares hosted by the slow chare's processor.
  trace::ProcId slow_proc = trace::kNone;
  for (trace::ChareId c = 0; c < t.num_chares(); ++c) {
    if (!t.chare(c).runtime && t.chare(c).index == cfg.slow_chare)
      slow_proc = t.chare(c).home;
  }
  std::set<std::int32_t> marked;
  for (trace::EventId e = 0; e < t.num_events(); ++e) {
    if (ls.phases.phase_of_event[static_cast<std::size_t>(e)] != max_phase)
      continue;
    if (t.event(e).proc == slow_proc &&
        imb.per_event[static_cast<std::size_t>(e)] > 0 &&
        !t.chare(t.event(e).chare).runtime)
      marked.insert(t.chare(t.event(e).chare).index);
  }
  std::vector<double> values(imb.per_event.begin(), imb.per_event.end());
  vis::AsciiOptions vopts;
  vopts.max_cols = 100;
  std::fputs(vis::render_metric_ascii(t, ls, values, true, vopts).c_str(),
             stdout);

  std::printf("chares marked on the slow processor (PE %d) in the worst "
              "phase:",
              slow_proc);
  for (std::int32_t c : marked) std::printf(" %d", c);
  std::printf("\n");

  bench::verdict(max_v > 0 && marked.size() >= 2 &&
                     marked.count(cfg.slow_chare) == 1,
                 "imbalance peaks in the slow iteration and marks both "
                 "chare timelines of the overloaded processor");
  util::finish_obs(flags, argv[0]);
  return 0;
}
