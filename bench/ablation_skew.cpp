/// Ablation (paper §4): idle experienced compares times across processors,
/// so clock synchronization error can perturb it. The paper argues
/// offsets on the order of the skew only matter for blocks whose idle is
/// itself skew-sized — the interesting findings survive. We inject
/// controlled per-PE skew into a Jacobi trace and measure how the
/// structure and the metrics move.

#include <string>
#include <vector>

#include "apps/jacobi2d.hpp"
#include "bench_common.hpp"
#include "metrics/duration.hpp"
#include "metrics/idle.hpp"
#include "order/stats.hpp"
#include "order/stepping.hpp"
#include "trace/skew.hpp"
#include "util/flags.hpp"
#include "util/obs_flags.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"

namespace {

using namespace logstruct;

struct Row {
  std::int64_t skew_ns;
  std::int32_t phases;
  std::int64_t violations;
  double total_idle_us;
  double max_dd_us;
};

Row measure(const trace::Trace& t, std::int64_t skew_ns,
            std::uint64_t seed) {
  util::Rng rng(seed);
  std::vector<trace::TimeNs> delta(
      static_cast<std::size_t>(t.num_procs()), 0);
  for (auto& d : delta)
    d = rng.uniform_range(-skew_ns, skew_ns);
  trace::Trace skewed = skew_ns ? trace::apply_clock_skew(t, delta) : t;

  order::LogicalStructure ls =
      order::extract_structure(skewed, order::Options::charm());
  order::StructureStats s = order::compute_stats(skewed, ls);
  metrics::IdleExperienced ie = metrics::idle_experienced(skewed);
  metrics::DifferentialDuration dd =
      metrics::differential_duration(skewed, ls);
  trace::TimeNs total_ie = 0;
  for (auto v : ie.per_event) total_ie += v;
  return Row{skew_ns, s.num_phases, s.chare_step_violations,
             total_ie / 1000.0, dd.max_value / 1000.0};
}

}  // namespace

int main(int argc, char** argv) {
  util::Flags flags;
  flags.define_int("iterations", 3, "Jacobi iterations");
  flags.define_int("seed", 1, "simulation + skew seed");
  util::define_obs_flags(flags);
  if (!flags.parse(argc, argv)) return 1;
  util::apply_obs_flags(flags);

  bench::figure_header(
      "Ablation — clock skew sensitivity (paper Sec. 4 discussion)",
      "skew on the order of the network latency leaves the recovered "
      "structure intact and perturbs idle experienced by at most the skew "
      "per affected block; large skew degrades gracefully");

  apps::Jacobi2DConfig cfg;
  cfg.chares_x = 4;
  cfg.chares_y = 4;
  cfg.num_pes = 8;
  cfg.iterations = static_cast<std::int32_t>(flags.get_int("iterations"));
  cfg.slow_chare = 5;
  cfg.slow_iteration = 1;
  trace::Trace t = apps::run_jacobi2d(cfg);
  std::uint64_t seed = static_cast<std::uint64_t>(flags.get_int("seed"));

  util::TablePrinter table({"skew +- (ns)", "phases", "step collisions",
                            "idle experienced (us)",
                            "max diff duration (us)"});
  std::vector<Row> rows;
  for (std::int64_t skew : {0LL, 200LL, 1000LL, 5000LL, 50000LL}) {
    rows.push_back(measure(t, skew, seed));
    const Row& r = rows.back();
    table.row()
        .add(r.skew_ns)
        .add(static_cast<std::int64_t>(r.phases))
        .add(r.violations)
        .add(r.total_idle_us, 1)
        .add(r.max_dd_us, 1);
  }
  table.print();

  const Row& clean = rows[0];
  const Row& small = rows[2];  // 1us ~ half the base network latency
  bool structure_stable = small.phases == clean.phases;
  bool metric_stable =
      std::abs(small.max_dd_us - clean.max_dd_us) <
      0.2 * clean.max_dd_us + 2.0;
  bench::verdict(structure_stable,
                 "phase structure unchanged under skew within the network "
                 "latency");
  bench::verdict(metric_stable,
                 "differential-duration hotspot magnitude stable under "
                 "small skew");
  bench::verdict(rows.back().violations == 0,
                 "DAG properties hold even under gross skew (no same-chare "
                 "step collisions)");
  util::finish_obs(flags, argv[0]);
  return 0;
}
