/// Figure 1: logical structure (top) vs physical time (bottom) of a
/// 9-process NAS BT trace. The logical view aligns the sweep pipeline
/// stages that physical time smears out.

#include "apps/nasbt.hpp"
#include "bench_common.hpp"
#include "order/stats.hpp"
#include "order/stepping.hpp"
#include "util/flags.hpp"
#include "util/obs_flags.hpp"
#include "vis/ascii.hpp"

int main(int argc, char** argv) {
  using namespace logstruct;
  util::Flags flags;
  flags.define_int("grid", 3, "rank grid (paper: 3x3 = 9 processes)");
  flags.define_int("iterations", 2, "BT iterations");
  util::define_obs_flags(flags);
  if (!flags.parse(argc, argv)) return 1;
  util::apply_obs_flags(flags);

  bench::figure_header(
      "Figure 1 — NAS BT, logical structure vs physical time",
      "reordering by logical step aligns the alternating x/y line sweeps "
      "that raw timestamps smear across processes");

  apps::NasBtConfig cfg;
  cfg.grid = static_cast<std::int32_t>(flags.get_int("grid"));
  cfg.iterations = static_cast<std::int32_t>(flags.get_int("iterations"));
  trace::Trace t = apps::run_nasbt_mpi(cfg);
  order::LogicalStructure ls =
      order::extract_structure(t, order::Options::mpi());

  std::fputs(vis::render_logical_ascii(t, ls).c_str(), stdout);
  std::fputs("\n", stdout);
  std::fputs(vis::render_physical_ascii(t, ls).c_str(), stdout);

  order::StructureStats stats = order::compute_stats(t, ls);
  std::printf("\nevents=%d  phases=%d  global steps=%d  "
              "events/occupied step=%.2f\n",
              t.num_events(), stats.num_phases, stats.width,
              stats.avg_occupancy);
  // Fig 1's claim is qualitative; the checkable core: each sweep forms its
  // own phase, so phases = 4 sweeps x iterations (plus possible cycle
  // merges), and the structure is far narrower than the event count.
  bench::verdict(stats.num_phases >= 4 * cfg.iterations / 2 &&
                     stats.width < t.num_events(),
                 "sweep phases recovered; logical width << event count");
  util::finish_obs(flags, argv[0]);
  return 0;
}
