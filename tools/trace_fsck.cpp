/// \file trace_fsck.cpp
/// Offline verifier / salvager for `.lsblk` containers (docs/STORAGE.md,
/// docs/ROBUSTNESS.md). Three modes:
///
///   verify  (default)  check header, commit footer, and every block
///                      checksum; exit 0 clean, 1 damaged, 2 unusable.
///   report             same scan, but always exit 0 — the JSON verdict
///                      is the product (CI artifact collection).
///   repair             recovering-open the container, salvage what the
///                      checksums prove, and write a fresh v2 container
///                      to --out; exit 0 on salvage, 2 on clean refusal.
///
///   ./trace_fsck --in=run.lsblk
///   ./trace_fsck --in=run.lsblk --mode=report --out-report=fsck.json
///   ./trace_fsck --in=torn.lsblk --mode=repair --out=salvaged.lsblk
///
/// The JSON report (schema `logstruct-fsck-report/v1`) carries the
/// per-column damage census plus the full RecoveryReport, so a fleet of
/// containers can be audited with obs_to_table.py --check.

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "trace/diagnostics.hpp"
#include "trace/storage/block_store.hpp"
#include "trace/storage/blocked_trace.hpp"
#include "util/flags.hpp"
#include "util/obs_flags.hpp"

namespace {

using logstruct::trace::RecoveryReport;
using logstruct::trace::storage::BlockStatus;
using logstruct::trace::storage::BlockStore;
using logstruct::trace::storage::ColumnId;
using logstruct::trace::storage::kNumColumns;
using logstruct::trace::storage::OpenOptions;

struct ColumnCensus {
  std::int64_t blocks = 0;
  std::int64_t ok = 0;
  std::int64_t checksum_absent = 0;
  std::int64_t checksum_mismatch = 0;
  std::int64_t unreadable = 0;
};

struct FsckResult {
  bool opened = false;
  std::uint32_t version = 0;
  bool checksums = false;
  bool footer_valid = false;
  std::int64_t blocks_total = 0;
  std::int64_t blocks_bad = 0;
  ColumnCensus columns[kNumColumns];
  std::string verdict = "unusable";
};

FsckResult scan(BlockStore& store, const RecoveryReport& report) {
  FsckResult r;
  r.opened = true;
  r.version = store.version();
  r.checksums = store.checksums_present();
  r.footer_valid = store.footer_valid();
  for (std::uint32_t c = 0; c < kNumColumns; ++c) {
    const auto col = static_cast<ColumnId>(c);
    ColumnCensus& census = r.columns[c];
    census.blocks = store.num_blocks(col);
    for (std::uint32_t b = 0; b < store.num_blocks(col); ++b) {
      switch (store.verify_block(col, b)) {
        case BlockStatus::Ok: ++census.ok; break;
        case BlockStatus::ChecksumAbsent: ++census.checksum_absent; break;
        case BlockStatus::ChecksumMismatch:
          ++census.checksum_mismatch;
          break;
        case BlockStatus::Unreadable: ++census.unreadable; break;
      }
    }
    r.blocks_total += census.blocks;
    r.blocks_bad += census.checksum_mismatch + census.unreadable;
  }
  const bool committed = r.version < 2 || r.footer_valid;
  if (r.blocks_bad == 0 && committed && report.empty())
    r.verdict = "clean";
  else
    r.verdict = "degraded";
  return r;
}

std::string json_escape(const std::string& s) {
  std::string out;
  for (char c : s) {
    if (c == '"' || c == '\\') out += '\\';
    if (static_cast<unsigned char>(c) < 0x20) {
      char buf[8];
      std::snprintf(buf, sizeof(buf), "\\u%04x", c);
      out += buf;
      continue;
    }
    out += c;
  }
  return out;
}

std::string to_json(const std::string& path, const FsckResult& r,
                    const RecoveryReport& report) {
  std::ostringstream os;
  os << "{\n  \"schema\": \"logstruct-fsck-report/v1\",\n"
     << "  \"path\": \"" << json_escape(path) << "\",\n"
     << "  \"verdict\": \"" << r.verdict << "\",\n"
     << "  \"version\": " << r.version << ",\n"
     << "  \"checksums\": " << (r.checksums ? "true" : "false") << ",\n"
     << "  \"footer_valid\": " << (r.footer_valid ? "true" : "false")
     << ",\n"
     << "  \"blocks_total\": " << r.blocks_total << ",\n"
     << "  \"blocks_bad\": " << r.blocks_bad << ",\n"
     << "  \"columns\": [";
  for (std::uint32_t c = 0; c < kNumColumns; ++c) {
    const ColumnCensus& census = r.columns[c];
    if (c) os << ",";
    os << "\n    {\"id\": " << c << ", \"blocks\": " << census.blocks
       << ", \"ok\": " << census.ok
       << ", \"checksum_absent\": " << census.checksum_absent
       << ", \"checksum_mismatch\": " << census.checksum_mismatch
       << ", \"unreadable\": " << census.unreadable << "}";
  }
  os << "\n  ],\n  \"recovery\": " << report.to_json() << "\n}\n";
  return os.str();
}

bool write_report(const std::string& out, const std::string& json) {
  if (out.empty()) return true;
  std::ofstream f(out, std::ios::trunc);
  if (f) f << json;
  if (!f) {
    std::fprintf(stderr, "trace_fsck: failed to write %s\n", out.c_str());
    return false;
  }
  std::printf("trace_fsck: wrote %s\n", out.c_str());
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace logstruct;

  util::Flags flags;
  flags.define_string("in", "", ".lsblk container to check (required)");
  flags.define_string("mode", "verify", "verify | report | repair");
  flags.define_string("out", "",
                      "repair mode: path for the salvaged container");
  flags.define_string("out-report", "",
                      "write the logstruct-fsck-report/v1 JSON here");
  flags.define_int("block-kb", 256,
                   "repair mode: block size in KiB for the output");
  util::define_obs_flags(flags);
  if (!flags.parse(argc, argv)) return 1;
  util::apply_obs_flags(flags);

  const std::string& in = flags.get_string("in");
  const std::string& mode = flags.get_string("mode");
  if (in.empty()) {
    std::fprintf(stderr, "trace_fsck: --in is required\n%s",
                 flags.usage(argv[0]).c_str());
    return 1;
  }
  if (mode != "verify" && mode != "report" && mode != "repair") {
    std::fprintf(stderr, "trace_fsck: unknown --mode '%s'\n", mode.c_str());
    return 1;
  }

  // The scan itself: recovering open + per-block verification. The open
  // never throws in recover mode; an unusable container shows up as
  // salvageable() == false with a Fatal diagnostic in the report.
  RecoveryReport report;
  BlockStore store(in, OpenOptions::recovering(&report));
  FsckResult result;
  if (store.salvageable()) result = scan(store, report);

  const std::string json = to_json(in, result, report);
  if (!write_report(flags.get_string("out-report"), json)) return 1;

  std::printf(
      "trace_fsck: %s v%u %s: %lld blocks, %lld bad, footer %s -> %s\n",
      in.c_str(), result.version,
      result.checksums ? "checksummed" : "no checksums",
      static_cast<long long>(result.blocks_total),
      static_cast<long long>(result.blocks_bad),
      result.footer_valid ? "valid" : "absent/invalid",
      result.verdict.c_str());
  if (report.total() > 0) std::printf("%s", report.to_string().c_str());

  if (mode == "repair") {
    const std::string& out = flags.get_string("out");
    if (out.empty()) {
      std::fprintf(stderr, "trace_fsck: --mode=repair needs --out\n");
      return 1;
    }
    RecoveryReport salvage_report;
    trace::Trace salvaged = trace::storage::open_blocked_trace(
        in, trace::storage::StorageOptions::recovering(), salvage_report);
    if (salvage_report.fatal()) {
      std::fprintf(stderr,
                   "trace_fsck: %s is beyond salvage; refusing cleanly\n%s",
                   in.c_str(), salvage_report.to_string().c_str());
      return 2;
    }
    const std::int64_t block_kb = flags.get_int("block-kb");
    trace::storage::write_blocked_file(
        salvaged, out,
        static_cast<std::uint32_t>(block_kb > 0 ? block_kb : 256) * 1024u);
    std::printf(
        "trace_fsck: salvaged %d events, %d blocks (%d degraded chares) "
        "-> %s (hash %016llx)\n",
        salvaged.num_events(), salvaged.num_blocks(),
        salvaged.num_degraded_chares(), out.c_str(),
        static_cast<unsigned long long>(
            trace::storage::trace_structure_hash(salvaged)));
    util::finish_obs(flags, argv[0]);
    return 0;
  }

  util::finish_obs(flags, argv[0]);
  if (mode == "report") return 0;
  if (!result.opened) return 2;
  return result.verdict == "clean" ? 0 : 1;
}
