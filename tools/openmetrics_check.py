#!/usr/bin/env python3
"""Validate an OpenMetrics text exposition (conformance checker).

The exposition comes from --obs-prom=<path> or a GET /metrics scrape of
the embedded exporter (docs/OBSERVABILITY.md, "Live telemetry"). The
checker enforces the subset of the OpenMetrics 1.0 text format the
logstruct emitter produces, strictly enough to catch real emitter bugs:

  - the document is non-empty and ends with exactly one `# EOF` line;
  - metric family names match [a-zA-Z_:][a-zA-Z0-9_:]*;
  - `# HELP` / `# TYPE` precede the family's samples, each appears at
    most once, and every family occupies one contiguous block;
  - sample names carry the suffix their declared type requires
    (counter -> `_total`; histogram -> `_bucket`/`_count`/`_sum`);
  - label sets parse (escapes limited to \\\\, \\", \\n), with no
    duplicate label names and no duplicate (name, labelset) sample;
  - counter values are finite and non-negative;
  - histogram series have increasing `le` thresholds, non-decreasing
    cumulative counts, and a `+Inf` bucket equal to `_count`.

Usage:

    openmetrics_check.py FILE [--require S]... [--require-positive S]...
        [--exec CMD ARG...]
    openmetrics_check.py --self-test

--exec runs CMD (everything after --exec, verbatim) before reading
FILE, so one ctest entry can produce and validate an exposition:

    python3 tools/openmetrics_check.py /tmp/q.prom \\
        --require-positive logstruct_trace_ingest \\
        --exec ./build/examples/quickstart --obs-prom=/tmp/q.prom

--require fails unless the raw document contains the substring;
--require-positive fails unless some sample whose name contains the
substring has a value > 0. --self-test runs the embedded good/bad
corpus and ignores FILE. Stdlib only; no third-party dependencies.
"""

import argparse
import math
import re
import subprocess
import sys

NAME_RE = re.compile(r"[a-zA-Z_:][a-zA-Z0-9_:]*$")
LABEL_NAME_RE = re.compile(r"[a-zA-Z_][a-zA-Z0-9_]*$")

SUFFIXES = {
    "counter": ("_total",),
    "histogram": ("_bucket", "_count", "_sum"),
    "gauge": ("",),
    "unknown": ("",),
    "info": ("_info", ""),
}


class Sample:
    def __init__(self, name, labels, value, line_no):
        self.name = name
        self.labels = labels  # dict, insertion order preserved
        self.value = value
        self.line_no = line_no

    def label_key(self, drop=()):
        return tuple(
            (k, v) for k, v in sorted(self.labels.items()) if k not in drop
        )


def parse_labels(text, problems, line_no):
    """Parse `a="b",c="d"` (no braces); return dict or None."""
    labels = {}
    i = 0
    n = len(text)
    while i < n:
        eq = text.find("=", i)
        if eq < 0:
            problems.append(f"line {line_no}: label without '='")
            return None
        name = text[i:eq]
        if not LABEL_NAME_RE.match(name):
            problems.append(f"line {line_no}: bad label name {name!r}")
            return None
        if name in labels:
            problems.append(f"line {line_no}: duplicate label {name!r}")
            return None
        if eq + 1 >= n or text[eq + 1] != '"':
            problems.append(f"line {line_no}: label value not quoted")
            return None
        i = eq + 2
        out = []
        while i < n and text[i] != '"':
            c = text[i]
            if c == "\\":
                if i + 1 >= n:
                    problems.append(
                        f"line {line_no}: dangling escape in label value"
                    )
                    return None
                esc = text[i + 1]
                if esc == "\\":
                    out.append("\\")
                elif esc == '"':
                    out.append('"')
                elif esc == "n":
                    out.append("\n")
                else:
                    problems.append(
                        f"line {line_no}: invalid escape \\{esc} in "
                        "label value"
                    )
                    return None
                i += 2
            else:
                out.append(c)
                i += 1
        if i >= n:
            problems.append(f"line {line_no}: unterminated label value")
            return None
        labels[name] = "".join(out)
        i += 1  # closing quote
        if i < n:
            if text[i] != ",":
                problems.append(
                    f"line {line_no}: expected ',' between labels"
                )
                return None
            i += 1
    return labels


def parse_value(text):
    """Float value; OpenMetrics spells infinities +Inf/-Inf."""
    t = text.strip()
    low = t.lower()
    if low in ("+inf", "inf"):
        return math.inf
    if low == "-inf":
        return -math.inf
    if low == "nan":
        return math.nan
    return float(t)


def parse_sample(line, problems, line_no):
    brace = line.find("{")
    if brace >= 0:
        close = line.rfind("}")
        if close < brace:
            problems.append(f"line {line_no}: unbalanced braces")
            return None
        name = line[:brace]
        labels = parse_labels(line[brace + 1 : close], problems, line_no)
        if labels is None:
            return None
        rest = line[close + 1 :].strip()
    else:
        parts = line.split(None, 1)
        if len(parts) != 2:
            problems.append(f"line {line_no}: sample without value")
            return None
        name, rest = parts[0], parts[1]
        labels = {}
    if not NAME_RE.match(name):
        problems.append(f"line {line_no}: bad sample name {name!r}")
        return None
    fields = rest.split()
    if not fields or len(fields) > 2:  # value [timestamp]
        problems.append(f"line {line_no}: expected `value [timestamp]`")
        return None
    try:
        value = parse_value(fields[0])
    except ValueError:
        problems.append(f"line {line_no}: bad value {fields[0]!r}")
        return None
    if len(fields) == 2:
        try:
            float(fields[1])
        except ValueError:
            problems.append(
                f"line {line_no}: bad timestamp {fields[1]!r}"
            )
            return None
    return Sample(name, labels, value, line_no)


def family_of(sample_name, families):
    """Longest declared family this sample name belongs to, or None."""
    best = None
    for fam, info in families.items():
        for suffix in SUFFIXES.get(info["type"], ("",)):
            if sample_name == fam + suffix:
                if best is None or len(fam) > len(best):
                    best = fam
    return best


def check_histogram(fam, samples, problems):
    """Bucket monotonicity and +Inf/_count agreement per label set."""
    series = {}
    counts = {}
    for s in samples:
        if s.name == fam + "_bucket":
            if "le" not in s.labels:
                problems.append(
                    f"line {s.line_no}: histogram bucket without le"
                )
                continue
            series.setdefault(s.label_key(drop=("le",)), []).append(s)
        elif s.name == fam + "_count":
            counts[s.label_key()] = s
    for key, buckets in series.items():
        prev_le = -math.inf
        prev_count = -math.inf
        saw_inf = False
        for s in buckets:  # document order == emission order
            le_text = s.labels["le"]
            try:
                le = parse_value(le_text)
            except ValueError:
                problems.append(
                    f"line {s.line_no}: bad le value {le_text!r}"
                )
                continue
            if le <= prev_le:
                problems.append(
                    f"line {s.line_no}: le {le_text!r} not increasing "
                    f"in {fam}"
                )
            if s.value < prev_count:
                problems.append(
                    f"line {s.line_no}: bucket count decreases in {fam}"
                )
            prev_le, prev_count = le, s.value
            saw_inf = saw_inf or math.isinf(le)
        if not saw_inf:
            problems.append(f"histogram {fam} has no +Inf bucket")
        elif key in counts and buckets[-1].value != counts[key].value:
            problems.append(
                f"histogram {fam}: +Inf bucket {buckets[-1].value:g} "
                f"!= _count {counts[key].value:g}"
            )
        if key not in counts:
            problems.append(f"histogram {fam} missing _count series")


def check_text(text):
    """Validate a full exposition; return (problems, samples)."""
    problems = []
    samples = []
    if not text:
        return ["document is empty"], samples
    if not text.endswith("# EOF\n"):
        problems.append("document does not end with `# EOF`")

    families = {}  # name -> {"type","help","samples","closed"}
    current = None
    saw_eof = False
    for line_no, line in enumerate(text.splitlines(), start=1):
        if saw_eof:
            problems.append(f"line {line_no}: content after `# EOF`")
            break
        if line == "# EOF":
            saw_eof = True
            continue
        if not line:
            problems.append(f"line {line_no}: blank line")
            continue
        if line.startswith("#"):
            parts = line.split(None, 3)
            if len(parts) < 3 or parts[1] not in ("HELP", "TYPE", "UNIT"):
                problems.append(
                    f"line {line_no}: malformed comment {line!r}"
                )
                continue
            kind, fam = parts[1], parts[2]
            if not NAME_RE.match(fam):
                problems.append(
                    f"line {line_no}: bad family name {fam!r}"
                )
                continue
            info = families.get(fam)
            if info is None:
                if current is not None:
                    families[current]["closed"] = True
                info = families[fam] = {
                    "type": "unknown",
                    "help": None,
                    "samples": [],
                    "closed": False,
                }
                current = fam
            elif info["closed"] or fam != current:
                problems.append(
                    f"line {line_no}: family {fam} is not contiguous"
                )
                continue
            if kind == "HELP":
                if info["help"] is not None:
                    problems.append(
                        f"line {line_no}: duplicate HELP for {fam}"
                    )
                if info["samples"]:
                    problems.append(
                        f"line {line_no}: HELP after samples of {fam}"
                    )
                info["help"] = parts[3] if len(parts) > 3 else ""
            elif kind == "TYPE":
                if info["type"] != "unknown" or info["samples"]:
                    problems.append(
                        f"line {line_no}: duplicate or late TYPE for "
                        f"{fam}"
                    )
                declared = parts[3] if len(parts) > 3 else ""
                if declared not in SUFFIXES:
                    problems.append(
                        f"line {line_no}: unknown type {declared!r}"
                    )
                else:
                    info["type"] = declared
            continue

        sample = parse_sample(line, problems, line_no)
        if sample is None:
            continue
        samples.append(sample)
        fam = family_of(sample.name, families)
        if fam is None:
            # Untyped families need no comments; open a block for them.
            if current is not None:
                families[current]["closed"] = True
            fam = sample.name
            families[fam] = {
                "type": "unknown",
                "help": None,
                "samples": [],
                "closed": False,
            }
            current = fam
        elif fam != current:
            problems.append(
                f"line {line_no}: sample {sample.name} outside its "
                f"family block ({fam})"
            )
            continue
        info = families[fam]
        if info["type"] == "counter" and (
            math.isnan(sample.value) or sample.value < 0
        ):
            problems.append(
                f"line {line_no}: counter {sample.name} has negative "
                "or NaN value"
            )
        key = (sample.name, sample.label_key())
        for other in info["samples"]:
            if (other.name, other.label_key()) == key:
                problems.append(
                    f"line {line_no}: duplicate sample {sample.name} "
                    f"{dict(sample.labels)}"
                )
                break
        info["samples"].append(sample)

    if not saw_eof:
        problems.append("missing `# EOF` line")
    for fam, info in families.items():
        if info["type"] == "histogram":
            check_histogram(fam, info["samples"], problems)
    return problems, samples


# --------------------------------------------------------------- self-test

GOOD = """\
# HELP logstruct_demo_total logstruct counter for registry path 'demo'.
# TYPE logstruct_demo_total counter
logstruct_demo_total{path="demo"} 3
# HELP logstruct_rss_kb logstruct gauge for registry path 'rss kb'.
# TYPE logstruct_rss_kb gauge
logstruct_rss_kb{path="rss \\"kb\\"\\n"} 4096
# HELP logstruct_lat logstruct histogram for registry path 'lat'.
# TYPE logstruct_lat histogram
logstruct_lat_bucket{path="lat",le="0"} 1
logstruct_lat_bucket{path="lat",le="1"} 3
logstruct_lat_bucket{path="lat",le="+Inf"} 4
logstruct_lat_count{path="lat"} 4
logstruct_lat_sum{path="lat"} 17
# EOF
"""

BAD = [
    # (description, document)
    ("missing EOF", 'a_total{x="y"} 1\n'),
    (
        "non-monotone buckets",
        "# TYPE h histogram\n"
        'h_bucket{le="0"} 5\n'
        'h_bucket{le="1"} 3\n'
        'h_bucket{le="+Inf"} 5\n'
        "h_count 5\n"
        "h_sum 1\n"
        "# EOF\n",
    ),
    (
        "+Inf disagrees with _count",
        "# TYPE h histogram\n"
        'h_bucket{le="+Inf"} 4\n'
        "h_count 5\n"
        "h_sum 1\n"
        "# EOF\n",
    ),
    ("bad escape", 'g{x="\\q"} 1\n# EOF\n'),
    (
        "duplicate TYPE",
        "# TYPE g gauge\n# TYPE g gauge\ng 1\n# EOF\n",
    ),
    (
        "interleaved families",
        "# TYPE a gauge\na 1\n# TYPE b gauge\nb 2\na 3\n# EOF\n",
    ),
    (
        "negative counter",
        "# TYPE c counter\nc_total -1\n# EOF\n",
    ),
    (
        "duplicate sample",
        '# TYPE g gauge\ng{x="1"} 1\ng{x="1"} 2\n# EOF\n',
    ),
    ("content after EOF", "# EOF\ng 1\n"),
]


def self_test():
    failures = []
    problems, samples = check_text(GOOD)
    if problems:
        failures.append(f"good document rejected: {problems}")
    if len(samples) != 7:
        failures.append(f"good document: expected 7 samples, got "
                        f"{len(samples)}")
    for desc, doc in BAD:
        problems, _ = check_text(doc)
        if not problems:
            failures.append(f"bad document accepted: {desc}")
    for f in failures:
        print(f"self-test: {f}")
    print(
        "self-test: %s (%d bad cases)"
        % ("FAIL" if failures else "ok", len(BAD))
    )
    return 1 if failures else 0


def main():
    ap = argparse.ArgumentParser(
        description=__doc__.splitlines()[0],
    )
    ap.add_argument("file", nargs="?", help="exposition file to check")
    ap.add_argument(
        "--self-test",
        action="store_true",
        help="run the embedded conformance corpus and exit",
    )
    ap.add_argument(
        "--require",
        action="append",
        default=[],
        metavar="SUBSTR",
        help="fail unless the document contains this substring",
    )
    ap.add_argument(
        "--require-positive",
        action="append",
        default=[],
        metavar="SUBSTR",
        help="fail unless a sample whose name contains this substring "
        "has a value > 0",
    )
    ap.add_argument(
        "--exec",
        dest="exec_cmd",
        nargs=argparse.REMAINDER,
        metavar="CMD",
        help="run this command (everything after --exec) before "
        "reading FILE",
    )
    args = ap.parse_args()

    if args.self_test:
        sys.exit(self_test())
    if not args.file:
        ap.error("FILE is required unless --self-test")

    if args.exec_cmd:
        proc = subprocess.run(args.exec_cmd)
        if proc.returncode != 0:
            sys.exit(
                f"error: --exec command failed "
                f"(exit {proc.returncode}): {' '.join(args.exec_cmd)}"
            )

    try:
        with open(args.file) as f:
            text = f.read()
    except OSError as e:
        sys.exit(f"error: {e}")

    problems, samples = check_text(text)
    for substr in args.require:
        if substr not in text:
            problems.append(f"required substring not found: {substr!r}")
    for substr in args.require_positive:
        if not any(
            substr in s.name and s.value > 0 for s in samples
        ):
            problems.append(
                f"no sample matching {substr!r} with value > 0"
            )

    if problems:
        print(f"{args.file}: FAIL")
        for p in problems:
            print(f"  - {p}")
        sys.exit(1)
    print(f"{args.file}: ok ({len(samples)} samples)")


if __name__ == "__main__":
    main()
