#!/usr/bin/env python3
"""Fold --obs-json sidecars into the EXPERIMENTS.md trajectory table.

Every bench harness writes a JSON sidecar (see docs/OBSERVABILITY.md,
"Sidecar format") when run with --obs-json=<path>. This script reads one
or more sidecars, aggregates the per-stage span timings, and renders a
markdown table of wall-time per pipeline stage per harness. With
--update it splices the table into the target markdown file between the

    <!-- obs-trajectory:begin -->
    <!-- obs-trajectory:end -->

markers (the rest of the file is left untouched), so the EXPERIMENTS.md
trajectory section can be regenerated from fresh runs:

    ./build/bench/fig18_scaling_iters --obs-json=/tmp/fig18.json
    ./build/bench/fig19_scaling_chares --obs-json=/tmp/fig19.json
    python3 tools/obs_to_table.py /tmp/fig18.json /tmp/fig19.json \
        --update EXPERIMENTS.md

Efficiency artifacts (--eff-json, schema "logstruct-effmetrics/v1",
docs/METRICS.md) are recognized by their schema string and folded into a
separate per-suite efficiency table, spliced between the

    <!-- eff-metrics:begin -->
    <!-- eff-metrics:end -->

markers. Concurrency artifacts (--concurrency-json, schema
"logstruct-concurrency/v1", docs/CAUSALITY.md) are likewise recognized
by schema and folded into a per-suite concurrency table between the

    <!-- concurrency:begin -->
    <!-- concurrency:end -->

markers. Sidecars, efficiency, and concurrency artifacts can be mixed
freely on one command line:

    ./build/examples/efficiency_compare --eff-json=/tmp/eff.json
    ./build/examples/trace_inspect --concurrency-json=/tmp/conc.json
    python3 tools/obs_to_table.py /tmp/eff.json /tmp/conc.json \
        --update EXPERIMENTS.md

With --check it validates each document instead of rendering a table,
dispatching on the schema string. Sidecars must have the v1/v2/v3/v4
shape (program, stages, spans, metrics), a versioned `schema` string
must be exactly "logstruct-obs-sidecar/v2", ".../v3", or ".../v4" and
carry `peak_rss_kb`, a v3+ sidecar must additionally carry a well-formed
`recovery` object ({"total": N, "counters": {...}} with total equal to
the counter sum -- the fault-tolerant-ingestion repair counters, see
docs/ROBUSTNESS.md), a v4 sidecar must carry the live-telemetry blocks
(a `sampler` time series with non-decreasing timestamps and a
`flight_recorder` reference, docs/OBSERVABILITY.md "Live telemetry"),
and `dropped_spans` must be 0 (a nonzero count means the tracer's span
buffer overflowed and the trajectory table would silently undercount).
When a v4 sidecar's sampler ring holds samples, the trajectory table
gains a closing row with the peak / mean sampled RSS per harness.
A trace_fsck container-health report ("logstruct-fsck-report/v1",
docs/ROBUSTNESS.md) must carry a clean/degraded/unusable verdict, a
per-column block census whose rows sum to their block counts and to
the top-level blocks_total/blocks_bad, and a well-formed
RecoveryReport under `recovery` -- and a "clean" verdict must not
coexist with bad blocks or recovery diagnostics.
An effmetrics document must carry program/trace/suites, per-suite
summaries for all five POP metrics, per-window rows matching
num_windows, and every efficiency value inside [0, 1]. A concurrency
document must carry program/trace/phases/suites, a self-consistent
whole-trace pair census (pairs_total == count*(count-1)/2,
commuting <= unordered <= total), per-window rows matching num_windows
with commuting_pairs <= unordered_pairs, and -- for the phases-sliced
suite, whose rows are per-phase concurrency degrees -- a degree sum
equal to exactly twice the census (every unordered pair contributes one
degree at each endpoint). Exit is nonzero on any violation -- CI runs
this on every uploaded artifact.

Stdlib only; no third-party dependencies.
"""

import argparse
import json
import os
import sys

BEGIN = "<!-- obs-trajectory:begin -->"
END = "<!-- obs-trajectory:end -->"
EFF_BEGIN = "<!-- eff-metrics:begin -->"
EFF_END = "<!-- eff-metrics:end -->"
CONC_BEGIN = "<!-- concurrency:begin -->"
CONC_END = "<!-- concurrency:end -->"

EFF_SCHEMA = "logstruct-effmetrics/v1"
CONC_SCHEMA = "logstruct-concurrency/v1"
FSCK_SCHEMA = "logstruct-fsck-report/v1"
EFF_METRICS = (
    "parallel",
    "load_balance",
    "communication",
    "serialization",
    "transfer",
)

# Pipeline taxonomy order (docs/OBSERVABILITY.md); unknown stages sort
# after these, alphabetically.
STAGE_ORDER = [
    "sim/charm/run",
    "sim/mpi/run",
    "trace/ingest",
    "order/extract_structure",
    "order/find_phases",
    "order/initial",
    "order/dependency_merge",
    "order/repair",
    "order/neighbor_serial",
    "order/infer_source_order",
    "order/enforce_leap_property",
    "order/enforce_chare_paths",
    "order/finalize",
    "order/reorder",
    "order/stepping",
]


def load_sidecar(path):
    with open(path) as f:
        doc = json.load(f)
    program = os.path.basename(doc.get("program", path))
    stages = {
        name: (entry.get("count", 0), entry.get("total_ns", 0))
        for name, entry in doc.get("stages", {}).items()
    }
    sampler = doc.get("sampler")
    rss = []
    if isinstance(sampler, dict):
        rss = [
            s["rss_kb"]
            for s in sampler.get("samples", [])
            if isinstance(s, dict) and isinstance(s.get("rss_kb"), int)
        ]
    return program, stages, doc.get("dropped_spans", 0), rss


def stage_key(name):
    try:
        return (0, STAGE_ORDER.index(name))
    except ValueError:
        return (1, name)


def render_table(runs):
    programs = [program for program, _, _, _ in runs]
    all_stages = sorted(
        {s for _, stages, _, _ in runs for s in stages}, key=stage_key
    )
    header = "| stage | " + " | ".join(
        f"{p} (ms, calls)" for p in programs
    ) + " |"
    sep = "|---" * (len(programs) + 1) + "|"
    lines = [header, sep]
    for stage in all_stages:
        cells = []
        for _, stages, _, _ in runs:
            if stage in stages:
                count, total_ns = stages[stage]
                cells.append(f"{total_ns / 1e6:.2f} ({count})")
            else:
                cells.append("—")
        lines.append("| `" + stage + "` | " + " | ".join(cells) + " |")
    # Live-sampler memory row (v4 sidecars run with --obs-period-ms):
    # peak / mean of the sampled RSS series, in MiB.
    if any(rss for _, _, _, rss in runs):
        cells = []
        for _, _, _, rss in runs:
            if rss:
                peak = max(rss) / 1024.0
                mean = sum(rss) / len(rss) / 1024.0
                cells.append(f"{peak:.1f} / {mean:.1f}")
            else:
                cells.append("—")
        lines.append(
            "| _sampled rss (peak/mean MiB)_ | " + " | ".join(cells) + " |"
        )
    dropped = sum(d for _, _, d, _ in runs)
    lines.append("")
    lines.append(
        f"_Generated by `tools/obs_to_table.py` from {len(runs)} "
        f"sidecar(s); dropped spans: {dropped}._"
    )
    return "\n".join(lines)


def read_schema(path):
    """The document's schema string, or "" when unreadable/absent."""
    try:
        with open(path) as f:
            doc = json.load(f)
    except (OSError, ValueError):
        return ""
    if not isinstance(doc, dict):
        return ""
    return doc.get("schema", "")


def render_eff_table(paths):
    """Markdown efficiency table, one row per (program, suite mode)."""
    lines = [
        "| program | mode | windows | degraded | parallel "
        "(mean / min) | load bal (min @win) | comm (mean) | "
        "serial (mean) | transfer (mean) |",
        "|---" * 9 + "|",
    ]
    for path in paths:
        with open(path) as f:
            doc = json.load(f)
        program = os.path.basename(doc.get("program", path))
        for suite in doc.get("suites", []):
            s = suite.get("summary", {})

            def m(name, key, s=s):
                return s.get(name, {}).get(key, float("nan"))

            lines.append(
                "| `{}` | {} | {} | {} | {:.3f} / {:.3f} | "
                "{:.3f} @{} | {:.3f} | {:.3f} | {:.3f} |".format(
                    program,
                    suite.get("mode", "?"),
                    suite.get("num_windows", 0),
                    suite.get("degraded_windows", 0),
                    m("parallel", "mean"),
                    m("parallel", "min"),
                    m("load_balance", "min"),
                    m("load_balance", "min_window"),
                    m("communication", "mean"),
                    m("serialization", "mean"),
                    m("transfer", "mean"),
                )
            )
    lines.append("")
    lines.append(
        f"_Generated by `tools/obs_to_table.py` from {len(paths)} "
        f"efficiency artifact(s) (schema `{EFF_SCHEMA}`)._"
    )
    return "\n".join(lines)


def render_conc_table(paths):
    """Markdown concurrency table, one row per (program, suite mode)."""
    lines = [
        "| program | phases | unordered / total pairs | commuting | "
        "mode | windows | peak active | peak unordered |",
        "|---" * 8 + "|",
    ]
    for path in paths:
        with open(path) as f:
            doc = json.load(f)
        program = os.path.basename(doc.get("program", path))
        census = doc.get("phases", {})
        for suite in doc.get("suites", []):
            windows = suite.get("windows", [])
            peak_active = max(
                (w.get("phases_active", 0) for w in windows), default=0
            )
            peak_unordered = max(
                (w.get("unordered_pairs", 0) for w in windows), default=0
            )
            lines.append(
                "| `{}` | {} | {} / {} | {} | {} | {} | {} | {} |".format(
                    program,
                    census.get("count", 0),
                    census.get("pairs_unordered", 0),
                    census.get("pairs_total", 0),
                    census.get("pairs_commuting", 0),
                    suite.get("mode", "?"),
                    suite.get("num_windows", 0),
                    peak_active,
                    peak_unordered,
                )
            )
    lines.append("")
    lines.append(
        f"_Generated by `tools/obs_to_table.py` from {len(paths)} "
        f"concurrency artifact(s) (schema `{CONC_SCHEMA}`; phases-mode "
        "window counts are per-phase concurrency degrees)._"
    )
    return "\n".join(lines)


def check_concurrency(doc):
    """Validate a logstruct-concurrency/v1 document; return problems."""
    problems = []
    if not isinstance(doc.get("program"), str):
        problems.append("missing string key: program")
    trace = doc.get("trace")
    if not isinstance(trace, dict):
        problems.append("missing `trace` object")
    else:
        for key in ("events", "procs", "end_ns", "degraded_chares"):
            if not isinstance(trace.get(key), int):
                problems.append(f"trace.{key} is not an integer")
    census = doc.get("phases")
    count = total = unordered = commuting = None
    if not isinstance(census, dict):
        problems.append("missing `phases` census object")
    else:
        for key in (
            "count",
            "pairs_total",
            "pairs_unordered",
            "pairs_commuting",
        ):
            if not isinstance(census.get(key), int) or census[key] < 0:
                problems.append(
                    f"phases.{key} is not a non-negative integer"
                )
        count = census.get("count")
        total = census.get("pairs_total")
        unordered = census.get("pairs_unordered")
        commuting = census.get("pairs_commuting")
        if isinstance(count, int) and isinstance(total, int):
            if total != count * (count - 1) // 2:
                problems.append(
                    f"phases.pairs_total = {total} but count = {count} "
                    f"implies {count * (count - 1) // 2}"
                )
        if (
            isinstance(total, int)
            and isinstance(unordered, int)
            and isinstance(commuting, int)
            and not (commuting <= unordered <= total)
        ):
            problems.append(
                "census not nested: expected pairs_commuting <= "
                f"pairs_unordered <= pairs_total, got {commuting} / "
                f"{unordered} / {total}"
            )
    suites = doc.get("suites")
    if not isinstance(suites, list) or not suites:
        return problems + ["missing non-empty `suites` array"]
    for i, suite in enumerate(suites):
        where = f"suites[{i}]"
        mode = suite.get("mode")
        if mode not in ("time_bins", "phases"):
            problems.append(f"{where}.mode is not time_bins|phases")
        if mode == "time_bins" and not isinstance(
            suite.get("bin_width_ns"), int
        ):
            problems.append(f"{where} (time_bins) missing bin_width_ns")
        windows = suite.get("windows")
        if not isinstance(windows, list):
            problems.append(f"{where}.windows is not an array")
            continue
        if suite.get("num_windows") != len(windows):
            problems.append(
                f"{where}.num_windows != len(windows) "
                f"({suite.get('num_windows')} vs {len(windows)})"
            )
        degraded = suite.get("degraded_windows")
        if not isinstance(degraded, int) or not (
            0 <= degraded <= len(windows)
        ):
            problems.append(f"{where}.degraded_windows out of range")
        degree_sum = 0
        for j, win in enumerate(windows):
            if not isinstance(win, dict):
                problems.append(f"{where}.windows[{j}] is not an object")
                continue
            for key in (
                "begin_ns",
                "end_ns",
                "phases_active",
                "unordered_pairs",
                "commuting_pairs",
            ):
                if not isinstance(win.get(key), int) or win[key] < 0:
                    problems.append(
                        f"{where}.windows[{j}].{key} is not a "
                        "non-negative integer"
                    )
            u = win.get("unordered_pairs")
            c = win.get("commuting_pairs")
            if isinstance(u, int) and isinstance(c, int) and c > u:
                problems.append(
                    f"{where}.windows[{j}]: commuting_pairs = {c} "
                    f"exceeds unordered_pairs = {u}"
                )
            if isinstance(u, int):
                degree_sum += u
        # Phase-sliced windows report per-phase concurrency degrees;
        # every unordered pair contributes one degree at each endpoint,
        # so over a full one-window-per-phase suite the sum is exactly
        # twice the census.
        if (
            mode == "phases"
            and isinstance(count, int)
            and isinstance(unordered, int)
            and len(windows) == count
            and degree_sum != 2 * unordered
        ):
            problems.append(
                f"{where}: phase degree sum = {degree_sum} but census "
                f"has {unordered} unordered pairs (expected "
                f"{2 * unordered})"
            )
    return problems


def check_effmetrics(doc):
    """Validate a logstruct-effmetrics/v1 document; return problems."""
    problems = []
    if not isinstance(doc.get("program"), str):
        problems.append("missing string key: program")
    trace = doc.get("trace")
    if not isinstance(trace, dict):
        problems.append("missing `trace` object")
    else:
        for key in ("events", "procs", "end_ns", "degraded_chares"):
            if not isinstance(trace.get(key), int):
                problems.append(f"trace.{key} is not an integer")
    suites = doc.get("suites")
    if not isinstance(suites, list) or not suites:
        return problems + ["missing non-empty `suites` array"]
    for i, suite in enumerate(suites):
        where = f"suites[{i}]"
        mode = suite.get("mode")
        if mode not in ("time_bins", "phases"):
            problems.append(f"{where}.mode is not time_bins|phases")
        if mode == "time_bins" and not isinstance(
            suite.get("bin_width_ns"), int
        ):
            problems.append(f"{where} (time_bins) missing bin_width_ns")
        windows = suite.get("windows")
        if not isinstance(windows, list):
            problems.append(f"{where}.windows is not an array")
            continue
        if suite.get("num_windows") != len(windows):
            problems.append(
                f"{where}.num_windows != len(windows) "
                f"({suite.get('num_windows')} vs {len(windows)})"
            )
        degraded = suite.get("degraded_windows")
        if not isinstance(degraded, int) or not (
            0 <= degraded <= len(windows)
        ):
            problems.append(f"{where}.degraded_windows out of range")
        summary = suite.get("summary")
        if not isinstance(summary, dict):
            problems.append(f"{where} missing summary object")
        else:
            for name in EFF_METRICS:
                entry = summary.get(name)
                if not isinstance(entry, dict) or not all(
                    k in entry for k in ("min", "mean", "min_window")
                ):
                    problems.append(
                        f"{where}.summary.{name} missing min/mean/"
                        "min_window"
                    )
        for j, win in enumerate(windows):
            if not isinstance(win, dict):
                problems.append(f"{where}.windows[{j}] is not an object")
                continue
            for key in ("begin_ns", "end_ns", "events", "procs"):
                if not isinstance(win.get(key), int):
                    problems.append(
                        f"{where}.windows[{j}].{key} is not an integer"
                    )
            for name in EFF_METRICS:
                v = win.get(name)
                if not isinstance(v, (int, float)) or not (
                    0.0 <= v <= 1.0
                ):
                    problems.append(
                        f"{where}.windows[{j}].{name} not in [0, 1]"
                    )
    return problems


def check_recovery(recovery):
    """Validate a v3 sidecar's `recovery` object; return problems."""
    if not isinstance(recovery, dict):
        return ["v3 sidecar missing `recovery` object"]
    problems = []
    total = recovery.get("total")
    counters = recovery.get("counters")
    if not isinstance(total, int) or total < 0:
        problems.append("recovery.total is not a non-negative integer")
    if not isinstance(counters, dict):
        problems.append("recovery.counters is not an object")
        return problems
    csum = 0
    for name, value in counters.items():
        if not isinstance(value, int) or value < 0:
            problems.append(
                f"recovery counter {name} is not a non-negative integer"
            )
        else:
            csum += value
    if isinstance(total, int) and not problems and csum != total:
        problems.append(
            f"recovery.total = {total} but counters sum to {csum}"
        )
    return problems


SAMPLE_KEYS = (
    "t_ms",
    "rss_kb",
    "alloc_bytes",
    "alloc_count",
    "cache_hits",
    "cache_misses",
    "cache_evictions",
    "cache_hit_rate_bp",
    "progress_done",
    "progress_total",
)


def check_sampler(sampler):
    """Validate a v4 sidecar's `sampler` time series; return problems."""
    if not isinstance(sampler, dict):
        return ["v4 sidecar missing `sampler` object"]
    problems = []
    for key in ("period_ms", "capacity", "total"):
        v = sampler.get(key)
        if not isinstance(v, int) or v < 0:
            problems.append(
                f"sampler.{key} is not a non-negative integer"
            )
    samples = sampler.get("samples")
    if not isinstance(samples, list):
        return problems + ["sampler.samples is not an array"]
    total = sampler.get("total")
    if isinstance(total, int) and len(samples) > total:
        problems.append(
            f"sampler ring holds {len(samples)} samples but total "
            f"claims only {total}"
        )
    prev_t = None
    for i, s in enumerate(samples):
        if not isinstance(s, dict):
            problems.append(f"sampler.samples[{i}] is not an object")
            continue
        for key in SAMPLE_KEYS:
            if not isinstance(s.get(key), int):
                problems.append(
                    f"sampler.samples[{i}].{key} is not an integer"
                )
        t = s.get("t_ms")
        if isinstance(t, int):
            if prev_t is not None and t < prev_t:
                problems.append(
                    f"sampler.samples[{i}].t_ms = {t} goes backwards "
                    f"(previous sample at {prev_t})"
                )
            prev_t = t
    return problems


def check_flightrec(rec):
    """Validate a v4 sidecar's `flight_recorder` reference block."""
    if not isinstance(rec, dict):
        return ["v4 sidecar missing `flight_recorder` object"]
    problems = []
    if not isinstance(rec.get("armed"), bool):
        problems.append("flight_recorder.armed is not a boolean")
    if not isinstance(rec.get("path"), str):
        problems.append("flight_recorder.path is not a string")
    if rec.get("armed") is True and not rec.get("path"):
        problems.append("flight_recorder armed but path is empty")
    cap = rec.get("ring_capacity")
    if not isinstance(cap, int) or cap <= 0:
        problems.append(
            "flight_recorder.ring_capacity is not a positive integer"
        )
    dropped = rec.get("ring_dropped")
    if not isinstance(dropped, int) or dropped < 0:
        problems.append(
            "flight_recorder.ring_dropped is not a non-negative integer"
        )
    return problems


def check_fsck(doc):
    """Validate a trace_fsck container-health report (FSCK_SCHEMA)."""
    problems = []
    if not isinstance(doc.get("path"), str):
        problems.append("fsck report missing string `path`")
    verdict = doc.get("verdict")
    if verdict not in ("clean", "degraded", "unusable"):
        problems.append(f"fsck verdict {verdict!r} is not clean/degraded/unusable")
    for key in ("checksums", "footer_valid"):
        if not isinstance(doc.get(key), bool):
            problems.append(f"fsck report `{key}` is not a boolean")
    for key in ("version", "blocks_total", "blocks_bad"):
        v = doc.get(key)
        if not isinstance(v, int) or v < 0:
            problems.append(f"fsck report `{key}` is not a non-negative integer")
    columns = doc.get("columns")
    if not isinstance(columns, list):
        problems.append("fsck report `columns` is not a list")
        columns = []
    total = bad = 0
    for i, col in enumerate(columns):
        if not isinstance(col, dict):
            problems.append(f"columns[{i}] is not an object")
            continue
        counts = {}
        for key in ("id", "blocks", "ok", "checksum_absent",
                    "checksum_mismatch", "unreadable"):
            v = col.get(key)
            if not isinstance(v, int) or v < 0:
                problems.append(
                    f"columns[{i}].{key} is not a non-negative integer"
                )
                v = 0
            counts[key] = v
        census = (counts["ok"] + counts["checksum_absent"]
                  + counts["checksum_mismatch"] + counts["unreadable"])
        if census != counts["blocks"]:
            problems.append(
                f"columns[{i}] census sums to {census}, "
                f"not blocks = {counts['blocks']}"
            )
        total += counts["blocks"]
        bad += counts["checksum_mismatch"] + counts["unreadable"]
    if isinstance(doc.get("blocks_total"), int) and total != doc["blocks_total"]:
        problems.append(
            f"blocks_total = {doc['blocks_total']} but columns sum to {total}"
        )
    if isinstance(doc.get("blocks_bad"), int) and bad != doc["blocks_bad"]:
        problems.append(
            f"blocks_bad = {doc['blocks_bad']} but columns sum to {bad}"
        )
    if verdict == "clean" and bad:
        problems.append(f"verdict clean but {bad} bad block(s) in the census")
    # `recovery` is a full RecoveryReport (counts keyed by diag code,
    # plus the capped diagnostic list) -- a different shape from the
    # sidecar's {"total", "counters"} summary that check_recovery sees.
    recovery = doc.get("recovery")
    if not isinstance(recovery, dict):
        problems.append("fsck report missing `recovery` object")
        return problems
    rtotal = recovery.get("total")
    if not isinstance(rtotal, int) or rtotal < 0:
        problems.append("recovery.total is not a non-negative integer")
    if recovery.get("worst") not in ("note", "warning", "error", "fatal"):
        problems.append(
            f"recovery.worst {recovery.get('worst')!r} is not a severity"
        )
    counts = recovery.get("counts")
    if not isinstance(counts, dict):
        problems.append("recovery.counts is not an object")
    else:
        csum = sum(v for v in counts.values() if isinstance(v, int))
        for name, v in counts.items():
            if not isinstance(v, int) or v < 0:
                problems.append(
                    f"recovery count {name} is not a non-negative integer"
                )
        if isinstance(rtotal, int) and csum != rtotal:
            problems.append(
                f"recovery.total = {rtotal} but counts sum to {csum}"
            )
    if not isinstance(recovery.get("diagnostics"), list):
        problems.append("recovery.diagnostics is not a list")
    if verdict == "clean" and isinstance(rtotal, int) and rtotal > 0:
        problems.append("verdict clean but recovery diagnostics are present")
    return problems


def check_sidecar(path):
    """Validate one sidecar; return a list of problem strings."""
    problems = []
    try:
        with open(path) as f:
            doc = json.load(f)
    except (OSError, ValueError) as e:
        return [f"unreadable: {e}"]
    if not isinstance(doc, dict):
        return ["document is not a JSON object"]

    if doc.get("schema") == EFF_SCHEMA:
        return check_effmetrics(doc)
    if doc.get("schema") == CONC_SCHEMA:
        return check_concurrency(doc)
    if doc.get("schema") == FSCK_SCHEMA:
        return check_fsck(doc)

    for key, typ in (
        ("program", str),
        ("stages", dict),
        ("spans", list),
        ("metrics", dict),
    ):
        if key not in doc:
            problems.append(f"missing key: {key}")
        elif not isinstance(doc[key], typ):
            problems.append(f"key {key} is not a {typ.__name__}")

    schema = doc.get("schema")
    if schema is not None:
        if schema not in (
            "logstruct-obs-sidecar/v2",
            "logstruct-obs-sidecar/v3",
            "logstruct-obs-sidecar/v4",
        ):
            problems.append(f"unknown schema: {schema!r}")
        elif not isinstance(doc.get("peak_rss_kb"), int):
            problems.append("v2+ sidecar missing integer peak_rss_kb")
        if schema in (
            "logstruct-obs-sidecar/v3",
            "logstruct-obs-sidecar/v4",
        ):
            problems.extend(check_recovery(doc.get("recovery")))
        if schema == "logstruct-obs-sidecar/v4":
            problems.extend(check_sampler(doc.get("sampler")))
            problems.extend(check_flightrec(doc.get("flight_recorder")))

    for name, entry in (doc.get("stages") or {}).items():
        if not isinstance(entry, dict) or "total_ns" not in entry:
            problems.append(f"stage {name} has no total_ns")

    dropped = doc.get("dropped_spans", 0)
    if not isinstance(dropped, int):
        problems.append("dropped_spans is not an integer")
    elif dropped > 0:
        problems.append(
            f"dropped_spans = {dropped} (tracer span buffer overflowed; "
            "stage totals undercount)"
        )
    return problems


def check_all(paths):
    bad = 0
    for path in paths:
        problems = check_sidecar(path)
        if problems:
            bad += 1
            print(f"{path}: FAIL")
            for p in problems:
                print(f"  - {p}")
        else:
            print(f"{path}: ok")
    return 1 if bad else 0


def splice(path, table, begin_marker=BEGIN, end_marker=END):
    with open(path) as f:
        text = f.read()
    begin = text.find(begin_marker)
    end = text.find(end_marker)
    if begin < 0 or end < 0 or end < begin:
        sys.exit(
            f"error: {path} has no {begin_marker} ... {end_marker} "
            "block to update"
        )
    new = (
        text[: begin + len(begin_marker)] + "\n" + table + "\n" + text[end:]
    )
    with open(path, "w") as f:
        f.write(new)
    print(f"updated {path}")


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("sidecars", nargs="+", help="--obs-json output files")
    ap.add_argument(
        "--update",
        metavar="MD",
        help="splice the table into this markdown file between the "
        "obs-trajectory markers instead of printing it",
    )
    ap.add_argument(
        "--check",
        action="store_true",
        help="validate document schemas (sidecar v1-v4, effmetrics, "
        "concurrency, fsck reports) and fail on dropped spans instead "
        "of rendering a table",
    )
    args = ap.parse_args()

    if args.check:
        sys.exit(check_all(args.sidecars))

    eff_paths = [p for p in args.sidecars if read_schema(p) == EFF_SCHEMA]
    conc_paths = [
        p for p in args.sidecars if read_schema(p) == CONC_SCHEMA
    ]
    obs_paths = [
        p
        for p in args.sidecars
        if p not in eff_paths and p not in conc_paths
    ]

    if obs_paths:
        table = render_table([load_sidecar(p) for p in obs_paths])
        if args.update:
            splice(args.update, table)
        else:
            print(table)
    if eff_paths:
        eff_table = render_eff_table(eff_paths)
        if args.update:
            splice(args.update, eff_table, EFF_BEGIN, EFF_END)
        else:
            print(eff_table)
    if conc_paths:
        conc_table = render_conc_table(conc_paths)
        if args.update:
            splice(args.update, conc_table, CONC_BEGIN, CONC_END)
        else:
            print(conc_table)


if __name__ == "__main__":
    main()
