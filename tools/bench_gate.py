#!/usr/bin/env python3
"""Perf/memory regression gate over BENCH_pipeline.json trajectories.

Diffs two pipeline-trajectory runs (schema logstruct-bench-pipeline/v1
through /v6, see docs/OBSERVABILITY.md) pass-by-pass and fails when a
pass got substantially slower or hungrier:

    tools/bench_gate.py                       # last two runs in BENCH_pipeline.json
    tools/bench_gate.py FILE                  # last two runs in FILE
    tools/bench_gate.py BASE FRESH            # last run of BASE vs last run of FRESH
    tools/bench_gate.py --self-test           # verify the gate catches a 2x regression
                                              # and diagnoses missing/empty baselines

Comparison rules:
  * Only (workload, pass) pairs present in BOTH runs with `ran: true`
    are compared; each workload's `total_seconds` is compared as a
    pseudo-pass named `(total)`. Passes that exist on only one side are
    listed as informational rows, never failures (pipelines evolve).
  * Comparison is like-for-like per thread count: a workload's
    `threads` field (v3; absent means 1) is part of its identity, so a
    `threads=8` run is never judged against a `threads=1` baseline —
    and hardware-sized runs from machines with different core counts
    simply show up as informational rows.
  * Wall time is compared only when the base pass took at least
    --min-seconds (default 1 ms): short passes are timer noise.
  * alloc_bytes (v2 runs only) is compared when both sides carry it and
    the base allocated at least --min-alloc-bytes (default 1 MiB).
    Allocation counts are deterministic, so the floor is about
    relevance, not noise.
  * A workload's `peak_rss_kb` (v4 runs; the harness-measured resident
    growth of that workload) is compared as a pseudo-pass named
    `(peak_rss)` under the alloc thresholds — the out-of-core storage
    workloads rely on this to keep the blocked backend's footprint from
    regressing toward the mem backend's.
  * A pass FAILs above --fail-wall (default +25%) or --fail-alloc
    (default +30%), WARNs above --warn (default +10%). Improvements
    never fail.

Override knob: `--warn-only`, or the environment variable
BENCH_GATE_ALLOW_REGRESSION=1, demotes failures to warnings (exit 0)
while still printing the full table -- for landing a PR that knowingly
trades speed for something else. Record the justification in the run's
`label` field when you use it.

Stdlib only; no third-party dependencies.
"""

import argparse
import json
import os
import sys
import tempfile


class TrajectoryError(Exception):
    """A trajectory file is missing, unreadable, or has no runs."""


def load_runs(path):
    """Load a trajectory file's `runs`; raise TrajectoryError with a
    actionable message (never a traceback) when the baseline is missing,
    malformed, or empty."""
    try:
        with open(path) as f:
            doc = json.load(f)
    except FileNotFoundError:
        raise TrajectoryError(
            f"{path} does not exist — record a baseline first with "
            "./build/bench/micro_pipeline --benchmark_filter=NOTHING "
            "(see docs/OBSERVABILITY.md)"
        )
    except OSError as e:
        raise TrajectoryError(f"cannot read {path}: {e.strerror or e}")
    except ValueError as e:
        raise TrajectoryError(f"{path} is not valid JSON: {e}")
    if not isinstance(doc, dict) or not isinstance(doc.get("runs"), list):
        raise TrajectoryError(
            f"{path} is not a pipeline trajectory (no `runs` array); "
            "expected schema logstruct-bench-pipeline/v1..v6"
        )
    if not doc["runs"]:
        raise TrajectoryError(
            f"{path} has an empty `runs` array — the baseline was never "
            "recorded; rerun ./build/bench/micro_pipeline"
        )
    return doc["runs"]


def collect(run):
    """Flatten one run into {(workload, pass): (seconds, alloc_bytes|None)}.

    The workload key embeds its thread count (v3 schema; missing means
    1, matching v1/v2 serial-only runs), so only like-for-like thread
    counts are ever compared.
    """
    rows = {}
    for w in run.get("workloads", []):
        name = w.get("name", "?")
        threads = int(w.get("threads", 1))
        if threads != 1:
            name = f"{name} [threads={threads}]"
        total = w.get("total_seconds")
        if total is not None:
            rows[(name, "(total)")] = (float(total), None)
        rss = w.get("peak_rss_kb")
        if rss is not None and int(rss) > 0:
            # Gated through the alloc channel (deterministic-ish bytes);
            # seconds=0 keeps it below the wall floor.
            rows[(name, "(peak_rss)")] = (0.0, int(rss) * 1024)
        for p in w.get("passes", []):
            if not p.get("ran", False):
                continue
            alloc = p.get("alloc_bytes")
            rows[(name, p.get("pass", "?"))] = (
                float(p.get("seconds", 0.0)),
                int(alloc) if alloc is not None else None,
            )
    return rows


def fmt_delta(ratio):
    if ratio is None:
        return "—"
    return f"{ratio * 100.0:+.1f}%"


def fmt_seconds(s):
    return f"{s * 1e3:.3f}"


def compare(base_rows, fresh_rows, opts):
    """Return (table_rows, n_fail, n_warn). table_rows are markdown cells."""
    rows = []
    n_fail = n_warn = 0
    for key in sorted(set(base_rows) | set(fresh_rows)):
        workload, pname = key
        if key not in base_rows or key not in fresh_rows:
            if key in fresh_rows:
                cells = ["—", fmt_seconds(fresh_rows[key][0]), "fresh only"]
            else:
                cells = [fmt_seconds(base_rows[key][0]), "—", "base only"]
            rows.append(
                [workload, pname, cells[0], cells[1], "—", "—", cells[2]]
            )
            continue
        base_s, base_a = base_rows[key]
        fresh_s, fresh_a = fresh_rows[key]

        wall = None
        if base_s >= opts.min_seconds and base_s > 0:
            wall = fresh_s / base_s - 1.0
        alloc = None
        if (
            base_a is not None
            and fresh_a is not None
            and base_a >= opts.min_alloc_bytes
        ):
            alloc = fresh_a / base_a - 1.0

        status = "ok"
        if (wall is not None and wall > opts.fail_wall) or (
            alloc is not None and alloc > opts.fail_alloc
        ):
            status = "FAIL"
            n_fail += 1
        elif (wall is not None and wall > opts.warn) or (
            alloc is not None and alloc > opts.warn
        ):
            status = "warn"
            n_warn += 1
        elif wall is None and alloc is None:
            status = "below floor"
        rows.append(
            [
                workload,
                pname,
                fmt_seconds(base_s),
                fmt_seconds(fresh_s),
                fmt_delta(wall),
                fmt_delta(alloc),
                status,
            ]
        )
    return rows, n_fail, n_warn


def render(rows):
    header = [
        "workload",
        "pass",
        "base (ms)",
        "fresh (ms)",
        "wall Δ",
        "alloc Δ",
        "status",
    ]
    lines = [
        "| " + " | ".join(header) + " |",
        "|" + "---|" * len(header),
    ]
    for r in rows:
        lines.append("| " + " | ".join(str(c) for c in r) + " |")
    return "\n".join(lines)


def run_label(run):
    label = run.get("label", "")
    return f"{run.get('program', '?')}" + (f" — {label}" if label else "")


def gate(base_run, fresh_run, opts):
    """Compare two runs; print the table; return the exit code."""
    rows, n_fail, n_warn = compare(collect(base_run), collect(fresh_run), opts)
    print(f"base:  {run_label(base_run)}")
    print(f"fresh: {run_label(fresh_run)}")
    print()
    print(render(rows))
    print()
    allow = opts.warn_only or os.environ.get(
        "BENCH_GATE_ALLOW_REGRESSION", ""
    ) not in ("", "0")
    if n_fail and allow:
        print(
            f"bench gate: {n_fail} failure(s), {n_warn} warning(s) — "
            "DEMOTED to warnings (--warn-only / "
            "BENCH_GATE_ALLOW_REGRESSION set)"
        )
        return 0
    if n_fail:
        print(
            f"bench gate: FAILED — {n_fail} regression(s) over "
            f"+{opts.fail_wall * 100:.0f}% wall / "
            f"+{opts.fail_alloc * 100:.0f}% alloc "
            f"({n_warn} warning(s)). Rerun to rule out noise; if the "
            "regression is intended, set BENCH_GATE_ALLOW_REGRESSION=1 "
            "and justify it in the run label."
        )
        return 1
    print(f"bench gate: ok ({n_warn} warning(s))")
    return 0


def synthetic_run(scale_wall=1.0, scale_alloc=1.0, scale_eff=1.0,
                  scale_rss=1.0, scale_live=1.0, scale_causality=1.0,
                  scale_checksum=1.0, extra_threads=None):
    run = {
        "program": "self-test",
        "workloads": [
            {
                "name": "synthetic/w1",
                "events": 1000,
                "phases": 4,
                "total_seconds": 0.010 * scale_wall,
                "peak_rss_kb": int(50000 * scale_rss),
                "passes": [
                    {
                        "pass": "initial",
                        "seconds": 0.004 * scale_wall,
                        "alloc_bytes": int(8 << 20),
                        "ran": True,
                    },
                    {
                        "pass": "stepping",
                        "seconds": 0.006,
                        "alloc_bytes": int((4 << 20) * scale_alloc),
                        "ran": True,
                    },
                    # Harness-timed pseudo-pass appended after the pass
                    # manager (metrics/efficiency_suite in the real
                    # trajectory): the gate must treat it exactly like a
                    # manager pass.
                    {
                        "pass": "metrics/efficiency_suite",
                        "seconds": 0.002 * scale_eff,
                        "alloc_bytes": int(2 << 20),
                        "ran": True,
                    },
                    # v5 live-telemetry pseudo-pass: the wall cost of
                    # running the extraction with the sampler and HTTP
                    # exporter live (BM_ExtractStructure/live_obs minus
                    # the dark baseline). Must be gated like any pass so
                    # telemetry overhead can never creep in silently.
                    {
                        "pass": "obs/live_overhead",
                        "seconds": 0.002 * scale_live,
                        "ran": True,
                    },
                    # v6 causality-checker pseudo-pass: vector-clock
                    # oracle build + the happened-before check over the
                    # recovered structure. The checker is opt-in in
                    # production, so this row is where a slowdown in
                    # the oracle's topological sweep or fallback walk
                    # gets caught.
                    {
                        "pass": "order/check_causality",
                        "seconds": 0.002 * scale_causality,
                        "alloc_bytes": int(1 << 20),
                        "ran": True,
                    },
                    # Storage-checksum pseudo-pass: CRC32C kernel
                    # throughput over a fixed buffer (every v2 .lsblk
                    # block write and verified read pays it). A broken
                    # hardware dispatch shows up as a 2x+ wall slip on
                    # exactly this row.
                    {
                        "pass": "trace/storage/checksum",
                        "seconds": 0.002 * scale_checksum,
                        "ran": True,
                    },
                    {"pass": "tiny", "seconds": 1e-05, "ran": True},
                ],
            }
        ],
    }
    if extra_threads is not None:
        # Same workload name, different thread count, deliberately 3x
        # slower than the serial baseline: the gate must treat it as a
        # separate (informational) row, never a regression.
        run["workloads"].append(
            {
                "name": "synthetic/w1",
                "events": 1000,
                "phases": 4,
                "threads": extra_threads,
                "total_seconds": 0.030,
                "passes": [
                    {
                        "pass": "initial",
                        "seconds": 0.012,
                        "alloc_bytes": int(8 << 20),
                        "threads": extra_threads,
                        "ran": True,
                    }
                ],
            }
        )
    return run


def self_test(opts):
    # Identical runs must pass.
    code = gate(synthetic_run(), synthetic_run(), opts)
    if code != 0:
        print("self-test: FAILED — identical runs did not pass")
        return 1
    print()
    # A 2x wall regression on a >=1ms pass must fail.
    saved = os.environ.pop("BENCH_GATE_ALLOW_REGRESSION", None)
    try:
        code = gate(synthetic_run(), synthetic_run(scale_wall=2.0), opts)
        if code == 0:
            print("self-test: FAILED — 2x wall regression not caught")
            return 1
        print()
        # A 2x allocation regression must fail too.
        code = gate(synthetic_run(), synthetic_run(scale_alloc=2.0), opts)
        if code == 0:
            print("self-test: FAILED — 2x alloc regression not caught")
            return 1
        print()
        # A 2x wall regression confined to the harness-timed
        # metrics/efficiency_suite pseudo-pass must fail on its own.
        code = gate(synthetic_run(), synthetic_run(scale_eff=2.0), opts)
        if code == 0:
            print(
                "self-test: FAILED — 2x efficiency-suite regression "
                "not caught"
            )
            return 1
        print()
        # A 2x regression of the obs/live_overhead pseudo-pass (the
        # sampler + exporter tax on extraction) must fail on its own.
        code = gate(synthetic_run(), synthetic_run(scale_live=2.0), opts)
        if code == 0:
            print(
                "self-test: FAILED — 2x live-telemetry overhead "
                "regression not caught"
            )
            return 1
        print()
        # A 2x wall regression confined to the order/check_causality
        # pseudo-pass (vector-clock oracle build + HB check) must fail
        # on its own.
        code = gate(synthetic_run(), synthetic_run(scale_causality=2.0),
                    opts)
        if code == 0:
            print(
                "self-test: FAILED — 2x causality-checker regression "
                "not caught"
            )
            return 1
        print()
        # A 2x wall regression confined to the trace/storage/checksum
        # pseudo-pass (the CRC32C kernel behind every v2 block write and
        # verified read) must fail on its own.
        code = gate(synthetic_run(), synthetic_run(scale_checksum=2.0),
                    opts)
        if code == 0:
            print(
                "self-test: FAILED — 2x storage-checksum regression "
                "not caught"
            )
            return 1
        print()
        # A 2x per-workload peak-RSS regression (the out-of-core storage
        # gate) must fail on its own.
        code = gate(synthetic_run(), synthetic_run(scale_rss=2.0), opts)
        if code == 0:
            print("self-test: FAILED — 2x peak-RSS regression not caught")
            return 1
        print()
        # A threads=8 rerun of the same workload, 3x slower than the
        # serial baseline, must NOT fail: thread counts are compared
        # like-for-like, never cross-count.
        code = gate(synthetic_run(), synthetic_run(extra_threads=8), opts)
        if code != 0:
            print(
                "self-test: FAILED — threads=8 row was compared against "
                "the threads=1 baseline"
            )
            return 1
    finally:
        if saved is not None:
            os.environ["BENCH_GATE_ALLOW_REGRESSION"] = saved
    print()
    # A missing or empty baseline must raise a structured, actionable
    # error, never a traceback or a silent pass.
    with tempfile.TemporaryDirectory() as d:
        missing = os.path.join(d, "no-such-baseline.json")
        try:
            load_runs(missing)
            print("self-test: FAILED — missing baseline not diagnosed")
            return 1
        except TrajectoryError as e:
            if missing not in str(e):
                print("self-test: FAILED — missing-baseline error does "
                      "not name the file")
                return 1
        for label, content in (
            ("empty", {"runs": []}),
            ("shapeless", {"schema": "bogus"}),
        ):
            path = os.path.join(d, f"{label}.json")
            with open(path, "w") as f:
                json.dump(content, f)
            try:
                load_runs(path)
                print(f"self-test: FAILED — {label} baseline not diagnosed")
                return 1
            except TrajectoryError:
                pass
        garbled = os.path.join(d, "garbled.json")
        with open(garbled, "w") as f:
            f.write("{ not json")
        try:
            load_runs(garbled)
            print("self-test: FAILED — garbled baseline not diagnosed")
            return 1
        except TrajectoryError:
            pass
    print(
        "self-test: ok (identical passes, 2x wall fails, 2x alloc fails, "
        "2x efficiency-suite pseudo-pass fails, 2x live-overhead "
        "pseudo-pass fails, 2x causality-checker pseudo-pass fails, "
        "2x storage-checksum pseudo-pass fails, 2x peak-RSS fails, "
        "cross-thread-count rows never compared, "
        "missing/empty/garbled baselines diagnosed)"
    )
    return 0


def main():
    ap = argparse.ArgumentParser(
        description=__doc__.splitlines()[0],
        formatter_class=argparse.RawDescriptionHelpFormatter,
        epilog=__doc__,
    )
    ap.add_argument(
        "files",
        nargs="*",
        help="trajectory file (last two runs) or BASE FRESH pair "
        "(default: BENCH_pipeline.json)",
    )
    ap.add_argument("--fail-wall", type=float, default=0.25,
                    help="fail above this wall-time increase (default 0.25)")
    ap.add_argument("--fail-alloc", type=float, default=0.30,
                    help="fail above this alloc_bytes increase (default 0.30)")
    ap.add_argument("--warn", type=float, default=0.10,
                    help="warn above this increase (default 0.10)")
    ap.add_argument("--min-seconds", type=float, default=0.001,
                    help="ignore wall deltas on passes under this base "
                    "duration (default 0.001)")
    ap.add_argument("--min-alloc-bytes", type=int, default=1 << 20,
                    help="ignore alloc deltas under this base size "
                    "(default 1 MiB)")
    ap.add_argument("--warn-only", action="store_true",
                    help="report failures but exit 0 "
                    "(same as BENCH_GATE_ALLOW_REGRESSION=1)")
    ap.add_argument("--self-test", action="store_true",
                    help="verify the gate catches a synthetic 2x regression")
    opts = ap.parse_args()

    if opts.self_test:
        sys.exit(self_test(opts))

    if len(opts.files) == 0:
        opts.files = ["BENCH_pipeline.json"]
    try:
        if len(opts.files) == 1:
            runs = load_runs(opts.files[0])
            if len(runs) < 2:
                print(
                    f"bench gate: {opts.files[0]} has only {len(runs)} "
                    "run(s); nothing to compare"
                )
                sys.exit(0)
            base_run, fresh_run = runs[-2], runs[-1]
        elif len(opts.files) == 2:
            base_run = load_runs(opts.files[0])[-1]
            fresh_run = load_runs(opts.files[1])[-1]
        else:
            ap.error("expected at most two trajectory files")
    except TrajectoryError as e:
        sys.exit(f"bench gate: error: {e}")

    sys.exit(gate(base_run, fresh_run, opts))


if __name__ == "__main__":
    main()
