/// \file trace_corrupt.cpp
/// Deterministic fault-injection harness: generate a golden trace from a
/// built-in proxy app, corrupt its serialized form with one (or every)
/// fault class, re-ingest it in recovering mode, and drive the salvage
/// through the full structure pipeline. This is the CLI face of the
/// property tests in tests/order/fault_injection_test.cpp — CI runs the
/// matrix over golden workloads and uploads the recovery reports as
/// artifacts (see .github/workflows/ci.yml and docs/ROBUSTNESS.md).
///
///   ./trace_corrupt --app=jacobi --fault=drop_lines --fault-seed=7
///   ./trace_corrupt --app=lulesh --fault=all --seeds=3 --out-report=r.json
///
/// Exit status: 0 when every corrupted run salvages without a fatal
/// report and the recovery report is non-empty whenever the corruptor
/// actually changed the text; 1 on any accounting violation.

#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "apps/jacobi2d.hpp"
#include "apps/lassen.hpp"
#include "apps/lulesh.hpp"
#include "apps/pdes.hpp"
#include "order/stepping.hpp"
#include "trace/corruptor.hpp"
#include "trace/diagnostics.hpp"
#include "trace/io.hpp"
#include "trace/storage/blocked_trace.hpp"
#include "trace/storage/options.hpp"
#include "trace/validate.hpp"
#include "util/flags.hpp"
#include "util/obs_flags.hpp"

namespace {

logstruct::trace::Trace generate(const std::string& app,
                                 std::uint64_t seed) {
  using namespace logstruct::apps;
  if (app == "jacobi") {
    Jacobi2DConfig cfg;
    cfg.seed = seed;
    return run_jacobi2d(cfg);
  }
  if (app == "lulesh") {
    LuleshConfig cfg;
    cfg.seed = seed;
    return run_lulesh_charm(cfg);
  }
  if (app == "lassen") {
    LassenConfig cfg;
    cfg.seed = seed;
    return run_lassen_charm(cfg);
  }
  if (app == "pdes") {
    PdesConfig cfg;
    cfg.seed = seed;
    return run_pdes(cfg);
  }
  std::fprintf(stderr,
               "unknown app '%s' (jacobi, lulesh, lassen, pdes)\n",
               app.c_str());
  std::exit(1);
}

struct RunResult {
  std::string fault;
  std::uint64_t seed = 0;
  logstruct::trace::CorruptionSummary corruption;
  logstruct::trace::RecoveryReport report;
  std::int64_t salvaged_events = 0;
  std::int32_t phases = 0;
  std::int32_t degraded_phases = 0;
  bool accounted = true;
};

/// One corrupt → recover → analyze round trip.
RunResult run_one(const std::string& clean_text,
                  logstruct::trace::FaultKind kind, std::uint64_t seed,
                  double intensity) {
  using namespace logstruct;
  RunResult r;
  r.fault = trace::fault_kind_name(kind);
  r.seed = seed;

  trace::TraceCorruptor corruptor(seed, intensity);
  std::string damaged = corruptor.corrupt(clean_text, kind, &r.corruption);

  std::istringstream in(damaged);
  trace::Trace t =
      trace::read_trace(in, trace::ReadOptions::recovering(), r.report);
  r.salvaged_events = t.num_events();

  // Accounting: whenever the corruptor changed bytes, the recovering
  // reader must have noticed *something* (the property tests pin this
  // down per fault class; the harness keeps the cheap universal check).
  if (damaged != clean_text && r.report.empty()) r.accounted = false;

  // Graceful degradation: the salvage must survive the full pipeline.
  if (!r.report.fatal() && t.num_events() > 0) {
    order::LogicalStructure ls =
        order::extract_structure(t, order::Options::charm());
    r.phases = ls.num_phases();
    r.degraded_phases = ls.phases.degraded_phases;
  }
  return r;
}

/// One binary round trip: corrupt a `.lsblk` image, recovering-open it,
/// and check the tentpole contract — every mutation is either noticed in
/// the report or provably harmless (identical structure hash).
RunResult run_one_lsblk(const std::string& clean_image,
                        std::uint64_t clean_hash,
                        logstruct::trace::FaultKind kind,
                        std::uint64_t seed, double intensity,
                        const std::string& scratch_dir) {
  using namespace logstruct;
  RunResult r;
  r.fault = trace::fault_kind_name(kind);
  r.seed = seed;

  trace::TraceCorruptor corruptor(seed, intensity);
  const std::string damaged =
      corruptor.corrupt(clean_image, kind, &r.corruption);
  const std::string path = scratch_dir + "/corrupt-" + r.fault + "-" +
                           std::to_string(seed) + ".lsblk";
  {
    std::ofstream f(path, std::ios::binary | std::ios::trunc);
    f.write(damaged.data(),
            static_cast<std::streamsize>(damaged.size()));
  }

  trace::Trace t = trace::storage::open_blocked_trace(
      path, trace::storage::StorageOptions::recovering(), r.report);
  ::unlink(path.c_str());
  r.salvaged_events = t.num_events();

  if (damaged != clean_image) {
    const bool noticed = !r.report.empty();
    const bool identical =
        !r.report.fatal() && t.num_events() > 0 &&
        trace::storage::trace_structure_hash(t) == clean_hash;
    // Wrong answers are the one forbidden outcome: a changed structure
    // hash with a clean report means corruption slipped through unseen.
    if (!noticed && !identical) r.accounted = false;
    if (!r.report.fatal() && t.num_events() > 0 && !identical &&
        r.report.ok())
      r.accounted = false;
  }

  if (!r.report.fatal() && t.num_events() > 0) {
    order::LogicalStructure ls =
        order::extract_structure(t, order::Options::charm());
    r.phases = ls.num_phases();
    r.degraded_phases = ls.phases.degraded_phases;
  }
  return r;
}

void append_json(std::ostringstream& os, const RunResult& r, bool first) {
  if (!first) os << ",\n";
  os << "    {\"fault\": \"" << r.fault << "\", \"seed\": " << r.seed
     << ", \"mutations\": " << r.corruption.total()
     << ", \"salvaged_events\": " << r.salvaged_events
     << ", \"phases\": " << r.phases
     << ", \"degraded_phases\": " << r.degraded_phases
     << ", \"accounted\": " << (r.accounted ? "true" : "false")
     << ",\n     \"report\": " << r.report.to_json() << "}";
}

}  // namespace

int main(int argc, char** argv) {
  using namespace logstruct;

  util::Flags flags;
  flags.define_string("app", "jacobi",
                      "built-in app to trace (jacobi, lulesh, lassen, "
                      "pdes)");
  flags.define_int("seed", 1, "simulation seed");
  flags.define_string("fault", "all",
                      "fault class: drop_lines, truncate_tail, "
                      "duplicate_lines, perturb_timestamps, flip_bytes, "
                      "lsblk_flip_block, lsblk_truncate_dir, "
                      "lsblk_zero_footer, 'text', 'lsblk', or 'all'");
  flags.define_int("fault-seed", 1, "first corruption seed");
  flags.define_int("seeds", 1, "corruption seeds per fault class");
  flags.define_int("intensity-pct", 5,
                   "corruption intensity, percent of the body affected");
  flags.define_string("out-report", "",
                      "write all recovery reports (JSON) here");
  util::define_obs_flags(flags);
  if (!flags.parse(argc, argv)) return 1;
  util::apply_obs_flags(flags);

  const std::string app = flags.get_string("app");
  trace::Trace golden =
      generate(app, static_cast<std::uint64_t>(flags.get_int("seed")));
  if (!trace::validate_cli(flags, golden, app)) return 2;
  std::ostringstream serialized;
  trace::write_trace(golden, serialized);
  const std::string clean_text = serialized.str();
  std::printf("golden %s: %d events, %zu bytes serialized\n", app.c_str(),
              golden.num_events(), clean_text.size());

  std::vector<trace::FaultKind> kinds;
  const std::string fault = flags.get_string("fault");
  if (fault == "all") {
    for (int k = 0; k < trace::kNumFaultKinds; ++k)
      kinds.push_back(static_cast<trace::FaultKind>(k));
  } else if (fault == "text") {
    for (int k = 0; k < trace::kNumTextFaultKinds; ++k)
      kinds.push_back(static_cast<trace::FaultKind>(k));
  } else if (fault == "lsblk") {
    for (int k = trace::kNumTextFaultKinds; k < trace::kNumFaultKinds; ++k)
      kinds.push_back(static_cast<trace::FaultKind>(k));
  } else {
    trace::FaultKind kind;
    if (!trace::parse_fault_kind(fault, &kind)) {
      std::fprintf(stderr, "unknown fault '%s'\n", fault.c_str());
      return 1;
    }
    kinds.push_back(kind);
  }

  const auto first_seed =
      static_cast<std::uint64_t>(flags.get_int("fault-seed"));
  const auto num_seeds = static_cast<std::uint64_t>(flags.get_int("seeds"));
  const double intensity =
      static_cast<double>(flags.get_int("intensity-pct")) / 100.0;

  // The binary matrix needs a clean container image on disk once.
  std::string clean_image;
  std::uint64_t clean_hash = 0;
  const std::string scratch_dir = trace::storage::resolve_spill_dir(
      trace::storage::default_options());
  const bool any_lsblk =
      std::any_of(kinds.begin(), kinds.end(), trace::is_lsblk_fault);
  if (any_lsblk) {
    const std::string path =
        scratch_dir + "/corrupt-golden-" + std::to_string(::getpid()) +
        ".lsblk";
    trace::storage::write_blocked_file(golden, path, 4096);
    std::ifstream f(path, std::ios::binary);
    std::ostringstream buf;
    buf << f.rdbuf();
    clean_image = buf.str();
    ::unlink(path.c_str());
    clean_hash = trace::storage::trace_structure_hash(golden);
  }

  std::ostringstream json;
  json << "{\n  \"schema\": \"logstruct-fuzz-report/v1\",\n  \"app\": \""
       << app << "\",\n  \"runs\": [\n";
  bool first = true;
  int failures = 0;
  for (trace::FaultKind kind : kinds) {
    for (std::uint64_t s = 0; s < num_seeds; ++s) {
      RunResult r =
          trace::is_lsblk_fault(kind)
              ? run_one_lsblk(clean_image, clean_hash, kind,
                              first_seed + s, intensity, scratch_dir)
              : run_one(clean_text, kind, first_seed + s, intensity);
      r.report.export_counters();
      std::printf(
          "%-18s seed=%llu  mutations=%lld  diags=%lld  salvaged=%lld "
          "events  phases=%d (%d degraded)%s\n",
          r.fault.c_str(), static_cast<unsigned long long>(r.seed),
          static_cast<long long>(r.corruption.total()),
          static_cast<long long>(r.report.total()),
          static_cast<long long>(r.salvaged_events), r.phases,
          r.degraded_phases, r.accounted ? "" : "  UNACCOUNTED");
      if (!r.accounted) ++failures;
      append_json(json, r, first);
      first = false;
    }
  }
  json << "\n  ]\n}\n";

  const std::string out = flags.get_string("out-report");
  if (!out.empty()) {
    std::ofstream f(out);
    if (f) f << json.str();
    if (!f) {
      std::fprintf(stderr, "failed to write %s\n", out.c_str());
      return 3;
    }
    std::printf("wrote %s\n", out.c_str());
  }
  util::finish_obs(flags, argv[0]);
  if (failures) {
    std::fprintf(stderr,
                 "%d run(s) mutated the input without any diagnostic\n",
                 failures);
    return 1;
  }
  return 0;
}
