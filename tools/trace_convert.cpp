/// \file trace_convert.cpp
/// Convert traces into the out-of-core .lsblk blocked container (see
/// docs/FORMATS.md and docs/STORAGE.md) and verify the round trip: the
/// converted file is reopened through the blocked backend and its
/// structure hash compared against the source trace. A hash mismatch is
/// a hard failure — the converted file would not reproduce the same
/// logical structure.
///
///   ./trace_convert --in=run.lstrace --out=run.lsblk
///   ./trace_convert --projections=sim/jacobi --out=jacobi.lsblk
///   ./trace_convert --app=lulesh --out=lulesh.lsblk --block-kb=64
///
/// Exit status: 0 when the conversion round-trips bit-identically
/// (equal structure hashes), 1 on any I/O or verification failure.

#include <cstdio>
#include <fstream>
#include <string>

#include "apps/jacobi2d.hpp"
#include "apps/lassen.hpp"
#include "apps/lulesh.hpp"
#include "apps/pdes.hpp"
#include "trace/io.hpp"
#include "trace/projections.hpp"
#include "trace/storage/blocked_trace.hpp"
#include "trace/validate.hpp"
#include "util/flags.hpp"
#include "util/obs_flags.hpp"

namespace {

logstruct::trace::Trace generate(const std::string& app,
                                 std::uint64_t seed) {
  using namespace logstruct::apps;
  if (app == "jacobi") {
    Jacobi2DConfig cfg;
    cfg.seed = seed;
    return run_jacobi2d(cfg);
  }
  if (app == "lulesh") {
    LuleshConfig cfg;
    cfg.seed = seed;
    return run_lulesh_charm(cfg);
  }
  if (app == "lassen") {
    LassenConfig cfg;
    cfg.seed = seed;
    return run_lassen_charm(cfg);
  }
  if (app == "pdes") {
    PdesConfig cfg;
    cfg.seed = seed;
    return run_pdes(cfg);
  }
  std::fprintf(stderr,
               "trace_convert: unknown --app '%s' "
               "(jacobi|lulesh|lassen|pdes)\n",
               app.c_str());
  std::exit(1);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace logstruct;
  util::Flags flags;
  flags.define_string("in", "", ".lstrace input file to convert");
  flags.define_string("projections", "",
                      "Projections log-set prefix to convert "
                      "(reads <prefix>.sts and <prefix>.*.log)");
  flags.define_string("app", "",
                      "generate the input from a built-in proxy app "
                      "instead of a file: jacobi|lulesh|lassen|pdes");
  flags.define_int("seed", 1, "rng seed for --app generation");
  flags.define_string("out", "", ".lsblk output path (required)");
  flags.define_int("block-kb", 256, "block size in KiB for the output");
  util::define_obs_flags(flags);
  if (!flags.parse(argc, argv)) return 1;
  util::apply_obs_flags(flags);

  const std::string& out = flags.get_string("out");
  if (out.empty()) {
    std::fprintf(stderr, "trace_convert: --out is required\n%s",
                 flags.usage(argv[0]).c_str());
    return 1;
  }
  const int sources = (!flags.get_string("in").empty() ? 1 : 0) +
                      (!flags.get_string("projections").empty() ? 1 : 0) +
                      (!flags.get_string("app").empty() ? 1 : 0);
  if (sources != 1) {
    std::fprintf(stderr,
                 "trace_convert: exactly one of --in, --projections, "
                 "--app must be given\n");
    return 1;
  }

  trace::Trace input;
  if (!flags.get_string("in").empty()) {
    const std::string& path = flags.get_string("in");
    std::ifstream in(path, std::ios::binary);
    if (!in) {
      std::fprintf(stderr, "trace_convert: cannot open %s\n",
                   path.c_str());
      return 1;
    }
    input = trace::read_trace(in);
  } else if (!flags.get_string("projections").empty()) {
    input = trace::read_projections(flags.get_string("projections"));
  } else {
    input = generate(flags.get_string("app"),
                     static_cast<std::uint64_t>(flags.get_int("seed")));
  }
  if (!trace::validate_cli(flags, input, "input")) return 1;

  const std::int64_t block_kb = flags.get_int("block-kb");
  if (block_kb <= 0) {
    std::fprintf(stderr, "trace_convert: --block-kb must be positive\n");
    return 1;
  }
  const std::uint64_t src_hash = trace::storage::trace_structure_hash(input);
  trace::storage::write_blocked_file(
      input, out, static_cast<std::uint32_t>(block_kb) * 1024u);

  // Round-trip verification: reopen through the blocked backend and
  // compare structure hashes. The hash walks every column, grouping, and
  // metadata table, so equality means the file reproduces the trace.
  const trace::Trace back = trace::storage::open_blocked_trace(out);
  const std::uint64_t dst_hash = trace::storage::trace_structure_hash(back);
  if (dst_hash != src_hash) {
    std::fprintf(stderr,
                 "trace_convert: round-trip hash mismatch "
                 "(%016llx -> %016llx); %s is not a faithful copy\n",
                 static_cast<unsigned long long>(src_hash),
                 static_cast<unsigned long long>(dst_hash), out.c_str());
    return 1;
  }
  std::printf(
      "trace_convert: wrote %s (%d events, %d blocks, hash %016llx, "
      "round-trip ok)\n",
      out.c_str(), input.num_events(), input.num_blocks(),
      static_cast<unsigned long long>(src_hash));
  util::finish_obs(flags, argv[0]);
  return 0;
}
