#include "util/flags.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace logstruct::util {
namespace {

// Helper to build argv from strings.
class Argv {
 public:
  explicit Argv(std::vector<std::string> args) : storage_(std::move(args)) {
    for (auto& s : storage_) ptrs_.push_back(s.data());
  }
  int argc() const { return static_cast<int>(ptrs_.size()); }
  char** argv() { return ptrs_.data(); }

 private:
  std::vector<std::string> storage_;
  std::vector<char*> ptrs_;
};

TEST(Flags, Defaults) {
  Flags f;
  f.define_int("n", 8, "count");
  f.define_bool("verbose", false, "talk");
  f.define_string("out", "x.csv", "path");
  Argv a({"prog"});
  ASSERT_TRUE(f.parse(a.argc(), a.argv()));
  EXPECT_EQ(f.get_int("n"), 8);
  EXPECT_FALSE(f.get_bool("verbose"));
  EXPECT_EQ(f.get_string("out"), "x.csv");
}

TEST(Flags, EqualsSyntax) {
  Flags f;
  f.define_int("n", 8, "count");
  Argv a({"prog", "--n=64"});
  ASSERT_TRUE(f.parse(a.argc(), a.argv()));
  EXPECT_EQ(f.get_int("n"), 64);
}

TEST(Flags, SpaceSyntax) {
  Flags f;
  f.define_string("out", "", "path");
  Argv a({"prog", "--out", "results.csv"});
  ASSERT_TRUE(f.parse(a.argc(), a.argv()));
  EXPECT_EQ(f.get_string("out"), "results.csv");
}

TEST(Flags, BoolImplicitTrue) {
  Flags f;
  f.define_bool("verbose", false, "talk");
  Argv a({"prog", "--verbose"});
  ASSERT_TRUE(f.parse(a.argc(), a.argv()));
  EXPECT_TRUE(f.get_bool("verbose"));
}

TEST(Flags, NoPrefixDisablesBool) {
  Flags f;
  f.define_bool("reorder", true, "reorder events");
  Argv a({"prog", "--no-reorder"});
  ASSERT_TRUE(f.parse(a.argc(), a.argv()));
  EXPECT_FALSE(f.get_bool("reorder"));
}

TEST(Flags, UnknownFlagFails) {
  Flags f;
  f.define_int("n", 1, "count");
  Argv a({"prog", "--bogus=3"});
  EXPECT_FALSE(f.parse(a.argc(), a.argv()));
}

TEST(Flags, PositionalArgumentFails) {
  Flags f;
  Argv a({"prog", "stray"});
  EXPECT_FALSE(f.parse(a.argc(), a.argv()));
}

TEST(Flags, HelpReturnsFalse) {
  Flags f;
  f.define_int("n", 1, "count");
  Argv a({"prog", "--help"});
  EXPECT_FALSE(f.parse(a.argc(), a.argv()));
}

TEST(Flags, MissingValueFails) {
  Flags f;
  f.define_string("out", "", "path");
  Argv a({"prog", "--out"});
  EXPECT_FALSE(f.parse(a.argc(), a.argv()));
}

TEST(Flags, UsageListsFlagsInDefinitionOrder) {
  Flags f;
  f.define_string("zeta", "", "defined first");
  f.define_int("alpha", 1, "defined second");
  f.define_bool("mid", false, "defined third");
  std::string u = f.usage("prog");
  std::size_t z = u.find("--zeta");
  std::size_t a = u.find("--alpha");
  std::size_t m = u.find("--mid");
  ASSERT_NE(z, std::string::npos);
  ASSERT_NE(a, std::string::npos);
  ASSERT_NE(m, std::string::npos);
  EXPECT_LT(z, a);
  EXPECT_LT(a, m);
}

TEST(Flags, DefinedReflectsDeclarations) {
  Flags f;
  f.define_int("n", 1, "count");
  EXPECT_TRUE(f.defined("n"));
  EXPECT_FALSE(f.defined("m"));
}

TEST(FlagsDeathTest, DuplicateDefinitionAborts) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  EXPECT_DEATH(
      {
        Flags f;
        f.define_int("n", 1, "count");
        f.define_string("n", "", "same name, other kind");
      },
      "defined twice");
}

}  // namespace
}  // namespace logstruct::util
