#include "util/flags.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace logstruct::util {
namespace {

// Helper to build argv from strings.
class Argv {
 public:
  explicit Argv(std::vector<std::string> args) : storage_(std::move(args)) {
    for (auto& s : storage_) ptrs_.push_back(s.data());
  }
  int argc() const { return static_cast<int>(ptrs_.size()); }
  char** argv() { return ptrs_.data(); }

 private:
  std::vector<std::string> storage_;
  std::vector<char*> ptrs_;
};

TEST(Flags, Defaults) {
  Flags f;
  f.define_int("n", 8, "count");
  f.define_bool("verbose", false, "talk");
  f.define_string("out", "x.csv", "path");
  Argv a({"prog"});
  ASSERT_TRUE(f.parse(a.argc(), a.argv()));
  EXPECT_EQ(f.get_int("n"), 8);
  EXPECT_FALSE(f.get_bool("verbose"));
  EXPECT_EQ(f.get_string("out"), "x.csv");
}

TEST(Flags, EqualsSyntax) {
  Flags f;
  f.define_int("n", 8, "count");
  Argv a({"prog", "--n=64"});
  ASSERT_TRUE(f.parse(a.argc(), a.argv()));
  EXPECT_EQ(f.get_int("n"), 64);
}

TEST(Flags, SpaceSyntax) {
  Flags f;
  f.define_string("out", "", "path");
  Argv a({"prog", "--out", "results.csv"});
  ASSERT_TRUE(f.parse(a.argc(), a.argv()));
  EXPECT_EQ(f.get_string("out"), "results.csv");
}

TEST(Flags, BoolImplicitTrue) {
  Flags f;
  f.define_bool("verbose", false, "talk");
  Argv a({"prog", "--verbose"});
  ASSERT_TRUE(f.parse(a.argc(), a.argv()));
  EXPECT_TRUE(f.get_bool("verbose"));
}

TEST(Flags, NoPrefixDisablesBool) {
  Flags f;
  f.define_bool("reorder", true, "reorder events");
  Argv a({"prog", "--no-reorder"});
  ASSERT_TRUE(f.parse(a.argc(), a.argv()));
  EXPECT_FALSE(f.get_bool("reorder"));
}

TEST(Flags, UnknownFlagFails) {
  Flags f;
  f.define_int("n", 1, "count");
  Argv a({"prog", "--bogus=3"});
  EXPECT_FALSE(f.parse(a.argc(), a.argv()));
}

TEST(Flags, PositionalArgumentFails) {
  Flags f;
  Argv a({"prog", "stray"});
  EXPECT_FALSE(f.parse(a.argc(), a.argv()));
}

TEST(Flags, HelpReturnsFalse) {
  Flags f;
  f.define_int("n", 1, "count");
  Argv a({"prog", "--help"});
  EXPECT_FALSE(f.parse(a.argc(), a.argv()));
}

TEST(Flags, MissingValueFails) {
  Flags f;
  f.define_string("out", "", "path");
  Argv a({"prog", "--out"});
  EXPECT_FALSE(f.parse(a.argc(), a.argv()));
}

}  // namespace
}  // namespace logstruct::util
