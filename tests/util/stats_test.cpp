#include "util/stats.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

namespace logstruct::util {
namespace {

TEST(Stats, EmptySummary) {
  Summary s = summarize(std::span<const double>{});
  EXPECT_EQ(s.count, 0u);
  EXPECT_EQ(s.mean, 0);
}

TEST(Stats, SingleValue) {
  std::vector<double> v{4.0};
  Summary s = summarize(std::span<const double>(v));
  EXPECT_EQ(s.min, 4.0);
  EXPECT_EQ(s.max, 4.0);
  EXPECT_EQ(s.mean, 4.0);
  EXPECT_EQ(s.stddev, 0.0);
}

TEST(Stats, KnownSample) {
  std::vector<double> v{2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0};
  Summary s = summarize(std::span<const double>(v));
  EXPECT_DOUBLE_EQ(s.mean, 5.0);
  EXPECT_EQ(s.min, 2.0);
  EXPECT_EQ(s.max, 9.0);
  EXPECT_NEAR(s.stddev, std::sqrt(32.0 / 7.0), 1e-12);  // sample stddev
}

TEST(Stats, Int64Overload) {
  std::vector<std::int64_t> v{1, 2, 3};
  Summary s = summarize(std::span<const std::int64_t>(v));
  EXPECT_DOUBLE_EQ(s.mean, 2.0);
}

TEST(Stats, LogLogSlopeLinear) {
  // y = 3 x  ->  slope 1 on log-log.
  std::vector<double> x{1, 2, 4, 8, 16};
  std::vector<double> y{3, 6, 12, 24, 48};
  EXPECT_NEAR(loglog_slope(x, y), 1.0, 1e-9);
}

TEST(Stats, LogLogSlopeQuadratic) {
  std::vector<double> x{1, 2, 4, 8};
  std::vector<double> y{5, 20, 80, 320};
  EXPECT_NEAR(loglog_slope(x, y), 2.0, 1e-9);
}

TEST(Stats, LogLogSlopeSkipsNonPositive) {
  std::vector<double> x{0, 1, 2, 4};
  std::vector<double> y{9, 3, 6, 12};
  EXPECT_NEAR(loglog_slope(x, y), 1.0, 1e-9);
}

TEST(Stats, LogLogSlopeDegenerate) {
  std::vector<double> x{1};
  std::vector<double> y{5};
  EXPECT_EQ(loglog_slope(x, y), 0.0);
}

}  // namespace
}  // namespace logstruct::util
