#include "util/stopwatch.hpp"

#include <gtest/gtest.h>

#include <chrono>
#include <thread>

namespace logstruct::util {
namespace {

void spin_for(std::chrono::milliseconds d) {
  std::this_thread::sleep_for(d);
}

TEST(Stopwatch, SecondsAccumulates) {
  Stopwatch sw;
  spin_for(std::chrono::milliseconds(5));
  double a = sw.seconds();
  EXPECT_GE(a, 0.004);
  spin_for(std::chrono::milliseconds(5));
  EXPECT_GT(sw.seconds(), a);  // keeps running; seconds() is a read
}

TEST(Stopwatch, ResetStartsOver) {
  Stopwatch sw;
  spin_for(std::chrono::milliseconds(5));
  sw.reset();
  EXPECT_LT(sw.seconds(), 0.004);
}

TEST(Stopwatch, LapReturnsSplitAndRestarts) {
  Stopwatch sw;
  spin_for(std::chrono::milliseconds(5));
  double first = sw.lap();
  EXPECT_GE(first, 0.004);
  // The lap restarted the watch: the next split only covers time since.
  double second = sw.lap();
  EXPECT_LT(second, first);
}

TEST(Stopwatch, PauseExcludesTime) {
  Stopwatch sw;
  spin_for(std::chrono::milliseconds(5));
  sw.pause();
  EXPECT_TRUE(sw.paused());
  double at_pause = sw.seconds();
  spin_for(std::chrono::milliseconds(10));
  // Paused time does not accumulate.
  EXPECT_DOUBLE_EQ(sw.seconds(), at_pause);
  sw.resume();
  EXPECT_FALSE(sw.paused());
  spin_for(std::chrono::milliseconds(5));
  double total = sw.seconds();
  EXPECT_GE(total, at_pause + 0.004);
  EXPECT_LT(total, at_pause + 0.1);  // the paused 10ms stayed excluded
}

TEST(Stopwatch, PauseAndResumeAreIdempotent) {
  Stopwatch sw;
  sw.pause();
  sw.pause();
  double frozen = sw.seconds();
  spin_for(std::chrono::milliseconds(2));
  EXPECT_DOUBLE_EQ(sw.seconds(), frozen);
  sw.resume();
  sw.resume();
  EXPECT_FALSE(sw.paused());
}

TEST(Stopwatch, LapPreservesPauseState) {
  Stopwatch sw;
  sw.pause();
  double split = sw.lap();
  EXPECT_GE(split, 0.0);
  EXPECT_TRUE(sw.paused());  // still paused after the lap
  spin_for(std::chrono::milliseconds(2));
  EXPECT_DOUBLE_EQ(sw.seconds(), 0.0);
}

TEST(Stopwatch, ResetClearsPause) {
  Stopwatch sw;
  sw.pause();
  sw.reset();
  EXPECT_FALSE(sw.paused());
  spin_for(std::chrono::milliseconds(2));
  EXPECT_GT(sw.seconds(), 0.0);
}

}  // namespace
}  // namespace logstruct::util
