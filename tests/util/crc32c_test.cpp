/// Unit tests for the CRC32C (Castagnoli) kernel behind the .lsblk v2
/// checksums. The RFC 3720 appendix B.4 vectors pin the polynomial and
/// bit order, the streaming/extend equivalence pins the seed-chaining
/// convention, and the split-at-every-offset sweep makes the slice-by-8
/// tail handling and the hardware path (when dispatched) agree with the
/// one-shot form — the property the incremental tail CRC in
/// BlockStoreWriter::write_tail depends on.

#include "util/crc32c.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

namespace logstruct::util {
namespace {

TEST(Crc32c, Rfc3720Vectors) {
  // iSCSI CRC32C test vectors (RFC 3720 appendix B.4).
  std::uint8_t zeros[32];
  std::memset(zeros, 0x00, sizeof(zeros));
  EXPECT_EQ(crc32c(zeros, sizeof(zeros)), 0x8A9136AAu);

  std::uint8_t ones[32];
  std::memset(ones, 0xFF, sizeof(ones));
  EXPECT_EQ(crc32c(ones, sizeof(ones)), 0x62A8AB43u);

  std::uint8_t ascending[32];
  for (int i = 0; i < 32; ++i) ascending[i] = static_cast<std::uint8_t>(i);
  EXPECT_EQ(crc32c(ascending, sizeof(ascending)), 0x46DD794Eu);

  std::uint8_t descending[32];
  for (int i = 0; i < 32; ++i)
    descending[i] = static_cast<std::uint8_t>(31 - i);
  EXPECT_EQ(crc32c(descending, sizeof(descending)), 0x113FDB5Cu);
}

TEST(Crc32c, CheckString) {
  // The classic "123456789" check value for CRC32C.
  const char* s = "123456789";
  EXPECT_EQ(crc32c(s, 9), 0xE3069283u);
}

TEST(Crc32c, EmptyIsZero) {
  EXPECT_EQ(crc32c(nullptr, 0), 0u);
  EXPECT_EQ(crc32c_extend(0, nullptr, 0), 0u);
  // Extending an existing sum with zero bytes is the identity.
  const char* s = "payload";
  const std::uint32_t sum = crc32c(s, 7);
  EXPECT_EQ(crc32c_extend(sum, nullptr, 0), sum);
}

TEST(Crc32c, ExtendMatchesOneShotAtEverySplit) {
  // 300 bytes straddles several slice-by-8 strides plus a ragged tail,
  // so every split point exercises a different (head, tail) pairing.
  std::vector<std::uint8_t> data(300);
  std::uint32_t x = 0x12345678u;
  for (auto& b : data) {
    x = x * 1664525u + 1013904223u;
    b = static_cast<std::uint8_t>(x >> 24);
  }
  const std::uint32_t whole = crc32c(data.data(), data.size());
  for (std::size_t split = 0; split <= data.size(); ++split) {
    std::uint32_t sum = crc32c_extend(0, data.data(), split);
    sum = crc32c_extend(sum, data.data() + split, data.size() - split);
    EXPECT_EQ(sum, whole) << "split at " << split;
  }
}

TEST(Crc32c, ThreeWayStreaming) {
  const std::string a = "block-a ", b = "block-b ", c = "block-c";
  const std::string abc = a + b + c;
  std::uint32_t sum = crc32c_extend(0, a.data(), a.size());
  sum = crc32c_extend(sum, b.data(), b.size());
  sum = crc32c_extend(sum, c.data(), c.size());
  EXPECT_EQ(sum, crc32c(abc.data(), abc.size()));
}

TEST(Crc32c, SingleBitFlipChangesSum) {
  // The property the block quarantine relies on: any single-bit flip in
  // a block must change its checksum.
  std::vector<std::uint8_t> data(128, 0xA5);
  const std::uint32_t clean = crc32c(data.data(), data.size());
  for (std::size_t byte : {std::size_t{0}, std::size_t{63},
                           std::size_t{64}, std::size_t{127}}) {
    for (int bit = 0; bit < 8; ++bit) {
      data[byte] ^= static_cast<std::uint8_t>(1u << bit);
      EXPECT_NE(crc32c(data.data(), data.size()), clean)
          << "byte " << byte << " bit " << bit;
      data[byte] ^= static_cast<std::uint8_t>(1u << bit);
    }
  }
  EXPECT_EQ(crc32c(data.data(), data.size()), clean);
}

TEST(Crc32c, DispatchIsStable) {
  // Informational flag only: whatever path the dispatch picked, it must
  // answer consistently and produce the standard vectors (checked
  // above), so containers move between hosts with and without SSE4.2.
  const bool hw = crc32c_hardware_accelerated();
  EXPECT_EQ(crc32c_hardware_accelerated(), hw);
}

}  // namespace
}  // namespace logstruct::util
