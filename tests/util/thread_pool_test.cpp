#include "util/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <numeric>
#include <thread>
#include <vector>

#include "obs/memstats.hpp"

namespace logstruct::util {
namespace {

TEST(ThreadPool, CoversEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  for (std::int64_t n : {0, 1, 2, 3, 7, 100, 4096}) {
    std::vector<std::atomic<int>> hits(static_cast<std::size_t>(n));
    pool.parallel_for(n, [&](std::int64_t i) {
      hits[static_cast<std::size_t>(i)].fetch_add(1,
                                                  std::memory_order_relaxed);
    });
    for (std::int64_t i = 0; i < n; ++i)
      EXPECT_EQ(hits[static_cast<std::size_t>(i)].load(), 1) << "i=" << i;
  }
}

TEST(ThreadPool, ChunksPartitionTheRange) {
  ThreadPool pool(3);
  const std::int64_t n = 1000;
  std::vector<std::atomic<int>> hits(static_cast<std::size_t>(n));
  pool.parallel_for_chunks(n, /*grain=*/7,
                           [&](std::int64_t begin, std::int64_t end) {
                             ASSERT_LT(begin, end);
                             ASSERT_LE(end, n);
                             for (std::int64_t i = begin; i < end; ++i)
                               hits[static_cast<std::size_t>(i)].fetch_add(
                                   1, std::memory_order_relaxed);
                           });
  for (std::int64_t i = 0; i < n; ++i)
    EXPECT_EQ(hits[static_cast<std::size_t>(i)].load(), 1) << "i=" << i;
}

TEST(ThreadPool, LimitCapsParticipants) {
  ThreadPool pool(8);
  std::atomic<int> concurrent{0};
  std::atomic<int> peak{0};
  pool.parallel_for(
      64,
      [&](std::int64_t) {
        int now = concurrent.fetch_add(1) + 1;
        int p = peak.load();
        while (now > p && !peak.compare_exchange_weak(p, now)) {
        }
        std::this_thread::sleep_for(std::chrono::microseconds(50));
        concurrent.fetch_sub(1);
      },
      /*limit=*/2);
  EXPECT_LE(peak.load(), 2);
}

TEST(ThreadPool, DeterministicResultAnyThreadCount) {
  // Index-owned writes: identical output for any pool size.
  const std::int64_t n = 10000;
  std::vector<std::int64_t> expect(static_cast<std::size_t>(n));
  for (std::int64_t i = 0; i < n; ++i)
    expect[static_cast<std::size_t>(i)] = i * i % 9973;
  for (int threads : {1, 2, 4, 8}) {
    ThreadPool pool(threads);
    std::vector<std::int64_t> got(static_cast<std::size_t>(n), -1);
    pool.parallel_for(n, [&](std::int64_t i) {
      got[static_cast<std::size_t>(i)] = i * i % 9973;
    });
    EXPECT_EQ(got, expect) << "threads=" << threads;
  }
}

TEST(ThreadPool, NestedParallelForRunsInline) {
  ThreadPool pool(4);
  std::atomic<std::int64_t> total{0};
  pool.parallel_for(8, [&](std::int64_t) {
    // Nested call must complete serially instead of deadlocking on the
    // single job slot.
    std::int64_t local = 0;
    ThreadPool::global().parallel_for(16,
                                      [&local](std::int64_t) { ++local; });
    total.fetch_add(local, std::memory_order_relaxed);
  });
  EXPECT_EQ(total.load(), 8 * 16);
}

TEST(ThreadPool, ReusableAcrossManyJobs) {
  ThreadPool pool(4);
  for (int round = 0; round < 200; ++round) {
    std::atomic<std::int64_t> sum{0};
    pool.parallel_for(97, [&](std::int64_t i) {
      sum.fetch_add(i, std::memory_order_relaxed);
    });
    ASSERT_EQ(sum.load(), 97 * 96 / 2) << "round=" << round;
  }
}

TEST(ThreadPool, ConcurrentSubmittersSerialize) {
  // Several threads submitting to one pool at once: every job still
  // covers its range exactly once.
  ThreadPool pool(4);
  std::vector<std::thread> submitters;
  std::vector<std::int64_t> sums(6, 0);
  for (int s = 0; s < 6; ++s) {
    submitters.emplace_back([&pool, &sums, s] {
      std::atomic<std::int64_t> sum{0};
      pool.parallel_for(500, [&](std::int64_t i) {
        sum.fetch_add(i + s, std::memory_order_relaxed);
      });
      sums[static_cast<std::size_t>(s)] = sum.load();
    });
  }
  for (auto& t : submitters) t.join();
  for (int s = 0; s < 6; ++s)
    EXPECT_EQ(sums[static_cast<std::size_t>(s)],
              500 * 499 / 2 + 500LL * s);
}

TEST(ThreadPool, WorkerAllocsCreditedToCaller) {
  if (!obs::alloc_hook_active()) GTEST_SKIP() << "alloc hook not linked";
  ThreadPool pool(4);
  obs::AllocScope scope;
  std::atomic<std::int64_t> keep{0};
  pool.parallel_for(64, [&](std::int64_t i) {
    std::vector<std::int64_t> v(1024, i);  // ~8 KiB per index
    keep.fetch_add(v.back(), std::memory_order_relaxed);
  });
  const obs::AllocCounters d = scope.delta();
  // All 64 allocations must be visible to the caller's scope no matter
  // which worker performed them.
  EXPECT_GE(d.bytes, 64 * 1024 * static_cast<std::int64_t>(sizeof(std::int64_t)));
  EXPECT_GE(d.count, 64);
}

TEST(ThreadPoolDefaults, ResolveThreads) {
  set_default_parallelism(3);
  EXPECT_EQ(default_parallelism(), 3);
  EXPECT_EQ(resolve_threads(0), 3);
  EXPECT_EQ(resolve_threads(5), 5);
  set_default_parallelism(1);
  EXPECT_EQ(resolve_threads(0), 1);
}

TEST(ThreadPoolDefaults, ZeroMeansHardware) {
  set_default_parallelism(0);
  EXPECT_EQ(default_parallelism(), ThreadPool::hardware_threads());
  set_default_parallelism(1);
}

TEST(ThreadPoolDefaults, FreeFunctionRespectsExplicitCount) {
  std::vector<int> out(100, 0);
  parallel_for(4, 100, [&](std::int64_t i) {
    out[static_cast<std::size_t>(i)] = static_cast<int>(i) + 1;
  });
  for (int i = 0; i < 100; ++i) EXPECT_EQ(out[static_cast<std::size_t>(i)], i + 1);
}

}  // namespace
}  // namespace logstruct::util
