#include "util/csv.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

namespace logstruct::util {
namespace {

TEST(Csv, HeaderOnly) {
  CsvWriter w({"a", "b"});
  EXPECT_EQ(w.str(), "a,b\n");
}

TEST(Csv, MixedTypes) {
  CsvWriter w({"name", "count", "ratio"});
  w.row().add("x").add(std::int64_t{3}).add(0.5);
  EXPECT_EQ(w.str(), "name,count,ratio\nx,3,0.5\n");
}

TEST(Csv, EscapesCommasAndQuotes) {
  CsvWriter w({"v"});
  w.row().add("a,b");
  w.row().add("say \"hi\"");
  EXPECT_EQ(w.str(), "v\n\"a,b\"\n\"say \"\"hi\"\"\"\n");
}

TEST(Csv, RowCount) {
  CsvWriter w({"v"});
  EXPECT_EQ(w.row_count(), 0u);
  w.row().add("1");
  w.row().add("2");
  EXPECT_EQ(w.row_count(), 2u);
}

TEST(Csv, SaveRoundTrip) {
  CsvWriter w({"k", "v"});
  w.row().add("alpha").add(std::int64_t{1});
  std::string path = testing::TempDir() + "/csv_test.csv";
  ASSERT_TRUE(w.save(path));
  std::ifstream f(path);
  std::string content((std::istreambuf_iterator<char>(f)),
                      std::istreambuf_iterator<char>());
  EXPECT_EQ(content, w.str());
  std::remove(path.c_str());
}

TEST(Csv, SaveToBadPathFails) {
  CsvWriter w({"a"});
  EXPECT_FALSE(w.save("/nonexistent-dir-xyz/file.csv"));
}

}  // namespace
}  // namespace logstruct::util
