#include "util/table.hpp"

#include <gtest/gtest.h>

namespace logstruct::util {
namespace {

TEST(Table, AlignsColumns) {
  TablePrinter t({"id", "value"});
  t.row().add(std::int64_t{1}).add("short");
  t.row().add(std::int64_t{100}).add("longer-value");
  std::string s = t.str();
  // Every line should start the second column at the same offset.
  auto first_nl = s.find('\n');
  ASSERT_NE(first_nl, std::string::npos);
  std::string header = s.substr(0, first_nl);
  EXPECT_NE(header.find("value"), std::string::npos);
  // Column width fits widest cell "longer-value" without truncation.
  EXPECT_NE(s.find("longer-value"), std::string::npos);
}

TEST(Table, SeparatorUnderHeader) {
  TablePrinter t({"x"});
  t.row().add("y");
  std::string s = t.str();
  auto lines_end = s.find('\n', s.find('\n') + 1);
  std::string sep = s.substr(s.find('\n') + 1, lines_end - s.find('\n') - 1);
  EXPECT_FALSE(sep.empty());
  for (char c : sep) EXPECT_EQ(c, '-');
}

TEST(Table, DoubleFormattingPrecision) {
  TablePrinter t({"v"});
  t.row().add(3.14159, 2);
  EXPECT_NE(t.str().find("3.14"), std::string::npos);
  EXPECT_EQ(t.str().find("3.142"), std::string::npos);
}

TEST(Table, EmptyTable) {
  TablePrinter t({"only", "header"});
  std::string s = t.str();
  EXPECT_NE(s.find("only"), std::string::npos);
  EXPECT_NE(s.find("header"), std::string::npos);
}

}  // namespace
}  // namespace logstruct::util
