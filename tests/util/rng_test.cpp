#include "util/rng.hpp"

#include <gtest/gtest.h>

#include <set>
#include <vector>

namespace logstruct::util {
namespace {

TEST(Rng, DeterministicForSeed) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i)
    if (a.next() == b.next()) ++same;
  EXPECT_EQ(same, 0);
}

TEST(Rng, UniformRespectsBound) {
  Rng r(7);
  for (int i = 0; i < 1000; ++i) EXPECT_LT(r.uniform(10), 10u);
}

TEST(Rng, UniformZeroBound) {
  Rng r(7);
  EXPECT_EQ(r.uniform(0), 0u);
}

TEST(Rng, UniformRangeInclusive) {
  Rng r(9);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 2000; ++i) {
    std::int64_t v = r.uniform_range(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 7u);  // all values hit over 2000 draws
}

TEST(Rng, UniformRangeDegenerate) {
  Rng r(9);
  EXPECT_EQ(r.uniform_range(5, 5), 5);
  EXPECT_EQ(r.uniform_range(5, 4), 5);
}

TEST(Rng, Uniform01InUnitInterval) {
  Rng r(11);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    double v = r.uniform01();
    ASSERT_GE(v, 0.0);
    ASSERT_LT(v, 1.0);
    sum += v;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);  // crude uniformity check
}

TEST(Rng, ForkedStreamsIndependent) {
  Rng base(123);
  Rng s0 = base.fork(0);
  Rng s1 = base.fork(1);
  int same = 0;
  for (int i = 0; i < 64; ++i)
    if (s0.next() == s1.next()) ++same;
  EXPECT_EQ(same, 0);
}

TEST(Rng, ForkDeterministic) {
  Rng a(5);
  Rng b(5);
  Rng fa = a.fork(3);
  Rng fb = b.fork(3);
  for (int i = 0; i < 16; ++i) EXPECT_EQ(fa.next(), fb.next());
}

}  // namespace
}  // namespace logstruct::util
