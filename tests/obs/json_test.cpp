#include "obs/json.hpp"

#include <gtest/gtest.h>

#include <limits>
#include <string>

namespace logstruct::obs::json {
namespace {

TEST(JsonWriter, ObjectWithCommasAndTypes) {
  Writer w;
  w.begin_object();
  w.key("a");
  w.value(std::int64_t{1});
  w.key("b");
  w.value("two");
  w.key("c");
  w.value(true);
  w.key("d");
  w.null();
  w.key("e");
  w.value(1.5);
  w.end_object();
  EXPECT_EQ(std::move(w).str(),
            "{\"a\":1,\"b\":\"two\",\"c\":true,\"d\":null,\"e\":1.5}");
}

TEST(JsonWriter, NestedArrays) {
  Writer w;
  w.begin_array();
  w.value(std::int64_t{1});
  w.begin_array();
  w.value(std::int64_t{2});
  w.end_array();
  w.begin_object();
  w.key("k");
  w.value(std::int64_t{3});
  w.end_object();
  w.end_array();
  EXPECT_EQ(std::move(w).str(), "[1,[2],{\"k\":3}]");
}

TEST(JsonWriter, EscapesControlAndQuote) {
  Writer w;
  w.begin_object();
  w.key("k\"ey");
  w.value("line\nbreak\ttab\\slash");
  w.end_object();
  EXPECT_EQ(std::move(w).str(),
            "{\"k\\\"ey\":\"line\\nbreak\\ttab\\\\slash\"}");
}

TEST(JsonWriter, RawSplicesSubDocument) {
  Writer inner;
  inner.begin_object();
  inner.key("x");
  inner.value(std::int64_t{9});
  inner.end_object();

  Writer w;
  w.begin_object();
  w.key("sub");
  w.raw(inner.str());
  w.key("after");
  w.value(std::int64_t{1});
  w.end_object();
  EXPECT_EQ(std::move(w).str(), "{\"sub\":{\"x\":9},\"after\":1}");
}

TEST(JsonWriter, EscapesEveryControlCharAsValidJson) {
  std::string all;
  for (char c = 1; c < 0x20; ++c) all.push_back(c);
  Writer w;
  w.begin_object();
  w.key("ctl");
  w.value(all);
  w.end_object();
  std::string doc = std::move(w).str();
  // Nothing below 0x20 may appear raw in the output (RFC 8259).
  for (char c : doc) EXPECT_GE(static_cast<unsigned char>(c), 0x20u);

  Value v;
  std::string err;
  ASSERT_TRUE(parse(doc, v, &err)) << err << " in " << doc;
  EXPECT_EQ(v.at("ctl").string, all);
}

TEST(JsonWriter, BackspaceAndFormfeedUseShortEscapes) {
  Writer w;
  // Split literals keep \x01 from swallowing the following 'd'.
  w.value("a\bb\fc\x01" "d\x1f");
  std::string doc = std::move(w).str();
  EXPECT_EQ(doc, "\"a\\bb\\fc\\u0001d\\u001f\"");
  Value v;
  ASSERT_TRUE(parse(doc, v));
  EXPECT_EQ(v.string, "a\bb\fc\x01" "d\x1f");
}

TEST(JsonWriter, NonFiniteDoublesSerializeAsNull) {
  Writer w;
  w.begin_array();
  w.value(std::numeric_limits<double>::quiet_NaN());
  w.value(std::numeric_limits<double>::infinity());
  w.value(-std::numeric_limits<double>::infinity());
  w.value(2.5);
  w.end_array();
  std::string doc = std::move(w).str();
  EXPECT_EQ(doc, "[null,null,null,2.5]");

  // The document must stay machine-parseable (bare nan/inf is not JSON).
  Value v;
  std::string err;
  ASSERT_TRUE(parse(doc, v, &err)) << err;
  ASSERT_EQ(v.array.size(), 4u);
  EXPECT_EQ(v.array[0].kind, Value::Kind::Null);
  EXPECT_EQ(v.array[1].kind, Value::Kind::Null);
  EXPECT_EQ(v.array[2].kind, Value::Kind::Null);
  EXPECT_DOUBLE_EQ(v.array[3].number, 2.5);
}

TEST(JsonParse, RoundTripThroughWriter) {
  Writer w;
  w.begin_object();
  w.key("name");
  w.value("order/initial \"quoted\"\n");
  w.key("count");
  w.value(std::int64_t{-42});
  w.key("ok");
  w.value(false);
  w.key("list");
  w.begin_array();
  w.value(std::int64_t{1});
  w.value(std::int64_t{2});
  w.end_array();
  w.end_object();

  Value v;
  std::string err;
  ASSERT_TRUE(parse(std::move(w).str(), v, &err)) << err;
  ASSERT_TRUE(v.is_object());
  EXPECT_EQ(v.at("name").string, "order/initial \"quoted\"\n");
  EXPECT_EQ(v.at("count").as_int(), -42);
  EXPECT_EQ(v.at("ok").kind, Value::Kind::Bool);
  EXPECT_FALSE(v.at("ok").boolean);
  ASSERT_TRUE(v.at("list").is_array());
  ASSERT_EQ(v.at("list").array.size(), 2u);
  EXPECT_EQ(v.at("list").array[1].as_int(), 2);
}

TEST(JsonParse, MissingKeyYieldsNullSentinel) {
  Value v;
  ASSERT_TRUE(parse("{\"a\":1}", v));
  EXPECT_TRUE(v.has("a"));
  EXPECT_FALSE(v.has("b"));
  EXPECT_EQ(v.at("b").kind, Value::Kind::Null);
  // Chained lookups through the sentinel stay safe.
  EXPECT_EQ(v.at("b").at("c").kind, Value::Kind::Null);
}

TEST(JsonParse, NumbersAndUnicodeEscapes) {
  Value v;
  ASSERT_TRUE(parse("{\"f\":-1.25e2,\"u\":\"a\\u0041b\"}", v));
  EXPECT_DOUBLE_EQ(v.at("f").number, -125.0);
  EXPECT_EQ(v.at("u").string, "aAb");
}

TEST(JsonParse, RejectsMalformed) {
  Value v;
  std::string err;
  EXPECT_FALSE(parse("{\"a\":}", v, &err));
  EXPECT_FALSE(err.empty());
  EXPECT_FALSE(parse("[1,2", v));
  EXPECT_FALSE(parse("", v));
  EXPECT_FALSE(parse("{} trailing", v));
}

}  // namespace
}  // namespace logstruct::obs::json
