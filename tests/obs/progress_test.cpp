#include "obs/progress.hpp"

#include <gtest/gtest.h>

#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "obs/registry.hpp"

namespace logstruct::obs {
namespace {

Gauge& done_gauge() { return Registry::global().gauge("obs/progress/done"); }
Gauge& total_gauge() {
  return Registry::global().gauge("obs/progress/total");
}

TEST(Progress, ScopePublishesAndRestores) {
  {
    Progress outer("pass/outer", 100);
    Progress::tick(10);
    Progress::State s = Progress::current();
    EXPECT_STREQ(s.pass, "pass/outer");
    EXPECT_EQ(s.done, 10);
    EXPECT_EQ(s.total, 100);
    EXPECT_EQ(done_gauge().value(), 10);
    EXPECT_EQ(total_gauge().value(), 100);
    {
      // Nested scope: innermost wins, outer state is saved.
      Progress inner("pass/inner", 7);
      Progress::tick();
      s = Progress::current();
      EXPECT_STREQ(s.pass, "pass/inner");
      EXPECT_EQ(s.done, 1);
      EXPECT_EQ(s.total, 7);
    }
    // Closing the inner scope restores the outer pass mid-flight.
    s = Progress::current();
    EXPECT_STREQ(s.pass, "pass/outer");
    EXPECT_EQ(s.done, 10);
    EXPECT_EQ(s.total, 100);
  }
  EXPECT_STREQ(Progress::current().pass, "");
}

TEST(Progress, SetDoneAddTotalAndAtomicReads) {
  Progress prog("pass/counts", 10);
  Progress::set_done(4);
  EXPECT_EQ(Progress::done_now(), 4);
  Progress::add_total(5);
  EXPECT_EQ(Progress::total_now(), 15);
  Progress::tick(2);
  EXPECT_EQ(Progress::done_now(), 6);
  EXPECT_EQ(done_gauge().value(), 6);
  EXPECT_EQ(total_gauge().value(), 15);
}

TEST(Progress, CurrentPassIsBoundedCopy) {
  const std::string long_name(200, 'x');
  Progress prog(long_name, 1);
  char buf[16];
  const std::size_t n = Progress::current_pass(buf, sizeof buf);
  EXPECT_EQ(n, sizeof buf - 1);
  EXPECT_EQ(buf[sizeof buf - 1], '\0');
  EXPECT_EQ(std::strlen(buf), sizeof buf - 1);
  // Zero-length buffer is a no-op, not a write.
  EXPECT_EQ(Progress::current_pass(buf, 0), 0u);
}

TEST(Progress, ConcurrentTicksSumExactly) {
  Progress prog("pass/parallel", 4000);
  std::vector<std::thread> workers;
  workers.reserve(4);
  for (int t = 0; t < 4; ++t) {
    workers.emplace_back([] {
      for (int i = 0; i < 1000; ++i) Progress::tick();
    });
  }
  for (std::thread& w : workers) w.join();
  EXPECT_EQ(Progress::done_now(), 4000);
}

TEST(Progress, TickerEnableDisableIsIdempotent) {
  EXPECT_FALSE(Progress::ticker_enabled());
  Progress::enable_ticker(true, 5);
  EXPECT_TRUE(Progress::ticker_enabled());
  Progress::enable_ticker(true, 5);  // idempotent re-enable
  Progress::enable_ticker(false);
  EXPECT_FALSE(Progress::ticker_enabled());
  Progress::enable_ticker(false);  // idempotent re-disable
}

}  // namespace
}  // namespace logstruct::obs
