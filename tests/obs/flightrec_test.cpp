#include "obs/flightrec.hpp"

#include <gtest/gtest.h>

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "obs/json.hpp"
#include "obs/obs.hpp"
#include "obs/progress.hpp"
#include "obs/registry.hpp"

#if defined(__SANITIZE_THREAD__)
#define LS_TSAN 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define LS_TSAN 1
#endif
#endif

namespace logstruct::obs {
namespace {

TEST(FlightRecorder, RecordsAndDumpsSpanEvents) {
  FlightRecorder& rec = FlightRecorder::global();
  rec.reset();
  rec.record(false, "pass/alpha", 1000, 0);
  rec.record(true, "pass/alpha", 2000, 0);
  rec.record(false, "pass/beta", 3000, 1);

  json::Value v;
  std::string err;
  ASSERT_TRUE(json::parse(rec.to_json(), v, &err)) << err;
  EXPECT_EQ(v.at("schema").string, "logstruct-flightrec/v1");
  EXPECT_EQ(v.at("signal").as_int(), 0);
  ASSERT_TRUE(v.at("events").is_array());
  ASSERT_EQ(v.at("events").array.size(), 3u);
  const json::Value& e0 = v.at("events").array[0];
  EXPECT_EQ(e0.at("name").string, "pass/alpha");
  EXPECT_EQ(e0.at("kind").string, "open");
  EXPECT_EQ(e0.at("t_ns").as_int(), 1000);
  EXPECT_EQ(v.at("events").array[1].at("kind").string, "close");
  EXPECT_EQ(v.at("events").array[2].at("thread").as_int(), 1);
  EXPECT_GE(v.at("rss_kb").as_int(), 0);
  ASSERT_TRUE(v.at("counters").is_object());
  ASSERT_TRUE(v.at("gauges").is_object());
}

TEST(FlightRecorder, RingKeepsNewestEvents) {
  FlightRecorder& rec = FlightRecorder::global();
  rec.reset();
  const std::size_t n = FlightRecorder::kRingSize + 10;
  for (std::size_t i = 0; i < n; ++i)
    rec.record(false, "pass/ring", static_cast<std::int64_t>(i), 0);

  json::Value v;
  std::string err;
  ASSERT_TRUE(json::parse(rec.to_json(), v, &err)) << err;
  const auto& events = v.at("events").array;
  ASSERT_EQ(events.size(), FlightRecorder::kRingSize);
  // Oldest surviving record is the one 256 back from the end.
  EXPECT_EQ(events.front().at("t_ns").as_int(),
            static_cast<std::int64_t>(n - FlightRecorder::kRingSize));
  EXPECT_EQ(events.back().at("t_ns").as_int(),
            static_cast<std::int64_t>(n - 1));
}

TEST(FlightRecorder, LongNamesTruncateInsideSlot) {
  FlightRecorder& rec = FlightRecorder::global();
  rec.reset();
  const std::string long_name(3 * FlightRecorder::kNameLen, 'z');
  rec.record(false, long_name, 1, 0);
  json::Value v;
  std::string err;
  ASSERT_TRUE(json::parse(rec.to_json(), v, &err)) << err;
  const std::string& stored = v.at("events").array[0].at("name").string;
  EXPECT_EQ(stored.size(), FlightRecorder::kNameLen - 1);
  EXPECT_EQ(stored, std::string(FlightRecorder::kNameLen - 1, 'z'));
}

TEST(FlightRecorder, DumpCarriesProgressAndMetrics) {
  FlightRecorder& rec = FlightRecorder::global();
  rec.reset();
  Registry::global().counter("flightrec/test_counter").add(17);
  rec.refresh_metrics();
  Progress prog("flightrec/test_pass", 10);
  Progress::tick(4);

  json::Value v;
  std::string err;
  ASSERT_TRUE(json::parse(rec.to_json(), v, &err)) << err;
  EXPECT_EQ(v.at("pass").string, "flightrec/test_pass");
  EXPECT_EQ(v.at("progress").at("done").as_int(), 4);
  EXPECT_EQ(v.at("progress").at("total").as_int(), 10);
  ASSERT_TRUE(v.at("counters").has("flightrec/test_counter"));
  EXPECT_EQ(v.at("counters").at("flightrec/test_counter").as_int(), 17);
  EXPECT_EQ(v.at("metrics_truncated").kind, json::Value::Kind::Bool);
}

TEST(FlightRecorder, ConcurrentRecordersNeverCorruptTheDump) {
  FlightRecorder& rec = FlightRecorder::global();
  rec.reset();
  std::vector<std::thread> writers;
  writers.reserve(4);
  for (int t = 0; t < 4; ++t) {
    writers.emplace_back([&rec, t] {
      for (int i = 0; i < 2000; ++i)
        rec.record((i & 1) != 0, "pass/contended", i, t);
    });
  }
  // Dump concurrently with the writers: torn slots must be skipped,
  // never emitted as garbage.
  for (int i = 0; i < 10; ++i) {
    json::Value v;
    std::string err;
    ASSERT_TRUE(json::parse(rec.to_json(), v, &err)) << err;
    for (const json::Value& e : v.at("events").array)
      EXPECT_EQ(e.at("name").string, "pass/contended");
  }
  for (std::thread& w : writers) w.join();
  EXPECT_GE(rec.dropped(), 0);
}

#if !defined(LS_TSAN)
// The acceptance-criterion death test: SIGABRT mid-pass must leave a
// parseable flight-recorder JSON naming the in-flight pass. Skipped
// under TSan, whose interceptors are not fork/death-test safe.
TEST(FlightRecorderDeathTest, SigAbrtDumpsPostMortemJson) {
  ::testing::GTEST_FLAG(death_test_style) = "threadsafe";
  const std::string path = testing::TempDir() + "flightrec_abrt.json";
  std::remove(path.c_str());

  EXPECT_EXIT(
      {
        FlightRecorder::global().arm(path);
        Progress prog("order/crashing_pass", 10);
        Progress::tick(3);
        OBS_SPAN(span, "order/crashing_pass");
        std::abort();
      },
      testing::KilledBySignal(SIGABRT), "");

  std::ifstream in(path);
  ASSERT_TRUE(in.good()) << "crash handler wrote no dump at " << path;
  std::stringstream buf;
  buf << in.rdbuf();
  json::Value v;
  std::string err;
  ASSERT_TRUE(json::parse(buf.str(), v, &err)) << err;
  EXPECT_EQ(v.at("schema").string, "logstruct-flightrec/v1");
  EXPECT_EQ(v.at("signal").as_int(), SIGABRT);
  EXPECT_EQ(v.at("pass").string, "order/crashing_pass");
  EXPECT_EQ(v.at("progress").at("done").as_int(), 3);
#if defined(__linux__)
  EXPECT_GT(v.at("rss_kb").as_int(), 0);
#endif
#if LOGSTRUCT_OBS
  // The span open event recorded just before the abort is in the ring.
  bool saw_span = false;
  for (const json::Value& e : v.at("events").array)
    saw_span |= e.at("name").string == "order/crashing_pass";
  EXPECT_TRUE(saw_span);
#endif
  std::remove(path.c_str());
}
#endif  // !LS_TSAN

}  // namespace
}  // namespace logstruct::obs
