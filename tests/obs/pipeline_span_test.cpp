#include "obs/pipeline.hpp"

#include <gtest/gtest.h>

#include <map>
#include <string>
#include <vector>

#include "apps/jacobi2d.hpp"
#include "obs/obs.hpp"
#include "order/stepping.hpp"
#include "trace/selftrace.hpp"
#include "trace/validate.hpp"
#include "vis/ascii.hpp"

namespace logstruct::obs {
namespace {

TEST(PipelineTracer, SpansNestAndBalance) {
  PipelineTracer tracer;
  SpanId outer = tracer.begin("a");
  SpanId inner = tracer.begin("b");
  tracer.attr(inner, "k", 7);
  tracer.end(inner);
  SpanId second = tracer.begin("c");
  tracer.end(second);
  tracer.end(outer);

  auto spans = tracer.snapshot();
  ASSERT_EQ(spans.size(), 3u);
  EXPECT_EQ(spans[0].name, "a");
  EXPECT_EQ(spans[0].parent, kNoSpan);
  EXPECT_EQ(spans[1].parent, outer);
  EXPECT_EQ(spans[2].parent, outer);
  for (const Span& s : spans) {
    EXPECT_FALSE(s.open);
    EXPECT_GE(s.end_ns, s.begin_ns);
  }
  ASSERT_EQ(spans[1].attrs.size(), 1u);
  EXPECT_EQ(spans[1].attrs[0].key, "k");
  EXPECT_EQ(spans[1].attrs[0].value, 7);
}

TEST(PipelineTracer, CapacityDropsAreCounted) {
  PipelineTracer tracer;
  tracer.set_capacity(2);
  tracer.end(tracer.begin("one"));
  tracer.end(tracer.begin("two"));
  SpanId dropped = tracer.begin("three");
  EXPECT_EQ(dropped, kNoSpan);
  tracer.end(dropped);  // must be harmless
  EXPECT_EQ(tracer.snapshot().size(), 2u);
  EXPECT_EQ(tracer.dropped(), 1u);
}

TEST(PipelineTracer, DisabledRecordsNothing) {
  PipelineTracer tracer;
  tracer.set_enabled(false);
  tracer.end(tracer.begin("x"));
  EXPECT_TRUE(tracer.snapshot().empty());
  EXPECT_EQ(tracer.dropped(), 0u);
}

#if LOGSTRUCT_OBS

// One extraction pass must emit exactly one balanced span per pipeline
// stage, nested under order/find_phases, with child durations covered by
// the parent window. This is the contract the --profile table and the
// JSON sidecar are built on.
TEST(PipelineSpans, EveryOrderStageEmitsOneBalancedSpan) {
  PipelineTracer& tracer = PipelineTracer::global();
  tracer.reset();

  apps::Jacobi2DConfig cfg;  // quickstart-sized input
  trace::Trace t = apps::run_jacobi2d(cfg);
  order::LogicalStructure ls =
      order::extract_structure(t, order::Options::charm());
  EXPECT_GT(ls.num_phases(), 0);

  auto spans = tracer.snapshot();
  std::map<std::string, int> count;
  for (const Span& s : spans) {
    EXPECT_FALSE(s.open) << s.name;
    EXPECT_GE(s.end_ns, s.begin_ns) << s.name;
    ++count[s.name];
  }

  const std::vector<std::string> stages = {
      "sim/charm/run",
      "trace/ingest",
      "order/extract_structure",
      "order/find_phases",
      "order/initial",
      "order/dependency_merge",
      "order/repair",
      "order/neighbor_serial",
      "order/infer_source_order",
      "order/enforce_leap_property",
      "order/enforce_chare_paths",
      "order/finalize",
      "order/reorder",
      "order/stepping",
  };
  for (const std::string& stage : stages) {
    EXPECT_EQ(count[stage], 1) << stage;
  }

  // The phase stages nest under order/find_phases and stay inside its
  // window; their summed duration cannot exceed the parent's. (A span's
  // id is its index in the snapshot.)
  SpanId parent_id = kNoSpan;
  for (std::size_t i = 0; i < spans.size(); ++i) {
    if (spans[i].name == "order/find_phases")
      parent_id = static_cast<SpanId>(i);
  }
  ASSERT_NE(parent_id, kNoSpan);
  const Span& parent = spans[static_cast<std::size_t>(parent_id)];
  std::int64_t child_sum = 0;
  for (const Span& s : spans) {
    if (s.parent != parent_id) continue;
    EXPECT_GE(s.begin_ns, parent.begin_ns) << s.name;
    EXPECT_LE(s.end_ns, parent.end_ns) << s.name;
    child_sum += s.end_ns - s.begin_ns;
  }
  EXPECT_LE(child_sum, parent.end_ns - parent.begin_ns);

  // Every span's duration also landed in the registry histogram.
  EXPECT_GE(
      Registry::global().histogram("order/find_phases").count(), 1);
}

// Dogfooding: the recorded spans convert into a valid trace::Trace the
// pipeline and viewers accept.
TEST(PipelineSpans, SelfTraceIsValidAndRenderable) {
  PipelineTracer& tracer = PipelineTracer::global();
  tracer.reset();

  apps::Jacobi2DConfig cfg;
  trace::Trace t = apps::run_jacobi2d(cfg);
  order::LogicalStructure ls =
      order::extract_structure(t, order::Options::charm());
  (void)ls;

  trace::Trace self = trace::self_trace();
  EXPECT_GT(self.num_events(), 0);
  auto problems = trace::validate(self);
  EXPECT_TRUE(problems.empty()) << problems.front();

  order::LogicalStructure self_ls =
      order::extract_structure(self, order::Options::charm_no_reorder());
  EXPECT_GT(self_ls.num_phases(), 0);
  std::string art = vis::render_physical_ascii(self, self_ls);
  EXPECT_FALSE(art.empty());
  EXPECT_NE(art.find("find_phases"), std::string::npos);
}

#else  // LOGSTRUCT_OBS == 0

TEST(PipelineSpans, CompiledOut) {
  GTEST_SKIP() << "built with LOGSTRUCT_OBS=0: no instrumented call sites";
}

#endif  // LOGSTRUCT_OBS

}  // namespace
}  // namespace logstruct::obs
