#include "util/obs_flags.hpp"

#include <gtest/gtest.h>

#include <string>

#include "apps/jacobi2d.hpp"
#include "obs/json.hpp"
#include "obs/log.hpp"
#include "obs/obs.hpp"
#include "order/stepping.hpp"

namespace logstruct::util {
namespace {

TEST(ObsSidecar, JsonParsesAndCarriesStages) {
  obs::PipelineTracer::global().reset();

  apps::Jacobi2DConfig cfg;
  trace::Trace t = apps::run_jacobi2d(cfg);
  order::LogicalStructure ls =
      order::extract_structure(t, order::Options::charm());
  (void)ls;

  std::string doc = obs_sidecar_json("sidecar_test");
  obs::json::Value v;
  std::string err;
  ASSERT_TRUE(obs::json::parse(doc, v, &err)) << err;
  EXPECT_EQ(v.at("program").string, "sidecar_test");
  ASSERT_EQ(v.at("obs_compiled").kind, obs::json::Value::Kind::Bool);

#if LOGSTRUCT_OBS
  EXPECT_TRUE(v.at("obs_compiled").boolean);
  // One aggregate entry per pipeline stage, with a positive total.
  const obs::json::Value& stages = v.at("stages");
  ASSERT_TRUE(stages.is_object());
  for (const char* stage :
       {"order/initial", "order/infer_source_order",
        "order/enforce_leap_property", "order/enforce_chare_paths",
        "order/stepping", "trace/ingest"}) {
    ASSERT_TRUE(stages.has(stage)) << stage;
    EXPECT_EQ(stages.at(stage).at("count").as_int(), 1) << stage;
    EXPECT_GE(stages.at(stage).at("total_ns").as_int(), 0) << stage;
  }
  // The raw span array and metrics registry ride along.
  EXPECT_TRUE(v.at("spans").is_array());
  EXPECT_TRUE(v.at("metrics").at("counters").is_object());
#else
  EXPECT_FALSE(v.at("obs_compiled").boolean);
#endif
}

TEST(ObsFlags, DefineAndApply) {
  Flags flags;
  define_obs_flags(flags);
  EXPECT_TRUE(flags.defined("profile"));
  EXPECT_TRUE(flags.defined("obs-json"));
  EXPECT_TRUE(flags.defined("log-level"));

  std::string lvl = "--log-level=error";
  std::string prog = "prog";
  char* argv[] = {prog.data(), lvl.data()};
  ASSERT_TRUE(flags.parse(2, argv));
  obs::Level before = obs::Logger::global().min_level();
  apply_obs_flags(flags);
  EXPECT_EQ(obs::Logger::global().min_level(), obs::Level::Error);
  obs::Logger::global().set_min_level(before);
}

}  // namespace
}  // namespace logstruct::util
