#include "util/obs_flags.hpp"

#include <gtest/gtest.h>

#include <string>

#include "apps/jacobi2d.hpp"
#include "obs/json.hpp"
#include "obs/log.hpp"
#include "obs/obs.hpp"
#include "order/stepping.hpp"
#include "util/thread_pool.hpp"

namespace logstruct::util {
namespace {

TEST(ObsSidecar, JsonParsesAndCarriesStages) {
  obs::PipelineTracer::global().reset();

  apps::Jacobi2DConfig cfg;
  trace::Trace t = apps::run_jacobi2d(cfg);
  order::LogicalStructure ls =
      order::extract_structure(t, order::Options::charm());
  (void)ls;

  std::string doc = obs_sidecar_json("sidecar_test");
  obs::json::Value v;
  std::string err;
  ASSERT_TRUE(obs::json::parse(doc, v, &err)) << err;
  EXPECT_EQ(v.at("program").string, "sidecar_test");
  EXPECT_EQ(v.at("schema").string, "logstruct-obs-sidecar/v4");
  ASSERT_EQ(v.at("obs_compiled").kind, obs::json::Value::Kind::Bool);
  // v2 run-level memory accounting fields always exist (0 off-Linux).
  EXPECT_GE(v.at("peak_rss_kb").as_int(), 0);
  EXPECT_GE(v.at("current_rss_kb").as_int(), 0);
  ASSERT_EQ(v.at("alloc_hook").kind, obs::json::Value::Kind::Bool);
  // v3 recovery accounting: present on every sidecar, zero for the
  // clean pipeline exercised here.
  ASSERT_TRUE(v.has("recovery"));
  EXPECT_EQ(v.at("recovery").at("total").as_int(), 0);
  ASSERT_TRUE(v.at("recovery").at("counters").is_object());
  // v4 live-telemetry blocks: the sampler time series (empty when the
  // sampler never ran) and the flight-recorder reference.
  ASSERT_TRUE(v.has("sampler"));
  EXPECT_GE(v.at("sampler").at("period_ms").as_int(), 0);
  EXPECT_GT(v.at("sampler").at("capacity").as_int(), 0);
  EXPECT_GE(v.at("sampler").at("total").as_int(), 0);
  ASSERT_TRUE(v.at("sampler").at("samples").is_array());
  ASSERT_TRUE(v.has("flight_recorder"));
  ASSERT_EQ(v.at("flight_recorder").at("armed").kind,
            obs::json::Value::Kind::Bool);
  EXPECT_GT(v.at("flight_recorder").at("ring_capacity").as_int(), 0);
  EXPECT_GE(v.at("flight_recorder").at("ring_dropped").as_int(), 0);

#if LOGSTRUCT_OBS
  EXPECT_TRUE(v.at("obs_compiled").boolean);
#if defined(__linux__)
  EXPECT_GT(v.at("peak_rss_kb").as_int(), 0);
#endif
  // One aggregate entry per pipeline stage, with a positive total and
  // the v2 self-time / allocation columns.
  const obs::json::Value& stages = v.at("stages");
  ASSERT_TRUE(stages.is_object());
  for (const char* stage :
       {"order/initial", "order/infer_source_order",
        "order/enforce_leap_property", "order/enforce_chare_paths",
        "order/stepping", "trace/ingest"}) {
    ASSERT_TRUE(stages.has(stage)) << stage;
    EXPECT_EQ(stages.at(stage).at("count").as_int(), 1) << stage;
    EXPECT_GE(stages.at(stage).at("total_ns").as_int(), 0) << stage;
    EXPECT_GE(stages.at(stage).at("self_ns").as_int(), 0) << stage;
    EXPECT_LE(stages.at(stage).at("self_ns").as_int(),
              stages.at(stage).at("total_ns").as_int())
        << stage;
    ASSERT_TRUE(stages.at(stage).has("alloc_bytes")) << stage;
  }
  // The raw span array and metrics registry ride along, and every
  // order/* pass span carries the memory-accounting attributes.
  ASSERT_TRUE(v.at("spans").is_array());
  int order_spans = 0;
  for (const obs::json::Value& s : v.at("spans").array) {
    if (s.at("name").string.rfind("order/", 0) != 0) continue;
    ++order_spans;
    ASSERT_TRUE(s.at("attrs").has("alloc_bytes")) << s.at("name").string;
    ASSERT_TRUE(s.at("attrs").has("rss_peak_kb")) << s.at("name").string;
#if defined(__linux__)
    EXPECT_GT(s.at("attrs").at("rss_peak_kb").as_int(), 0)
        << s.at("name").string;
#endif
  }
  EXPECT_GT(order_spans, 0);
  EXPECT_TRUE(v.at("metrics").at("counters").is_object());
#else
  EXPECT_FALSE(v.at("obs_compiled").boolean);
#endif
}

TEST(ObsSidecar, ChromeTraceFromPipelineRunLoads) {
  obs::PipelineTracer::global().reset();

  apps::Jacobi2DConfig cfg;
  trace::Trace t = apps::run_jacobi2d(cfg);
  order::LogicalStructure ls =
      order::extract_structure(t, order::Options::charm());
  (void)ls;

  std::string doc = obs_chrome_json("sidecar_test");
  obs::json::Value v;
  std::string err;
  ASSERT_TRUE(obs::json::parse(doc, v, &err)) << err;
  EXPECT_EQ(v.at("displayTimeUnit").string, "ms");
  ASSERT_TRUE(v.at("traceEvents").is_array());

#if LOGSTRUCT_OBS
  // A real pipeline run yields complete (ph:X) span events for the
  // order passes; durations must be non-negative microseconds.
  int complete = 0;
  for (const obs::json::Value& e : v.at("traceEvents").array) {
    if (e.at("ph").string != "X") continue;
    ++complete;
    EXPECT_GE(e.at("dur").number, 0.0);
    EXPECT_TRUE(e.has("ts"));
    EXPECT_TRUE(e.has("tid"));
  }
  EXPECT_GT(complete, 0);
#endif
}

TEST(ObsFlags, DefineAndApply) {
  Flags flags;
  define_obs_flags(flags);
  EXPECT_TRUE(flags.defined("profile"));
  EXPECT_TRUE(flags.defined("obs-json"));
  EXPECT_TRUE(flags.defined("log-level"));
  EXPECT_TRUE(flags.defined("threads"));

  std::string lvl = "--log-level=error";
  std::string thr = "--threads=3";
  std::string prog = "prog";
  char* argv[] = {prog.data(), lvl.data(), thr.data()};
  ASSERT_TRUE(flags.parse(3, argv));
  obs::Level before = obs::Logger::global().min_level();
  const int prev_threads = default_parallelism();
  apply_obs_flags(flags);
  EXPECT_EQ(obs::Logger::global().min_level(), obs::Level::Error);
  // --threads reaches every stage that defaults to the process-wide
  // parallelism (trace freezing, Options::threads == 0 pipelines).
  EXPECT_EQ(default_parallelism(), 3);
  set_default_parallelism(prev_threads);
  obs::Logger::global().set_min_level(before);
}

TEST(ObsFlags, ThreadsZeroMeansHardware) {
  Flags flags;
  define_obs_flags(flags);
  std::string thr = "--threads=0";
  std::string prog = "prog";
  char* argv[] = {prog.data(), thr.data()};
  ASSERT_TRUE(flags.parse(2, argv));
  const int prev = default_parallelism();
  apply_obs_flags(flags);
  EXPECT_EQ(default_parallelism(), ThreadPool::hardware_threads());
  set_default_parallelism(prev);
}

}  // namespace
}  // namespace logstruct::util
