#include "obs/export_chrome.hpp"

#include <gtest/gtest.h>

#include <set>
#include <string>
#include <vector>

#include "obs/json.hpp"
#include "obs/pipeline.hpp"
#include "obs/registry.hpp"

namespace logstruct::obs {
namespace {

// Build a private tracer/registry snapshot with a known shape: a parent
// span with a nested child plus an attribute, and one counter + gauge.
std::vector<Span> make_spans() {
  PipelineTracer tracer;
  SpanId outer = tracer.begin("order/extract_structure");
  SpanId inner = tracer.begin("order/initial");
  tracer.attr(inner, "partitions", 42);
  tracer.end(inner);
  tracer.end(outer);
  SpanId open = tracer.begin("order/stepping");
  (void)open;  // deliberately left open
  return tracer.snapshot();
}

RegistrySnapshot make_metrics() {
  RegistrySnapshot snap;
  snap.counters.emplace_back("order/merges", 7);
  snap.gauges.emplace_back("trace/dep_table_bytes", 4096);
  return snap;
}

TEST(ChromeTrace, DocumentShapeAndRequiredEventKeys) {
  std::string doc = chrome_trace_json(make_spans(), make_metrics(), "prog");

  json::Value v;
  std::string err;
  ASSERT_TRUE(json::parse(doc, v, &err)) << err;
  EXPECT_EQ(v.at("displayTimeUnit").string, "ms");
  const json::Value& events = v.at("traceEvents");
  ASSERT_TRUE(events.is_array());
  ASSERT_FALSE(events.array.empty());

  // Every event carries the keys Perfetto/chrome://tracing require.
  for (const json::Value& e : events.array) {
    EXPECT_TRUE(e.has("name"));
    EXPECT_TRUE(e.has("ph"));
    EXPECT_TRUE(e.has("pid"));
    EXPECT_TRUE(e.has("tid"));
    const std::string& ph = e.at("ph").string;
    if (ph == "X") {
      EXPECT_TRUE(e.has("ts"));
      EXPECT_TRUE(e.has("dur"));
    } else if (ph == "B" || ph == "C") {
      EXPECT_TRUE(e.has("ts"));
    }
  }
}

TEST(ChromeTrace, EmitsCompleteOpenCounterAndMetadataEvents) {
  std::string doc = chrome_trace_json(make_spans(), make_metrics(), "prog");
  json::Value v;
  ASSERT_TRUE(json::parse(doc, v));

  std::set<std::string> phases;
  bool saw_process_name = false, saw_counter_value = false;
  bool saw_span_attr = false;
  for (const json::Value& e : v.at("traceEvents").array) {
    const std::string& ph = e.at("ph").string;
    phases.insert(ph);
    if (ph == "M" && e.at("name").string == "process_name") {
      EXPECT_EQ(e.at("args").at("name").string, "prog");
      saw_process_name = true;
    }
    if (ph == "C" && e.at("name").string == "order/merges") {
      EXPECT_EQ(e.at("args").at("value").as_int(), 7);
      saw_counter_value = true;
    }
    if (ph == "X" && e.at("name").string == "order/initial") {
      EXPECT_EQ(e.at("args").at("partitions").as_int(), 42);
      // Memory accounting attributes ride along on every closed span.
      EXPECT_TRUE(e.at("args").has("alloc_bytes"));
      EXPECT_TRUE(e.at("args").has("rss_peak_kb"));
      saw_span_attr = true;
    }
  }
  // Closed spans → X, the open one → B, metrics → C, names → M.
  EXPECT_TRUE(phases.count("X"));
  EXPECT_TRUE(phases.count("B"));
  EXPECT_TRUE(phases.count("C"));
  EXPECT_TRUE(phases.count("M"));
  EXPECT_TRUE(saw_process_name);
  EXPECT_TRUE(saw_counter_value);
  EXPECT_TRUE(saw_span_attr);
}

TEST(ChromeTrace, GaugesBecomeCounterTracks) {
  std::string doc = chrome_trace_json({}, make_metrics(), "prog");
  json::Value v;
  ASSERT_TRUE(json::parse(doc, v));
  bool saw_gauge = false;
  for (const json::Value& e : v.at("traceEvents").array) {
    if (e.at("ph").string == "C" &&
        e.at("name").string == "trace/dep_table_bytes") {
      EXPECT_EQ(e.at("args").at("value").as_int(), 4096);
      saw_gauge = true;
    }
  }
  EXPECT_TRUE(saw_gauge);
}

TEST(ChromeTrace, EmptyInputsStillProduceValidDocument) {
  std::string doc = chrome_trace_json({}, {}, "prog");
  json::Value v;
  std::string err;
  ASSERT_TRUE(json::parse(doc, v, &err)) << err;
  ASSERT_TRUE(v.at("traceEvents").is_array());
  // Only the process_name metadata event remains.
  for (const json::Value& e : v.at("traceEvents").array)
    EXPECT_EQ(e.at("ph").string, "M");
}

}  // namespace
}  // namespace logstruct::obs
