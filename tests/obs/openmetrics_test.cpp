#include "obs/openmetrics.hpp"

#include <gtest/gtest.h>

#include <string>

#include "obs/progress.hpp"
#include "obs/registry.hpp"

namespace logstruct::obs {
namespace {

bool contains(const std::string& text, const std::string& needle) {
  return text.find(needle) != std::string::npos;
}

TEST(OpenMetrics, FamilyNameSanitization) {
  EXPECT_EQ(detail::openmetrics_family("trace/ingest"),
            "logstruct_trace_ingest");
  EXPECT_EQ(detail::openmetrics_family("a.b-c d"), "logstruct_a_b_c_d");
  // [a-zA-Z0-9_:] pass through untouched.
  EXPECT_EQ(detail::openmetrics_family("Ab9_:x"), "logstruct_Ab9_:x");
}

TEST(OpenMetrics, LabelEscaping) {
  EXPECT_EQ(detail::openmetrics_escape_label("plain"), "plain");
  EXPECT_EQ(detail::openmetrics_escape_label("a\\b"), "a\\\\b");
  EXPECT_EQ(detail::openmetrics_escape_label("say \"hi\""),
            "say \\\"hi\\\"");
  EXPECT_EQ(detail::openmetrics_escape_label("line\nbreak"),
            "line\\nbreak");
}

TEST(OpenMetrics, CounterAndGaugeExposition) {
  Registry reg;
  reg.counter("trace/ingest/events").add(42);
  reg.gauge("order/context/arena_hwm_bytes").set(1024);
  const std::string text = openmetrics_text(reg);

  EXPECT_TRUE(contains(
      text, "# TYPE logstruct_trace_ingest_events counter"));
  EXPECT_TRUE(contains(
      text, "# HELP logstruct_trace_ingest_events"));
  // Counters get the _total sample suffix and the original path label.
  EXPECT_TRUE(contains(
      text,
      "logstruct_trace_ingest_events_total"
      "{path=\"trace/ingest/events\"} 42"));
  EXPECT_TRUE(contains(
      text, "# TYPE logstruct_order_context_arena_hwm_bytes gauge"));
  EXPECT_TRUE(contains(
      text,
      "logstruct_order_context_arena_hwm_bytes"
      "{path=\"order/context/arena_hwm_bytes\"} 1024"));
  // OpenMetrics documents terminate with exactly one EOF line.
  ASSERT_GE(text.size(), 6u);
  EXPECT_EQ(text.substr(text.size() - 6), "# EOF\n");
  EXPECT_EQ(text.find("# EOF"), text.rfind("# EOF"));
}

TEST(OpenMetrics, HistogramCumulativeBuckets) {
  Registry reg;
  Histogram& h = reg.histogram("lat");
  h.record(0);    // bucket 0  -> le="0"
  h.record(1);    // bucket 1  -> le="1"
  h.record(100);  // bucket 7  -> le="127"
  const std::string text = openmetrics_text(reg);

  EXPECT_TRUE(contains(text, "# TYPE logstruct_lat histogram"));
  EXPECT_TRUE(contains(text,
                       "logstruct_lat_bucket{path=\"lat\",le=\"0\"} 1"));
  EXPECT_TRUE(contains(text,
                       "logstruct_lat_bucket{path=\"lat\",le=\"1\"} 2"));
  // Cumulative: every bucket between stays at 2 ...
  EXPECT_TRUE(contains(
      text, "logstruct_lat_bucket{path=\"lat\",le=\"63\"} 2"));
  // ... until the bucket holding 100, after which +Inf closes at 3.
  EXPECT_TRUE(contains(
      text, "logstruct_lat_bucket{path=\"lat\",le=\"127\"} 3"));
  EXPECT_TRUE(contains(
      text, "logstruct_lat_bucket{path=\"lat\",le=\"+Inf\"} 3"));
  EXPECT_TRUE(contains(text, "logstruct_lat_count{path=\"lat\"} 3"));
  EXPECT_TRUE(contains(text, "logstruct_lat_sum{path=\"lat\"} 101"));
  // Empty buckets past the last occupied one are not emitted.
  EXPECT_FALSE(contains(text, "le=\"255\""));
}

TEST(OpenMetrics, PathLabelCarriesEscapedOriginal) {
  Registry reg;
  reg.gauge("weird \"name\"\npath").set(7);
  const std::string text = openmetrics_text(reg);
  EXPECT_TRUE(contains(
      text, "{path=\"weird \\\"name\\\"\\npath\"} 7"));
}

TEST(OpenMetrics, CollidingPathsGetDistinctFamilies) {
  Registry reg;
  reg.counter("a/b").add(1);
  reg.counter("a.b").add(2);  // sanitizes to the same family name
  const std::string text = openmetrics_text(reg);
  EXPECT_TRUE(contains(text, "# TYPE logstruct_a_b counter"));
  EXPECT_TRUE(contains(text, "# TYPE logstruct_a_b_2 counter"));
  // Each family keeps exactly one TYPE line.
  const std::size_t first = text.find("# TYPE logstruct_a_b counter");
  EXPECT_EQ(text.find("# TYPE logstruct_a_b counter", first + 1),
            std::string::npos);
}

TEST(OpenMetrics, GlobalOverloadNamesOpenPass) {
  {
    Progress prog("openmetrics/test_pass", 4);
    Progress::tick(2);
    const std::string text = openmetrics_text();
    EXPECT_TRUE(contains(text, "pass=\"openmetrics/test_pass\""));
    ASSERT_GE(text.size(), 6u);
    EXPECT_EQ(text.substr(text.size() - 6), "# EOF\n");
  }
  // With no pass open, the info line disappears.
  const std::string text = openmetrics_text();
  EXPECT_FALSE(contains(text, "pass=\"openmetrics/test_pass\""));
}

}  // namespace
}  // namespace logstruct::obs
