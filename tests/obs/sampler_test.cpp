#include "obs/sampler.hpp"

#include <gtest/gtest.h>

#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include "obs/json.hpp"
#include "obs/progress.hpp"
#include "obs/registry.hpp"

namespace logstruct::obs {
namespace {

TEST(Sampler, SampleNowCapturesVitalsAndProgress) {
  Sampler s;
  Registry::global().counter("trace/storage/cache/hits").add(0);
  {
    Progress prog("sampler/test_pass", 50);
    Progress::tick(20);
    s.sample_now();
  }
  const std::vector<Sample> samples = s.snapshot();
  ASSERT_EQ(samples.size(), 1u);
  EXPECT_GE(samples[0].t_ms, 0);
#if defined(__linux__)
  EXPECT_GT(samples[0].rss_kb, 0);
#endif
  EXPECT_EQ(samples[0].progress_done, 20);
  EXPECT_EQ(samples[0].progress_total, 50);
  EXPECT_GE(samples[0].cache_hits, 0);
  EXPECT_EQ(s.total_samples(), 1);
}

TEST(Sampler, RingOverwritesOldestAndStaysChronological) {
  Sampler s;
  s.set_capacity(4);
  for (int i = 0; i < 10; ++i) s.sample_now();
  const std::vector<Sample> samples = s.snapshot();
  ASSERT_EQ(samples.size(), 4u);
  EXPECT_EQ(s.total_samples(), 10);
  for (std::size_t i = 1; i < samples.size(); ++i)
    EXPECT_GE(samples[i].t_ms, samples[i - 1].t_ms);
}

TEST(Sampler, BackgroundThreadCollects) {
  Sampler s;
  EXPECT_FALSE(s.running());
  s.start(1);
  EXPECT_TRUE(s.running());
  EXPECT_EQ(s.period_ms(), 1);
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while (s.total_samples() < 3 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  s.stop();
  EXPECT_FALSE(s.running());
  EXPECT_GE(s.total_samples(), 3);
  const std::int64_t collected = s.total_samples();
  // Stopped sampler takes no further samples.
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  EXPECT_EQ(s.total_samples(), collected);
}

TEST(Sampler, ToJsonParsesAsSidecarBlock) {
  Sampler s;
  s.set_capacity(8);
  {
    Progress prog("sampler/json_pass", 9);
    Progress::tick(3);
    s.sample_now();
    s.sample_now();
  }
  json::Value v;
  std::string err;
  ASSERT_TRUE(json::parse(s.to_json(), v, &err)) << err;
  EXPECT_EQ(v.at("capacity").as_int(), 8);
  EXPECT_EQ(v.at("total").as_int(), 2);
  ASSERT_TRUE(v.at("samples").is_array());
  ASSERT_EQ(v.at("samples").array.size(), 2u);
  const json::Value& first = v.at("samples").array[0];
  for (const char* key :
       {"t_ms", "rss_kb", "alloc_bytes", "alloc_count", "cache_hits",
        "cache_misses", "cache_evictions", "cache_hit_rate_bp",
        "progress_done", "progress_total"}) {
    ASSERT_TRUE(first.has(key)) << key;
  }
  EXPECT_EQ(first.at("progress_done").as_int(), 3);
  EXPECT_EQ(first.at("progress_total").as_int(), 9);
}

TEST(Sampler, ResetDropsSeries) {
  Sampler s;
  s.sample_now();
  s.sample_now();
  s.reset();
  EXPECT_TRUE(s.snapshot().empty());
  EXPECT_EQ(s.total_samples(), 0);
}

}  // namespace
}  // namespace logstruct::obs
