#include "obs/memstats.hpp"

#include <gtest/gtest.h>

#include <cstddef>
#include <memory>
#include <thread>
#include <vector>

namespace logstruct::obs {
namespace {

TEST(MemStats, RssIsPositiveOnLinux) {
  MemStats m = read_mem_stats();
#if defined(__linux__)
  // Any running process has resident pages, and the high-water mark can
  // never be below the current residency. (No equality checks between
  // consecutive reads: RSS legitimately moves between them.)
  EXPECT_GT(m.current_rss_kb, 0);
  EXPECT_GE(m.peak_rss_kb, m.current_rss_kb);
  EXPECT_GT(current_rss_kb(), 0);
#else
  EXPECT_GE(m.current_rss_kb, 0);
  EXPECT_GE(m.peak_rss_kb, 0);
#endif
}

TEST(MemStats, PeakRssIsMonotonic) {
  std::int64_t before = peak_rss_kb();
  // Touch a few MB so the high-water mark cannot decrease even if the
  // allocator returns pages between reads.
  std::vector<char> ballast(8 << 20, 1);
  EXPECT_GE(peak_rss_kb(), before);
  EXPECT_GT(ballast[ballast.size() / 2], 0);
}

TEST(MemStats, AllocScopeMeasuresHeapAllocation) {
  if (!alloc_hook_active()) {
    GTEST_SKIP() << "counting operator new not linked "
                    "(LOGSTRUCT_ALLOC_HOOK=0 or LOGSTRUCT_OBS=0)";
  }
  constexpr std::size_t kBytes = 1 << 20;
  AllocScope scope;
  auto block = std::make_unique<char[]>(kBytes);
  block[0] = 1;
  AllocCounters d = scope.delta();
  // At least the block itself; gtest internals may add a little more.
  EXPECT_GE(d.bytes, static_cast<std::int64_t>(kBytes));
  EXPECT_GE(d.count, 1);
}

TEST(MemStats, CountersAreCumulativeAndMonotonic) {
  if (!alloc_hook_active()) GTEST_SKIP() << "alloc hook not linked";
  AllocCounters a = thread_allocs();
  std::vector<int> v(1000, 7);
  AllocCounters b = thread_allocs();
  EXPECT_GE(b.bytes, a.bytes + static_cast<std::int64_t>(1000 * sizeof(int)));
  EXPECT_GT(b.count, a.count);
  EXPECT_EQ(v[999], 7);
}

TEST(MemStats, CountersAreThreadLocal) {
  if (!alloc_hook_active()) GTEST_SKIP() << "alloc hook not linked";
  AllocScope scope;
  AllocCounters other{};
  std::thread worker([&other] {
    AllocScope inner;
    std::vector<char> big(4 << 20, 2);
    (void)big[0];
    other = inner.delta();
  });
  worker.join();
  // The worker saw its own 4MB; this thread's scope saw only whatever
  // std::thread bookkeeping allocated here — far below 4MB.
  EXPECT_GE(other.bytes, 4 << 20);
  EXPECT_LT(scope.delta().bytes, 1 << 20);
}

TEST(MemStats, NoopScopeReturnsZeros) {
  NoopAllocScope scope;
  AllocCounters d = scope.delta();
  EXPECT_EQ(d.bytes, 0);
  EXPECT_EQ(d.count, 0);
}

}  // namespace
}  // namespace logstruct::obs
