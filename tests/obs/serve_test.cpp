#include "obs/serve.hpp"

#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstring>
#include <string>
#include <thread>

#include "apps/jacobi2d.hpp"
#include "obs/json.hpp"
#include "obs/openmetrics.hpp"
#include "obs/sampler.hpp"
#include "order/stepping.hpp"

namespace logstruct::obs {
namespace {

/// Blocking loopback HTTP/1.1 request; returns the raw response (head +
/// body) or "" on connect/send failure.
std::string http_request(int port, const std::string& request) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return "";
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0) {
    ::close(fd);
    return "";
  }
  std::size_t sent = 0;
  while (sent < request.size()) {
    const ssize_t n =
        ::send(fd, request.data() + sent, request.size() - sent, 0);
    if (n <= 0) {
      ::close(fd);
      return "";
    }
    sent += static_cast<std::size_t>(n);
  }
  std::string out;
  char buf[4096];
  for (;;) {
    const ssize_t n = ::read(fd, buf, sizeof buf);
    if (n <= 0) break;
    out.append(buf, static_cast<std::size_t>(n));
  }
  ::close(fd);
  return out;
}

std::string http_get(int port, const std::string& path) {
  return http_request(port, "GET " + path +
                                " HTTP/1.1\r\nHost: 127.0.0.1\r\n"
                                "Connection: close\r\n\r\n");
}

std::string body_of(const std::string& response) {
  const std::size_t pos = response.find("\r\n\r\n");
  return pos == std::string::npos ? "" : response.substr(pos + 4);
}

TEST(MetricsServer, ServesMetricsHealthAndSpans) {
  MetricsServer server;
  ASSERT_TRUE(server.start(0));  // ephemeral port
  ASSERT_TRUE(server.running());
  const int port = server.port();
  ASSERT_GT(port, 0);

  const std::string health = http_get(port, "/healthz");
  EXPECT_NE(health.find("HTTP/1.1 200"), std::string::npos);
  EXPECT_EQ(body_of(health), "ok\n");

  const std::string metrics = http_get(port, "/metrics");
  EXPECT_NE(metrics.find("HTTP/1.1 200"), std::string::npos);
  EXPECT_NE(metrics.find("application/openmetrics-text"),
            std::string::npos);
  const std::string body = body_of(metrics);
  ASSERT_GE(body.size(), 6u);
  EXPECT_EQ(body.substr(body.size() - 6), "# EOF\n");
  // The exporter's own request counter is registered by the scrape.
  EXPECT_NE(http_get(port, "/metrics")
                .find("logstruct_obs_serve_requests_total"),
            std::string::npos);

  const std::string spans = http_get(port, "/spans");
  EXPECT_NE(spans.find("HTTP/1.1 200"), std::string::npos);
  json::Value v;
  std::string err;
  EXPECT_TRUE(json::parse(body_of(spans), v, &err)) << err;

  EXPECT_NE(http_get(port, "/nope").find("HTTP/1.1 404"),
            std::string::npos);
  EXPECT_NE(http_request(port,
                         "POST /metrics HTTP/1.1\r\n"
                         "Host: 127.0.0.1\r\nConnection: close\r\n\r\n")
                .find("HTTP/1.1 405"),
            std::string::npos);
  // Query strings are stripped before routing.
  EXPECT_NE(http_get(port, "/healthz?x=1").find("HTTP/1.1 200"),
            std::string::npos);

  server.stop();
  EXPECT_FALSE(server.running());
}

TEST(MetricsServer, StartIsIdempotentWhileRunning) {
  MetricsServer server;
  ASSERT_TRUE(server.start(0));
  const int port = server.port();
  EXPECT_TRUE(server.start(0));  // no-op, keeps the first binding
  EXPECT_EQ(server.port(), port);
  server.stop();
  server.stop();  // idempotent
}

// Live-telemetry race coverage (runs under TSan in CI): the sampler and
// the HTTP exporter run concurrently with a threads=4 extraction while
// a scraper thread polls /metrics. Every scrape must be a complete
// exposition document; nothing may tear or deadlock.
TEST(MetricsServer, LiveScrapeDuringParallelExtraction) {
  Sampler& sampler = Sampler::global();
  MetricsServer server;
  sampler.start(1);
  ASSERT_TRUE(server.start(0));
  const int port = server.port();

  std::atomic<bool> done{false};
  std::atomic<int> scrapes{0};
  std::atomic<int> bad{0};
  std::thread scraper([&] {
    while (!done.load(std::memory_order_relaxed)) {
      const std::string body = body_of(http_get(port, "/metrics"));
      if (body.size() < 6 || body.substr(body.size() - 6) != "# EOF\n") {
        bad.fetch_add(1, std::memory_order_relaxed);
      }
      scrapes.fetch_add(1, std::memory_order_relaxed);
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  });

  apps::Jacobi2DConfig cfg;
  cfg.iterations = 4;
  order::Options opts = order::Options::charm();
  opts.threads = 4;
  for (int i = 0; i < 6; ++i) {
    trace::Trace t = apps::run_jacobi2d(cfg);
    order::LogicalStructure ls = order::extract_structure(t, opts);
    (void)ls;
  }
  done.store(true, std::memory_order_relaxed);
  scraper.join();
  server.stop();
  sampler.stop();

  EXPECT_GT(scrapes.load(), 0);
  EXPECT_EQ(bad.load(), 0);
  EXPECT_GT(sampler.total_samples(), 0);
  // The final exposition state carries the progress gauges the passes
  // updated during extraction.
  const std::string text = openmetrics_text();
  EXPECT_NE(text.find("logstruct_obs_progress_done"), std::string::npos);
}

}  // namespace
}  // namespace logstruct::obs
