#include "obs/registry.hpp"

#include <gtest/gtest.h>

#include <limits>
#include <thread>
#include <vector>

#include "obs/json.hpp"
#include "obs/obs.hpp"

namespace logstruct::obs {
namespace {

TEST(Registry, CounterFindOrCreateAndAdd) {
  Registry reg;
  Counter& c = reg.counter("test/a");
  c.add(3);
  c.inc();
  EXPECT_EQ(c.value(), 4);
  // Same name yields the same object.
  EXPECT_EQ(&reg.counter("test/a"), &c);
  EXPECT_EQ(reg.counter("test/a").value(), 4);
}

TEST(Registry, GaugeSetAndAdd) {
  Registry reg;
  Gauge& g = reg.gauge("test/g");
  g.set(10);
  g.add(-3);
  EXPECT_EQ(g.value(), 7);
}

TEST(Registry, CountersAreConcurrencySafe) {
  Registry reg;
  Counter& c = reg.counter("test/mt");
  constexpr int kThreads = 8;
  constexpr int kPer = 10000;
  std::vector<std::thread> ts;
  ts.reserve(kThreads);
  for (int i = 0; i < kThreads; ++i)
    ts.emplace_back([&c] {
      for (int j = 0; j < kPer; ++j) c.inc();
    });
  for (auto& t : ts) t.join();
  EXPECT_EQ(c.value(), kThreads * kPer);
}

TEST(Registry, HistogramBucketsAndStats) {
  Registry reg;
  Histogram& h = reg.histogram("test/h");
  EXPECT_EQ(h.count(), 0);
  EXPECT_EQ(h.approx_quantile(0.5), 0);

  h.record(0);
  h.record(1);
  h.record(2);
  h.record(3);
  h.record(1000);
  EXPECT_EQ(h.count(), 5);
  EXPECT_EQ(h.sum(), 1006);
  EXPECT_EQ(h.min(), 0);
  EXPECT_EQ(h.max(), 1000);
  // Buckets: {0}->b0, [1,2)->b1, [2,4)->b2 (two samples), 1000->b10.
  EXPECT_EQ(h.bucket(0), 1);
  EXPECT_EQ(h.bucket(1), 1);
  EXPECT_EQ(h.bucket(2), 2);
  EXPECT_EQ(h.bucket(10), 1);
  // Median lands in bucket 2 (upper bound 3); the top quantile lands in
  // the [512,1024) bucket.
  EXPECT_EQ(h.approx_quantile(0.5), 3);
  EXPECT_EQ(h.approx_quantile(1.0), 1023);
}

TEST(Registry, HistogramClampsNegativeSamples) {
  Registry reg;
  Histogram& h = reg.histogram("test/neg");
  h.record(-5);
  EXPECT_EQ(h.count(), 1);
  EXPECT_EQ(h.bucket(0), 1);
  EXPECT_EQ(h.min(), -5);  // min/max keep the raw value
}

TEST(Registry, ResetZeroesButKeepsObjects) {
  Registry reg;
  Counter& c = reg.counter("test/r");
  Histogram& h = reg.histogram("test/rh");
  c.add(5);
  h.record(7);
  reg.reset();
  // The cached references survive and read zero.
  EXPECT_EQ(c.value(), 0);
  EXPECT_EQ(h.count(), 0);
  EXPECT_EQ(h.min(), std::numeric_limits<std::int64_t>::max());
  c.inc();
  EXPECT_EQ(reg.counter("test/r").value(), 1);
}

TEST(Registry, SnapshotListsEverything) {
  Registry reg;
  reg.counter("c/one").add(1);
  reg.gauge("g/one").set(2);
  reg.histogram("h/one").record(3);
  RegistrySnapshot snap = reg.snapshot();
  ASSERT_EQ(snap.counters.size(), 1u);
  EXPECT_EQ(snap.counters[0].first, "c/one");
  EXPECT_EQ(snap.counters[0].second, 1);
  ASSERT_EQ(snap.gauges.size(), 1u);
  EXPECT_EQ(snap.gauges[0].second, 2);
  ASSERT_EQ(snap.histograms.size(), 1u);
  EXPECT_EQ(snap.histograms[0].name, "h/one");
  EXPECT_EQ(snap.histograms[0].count, 1);
  EXPECT_EQ(snap.histograms[0].sum, 3);
}

TEST(Registry, JsonExportParsesBack) {
  Registry reg;
  reg.counter("c/n").add(42);
  reg.gauge("g/n").set(-7);
  reg.histogram("h/n").record(100);
  json::Value doc;
  std::string err;
  ASSERT_TRUE(json::parse(reg.to_json(), doc, &err)) << err;
  EXPECT_EQ(doc.at("counters").at("c/n").as_int(), 42);
  EXPECT_EQ(doc.at("gauges").at("g/n").as_int(), -7);
  EXPECT_EQ(doc.at("histograms").at("h/n").at("count").as_int(), 1);
  EXPECT_EQ(doc.at("histograms").at("h/n").at("sum").as_int(), 100);
}

TEST(Registry, ScopedTimerRecordsIntoGlobal) {
  // The ScopedTimer class (unlike the OBS_SCOPED_TIMER macro) is plain
  // runtime API and works in both LOGSTRUCT_OBS configurations. It always
  // targets the global registry.
  Registry& reg = Registry::global();
  const std::int64_t before = reg.histogram("test/scoped_timer").count();
  {
    ScopedTimer timer("test/scoped_timer");
  }
  EXPECT_EQ(reg.histogram("test/scoped_timer").count(), before + 1);
}

TEST(Registry, MacrosUpdateGlobal) {
  Registry& reg = Registry::global();
  const std::int64_t before = reg.counter("test/macro_counter").value();
  OBS_COUNTER_ADD("test/macro_counter", 2);
  OBS_COUNTER_INC("test/macro_counter");
  OBS_GAUGE_SET("test/macro_gauge", 9);
  OBS_HISTOGRAM_RECORD("test/macro_hist", 5);
#if LOGSTRUCT_OBS
  EXPECT_EQ(reg.counter("test/macro_counter").value(), before + 3);
  EXPECT_EQ(reg.gauge("test/macro_gauge").value(), 9);
  EXPECT_GE(reg.histogram("test/macro_hist").count(), 1);
#else
  EXPECT_EQ(reg.counter("test/macro_counter").value(), before);
#endif
}

}  // namespace
}  // namespace logstruct::obs
