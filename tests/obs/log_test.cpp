#include "obs/log.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

namespace logstruct::obs {
namespace {

struct Capture {
  std::vector<std::string> lines;
  std::vector<Level> levels;

  void attach(Logger& logger) {
    logger.set_sink([this](Level level, const std::string& line) {
      levels.push_back(level);
      lines.push_back(line);
    });
  }
};

TEST(Log, FormatsLevelComponentMessageAndFields) {
  Logger logger;
  Capture cap;
  cap.attach(logger);
  logger.log(Level::Warn, "order/validate", "problems found",
             {{"problems", std::int64_t{3}},
              {"first", "recv 7 not strictly after its send 6"},
              {"ok", false}});
  ASSERT_EQ(cap.lines.size(), 1u);
  EXPECT_EQ(cap.levels[0], Level::Warn);
  EXPECT_EQ(cap.lines[0],
            "[warn] order/validate: problems found problems=3 "
            "first=\"recv 7 not strictly after its send 6\" ok=false");
}

TEST(Log, MinLevelFiltersBelow) {
  Logger logger;
  Capture cap;
  cap.attach(logger);
  EXPECT_EQ(logger.min_level(), Level::Info);  // default
  logger.log(Level::Debug, "c", "dropped");
  logger.log(Level::Info, "c", "kept");
  logger.set_min_level(Level::Error);
  logger.log(Level::Warn, "c", "dropped too");
  logger.log(Level::Error, "c", "kept too");
  ASSERT_EQ(cap.lines.size(), 2u);
  EXPECT_NE(cap.lines[0].find("kept"), std::string::npos);
  EXPECT_NE(cap.lines[1].find("kept too"), std::string::npos);
}

TEST(Log, RateLimitSuppressesWithinWindow) {
  Logger logger;
  Capture cap;
  cap.attach(logger);
  std::int64_t now = 0;
  logger.set_clock_for_test([&now] { return now; });
  logger.set_rate_limit(2, 1000);  // 2 lines per 1000ns window

  for (int i = 0; i < 5; ++i) logger.log(Level::Info, "c", "spam");
  EXPECT_EQ(cap.lines.size(), 2u);
  EXPECT_EQ(logger.total_suppressed(), 3);

  // A different (component, message) key is limited independently.
  logger.log(Level::Info, "c", "other");
  EXPECT_EQ(cap.lines.size(), 3u);

  // Next window: lines flow again and the first carries suppressed=N.
  now = 2000;
  logger.log(Level::Info, "c", "spam");
  ASSERT_EQ(cap.lines.size(), 4u);
  EXPECT_NE(cap.lines[3].find("suppressed=3"), std::string::npos);

  // The annotation is a one-shot: the next line in the window is clean.
  logger.log(Level::Info, "c", "spam");
  ASSERT_EQ(cap.lines.size(), 5u);
  EXPECT_EQ(cap.lines[4].find("suppressed="), std::string::npos);
}

TEST(Log, RateLimitExactUnderConcurrency) {
  Logger logger;
  std::mutex mu;
  std::vector<std::string> lines;
  logger.set_sink([&](Level, const std::string& line) {
    std::lock_guard<std::mutex> lock(mu);
    lines.push_back(line);
  });
  std::atomic<std::int64_t> now{0};
  logger.set_clock_for_test([&now] { return now.load(); });
  logger.set_rate_limit(1, 1000);  // one line per key per window

  constexpr int kThreads = 8;
  constexpr int kLogsPerThread = 200;
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&logger] {
      for (int i = 0; i < kLogsPerThread; ++i)
        logger.log(Level::Info, "order/merge", "hammered");
    });
  }
  for (std::thread& w : workers) w.join();

  // Exactly one line escaped the window; every other call was counted.
  constexpr std::int64_t kTotal = std::int64_t{kThreads} * kLogsPerThread;
  EXPECT_EQ(lines.size(), 1u);
  EXPECT_EQ(logger.total_suppressed(), kTotal - 1);

  // The first line of the next window carries the exact suppression
  // count as one accounting line — no drops go missing, none double.
  now = 2000;
  logger.log(Level::Info, "order/merge", "hammered");
  ASSERT_EQ(lines.size(), 2u);
  EXPECT_NE(lines[1].find("suppressed=" + std::to_string(kTotal - 1)),
            std::string::npos);

  // One-shot: a further line in the new window is clean.
  logger.log(Level::Info, "order/merge", "hammered");
  (void)lines;  // lines[2] was suppressed (limit 1), so size stays 2
  EXPECT_EQ(lines.size(), 2u);
  EXPECT_EQ(logger.total_suppressed(), kTotal);
}

TEST(Log, RateLimitDisabledByNonPositiveLimit) {
  Logger logger;
  Capture cap;
  cap.attach(logger);
  std::int64_t now = 0;
  logger.set_clock_for_test([&now] { return now; });
  logger.set_rate_limit(0, 1000);
  for (int i = 0; i < 50; ++i) logger.log(Level::Info, "c", "m");
  EXPECT_EQ(cap.lines.size(), 50u);
  EXPECT_EQ(logger.total_suppressed(), 0);
}

TEST(Log, QuotesOnlyWhenNeeded) {
  Logger logger;
  Capture cap;
  cap.attach(logger);
  logger.log(Level::Info, "c", "m",
             {{"bare", "simple_token-1.5"}, {"quoted", "has space"}});
  ASSERT_EQ(cap.lines.size(), 1u);
  EXPECT_NE(cap.lines[0].find("bare=simple_token-1.5"), std::string::npos);
  EXPECT_NE(cap.lines[0].find("quoted=\"has space\""), std::string::npos);
}

TEST(Log, GlobalHelperRoutesThroughGlobalLogger) {
  Capture cap;
  cap.attach(Logger::global());
  log(Level::Error, "test/global", "hello", {{"n", std::int64_t{1}}});
  // Restore the default sink before asserting, so a failure message does
  // not recurse into the capture.
  Logger::global().set_sink({});
  ASSERT_EQ(cap.lines.size(), 1u);
  EXPECT_NE(cap.lines[0].find("test/global"), std::string::npos);
}

}  // namespace
}  // namespace logstruct::obs
