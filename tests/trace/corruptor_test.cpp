/// Unit tests for the deterministic TraceCorruptor: same (seed, fault)
/// always produces the same bytes, different seeds differ, every fault
/// class actually mutates, and the CorruptionSummary accounts for what
/// was done. Determinism here is what makes the CI fuzz matrix and the
/// property tests replayable from a (fault, seed) pair alone.

#include "trace/corruptor.hpp"

#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "apps/jacobi2d.hpp"
#include "trace/io.hpp"

namespace logstruct::trace {
namespace {

std::string golden_text() {
  apps::Jacobi2DConfig cfg;
  cfg.chares_x = 4;
  cfg.chares_y = 4;
  cfg.num_pes = 4;
  cfg.iterations = 2;
  std::ostringstream os;
  write_trace(apps::run_jacobi2d(cfg), os);
  return os.str();
}

std::string first_line(const std::string& s) {
  return s.substr(0, s.find('\n'));
}

TEST(Corruptor, FaultKindNamesRoundTrip) {
  for (int k = 0; k < kNumFaultKinds; ++k) {
    const auto kind = static_cast<FaultKind>(k);
    FaultKind back;
    ASSERT_TRUE(parse_fault_kind(fault_kind_name(kind), &back))
        << fault_kind_name(kind);
    EXPECT_EQ(back, kind);
  }
  FaultKind out;
  EXPECT_FALSE(parse_fault_kind("not_a_fault", &out));
}

TEST(Corruptor, SameSeedSameBytes) {
  const std::string text = golden_text();
  for (int k = 0; k < kNumFaultKinds; ++k) {
    const auto kind = static_cast<FaultKind>(k);
    TraceCorruptor a(42), b(42);
    EXPECT_EQ(a.corrupt(text, kind), b.corrupt(text, kind))
        << fault_kind_name(kind);
  }
}

TEST(Corruptor, DifferentSeedsDiffer) {
  const std::string text = golden_text();
  TraceCorruptor a(1), b(2);
  EXPECT_NE(a.corrupt(text, FaultKind::DropLines),
            b.corrupt(text, FaultKind::DropLines));
}

TEST(Corruptor, SequentialCallsUseDistinctStreams) {
  // One corruptor reused across calls must not replay identical damage.
  const std::string text = golden_text();
  TraceCorruptor c(7);
  EXPECT_NE(c.corrupt(text, FaultKind::FlipBytes),
            c.corrupt(text, FaultKind::FlipBytes));
}

TEST(Corruptor, EveryFaultMutatesAndIsAccounted) {
  // Text kinds only: the Lsblk* kinds are no-ops on trace text (they
  // need a binary container image; see storage_fault_test.cpp).
  const std::string text = golden_text();
  for (int k = 0; k < kNumTextFaultKinds; ++k) {
    const auto kind = static_cast<FaultKind>(k);
    TraceCorruptor c(11);
    CorruptionSummary s;
    const std::string damaged = c.corrupt(text, kind, &s);
    EXPECT_NE(damaged, text) << fault_kind_name(kind);
    EXPECT_EQ(s.kind, kind);
    EXPECT_GT(s.total(), 0) << fault_kind_name(kind);
  }
}

TEST(Corruptor, LineFaultsPreserveHeaderAndFooter) {
  const std::string text = golden_text();
  const std::string header = first_line(text);
  for (FaultKind kind : {FaultKind::DropLines, FaultKind::DuplicateLines,
                         FaultKind::PerturbTimestamps}) {
    TraceCorruptor c(5);
    const std::string damaged = c.corrupt(text, kind);
    EXPECT_EQ(first_line(damaged), header) << fault_kind_name(kind);
    EXPECT_NE(damaged.find("\nend"), std::string::npos)
        << fault_kind_name(kind);
  }
}

TEST(Corruptor, TruncationAlwaysLosesTheEndMarker) {
  const std::string text = golden_text();
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    TraceCorruptor c(seed);
    CorruptionSummary s;
    const std::string damaged =
        c.corrupt(text, FaultKind::TruncateTail, &s);
    EXPECT_LT(damaged.size(), text.size());
    EXPECT_GT(s.bytes_truncated, 0);
    // The final "end" line must be gone — that is what makes truncation
    // always detectable by the recovering reader.
    EXPECT_FALSE(damaged.size() >= 5 &&
                 damaged.compare(damaged.size() - 5, 5, "\nend\n") == 0)
        << "seed " << seed;
  }
}

TEST(Corruptor, DropAccountingMatchesLineCount) {
  const std::string text = golden_text();
  TraceCorruptor c(3);
  CorruptionSummary s;
  const std::string damaged = c.corrupt(text, FaultKind::DropLines, &s);
  auto count_lines = [](const std::string& t) {
    std::int64_t n = 0;
    for (char ch : t)
      if (ch == '\n') ++n;
    return n;
  };
  EXPECT_EQ(count_lines(text) - count_lines(damaged), s.lines_dropped);
  EXPECT_GT(s.lines_dropped, 0);
}

TEST(Corruptor, TinyInputsAreSafe) {
  // Degenerate inputs must not crash or hang, whatever the fault.
  for (const char* input :
       {"", "x", "lstrace 1\n", "lstrace 1\nend\n"}) {
    const std::string text(input);
    for (int k = 0; k < kNumFaultKinds; ++k) {
      TraceCorruptor c(9);
      (void)c.corrupt(text, static_cast<FaultKind>(k));
    }
  }
}

}  // namespace
}  // namespace logstruct::trace
