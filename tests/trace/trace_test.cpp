#include "trace/trace.hpp"

#include <gtest/gtest.h>

#include "trace_fixtures.hpp"

namespace logstruct::trace {
namespace {

TEST(Trace, BlocksOfChareSortedByBegin) {
  auto m = testing::make_mini_trace();
  auto blocks = m.trace.blocks_of_chare(m.a);
  ASSERT_EQ(blocks.size(), 2u);
  EXPECT_EQ(blocks[0], m.a0);
  EXPECT_EQ(blocks[1], m.a1);
}

TEST(Trace, BlocksOfProc) {
  auto m = testing::make_mini_trace();
  auto p0 = m.trace.blocks_of_proc(0);
  ASSERT_EQ(p0.size(), 3u);  // a0, a1, r0
  EXPECT_EQ(p0[0], m.a0);
  EXPECT_EQ(p0[1], m.a1);
  EXPECT_EQ(p0[2], m.r0);
  EXPECT_EQ(m.trace.blocks_of_proc(1).size(), 1u);
}

TEST(Trace, EventsOfChareTimeOrdered) {
  auto m = testing::make_mini_trace();
  auto events = m.trace.events_of_chare(m.a);
  ASSERT_EQ(events.size(), 3u);
  EXPECT_EQ(events[0], m.s_ab);
  EXPECT_EQ(events[1], m.s_ar);
  EXPECT_EQ(events[2], m.r_ba);
}

TEST(Trace, RuntimeEventClassification) {
  auto m = testing::make_mini_trace();
  // Send to the reduction manager touches the runtime.
  EXPECT_TRUE(m.trace.is_runtime_event(m.s_ar));
  EXPECT_TRUE(m.trace.is_runtime_event(m.r_ar));
  // Pure app-app dependency does not.
  EXPECT_FALSE(m.trace.is_runtime_event(m.s_ab));
  EXPECT_FALSE(m.trace.is_runtime_event(m.r_ab));
  EXPECT_FALSE(m.trace.is_runtime_event(m.r_ba));
}

TEST(Trace, ForEachDependencyEnumeratesAllMatches) {
  auto m = testing::make_mini_trace();
  std::vector<std::pair<EventId, EventId>> deps;
  m.trace.for_each_dependency(
      [&](EventId s, EventId r) { deps.emplace_back(s, r); });
  ASSERT_EQ(deps.size(), 3u);
  EXPECT_EQ(deps[0], (std::pair<EventId, EventId>{m.s_ab, m.r_ab}));
  EXPECT_EQ(deps[1], (std::pair<EventId, EventId>{m.s_ar, m.r_ar}));
  EXPECT_EQ(deps[2], (std::pair<EventId, EventId>{m.s_ba, m.r_ba}));
}

TEST(Trace, TotalIdle) {
  auto m = testing::make_mini_trace();
  EXPECT_EQ(m.trace.total_idle(0), 20);
  EXPECT_EQ(m.trace.total_idle(1), 0);
}

TEST(Trace, EndTime) {
  auto m = testing::make_mini_trace();
  EXPECT_EQ(m.trace.end_time(), 170);
}

TEST(Trace, EmptyTraceQueries) {
  TraceBuilder tb;
  Trace t = tb.finish(0);
  EXPECT_EQ(t.num_events(), 0);
  EXPECT_EQ(t.num_blocks(), 0);
  EXPECT_EQ(t.end_time(), 0);
}

}  // namespace
}  // namespace logstruct::trace
