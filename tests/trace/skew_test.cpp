#include "trace/skew.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "trace_fixtures.hpp"

namespace logstruct::trace {
namespace {

TEST(Skew, ShiftsOnlyTargetProc) {
  auto m = testing::make_mini_trace();
  std::vector<TimeNs> delta{0, 1000};
  Trace skewed = apply_clock_skew(m.trace, delta);

  // Proc-0 events unchanged.
  EXPECT_EQ(skewed.event(m.s_ab).time, m.trace.event(m.s_ab).time);
  // Proc-1 events shifted.
  EXPECT_EQ(skewed.event(m.r_ab).time, m.trace.event(m.r_ab).time + 1000);
  EXPECT_EQ(skewed.block(m.b0).begin, m.trace.block(m.b0).begin + 1000);
}

TEST(Skew, ShiftsIdleSpans) {
  auto m = testing::make_mini_trace();
  std::vector<TimeNs> delta{500, 0};
  Trace skewed = apply_clock_skew(m.trace, delta);
  ASSERT_EQ(skewed.idles().size(), 1u);
  EXPECT_EQ(skewed.idles()[0].begin, 600);
  EXPECT_EQ(skewed.idles()[0].end, 620);
}

TEST(Skew, ZeroSkewIsIdentity) {
  auto m = testing::make_mini_trace();
  std::vector<TimeNs> delta{0, 0};
  Trace skewed = apply_clock_skew(m.trace, delta);
  for (EventId e = 0; e < m.trace.num_events(); ++e)
    EXPECT_EQ(skewed.event(e).time, m.trace.event(e).time);
}

TEST(Skew, NegativeSkewCanReorderAcrossProcs) {
  auto m = testing::make_mini_trace();
  // Shift proc 1 far ahead: recv on proc 1 now appears before the send.
  std::vector<TimeNs> delta{0, -25};
  Trace skewed = apply_clock_skew(m.trace, delta);
  EXPECT_LT(skewed.event(m.r_ab).time, skewed.event(m.s_ab).time);
}

TEST(Skew, StructureUnchanged) {
  auto m = testing::make_mini_trace();
  std::vector<TimeNs> delta{100, -100};
  Trace skewed = apply_clock_skew(m.trace, delta);
  EXPECT_EQ(skewed.num_events(), m.trace.num_events());
  EXPECT_EQ(skewed.num_blocks(), m.trace.num_blocks());
  EXPECT_EQ(skewed.event(m.r_ab).partner, m.s_ab);
}

}  // namespace
}  // namespace logstruct::trace
