#include "trace/builder.hpp"

#include <gtest/gtest.h>

#include "trace_fixtures.hpp"

namespace logstruct::trace {
namespace {

TEST(Builder, MiniTraceShape) {
  auto m = testing::make_mini_trace();
  EXPECT_EQ(m.trace.num_events(), 6);
  EXPECT_EQ(m.trace.num_blocks(), 4);
  EXPECT_EQ(m.trace.num_chares(), 3);
  EXPECT_EQ(m.trace.num_procs(), 2);
  EXPECT_EQ(m.trace.idles().size(), 1u);
}

TEST(Builder, PartnerMatching) {
  auto m = testing::make_mini_trace();
  EXPECT_EQ(m.trace.event(m.s_ab).partner, m.r_ab);
  EXPECT_EQ(m.trace.event(m.r_ab).partner, m.s_ab);
  EXPECT_EQ(m.trace.event(m.s_ba).partner, m.r_ba);
}

TEST(Builder, TriggerIsFirstRecv) {
  auto m = testing::make_mini_trace();
  EXPECT_EQ(m.trace.block(m.b0).trigger, m.r_ab);
  EXPECT_EQ(m.trace.block(m.a0).trigger, kNone);  // bootstrap block
}

TEST(Builder, BroadcastFanout) {
  TraceBuilder tb;
  ChareId c0 = tb.add_chare("c0");
  ChareId c1 = tb.add_chare("c1");
  ChareId c2 = tb.add_chare("c2");
  EntryId e = tb.add_entry("go");
  BlockId src = tb.begin_block(c0, 0, e, 0);
  EventId s = tb.add_send(src, 1);
  tb.end_block(src, 2);
  BlockId d1 = tb.begin_block(c1, 0, e, 10);
  EventId r1 = tb.add_recv(d1, 10, s);
  tb.end_block(d1, 11);
  BlockId d2 = tb.begin_block(c2, 1, e, 12);
  EventId r2 = tb.add_recv(d2, 12, s);
  tb.end_block(d2, 13);
  Trace t = tb.finish(2);

  EXPECT_EQ(t.event(s).partner, r1);
  auto extra = t.fanout(s);
  ASSERT_EQ(extra.size(), 1u);
  EXPECT_EQ(extra[0], r2);
  auto all = t.receivers(s);
  ASSERT_EQ(all.size(), 2u);
  EXPECT_EQ(all[0], r1);
  EXPECT_EQ(all[1], r2);
}

TEST(Builder, UntracedRecvKeepsNonePartner) {
  TraceBuilder tb;
  ChareId c = tb.add_chare("c");
  EntryId e = tb.add_entry("go");
  BlockId b = tb.begin_block(c, 0, e, 0);
  EventId r = tb.add_recv(b, 0, kNone);
  tb.end_block(b, 5);
  Trace t = tb.finish(1);
  EXPECT_EQ(t.event(r).partner, kNone);
}

TEST(Builder, CollectiveMembers) {
  TraceBuilder tb;
  ChareId c0 = tb.add_chare("r0");
  ChareId c1 = tb.add_chare("r1");
  EntryId e = tb.add_entry("allreduce");
  CollectiveId coll = tb.begin_collective();
  BlockId b0 = tb.begin_block(c0, 0, e, 0);
  EventId s0 = tb.add_collective_send(coll, b0, 0);
  EventId r0 = tb.add_collective_recv(coll, b0, 5);
  tb.end_block(b0, 5);
  BlockId b1 = tb.begin_block(c1, 1, e, 1);
  EventId s1 = tb.add_collective_send(coll, b1, 1);
  EventId r1 = tb.add_collective_recv(coll, b1, 5);
  tb.end_block(b1, 5);
  Trace t = tb.finish(2);

  ASSERT_EQ(t.collectives().size(), 1u);
  EXPECT_EQ(t.collectives()[0].sends, (std::vector<EventId>{s0, s1}));
  EXPECT_EQ(t.collectives()[0].recvs, (std::vector<EventId>{r0, r1}));

  int deps = 0;
  t.for_each_dependency([&](EventId, EventId) { ++deps; });
  EXPECT_EQ(deps, 4);  // 2 sends x 2 recvs
}

TEST(BuilderDeathTest, EventInClosedBlockAborts) {
  TraceBuilder tb;
  ChareId c = tb.add_chare("c");
  EntryId e = tb.add_entry("go");
  BlockId b = tb.begin_block(c, 0, e, 0);
  tb.end_block(b, 5);
  EXPECT_DEATH(tb.add_send(b, 6), "closed");
}

TEST(BuilderDeathTest, FinishWithOpenBlockAborts) {
  TraceBuilder tb;
  ChareId c = tb.add_chare("c");
  EntryId e = tb.add_entry("go");
  tb.begin_block(c, 0, e, 0);
  EXPECT_DEATH(tb.finish(1), "open serial block");
}

TEST(Builder, MultipleRecvsFirstBecomesTrigger) {
  TraceBuilder tb;
  ChareId c = tb.add_chare("c");
  EntryId e = tb.add_entry("go");
  BlockId b = tb.begin_block(c, 0, e, 0);
  EventId r1 = tb.add_recv(b, 0, kNone);
  EventId r2 = tb.add_recv(b, 1, kNone);
  tb.end_block(b, 5);
  Trace t = tb.finish(1);
  EXPECT_EQ(t.block(b).trigger, r1);
  EXPECT_EQ(t.events_of_block(b).size(), 2u);
  (void)r2;
}

TEST(Builder, ZeroLengthIdleDropped) {
  TraceBuilder tb;
  tb.add_chare("c");
  tb.add_idle(0, 5, 5);
  tb.add_idle(0, 7, 6);
  Trace t = tb.finish(1);
  EXPECT_TRUE(t.idles().empty());
}

}  // namespace
}  // namespace logstruct::trace
