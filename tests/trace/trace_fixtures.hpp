#pragma once

/// Shared hand-built traces for trace-layer tests.

#include "trace/builder.hpp"
#include "trace/trace.hpp"

namespace logstruct::trace::testing {

/// Two app chares on two procs exchanging one message each way, plus one
/// runtime chare receiving a contribution, plus an idle span.
///
/// Timeline (ns):
///   chare A (proc 0): block a0 [0,100]   : send@10 (to B), send@20 (to R)
///   chare B (proc 1): block b0 [30,90]   : recv@30 (from A), send@40 (to A)
///   chare A (proc 0): block a1 [120,150] : recv@120 (from B)
///   chare R (proc 0): block r0 [160,170] : recv@160 (from A's send@20)
///   idle proc 0: [100,120]
struct MiniTrace {
  Trace trace;
  ChareId a, b, r;
  EntryId e_main, e_work, e_reduce;
  BlockId a0, b0, a1, r0;
  EventId s_ab, s_ar, r_ab, s_ba, r_ba, r_ar;
};

inline MiniTrace make_mini_trace() {
  MiniTrace m;
  TraceBuilder tb;
  ArrayId arr = tb.add_array("workers");
  m.a = tb.add_chare("workers[0]", arr, 0, 0);
  m.b = tb.add_chare("workers[1]", arr, 1, 1);
  m.r = tb.add_chare("CkReductionMgr(0)", kNone, -1, 0, /*runtime=*/true);
  m.e_main = tb.add_entry("main");
  m.e_work = tb.add_entry("work");
  m.e_reduce = tb.add_entry("reduce", /*runtime=*/true);

  m.a0 = tb.begin_block(m.a, 0, m.e_main, 0);
  m.s_ab = tb.add_send(m.a0, 10);
  m.s_ar = tb.add_send(m.a0, 20);
  tb.end_block(m.a0, 100);

  m.b0 = tb.begin_block(m.b, 1, m.e_work, 30);
  m.r_ab = tb.add_recv(m.b0, 30, m.s_ab);
  m.s_ba = tb.add_send(m.b0, 40);
  tb.end_block(m.b0, 90);

  m.a1 = tb.begin_block(m.a, 0, m.e_work, 120);
  m.r_ba = tb.add_recv(m.a1, 120, m.s_ba);
  tb.end_block(m.a1, 150);

  m.r0 = tb.begin_block(m.r, 0, m.e_reduce, 160);
  m.r_ar = tb.add_recv(m.r0, 160, m.s_ar);
  tb.end_block(m.r0, 170);

  tb.add_idle(0, 100, 120);

  m.trace = tb.finish(/*num_procs=*/2);
  return m;
}

}  // namespace logstruct::trace::testing
