#include "trace/validate.hpp"

#include <gtest/gtest.h>

#include "trace/builder.hpp"
#include "trace_fixtures.hpp"

namespace logstruct::trace {
namespace {

TEST(Validate, MiniTraceIsClean) {
  auto m = testing::make_mini_trace();
  auto problems = validate(m.trace);
  EXPECT_TRUE(problems.empty()) << problems.front();
}

TEST(Validate, DetectsOverlappingBlocksOnProc) {
  TraceBuilder tb;
  ChareId c0 = tb.add_chare("c0");
  ChareId c1 = tb.add_chare("c1");
  EntryId e = tb.add_entry("go");
  BlockId b0 = tb.begin_block(c0, 0, e, 0);
  tb.end_block(b0, 50);
  BlockId b1 = tb.begin_block(c1, 0, e, 25);  // overlaps b0 on proc 0
  tb.end_block(b1, 75);
  Trace t = tb.finish(1);
  auto problems = validate(t);
  ASSERT_FALSE(problems.empty());
  EXPECT_NE(problems[0].find("overlap"), std::string::npos);
}

TEST(Validate, AcceptsBackToBackBlocks) {
  TraceBuilder tb;
  ChareId c = tb.add_chare("c");
  EntryId e = tb.add_entry("go");
  BlockId b0 = tb.begin_block(c, 0, e, 0);
  tb.end_block(b0, 50);
  BlockId b1 = tb.begin_block(c, 0, e, 50);  // touching is fine
  tb.end_block(b1, 60);
  Trace t = tb.finish(1);
  EXPECT_TRUE(validate(t).empty());
}

TEST(Validate, DetectsRecvBeforeSend) {
  // Build a legal trace then corrupt the send time via round-trip-free
  // construction: send at t=100, recv at t=10 with blocks arranged to allow
  // it structurally.
  TraceBuilder tb;
  ChareId c0 = tb.add_chare("c0");
  ChareId c1 = tb.add_chare("c1");
  EntryId e = tb.add_entry("go");
  BlockId bsend = tb.begin_block(c0, 0, e, 50);
  EventId s = tb.add_send(bsend, 100);
  tb.end_block(bsend, 150);
  BlockId brecv = tb.begin_block(c1, 1, e, 10);
  tb.add_recv(brecv, 10, s);
  tb.end_block(brecv, 20);
  Trace t = tb.finish(2);
  auto problems = validate(t);
  bool found = false;
  for (const auto& p : problems)
    if (p.find("before its send") != std::string::npos) found = true;
  EXPECT_TRUE(found);
}

TEST(Validate, CleanBroadcast) {
  TraceBuilder tb;
  ChareId c0 = tb.add_chare("c0");
  ChareId c1 = tb.add_chare("c1");
  ChareId c2 = tb.add_chare("c2");
  EntryId e = tb.add_entry("go");
  BlockId src = tb.begin_block(c0, 0, e, 0);
  EventId s = tb.add_send(src, 1);
  tb.end_block(src, 2);
  BlockId d1 = tb.begin_block(c1, 1, e, 10);
  tb.add_recv(d1, 10, s);
  tb.end_block(d1, 11);
  BlockId d2 = tb.begin_block(c2, 2, e, 12);
  tb.add_recv(d2, 12, s);
  tb.end_block(d2, 13);
  Trace t = tb.finish(3);
  EXPECT_TRUE(validate(t).empty());
}

TEST(Validate, UntracedRecvIsClean) {
  TraceBuilder tb;
  ChareId c = tb.add_chare("c");
  EntryId e = tb.add_entry("go");
  BlockId b = tb.begin_block(c, 0, e, 0);
  tb.add_recv(b, 0, kNone);
  tb.end_block(b, 5);
  Trace t = tb.finish(1);
  EXPECT_TRUE(validate(t).empty());
}

}  // namespace
}  // namespace logstruct::trace
