#include "trace/sdag.hpp"

#include <gtest/gtest.h>

#include "trace/builder.hpp"

namespace logstruct::trace {
namespace {

// A chare that runs: serial_0 [0,10], recvResult [20,25], serial_1 [25,40]
// where serial_1 has `when recvResult`. The recvResult block is contiguous
// with serial_1 and must be absorbed.
struct SdagTrace {
  Trace trace;
  ChareId c;
  EntryId e_when, e_s0, e_s1;
  BlockId b_s0, b_when, b_s1;
};

SdagTrace make_sdag_trace() {
  SdagTrace m;
  TraceBuilder tb;
  m.c = tb.add_chare("c");
  m.e_when = tb.add_entry("recvResult");
  m.e_s0 = tb.add_entry("serial_0", false, 0);
  m.e_s1 = tb.add_entry("serial_1", false, 1, {m.e_when});

  m.b_s0 = tb.begin_block(m.c, 0, m.e_s0, 0);
  tb.add_send(m.b_s0, 5);
  tb.end_block(m.b_s0, 10);

  m.b_when = tb.begin_block(m.c, 0, m.e_when, 20);
  tb.add_recv(m.b_when, 20, kNone);
  tb.end_block(m.b_when, 25);

  m.b_s1 = tb.begin_block(m.c, 0, m.e_s1, 25);
  tb.add_send(m.b_s1, 30);
  tb.end_block(m.b_s1, 40);

  m.trace = tb.finish(1);
  return m;
}

TEST(Sdag, WhenBlockAbsorbedIntoSerial) {
  auto m = make_sdag_trace();
  auto rep = compute_sdag_absorption(m.trace);
  EXPECT_EQ(rep[static_cast<std::size_t>(m.b_when)], m.b_s1);
  EXPECT_EQ(rep[static_cast<std::size_t>(m.b_s0)], m.b_s0);
  EXPECT_EQ(rep[static_cast<std::size_t>(m.b_s1)], m.b_s1);
}

TEST(Sdag, NonContiguousWhenNotAbsorbed) {
  TraceBuilder tb;
  ChareId c = tb.add_chare("c");
  EntryId e_when = tb.add_entry("recvResult");
  EntryId e_s1 = tb.add_entry("serial_1", false, 1, {e_when});
  BlockId b_when = tb.begin_block(c, 0, e_when, 0);
  tb.add_recv(b_when, 0, kNone);
  tb.end_block(b_when, 5);
  BlockId b_s1 = tb.begin_block(c, 0, e_s1, 50);  // gap: scheduler ran others
  tb.end_block(b_s1, 60);
  Trace t = tb.finish(1);
  auto rep = compute_sdag_absorption(t);
  EXPECT_EQ(rep[static_cast<std::size_t>(b_when)], b_when);
}

TEST(Sdag, DifferentProcNotAbsorbed) {
  TraceBuilder tb;
  ChareId c = tb.add_chare("c");
  EntryId e_when = tb.add_entry("recvResult");
  EntryId e_s1 = tb.add_entry("serial_1", false, 1, {e_when});
  BlockId b_when = tb.begin_block(c, 0, e_when, 0);
  tb.end_block(b_when, 5);
  BlockId b_s1 = tb.begin_block(c, 1, e_s1, 5);  // migrated between blocks
  tb.end_block(b_s1, 10);
  Trace t = tb.finish(2);
  auto rep = compute_sdag_absorption(t);
  EXPECT_EQ(rep[static_cast<std::size_t>(b_when)], b_when);
}

TEST(Sdag, HappenedBeforeLinksAdjacentSerials) {
  auto m = make_sdag_trace();
  auto hb = sdag_happened_before(m.trace);
  ASSERT_EQ(hb.size(), 1u);
  EXPECT_EQ(hb[0].first, m.b_s0);
  EXPECT_EQ(hb[0].second, m.b_s1);
}

TEST(Sdag, HappenedBeforeNearestInstanceOnly) {
  // serial_0, serial_1, serial_0, serial_1: each 0 links to the next 1,
  // never across a new instance of serial_0.
  TraceBuilder tb;
  ChareId c = tb.add_chare("c");
  EntryId s0 = tb.add_entry("serial_0", false, 0);
  EntryId s1 = tb.add_entry("serial_1", false, 1);
  BlockId a = tb.begin_block(c, 0, s0, 0);
  tb.end_block(a, 1);
  BlockId b = tb.begin_block(c, 0, s1, 2);
  tb.end_block(b, 3);
  BlockId d = tb.begin_block(c, 0, s0, 4);
  tb.end_block(d, 5);
  BlockId e = tb.begin_block(c, 0, s1, 6);
  tb.end_block(e, 7);
  Trace t = tb.finish(1);
  auto hb = sdag_happened_before(t);
  ASSERT_EQ(hb.size(), 2u);
  EXPECT_EQ(hb[0], (std::pair<BlockId, BlockId>{a, b}));
  EXPECT_EQ(hb[1], (std::pair<BlockId, BlockId>{d, e}));
}

TEST(Sdag, NoSerialsNoEdges) {
  TraceBuilder tb;
  ChareId c = tb.add_chare("c");
  EntryId e = tb.add_entry("plain");
  BlockId b = tb.begin_block(c, 0, e, 0);
  tb.end_block(b, 1);
  Trace t = tb.finish(1);
  EXPECT_TRUE(sdag_happened_before(t).empty());
  auto rep = compute_sdag_absorption(t);
  EXPECT_EQ(rep[0], b);
}

TEST(Sdag, NonConsecutiveSerialNumbersNotLinked) {
  TraceBuilder tb;
  ChareId c = tb.add_chare("c");
  EntryId s0 = tb.add_entry("serial_0", false, 0);
  EntryId s2 = tb.add_entry("serial_2", false, 2);
  BlockId a = tb.begin_block(c, 0, s0, 0);
  tb.end_block(a, 1);
  BlockId b = tb.begin_block(c, 0, s2, 2);
  tb.end_block(b, 3);
  Trace t = tb.finish(1);
  EXPECT_TRUE(sdag_happened_before(t).empty());
}

}  // namespace
}  // namespace logstruct::trace
