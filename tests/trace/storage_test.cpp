/// Unit tests for the out-of-core storage layer: the .lsblk container
/// (BlockStoreWriter/BlockStore), the global block cache, the external
/// sorter, the blocked Trace backend's equivalence with the mem backend,
/// and a concurrent-reader hammer (the TSan job runs it under
/// -fsanitize=thread with a tiny cache, so every shard lock and pin
/// path gets exercised under real contention).

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <random>
#include <thread>
#include <vector>

#include <unistd.h>

#include "trace/builder.hpp"
#include "trace/storage/block_cache.hpp"
#include "trace/storage/block_store.hpp"
#include "trace/storage/blocked_trace.hpp"
#include "trace/storage/column.hpp"
#include "trace/storage/extsort.hpp"
#include "trace/storage/options.hpp"
#include "trace_fixtures.hpp"

namespace logstruct::trace::storage {
namespace {

std::string temp_path(const char* tag) {
  return ::testing::TempDir() + "ls_storage_" + tag + "_" +
         std::to_string(::getpid()) + ".lsblk";
}

/// Interleaved multi-column writes survive the round trip, with the
/// 4 KiB block floor forcing every column across many blocks.
TEST(BlockStore, MultiColumnRoundTrip) {
  const std::string path = temp_path("roundtrip");
  std::vector<std::int32_t> a(5000);
  std::vector<std::int64_t> b(3000);
  for (std::size_t i = 0; i < a.size(); ++i)
    a[i] = static_cast<std::int32_t>(i * 7);
  for (std::size_t i = 0; i < b.size(); ++i)
    b[i] = static_cast<std::int64_t>(i) * -3;
  {
    BlockStoreWriter w(path, 4096);
    w.set_elem_bytes(ColumnId::Events, 4);
    w.set_elem_bytes(ColumnId::Blocks, 8);
    // Interleave appends in uneven slices.
    std::size_t ia = 0, ib = 0;
    while (ia < a.size() || ib < b.size()) {
      std::size_t na = std::min<std::size_t>(700, a.size() - ia);
      if (na > 0) w.append(ColumnId::Events, a.data() + ia, na * 4);
      ia += na;
      std::size_t nb = std::min<std::size_t>(333, b.size() - ib);
      if (nb > 0) w.append(ColumnId::Blocks, b.data() + ib, nb * 8);
      ib += nb;
    }
    w.finish("meta-blob");
  }
  BlockStore store(path);
  EXPECT_EQ(store.metadata(), "meta-blob");
  EXPECT_EQ(store.column_bytes(ColumnId::Events), a.size() * 4);
  EXPECT_EQ(store.column_bytes(ColumnId::Blocks), b.size() * 8);
  EXPECT_GT(store.num_blocks(ColumnId::Events), 2u);

  BlockedColumn<std::int32_t> ca(&store, ColumnId::Events);
  BlockedColumn<std::int64_t> cb(&store, ColumnId::Blocks);
  ASSERT_EQ(ca.size(), a.size());
  ASSERT_EQ(cb.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) ASSERT_EQ(ca.get(i), a[i]);
  for (std::size_t i = 0; i < b.size(); ++i) ASSERT_EQ(cb.get(i), b[i]);
  std::remove(path.c_str());
}

/// pin() must serve spans that cross block boundaries (copying) and
/// spans inside one block (aliasing the cached buffer) identically.
TEST(BlockStore, PinAcrossBlockBoundary) {
  const std::string path = temp_path("pin");
  std::vector<std::int32_t> vals(4000);
  for (std::size_t i = 0; i < vals.size(); ++i)
    vals[i] = static_cast<std::int32_t>(i);
  {
    BlockStoreWriter w(path, 4096);  // 1024 i32 per block
    w.set_elem_bytes(ColumnId::Events, 4);
    w.append(ColumnId::Events, vals.data(), vals.size() * 4);
    w.finish("");
  }
  BlockStore store(path);
  BlockedColumn<std::int32_t> col(&store, ColumnId::Events);
  // Straddles the 1024-element block boundary.
  PinnedSpan<std::int32_t> span = col.pin(1000, 1100);
  ASSERT_EQ(span.size(), 100u);
  for (std::size_t i = 0; i < span.size(); ++i)
    EXPECT_EQ(span[i], static_cast<std::int32_t>(1000 + i));
  // Entirely inside one block.
  PinnedSpan<std::int32_t> inner = col.pin(10, 20);
  for (std::size_t i = 0; i < inner.size(); ++i)
    EXPECT_EQ(inner[i], static_cast<std::int32_t>(10 + i));
  // Chunked iteration covers everything exactly once, in order.
  std::size_t seen = 0;
  col.for_each_chunk([&](const std::int32_t* p, std::size_t n,
                         std::size_t base) {
    EXPECT_EQ(base, seen);
    for (std::size_t i = 0; i < n; ++i)
      EXPECT_EQ(p[i], static_cast<std::int32_t>(base + i));
    seen += n;
  });
  EXPECT_EQ(seen, vals.size());
  std::remove(path.c_str());
}

/// A tiny budget forces evictions, the counters record them, and a
/// pinned span stays valid after its block is evicted (the shared_ptr
/// is the pin).
TEST(BlockCacheTest, EvictionStatsAndPinSafety) {
  const std::string path = temp_path("cache");
  std::vector<std::int32_t> vals(64 * 1024);  // 256 KiB = 64 blocks
  for (std::size_t i = 0; i < vals.size(); ++i)
    vals[i] = static_cast<std::int32_t>(i * 13);
  {
    BlockStoreWriter w(path, 4096);
    w.set_elem_bytes(ColumnId::Events, 4);
    w.append(ColumnId::Events, vals.data(), vals.size() * 4);
    w.finish("");
  }
  StorageOptions tiny = default_options();
  tiny.cache_bytes = 16 * 4096;  // 16 of 64 blocks fit
  ScopedStorageOptions scope(tiny);

  BlockStore store(path);
  BlockedColumn<std::int32_t> col(&store, ColumnId::Events);
  BlockCache::global().reset_stats();

  PinnedSpan<std::int32_t> pinned = col.pin(0, 1024);  // block 0
  // Sweep everything twice: the second pass re-misses what was evicted.
  std::int64_t sum = 0;
  for (int pass = 0; pass < 2; ++pass)
    for (std::size_t i = 0; i < vals.size(); i += 512)
      sum += col.get(i);
  BlockCache::Stats stats = BlockCache::global().stats();
  EXPECT_GT(stats.misses, 0u);
  EXPECT_GT(stats.hits, 0u);
  EXPECT_GT(stats.evictions, 0u);
  EXPECT_NE(sum, 0);
  // The pinned buffer must still read correctly even though block 0 was
  // evicted from the cache long ago.
  for (std::size_t i = 0; i < pinned.size(); ++i)
    ASSERT_EQ(pinned[i], static_cast<std::int32_t>(i * 13));
  std::remove(path.c_str());
}

/// Spilling sorter: more records than one run buffer holds, emitted
/// fully sorted with nothing lost (checksum preserved).
TEST(ExternalSorterTest, SpillsAndMergesSorted) {
  struct Rec {
    std::uint64_t key;
    std::uint64_t payload;
  };
  struct Less {
    bool operator()(const Rec& a, const Rec& b) const {
      return a.key < b.key;
    }
  };
  // Run buffer floor is 1024 records; 50k records -> ~49 spilled runs.
  ExternalSorter<Rec, Less> sorter(1, /*threads=*/2);
  std::mt19937_64 rng(42);
  std::uint64_t checksum = 0;
  const std::size_t n = 50000;
  for (std::size_t i = 0; i < n; ++i) {
    Rec r{rng(), i};
    checksum ^= r.key;
    sorter.push(r);
  }
  ASSERT_EQ(sorter.size(), n);
  std::uint64_t prev = 0, out_checksum = 0;
  std::size_t count = 0;
  sorter.finish([&](const Rec& r) {
    if (count > 0) {
      EXPECT_GE(r.key, prev);
    }
    prev = r.key;
    out_checksum ^= r.key;
    ++count;
  });
  EXPECT_EQ(count, n);
  EXPECT_EQ(out_checksum, checksum);
}

/// The same builder calls frozen under both backends yield the same
/// structure hash and the same accessor-level views.
TEST(BlockedBackend, MatchesMemBackend) {
  testing::MiniTrace mem = testing::make_mini_trace();
  const std::uint64_t mem_hash = trace_structure_hash(mem.trace);

  StorageOptions opts = default_options();
  opts.kind = BackendKind::Blocked;
  opts.block_bytes = 4096;
  ScopedStorageOptions scope(opts);
  testing::MiniTrace blk = testing::make_mini_trace();

  ASSERT_EQ(blk.trace.storage_backend(), BackendKind::Blocked);
  EXPECT_EQ(trace_structure_hash(blk.trace), mem_hash);
  EXPECT_EQ(blk.trace.num_events(), mem.trace.num_events());
  EXPECT_EQ(blk.trace.end_time(), mem.trace.end_time());
  EXPECT_EQ(blk.trace.total_idle(0), mem.trace.total_idle(0));
  for (EventId e = 0; e < mem.trace.num_events(); ++e) {
    Event em = mem.trace.event(e);
    Event eb = blk.trace.event(e);
    EXPECT_EQ(em.time, eb.time);
    EXPECT_EQ(em.partner, eb.partner);
    EXPECT_EQ(em.block, eb.block);
  }
  auto rm = mem.trace.receivers(mem.s_ab);
  auto rb = blk.trace.receivers(blk.s_ab);
  ASSERT_EQ(rm.size(), rb.size());
  for (std::size_t i = 0; i < rm.size(); ++i) EXPECT_EQ(rm[i], rb[i]);
}

/// write_blocked_file + open_blocked_trace round-trips the hash, from a
/// mem-backend source (the trace_convert tool's core path).
TEST(BlockedBackend, FileRoundTrip) {
  testing::MiniTrace m = testing::make_mini_trace();
  const std::string path = temp_path("file");
  write_blocked_file(m.trace, path, 4096);
  Trace back = open_blocked_trace(path);
  EXPECT_EQ(back.storage_backend(), BackendKind::Blocked);
  EXPECT_EQ(trace_structure_hash(back), trace_structure_hash(m.trace));
  EXPECT_EQ(back.num_events(), m.trace.num_events());
  EXPECT_EQ(back.chare(m.a).name, m.trace.chare(m.a).name);
  std::remove(path.c_str());
}

/// Copies of a blocked Trace share the store; the copy stays readable
/// after the original dies.
TEST(BlockedBackend, CopyOutlivesOriginal) {
  StorageOptions opts = default_options();
  opts.kind = BackendKind::Blocked;
  ScopedStorageOptions scope(opts);
  Trace copy;
  std::uint64_t hash = 0;
  {
    testing::MiniTrace m = testing::make_mini_trace();
    hash = trace_structure_hash(m.trace);
    copy = m.trace;
  }
  EXPECT_EQ(trace_structure_hash(copy), hash);
}

/// Concurrent readers over one blocked trace with a tiny cache: every
/// thread hashes the full trace through get()/pin()/iteration paths and
/// must agree. Run under TSan in the blocked-storage CI job.
TEST(BlockedBackend, ConcurrentReaderHammer) {
  // A synthetic chain big enough to span many 4 KiB blocks.
  TraceBuilder tb;
  ChareId c0 = tb.add_chare("c0");
  ChareId c1 = tb.add_chare("c1");
  EntryId en = tb.add_entry("step");
  const int kRounds = 3000;
  EventId prev_send = kNone;
  for (int i = 0; i < kRounds; ++i) {
    ChareId c = (i % 2 == 0) ? c0 : c1;
    ProcId p = (i % 2 == 0) ? 0 : 1;
    BlockId b = tb.begin_block(c, p, en, i * 10);
    if (prev_send != kNone) tb.add_recv(b, i * 10, prev_send);
    prev_send = tb.add_send(b, i * 10 + 5);
    tb.end_block(b, i * 10 + 9);
  }

  StorageOptions opts = default_options();
  opts.kind = BackendKind::Blocked;
  opts.block_bytes = 4096;
  opts.cache_bytes = 8 * 4096;  // tiny: constant eviction under load
  ScopedStorageOptions scope(opts);
  Trace t = tb.finish(/*num_procs=*/2);
  ASSERT_EQ(t.storage_backend(), BackendKind::Blocked);

  const std::uint64_t expected = trace_structure_hash(t);
  std::vector<std::uint64_t> results(4, 0);
  std::vector<std::thread> threads;
  threads.reserve(results.size());
  for (std::size_t ti = 0; ti < results.size(); ++ti) {
    threads.emplace_back([&, ti] {
      std::uint64_t h = 0;
      for (int iter = 0; iter < 3; ++iter) {
        h ^= trace_structure_hash(t);
        // Random-access path on top of the sequential hash walk. Same
        // seed on every thread, so all threads must compute the same h.
        std::mt19937 rng(static_cast<unsigned>(iter));
        for (int k = 0; k < 500; ++k) {
          EventId e = static_cast<EventId>(rng() %
                                           static_cast<unsigned>(
                                               t.num_events()));
          h ^= static_cast<std::uint64_t>(t.event(e).time);
          if (t.event(e).kind == EventKind::Send)
            h ^= static_cast<std::uint64_t>(t.fanout(e).size());
        }
      }
      results[ti] = h;
    });
  }
  for (std::thread& th : threads) th.join();
  for (std::size_t ti = 1; ti < results.size(); ++ti)
    EXPECT_EQ(results[ti], results[0]);
  (void)expected;
}

}  // namespace
}  // namespace logstruct::trace::storage
