/// Unit tests for trace::repair(): each fix class is exercised on a
/// hand-built RawTrace so the exact diagnostic, the exact mutation, and
/// the degraded-chare provenance are pinned down individually. The
/// end-to-end behavior over whole corrupted files lives in
/// tests/trace/recover_io_test.cpp and the fault-injection property
/// tests.

#include "trace/repair.hpp"

#include <gtest/gtest.h>

#include <string>

#include "trace/diagnostics.hpp"
#include "trace/validate.hpp"

namespace logstruct::trace {
namespace {

/// Two chares on two PEs, one entry, two blocks, a matched send/recv
/// pair. Fully well-formed: repair() must be the identity on it.
RawTrace make_raw() {
  RawTrace raw;
  raw.num_procs = 2;
  raw.chares.push_back({0, ChareInfo{"c0", kNone, -1, 0, false}});
  raw.chares.push_back({1, ChareInfo{"c1", kNone, -1, 1, false}});
  raw.entries.push_back({0, EntryInfo{"e0", false, -1, {}}});
  raw.blocks.push_back({0, 0, 0, 0, 0, 100, true});
  raw.blocks.push_back({1, 1, 1, 0, 50, 150, true});
  raw.events.push_back({0, EventKind::Send, 10, 0, kNone});
  raw.events.push_back({1, EventKind::Recv, 60, 1, 0});
  return raw;
}

TEST(Repair, IdentityOnWellFormedInput) {
  RawTrace raw = make_raw();
  RecoveryReport report;
  repair(raw, report);
  EXPECT_TRUE(report.empty()) << report.to_string();

  Trace t = build_trace(std::move(raw), 1);
  EXPECT_EQ(t.num_events(), 2);
  EXPECT_EQ(t.num_blocks(), 2);
  EXPECT_EQ(t.num_chares(), 2);
  EXPECT_EQ(t.num_degraded_chares(), 0);
  EXPECT_TRUE(validate(t).empty());
  // The send-side partner is rebuilt from the recv side.
  EXPECT_EQ(t.event(0).partner, 1);
  EXPECT_EQ(t.event(1).partner, 0);
}

TEST(Repair, SynthesizesMissingBlockEnd) {
  RawTrace raw = make_raw();
  raw.blocks[1].has_end = false;
  raw.blocks[1].end = 0;
  RecoveryReport report;
  repair(raw, report);
  EXPECT_EQ(report.count(DiagCode::SynthesizedBlockEnd), 1);
  EXPECT_TRUE(raw.blocks[1].has_end);
  // End = latest event in the block (the recv at t=60).
  EXPECT_EQ(raw.blocks[1].end, 60);
  EXPECT_TRUE(validate(build_trace(std::move(raw), 1)).empty());
}

TEST(Repair, ResetsEndBeforeBegin) {
  RawTrace raw = make_raw();
  raw.blocks[1].end = 10;  // before begin=50
  RecoveryReport report;
  repair(raw, report);
  EXPECT_GE(report.count(DiagCode::SynthesizedBlockEnd), 1);
  EXPECT_GE(raw.blocks[1].end, raw.blocks[1].begin);
  EXPECT_TRUE(validate(build_trace(std::move(raw), 1)).empty());
}

TEST(Repair, DropsDanglingRecvPartnerAndDegradesChare) {
  RawTrace raw = make_raw();
  raw.events[1].partner = 99;  // the send line was lost
  RecoveryReport report;
  repair(raw, report);
  EXPECT_EQ(report.count(DiagCode::DroppedDanglingPartner), 1);
  EXPECT_EQ(raw.events[1].partner, kNone);

  Trace t = build_trace(std::move(raw), 1);
  EXPECT_EQ(t.num_degraded_chares(), 1);
  EXPECT_TRUE(t.is_degraded_chare(1));
  EXPECT_FALSE(t.is_degraded_chare(0));
  EXPECT_TRUE(validate(t).empty());
}

TEST(Repair, DeduplicatesRepeatedRecords) {
  RawTrace raw = make_raw();
  raw.chares.push_back({1, ChareInfo{"c1-again", kNone, -1, 0, false}});
  raw.events.push_back({0, EventKind::Send, 10, 0, kNone});
  RecoveryReport report;
  repair(raw, report);
  EXPECT_EQ(report.count(DiagCode::DeduplicatedRecord), 2);

  Trace t = build_trace(std::move(raw), 1);
  EXPECT_EQ(t.num_chares(), 2);
  EXPECT_EQ(t.num_events(), 2);
  EXPECT_EQ(t.chare(1).name, "c1");  // first copy wins
}

TEST(Repair, StubsMetadataGaps) {
  RawTrace raw = make_raw();
  raw.chares[1].id = 3;       // chares 1 and 2 were lost
  raw.blocks[1].chare = 3;    // keep the block's reference alive
  RecoveryReport report;
  repair(raw, report);
  EXPECT_EQ(report.count(DiagCode::NonSequentialId), 1);
  EXPECT_EQ(report.count(DiagCode::StubbedMetadata), 2);

  Trace t = build_trace(std::move(raw), 1);
  ASSERT_EQ(t.num_chares(), 4);
  EXPECT_EQ(t.chare(1).name, "<recovered chare 1>");
  EXPECT_EQ(t.chare(3).name, "c1");
  EXPECT_TRUE(validate(t).empty());
}

TEST(Repair, ClampsEventIntoBlockSpan) {
  RawTrace raw = make_raw();
  raw.events[1].time = 500;  // block 1 spans [50, 150]
  RecoveryReport report;
  repair(raw, report);
  EXPECT_GE(report.count(DiagCode::ClampedTimestamp), 1);
  EXPECT_EQ(raw.events[1].time, 150);
  EXPECT_TRUE(validate(build_trace(std::move(raw), 1)).empty());
}

TEST(Repair, ClampsRecvThatPrecedesItsSend) {
  RawTrace raw = make_raw();
  raw.events[0].time = 70;
  raw.events[1].time = 55;  // before the send, inside its own block
  RecoveryReport report;
  repair(raw, report);
  EXPECT_GE(report.count(DiagCode::ClampedTimestamp), 1);
  EXPECT_EQ(raw.events[1].time, 70);
  EXPECT_EQ(raw.events[1].partner, 0);  // the match survives
  EXPECT_TRUE(validate(build_trace(std::move(raw), 1)).empty());
}

TEST(Repair, DropsMatchWhenClampWouldLeaveBlock) {
  RawTrace raw = make_raw();
  raw.blocks[1].end = 60;
  raw.events[0].time = 70;  // send after the recv's whole block
  raw.events[1].time = 55;
  RecoveryReport report;
  repair(raw, report);
  EXPECT_EQ(report.count(DiagCode::DroppedDanglingPartner), 1);
  EXPECT_EQ(raw.events[1].partner, kNone);

  Trace t = build_trace(std::move(raw), 1);
  EXPECT_EQ(t.num_degraded_chares(), 2);  // both sides quarantined
  EXPECT_TRUE(validate(t).empty());
}

TEST(Repair, DropsEventsOfLostBlocks) {
  RawTrace raw = make_raw();
  raw.events.push_back({2, EventKind::Send, 70, 7, kNone});  // no block 7
  RecoveryReport report;
  repair(raw, report);
  EXPECT_EQ(report.count(DiagCode::DanglingReference), 1);

  Trace t = build_trace(std::move(raw), 1);
  EXPECT_EQ(t.num_events(), 2);
  EXPECT_TRUE(validate(t).empty());
}

TEST(Repair, CleansIdleSpans) {
  RawTrace raw = make_raw();
  raw.idles.push_back({0, 10, 20});
  raw.idles.push_back({0, 10, 20});   // exact duplicate
  raw.idles.push_back({0, 15, 30});   // overlaps the first
  raw.idles.push_back({0, 40, 40});   // empty
  RecoveryReport report;
  repair(raw, report);
  EXPECT_GE(report.count(DiagCode::DeduplicatedRecord), 1);
  EXPECT_GE(report.count(DiagCode::ClampedTimestamp), 1);
  EXPECT_GE(report.count(DiagCode::DroppedRecord), 1);
  ASSERT_EQ(raw.idles.size(), 2u);
  EXPECT_EQ(raw.idles[1].begin, 20);  // clamped to the previous end
  EXPECT_TRUE(validate(build_trace(std::move(raw), 1)).empty());
}

TEST(Repair, RemapsCollectiveMembers) {
  RawTrace raw = make_raw();
  raw.collectives.push_back({{0}, {1, 77}});  // 77 never existed
  RecoveryReport report;
  repair(raw, report);
  EXPECT_EQ(report.count(DiagCode::DanglingReference), 1);

  Trace t = build_trace(std::move(raw), 1);
  ASSERT_EQ(t.collectives().size(), 1u);
  EXPECT_EQ(t.collectives()[0].sends.size(), 1u);
  EXPECT_EQ(t.collectives()[0].recvs.size(), 1u);
}

TEST(Repair, DropsImplausibleIds) {
  RawTrace raw = make_raw();
  // One flipped digit must not allocate gigabytes of stubs.
  raw.events.push_back({9000000000000LL, EventKind::Send, 10, 0, kNone});
  RecoveryReport report;
  repair(raw, report);
  EXPECT_EQ(report.count(DiagCode::DroppedRecord), 1);
  Trace t = build_trace(std::move(raw), 1);
  EXPECT_EQ(t.num_events(), 2);
}

TEST(Repair, EmptySalvageBuildsEmptyTrace) {
  RawTrace raw;
  RecoveryReport report;
  repair(raw, report);
  EXPECT_TRUE(report.empty());
  Trace t = build_trace(std::move(raw), 1);
  EXPECT_EQ(t.num_events(), 0);
  EXPECT_EQ(t.num_blocks(), 0);
  EXPECT_TRUE(validate(t).empty());
}

}  // namespace
}  // namespace logstruct::trace
