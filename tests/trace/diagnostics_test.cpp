/// Unit tests for the structured-diagnostic machinery: DiagCode naming,
/// RecoveryReport counting/capping/merging, severity escalation, and the
/// JSON artifact shape.

#include "trace/diagnostics.hpp"

#include <gtest/gtest.h>

#include <string>

#include "obs/json.hpp"

namespace logstruct::trace {
namespace {

TEST(Diagnostics, CodeNamesAreStableAndDistinct) {
  // The names feed obs counters and JSON reports; a rename is a breaking
  // change for sidecar consumers, so pin a few down.
  EXPECT_STREQ(diag_code_name(DiagCode::BadHeader), "bad_header");
  EXPECT_STREQ(diag_code_name(DiagCode::TruncatedFile), "truncated_file");
  EXPECT_STREQ(diag_code_name(DiagCode::ClampedTimestamp),
               "clamped_timestamp");
  EXPECT_STREQ(diag_code_name(DiagCode::StubbedMetadata),
               "stubbed_metadata");
  for (int a = 0; a < kNumDiagCodes; ++a)
    for (int b = a + 1; b < kNumDiagCodes; ++b)
      EXPECT_STRNE(diag_code_name(static_cast<DiagCode>(a)),
                   diag_code_name(static_cast<DiagCode>(b)));
}

TEST(Diagnostics, ReportCountsAndEscalates) {
  RecoveryReport r;
  EXPECT_TRUE(r.empty());
  EXPECT_TRUE(r.ok());
  EXPECT_FALSE(r.fatal());

  r.add(DiagCode::ClampedTimestamp, Severity::Warning, "w");
  r.add(DiagCode::ClampedTimestamp, Severity::Warning, "w2");
  r.add(DiagCode::ParseError, Severity::Error, "e", /*pe=*/3, /*line=*/17);
  EXPECT_EQ(r.total(), 3);
  EXPECT_EQ(r.count(DiagCode::ClampedTimestamp), 2);
  EXPECT_EQ(r.count(DiagCode::ParseError), 1);
  EXPECT_EQ(r.count(DiagCode::BadHeader), 0);
  EXPECT_EQ(r.worst(), Severity::Error);
  EXPECT_FALSE(r.ok());
  EXPECT_FALSE(r.fatal());
  EXPECT_EQ(r.repairs(), 2);  // clamps are repair codes, parse errors not

  r.add(DiagCode::BadHeader, Severity::Fatal, "f");
  EXPECT_TRUE(r.fatal());
}

TEST(Diagnostics, StoredDiagnosticsAreCappedButCountsStayExact) {
  RecoveryReport r(/*max_stored=*/4);
  for (int i = 0; i < 10; ++i)
    r.add(DiagCode::DroppedRecord, Severity::Warning, "x");
  EXPECT_EQ(r.total(), 10);
  EXPECT_EQ(r.count(DiagCode::DroppedRecord), 10);
  EXPECT_EQ(r.diagnostics().size(), 4u);
  EXPECT_EQ(r.dropped(), 6);
}

TEST(Diagnostics, MergeAddsCountsAndRespectsCap) {
  RecoveryReport a(2), b;
  a.add(DiagCode::MissingLog, Severity::Error, "pe 1 gone", 1);
  b.add(DiagCode::MissingLog, Severity::Error, "pe 2 gone", 2);
  b.add(DiagCode::TruncatedFile, Severity::Warning, "tail", 2);
  a.merge(b);
  EXPECT_EQ(a.total(), 3);
  EXPECT_EQ(a.count(DiagCode::MissingLog), 2);
  EXPECT_EQ(a.diagnostics().size(), 2u);  // capped at construction
  EXPECT_EQ(a.worst(), Severity::Error);
}

TEST(Diagnostics, ToStringCarriesLocation) {
  Diagnostic d;
  d.code = DiagCode::ParseError;
  d.severity = Severity::Error;
  d.pe = 3;
  d.line = 17;
  d.detail = "garbled CREATION";
  const std::string s = d.to_string();
  EXPECT_NE(s.find("error[parse_error]"), std::string::npos) << s;
  EXPECT_NE(s.find("pe=3"), std::string::npos) << s;
  EXPECT_NE(s.find("line=17"), std::string::npos) << s;
  EXPECT_NE(s.find("garbled CREATION"), std::string::npos) << s;
}

TEST(Diagnostics, JsonIsParseableEvenWithBinaryGarbageInDetails) {
  RecoveryReport r;
  // Raw corrupted input quoted into a detail: bytes that are invalid
  // UTF-8 and would break a JSON consumer must be sanitized on store.
  std::string garbage = "line \xe8\x01\xff\"quote\\slash";
  r.add(DiagCode::UnknownRecord, Severity::Warning, garbage, 0, 5);
  r.add(DiagCode::TruncatedFile, Severity::Warning, "tail lost");

  obs::json::Value v;
  std::string err;
  ASSERT_TRUE(obs::json::parse(r.to_json(), v, &err)) << err;
  EXPECT_EQ(v.at("total").as_int(), 2);
  EXPECT_EQ(v.at("counts").at("unknown_record").as_int(), 1);
  EXPECT_EQ(v.at("counts").at("truncated_file").as_int(), 1);
  EXPECT_EQ(v.at("diagnostics").array.size(), 2u);
  EXPECT_EQ(v.at("worst").string, "warning");
}

TEST(Diagnostics, ReadOptionsFactories) {
  EXPECT_FALSE(ReadOptions::strict().recover);
  EXPECT_TRUE(ReadOptions::recovering().recover);
  EXPECT_FALSE(ReadOptions{}.recover);  // strict is the default
}

}  // namespace
}  // namespace logstruct::trace
