/// Fault-injection tests for the crash-safe storage layer: the FaultSpec
/// grammar, the deterministic FaultyIoEngine, the retry/backoff policy in
/// pread_all/pwrite_all, and the end-to-end contract of the `.lsblk` v2
/// container — every injected fault resolves to exactly one of
/// {transparent retry success, quarantine with provenance, clean
/// structured refusal}; never a crash, never silently wrong data.
///
/// The lsblk fault kinds of the TraceCorruptor (corruptor_test.cpp points
/// here) get their binary-container coverage in the single-block
/// corruption property and the torn-tail torture below; the CLI face of
/// the same matrix is tools/trace_corrupt --fault=lsblk.

#include <gtest/gtest.h>

#include <fcntl.h>
#include <unistd.h>

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <random>
#include <sstream>
#include <string>
#include <vector>

#include "trace/diagnostics.hpp"
#include "trace/storage/block_store.hpp"
#include "trace/storage/blocked_trace.hpp"
#include "trace/storage/format.hpp"
#include "trace/storage/io_engine.hpp"
#include "trace/storage/options.hpp"
#include "trace_fixtures.hpp"

namespace logstruct::trace::storage {
namespace {

std::string temp_path(const char* tag) {
  return ::testing::TempDir() + "ls_fault_" + tag + "_" +
         std::to_string(::getpid()) + ".lsblk";
}

/// Installs a fault engine for the scope of one test section and always
/// restores the default, even when the body throws.
class ScopedFaultEngine {
 public:
  explicit ScopedFaultEngine(IoEngine* engine) {
    IoEngine::set_current(engine);
  }
  ~ScopedFaultEngine() { IoEngine::set_current(nullptr); }
  ScopedFaultEngine(const ScopedFaultEngine&) = delete;
  ScopedFaultEngine& operator=(const ScopedFaultEngine&) = delete;
};

std::string read_file(const std::string& path) {
  std::ifstream f(path, std::ios::binary);
  std::ostringstream buf;
  buf << f.rdbuf();
  return buf.str();
}

void write_file(const std::string& path, const std::string& bytes) {
  std::ofstream f(path, std::ios::binary | std::ios::trunc);
  f.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

/// End of the data region: blocks are appended contiguously from the
/// header, so it is the header plus the sum of every block's size.
std::uint64_t data_end(const BlockStore& store) {
  std::uint64_t end = sizeof(FileHeader);
  for (std::uint32_t c = 0; c < kNumColumns; ++c) {
    const auto col = static_cast<ColumnId>(c);
    for (std::uint32_t b = 0; b < store.num_blocks(col); ++b)
      end += store.block_size(col, b);
  }
  return end;
}

// ------------------------------------------------------------ FaultSpec

TEST(FaultSpec, ParsesFullGrammar) {
  const FaultSpec s = FaultSpec::parse(
      "seed=7,eintr=0.1;eio=0.25,short_read=0.5;short_write=0.75,"
      "bitflip=0.01,enospc_at=4096,truncate_at=123");
  EXPECT_EQ(s.seed, 7u);
  EXPECT_DOUBLE_EQ(s.eintr, 0.1);
  EXPECT_DOUBLE_EQ(s.eio, 0.25);
  EXPECT_DOUBLE_EQ(s.short_read, 0.5);
  EXPECT_DOUBLE_EQ(s.short_write, 0.75);
  EXPECT_DOUBLE_EQ(s.bitflip, 0.01);
  EXPECT_EQ(s.enospc_at, 4096u);
  EXPECT_EQ(s.truncate_at, 123u);
}

TEST(FaultSpec, EmptyAndSeparatorsAreDefaults) {
  const FaultSpec d = FaultSpec::parse("");
  EXPECT_EQ(d.seed, 1u);
  EXPECT_DOUBLE_EQ(d.eio, 0.0);
  EXPECT_EQ(d.enospc_at, 0u);
  // Stray separators are tolerated; they carry no key=value.
  (void)FaultSpec::parse(",;,");
}

TEST(FaultSpec, RejectsTyposLoudly) {
  // A typo in CI must never silently disable the fault matrix.
  EXPECT_THROW((void)FaultSpec::parse("eioo=0.5"), std::invalid_argument);
  EXPECT_THROW((void)FaultSpec::parse("eio"), std::invalid_argument);
  EXPECT_THROW((void)FaultSpec::parse("eio=lots"), std::invalid_argument);
  EXPECT_THROW((void)FaultSpec::parse("eio=1.5"), std::invalid_argument);
  EXPECT_THROW((void)FaultSpec::parse("eio=-0.1"), std::invalid_argument);
  EXPECT_THROW((void)FaultSpec::parse("enospc_at=12x"),
               std::invalid_argument);
}

// ------------------------------------------------------- FaultyIoEngine

TEST(FaultyIoEngine, DeterministicPerSeed) {
  const std::string path = temp_path("det");
  write_file(path, std::string(4096, 'x'));
  const int fd = ::open(path.c_str(), O_RDONLY);
  ASSERT_GE(fd, 0);

  const FaultSpec spec = FaultSpec::parse(
      "seed=42,eintr=0.3,eio=0.3,short_read=0.3,bitflip=0.05");
  auto run = [&](FaultyIoEngine& io) {
    // Record (result, errno, bytes) for an identical call sequence.
    std::vector<long> results;
    std::vector<int> errnos;
    std::string bytes;
    for (int i = 0; i < 64; ++i) {
      char buf[256];
      std::memset(buf, 0, sizeof(buf));
      errno = 0;
      const long n =
          io.pread(fd, buf, sizeof(buf),
                   static_cast<std::uint64_t>((i * 37) % 3800));
      results.push_back(n);
      errnos.push_back(n < 0 ? errno : 0);
      bytes.append(buf, sizeof(buf));
    }
    return std::make_tuple(results, errnos, bytes);
  };
  FaultyIoEngine a(spec), b(spec);
  EXPECT_EQ(run(a), run(b));
  EXPECT_GT(a.faults_injected(), 0u);
  ::close(fd);
  std::remove(path.c_str());
}

TEST(FaultyIoEngine, BitflipIsPersistentAcrossRereads) {
  const std::string path = temp_path("flip");
  const std::string clean(512, '\0');
  write_file(path, clean);
  const int fd = ::open(path.c_str(), O_RDONLY);
  ASSERT_GE(fd, 0);

  FaultyIoEngine io(FaultSpec::parse("seed=9,bitflip=1.0"));
  char first[512], second[512];
  ASSERT_EQ(io.pread(fd, first, sizeof(first), 0), 512);
  ASSERT_EQ(io.pread(fd, second, sizeof(second), 0), 512);
  // Keyed on file offset, not on the call: every re-read sees the same
  // damage (this is why read_block's single re-read is meaningful — a
  // retry must not make real corruption disappear).
  EXPECT_EQ(std::memcmp(first, second, sizeof(first)), 0);
  EXPECT_NE(std::string(first, sizeof(first)), clean);
  ::close(fd);
  std::remove(path.c_str());
}

TEST(FaultyIoEngine, TransientRetrySucceedsThroughPreadAll) {
  const std::string path = temp_path("retry");
  std::string content(8192, '\0');
  for (std::size_t i = 0; i < content.size(); ++i)
    content[i] = static_cast<char>(i * 31);
  write_file(path, content);
  const int fd = ::open(path.c_str(), O_RDONLY);
  ASSERT_GE(fd, 0);

  // EINTR storms, transient EIO, and short reads all at once: pread_all
  // must still deliver exact bytes every time.
  FaultyIoEngine io(
      FaultSpec::parse("seed=3,eintr=0.5,eio=0.2,short_read=0.5"));
  IoContext ctx;
  ctx.op = "retry test read";
  ctx.path = &path;
  for (int round = 0; round < 32; ++round) {
    std::vector<char> buf(1024);
    // Stride keeps every 1 KiB read inside the 8 KiB file.
    const std::uint64_t off = static_cast<std::uint64_t>(round) * 224;
    pread_all(io, fd, buf.data(), buf.size(), off, ctx);
    ASSERT_EQ(std::memcmp(buf.data(), content.data() + off, buf.size()), 0)
        << "round " << round;
  }
  EXPECT_GT(io.faults_injected(), 0u);
  ::close(fd);
  std::remove(path.c_str());
}

TEST(FaultyIoEngine, EnospcIsTerminalWithContext) {
  const std::string path = temp_path("enospc");
  const int fd = ::open(path.c_str(), O_CREAT | O_TRUNC | O_RDWR, 0644);
  ASSERT_GE(fd, 0);

  FaultyIoEngine io(FaultSpec::parse("enospc_at=64"));
  IoContext ctx;
  ctx.op = "write block";
  ctx.path = &path;
  ctx.column = 3;
  ctx.block = 7;
  const std::string big(256, 'z');
  try {
    pwrite_all(io, fd, big.data(), big.size(), 0, ctx);
    FAIL() << "ENOSPC never surfaced";
  } catch (const StorageError& e) {
    EXPECT_EQ(e.code(), DiagCode::IoError);
    const std::string what = e.what();
    // The structured context: op, path, column, block, offset.
    EXPECT_NE(what.find("write block"), std::string::npos) << what;
    EXPECT_NE(what.find(path), std::string::npos) << what;
    EXPECT_NE(what.find("col=3"), std::string::npos) << what;
    EXPECT_NE(what.find("block=7"), std::string::npos) << what;
  }
  ::close(fd);
  std::remove(path.c_str());
}

TEST(FaultyIoEngine, TruncateAtReadsAsTornTail) {
  const std::string path = temp_path("torn");
  write_file(path, std::string(200, 'q'));
  const int fd = ::open(path.c_str(), O_RDONLY);
  ASSERT_GE(fd, 0);

  FaultyIoEngine io(FaultSpec::parse("truncate_at=100"));
  IoContext ctx;
  ctx.op = "read tail";
  ctx.path = &path;
  char buf[150];
  // Before the tear: fine.
  pread_all(io, fd, buf, 50, 0, ctx);
  // Across the tear: EOF mid-range must surface as ContainerTruncated
  // with the missing-byte census in the message.
  try {
    pread_all(io, fd, buf, sizeof(buf), 0, ctx);
    FAIL() << "torn tail read unexpectedly succeeded";
  } catch (const StorageError& e) {
    EXPECT_EQ(e.code(), DiagCode::ContainerTruncated);
    EXPECT_NE(std::string(e.what()).find("bytes missing"),
              std::string::npos)
        << e.what();
  }
  EXPECT_EQ(io.file_size(fd), 100);
  ::close(fd);
  std::remove(path.c_str());
}

// ------------------------------------------------- container end-to-end

struct CleanContainer {
  std::string path;
  std::uint64_t hash = 0;
  std::string image;
  std::uint64_t end_of_data = 0;
};

/// One mini-trace container written with the system engine (4 KiB blocks
/// force several blocks per primary column).
CleanContainer make_clean(const char* tag,
                          std::uint32_t version = kFormatVersion) {
  CleanContainer c;
  c.path = temp_path(tag);
  testing::MiniTrace m = testing::make_mini_trace();
  c.hash = trace_structure_hash(m.trace);
  write_blocked_file(m.trace, c.path, 4096, version);
  c.image = read_file(c.path);
  BlockStore store(c.path);
  c.end_of_data = data_end(store);
  return c;
}

TEST(StorageFault, TransientFaultsAreInvisibleEndToEnd) {
  const CleanContainer clean = make_clean("transparent");
  const std::string path = temp_path("transparent_rt");

  // Whole write + read round trip on a disk that storms EINTR, throws
  // transient EIO, and short-reads/writes. The retry policy must make
  // all of it invisible: identical structure hash, no diagnostics.
  FaultyIoEngine faulty(FaultSpec::parse(
      "seed=11,eintr=0.2,eio=0.05,short_read=0.25,short_write=0.25"));
  {
    ScopedFaultEngine scope(&faulty);
    testing::MiniTrace m = testing::make_mini_trace();
    write_blocked_file(m.trace, path, 4096);
    Trace back = open_blocked_trace(path);
    EXPECT_EQ(trace_structure_hash(back), clean.hash);
  }
  EXPECT_GT(faulty.faults_injected(), 0u);

  // The file written under fault injection is readable by a clean engine
  // too (short writes resumed correctly — no holes).
  Trace back = open_blocked_trace(path);
  EXPECT_EQ(trace_structure_hash(back), clean.hash);
  std::remove(path.c_str());
  std::remove(clean.path.c_str());
}

TEST(StorageFault, CrashDuringFreezeTortureSalvagesOrRefuses) {
  const CleanContainer clean = make_clean("torture_ref");
  const std::uint64_t S = clean.image.size();
  ASSERT_GT(S, 400u);

  // Byte budgets spanning the whole commit sequence: death in the first
  // data block, mid-data, mid-tail, during the header patch, during the
  // footer. (The engine meters cumulative bytes written, which includes
  // the 40-byte header placeholder and the 40-byte patch, so budgets
  // near S land inside the tail/footer writes.)
  const std::uint64_t budgets[] = {
      50,     100,      1000,      S / 4,  S / 2,
      3 * S / 4, S - 100, S - 45, S - 20, S - 4, S + 39, 4 * S};
  for (const std::uint64_t budget : budgets) {
    const std::string path = temp_path("torture");
    FaultyIoEngine faulty(
        FaultSpec::parse("enospc_at=" + std::to_string(budget)));
    bool died = false;
    {
      ScopedFaultEngine scope(&faulty);
      try {
        testing::MiniTrace m = testing::make_mini_trace();
        write_blocked_file(m.trace, path, 4096);
      } catch (const StorageError&) {
        died = true;  // the "crash": writer killed mid-commit
      }
    }

    // Recovering open of whatever survived: salvage or clean refusal,
    // never a crash, never silently wrong data.
    RecoveryReport report;
    Trace t = open_blocked_trace(path, StorageOptions::recovering(),
                                 report);
    if (!died) {
      // Budget never hit: a complete commit must verify clean.
      EXPECT_TRUE(report.empty()) << "budget " << budget << "\n"
                                  << report.to_string();
      EXPECT_EQ(trace_structure_hash(t), clean.hash)
          << "budget " << budget;
    } else {
      // Torn: the recovering open must notice (a torn container is
      // never mistaken for a clean one)...
      EXPECT_FALSE(report.empty()) << "budget " << budget;
      // ...and a salvage that reports no data loss must be bit-exact.
      if (!report.fatal() && t.num_events() > 0 && report.ok()) {
        EXPECT_EQ(trace_structure_hash(t), clean.hash)
            << "budget " << budget;
      }
    }
    std::remove(path.c_str());
  }
  std::remove(clean.path.c_str());
}

TEST(StorageFault, TornTailTruncationTorture) {
  const CleanContainer clean = make_clean("truncate_ref");
  const std::uint64_t S = clean.image.size();
  const std::uint64_t tail = S - clean.end_of_data;

  // Cuts inside the footer, exactly at the footer boundary, inside the
  // directory/CRC tables, and deep into the data region.
  const std::uint64_t cuts[] = {S - 1,
                                S - 8,
                                S - sizeof(CommitFooter),
                                S - sizeof(CommitFooter) - 1,
                                clean.end_of_data + tail / 2,
                                clean.end_of_data,
                                clean.end_of_data / 2,
                                sizeof(FileHeader) + 1};
  for (const std::uint64_t cut : cuts) {
    const std::string path = temp_path("cut");
    write_file(path, clean.image.substr(0, cut));

    // Strict open must refuse a torn container outright.
    EXPECT_THROW(BlockStore strict(path), StorageError) << "cut " << cut;

    // Recovering open: notice, then salvage or cleanly refuse.
    RecoveryReport report;
    Trace t = open_blocked_trace(path, StorageOptions::recovering(),
                                 report);
    EXPECT_FALSE(report.empty()) << "cut " << cut;
    if (t.num_events() > 0 && report.ok()) {
      EXPECT_EQ(trace_structure_hash(t), clean.hash) << "cut " << cut;
    }
    // A cut that only removed the footer loses no data: full salvage.
    if (cut == S - 8 || cut == S - sizeof(CommitFooter)) {
      EXPECT_EQ(trace_structure_hash(t), clean.hash) << "cut " << cut;
    }
    std::remove(path.c_str());
  }
  std::remove(clean.path.c_str());
}

TEST(StorageFault, SingleBlockCorruptionDetectedAcrossSeeds) {
  const CleanContainer clean = make_clean("flipseed");
  ASSERT_GT(clean.end_of_data, sizeof(FileHeader));

  for (std::uint64_t seed = 1; seed <= 32; ++seed) {
    // Flip one bit somewhere in the data region. Every data byte
    // belongs to exactly one checksummed block (blocks are packed with
    // no slack), so detection must be unconditional.
    std::mt19937_64 rng(seed);
    const std::uint64_t span = clean.end_of_data - sizeof(FileHeader);
    const std::uint64_t at = sizeof(FileHeader) + rng() % span;
    std::string damaged = clean.image;
    damaged[at] = static_cast<char>(
        static_cast<unsigned char>(damaged[at]) ^
        static_cast<unsigned char>(1u << (rng() % 8)));
    const std::string path = temp_path("flipseed_run");
    write_file(path, damaged);

    // Strict: the flipped block must throw before its bytes escape.
    bool detected = false;
    {
      BlockStore store(path);  // header + tail are intact: open succeeds
      for (std::uint32_t c = 0; c < kNumColumns && !detected; ++c) {
        const auto col = static_cast<ColumnId>(c);
        for (std::uint32_t b = 0; b < store.num_blocks(col); ++b) {
          std::vector<char> buf(store.block_size(col, b));
          try {
            store.read_block(col, b, buf.data());
          } catch (const StorageError& e) {
            EXPECT_EQ(e.code(), DiagCode::BlockChecksumMismatch)
                << "seed " << seed;
            detected = true;
            break;
          }
        }
      }
    }
    EXPECT_TRUE(detected) << "seed " << seed << " flip at " << at;

    // Recovering: quarantined with provenance, never silently wrong.
    RecoveryReport report;
    Trace t = open_blocked_trace(path, StorageOptions::recovering(),
                                 report);
    EXPECT_FALSE(report.empty()) << "seed " << seed;
    if (t.num_events() > 0 && report.ok()) {
      EXPECT_EQ(trace_structure_hash(t), clean.hash) << "seed " << seed;
    }
    std::remove(path.c_str());
  }
  std::remove(clean.path.c_str());
}

TEST(StorageFault, QuarantineFailsFastWithProvenance) {
  const CleanContainer clean = make_clean("quarantine");
  // Damage the first data block (the byte right after the header).
  std::string damaged = clean.image;
  damaged[sizeof(FileHeader) + 8] ^= 0x10;
  const std::string path = temp_path("quarantine_run");
  write_file(path, damaged);

  RecoveryReport report;
  BlockStore store(path, OpenOptions::recovering(&report));
  ASSERT_TRUE(store.salvageable());
  const std::int64_t bad = store.scan_blocks(&report);
  EXPECT_GE(bad, 1);
  EXPECT_EQ(store.num_quarantined(), bad);
  // scan_blocks is idempotent.
  EXPECT_EQ(store.scan_blocks(nullptr), bad);

  bool found = false;
  for (std::uint32_t c = 0; c < kNumColumns && !found; ++c) {
    const auto col = static_cast<ColumnId>(c);
    for (std::uint32_t b = 0; b < store.num_blocks(col); ++b) {
      if (!store.is_quarantined(col, b)) continue;
      found = true;
      EXPECT_EQ(store.verify_block(col, b), BlockStatus::ChecksumMismatch);
      // Fast-fail: read_block must throw without returning poison (and
      // without the bytes ever reaching the block cache).
      std::vector<char> buf(store.block_size(col, b));
      try {
        store.read_block(col, b, buf.data());
        ADD_FAILURE() << "quarantined block served bytes";
      } catch (const StorageError& e) {
        EXPECT_EQ(e.code(), DiagCode::BlockChecksumMismatch);
        EXPECT_NE(std::string(e.what()).find("quarantined"),
                  std::string::npos)
            << e.what();
      }
      break;
    }
  }
  EXPECT_TRUE(found);
  // The diagnostics carry machine-readable provenance.
  EXPECT_FALSE(report.ok());
  std::remove(path.c_str());
  std::remove(clean.path.c_str());
}

TEST(StorageFault, V1ContainersStayReadable) {
  testing::MiniTrace m = testing::make_mini_trace();
  const std::uint64_t hash = trace_structure_hash(m.trace);
  const std::string path = temp_path("v1");
  write_blocked_file(m.trace, path, 4096, kFormatVersionV1);

  // Strict open: v1 is not an error, just checksum-less.
  {
    BlockStore store(path);
    EXPECT_EQ(store.version(), kFormatVersionV1);
    EXPECT_FALSE(store.checksums_present());
    EXPECT_FALSE(store.footer_valid());
    bool saw_block = false;
    for (std::uint32_t c = 0; c < kNumColumns; ++c) {
      const auto col = static_cast<ColumnId>(c);
      if (store.num_blocks(col) == 0) continue;
      saw_block = true;
      EXPECT_EQ(store.verify_block(col, 0), BlockStatus::ChecksumAbsent);
    }
    EXPECT_TRUE(saw_block);
  }
  EXPECT_EQ(trace_structure_hash(open_blocked_trace(path)), hash);

  // Recovering open: an intact v1 file is served clean, no diagnostics.
  RecoveryReport report;
  Trace t =
      open_blocked_trace(path, StorageOptions::recovering(), report);
  EXPECT_TRUE(report.empty()) << report.to_string();
  EXPECT_EQ(trace_structure_hash(t), hash);
  std::remove(path.c_str());
}

TEST(StorageFault, WriterSurfacesOpenFailureWithPath) {
  const std::string path =
      ::testing::TempDir() + "no_such_dir_ls_fault/x.lsblk";
  try {
    BlockStoreWriter w(path, 4096);
    FAIL() << "open of a missing directory succeeded";
  } catch (const StorageError& e) {
    EXPECT_NE(std::string(e.what()).find(path), std::string::npos)
        << e.what();
  }
}

}  // namespace
}  // namespace logstruct::trace::storage
