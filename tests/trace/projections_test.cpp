#include "trace/projections.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <fstream>
#include <cstdio>

#include "apps/jacobi2d.hpp"
#include "apps/lassen.hpp"
#include "apps/lulesh.hpp"
#include "apps/pdes.hpp"
#include "order/stats.hpp"
#include "order/stepping.hpp"
#include "trace/validate.hpp"

namespace logstruct::trace {
namespace {

void cleanup(const std::string& prefix, std::int32_t pes) {
  std::remove((prefix + ".sts").c_str());
  for (std::int32_t p = 0; p < pes; ++p)
    std::remove((prefix + "." + std::to_string(p) + ".log").c_str());
}

/// Event ids are renumbered by the reader; compare structure-level
/// invariants instead of raw ids.
void expect_equivalent(const Trace& a, const Trace& b,
                       const order::Options& opts) {
  ASSERT_EQ(b.num_events(), a.num_events());
  ASSERT_EQ(b.num_blocks(), a.num_blocks());
  ASSERT_EQ(b.num_chares(), a.num_chares());
  ASSERT_EQ(b.num_procs(), a.num_procs());
  ASSERT_EQ(b.idles().size(), a.idles().size());
  ASSERT_TRUE(validate(b).empty());

  order::LogicalStructure la = order::extract_structure(a, opts);
  order::LogicalStructure lb = order::extract_structure(b, opts);
  EXPECT_EQ(lb.num_phases(), la.num_phases());
  EXPECT_EQ(lb.max_step, la.max_step);

  // Step histograms must match exactly (ids may differ, content may not).
  auto histogram = [](const order::LogicalStructure& ls) {
    std::vector<std::int32_t> h(ls.global_step.begin(),
                                ls.global_step.end());
    std::sort(h.begin(), h.end());
    return h;
  };
  EXPECT_EQ(histogram(lb), histogram(la));
}

TEST(Projections, JacobiRoundTrip) {
  apps::Jacobi2DConfig cfg;
  cfg.chares_x = 4;
  cfg.chares_y = 4;
  cfg.num_pes = 4;
  cfg.iterations = 2;
  Trace t = apps::run_jacobi2d(cfg);
  std::string prefix = ::testing::TempDir() + "/proj_jacobi";
  ASSERT_TRUE(write_projections(t, prefix));
  Trace back = read_projections(prefix);
  expect_equivalent(t, back, order::Options::charm());
  cleanup(prefix, t.num_procs());
}

TEST(Projections, LuleshRoundTrip) {
  apps::LuleshConfig cfg;
  cfg.iterations = 2;
  Trace t = apps::run_lulesh_charm(cfg);
  std::string prefix = ::testing::TempDir() + "/proj_lulesh";
  ASSERT_TRUE(write_projections(t, prefix));
  Trace back = read_projections(prefix);
  expect_equivalent(t, back, order::Options::charm());
  cleanup(prefix, t.num_procs());
}

TEST(Projections, PdesUntracedDependencySurvives) {
  apps::PdesConfig cfg;
  Trace t = apps::run_pdes(cfg);
  std::string prefix = ::testing::TempDir() + "/proj_pdes";
  ASSERT_TRUE(write_projections(t, prefix));
  Trace back = read_projections(prefix);

  auto untraced = [](const Trace& tr) {
    int n = 0;
    for (const auto& e : tr.events())
      if (e.kind == EventKind::Recv && e.partner == kNone) ++n;
    return n;
  };
  EXPECT_EQ(untraced(back), untraced(t));
  EXPECT_GT(untraced(back), 0);
  cleanup(prefix, t.num_procs());
}

TEST(Projections, SdagMetadataSurvives) {
  apps::Jacobi2DConfig cfg;
  cfg.chares_x = 2;
  cfg.chares_y = 2;
  cfg.num_pes = 2;
  cfg.iterations = 1;
  Trace t = apps::run_jacobi2d(cfg);
  std::string prefix = ::testing::TempDir() + "/proj_sdag";
  ASSERT_TRUE(write_projections(t, prefix));
  Trace back = read_projections(prefix);
  bool found_serial = false;
  for (const auto& e : back.entries()) {
    if (e.sdag_serial >= 0 && !e.when_entries.empty()) found_serial = true;
  }
  EXPECT_TRUE(found_serial);
  cleanup(prefix, t.num_procs());
}

TEST(Projections, IdleSpansPreserved) {
  apps::Jacobi2DConfig cfg;
  cfg.chares_x = 4;
  cfg.chares_y = 4;
  cfg.num_pes = 8;
  cfg.iterations = 2;
  Trace t = apps::run_jacobi2d(cfg);
  ASSERT_FALSE(t.idles().empty());
  std::string prefix = ::testing::TempDir() + "/proj_idle";
  ASSERT_TRUE(write_projections(t, prefix));
  Trace back = read_projections(prefix);
  ASSERT_EQ(back.idles().size(), t.idles().size());
  for (ProcId p = 0; p < t.num_procs(); ++p)
    EXPECT_EQ(back.total_idle(p), t.total_idle(p));
  cleanup(prefix, t.num_procs());
}

TEST(Projections, CollectivesAreRejected) {
  apps::LuleshConfig cfg;
  cfg.iterations = 1;
  Trace t = apps::run_lulesh_mpi(cfg);  // has allreduce collectives
  EXPECT_FALSE(write_projections(t, ::testing::TempDir() + "/proj_mpi"));
}

TEST(Projections, MissingFilesThrow) {
  EXPECT_THROW(read_projections("/nonexistent/prefix"), std::runtime_error);
}

TEST(Projections, TruncatedLogThrows) {
  apps::Jacobi2DConfig cfg;
  cfg.chares_x = 2;
  cfg.chares_y = 2;
  cfg.num_pes = 2;
  cfg.iterations = 1;
  Trace t = apps::run_jacobi2d(cfg);
  std::string prefix = ::testing::TempDir() + "/proj_trunc";
  ASSERT_TRUE(write_projections(t, prefix));
  // Truncate PE 0's log.
  {
    std::string path = prefix + ".0.log";
    std::ifstream in(path);
    std::string content((std::istreambuf_iterator<char>(in)),
                        std::istreambuf_iterator<char>());
    std::ofstream out(path, std::ios::trunc);
    out << content.substr(0, content.size() / 2);
  }
  EXPECT_THROW(read_projections(prefix), std::runtime_error);
  cleanup(prefix, t.num_procs());
}

}  // namespace
}  // namespace logstruct::trace
