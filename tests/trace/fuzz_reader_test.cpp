/// Byte-level fuzz of the trace readers: a deterministic seed sweep over
/// the TraceCorruptor's fault matrix plus raw random bytes. The contract
/// under test is narrow and absolute — the recovering reader NEVER
/// throws on malformed content and always terminates; the strict reader
/// either succeeds or throws std::runtime_error (never UB — the CI
/// sanitizer job runs this same sweep under ASan+UBSan). Seeds are
/// fixed, so a failure reproduces identically everywhere.

#include <gtest/gtest.h>

#include <sstream>
#include <stdexcept>
#include <string>

#include "apps/jacobi2d.hpp"
#include "trace/corruptor.hpp"
#include "trace/diagnostics.hpp"
#include "trace/io.hpp"
#include "trace/validate.hpp"
#include "util/rng.hpp"

namespace logstruct::trace {
namespace {

std::string golden_text() {
  apps::Jacobi2DConfig cfg;
  cfg.chares_x = 4;
  cfg.chares_y = 4;
  cfg.num_pes = 4;
  cfg.iterations = 2;
  std::ostringstream os;
  write_trace(apps::run_jacobi2d(cfg), os);
  return os.str();
}

/// Recovering read; any throw fails the test.
RecoveryReport recover_read(const std::string& text, Trace* out = nullptr) {
  std::istringstream in(text);
  RecoveryReport report;
  Trace t = read_trace(in, ReadOptions::recovering(), report);
  EXPECT_TRUE(validate(t).empty());
  if (out) *out = std::move(t);
  return report;
}

/// Strict read: success or std::runtime_error are both fine; anything
/// else (other exception types, crashes, sanitizer trips) is a bug.
void strict_read_is_contained(const std::string& text) {
  std::istringstream in(text);
  try {
    Trace t = read_trace(in);
    (void)t;
  } catch (const std::runtime_error&) {
  }
}

TEST(FuzzReader, CorruptorMatrixSeedSweep) {
  const std::string text = golden_text();
  for (int k = 0; k < kNumFaultKinds; ++k) {
    const auto kind = static_cast<FaultKind>(k);
    for (std::uint64_t seed = 1; seed <= 12; ++seed) {
      TraceCorruptor corruptor(seed);
      const std::string damaged = corruptor.corrupt(text, kind);
      SCOPED_TRACE(std::string(fault_kind_name(kind)) + " seed " +
                   std::to_string(seed));
      RecoveryReport report = recover_read(damaged);
      // The corruptor changed bytes, so recovery must have noticed
      // something; silence would mean damage slipped through unseen.
      if (damaged != text) {
        EXPECT_GT(report.total(), 0);
      }
      strict_read_is_contained(damaged);
    }
  }
}

TEST(FuzzReader, StackedFaultsSeedSweep) {
  // Real damage is rarely a single clean fault class: stack every class
  // on top of one another and the reader must still hold the contract.
  const std::string text = golden_text();
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    TraceCorruptor corruptor(seed);
    std::string damaged = text;
    for (int k = 0; k < kNumFaultKinds; ++k)
      damaged = corruptor.corrupt(damaged, static_cast<FaultKind>(k));
    SCOPED_TRACE("seed " + std::to_string(seed));
    RecoveryReport report = recover_read(damaged);
    EXPECT_GT(report.total(), 0);
    strict_read_is_contained(damaged);
  }
}

TEST(FuzzReader, RandomBytesNeverCrashTheReaders) {
  for (std::uint64_t seed = 1; seed <= 16; ++seed) {
    util::Rng rng(seed);
    std::string junk(1024 + seed * 257, '\0');
    for (char& c : junk)
      c = static_cast<char>(rng.uniform_range(0, 255));
    SCOPED_TRACE("seed " + std::to_string(seed));
    RecoveryReport report = recover_read(junk);
    EXPECT_FALSE(report.empty());
    strict_read_is_contained(junk);
  }
}

TEST(FuzzReader, ValidHeaderThenGarbage) {
  // A correct magic line followed by random printable junk: recovery
  // must skip every garbled record and still terminate.
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    util::Rng rng(seed ^ 0x9e3779b97f4a7c15ULL);
    std::string text = "lstrace 1\n";
    for (int line = 0; line < 200; ++line) {
      const int len = static_cast<int>(rng.uniform_range(1, 40));
      for (int i = 0; i < len; ++i)
        text += static_cast<char>(rng.uniform_range(32, 126));
      text += '\n';
    }
    SCOPED_TRACE("seed " + std::to_string(seed));
    RecoveryReport report = recover_read(text);
    EXPECT_GT(report.total(), 0);
    strict_read_is_contained(text);
  }
}

TEST(FuzzReader, HugeClaimedListLengthsAreRejected) {
  // A flipped digit in a list length must not allocate gigabytes; both
  // modes must refuse implausible lengths outright.
  const std::string text =
      "lstrace 1\nprocs 1\narray 0 0|a\nchare 0 0 0 0 0|c\n"
      "entry 0 0 -1 999999999 |e\nend\n";
  strict_read_is_contained(text);
  RecoveryReport report = recover_read(text);
  EXPECT_GT(report.total(), 0);
}

}  // namespace
}  // namespace logstruct::trace
