/// End-to-end tests of fault-tolerant ingestion: the recovering .lstrace
/// and Projections readers, the structured save/load contract, and the
/// degraded-chare provenance that rides the serialized format. The
/// repair pass itself is unit-tested in repair_test.cpp; the corruption
/// matrix lives in the fault-injection property tests.

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "apps/jacobi2d.hpp"
#include "order/stepping.hpp"
#include "trace/diagnostics.hpp"
#include "trace/io.hpp"
#include "trace/projections.hpp"
#include "trace/repair.hpp"
#include "trace/validate.hpp"

namespace logstruct::trace {
namespace {

Trace golden() {
  apps::Jacobi2DConfig cfg;
  cfg.chares_x = 4;
  cfg.chares_y = 4;
  cfg.num_pes = 4;
  cfg.iterations = 2;
  return apps::run_jacobi2d(cfg);
}

std::string serialize(const Trace& t) {
  std::ostringstream os;
  write_trace(t, os);
  return os.str();
}

TEST(RecoverIo, CleanLstraceRecoverEqualsStrict) {
  const std::string text = serialize(golden());

  std::istringstream strict_in(text);
  Trace strict = read_trace(strict_in);

  std::istringstream recover_in(text);
  RecoveryReport report;
  Trace recovered =
      read_trace(recover_in, ReadOptions::recovering(), report);

  EXPECT_TRUE(report.empty()) << report.to_string();
  // Bit-identical all the way down to the serialized bytes.
  EXPECT_EQ(serialize(recovered), text);
  EXPECT_EQ(serialize(strict), text);
}

TEST(RecoverIo, TruncatedTailSalvages) {
  const std::string text = serialize(golden());
  const std::string cut = text.substr(0, text.size() * 6 / 10);

  std::istringstream in(cut);
  RecoveryReport report;
  Trace t = read_trace(in, ReadOptions::recovering(), report);

  EXPECT_GE(report.count(DiagCode::TruncatedFile), 1);
  EXPECT_GT(t.num_events(), 0);
  EXPECT_TRUE(validate(t).empty());
  // The salvage must survive the full pipeline.
  order::LogicalStructure ls =
      order::extract_structure(t, order::Options::charm());
  EXPECT_GT(ls.num_phases(), 0);
}

TEST(RecoverIo, GarbledLinesAreSkippedAndCounted) {
  std::string text = serialize(golden());
  const std::size_t mid = text.find('\n', text.size() / 2) + 1;
  text.insert(mid, "totally bogus record\nevent X Y Z W\n");

  std::istringstream in(text);
  RecoveryReport report;
  Trace t = read_trace(in, ReadOptions::recovering(), report);

  EXPECT_GE(report.count(DiagCode::UnknownRecord) +
                report.count(DiagCode::ParseError),
            1);
  EXPECT_FALSE(report.fatal());
  EXPECT_GT(t.num_events(), 0);
  EXPECT_TRUE(validate(t).empty());
}

TEST(RecoverIo, StrictModeStillThrows) {
  std::string text = serialize(golden());
  const std::size_t mid = text.find('\n', text.size() / 2) + 1;
  text.insert(mid, "totally bogus record\n");

  std::istringstream a(text);
  EXPECT_THROW(read_trace(a), std::runtime_error);
  std::istringstream b(text);
  RecoveryReport report;
  EXPECT_THROW(read_trace(b, ReadOptions::strict(), report),
               std::runtime_error);
}

TEST(RecoverIo, BadHeaderIsFatalButDoesNotThrow) {
  std::istringstream in("not a trace at all\n1 2 3\n");
  RecoveryReport report;
  Trace t = read_trace(in, ReadOptions::recovering(), report);
  EXPECT_TRUE(report.fatal());
  EXPECT_EQ(report.count(DiagCode::BadHeader), 1);
  EXPECT_EQ(t.num_events(), 0);
}

TEST(RecoverIo, SaveReportsFailureStructurally) {
  RecoveryReport report;
  EXPECT_FALSE(
      save_trace(golden(), "/nonexistent-dir/x.lstrace", report));
  EXPECT_EQ(report.count(DiagCode::IoError), 1);
  EXPECT_TRUE(report.fatal());
}

TEST(RecoverIo, LoadReportsMissingFileStructurally) {
  RecoveryReport report;
  Trace t = load_trace("/nonexistent-dir/x.lstrace",
                       ReadOptions::recovering(), report);
  EXPECT_EQ(report.count(DiagCode::IoError), 1);
  EXPECT_TRUE(report.fatal());
  EXPECT_EQ(t.num_events(), 0);
  // The historical convenience overload still throws.
  EXPECT_THROW(load_trace("/nonexistent-dir/x.lstrace"),
               std::runtime_error);
}

TEST(RecoverIo, SaveLoadRoundTripBothModes) {
  const Trace t = golden();
  const std::string path = ::testing::TempDir() + "/recover_io_rt.lstrace";
  RecoveryReport save_report;
  ASSERT_TRUE(save_trace(t, path, save_report));
  EXPECT_TRUE(save_report.empty());

  RecoveryReport load_report;
  Trace strict_loaded = load_trace(path);
  Trace recovered =
      load_trace(path, ReadOptions::recovering(), load_report);
  EXPECT_TRUE(load_report.empty());
  EXPECT_EQ(serialize(strict_loaded), serialize(t));
  EXPECT_EQ(serialize(recovered), serialize(t));
  std::remove(path.c_str());
}

TEST(RecoverIo, CleanTraceSerializationHasNoDegradedRecord) {
  // Clean traces must serialize byte-identically to the historical
  // format: the "degraded" record is written only for repaired traces.
  const std::string text = serialize(golden());
  EXPECT_EQ(text.find("\ndegraded "), std::string::npos);
}

TEST(RecoverIo, DegradedCharesSurviveTheRoundTrip) {
  // Build a degraded trace via the repair path, then round-trip it
  // through the strict format.
  RawTrace raw;
  raw.num_procs = 1;
  raw.chares.push_back({0, ChareInfo{"c0", kNone, -1, 0, false}});
  raw.chares.push_back({1, ChareInfo{"c1", kNone, -1, 0, false}});
  raw.entries.push_back({0, EntryInfo{"e0", false, -1, {}}});
  raw.blocks.push_back({0, 0, 0, 0, 0, 100, true});
  raw.blocks.push_back({1, 1, 0, 0, 50, 150, true});
  raw.events.push_back({0, EventKind::Send, 10, 0, kNone});
  raw.events.push_back({1, EventKind::Recv, 60, 1, 99});  // dangling

  RecoveryReport report;
  repair(raw, report);
  Trace t = build_trace(std::move(raw), 1);
  ASSERT_EQ(t.num_degraded_chares(), 1);

  const std::string text = serialize(t);
  EXPECT_NE(text.find("\ndegraded 1 1\n"), std::string::npos) << text;

  std::istringstream in(text);
  Trace back = read_trace(in);
  EXPECT_EQ(back.num_degraded_chares(), 1);
  EXPECT_TRUE(back.is_degraded_chare(1));
  EXPECT_EQ(serialize(back), text);
}

// --- Projections ------------------------------------------------------

void cleanup(const std::string& prefix, std::int32_t pes) {
  std::remove((prefix + ".sts").c_str());
  for (std::int32_t p = 0; p < pes; ++p)
    std::remove((prefix + "." + std::to_string(p) + ".log").c_str());
}

TEST(RecoverIo, CleanProjectionsRecoverEqualsStrict) {
  Trace t = golden();
  const std::string prefix = ::testing::TempDir() + "/recover_proj_clean";
  ASSERT_TRUE(write_projections(t, prefix));

  Trace strict = read_projections(prefix);
  RecoveryReport report;
  Trace recovered =
      read_projections(prefix, ReadOptions::recovering(), report);
  EXPECT_TRUE(report.empty()) << report.to_string();
  EXPECT_EQ(serialize(recovered), serialize(strict));
  cleanup(prefix, t.num_procs());
}

TEST(RecoverIo, ProjectionsMissingLogRecovers) {
  Trace t = golden();
  const std::string prefix = ::testing::TempDir() + "/recover_proj_miss";
  ASSERT_TRUE(write_projections(t, prefix));
  std::remove((prefix + ".2.log").c_str());

  EXPECT_THROW(read_projections(prefix), std::runtime_error);

  RecoveryReport report;
  Trace salvaged =
      read_projections(prefix, ReadOptions::recovering(), report);
  EXPECT_GE(report.count(DiagCode::MissingLog), 1);
  EXPECT_FALSE(report.fatal());
  EXPECT_GT(salvaged.num_events(), 0);
  EXPECT_LT(salvaged.num_events(), t.num_events());
  EXPECT_TRUE(validate(salvaged).empty());
  order::LogicalStructure ls =
      order::extract_structure(salvaged, order::Options::charm());
  EXPECT_GT(ls.num_phases(), 0);
  cleanup(prefix, t.num_procs());
}

TEST(RecoverIo, ProjectionsTruncatedLogRecovers) {
  Trace t = golden();
  const std::string prefix = ::testing::TempDir() + "/recover_proj_trunc";
  ASSERT_TRUE(write_projections(t, prefix));

  const std::string log1 = prefix + ".1.log";
  std::string content;
  {
    std::ifstream f(log1);
    std::ostringstream os;
    os << f.rdbuf();
    content = os.str();
  }
  {
    std::ofstream f(log1, std::ios::trunc);
    f << content.substr(0, content.size() / 2);
  }

  RecoveryReport report;
  Trace salvaged =
      read_projections(prefix, ReadOptions::recovering(), report);
  EXPECT_GE(report.count(DiagCode::TruncatedFile), 1);
  EXPECT_GT(salvaged.num_events(), 0);
  EXPECT_TRUE(validate(salvaged).empty());
  cleanup(prefix, t.num_procs());
}

TEST(RecoverIo, ProjectionsMissingStsIsFatal) {
  RecoveryReport report;
  Trace t = read_projections(::testing::TempDir() + "/no_such_prefix",
                             ReadOptions::recovering(), report);
  EXPECT_TRUE(report.fatal());
  EXPECT_GE(report.count(DiagCode::IoError), 1);
  EXPECT_EQ(t.num_events(), 0);
}

}  // namespace
}  // namespace logstruct::trace
