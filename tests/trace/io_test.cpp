#include "trace/io.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "trace/builder.hpp"
#include "trace/validate.hpp"
#include "trace_fixtures.hpp"

namespace logstruct::trace {
namespace {

TEST(TraceIo, RoundTripMiniTrace) {
  auto m = testing::make_mini_trace();
  std::ostringstream os;
  write_trace(m.trace, os);

  std::istringstream is(os.str());
  Trace back = read_trace(is);

  EXPECT_EQ(back.num_events(), m.trace.num_events());
  EXPECT_EQ(back.num_blocks(), m.trace.num_blocks());
  EXPECT_EQ(back.num_chares(), m.trace.num_chares());
  EXPECT_EQ(back.num_procs(), m.trace.num_procs());
  EXPECT_EQ(back.idles().size(), m.trace.idles().size());
  EXPECT_TRUE(validate(back).empty());

  // Re-serialization is byte-identical (deterministic format).
  std::ostringstream os2;
  write_trace(back, os2);
  EXPECT_EQ(os.str(), os2.str());
}

TEST(TraceIo, PreservesPartnersAndTriggers) {
  auto m = testing::make_mini_trace();
  std::ostringstream os;
  write_trace(m.trace, os);
  std::istringstream is(os.str());
  Trace back = read_trace(is);

  EXPECT_EQ(back.event(m.r_ab).partner, m.s_ab);
  EXPECT_EQ(back.event(m.s_ab).partner, m.r_ab);
  EXPECT_EQ(back.block(m.b0).trigger, m.r_ab);
}

TEST(TraceIo, PreservesBroadcastFanout) {
  TraceBuilder tb;
  ChareId c0 = tb.add_chare("c0");
  ChareId c1 = tb.add_chare("c1");
  ChareId c2 = tb.add_chare("c2");
  EntryId e = tb.add_entry("go");
  BlockId src = tb.begin_block(c0, 0, e, 0);
  EventId s = tb.add_send(src, 1);
  tb.end_block(src, 2);
  BlockId d1 = tb.begin_block(c1, 0, e, 10);
  tb.add_recv(d1, 10, s);
  tb.end_block(d1, 11);
  BlockId d2 = tb.begin_block(c2, 1, e, 12);
  tb.add_recv(d2, 12, s);
  tb.end_block(d2, 13);
  Trace t = tb.finish(2);

  std::ostringstream os;
  write_trace(t, os);
  std::istringstream is(os.str());
  Trace back = read_trace(is);
  EXPECT_EQ(back.receivers(s).size(), 2u);
}

TEST(TraceIo, PreservesCollectives) {
  TraceBuilder tb;
  ChareId c0 = tb.add_chare("r0");
  EntryId e = tb.add_entry("allreduce");
  CollectiveId coll = tb.begin_collective();
  BlockId b0 = tb.begin_block(c0, 0, e, 0);
  tb.add_collective_send(coll, b0, 0);
  tb.add_collective_recv(coll, b0, 5);
  tb.end_block(b0, 5);
  Trace t = tb.finish(1);

  std::ostringstream os;
  write_trace(t, os);
  std::istringstream is(os.str());
  Trace back = read_trace(is);
  ASSERT_EQ(back.collectives().size(), 1u);
  EXPECT_EQ(back.collectives()[0].sends.size(), 1u);
  EXPECT_EQ(back.collectives()[0].recvs.size(), 1u);
}

TEST(TraceIo, PreservesEntryMetadata) {
  TraceBuilder tb;
  tb.add_chare("c");
  EntryId when_e = tb.add_entry("recvResult");
  EntryId serial = tb.add_entry("serial_1", false, 1, {when_e});
  Trace t = tb.finish(1);

  std::ostringstream os;
  write_trace(t, os);
  std::istringstream is(os.str());
  Trace back = read_trace(is);
  EXPECT_EQ(back.entry(serial).sdag_serial, 1);
  ASSERT_EQ(back.entry(serial).when_entries.size(), 1u);
  EXPECT_EQ(back.entry(serial).when_entries[0], when_e);
}

TEST(TraceIo, NamesWithSpacesSurvive) {
  TraceBuilder tb;
  ChareId c = tb.add_chare("a chare with spaces");
  Trace t = tb.finish(1);
  std::ostringstream os;
  write_trace(t, os);
  std::istringstream is(os.str());
  Trace back = read_trace(is);
  EXPECT_EQ(back.chare(c).name, "a chare with spaces");
}

TEST(TraceIo, BadMagicThrows) {
  std::istringstream is("nottrace 1\nend\n");
  EXPECT_THROW(read_trace(is), std::runtime_error);
}

TEST(TraceIo, TruncatedFileThrows) {
  auto m = testing::make_mini_trace();
  std::ostringstream os;
  write_trace(m.trace, os);
  std::string text = os.str();
  text.resize(text.size() / 2);
  std::istringstream is(text);
  EXPECT_THROW(read_trace(is), std::runtime_error);
}

TEST(TraceIo, UnknownRecordThrows) {
  std::istringstream is("lstrace 1\nprocs 1\nbogus 1 2 3\nend\n");
  EXPECT_THROW(read_trace(is), std::runtime_error);
}

TEST(TraceIo, LoadMissingFileThrows) {
  EXPECT_THROW(load_trace("/nonexistent/file.lstrace"), std::runtime_error);
}

TEST(TraceIo, SaveLoadFileRoundTrip) {
  auto m = testing::make_mini_trace();
  std::string path = ::testing::TempDir() + "/io_test.lstrace";
  ASSERT_TRUE(save_trace(m.trace, path));
  Trace back = load_trace(path);
  EXPECT_EQ(back.num_events(), m.trace.num_events());
  std::remove(path.c_str());
}

}  // namespace
}  // namespace logstruct::trace
