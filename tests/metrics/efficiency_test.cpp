/// \file efficiency_test.cpp
/// The time-resolved efficiency suite: golden integer fingerprints over
/// the 12 golden workloads (recorded at threads=1, asserted bit-identical
/// at threads=4 — the PR-4 determinism contract extended to the POP
/// kernels), degraded-window quarantine provenance, and the empty /
/// single-event / zero-span window edge cases.

#include "metrics/efficiency.hpp"

#include <gtest/gtest.h>

#include "metrics/windows.hpp"
#include "order/stepping.hpp"
#include "trace/builder.hpp"
#include "../order/golden_fixtures.hpp"

namespace logstruct::metrics {
namespace {

using order::golden::Fnv;
using order::golden::kGoldens;
using order::golden::ScopedDefaultParallelism;

/// Fingerprint of every integer field the suite computes. Doubles are
/// excluded on purpose (they are derived ratios whose bit patterns may
/// differ across compilers); cross-thread bit-identity of the doubles is
/// asserted separately below.
std::uint64_t suite_hash(const EfficiencySuite& s) {
  Fnv f;
  f.mix(s.kind == WindowKind::TimeBin ? 0 : 1);
  f.mix(s.num_windows());
  f.mix(s.degraded_windows);
  f.mix(s.bin_width_ns);
  for (std::int32_t w = 0; w < s.num_windows(); ++w) {
    const auto wz = static_cast<std::size_t>(w);
    f.mix(s.windows[wz].begin);
    f.mix(s.windows[wz].end);
    f.mix(s.windows[wz].phase);
    f.mix(s.windows[wz].degraded ? 1 : 0);
    f.mix(s.loads.events[wz]);
    f.mix(s.loads.procs_active[wz]);
    f.mix(s.loads.messages[wz]);
    f.mix(s.loads.busy_sum[wz]);
    f.mix(s.loads.busy_max[wz]);
    f.mix(s.loads.ideal_span[wz]);
    f.mix(s.loads.transfer_wait[wz]);
  }
  return f.value();
}

void expect_identical(const EfficiencySuite& a, const EfficiencySuite& b,
                      const char* what) {
  ASSERT_EQ(a.num_windows(), b.num_windows()) << what;
  EXPECT_EQ(a.loads.busy, b.loads.busy) << what;
  EXPECT_EQ(a.loads.ideal_span, b.loads.ideal_span) << what;
  // Exact double equality: the kernels promise bit-identical results for
  // any thread count, not just close ones.
  EXPECT_EQ(a.parallel.per_window, b.parallel.per_window) << what;
  EXPECT_EQ(a.balance.per_window, b.balance.per_window) << what;
  EXPECT_EQ(a.communication.per_window, b.communication.per_window) << what;
  EXPECT_EQ(a.sertrans.serialization, b.sertrans.serialization) << what;
  EXPECT_EQ(a.sertrans.transfer, b.sertrans.transfer) << what;
  EXPECT_EQ(a.parallel.summary.min, b.parallel.summary.min) << what;
  EXPECT_EQ(a.parallel.summary.mean, b.parallel.summary.mean) << what;
  EXPECT_EQ(a.balance.summary.min_window, b.balance.summary.min_window)
      << what;
}

/// Recorded suite_hash values per golden workload, phases suite then an
/// 8-bin time suite, in kGoldens order (threads=1).
struct EffGolden {
  std::uint64_t phases;
  std::uint64_t bins;
};
constexpr EffGolden kEffGoldens[] = {
    {0x4195cee3f6f08dd0ULL, 0x1ed94db1aa9de34aULL},  // jacobi2d/charm
    {0x4195cee3f6f08dd0ULL, 0x1ed94db1aa9de34aULL},  // jacobi2d/no_reorder
    {0x302a75e96f33c00eULL, 0x9949c4811ca48f09ULL},  // lulesh/charm
    {0xc5f9db6ed3f675eaULL, 0x9949c4811ca48f09ULL},  // lulesh/no_inference
    {0xe12a7dc8bbd5eb9cULL, 0x322417054cb8ef99ULL},  // lulesh/mpi
    {0x0140179cf74dda49ULL, 0x322417054cb8ef99ULL},  // lulesh/mpi_baseline13
    {0x0f499ce030e39ca0ULL, 0xdee100e26afd3130ULL},  // lassen/charm
    {0x8ad9e4bf5f10d8b0ULL, 0x735874d0cca4bdc0ULL},  // lassen/mpi
    {0xa162f6f10bad9fbbULL, 0x8c87087c11674901ULL},  // mergetree/mpi
    {0x712390a041b0db77ULL, 0x8c87087c11674901ULL},  // mergetree/baseline13
    {0xdc9670a4c4803b9eULL, 0xa858de261a062d53ULL},  // nasbt/mpi
    {0xd4eb1e5d5126a304ULL, 0xdee869885a41e818ULL},  // pdes/charm
};
static_assert(std::size(kEffGoldens) == std::size(kGoldens));

TEST(EfficiencyGolden, FingerprintsAndThreadMatrix) {
  for (std::size_t i = 0; i < std::size(kGoldens); ++i) {
    const auto& g = kGoldens[i];
    SCOPED_TRACE(g.name);
    ScopedDefaultParallelism serial(1);
    const trace::Trace t = g.make();
    const order::LogicalStructure ls =
        order::extract_structure(t, g.opts());

    const WindowSet phase_set = WindowSet::phases(t, ls.phases);
    const WindowSet bin_set = WindowSet::time_bins(t, 8);

    const EfficiencySuite phases1 = efficiency_suite(t, phase_set, 1);
    const EfficiencySuite bins1 = efficiency_suite(t, bin_set, 1);
    const EfficiencySuite phases4 = efficiency_suite(t, phase_set, 4);
    const EfficiencySuite bins4 = efficiency_suite(t, bin_set, 4);

    EXPECT_EQ(suite_hash(phases1), kEffGoldens[i].phases)
        << g.name << " phases hash 0x" << std::hex << suite_hash(phases1);
    EXPECT_EQ(suite_hash(bins1), kEffGoldens[i].bins)
        << g.name << " bins hash 0x" << std::hex << suite_hash(bins1);
    expect_identical(phases1, phases4, "phases threads 1 vs 4");
    expect_identical(bins1, bins4, "bins threads 1 vs 4");
  }
}

TEST(EfficiencyWindows, TimeBinsPartitionEvents) {
  const trace::Trace t = order::golden::jacobi_small();
  const WindowSet set = WindowSet::time_bins(t, 16);
  ASSERT_EQ(set.size(), 16);
  std::int64_t covered = 0;
  for (const auto view : set) {
    for (trace::EventId e : view.events()) {
      EXPECT_EQ(set.window_of(e), view.index);
      const trace::TimeNs time = t.event(e).time;
      EXPECT_GE(time, view.window().begin);
      EXPECT_LE(time, view.window().end);
    }
    covered += static_cast<std::int64_t>(view.events().size());
  }
  EXPECT_EQ(covered, t.num_events());

  std::int64_t deps = 0;
  for (const auto view : set) deps += view.deps().size();
  EXPECT_EQ(deps, t.num_dependencies());
}

TEST(EfficiencyWindows, DegradedQuarantine) {
  trace::TraceBuilder b;
  const trace::ChareId c0 = b.add_chare("clean");
  const trace::ChareId c1 = b.add_chare("repaired");
  const trace::EntryId e = b.add_entry("work");
  const trace::BlockId b0 = b.begin_block(c0, 0, e, 0);
  const trace::EventId s = b.add_send(b0, 10);
  b.end_block(b0, 20);
  const trace::BlockId b1 = b.begin_block(c1, 1, e, 30);
  b.add_recv(b1, 30, s);
  b.end_block(b1, 50);
  b.mark_degraded(c1);
  const trace::Trace t = b.finish(2);

  // A time bin inherits the flag from any degraded chare's event in it.
  const WindowSet bins = WindowSet::time_bins(t, 2);
  EXPECT_FALSE(bins.window(0).degraded);
  EXPECT_TRUE(bins.window(1).degraded);
  EXPECT_EQ(bins.degraded_windows(), 1);

  // Phase windows carry PhaseResult's quarantine verdict through.
  order::PhaseResult phases;
  phases.events = {{0}, {1}};
  phases.runtime = {false, false};
  phases.phase_of_event = {0, 1};
  phases.degraded = {false, true};
  phases.degraded_phases = 1;
  const WindowSet pw = WindowSet::phases(t, phases);
  EXPECT_EQ(pw.degraded_windows(), 1);
  EXPECT_TRUE(pw.window(1).degraded);

  const EfficiencySuite suite = efficiency_suite(t, pw);
  EXPECT_EQ(suite.degraded_windows, 1);
  EXPECT_EQ(suite.parallel.degraded_windows, 1);
  EXPECT_EQ(suite.balance.degraded_windows, 1);
  EXPECT_EQ(suite.communication.degraded_windows, 1);
  EXPECT_EQ(suite.sertrans.degraded_windows, 1);
}

TEST(EfficiencyEdgeCases, EmptySingleAndZeroSpanWindows) {
  trace::TraceBuilder b;
  const trace::ChareId c0 = b.add_chare("a");
  const trace::ChareId c1 = b.add_chare("b");
  const trace::EntryId e = b.add_entry("work");
  const trace::BlockId b0 = b.begin_block(c0, 0, e, 0);
  const trace::EventId s0 = b.add_send(b0, 40);
  b.end_block(b0, 100);
  const trace::BlockId b1 = b.begin_block(c1, 1, e, 0);
  const trace::EventId s1 = b.add_send(b1, 40);
  b.end_block(b1, 100);
  const trace::Trace t = b.finish(2);

  // Phase 0 owns both events at t=40 (zero span), phase 1 is empty.
  order::PhaseResult phases;
  phases.events = {{s0, s1}, {}};
  phases.runtime = {false, false};
  phases.phase_of_event = {0, 0};
  const WindowSet pw = WindowSet::phases(t, phases);
  ASSERT_EQ(pw.size(), 2);
  EXPECT_EQ(pw.window(0).span(), 0);
  EXPECT_TRUE(pw.events_of(1).empty());

  const EfficiencySuite suite = efficiency_suite(t, pw);
  // Zero-span window with events: everything happened "at once" — all
  // ratios are 1 by convention.
  EXPECT_EQ(suite.parallel.per_window[0], 1.0);
  EXPECT_EQ(suite.balance.per_window[0], 1.0);
  EXPECT_EQ(suite.communication.per_window[0], 1.0);
  EXPECT_EQ(suite.sertrans.serialization[0], 1.0);
  EXPECT_EQ(suite.sertrans.transfer[0], 1.0);
  // Empty window: all zero, and excluded from the summaries.
  EXPECT_EQ(suite.parallel.per_window[1], 0.0);
  EXPECT_EQ(suite.balance.per_window[1], 0.0);
  EXPECT_EQ(suite.parallel.summary.min, 1.0);
  EXPECT_EQ(suite.parallel.summary.min_window, 0);
  EXPECT_EQ(suite.balance.summary.mean, 1.0);

  // A single-event window is well-defined: one proc active, busy equals
  // ideal, so balance and serialization are 1.
  const WindowSet bins = WindowSet::time_bins_of_width(t, 25);
  const std::int32_t w40 = bins.window_of(s0);
  ASSERT_EQ(bins.events_of(w40).size(), 2u);
  const EfficiencySuite bsuite = efficiency_suite(t, bins);
  for (std::int32_t w = 0; w < bsuite.num_windows(); ++w) {
    const auto wz = static_cast<std::size_t>(w);
    if (bsuite.loads.events[wz] == 0) {
      EXPECT_EQ(bsuite.parallel.per_window[wz], 0.0);
      EXPECT_NE(bsuite.balance.summary.min_window, w);
    }
  }
}

TEST(EfficiencyEdgeCases, EmptyTrace) {
  trace::TraceBuilder b;
  const trace::Trace t = b.finish(1);
  const WindowSet bins = WindowSet::time_bins(t, 4);
  EXPECT_EQ(bins.size(), 4);
  const EfficiencySuite suite = efficiency_suite(t, bins);
  EXPECT_EQ(suite.parallel.summary.mean, 0.0);
  EXPECT_EQ(suite.parallel.summary.min_window, -1);
}

}  // namespace
}  // namespace logstruct::metrics
