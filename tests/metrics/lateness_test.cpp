#include "metrics/lateness.hpp"

#include <gtest/gtest.h>

#include "apps/jacobi2d.hpp"
#include "trace/builder.hpp"

namespace logstruct::metrics {
namespace {

using order::extract_structure;
using order::Options;

TEST(Lateness, ZeroWhenSimultaneous) {
  // Two disjoint pairs, identical timings: no lateness anywhere.
  trace::TraceBuilder tb;
  trace::EntryId e = tb.add_entry("go");
  for (int i = 0; i < 2; ++i) {
    trace::ChareId src = tb.add_chare("s" + std::to_string(i));
    trace::ChareId dst = tb.add_chare("d" + std::to_string(i));
    trace::BlockId bs = tb.begin_block(src, i, e, 0);
    trace::EventId s = tb.add_send(bs, 10);
    tb.end_block(bs, 20);
    trace::BlockId bd = tb.begin_block(dst, i, e, 100);
    tb.add_recv(bd, 100, s);
    tb.end_block(bd, 110);
  }
  trace::Trace t = tb.finish(2);
  auto ls = extract_structure(t, Options::charm());
  Lateness l = lateness(t, ls);
  EXPECT_EQ(l.max_value, 0);
  EXPECT_EQ(l.mean, 0.0);
}

TEST(Lateness, MeasuresCompletionSkewAtSameStep) {
  // Same shape, but the second pair runs 500ns later: its events are 500
  // late relative to the first pair at every shared step.
  trace::TraceBuilder tb;
  trace::EntryId e = tb.add_entry("go");
  std::vector<trace::EventId> recvs;
  for (int i = 0; i < 2; ++i) {
    trace::TimeNs d = i * 500;
    trace::ChareId src = tb.add_chare("s" + std::to_string(i));
    trace::ChareId dst = tb.add_chare("d" + std::to_string(i));
    trace::BlockId bs = tb.begin_block(src, i, e, d);
    trace::EventId s = tb.add_send(bs, 10 + d);
    tb.end_block(bs, 20 + d);
    trace::BlockId bd = tb.begin_block(dst, i, e, 100 + d);
    recvs.push_back(tb.add_recv(bd, 100 + d, s));
    tb.end_block(bd, 110 + d);
  }
  trace::Trace t = tb.finish(2);
  auto ls = extract_structure(t, Options::charm());
  // Both pairs may land in one phase or two; lateness compares by global
  // step regardless.
  if (ls.global_step[static_cast<std::size_t>(recvs[0])] ==
      ls.global_step[static_cast<std::size_t>(recvs[1])]) {
    Lateness l = lateness(t, ls);
    EXPECT_EQ(l.per_event[static_cast<std::size_t>(recvs[0])], 0);
    EXPECT_EQ(l.per_event[static_cast<std::size_t>(recvs[1])], 500);
  }
}

TEST(Lateness, NonNegativeAndBoundedByTraceSpan) {
  apps::Jacobi2DConfig cfg;
  cfg.chares_x = 4;
  cfg.chares_y = 4;
  cfg.num_pes = 4;
  cfg.iterations = 2;
  trace::Trace t = apps::run_jacobi2d(cfg);
  auto ls = extract_structure(t, Options::charm());
  Lateness l = lateness(t, ls);
  for (auto v : l.per_event) {
    EXPECT_GE(v, 0);
    EXPECT_LE(v, t.end_time());
  }
}

TEST(Lateness, BlameSumsToGatedReceiveLateness) {
  apps::Jacobi2DConfig cfg;
  cfg.chares_x = 4;
  cfg.chares_y = 4;
  cfg.num_pes = 4;
  cfg.iterations = 2;
  trace::Trace t = apps::run_jacobi2d(cfg);
  auto ls = extract_structure(t, Options::charm());
  Lateness l = lateness(t, ls);
  ASSERT_EQ(l.caused_by_chare.size(),
            static_cast<std::size_t>(t.num_chares()));
  trace::TimeNs blamed = 0;
  for (auto v : l.caused_by_chare) {
    EXPECT_GE(v, 0);
    blamed += v;
  }
  // Every blamed nanosecond is some receive's lateness, so the total is
  // bounded by the sum over all events — and a jacobi halo exchange has
  // late receives, so somebody gets blamed.
  trace::TimeNs total = 0;
  for (auto v : l.per_event) total += v;
  EXPECT_LE(blamed, total);
  EXPECT_GT(blamed, 0);
}

TEST(Lateness, SamePhaseVariantNeverLarger) {
  apps::Jacobi2DConfig cfg;
  cfg.chares_x = 4;
  cfg.chares_y = 4;
  cfg.num_pes = 4;
  cfg.iterations = 2;
  trace::Trace t = apps::run_jacobi2d(cfg);
  auto ls = extract_structure(t, Options::charm());
  Lateness global = lateness(t, ls, /*same_phase_only=*/false);
  Lateness phased = lateness(t, ls, /*same_phase_only=*/true);
  // Restricting the peer group can only raise the per-group minimum the
  // event is compared against... i.e. lateness can only shrink or stay.
  for (trace::EventId e = 0; e < t.num_events(); ++e) {
    EXPECT_LE(phased.per_event[static_cast<std::size_t>(e)],
              global.per_event[static_cast<std::size_t>(e)]);
  }
}

TEST(Lateness, FlagsAsynchronyTheOtherMetricsForgive) {
  // The paper's argument for new metrics: in an asynchronous app, healthy
  // runs still show substantial lateness. Jacobi with noise-free compute
  // still has network jitter; lateness is non-zero while differential
  // duration stays near zero.
  apps::Jacobi2DConfig cfg;
  cfg.chares_x = 4;
  cfg.chares_y = 4;
  cfg.num_pes = 8;
  cfg.iterations = 2;
  cfg.compute_noise_ns = 0;
  trace::Trace t = apps::run_jacobi2d(cfg);
  auto ls = extract_structure(t, Options::charm());
  Lateness l = lateness(t, ls);
  EXPECT_GT(l.max_value, 0);
}

}  // namespace
}  // namespace logstruct::metrics
