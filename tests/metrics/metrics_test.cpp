#include <gtest/gtest.h>

#include "apps/jacobi2d.hpp"
#include "apps/lassen.hpp"
#include "metrics/duration.hpp"
#include "metrics/idle.hpp"
#include "metrics/imbalance.hpp"
#include "metrics/subblock.hpp"
#include "order/stepping.hpp"
#include "trace/builder.hpp"

namespace logstruct::metrics {
namespace {

using order::extract_structure;
using order::Options;

// --- sub-blocks -------------------------------------------------------------

TEST(SubBlocks, DivisionPerFigure13) {
  // Block [0, 100] with recv@10 (trigger), send@40, send@70.
  trace::TraceBuilder tb;
  trace::ChareId src = tb.add_chare("src");
  trace::ChareId c = tb.add_chare("c");
  trace::EntryId e = tb.add_entry("go");
  trace::BlockId bs = tb.begin_block(src, 0, e, 0);
  trace::EventId s = tb.add_send(bs, 5);
  tb.end_block(bs, 6);
  trace::BlockId b = tb.begin_block(c, 1, e, 10);
  trace::EventId r = tb.add_recv(b, 10, s);
  trace::EventId s1 = tb.add_send(b, 40);
  trace::EventId s2 = tb.add_send(b, 70);
  tb.end_block(b, 100);
  trace::Trace t = tb.finish(2);

  auto dur = subblock_durations(t);
  // recv: [10,10] = 0 plus leftover [70,100] = 30 (recv is the trigger).
  EXPECT_EQ(dur[static_cast<std::size_t>(r)], 30);
  EXPECT_EQ(dur[static_cast<std::size_t>(s1)], 30);  // [10,40]
  EXPECT_EQ(dur[static_cast<std::size_t>(s2)], 30);  // [40,70]
}

TEST(SubBlocks, LeftoverToLastEventWithoutTrigger) {
  trace::TraceBuilder tb;
  trace::ChareId c = tb.add_chare("c");
  trace::EntryId e = tb.add_entry("go");
  trace::BlockId b = tb.begin_block(c, 0, e, 0);
  trace::EventId s1 = tb.add_send(b, 20);
  trace::EventId s2 = tb.add_send(b, 50);
  tb.end_block(b, 80);
  trace::Trace t = tb.finish(1);

  auto dur = subblock_durations(t);
  EXPECT_EQ(dur[static_cast<std::size_t>(s1)], 20);       // [0,20]
  EXPECT_EQ(dur[static_cast<std::size_t>(s2)], 30 + 30);  // [20,50]+leftover
}

TEST(SubBlocks, TotalMatchesBlockSpans) {
  apps::Jacobi2DConfig cfg;
  cfg.chares_x = 4;
  cfg.chares_y = 4;
  cfg.num_pes = 4;
  cfg.iterations = 2;
  trace::Trace t = apps::run_jacobi2d(cfg);
  auto dur = subblock_durations(t);
  trace::TimeNs total = 0;
  for (auto d : dur) {
    EXPECT_GE(d, 0);
    total += d;
  }
  trace::TimeNs spans = 0;
  for (trace::BlockId b = 0; b < t.num_blocks(); ++b)
    if (!t.events_of_block(b).empty())
      spans += t.block(b).end - t.block(b).begin;
  EXPECT_EQ(total, spans);
}

// --- idle experienced --------------------------------------------------------

TEST(IdleExperienced, FirstBlockAfterIdleGetsIt) {
  trace::TraceBuilder tb;
  trace::ChareId a = tb.add_chare("a");
  trace::ChareId b = tb.add_chare("b");
  trace::EntryId e = tb.add_entry("go");
  trace::BlockId b0 = tb.begin_block(a, 0, e, 0);
  trace::EventId s = tb.add_send(b0, 10);
  tb.end_block(b0, 20);
  tb.add_idle(1, 0, 100);
  trace::BlockId b1 = tb.begin_block(b, 1, e, 100);
  tb.add_recv(b1, 100, s);
  tb.end_block(b1, 120);
  trace::Trace t = tb.finish(2);

  auto ie = idle_experienced(t);
  EXPECT_EQ(ie.per_block[static_cast<std::size_t>(b1)], 100);
  EXPECT_EQ(ie.per_block[static_cast<std::size_t>(b0)], 0);
}

TEST(IdleExperienced, PropagatesWhileDependencyPredatesIdleEnd) {
  // Paper Fig. 11: idle on proc 1, then three blocks; the first two wait
  // on sends from before the idle's end, the third depends on a send from
  // after it.
  trace::TraceBuilder tb;
  trace::ChareId a = tb.add_chare("a");    // proc 0, the sender
  trace::ChareId w1 = tb.add_chare("w1");  // proc 1
  trace::ChareId w2 = tb.add_chare("w2");  // proc 1
  trace::ChareId w3 = tb.add_chare("w3");  // proc 1
  trace::EntryId e = tb.add_entry("go");

  trace::BlockId ba = tb.begin_block(a, 0, e, 0);
  trace::EventId s1 = tb.add_send(ba, 10);
  trace::EventId s2 = tb.add_send(ba, 20);
  tb.end_block(ba, 30);

  tb.add_idle(1, 0, 200);
  trace::BlockId b1 = tb.begin_block(w1, 1, e, 200);
  tb.add_recv(b1, 200, s1);
  tb.end_block(b1, 240);
  trace::BlockId b2 = tb.begin_block(w2, 1, e, 240);
  tb.add_recv(b2, 240, s2);
  tb.end_block(b2, 280);

  // The third block's dependency is sent at t=260 > idle end (200).
  trace::BlockId ba2 = tb.begin_block(a, 0, e, 250);
  trace::EventId s3 = tb.add_send(ba2, 260);
  tb.end_block(ba2, 270);
  trace::BlockId b3 = tb.begin_block(w3, 1, e, 300);
  tb.add_recv(b3, 300, s3);
  tb.end_block(b3, 340);
  trace::Trace t = tb.finish(2);

  auto ie = idle_experienced(t);
  EXPECT_EQ(ie.per_block[static_cast<std::size_t>(b1)], 200);
  EXPECT_EQ(ie.per_block[static_cast<std::size_t>(b2)], 200);
  EXPECT_EQ(ie.per_block[static_cast<std::size_t>(b3)], 0);
}

TEST(IdleExperienced, StopsAtUnknownDependency) {
  trace::TraceBuilder tb;
  trace::ChareId a = tb.add_chare("a");
  trace::ChareId b = tb.add_chare("b");
  trace::EntryId e = tb.add_entry("go");
  tb.add_idle(0, 0, 50);
  trace::BlockId b1 = tb.begin_block(a, 0, e, 50);
  tb.add_recv(b1, 50, trace::kNone);
  tb.end_block(b1, 60);
  trace::BlockId b2 = tb.begin_block(b, 0, e, 60);  // untraced trigger
  tb.add_recv(b2, 60, trace::kNone);
  tb.end_block(b2, 70);
  trace::Trace t = tb.finish(1);

  auto ie = idle_experienced(t);
  EXPECT_EQ(ie.per_block[static_cast<std::size_t>(b1)], 50);  // first block
  EXPECT_EQ(ie.per_block[static_cast<std::size_t>(b2)], 0);   // walk stops
}

TEST(IdleExperienced, JacobiHasIdleAtReductions) {
  apps::Jacobi2DConfig cfg;
  cfg.chares_x = 4;
  cfg.chares_y = 4;
  cfg.num_pes = 8;
  cfg.iterations = 2;
  trace::Trace t = apps::run_jacobi2d(cfg);
  auto ie = idle_experienced(t);
  trace::TimeNs total = 0;
  for (auto v : ie.per_event) total += v;
  EXPECT_GT(total, 0);
}

// --- differential duration -----------------------------------------------------

TEST(DifferentialDuration, ZeroForUniformWork) {
  // Two chares doing identical work at the same step: no differential.
  trace::TraceBuilder tb;
  trace::EntryId e = tb.add_entry("go");
  for (int i = 0; i < 2; ++i) {
    trace::ChareId src = tb.add_chare("s" + std::to_string(i));
    trace::ChareId dst = tb.add_chare("d" + std::to_string(i));
    trace::BlockId bs = tb.begin_block(src, i, e, 0);
    trace::EventId s = tb.add_send(bs, 50);
    tb.end_block(bs, 60);
    trace::BlockId bd = tb.begin_block(dst, i, e, 100);
    tb.add_recv(bd, 100, s);
    tb.end_block(bd, 110);
  }
  trace::Trace t = tb.finish(2);
  auto ls = extract_structure(t, Options::charm());
  auto dd = differential_duration(t, ls);
  EXPECT_EQ(dd.max_value, 0);
}

TEST(DifferentialDuration, FlagsTheSlowChare) {
  apps::Jacobi2DConfig cfg;
  cfg.chares_x = 4;
  cfg.chares_y = 4;
  cfg.num_pes = 4;
  cfg.iterations = 3;
  cfg.compute_noise_ns = 0;  // uniform except the injected outlier
  cfg.slow_chare = 5;
  cfg.slow_iteration = 1;
  cfg.slow_factor = 8.0;
  trace::Trace t = apps::run_jacobi2d(cfg);
  auto ls = extract_structure(t, Options::charm());
  auto dd = differential_duration(t, ls);
  ASSERT_NE(dd.max_event, trace::kNone);
  // The most extreme differential duration lives on the slow chare.
  EXPECT_EQ(t.chare(t.event(dd.max_event).chare).index, 5);
  EXPECT_GT(dd.max_value,
            static_cast<trace::TimeNs>(cfg.compute_ns * 5));
}

TEST(DifferentialDuration, NonNegative) {
  apps::LassenConfig cfg;
  cfg.iterations = 4;
  trace::Trace t = apps::run_lassen_charm(cfg);
  auto ls = extract_structure(t, Options::charm());
  auto dd = differential_duration(t, ls);
  for (auto v : dd.per_event) EXPECT_GE(v, 0);
}

// --- imbalance -------------------------------------------------------------------

TEST(Imbalance, ZeroOnSingleProc) {
  apps::Jacobi2DConfig cfg;
  cfg.chares_x = 2;
  cfg.chares_y = 2;
  cfg.num_pes = 1;
  cfg.iterations = 2;
  trace::Trace t = apps::run_jacobi2d(cfg);
  auto ls = extract_structure(t, Options::charm());
  auto imb = imbalance(t, ls);
  for (auto v : imb.per_phase) EXPECT_EQ(v, 0);
}

TEST(Imbalance, SlowChareRaisesItsIterationsImbalance) {
  apps::Jacobi2DConfig base;
  base.chares_x = 4;
  base.chares_y = 4;
  base.num_pes = 8;
  base.iterations = 3;
  base.compute_noise_ns = 0;
  apps::Jacobi2DConfig slow = base;
  slow.slow_chare = 5;
  slow.slow_iteration = 1;
  slow.slow_factor = 8.0;

  auto imb_of = [](const apps::Jacobi2DConfig& cfg) {
    trace::Trace t = apps::run_jacobi2d(cfg);
    auto ls = extract_structure(t, Options::charm());
    auto imb = imbalance(t, ls);
    trace::TimeNs max_v = 0;
    for (auto v : imb.per_phase) max_v = std::max(max_v, v);
    return max_v;
  };
  EXPECT_GT(imb_of(slow), imb_of(base) * 3);
}

TEST(Imbalance, PerEventMatchesPhaseProcSpread) {
  apps::Jacobi2DConfig cfg;
  cfg.chares_x = 4;
  cfg.chares_y = 4;
  cfg.num_pes = 4;
  cfg.iterations = 2;
  trace::Trace t = apps::run_jacobi2d(cfg);
  auto ls = extract_structure(t, Options::charm());
  auto imb = imbalance(t, ls);
  for (trace::EventId e = 0; e < t.num_events(); ++e) {
    auto ph = static_cast<std::size_t>(
        ls.phases.phase_of_event[static_cast<std::size_t>(e)]);
    auto pr = static_cast<std::size_t>(t.event(e).proc);
    EXPECT_EQ(imb.per_event[static_cast<std::size_t>(e)],
              std::max<trace::TimeNs>(imb.per_phase_proc[ph][pr], 0));
  }
}

}  // namespace
}  // namespace logstruct::metrics
