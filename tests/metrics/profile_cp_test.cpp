#include <gtest/gtest.h>

#include "apps/jacobi2d.hpp"
#include "apps/lassen.hpp"
#include "metrics/critical_path.hpp"
#include "metrics/profile.hpp"
#include "order/stepping.hpp"
#include "trace/builder.hpp"

namespace logstruct::metrics {
namespace {

using order::extract_structure;
using order::Options;

trace::Trace small_jacobi() {
  apps::Jacobi2DConfig cfg;
  cfg.chares_x = 4;
  cfg.chares_y = 4;
  cfg.num_pes = 4;
  cfg.iterations = 2;
  return apps::run_jacobi2d(cfg);
}

// --- entry profile -----------------------------------------------------

TEST(Profile, EntryTotalsMatchBlockSpans) {
  trace::Trace t = small_jacobi();
  auto rows = entry_profile(t);
  trace::TimeNs total = 0;
  std::int64_t executions = 0;
  for (const auto& r : rows) {
    total += r.total_ns;
    executions += r.executions;
    EXPECT_LE(r.min_ns, r.max_ns);
    EXPECT_GE(r.mean_ns(), static_cast<double>(r.min_ns));
    EXPECT_LE(r.mean_ns(), static_cast<double>(r.max_ns));
  }
  trace::TimeNs spans = 0;
  for (const auto& b : t.blocks()) spans += b.end - b.begin;
  EXPECT_EQ(total, spans);
  EXPECT_EQ(executions, t.num_blocks());
}

TEST(Profile, SortedByTotalDescending) {
  trace::Trace t = small_jacobi();
  auto rows = entry_profile(t);
  for (std::size_t i = 1; i < rows.size(); ++i)
    EXPECT_GE(rows[i - 1].total_ns, rows[i].total_ns);
}

TEST(Profile, ComputeSerialDominatesJacobi) {
  trace::Trace t = small_jacobi();
  auto rows = entry_profile(t);
  ASSERT_FALSE(rows.empty());
  EXPECT_EQ(rows[0].name, "serial_1_compute");
}

TEST(Profile, UtilizationFractionsSumBelowOne) {
  trace::Trace t = small_jacobi();
  for (const auto& row : utilization(t)) {
    EXPECT_GE(row.busy, 0.0);
    EXPECT_GE(row.idle, 0.0);
    EXPECT_GE(row.other, 0.0);
    EXPECT_LE(row.busy + row.idle + row.other, 1.0 + 1e-9);
  }
}

TEST(Profile, PhaseProfileCoversAllBlocksWithEvents) {
  trace::Trace t = small_jacobi();
  auto ls = extract_structure(t, Options::charm());
  auto rows = phase_profile(t, ls);
  std::int64_t blocks = 0;
  for (const auto& r : rows) blocks += r.blocks;
  std::int64_t with_events = 0;
  for (trace::BlockId b = 0; b < t.num_blocks(); ++b)
    if (!t.events_of_block(b).empty()) ++with_events;
  EXPECT_EQ(blocks, with_events);
}

// --- critical path -------------------------------------------------------

TEST(CriticalPath, SimpleChain) {
  // a --10--> b --10--> c with compute between: path covers everything.
  trace::TraceBuilder tb;
  trace::ChareId a = tb.add_chare("a");
  trace::ChareId b = tb.add_chare("b");
  trace::EntryId e = tb.add_entry("go");
  trace::BlockId ba = tb.begin_block(a, 0, e, 0);
  trace::EventId s1 = tb.add_send(ba, 100);  // 100ns compute
  tb.end_block(ba, 100);
  trace::BlockId bb = tb.begin_block(b, 1, e, 150);  // 50ns latency
  trace::EventId r1 = tb.add_recv(bb, 150, s1);
  tb.end_block(bb, 400);  // 250ns handler
  trace::Trace t = tb.finish(2);

  auto ls = extract_structure(t, Options::charm());
  CriticalPath cp = critical_path(t, ls);
  ASSERT_EQ(cp.events.size(), 2u);
  EXPECT_EQ(cp.events[0], s1);
  EXPECT_EQ(cp.events[1], r1);
  // 100 (sub-block of s1) + 50 (latency) + 250 (leftover on trigger).
  EXPECT_EQ(cp.length_ns, 400);
  EXPECT_DOUBLE_EQ(cp.coverage, 1.0);
}

TEST(CriticalPath, PicksTheLongerBranch) {
  trace::TraceBuilder tb;
  trace::ChareId a = tb.add_chare("a");
  trace::ChareId fast = tb.add_chare("fast");
  trace::ChareId slow = tb.add_chare("slow");
  trace::EntryId e = tb.add_entry("go");
  trace::BlockId ba = tb.begin_block(a, 0, e, 0);
  trace::EventId s1 = tb.add_send(ba, 10);
  trace::EventId s2 = tb.add_send(ba, 20);
  tb.end_block(ba, 20);
  trace::BlockId bf = tb.begin_block(fast, 1, e, 60);
  tb.add_recv(bf, 60, s1);
  tb.end_block(bf, 80);
  trace::BlockId bs = tb.begin_block(slow, 2, e, 70);
  trace::EventId rs = tb.add_recv(bs, 70, s2);
  tb.end_block(bs, 900);  // long handler
  trace::Trace t = tb.finish(3);

  auto ls = extract_structure(t, Options::charm());
  CriticalPath cp = critical_path(t, ls);
  EXPECT_EQ(cp.events.back(), rs);
  EXPECT_GT(cp.chare_share[static_cast<std::size_t>(slow)], 800);
}

TEST(CriticalPath, CoverageSubstantialOnRealApps) {
  trace::Trace t = small_jacobi();
  auto ls = extract_structure(t, Options::charm());
  CriticalPath cp = critical_path(t, ls);
  EXPECT_FALSE(cp.events.empty());
  EXPECT_GT(cp.coverage, 0.5);  // bulk-ish app: the path explains most time
  EXPECT_LE(cp.coverage, 1.0 + 1e-9);
  // Path events are causally ordered in time.
  for (std::size_t i = 1; i < cp.events.size(); ++i) {
    EXPECT_LE(t.event(cp.events[i - 1]).time, t.event(cp.events[i]).time);
  }
}

TEST(CriticalPath, LassenPathThroughWavefront) {
  apps::LassenConfig cfg;
  cfg.iterations = 6;
  trace::Trace t = apps::run_lassen_charm(cfg);
  auto ls = extract_structure(t, Options::charm());
  CriticalPath cp = critical_path(t, ls);
  // The heavy wavefront chares carry most of the on-path compute.
  trace::TimeNs front_share = 0, total_share = 0;
  for (trace::ChareId c = 0; c < t.num_chares(); ++c) {
    total_share += cp.chare_share[static_cast<std::size_t>(c)];
    if (!t.chare(c).runtime && t.chare(c).index >= 0 &&
        t.chare(c).index % cfg.chares_x <= 1 &&
        t.chare(c).index / cfg.chares_x <= 1)
      front_share += cp.chare_share[static_cast<std::size_t>(c)];
  }
  EXPECT_GT(total_share, 0);
  EXPECT_GT(static_cast<double>(front_share) /
                static_cast<double>(total_share),
            0.3);
}

}  // namespace
}  // namespace logstruct::metrics
