#include "sim/charm/loadbalancer.hpp"

#include "sim/charm/runtime.hpp"

#include <gtest/gtest.h>

#include <map>
#include <set>

#include "apps/jacobi2d.hpp"
#include "metrics/imbalance.hpp"
#include "order/stats.hpp"
#include "order/stepping.hpp"
#include "trace/validate.hpp"

namespace logstruct::sim::charm {
namespace {

apps::Jacobi2DConfig lb_config(LbStrategy strategy) {
  apps::Jacobi2DConfig cfg;
  cfg.chares_x = 4;
  cfg.chares_y = 4;
  cfg.num_pes = 4;
  cfg.iterations = 6;
  cfg.lb_at_iteration = 2;
  cfg.lb_strategy = strategy;
  return cfg;
}

TEST(LoadBalancer, TraceValidAndRunCompletes) {
  for (LbStrategy s : {LbStrategy::Rotate, LbStrategy::Greedy}) {
    trace::Trace t = apps::run_jacobi2d(lb_config(s));
    auto problems = trace::validate(t);
    EXPECT_TRUE(problems.empty()) << problems.front();
    // All iterations ran despite the barrier swap.
    int computes = 0;
    for (const auto& b : t.blocks())
      if (t.entry(b.entry).name == "serial_1_compute") ++computes;
    EXPECT_EQ(computes, 16 * 6);
  }
}

TEST(LoadBalancer, LbManagerAppearsAsRuntimeChare) {
  trace::Trace t = apps::run_jacobi2d(lb_config(LbStrategy::Rotate));
  bool found = false;
  for (trace::ChareId c = 0; c < t.num_chares(); ++c) {
    if (t.chare(c).name == "LBManager") {
      EXPECT_TRUE(t.chare(c).runtime);
      EXPECT_FALSE(t.blocks_of_chare(c).empty());
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST(LoadBalancer, RotateMovesEveryChare) {
  trace::Trace t = apps::run_jacobi2d(lb_config(LbStrategy::Rotate));
  int moved = 0;
  for (trace::ChareId c = 0; c < t.num_chares(); ++c) {
    if (t.chare(c).runtime || t.chare(c).array != 0) continue;
    std::set<trace::ProcId> procs;
    for (trace::BlockId b : t.blocks_of_chare(c))
      procs.insert(t.block(b).proc);
    if (procs.size() > 1) ++moved;
  }
  EXPECT_EQ(moved, 16);
}

TEST(LoadBalancer, GreedyRebalancesInjectedHotspot) {
  // Compare per-PE busy time in the tail iterations with and without LB.
  apps::Jacobi2DConfig base;
  base.chares_x = 4;
  base.chares_y = 4;
  base.num_pes = 4;
  base.iterations = 6;
  base.compute_noise_ns = 40000;  // strong static load variation
  apps::Jacobi2DConfig balanced = base;
  balanced.lb_at_iteration = 2;
  balanced.lb_strategy = LbStrategy::Greedy;

  auto tail_spread = [](const trace::Trace& t) {
    // Busy time per PE in the second half of the run.
    trace::TimeNs half = t.end_time() / 2;
    std::map<trace::ProcId, trace::TimeNs> busy;
    for (const auto& b : t.blocks())
      if (b.begin >= half) busy[b.proc] += b.end - b.begin;
    trace::TimeNs lo = -1, hi = 0;
    for (auto& [p, v] : busy) {
      if (lo < 0 || v < lo) lo = v;
      hi = std::max(hi, v);
    }
    return hi - lo;
  };
  trace::Trace t_base = apps::run_jacobi2d(base);
  trace::Trace t_bal = apps::run_jacobi2d(balanced);
  // The balanced run must not be worse than unbalanced by more than noise;
  // typically it is strictly better. (Jacobi with uniform noise is nearly
  // balanced already, so assert a weak bound plus trace validity.)
  EXPECT_LE(tail_spread(t_bal), tail_spread(t_base) * 2);
  EXPECT_TRUE(trace::validate(t_bal).empty());
}

TEST(LoadBalancer, StructureInvariantsHoldAfterLb) {
  trace::Trace t = apps::run_jacobi2d(lb_config(LbStrategy::Greedy));
  order::LogicalStructure ls =
      order::extract_structure(t, order::Options::charm());
  order::StructureStats s = order::compute_stats(t, ls);
  EXPECT_EQ(s.chare_step_violations, 0);
  EXPECT_EQ(s.order_conflicts, 0);
  // The LB step shows up as (part of) a runtime phase between the
  // app-phase iterations.
  EXPECT_GE(s.runtime_phases, 5);  // 5 reductions + LB (may merge/split)
}

TEST(LoadBalancer, DeterministicForSeed) {
  trace::Trace a = apps::run_jacobi2d(lb_config(LbStrategy::Greedy));
  trace::Trace b = apps::run_jacobi2d(lb_config(LbStrategy::Greedy));
  ASSERT_EQ(a.num_events(), b.num_events());
  for (trace::EventId i = 0; i < a.num_events(); ++i)
    EXPECT_EQ(a.event(i).time, b.event(i).time);
}

TEST(LoadBalancerDeathTest, AtSyncWithoutConfigureAborts) {
  // A chare calling at_sync() without configure_lb must abort with a
  // clear message.
  RuntimeConfig rc;
  rc.num_pes = 1;
  Runtime rt(rc);
  trace::EntryId go = rt.register_entry("go");
  class Sync final : public Chare {
   public:
    void on_message(trace::EntryId, const MsgData&) override {
      rt().at_sync();
    }
  };
  trace::ArrayId arr = rt.create_array<Sync>("s", 1, Placement::Block);
  rt.start(rt.array_element(arr, 0), go);
  EXPECT_DEATH(rt.run(), "configure_lb");
}

}  // namespace
}  // namespace logstruct::sim::charm
