#include "sim/charm/runtime.hpp"

#include <gtest/gtest.h>

#include "sim/charm/chare.hpp"
#include "trace/validate.hpp"

namespace logstruct::sim::charm {
namespace {

using trace::EntryId;
using trace::kNone;

/// Ping-pong pair used across tests: chare 0 sends `rounds` pings; chare 1
/// pongs each back.
struct PingPongEntries {
  EntryId start;
  EntryId ping;
  EntryId pong;
};

class PingPong final : public Chare {
 public:
  PingPong(const PingPongEntries& e, std::int32_t rounds)
      : e_(&e), rounds_(rounds) {}

  void on_message(EntryId entry, const MsgData&) override {
    if (entry == e_->start) {
      rt().compute(100);
      rt().send(rt().array_element(array(), 1), e_->ping);
    } else if (entry == e_->ping) {
      rt().compute(50);
      rt().send(rt().array_element(array(), 0), e_->pong);
    } else {  // pong
      rt().compute(50);
      if (++seen_ < rounds_)
        rt().send(rt().array_element(array(), 1), e_->ping);
    }
  }

 private:
  const PingPongEntries* e_;
  std::int32_t rounds_;
  std::int32_t seen_ = 0;
};

trace::Trace run_pingpong(std::int32_t rounds, std::uint64_t seed = 1) {
  RuntimeConfig rc;
  rc.num_pes = 2;
  rc.seed = seed;
  Runtime rt(rc);
  PingPongEntries e;
  e.start = rt.register_entry("start");
  e.ping = rt.register_entry("ping");
  e.pong = rt.register_entry("pong");
  trace::ArrayId arr =
      rt.create_array<PingPong>("pp", 2, Placement::Block, e, rounds);
  rt.start(rt.array_element(arr, 0), e.start);
  return rt.run();
}

TEST(CharmRuntime, PingPongTraceIsValid) {
  trace::Trace t = run_pingpong(3);
  auto problems = trace::validate(t);
  EXPECT_TRUE(problems.empty()) << problems.front();
}

TEST(CharmRuntime, PingPongEventCounts) {
  trace::Trace t = run_pingpong(3);
  // start block: 1 send. Each round: ping recv+pong send on chare1, pong
  // recv (+maybe ping send) on chare0. Sends: 1 + 3 + 3 - 1 (last pong not
  // answered) = wait: chare0 sends ping on start and after pong 1,2 (not
  // after 3): 3 pings; chare1 sends 3 pongs. Total sends 6, recvs 6.
  int sends = 0, recvs = 0;
  for (const auto& e : t.events()) {
    if (e.kind == trace::EventKind::Send) ++sends;
    else ++recvs;
  }
  EXPECT_EQ(sends, 6);
  EXPECT_EQ(recvs, 6);
  // Every recv is matched (all sends traced).
  for (const auto& e : t.events())
    if (e.kind == trace::EventKind::Recv) {
      EXPECT_NE(e.partner, kNone);
    }
}

TEST(CharmRuntime, DeterministicForSeed) {
  trace::Trace a = run_pingpong(5, 42);
  trace::Trace b = run_pingpong(5, 42);
  ASSERT_EQ(a.num_events(), b.num_events());
  for (trace::EventId i = 0; i < a.num_events(); ++i) {
    EXPECT_EQ(a.event(i).time, b.event(i).time);
    EXPECT_EQ(a.event(i).chare, b.event(i).chare);
  }
}

TEST(CharmRuntime, SeedChangesTimings) {
  trace::Trace a = run_pingpong(5, 1);
  trace::Trace b = run_pingpong(5, 2);
  ASSERT_EQ(a.num_events(), b.num_events());
  bool any_diff = false;
  for (trace::EventId i = 0; i < a.num_events(); ++i)
    if (a.event(i).time != b.event(i).time) any_diff = true;
  EXPECT_TRUE(any_diff);
}

TEST(CharmRuntime, BootstrapBlockHasNoTrigger) {
  trace::Trace t = run_pingpong(1);
  // First block (start entry) has no trigger recv.
  bool found = false;
  for (trace::BlockId b = 0; b < t.num_blocks(); ++b) {
    if (t.entry(t.block(b).entry).name == "start") {
      EXPECT_EQ(t.block(b).trigger, kNone);
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST(CharmRuntime, ReductionMgrCharesExist) {
  trace::Trace t = run_pingpong(1);
  int mgrs = 0;
  for (const auto& c : t.chares())
    if (c.runtime) ++mgrs;
  EXPECT_EQ(mgrs, 2);  // one CkReductionMgr per PE
}

TEST(CharmRuntime, IdleRecordedBetweenRounds) {
  // Cross-PE latency means each chare idles while waiting; at least one
  // idle span must be recorded.
  trace::Trace t = run_pingpong(3);
  EXPECT_FALSE(t.idles().empty());
}

// --- reductions ---------------------------------------------------------

struct RedEntries {
  EntryId start;
  EntryId result;
};

class Reducer final : public Chare {
 public:
  Reducer(const RedEntries& e, ReducerOp op, double* out)
      : e_(&e), op_(op), out_(out) {}

  void on_message(EntryId entry, const MsgData& data) override {
    if (entry == e_->start) {
      rt().compute(100);
      rt().contribute(static_cast<double>(index() + 1), op_,
                      Callback::send(rt().array_element(array(), 0),
                                     e_->result));
    } else {
      *out_ = data.doubles.at(0);
    }
  }

 private:
  const RedEntries* e_;
  ReducerOp op_;
  double* out_;
};

double run_reduction(std::int32_t n, std::int32_t pes, ReducerOp op,
                     bool trace_local = true,
                     trace::Trace* trace_out = nullptr) {
  RuntimeConfig rc;
  rc.num_pes = pes;
  rc.trace_local_reductions = trace_local;
  Runtime rt(rc);
  RedEntries e;
  e.start = rt.register_entry("start");
  e.result = rt.register_entry("result");
  double out = -1;
  trace::ArrayId arr =
      rt.create_array<Reducer>("red", n, Placement::Block, e, op, &out);
  // Kick every element.
  class Kick final : public Chare {
   public:
    Kick(trace::ArrayId a, EntryId start) : a_(a), start_(start) {}
    void on_message(EntryId, const MsgData&) override {
      rt().broadcast(a_, start_);
    }
   private:
    trace::ArrayId a_;
    EntryId start_;
  };
  EntryId kick = rt.register_entry("kick");
  trace::ChareId main =
      rt.create_singleton<Kick>("main", 0, false, arr, e.start);
  rt.start(main, kick);
  trace::Trace t = rt.run();
  if (trace_out) *trace_out = std::move(t);
  return out;
}

TEST(CharmReduction, SumOverOnePe) {
  EXPECT_DOUBLE_EQ(run_reduction(4, 1, ReducerOp::Sum), 10.0);
}

TEST(CharmReduction, SumOverManyPes) {
  EXPECT_DOUBLE_EQ(run_reduction(16, 4, ReducerOp::Sum), 136.0);
}

TEST(CharmReduction, SumMorePesThanUsed) {
  // Array on fewer PEs than the machine has: only hosting PEs participate.
  EXPECT_DOUBLE_EQ(run_reduction(3, 8, ReducerOp::Sum), 6.0);
}

TEST(CharmReduction, MaxAndMin) {
  EXPECT_DOUBLE_EQ(run_reduction(8, 2, ReducerOp::Max), 8.0);
  EXPECT_DOUBLE_EQ(run_reduction(8, 2, ReducerOp::Min), 1.0);
}

TEST(CharmReduction, Section5TracingAddsLocalEvents) {
  trace::Trace with{}, without{};
  run_reduction(16, 4, ReducerOp::Sum, true, &with);
  run_reduction(16, 4, ReducerOp::Sum, false, &without);
  EXPECT_GT(with.num_events(), without.num_events());
  // Same physical behaviour: identical end time (tracing is free in the
  // simulator).
  EXPECT_EQ(with.end_time(), without.end_time());
  EXPECT_TRUE(trace::validate(with).empty());
  EXPECT_TRUE(trace::validate(without).empty());
}

TEST(CharmReduction, LocalReductionEventsAreRuntimeEvents) {
  trace::Trace t{};
  run_reduction(16, 4, ReducerOp::Sum, true, &t);
  // Every event on a runtime chare must classify as runtime.
  int runtime_events = 0;
  for (trace::EventId i = 0; i < t.num_events(); ++i) {
    if (t.chare(t.event(i).chare).runtime) {
      EXPECT_TRUE(t.is_runtime_event(i));
      ++runtime_events;
    }
  }
  EXPECT_GT(runtime_events, 0);
}

// --- broadcast + immediates ---------------------------------------------

TEST(CharmRuntime, BroadcastSingleSendManyRecvs) {
  RuntimeConfig rc;
  rc.num_pes = 2;
  Runtime rt(rc);
  EntryId go = rt.register_entry("go");
  EntryId noop = rt.register_entry("noop");
  class Noop final : public Chare {
   public:
    void on_message(EntryId, const MsgData&) override { rt().compute(10); }
  };
  class Caster final : public Chare {
   public:
    Caster(trace::ArrayId a, EntryId e) : a_(a), e_(e) {}
    void on_message(EntryId, const MsgData&) override {
      rt().broadcast(a_, e_);
    }
   private:
    trace::ArrayId a_;
    EntryId e_;
  };
  trace::ArrayId arr = rt.create_array<Noop>("n", 6, Placement::Block);
  trace::ChareId main =
      rt.create_singleton<Caster>("main", 0, false, arr, noop);
  rt.start(main, go);
  trace::Trace t = rt.run();

  int sends = 0, recvs = 0;
  trace::EventId the_send = trace::kNone;
  for (trace::EventId i = 0; i < t.num_events(); ++i) {
    if (t.event(i).kind == trace::EventKind::Send) {
      ++sends;
      the_send = i;
    } else {
      ++recvs;
    }
  }
  EXPECT_EQ(sends, 1);
  EXPECT_EQ(recvs, 6);
  EXPECT_EQ(t.receivers(the_send).size(), 6u);
}

TEST(CharmRuntime, ImmediateSerialContiguous) {
  RuntimeConfig rc;
  rc.num_pes = 1;
  Runtime rt(rc);
  EntryId go = rt.register_entry("go");
  EntryId serial = rt.register_entry("serial_0", false, 0, {go});
  class S final : public Chare {
   public:
    explicit S(EntryId serial) : serial_(serial) {}
    void on_message(EntryId entry, const MsgData&) override {
      if (entry != serial_) {
        rt().compute(100);
        rt().schedule_immediate(serial_);
      } else {
        rt().compute(50);
      }
    }
   private:
    EntryId serial_;
  };
  trace::ArrayId arr = rt.create_array<S>("s", 1, Placement::Block, serial);
  rt.start(rt.array_element(arr, 0), go);
  trace::Trace t = rt.run();

  // Two blocks on the chare, back to back.
  auto blocks = t.blocks_of_chare(t.chares().size() >= 1
                                      ? t.num_chares() - 1
                                      : 0);
  ASSERT_EQ(blocks.size(), 2u);
  EXPECT_EQ(t.block(blocks[0]).end, t.block(blocks[1]).begin);
  EXPECT_EQ(t.entry(t.block(blocks[1]).entry).sdag_serial, 0);
}

TEST(CharmRuntimeDeathTest, SendOutsideEntryAborts) {
  RuntimeConfig rc;
  rc.num_pes = 1;
  Runtime rt(rc);
  EntryId go = rt.register_entry("go");
  EXPECT_DEATH(rt.send(0, go), "outside an entry method");
}

TEST(CharmRuntime, PlacementBlockAndRoundRobin) {
  RuntimeConfig rc;
  rc.num_pes = 4;
  Runtime rt(rc);
  class Noop final : public Chare {
   public:
    void on_message(EntryId, const MsgData&) override {}
  };
  trace::ArrayId blk = rt.create_array<Noop>("b", 8, Placement::Block);
  trace::ArrayId rr = rt.create_array<Noop>("r", 8, Placement::RoundRobin);
  EXPECT_EQ(rt.pe_of(rt.array_element(blk, 0)), 0);
  EXPECT_EQ(rt.pe_of(rt.array_element(blk, 1)), 0);
  EXPECT_EQ(rt.pe_of(rt.array_element(blk, 7)), 3);
  EXPECT_EQ(rt.pe_of(rt.array_element(rr, 5)), 1);
  EXPECT_EQ(rt.pe_of(rt.array_element(rr, 7)), 3);
}

}  // namespace
}  // namespace logstruct::sim::charm
