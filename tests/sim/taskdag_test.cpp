#include "sim/taskdag/taskdag.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

#include "order/stats.hpp"
#include "order/stepping.hpp"
#include "order/validate.hpp"
#include "trace/validate.hpp"
#include "util/rng.hpp"

namespace logstruct::sim::taskdag {
namespace {

TEST(TaskDag, StencilTraceIsValid) {
  TaskGraph g = stencil_1d(8, 5);
  trace::Trace t = simulate(g, TaskDagConfig{});
  auto problems = trace::validate(t);
  EXPECT_TRUE(problems.empty()) << problems.front();
  EXPECT_EQ(t.num_blocks(), 40);  // one block per task
  EXPECT_EQ(t.num_chares(), 8);   // owners become chares
}

TEST(TaskDag, DependencyEventsMatch) {
  TaskGraph g = stencil_1d(4, 3);
  trace::Trace t = simulate(g, TaskDagConfig{});
  // Every recv is matched, and matched sends precede their recvs.
  int recvs = 0;
  for (const auto& e : t.events()) {
    if (e.kind != trace::EventKind::Recv) continue;
    ++recvs;
    ASSERT_NE(e.partner, trace::kNone);
    EXPECT_LT(t.event(e.partner).time, e.time);
  }
  // Dependencies: interior tasks of steps 1..2 have 3, edges 2.
  // width=4: per step, deps = 2+3+3+2 = 10; two dependent steps.
  EXPECT_EQ(recvs, 20);
}

TEST(TaskDag, RespectsDependencies) {
  TaskGraph g;
  TaskId a = g.add(0, 1000, {}, "first");
  TaskId b = g.add(1, 1000, {a}, "second");
  TaskDagConfig cfg;
  cfg.num_workers = 2;
  trace::Trace t = simulate(g, cfg);
  // b's block begins after a's end plus the ready latency.
  const auto& ba = t.block(0);
  const auto& bb = t.block(1);
  (void)ba;
  EXPECT_GE(bb.begin, 1000 + cfg.ready_latency_ns);
  (void)b;
}

TEST(TaskDag, SchedulingUsesAllWorkers) {
  TaskGraph g = stencil_1d(16, 4);
  TaskDagConfig cfg;
  cfg.num_workers = 4;
  trace::Trace t = simulate(g, cfg);
  std::set<trace::ProcId> used;
  for (const auto& b : t.blocks()) used.insert(b.proc);
  EXPECT_EQ(used.size(), 4u);
}

TEST(TaskDag, DeterministicForSeed) {
  TaskGraph g = stencil_1d(8, 4);
  TaskDagConfig cfg;
  cfg.seed = 77;
  trace::Trace a = simulate(g, cfg);
  trace::Trace b = simulate(g, cfg);
  ASSERT_EQ(a.num_events(), b.num_events());
  for (trace::EventId i = 0; i < a.num_events(); ++i)
    EXPECT_EQ(a.event(i).time, b.event(i).time);
}

TEST(TaskDag, SeedChangesSchedule) {
  TaskGraph g = stencil_1d(8, 4);
  TaskDagConfig c1;
  c1.seed = 1;
  TaskDagConfig c2;
  c2.seed = 2;
  trace::Trace a = simulate(g, c1);
  trace::Trace b = simulate(g, c2);
  bool differs = a.num_events() != b.num_events();
  for (trace::EventId i = 0; !differs && i < a.num_events(); ++i)
    differs = a.event(i).time != b.event(i).time ||
              a.event(i).chare != b.event(i).chare;
  EXPECT_TRUE(differs);
}

/// The §7 claim: the same pipeline recovers structure from this non-Charm
/// task model — sub-domain timelines, aligned steps, sound DAG.
TEST(TaskDag, PipelineRecoversStencilStructure) {
  TaskGraph g = stencil_1d(8, 6);
  trace::Trace t = simulate(g, TaskDagConfig{});
  order::LogicalStructure ls =
      order::extract_structure(t, order::Options::charm());
  EXPECT_TRUE(order::validate_structure(t, ls).empty());

  // Time steps form clean bands: the k-th task of every owner starts
  // within a bounded step band (edge tasks carry fewer dependency events
  // than interior ones, so per-chare chains differ by a few steps before
  // the cross-dependencies re-synchronize them), and band k ends strictly
  // before band k+1 begins — the wavefront structure the developer
  // wrote, recovered from a scrambled schedule.
  std::vector<std::int32_t> band_min(6, 1 << 30), band_max(6, -1);
  for (trace::ChareId c = 0; c < t.num_chares(); ++c) {
    auto blocks = t.blocks_of_chare(c);
    ASSERT_EQ(blocks.size(), 6u);
    for (std::int32_t k = 0; k < 6; ++k) {
      const auto bev =
          t.events_of_block(blocks[static_cast<std::size_t>(k)]);
      ASSERT_FALSE(bev.empty());
      std::int32_t st =
          ls.global_step[static_cast<std::size_t>(bev.front())];
      band_min[static_cast<std::size_t>(k)] =
          std::min(band_min[static_cast<std::size_t>(k)], st);
      band_max[static_cast<std::size_t>(k)] =
          std::max(band_max[static_cast<std::size_t>(k)], st);
    }
  }
  for (std::int32_t k = 0; k < 6; ++k) {
    EXPECT_LE(band_max[static_cast<std::size_t>(k)] -
                  band_min[static_cast<std::size_t>(k)],
              6)
        << "band " << k << " too ragged";
    if (k > 0) {
      EXPECT_LT(band_max[static_cast<std::size_t>(k - 1)],
                band_min[static_cast<std::size_t>(k)])
          << "bands " << k - 1 << " and " << k << " interleave";
    }
  }
}

TEST(TaskDag, ForkJoinStructureSound) {
  TaskGraph g = fork_join(5);
  trace::Trace t = simulate(g, TaskDagConfig{});
  EXPECT_TRUE(trace::validate(t).empty());
  order::LogicalStructure ls =
      order::extract_structure(t, order::Options::charm());
  EXPECT_TRUE(order::validate_structure(t, ls).empty());
  // 2^5-1 fork-side tasks... levels=5: fork/leaf tasks = 31, joins = 15.
  EXPECT_EQ(t.num_blocks(), 46);
  // The root's fork is step 0; the final join owns the maximum step.
  order::StructureStats s = order::compute_stats(t, ls);
  EXPECT_GT(s.width, 2 * 5);  // at least down-and-up the tree
}

/// Random DAGs: arbitrary owners, durations, and dependency fan-in.
class RandomGraphs : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RandomGraphs, PipelineSound) {
  util::Rng rng(GetParam());
  TaskGraph g;
  const std::int32_t owners = 2 + static_cast<std::int32_t>(rng.uniform(6));
  const std::int32_t n = 10 + static_cast<std::int32_t>(rng.uniform(50));
  for (std::int32_t i = 0; i < n; ++i) {
    std::vector<TaskId> deps;
    std::size_t fanin = rng.uniform(4);
    for (std::size_t k = 0; k < fanin && i > 0; ++k) {
      TaskId d = static_cast<TaskId>(rng.uniform(
          static_cast<std::uint64_t>(i)));
      if (std::find(deps.begin(), deps.end(), d) == deps.end())
        deps.push_back(d);
    }
    g.add(static_cast<std::int32_t>(rng.uniform(
              static_cast<std::uint64_t>(owners))),
          100 + static_cast<trace::TimeNs>(rng.uniform(5000)),
          std::move(deps), "t" + std::to_string(i % 3));
  }
  TaskDagConfig cfg;
  cfg.num_workers = 1 + static_cast<std::int32_t>(rng.uniform(6));
  cfg.seed = GetParam();
  trace::Trace t = simulate(g, cfg);
  ASSERT_TRUE(trace::validate(t).empty());
  order::LogicalStructure ls =
      order::extract_structure(t, order::Options::charm());
  auto problems = order::validate_structure(t, ls);
  EXPECT_TRUE(problems.empty()) << problems.front();
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomGraphs,
                         ::testing::Range<std::uint64_t>(1, 25));

TEST(TaskDagDeathTest, ForwardDependencyRejected) {
  TaskGraph g;
  g.add(0, 100, {}, "a");
  EXPECT_DEATH(g.add(0, 100, {5}, "bad"), "later task");
}

}  // namespace
}  // namespace logstruct::sim::taskdag
