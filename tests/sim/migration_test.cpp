#include <gtest/gtest.h>

#include <set>

#include "apps/jacobi2d.hpp"
#include "order/stats.hpp"
#include "order/stepping.hpp"
#include "trace/validate.hpp"

namespace logstruct::sim::charm {
namespace {

apps::Jacobi2DConfig migrating_config() {
  apps::Jacobi2DConfig cfg;
  cfg.chares_x = 4;
  cfg.chares_y = 4;
  cfg.num_pes = 4;
  cfg.iterations = 4;
  cfg.migrate_at_iteration = 1;  // rotate PEs at the start of iteration 2
  return cfg;
}

TEST(Migration, TraceStaysValid) {
  trace::Trace t = apps::run_jacobi2d(migrating_config());
  auto problems = trace::validate(t);
  EXPECT_TRUE(problems.empty()) << problems.front();
}

TEST(Migration, CharesSpanProcessors) {
  trace::Trace t = apps::run_jacobi2d(migrating_config());
  int spanning = 0;
  for (trace::ChareId c = 0; c < t.num_chares(); ++c) {
    if (t.chare(c).runtime) continue;
    std::set<trace::ProcId> procs;
    for (trace::BlockId b : t.blocks_of_chare(c)) procs.insert(
        t.block(b).proc);
    if (procs.size() > 1) ++spanning;
  }
  // Every application chare moved once.
  EXPECT_EQ(spanning, 16);
}

TEST(Migration, AllIterationsStillComplete) {
  apps::Jacobi2DConfig cfg = migrating_config();
  trace::Trace t = apps::run_jacobi2d(cfg);
  std::vector<int> count(static_cast<std::size_t>(t.num_chares()), 0);
  for (const auto& b : t.blocks()) {
    if (t.entry(b.entry).name == "serial_1_compute")
      ++count[static_cast<std::size_t>(b.chare)];
  }
  for (trace::ChareId c = 0; c < t.num_chares(); ++c) {
    if (!t.chare(c).runtime && t.chare(c).array == 0) {
      EXPECT_EQ(count[static_cast<std::size_t>(c)], cfg.iterations)
          << "chare " << c;
    }
  }
}

TEST(Migration, ReductionsSurviveTheMove) {
  // 4 iterations => 4 completed reductions => 4 resume broadcasts plus
  // the final one that ends the run. If a reduction stalled, the run
  // would deadlock in the scheduler (pending messages never drain) or
  // miss iterations — covered above — so here check the broadcast count.
  trace::Trace t = apps::run_jacobi2d(migrating_config());
  int resumes = 0;
  for (const auto& b : t.blocks()) {
    if (t.entry(b.entry).name == "resume" && b.trigger != trace::kNone)
      ++resumes;
  }
  // 16 chares x (iterations + 1) resume deliveries (main's kick is the
  // 'resume' broadcast too).
  EXPECT_EQ(resumes, 16 * 5);
}

TEST(Migration, StructureInvariantsHold) {
  trace::Trace t = apps::run_jacobi2d(migrating_config());
  order::LogicalStructure ls =
      order::extract_structure(t, order::Options::charm());
  order::StructureStats s = order::compute_stats(t, ls);
  EXPECT_EQ(s.chare_step_violations, 0);
  EXPECT_EQ(s.order_conflicts, 0);
  // Phase pattern unchanged by migration: app/runtime alternation with
  // one app phase per iteration (plus setup).
  EXPECT_EQ(s.runtime_phases, 4);
}

TEST(Migration, DeterministicForSeed) {
  trace::Trace a = apps::run_jacobi2d(migrating_config());
  trace::Trace b = apps::run_jacobi2d(migrating_config());
  ASSERT_EQ(a.num_events(), b.num_events());
  for (trace::EventId i = 0; i < a.num_events(); ++i)
    EXPECT_EQ(a.event(i).time, b.event(i).time);
}

}  // namespace
}  // namespace logstruct::sim::charm
