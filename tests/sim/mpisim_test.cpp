#include "sim/mpi/mpisim.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "trace/validate.hpp"

namespace logstruct::sim::mpi {
namespace {

TEST(MpiSim, SendRecvPair) {
  Program p(2);
  p.send(0, 1, 0);
  p.recv(1, 0, 0);
  MpiConfig cfg;
  trace::Trace t = simulate(p, cfg);
  EXPECT_TRUE(trace::validate(t).empty());
  EXPECT_EQ(t.num_events(), 2);
  EXPECT_EQ(t.num_blocks(), 2);

  const auto& send = t.event(0);
  const auto& recv = t.event(1);
  EXPECT_EQ(send.kind, trace::EventKind::Send);
  EXPECT_EQ(recv.kind, trace::EventKind::Recv);
  EXPECT_EQ(recv.partner, 0);
  EXPECT_GE(recv.time, send.time + cfg.base_latency_ns);
}

TEST(MpiSim, RecvWaitRecordedAsIdle) {
  Program p(2);
  p.send(0, 1, 0);
  p.recv(1, 0, 0);  // rank 1 waits for the network latency
  MpiConfig cfg;
  trace::Trace t = simulate(p, cfg);
  ASSERT_EQ(t.idles().size(), 1u);
  EXPECT_EQ(t.idles()[0].proc, 1);
}

TEST(MpiSim, IdleRecordingCanBeDisabled) {
  Program p(2);
  p.send(0, 1, 0);
  p.recv(1, 0, 0);
  MpiConfig cfg;
  cfg.record_recv_wait_as_idle = false;
  trace::Trace t = simulate(p, cfg);
  EXPECT_TRUE(t.idles().empty());
}

TEST(MpiSim, FifoMatchingPerChannel) {
  Program p(2);
  p.send(0, 1, 7);
  p.send(0, 1, 7);
  p.recv(1, 0, 7);
  p.recv(1, 0, 7);
  trace::Trace t = simulate(p, MpiConfig{});
  // First recv matches first send.
  trace::EventId first_send = 0;
  bool checked = false;
  for (trace::EventId i = 0; i < t.num_events(); ++i) {
    if (t.event(i).kind == trace::EventKind::Recv && !checked) {
      EXPECT_EQ(t.event(i).partner, first_send);
      checked = true;
    }
  }
  EXPECT_TRUE(checked);
}

TEST(MpiSim, TagsSeparateChannels) {
  Program p(2);
  p.send(0, 1, /*tag=*/1);
  p.send(0, 1, /*tag=*/2);
  // Rank 1 receives tag 2 first: must match the second send.
  p.recv(1, 0, 2);
  p.recv(1, 0, 1);
  trace::Trace t = simulate(p, MpiConfig{});
  EXPECT_TRUE(trace::validate(t).empty());
  // Event order: send(tag1)=0, send(tag2)=1, then recvs.
  std::vector<trace::EventId> recvs;
  for (trace::EventId i = 0; i < t.num_events(); ++i)
    if (t.event(i).kind == trace::EventKind::Recv) recvs.push_back(i);
  ASSERT_EQ(recvs.size(), 2u);
  EXPECT_EQ(t.event(recvs[0]).partner, 1);  // tag 2
  EXPECT_EQ(t.event(recvs[1]).partner, 0);  // tag 1
}

TEST(MpiSim, ComputeDelaysSubsequentOps) {
  Program p(2);
  p.compute(0, 100000);
  p.send(0, 1, 0);
  p.recv(1, 0, 0);
  trace::Trace t = simulate(p, MpiConfig{});
  // The send block begins at >= 100000.
  bool found = false;
  for (trace::BlockId b = 0; b < t.num_blocks(); ++b) {
    if (t.entry(t.block(b).entry).name == "MPI_Send") {
      EXPECT_GE(t.block(b).begin, 100000);
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST(MpiSim, AllreduceSynchronizesRanks) {
  Program p(3);
  p.compute(0, 1000);
  p.compute(1, 50000);
  p.compute(2, 2000);
  for (int r = 0; r < 3; ++r) p.allreduce(r);
  MpiConfig cfg;
  trace::Trace t = simulate(p, cfg);
  EXPECT_TRUE(trace::validate(t).empty());
  ASSERT_EQ(t.collectives().size(), 1u);
  const auto& coll = t.collectives()[0];
  EXPECT_EQ(coll.sends.size(), 3u);
  EXPECT_EQ(coll.recvs.size(), 3u);
  // All ranks leave at the same time: slowest entry + collective cost.
  for (trace::EventId r : coll.recvs)
    EXPECT_EQ(t.event(r).time, 50000 + cfg.collective_cost_ns);
}

TEST(MpiSim, BackToBackAllreduces) {
  Program p(2);
  for (int k = 0; k < 3; ++k) {
    p.allreduce(0);
    p.allreduce(1);
  }
  trace::Trace t = simulate(p, MpiConfig{});
  EXPECT_EQ(t.collectives().size(), 3u);
  EXPECT_TRUE(trace::validate(t).empty());
}

TEST(MpiSim, OutOfOrderProgramStillMatches) {
  // Rank 1's ops come "first" in rank order but depend on rank 0.
  Program p(2);
  p.recv(1, 0, 0);
  p.send(1, 0, 1);
  p.send(0, 1, 0);
  p.recv(0, 1, 1);
  trace::Trace t = simulate(p, MpiConfig{});
  EXPECT_TRUE(trace::validate(t).empty());
  EXPECT_EQ(t.num_events(), 4);
}

TEST(MpiSimDeathTest, DeadlockDetected) {
  Program p(2);
  p.recv(0, 1, 0);  // both wait forever
  p.recv(1, 0, 0);
  EXPECT_DEATH(simulate(p, MpiConfig{}), "deadlock");
}

TEST(MpiSim, DeterministicForSeed) {
  Program p(4);
  for (int r = 0; r < 4; ++r) {
    p.send(r, (r + 1) % 4, 0);
    p.recv(r, (r + 3) % 4, 0);
    p.allreduce(r);
  }
  MpiConfig cfg;
  cfg.seed = 99;
  trace::Trace a = simulate(p, cfg);
  trace::Trace b = simulate(p, cfg);
  ASSERT_EQ(a.num_events(), b.num_events());
  for (trace::EventId i = 0; i < a.num_events(); ++i)
    EXPECT_EQ(a.event(i).time, b.event(i).time);
}

TEST(MpiSim, TreeAllreduceMatchesAndCompletes) {
  Program p(7);  // non-power-of-two on purpose
  for (int r = 0; r < 7; ++r) p.compute(r, 100 * (r + 1));
  p.tree_allreduce(/*tag=*/50);
  trace::Trace t = simulate(p, MpiConfig{});
  EXPECT_TRUE(trace::validate(t).empty());
  // 6 reduce messages + 6 broadcast messages, no abstract collectives.
  int sends = 0;
  for (const auto& e : t.events())
    if (e.kind == trace::EventKind::Send) ++sends;
  EXPECT_EQ(sends, 12);
  EXPECT_TRUE(t.collectives().empty());
}

TEST(MpiSim, TreeAllreduceSynchronizes) {
  Program p(4);
  p.compute(1, 90000);  // rank 1 is late
  p.tree_allreduce(/*tag=*/7);
  // After the allreduce every rank sends a follow-up message in a ring;
  // those sends must all start after the slowest rank's contribution
  // reached the root and was broadcast back.
  for (int r = 0; r < 4; ++r) p.send(r, (r + 1) % 4, 99);
  for (int r = 0; r < 4; ++r) p.recv(r, (r + 3) % 4, 99);
  trace::Trace t = simulate(p, MpiConfig{});
  EXPECT_TRUE(trace::validate(t).empty());
  // The broadcast-side receives cannot complete before the late rank's
  // contribution reached the root: every rank's LAST receive is after
  // rank 1's 90000ns compute.
  std::vector<trace::TimeNs> last_recv(4, 0);
  for (const auto& e : t.events())
    if (e.kind == trace::EventKind::Recv)
      last_recv[static_cast<std::size_t>(e.chare)] =
          std::max(last_recv[static_cast<std::size_t>(e.chare)], e.time);
  for (trace::TimeNs v : last_recv) EXPECT_GT(v, 90000);
}

TEST(MpiSim, RanksAreAppChares) {
  Program p(2);
  p.send(0, 1, 0);
  p.recv(1, 0, 0);
  trace::Trace t = simulate(p, MpiConfig{});
  EXPECT_EQ(t.num_chares(), 2);
  for (const auto& c : t.chares()) EXPECT_FALSE(c.runtime);
  EXPECT_EQ(t.num_procs(), 2);
}

}  // namespace
}  // namespace logstruct::sim::mpi
