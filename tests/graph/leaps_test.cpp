#include "graph/leaps.hpp"

#include <gtest/gtest.h>

namespace logstruct::graph {
namespace {

TEST(Leaps, ChainHasIncreasingLeaps) {
  Digraph g(4);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  g.add_edge(2, 3);
  g.finalize();
  auto leaps = compute_leaps(g);
  EXPECT_EQ(leaps, (std::vector<std::int32_t>{0, 1, 2, 3}));
}

TEST(Leaps, LongestPathWins) {
  // 0 -> 1 -> 3 and 0 -> 3: node 3 is at leap 2, not 1.
  Digraph g(4);
  g.add_edge(0, 1);
  g.add_edge(1, 3);
  g.add_edge(0, 3);
  g.finalize();
  auto leaps = compute_leaps(g);
  EXPECT_EQ(leaps[3], 2);
}

TEST(Leaps, MultipleSourcesAllAtZero) {
  Digraph g(3);
  g.add_edge(0, 2);
  g.add_edge(1, 2);
  g.finalize();
  auto leaps = compute_leaps(g);
  EXPECT_EQ(leaps[0], 0);
  EXPECT_EQ(leaps[1], 0);
  EXPECT_EQ(leaps[2], 1);
}

TEST(Leaps, IsolatedNodesAtZero) {
  Digraph g(2);
  g.finalize();
  auto leaps = compute_leaps(g);
  EXPECT_EQ(leaps, (std::vector<std::int32_t>{0, 0}));
}

TEST(Leaps, GroupByLeap) {
  Digraph g(5);
  g.add_edge(0, 1);
  g.add_edge(0, 2);
  g.add_edge(1, 3);
  g.add_edge(2, 3);
  g.finalize();
  auto groups = group_by_leap(compute_leaps(g));
  ASSERT_EQ(groups.size(), 3u);
  EXPECT_EQ(groups[0], (std::vector<NodeId>{0, 4}));
  EXPECT_EQ(groups[1], (std::vector<NodeId>{1, 2}));
  EXPECT_EQ(groups[2], (std::vector<NodeId>{3}));
}

TEST(Leaps, GroupByLeapEmpty) {
  auto groups = group_by_leap({});
  EXPECT_TRUE(groups.empty());
}

}  // namespace
}  // namespace logstruct::graph
