#include "graph/topo.hpp"

#include <gtest/gtest.h>

#include <algorithm>

namespace logstruct::graph {
namespace {

TEST(Topo, RespectsEdges) {
  Digraph g(4);
  g.add_edge(3, 1);
  g.add_edge(1, 0);
  g.add_edge(3, 2);
  g.add_edge(2, 0);
  g.finalize();
  auto order = topological_order(g);
  ASSERT_EQ(order.size(), 4u);
  std::vector<std::size_t> pos(4);
  for (std::size_t i = 0; i < order.size(); ++i)
    pos[static_cast<std::size_t>(order[i])] = i;
  for (auto [u, v] : g.edges()) {
    EXPECT_LT(pos[static_cast<std::size_t>(u)],
              pos[static_cast<std::size_t>(v)]);
  }
}

TEST(Topo, EmptyGraph) {
  Digraph g(0);
  EXPECT_TRUE(topological_order(g).empty());
}

TEST(Topo, NoEdges) {
  Digraph g(3);
  g.finalize();
  auto order = topological_order(g);
  EXPECT_EQ(order.size(), 3u);
}

TEST(TopoDeathTest, CycleAborts) {
  Digraph g(2);
  g.add_edge(0, 1);
  g.add_edge(1, 0);
  g.finalize();
  EXPECT_DEATH(topological_order(g), "cyclic");
}

}  // namespace
}  // namespace logstruct::graph
