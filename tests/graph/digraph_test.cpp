#include "graph/digraph.hpp"

#include <gtest/gtest.h>

namespace logstruct::graph {
namespace {

TEST(Digraph, EmptyGraph) {
  Digraph g(0);
  EXPECT_EQ(g.num_nodes(), 0);
  EXPECT_EQ(g.num_edges(), 0u);
}

TEST(Digraph, AddAndQueryEdges) {
  Digraph g(3);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  g.finalize();
  EXPECT_TRUE(g.has_edge(0, 1));
  EXPECT_TRUE(g.has_edge(1, 2));
  EXPECT_FALSE(g.has_edge(0, 2));
  EXPECT_FALSE(g.has_edge(1, 0));
}

TEST(Digraph, SelfLoopsIgnored) {
  Digraph g(2);
  g.add_edge(0, 0);
  g.add_edge(0, 1);
  g.finalize();
  EXPECT_EQ(g.num_edges(), 1u);
  EXPECT_FALSE(g.has_edge(0, 0));
}

TEST(Digraph, DuplicatesRemovedByFinalize) {
  Digraph g(2);
  g.add_edge(0, 1);
  g.add_edge(0, 1);
  g.add_edge(0, 1);
  g.finalize();
  EXPECT_EQ(g.num_edges(), 1u);
  EXPECT_EQ(g.successors(0).size(), 1u);
  EXPECT_EQ(g.predecessors(1).size(), 1u);
}

TEST(Digraph, PredecessorsMirrorSuccessors) {
  Digraph g(4);
  g.add_edge(0, 3);
  g.add_edge(1, 3);
  g.add_edge(2, 3);
  g.finalize();
  EXPECT_EQ(g.predecessors(3).size(), 3u);
  EXPECT_EQ(g.successors(3).size(), 0u);
}

TEST(Digraph, EdgesEnumeration) {
  Digraph g(3);
  g.add_edge(2, 0);
  g.add_edge(0, 1);
  g.finalize();
  auto edges = g.edges();
  ASSERT_EQ(edges.size(), 2u);
  EXPECT_EQ(edges[0], (std::pair<NodeId, NodeId>{0, 1}));
  EXPECT_EQ(edges[1], (std::pair<NodeId, NodeId>{2, 0}));
}

TEST(Digraph, ResetClears) {
  Digraph g(2);
  g.add_edge(0, 1);
  g.reset(5);
  EXPECT_EQ(g.num_nodes(), 5);
  EXPECT_EQ(g.num_edges(), 0u);
}

}  // namespace
}  // namespace logstruct::graph
