#include "graph/union_find.hpp"

#include <gtest/gtest.h>

#include <set>

namespace logstruct::graph {
namespace {

TEST(UnionFind, InitiallyAllSingletons) {
  UnionFind uf(5);
  EXPECT_EQ(uf.num_sets(), 5u);
  for (std::int32_t i = 0; i < 5; ++i) EXPECT_EQ(uf.find(i), i);
}

TEST(UnionFind, UniteMergesSets) {
  UnionFind uf(4);
  uf.unite(0, 1);
  EXPECT_EQ(uf.find(0), uf.find(1));
  EXPECT_NE(uf.find(0), uf.find(2));
  EXPECT_EQ(uf.num_sets(), 3u);
}

TEST(UnionFind, UniteIdempotent) {
  UnionFind uf(3);
  uf.unite(0, 1);
  uf.unite(1, 0);
  EXPECT_EQ(uf.num_sets(), 2u);
}

TEST(UnionFind, TransitiveUnion) {
  UnionFind uf(6);
  uf.unite(0, 1);
  uf.unite(2, 3);
  uf.unite(1, 2);
  EXPECT_EQ(uf.find(0), uf.find(3));
  EXPECT_EQ(uf.num_sets(), 3u);
}

TEST(UnionFind, DenseLabels) {
  UnionFind uf(5);
  uf.unite(0, 4);
  uf.unite(1, 3);
  auto labels = uf.dense_labels();
  ASSERT_EQ(labels.size(), 5u);
  EXPECT_EQ(labels[0], labels[4]);
  EXPECT_EQ(labels[1], labels[3]);
  EXPECT_NE(labels[0], labels[1]);
  EXPECT_NE(labels[2], labels[0]);
  std::set<std::int32_t> distinct(labels.begin(), labels.end());
  EXPECT_EQ(distinct.size(), 3u);
  for (std::int32_t l : labels) {
    EXPECT_GE(l, 0);
    EXPECT_LT(l, 3);
  }
}

TEST(UnionFind, LargeChain) {
  constexpr std::int32_t n = 10000;
  UnionFind uf(n);
  for (std::int32_t i = 1; i < n; ++i) uf.unite(i - 1, i);
  EXPECT_EQ(uf.num_sets(), 1u);
  EXPECT_EQ(uf.find(0), uf.find(n - 1));
}

}  // namespace
}  // namespace logstruct::graph
