#include "graph/scc.hpp"

#include <gtest/gtest.h>

#include <set>

namespace logstruct::graph {
namespace {

Digraph make(std::int32_t n,
             std::initializer_list<std::pair<NodeId, NodeId>> edges) {
  Digraph g(n);
  for (auto [u, v] : edges) g.add_edge(u, v);
  g.finalize();
  return g;
}

TEST(Scc, SingletonNodes) {
  Digraph g = make(3, {{0, 1}, {1, 2}});
  SccResult r = strongly_connected_components(g);
  EXPECT_EQ(r.num_components, 3);
  EXPECT_TRUE(is_dag(g));
}

TEST(Scc, SimpleCycle) {
  Digraph g = make(3, {{0, 1}, {1, 2}, {2, 0}});
  SccResult r = strongly_connected_components(g);
  EXPECT_EQ(r.num_components, 1);
  EXPECT_EQ(r.component[0], r.component[1]);
  EXPECT_EQ(r.component[1], r.component[2]);
  EXPECT_FALSE(is_dag(g));
}

TEST(Scc, TwoCyclesConnected) {
  // 0<->1 -> 2<->3
  Digraph g = make(4, {{0, 1}, {1, 0}, {1, 2}, {2, 3}, {3, 2}});
  SccResult r = strongly_connected_components(g);
  EXPECT_EQ(r.num_components, 2);
  EXPECT_EQ(r.component[0], r.component[1]);
  EXPECT_EQ(r.component[2], r.component[3]);
  EXPECT_NE(r.component[0], r.component[2]);
}

TEST(Scc, TarjanEmitsSinksFirst) {
  // Condensation 0 -> 1; Tarjan numbers the sink component first.
  Digraph g = make(2, {{0, 1}});
  SccResult r = strongly_connected_components(g);
  EXPECT_LT(r.component[1], r.component[0]);
}

TEST(Scc, DisconnectedGraph) {
  Digraph g = make(4, {{0, 1}});
  SccResult r = strongly_connected_components(g);
  EXPECT_EQ(r.num_components, 4);
}

TEST(Scc, SelfLoopIgnoredByDigraph) {
  Digraph g(1);
  g.add_edge(0, 0);
  g.finalize();
  EXPECT_TRUE(is_dag(g));  // digraph drops self-loops
}

TEST(Scc, LongChainNoRecursionOverflow) {
  constexpr NodeId n = 200000;
  Digraph g(n);
  for (NodeId i = 1; i < n; ++i) g.add_edge(i - 1, i);
  g.finalize();
  SccResult r = strongly_connected_components(g);
  EXPECT_EQ(r.num_components, n);
}

TEST(Scc, LongCycleNoRecursionOverflow) {
  constexpr NodeId n = 200000;
  Digraph g(n);
  for (NodeId i = 1; i < n; ++i) g.add_edge(i - 1, i);
  g.add_edge(n - 1, 0);
  g.finalize();
  SccResult r = strongly_connected_components(g);
  EXPECT_EQ(r.num_components, 1);
}

TEST(Scc, ComponentIdsAreDense) {
  Digraph g = make(5, {{0, 1}, {1, 0}, {2, 3}, {3, 4}, {4, 2}});
  SccResult r = strongly_connected_components(g);
  std::set<std::int32_t> ids(r.component.begin(), r.component.end());
  EXPECT_EQ(static_cast<std::int32_t>(ids.size()), r.num_components);
  EXPECT_EQ(*ids.begin(), 0);
  EXPECT_EQ(*ids.rbegin(), r.num_components - 1);
}

}  // namespace
}  // namespace logstruct::graph
