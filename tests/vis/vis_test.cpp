#include <gtest/gtest.h>

#include <fstream>
#include <sstream>

#include "apps/jacobi2d.hpp"
#include "metrics/duration.hpp"
#include "order/stepping.hpp"
#include "vis/ascii.hpp"
#include "vis/cluster.hpp"
#include "vis/color.hpp"
#include "vis/html.hpp"
#include "vis/svg.hpp"

namespace logstruct::vis {
namespace {

order::LogicalStructure small_jacobi(trace::Trace& t) {
  apps::Jacobi2DConfig cfg;
  cfg.chares_x = 4;
  cfg.chares_y = 4;
  cfg.num_pes = 4;
  cfg.iterations = 2;
  t = apps::run_jacobi2d(cfg);
  return order::extract_structure(t, order::Options::charm());
}

TEST(Color, CategoricalColorsDistinctAndStable) {
  EXPECT_EQ(categorical_color(3).hex(), categorical_color(3).hex());
  EXPECT_NE(categorical_color(0).hex(), categorical_color(1).hex());
  EXPECT_NE(categorical_color(1).hex(), categorical_color(2).hex());
}

TEST(Color, RampEndpoints) {
  EXPECT_EQ(ramp_color(0.0).hex(), "#ffffff");
  Rgb hot = ramp_color(1.0);
  EXPECT_GT(hot.r, hot.g);
  EXPECT_GT(hot.g, hot.b);
}

TEST(Color, RampClamps) {
  EXPECT_EQ(ramp_color(-5.0).hex(), ramp_color(0.0).hex());
  EXPECT_EQ(ramp_color(7.0).hex(), ramp_color(1.0).hex());
}

TEST(Color, GlyphCoverage) {
  EXPECT_EQ(categorical_glyph(0), 'A');
  EXPECT_EQ(categorical_glyph(25), 'Z');
  EXPECT_EQ(categorical_glyph(26), 'a');
  EXPECT_EQ(categorical_glyph(52), '0');
  EXPECT_EQ(categorical_glyph(100), '#');
  EXPECT_EQ(categorical_glyph(-1), '?');
}

TEST(Ascii, LogicalViewHasOneRowPerChare) {
  trace::Trace t;
  auto ls = small_jacobi(t);
  std::string view = render_logical_ascii(t, ls);
  // Count newlines in the grid section: at least one per chare plus the
  // runtime divider, title, and legend.
  std::size_t lines = std::count(view.begin(), view.end(), '\n');
  EXPECT_GE(lines, static_cast<std::size_t>(t.num_chares()) + 2);
  // Runtime chares are separated by a dashed rule.
  EXPECT_NE(view.find("---"), std::string::npos);
  EXPECT_NE(view.find("CkReductionMgr"), std::string::npos);
}

TEST(Ascii, PhysicalViewRenders) {
  trace::Trace t;
  auto ls = small_jacobi(t);
  std::string view = render_physical_ascii(t, ls);
  EXPECT_NE(view.find("physical time"), std::string::npos);
  EXPECT_GT(view.size(), 100u);
}

TEST(Ascii, WideStructureIsCompressed) {
  trace::Trace t;
  auto ls = small_jacobi(t);
  AsciiOptions opts;
  opts.max_cols = 40;
  std::string view = render_logical_ascii(t, ls, opts);
  // No grid line exceeds name width + 2 + 40.
  std::istringstream is(view);
  std::string line;
  std::getline(is, line);  // title
  while (std::getline(is, line)) {
    if (line.rfind("phases:", 0) == 0) break;
    EXPECT_LE(line.size(), 22u + 2u + 40u);
  }
}

TEST(Ascii, MetricViewHighlightsMaximum) {
  trace::Trace t;
  auto ls = small_jacobi(t);
  auto dd = metrics::differential_duration(t, ls);
  std::vector<double> values(dd.per_event.begin(), dd.per_event.end());
  std::string view = render_metric_ascii(t, ls, values);
  EXPECT_NE(view.find("metric over logical steps"), std::string::npos);
  // The maximum renders as a '9' somewhere.
  EXPECT_NE(view.find('9'), std::string::npos);
}

TEST(Ascii, MetricViewPhysicalMode) {
  trace::Trace t;
  auto ls = small_jacobi(t);
  std::vector<double> zeros(static_cast<std::size_t>(t.num_events()), 0.0);
  std::string view = render_metric_ascii(t, ls, zeros, /*logical=*/false);
  EXPECT_NE(view.find("physical time"), std::string::npos);
  // All-zero metric: no intensity glyph above '0' in the grid cells (the
  // header and chare-name column legitimately contain digits).
  std::istringstream is(view);
  std::string line;
  std::getline(is, line);  // header
  while (std::getline(is, line)) {
    if (line.size() <= 24) continue;
    for (char c : line.substr(24)) EXPECT_TRUE(c < '1' || c > '9') << line;
  }
}

TEST(Svg, LogicalViewWellFormed) {
  trace::Trace t;
  auto ls = small_jacobi(t);
  std::string svg = render_logical_svg(t, ls);
  EXPECT_EQ(svg.rfind("<svg", 0), 0u);
  EXPECT_NE(svg.find("</svg>"), std::string::npos);
  // One rect per event plus background.
  std::size_t rects = 0;
  for (std::size_t pos = 0; (pos = svg.find("<rect", pos)) != std::string::npos;
       ++pos)
    ++rects;
  EXPECT_GE(rects, static_cast<std::size_t>(t.num_events()));
}

TEST(Svg, PhysicalViewDrawsIdleBars) {
  trace::Trace t;
  auto ls = small_jacobi(t);
  std::string svg = render_physical_svg(t, ls);
  EXPECT_NE(svg.find("fill=\"black\""), std::string::npos);  // idle bars
}

TEST(Svg, MetricColoringUsesRamp) {
  trace::Trace t;
  auto ls = small_jacobi(t);
  auto dd = metrics::differential_duration(t, ls);
  SvgOptions opts;
  opts.values.assign(dd.per_event.begin(), dd.per_event.end());
  std::string svg = render_logical_svg(t, ls, opts);
  // Zero-valued events render white on the ramp.
  EXPECT_NE(svg.find("#ffffff"), std::string::npos);
}

TEST(Svg, MessageArcsDrawOneLinePerDependencyRow) {
  trace::Trace t;
  auto ls = small_jacobi(t);
  auto count_lines = [](const std::string& svg) {
    std::size_t lines = 0;
    for (std::size_t pos = 0;
         (pos = svg.find("<line", pos)) != std::string::npos; ++pos)
      ++lines;
    return lines;
  };
  // Off by default: only the lane divider.
  std::size_t base_logical = count_lines(render_logical_svg(t, ls));
  std::size_t base_physical = count_lines(render_physical_svg(t, ls));
  EXPECT_LE(base_logical, 1u);

  SvgOptions opts;
  opts.draw_messages = true;
  // Exactly one arc per dependency-table row, in both views.
  EXPECT_EQ(count_lines(render_logical_svg(t, ls, opts)),
            base_logical + static_cast<std::size_t>(t.num_dependencies()));
  EXPECT_EQ(count_lines(render_physical_svg(t, ls, opts)),
            base_physical + static_cast<std::size_t>(t.num_dependencies()));
  EXPECT_GT(t.num_dependencies(), 0);
}

TEST(Cluster, JacobiCompressesToGeometryClasses) {
  apps::Jacobi2DConfig cfg;
  cfg.chares_x = 8;
  cfg.chares_y = 8;
  cfg.num_pes = 8;
  cfg.iterations = 2;
  trace::Trace t = apps::run_jacobi2d(cfg);
  auto ls = order::extract_structure(t, order::Options::charm());
  auto clusters = cluster_chares(t, ls);

  // Application chares must form exactly the corner/edge/interior classes.
  std::vector<std::size_t> app_sizes;
  for (const auto& c : clusters)
    if (!c.runtime && t.chare(c.exemplar()).array == 0)
      app_sizes.push_back(c.chares.size());
  std::sort(app_sizes.begin(), app_sizes.end());
  EXPECT_EQ(app_sizes, (std::vector<std::size_t>{4, 24, 36}));
}

TEST(Cluster, EveryChareInExactlyOneCluster) {
  trace::Trace t;
  auto ls = small_jacobi(t);
  auto clusters = cluster_chares(t, ls);
  std::vector<int> seen(static_cast<std::size_t>(t.num_chares()), 0);
  for (const auto& c : clusters) {
    EXPECT_FALSE(c.chares.empty());
    for (trace::ChareId ch : c.chares) ++seen[static_cast<std::size_t>(ch)];
    for (trace::ChareId ch : c.chares)
      EXPECT_EQ(t.chare(ch).runtime, c.runtime);
  }
  for (int n : seen) EXPECT_EQ(n, 1);
}

TEST(Cluster, ExactStepsIsFinerOrEqual) {
  trace::Trace t;
  auto ls = small_jacobi(t);
  auto coarse = cluster_chares(t, ls, ClusterBy::StepEnvelope);
  auto fine = cluster_chares(t, ls, ClusterBy::ExactSteps);
  EXPECT_GE(fine.size(), coarse.size());
}

TEST(Cluster, RenderMentionsCounts) {
  trace::Trace t;
  auto ls = small_jacobi(t);
  std::string view = render_clustered_ascii(t, ls);
  EXPECT_NE(view.find("classes for"), std::string::npos);
  EXPECT_NE(view.find(" x"), std::string::npos);
}

TEST(Html, ViewerIsSelfContained) {
  trace::Trace t;
  auto ls = small_jacobi(t);
  HtmlOptions opts;
  opts.title = "jacobi \"demo\"";
  std::string html = render_html(t, ls, opts);
  EXPECT_NE(html.find("<!doctype html>"), std::string::npos);
  EXPECT_NE(html.find("</html>"), std::string::npos);
  // Data substituted, markers gone.
  EXPECT_EQ(html.find("__DATA__"), std::string::npos);
  EXPECT_EQ(html.find("__TITLE__"), std::string::npos);
  // Quote in the title is escaped, no external resources referenced.
  EXPECT_NE(html.find("jacobi \\\"demo\\\""), std::string::npos);
  EXPECT_EQ(html.find("src=\"http"), std::string::npos);
  // One event tuple per trace event.
  std::size_t lanes_pos = html.find("\"lanes\":");
  ASSERT_NE(lanes_pos, std::string::npos);
}

TEST(Html, EventDataMatchesTrace) {
  trace::Trace t;
  auto ls = small_jacobi(t);
  std::string html = render_html(t, ls);
  // The events array has exactly num_events '[' entries between
  // "events": [ ... ].
  std::size_t start = html.find("\"events\":[");
  std::size_t end = html.find("],\"pal\"");
  ASSERT_NE(start, std::string::npos);
  ASSERT_NE(end, std::string::npos);
  std::size_t count = 0;
  for (std::size_t pos = start; pos < end; ++pos)
    if (html[pos] == '[') ++count;
  EXPECT_EQ(count, static_cast<std::size_t>(t.num_events()) + 1);  // +array
}

TEST(Html, MetricColoringIncluded) {
  trace::Trace t;
  auto ls = small_jacobi(t);
  auto dd = metrics::differential_duration(t, ls);
  HtmlOptions opts;
  opts.metric.assign(dd.per_event.begin(), dd.per_event.end());
  opts.metric_name = "diff duration";
  std::string html = render_html(t, ls, opts);
  EXPECT_NE(html.find("diff duration"), std::string::npos);
}

TEST(Html, SaveWritesFile) {
  trace::Trace t;
  auto ls = small_jacobi(t);
  std::string path = ::testing::TempDir() + "/viewer_test.html";
  ASSERT_TRUE(save_html(t, ls, path));
  std::ifstream f(path);
  std::string content((std::istreambuf_iterator<char>(f)),
                      std::istreambuf_iterator<char>());
  EXPECT_GT(content.size(), 4000u);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace logstruct::vis
