/// Parameterized sweeps over app configurations: every supported shape
/// must produce a valid trace and a sound structure. These catch
/// generator edge cases (degenerate grids, extreme placements, toggles)
/// that the focused tests don't reach.

#include <gtest/gtest.h>

#include "apps/jacobi2d.hpp"
#include "apps/lassen.hpp"
#include "apps/lulesh.hpp"
#include "apps/mergetree.hpp"
#include "apps/nasbt.hpp"
#include "apps/pdes.hpp"
#include "order/stepping.hpp"
#include "order/validate.hpp"
#include "trace/validate.hpp"

namespace logstruct::apps {
namespace {

void expect_sound(const trace::Trace& t, const order::Options& opts) {
  auto tp = trace::validate(t);
  ASSERT_TRUE(tp.empty()) << tp.front();
  order::LogicalStructure ls = order::extract_structure(t, opts);
  auto sp = order::validate_structure(t, ls);
  EXPECT_TRUE(sp.empty()) << sp.front();
}

// --- Jacobi grid shapes -----------------------------------------------------

class JacobiShapes
    : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(JacobiShapes, Sound) {
  auto [cx, cy, pes] = GetParam();
  Jacobi2DConfig cfg;
  cfg.chares_x = cx;
  cfg.chares_y = cy;
  cfg.num_pes = pes;
  cfg.iterations = 2;
  expect_sound(run_jacobi2d(cfg), order::Options::charm());
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, JacobiShapes,
    ::testing::Values(std::tuple{1, 1, 1},    // degenerate single chare
                      std::tuple{8, 1, 2},    // 1D strip
                      std::tuple{1, 8, 4},    // transposed strip
                      std::tuple{3, 5, 7},    // ragged, odd PE count
                      std::tuple{2, 2, 8}));  // more PEs than... chares<pes
                                              // hosts empty PEs

TEST(JacobiShapes, RoundRobinPlacement) {
  Jacobi2DConfig cfg;
  cfg.chares_x = 4;
  cfg.chares_y = 4;
  cfg.num_pes = 4;
  cfg.iterations = 2;
  cfg.placement = sim::charm::Placement::RoundRobin;
  expect_sound(run_jacobi2d(cfg), order::Options::charm());
}

// --- LULESH grids -------------------------------------------------------------

class LuleshShapes : public ::testing::TestWithParam<std::tuple<int, int>> {
};

TEST_P(LuleshShapes, CharmSound) {
  auto [n, pes] = GetParam();
  LuleshConfig cfg;
  cfg.nx = cfg.ny = cfg.nz = n;
  cfg.num_pes = pes;
  cfg.iterations = 2;
  expect_sound(run_lulesh_charm(cfg), order::Options::charm());
}

TEST_P(LuleshShapes, MpiSound) {
  auto [n, pes] = GetParam();
  (void)pes;
  LuleshConfig cfg;
  cfg.nx = cfg.ny = cfg.nz = n;
  cfg.iterations = 2;
  expect_sound(run_lulesh_mpi(cfg), order::Options::mpi_baseline13());
}

INSTANTIATE_TEST_SUITE_P(Shapes, LuleshShapes,
                         ::testing::Values(std::tuple{1, 1},
                                           std::tuple{2, 3},
                                           std::tuple{3, 8}));

TEST(LuleshShapes, TreeCollectivesSound) {
  LuleshConfig cfg;
  cfg.iterations = 2;
  cfg.tree_collectives = true;
  expect_sound(run_lulesh_mpi(cfg), order::Options::mpi_baseline13());
}

// --- LASSEN fronts --------------------------------------------------------------

class LassenFronts
    : public ::testing::TestWithParam<std::tuple<double, double>> {};

TEST_P(LassenFronts, Sound) {
  auto [r0, dr] = GetParam();
  LassenConfig cfg;
  cfg.iterations = 4;
  cfg.front_r0 = r0;
  cfg.front_dr = dr;
  expect_sound(run_lassen_charm(cfg), order::Options::charm());
  expect_sound(run_lassen_mpi(cfg), order::Options::mpi_baseline13());
}

INSTANTIATE_TEST_SUITE_P(Fronts, LassenFronts,
                         ::testing::Values(std::tuple{0.0, 0.0},  // no front
                                           std::tuple{0.5, 0.3},
                                           std::tuple{2.0, 0.0}));  // outside

// --- PDES shapes ------------------------------------------------------------------

class PdesShapes : public ::testing::TestWithParam<std::tuple<int, int, int>> {
};

TEST_P(PdesShapes, SoundBothTracingModes) {
  auto [chares, pes, windows] = GetParam();
  PdesConfig cfg;
  cfg.num_chares = chares;
  cfg.num_pes = pes;
  cfg.windows = windows;
  for (bool traced : {false, true}) {
    cfg.trace_detector_calls = traced;
    expect_sound(run_pdes(cfg), order::Options::charm());
  }
}

INSTANTIATE_TEST_SUITE_P(Shapes, PdesShapes,
                         ::testing::Values(std::tuple{2, 1, 1},
                                           std::tuple{16, 4, 3},
                                           std::tuple{9, 3, 2}));

// --- merge tree / BT sizes ------------------------------------------------------------

TEST(MergeTreeShapes, TwoRanks) {
  MergeTreeConfig cfg;
  cfg.num_ranks = 2;
  expect_sound(run_mergetree_mpi(cfg), order::Options::mpi());
}

TEST(MergeTreeShapes, NoImbalance) {
  MergeTreeConfig cfg;
  cfg.num_ranks = 16;
  cfg.imbalance = 0.0;
  expect_sound(run_mergetree_mpi(cfg), order::Options::mpi_baseline13());
}

TEST(NasBtShapes, LargerGrid) {
  NasBtConfig cfg;
  cfg.grid = 5;
  cfg.iterations = 3;
  expect_sound(run_nasbt_mpi(cfg), order::Options::mpi());
}

}  // namespace
}  // namespace logstruct::apps
