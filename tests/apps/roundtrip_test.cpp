/// Every proxy app's trace must survive the .lstrace round trip with its
/// logical structure intact — the guarantee a user relies on when
/// archiving traces for later analysis.

#include <gtest/gtest.h>

#include <sstream>

#include "apps/jacobi2d.hpp"
#include "apps/lassen.hpp"
#include "apps/lulesh.hpp"
#include "apps/mergetree.hpp"
#include "apps/nasbt.hpp"
#include "apps/pdes.hpp"
#include "order/stepping.hpp"
#include "trace/io.hpp"
#include "trace/validate.hpp"

namespace logstruct {
namespace {

void expect_roundtrip(const trace::Trace& t, const order::Options& opts) {
  std::ostringstream os;
  trace::write_trace(t, os);
  std::istringstream is(os.str());
  trace::Trace back = trace::read_trace(is);

  ASSERT_TRUE(trace::validate(back).empty());
  ASSERT_EQ(back.num_events(), t.num_events());
  ASSERT_EQ(back.num_blocks(), t.num_blocks());
  ASSERT_EQ(back.idles().size(), t.idles().size());
  ASSERT_EQ(back.collectives().size(), t.collectives().size());

  order::LogicalStructure a = order::extract_structure(t, opts);
  order::LogicalStructure b = order::extract_structure(back, opts);
  EXPECT_EQ(a.global_step, b.global_step);
  EXPECT_EQ(a.phases.phase_of_event, b.phases.phase_of_event);
  EXPECT_EQ(a.w, b.w);
}

TEST(AppRoundTrip, Jacobi) {
  apps::Jacobi2DConfig cfg;
  cfg.chares_x = 4;
  cfg.chares_y = 4;
  cfg.num_pes = 4;
  cfg.iterations = 2;
  expect_roundtrip(apps::run_jacobi2d(cfg), order::Options::charm());
}

TEST(AppRoundTrip, JacobiWithMigration) {
  apps::Jacobi2DConfig cfg;
  cfg.chares_x = 4;
  cfg.chares_y = 4;
  cfg.num_pes = 4;
  cfg.iterations = 3;
  cfg.migrate_at_iteration = 1;
  expect_roundtrip(apps::run_jacobi2d(cfg), order::Options::charm());
}

TEST(AppRoundTrip, LuleshCharm) {
  apps::LuleshConfig cfg;
  cfg.iterations = 2;
  expect_roundtrip(apps::run_lulesh_charm(cfg), order::Options::charm());
}

TEST(AppRoundTrip, LuleshMpi) {
  apps::LuleshConfig cfg;
  cfg.iterations = 2;
  expect_roundtrip(apps::run_lulesh_mpi(cfg), order::Options::mpi());
}

TEST(AppRoundTrip, LassenCharm) {
  apps::LassenConfig cfg;
  cfg.iterations = 3;
  expect_roundtrip(apps::run_lassen_charm(cfg), order::Options::charm());
}

TEST(AppRoundTrip, LassenMpi) {
  apps::LassenConfig cfg;
  cfg.iterations = 3;
  expect_roundtrip(apps::run_lassen_mpi(cfg),
                   order::Options::mpi_baseline13());
}

TEST(AppRoundTrip, Pdes) {
  apps::PdesConfig cfg;
  expect_roundtrip(apps::run_pdes(cfg), order::Options::charm());
}

TEST(AppRoundTrip, MergeTree) {
  apps::MergeTreeConfig cfg;
  cfg.num_ranks = 32;
  expect_roundtrip(apps::run_mergetree_mpi(cfg), order::Options::mpi());
}

TEST(AppRoundTrip, NasBt) {
  apps::NasBtConfig cfg;
  expect_roundtrip(apps::run_nasbt_mpi(cfg), order::Options::mpi());
}

}  // namespace
}  // namespace logstruct
