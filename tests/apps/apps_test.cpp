#include <gtest/gtest.h>

#include <set>

#include "apps/jacobi2d.hpp"
#include "apps/lassen.hpp"
#include "apps/lulesh.hpp"
#include "apps/mergetree.hpp"
#include "apps/nasbt.hpp"
#include "apps/pdes.hpp"
#include "trace/validate.hpp"

namespace logstruct::apps {
namespace {

using trace::EventKind;
using trace::Trace;

// --- Jacobi 2D -----------------------------------------------------------

TEST(Jacobi2D, SmallRunIsValid) {
  Jacobi2DConfig cfg;
  cfg.chares_x = 4;
  cfg.chares_y = 4;
  cfg.num_pes = 4;
  cfg.iterations = 2;
  Trace t = run_jacobi2d(cfg);
  auto problems = trace::validate(t);
  EXPECT_TRUE(problems.empty()) << problems.front();
  EXPECT_GT(t.num_events(), 0);
}

TEST(Jacobi2D, AllCharesComputeEveryIteration) {
  Jacobi2DConfig cfg;
  cfg.chares_x = 4;
  cfg.chares_y = 4;
  cfg.num_pes = 4;
  cfg.iterations = 3;
  Trace t = run_jacobi2d(cfg);
  // Each of the 16 chares runs serial_1 three times.
  std::vector<int> count(static_cast<std::size_t>(t.num_chares()), 0);
  for (const auto& b : t.blocks()) {
    if (t.entry(b.entry).name == "serial_1_compute")
      ++count[static_cast<std::size_t>(b.chare)];
  }
  int computing = 0;
  for (int c : count)
    if (c > 0) {
      EXPECT_EQ(c, 3);
      ++computing;
    }
  EXPECT_EQ(computing, 16);
}

TEST(Jacobi2D, HaloCountsMatchGridDegree) {
  Jacobi2DConfig cfg;
  cfg.chares_x = 3;
  cfg.chares_y = 3;
  cfg.num_pes = 2;
  cfg.iterations = 1;
  Trace t = run_jacobi2d(cfg);
  // recvHalo receives per chare: corner 2, edge 3, center 4.
  std::vector<int> halos(static_cast<std::size_t>(t.num_chares()), 0);
  for (const auto& b : t.blocks()) {
    if (t.entry(b.entry).name == "recvHalo" ||
        (t.entry(b.entry).name == "serial_1_compute" && b.trigger != -1)) {
      // absorbed or not, count recv-halo triggers below instead
    }
  }
  for (const auto& e : t.events()) {
    if (e.kind == EventKind::Recv &&
        t.entry(t.block(e.block).entry).name == "recvHalo")
      ++halos[static_cast<std::size_t>(e.chare)];
  }
  std::multiset<int> degrees;
  for (trace::ChareId c = 0; c < t.num_chares(); ++c)
    if (!t.chare(c).runtime && t.chare(c).array == 0)
      degrees.insert(halos[static_cast<std::size_t>(c)]);
  EXPECT_EQ(degrees.count(2), 4u);  // corners
  EXPECT_EQ(degrees.count(3), 4u);  // edges
  EXPECT_EQ(degrees.count(4), 1u);  // center
}

TEST(Jacobi2D, SlowChareExtendsThatIteration) {
  Jacobi2DConfig base;
  base.chares_x = 4;
  base.chares_y = 4;
  base.num_pes = 4;
  base.iterations = 2;
  Trace fast = run_jacobi2d(base);
  Jacobi2DConfig slow_cfg = base;
  slow_cfg.slow_chare = 5;
  slow_cfg.slow_iteration = 0;
  slow_cfg.slow_factor = 10.0;
  Trace slow = run_jacobi2d(slow_cfg);
  EXPECT_GT(slow.end_time(), fast.end_time());
}

TEST(Jacobi2D, Section5ToggleChangesOnlyTracing) {
  Jacobi2DConfig cfg;
  cfg.chares_x = 4;
  cfg.chares_y = 4;
  cfg.num_pes = 4;
  cfg.iterations = 2;
  Trace with = run_jacobi2d(cfg);
  cfg.trace_local_reductions = false;
  Trace without = run_jacobi2d(cfg);
  EXPECT_GT(with.num_events(), without.num_events());
  EXPECT_EQ(with.end_time(), without.end_time());
  EXPECT_TRUE(trace::validate(without).empty());
}

// --- LULESH --------------------------------------------------------------

TEST(LuleshCharm, SmallRunIsValid) {
  LuleshConfig cfg;  // 2x2x2 chares, 2 PEs, 8 iterations
  cfg.iterations = 3;
  Trace t = run_lulesh_charm(cfg);
  auto problems = trace::validate(t);
  EXPECT_TRUE(problems.empty()) << problems.front();
}

TEST(LuleshCharm, TwoSerialPhasesPerIteration) {
  LuleshConfig cfg;
  cfg.iterations = 4;
  Trace t = run_lulesh_charm(cfg);
  int serial_a = 0, serial_b = 0, setup = 0;
  for (const auto& b : t.blocks()) {
    const auto& name = t.entry(b.entry).name;
    if (name == "serial_1_stress") ++serial_a;
    if (name == "serial_2_update") ++serial_b;
    if (name == "serial_0_setup") ++setup;
  }
  EXPECT_EQ(setup, 8);            // once per chare
  EXPECT_EQ(serial_a, 8 * 4);     // chares x iterations
  EXPECT_EQ(serial_b, 8 * 4);
}

TEST(LuleshMpi, SmallRunIsValid) {
  LuleshConfig cfg;
  cfg.iterations = 3;
  Trace t = run_lulesh_mpi(cfg);
  auto problems = trace::validate(t);
  EXPECT_TRUE(problems.empty()) << problems.front();
  EXPECT_EQ(t.num_procs(), 8);
  // One allreduce per iteration.
  EXPECT_EQ(t.collectives().size(), 3u);
}

TEST(LuleshMpi, ProgramShape) {
  LuleshConfig cfg;
  cfg.iterations = 2;
  auto prog = build_lulesh_mpi_program(cfg);
  EXPECT_EQ(prog.num_ranks(), 8);
  // Corner rank in a 2x2x2 grid has 3 face neighbors. Per rank: setup
  // (compute + 3 sends + 3 recvs) + per iteration 3 phases x (compute + 3
  // sends + 3 recvs) + allreduce.
  EXPECT_EQ(prog.ops(0).size(), 7u + 2u * (3u * 7u + 1u));
}

// --- LASSEN ---------------------------------------------------------------

TEST(LassenCharm, SmallRunIsValid) {
  LassenConfig cfg;  // 4x2 chares on 8 PEs
  cfg.iterations = 4;
  Trace t = run_lassen_charm(cfg);
  auto problems = trace::validate(t);
  EXPECT_TRUE(problems.empty()) << problems.front();
}

TEST(LassenCharm, SelfInvocationEachIteration) {
  LassenConfig cfg;
  cfg.iterations = 4;
  Trace t = run_lassen_charm(cfg);
  int advances = 0;
  for (const auto& b : t.blocks())
    if (t.entry(b.entry).name == "advance") ++advances;
  EXPECT_EQ(advances, 8 * 4);  // every chare, every iteration
}

TEST(LassenCharm, FrontWorkGrowsThenCoversMoreChares) {
  LassenConfig cfg;
  cfg.chares_x = 8;
  cfg.chares_y = 8;
  // Early iteration: the front touches few chares; later: more.
  int early = 0, late = 0;
  for (std::int32_t cx = 0; cx < 8; ++cx) {
    for (std::int32_t cy = 0; cy < 8; ++cy) {
      if (lassen_work_ns(cfg, cx, cy, 0) > cfg.base_compute_ns) ++early;
      if (lassen_work_ns(cfg, cx, cy, 8) > cfg.base_compute_ns) ++late;
    }
  }
  EXPECT_GT(early, 0);
  EXPECT_GT(late, early);
}

TEST(LassenCharm, FinerDecompositionShrinksMaxWork) {
  LassenConfig coarse;
  coarse.chares_x = 4;
  coarse.chares_y = 2;
  LassenConfig fine = coarse;
  fine.chares_x = 8;
  fine.chares_y = 8;
  std::int64_t max_coarse = 0, max_fine = 0;
  for (std::int32_t it = 0; it < 12; ++it) {
    for (std::int32_t cx = 0; cx < coarse.chares_x; ++cx)
      for (std::int32_t cy = 0; cy < coarse.chares_y; ++cy)
        max_coarse = std::max(max_coarse, lassen_work_ns(coarse, cx, cy, it));
    for (std::int32_t cx = 0; cx < fine.chares_x; ++cx)
      for (std::int32_t cy = 0; cy < fine.chares_y; ++cy)
        max_fine = std::max(max_fine, lassen_work_ns(fine, cx, cy, it));
  }
  // Splitting the wavefront into smaller pieces: the paper reports the
  // 64-chare run showing roughly a quarter of the 8-chare differential
  // duration.
  EXPECT_LT(max_fine, max_coarse);
}

TEST(LassenMpi, SmallRunIsValid) {
  LassenConfig cfg;
  cfg.iterations = 4;
  Trace t = run_lassen_mpi(cfg);
  auto problems = trace::validate(t);
  EXPECT_TRUE(problems.empty()) << problems.front();
  EXPECT_EQ(t.collectives().size(), 4u);
}

// --- PDES ------------------------------------------------------------------

TEST(Pdes, SmallRunIsValid) {
  PdesConfig cfg;
  Trace t = run_pdes(cfg);
  auto problems = trace::validate(t);
  EXPECT_TRUE(problems.empty()) << problems.front();
}

TEST(Pdes, DetectorCallsUntracedByDefault) {
  PdesConfig cfg;
  Trace t = run_pdes(cfg);
  // Detector chares exist and execute blocks, but their _completion_local
  // triggers have no recorded partner.
  int untraced_recvs = 0;
  for (const auto& e : t.events()) {
    if (e.kind == EventKind::Recv && e.partner == trace::kNone &&
        t.chare(e.chare).runtime)
      ++untraced_recvs;
  }
  EXPECT_EQ(untraced_recvs, cfg.num_chares * cfg.windows);
}

TEST(Pdes, TracedDetectorCallsHavePartners) {
  PdesConfig cfg;
  cfg.trace_detector_calls = true;
  Trace t = run_pdes(cfg);
  for (const auto& e : t.events()) {
    if (e.kind == EventKind::Recv && t.chare(e.chare).runtime &&
        t.entry(t.block(e.block).entry).name == "_completion_local") {
      EXPECT_NE(e.partner, trace::kNone);
    }
  }
}

TEST(Pdes, EventCountsBalance) {
  PdesConfig cfg;
  cfg.windows = 3;
  cfg.events_per_window = 5;
  Trace t = run_pdes(cfg);
  int sim_events = 0;
  for (const auto& e : t.events()) {
    if (e.kind == EventKind::Recv &&
        t.entry(t.block(e.block).entry).name == "recvEvent")
      ++sim_events;
  }
  EXPECT_EQ(sim_events, cfg.num_chares * cfg.windows * cfg.events_per_window);
}

// --- merge tree -------------------------------------------------------------

TEST(MergeTree, SmallRunIsValid) {
  MergeTreeConfig cfg;
  cfg.num_ranks = 16;
  Trace t = run_mergetree_mpi(cfg);
  auto problems = trace::validate(t);
  EXPECT_TRUE(problems.empty()) << problems.front();
  // 15 messages fold 16 ranks into one.
  int sends = 0;
  for (const auto& e : t.events())
    if (e.kind == EventKind::Send) ++sends;
  EXPECT_EQ(sends, 15);
}

TEST(MergeTreeDeathTest, RejectsNonPowerOfTwo) {
  MergeTreeConfig cfg;
  cfg.num_ranks = 12;
  EXPECT_DEATH(run_mergetree_mpi(cfg), "power-of-two");
}

TEST(MergeTree, ImbalanceSpreadsStartTimes) {
  MergeTreeConfig cfg;
  cfg.num_ranks = 64;
  cfg.imbalance = 6.0;
  Trace t = run_mergetree_mpi(cfg);
  // Level-0 sends should span a wide time range.
  trace::TimeNs lo = t.end_time(), hi = 0;
  for (const auto& e : t.events()) {
    if (e.kind == EventKind::Send) {
      lo = std::min(lo, e.time);
      hi = std::max(hi, e.time);
    }
  }
  EXPECT_GT(hi - lo, cfg.base_compute_ns);
}

// --- NAS BT ------------------------------------------------------------------

TEST(NasBt, SmallRunIsValid) {
  NasBtConfig cfg;
  Trace t = run_nasbt_mpi(cfg);
  auto problems = trace::validate(t);
  EXPECT_TRUE(problems.empty()) << problems.front();
  EXPECT_EQ(t.num_procs(), 9);
}

TEST(NasBt, SweepMessageCount) {
  NasBtConfig cfg;
  cfg.grid = 3;
  cfg.iterations = 2;
  Trace t = run_nasbt_mpi(cfg);
  // Per sweep: 2 messages per line x 3 lines = 6; 4 sweeps x 2 iterations.
  int sends = 0;
  for (const auto& e : t.events())
    if (e.kind == EventKind::Send) ++sends;
  EXPECT_EQ(sends, 6 * 4 * 2);
}

}  // namespace
}  // namespace logstruct::apps
