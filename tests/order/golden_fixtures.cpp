/// Out-of-line bodies for the golden workload table: the app makers and
/// the structure fingerprint, compiled once into ls_test_fixtures
/// instead of once per including test translation unit.

#include "golden_fixtures.hpp"

#include "apps/jacobi2d.hpp"
#include "apps/lassen.hpp"
#include "apps/lulesh.hpp"
#include "apps/mergetree.hpp"
#include "apps/nasbt.hpp"
#include "apps/pdes.hpp"

namespace logstruct::order::golden {

std::uint64_t structure_hash(const trace::Trace& trace,
                             const LogicalStructure& ls) {
  Fnv f;
  f.mix(trace.num_events());
  f.mix(ls.num_phases());
  for (std::int32_t p = 0; p < ls.num_phases(); ++p) {
    f.mix(ls.phases.runtime[static_cast<std::size_t>(p)] ? 1 : 0);
    f.mix(ls.phases.leap[static_cast<std::size_t>(p)]);
    f.mix(ls.phase_offset[static_cast<std::size_t>(p)]);
    f.mix(ls.phase_height[static_cast<std::size_t>(p)]);
    f.mix(static_cast<std::int64_t>(
        ls.phases.events[static_cast<std::size_t>(p)].size()));
  }
  for (auto [u, v] : ls.phases.dag.edges()) {
    f.mix(u);
    f.mix(v);
  }
  for (trace::EventId e = 0; e < trace.num_events(); ++e) {
    f.mix(ls.phases.phase_of_event[static_cast<std::size_t>(e)]);
    f.mix(ls.global_step[static_cast<std::size_t>(e)]);
  }
  for (const auto& seq : ls.chare_sequence) {
    f.mix(static_cast<std::int64_t>(seq.size()));
    for (trace::EventId e : seq) f.mix(e);
  }
  return f.value();
}

trace::Trace jacobi_small() {
  apps::Jacobi2DConfig cfg;
  cfg.chares_x = 4;
  cfg.chares_y = 4;
  cfg.num_pes = 4;
  cfg.iterations = 2;
  return apps::run_jacobi2d(cfg);
}

trace::Trace lulesh_charm_small() {
  apps::LuleshConfig cfg;
  cfg.iterations = 2;
  return apps::run_lulesh_charm(cfg);
}

trace::Trace lulesh_mpi_small() {
  apps::LuleshConfig cfg;
  cfg.iterations = 2;
  return apps::run_lulesh_mpi(cfg);
}

trace::Trace lassen_charm_small() {
  apps::LassenConfig cfg;
  cfg.iterations = 4;
  return apps::run_lassen_charm(cfg);
}

trace::Trace lassen_mpi_small() {
  apps::LassenConfig cfg;
  cfg.iterations = 4;
  return apps::run_lassen_mpi(cfg);
}

trace::Trace mergetree_small() {
  apps::MergeTreeConfig cfg;
  cfg.num_ranks = 32;
  return apps::run_mergetree_mpi(cfg);
}

trace::Trace nasbt_small() { return apps::run_nasbt_mpi({}); }

trace::Trace pdes_small() { return apps::run_pdes({}); }

const Golden kGoldens[12] = {
    {"jacobi2d/charm", jacobi_small, Options::charm, 0x923529b3b2bf2faaULL},
    {"jacobi2d/charm_no_reorder", jacobi_small, Options::charm_no_reorder,
     0x720980251dc78002ULL},
    {"lulesh/charm", lulesh_charm_small, Options::charm,
     0x50890b04041fb3d3ULL},
    {"lulesh/charm_no_inference(fig17)", lulesh_charm_small,
     Options::charm_no_inference, 0x402c6f88d8281526ULL},
    {"lulesh/mpi", lulesh_mpi_small, Options::mpi, 0x32ef90bfc07e662aULL},
    {"lulesh/mpi_baseline13", lulesh_mpi_small, Options::mpi_baseline13,
     0xf2aec2e63c903506ULL},
    {"lassen/charm", lassen_charm_small, Options::charm,
     0x9005e32ef50621a1ULL},
    {"lassen/mpi", lassen_mpi_small, Options::mpi, 0xccaf57915f2316d4ULL},
    {"mergetree/mpi", mergetree_small, Options::mpi, 0x096fc78620e84c5fULL},
    {"mergetree/mpi_baseline13", mergetree_small, Options::mpi_baseline13,
     0x0bb3997dfb0e7528ULL},
    {"nasbt/mpi", nasbt_small, Options::mpi, 0x76cd78df757d3f85ULL},
    {"pdes/charm", pdes_small, Options::charm, 0x960925480050563cULL},
};

}  // namespace logstruct::order::golden
