#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>

#include "apps/jacobi2d.hpp"
#include "apps/lulesh.hpp"
#include "order/io.hpp"
#include "order/stats.hpp"
#include "order/validate.hpp"
#include "order_fixtures.hpp"
#include "trace/builder.hpp"

namespace logstruct::order {
namespace {

trace::Trace small_jacobi() {
  apps::Jacobi2DConfig cfg;
  cfg.chares_x = 4;
  cfg.chares_y = 4;
  cfg.num_pes = 4;
  cfg.iterations = 2;
  return apps::run_jacobi2d(cfg);
}

// --- validate_structure ----------------------------------------------------

TEST(ValidateStructure, CleanOnPipelineOutput) {
  trace::Trace t = small_jacobi();
  LogicalStructure ls = extract_structure(t, Options::charm());
  EXPECT_TRUE(validate_structure(t, ls).empty());
}

TEST(ValidateStructure, DetectsCorruptedStep) {
  trace::Trace t = small_jacobi();
  LogicalStructure ls = extract_structure(t, Options::charm());
  ls.local_step[0] = -5;
  auto problems = validate_structure(t, ls);
  EXPECT_FALSE(problems.empty());
}

TEST(ValidateStructure, DetectsChareStepCollision) {
  trace::Trace t = small_jacobi();
  LogicalStructure ls = extract_structure(t, Options::charm());
  // Force two events of one chare onto the same step: find a chare with
  // at least two events (main only has its single broadcast send).
  trace::EventId first = trace::kNone, other = trace::kNone;
  for (trace::ChareId c = 0; c < t.num_chares() && other == trace::kNone;
       ++c) {
    auto events = t.events_of_chare(c);
    if (events.size() >= 2) {
      first = events[0];
      other = events[1];
    }
  }
  ASSERT_NE(other, trace::kNone);
  // Collapse both onto the first event's coordinates.
  ls.phases.phase_of_event[static_cast<std::size_t>(other)] =
      ls.phases.phase_of_event[static_cast<std::size_t>(first)];
  ls.local_step[static_cast<std::size_t>(other)] =
      ls.local_step[static_cast<std::size_t>(first)];
  ls.global_step[static_cast<std::size_t>(other)] =
      ls.global_step[static_cast<std::size_t>(first)];
  auto problems = validate_structure(t, ls);
  bool found = false;
  for (const auto& p : problems)
    if (p.find("two events at step") != std::string::npos) found = true;
  EXPECT_TRUE(found);
}

TEST(ValidateStructure, DetectsOffsetOverlap) {
  trace::Trace t = small_jacobi();
  LogicalStructure ls = extract_structure(t, Options::charm());
  ASSERT_GE(ls.num_phases(), 2);
  // Squash phase offsets so successors overlap predecessors.
  for (auto& off : ls.phase_offset) off = 0;
  auto problems = validate_structure(t, ls);
  EXPECT_FALSE(problems.empty());
}

TEST(ValidateStructure, DetectsSizeMismatch) {
  trace::Trace t = small_jacobi();
  LogicalStructure ls = extract_structure(t, Options::charm());
  ls.phases.phase_of_event.pop_back();
  auto problems = validate_structure(t, ls);
  ASSERT_FALSE(problems.empty());
  EXPECT_NE(problems[0].find("entries"), std::string::npos);
}

TEST(ValidateStructure, EmptyTraceHandled) {
  trace::TraceBuilder tb;
  trace::Trace t = tb.finish(0);
  LogicalStructure ls = extract_structure(t, Options::charm());
  EXPECT_EQ(ls.num_phases(), 0);
  EXPECT_TRUE(validate_structure(t, ls).empty());
  EXPECT_EQ(phase_signature(t, ls), "");
}

// --- phase_signature ---------------------------------------------------------

TEST(PhaseSignature, JacobiAlternation) {
  trace::Trace t = small_jacobi();
  LogicalStructure ls = extract_structure(t, Options::charm());
  // setup + iteration-1 + {reduction + iteration}* + final reduction.
  std::string sig = phase_signature(t, ls);
  EXPECT_EQ(sig.front(), 'p');
  EXPECT_EQ(sig.back(), 'r');
  // Exactly one runtime phase per iteration.
  EXPECT_EQ(std::count(sig.begin(), sig.end(), 'r'), 2);
}

TEST(PhasePattern, DetectsLeadAndUnit) {
  PhasePattern p = detect_pattern("pppraprapra");
  EXPECT_EQ(p.lead, "pp");
  EXPECT_EQ(p.unit, "pra");
  EXPECT_EQ(p.repeats, 3);
}

TEST(PhasePattern, PrefersShortestUnit) {
  PhasePattern p = detect_pattern("abababab");
  EXPECT_EQ(p.lead, "");
  EXPECT_EQ(p.unit, "ab");
  EXPECT_EQ(p.repeats, 4);
}

TEST(PhasePattern, SingleCharSignature) {
  PhasePattern p = detect_pattern("rrrr");
  EXPECT_EQ(p.unit, "r");
  EXPECT_EQ(p.repeats, 4);
}

TEST(PhasePattern, NoRepetition) {
  PhasePattern p = detect_pattern("abcd");
  EXPECT_EQ(p.repeats, 0);
  EXPECT_EQ(p.lead, "abcd");
}

TEST(PhasePattern, MinRepeatsRespected) {
  PhasePattern p = detect_pattern("abab", 3);
  EXPECT_EQ(p.repeats, 0);
}

TEST(PhasePattern, JacobiIterationsDetected) {
  apps::Jacobi2DConfig cfg;
  cfg.chares_x = 4;
  cfg.chares_y = 4;
  cfg.num_pes = 4;
  cfg.iterations = 4;
  trace::Trace t = apps::run_jacobi2d(cfg);
  LogicalStructure ls = extract_structure(t, Options::charm());
  PhasePattern p = detect_pattern(phase_signature(t, ls));
  EXPECT_EQ(p.unit, "pr");
  EXPECT_EQ(p.repeats, 4);
}

// --- structure serialization ----------------------------------------------------

TEST(StructureIo, RoundTripIsExact) {
  trace::Trace t = small_jacobi();
  LogicalStructure ls = extract_structure(t, Options::charm());
  std::ostringstream os;
  write_structure(ls, os);
  std::istringstream is(os.str());
  LogicalStructure back = read_structure(is, t);

  EXPECT_EQ(back.global_step, ls.global_step);
  EXPECT_EQ(back.local_step, ls.local_step);
  EXPECT_EQ(back.w, ls.w);
  EXPECT_EQ(back.phases.phase_of_event, ls.phases.phase_of_event);
  EXPECT_EQ(back.phases.runtime, ls.phases.runtime);
  EXPECT_EQ(back.phases.leap, ls.phases.leap);
  EXPECT_EQ(back.phase_offset, ls.phase_offset);
  EXPECT_EQ(back.phase_height, ls.phase_height);
  EXPECT_EQ(back.phases.events, ls.phases.events);
  EXPECT_EQ(back.chare_sequence, ls.chare_sequence);
  EXPECT_EQ(back.pos_in_chare, ls.pos_in_chare);
  EXPECT_EQ(back.max_step, ls.max_step);
  EXPECT_EQ(back.phases.dag.edges(), ls.phases.dag.edges());
  EXPECT_TRUE(validate_structure(t, back).empty());
}

TEST(StructureIo, RoundTripMpiTrace) {
  apps::LuleshConfig cfg;
  cfg.iterations = 2;
  trace::Trace t = apps::run_lulesh_mpi(cfg);
  LogicalStructure ls = extract_structure(t, Options::mpi_baseline13());
  std::ostringstream os;
  write_structure(ls, os);
  std::istringstream is(os.str());
  LogicalStructure back = read_structure(is, t);
  EXPECT_EQ(back.global_step, ls.global_step);
  EXPECT_EQ(phase_signature(t, back), phase_signature(t, ls));
}

TEST(StructureIo, WrongTraceRejected) {
  trace::Trace t = small_jacobi();
  LogicalStructure ls = extract_structure(t, Options::charm());
  std::ostringstream os;
  write_structure(ls, os);

  apps::Jacobi2DConfig other;
  other.chares_x = 2;
  other.chares_y = 2;
  other.num_pes = 2;
  other.iterations = 1;
  trace::Trace t2 = apps::run_jacobi2d(other);
  std::istringstream is(os.str());
  EXPECT_THROW(read_structure(is, t2), std::runtime_error);
}

TEST(StructureIo, TruncatedRejected) {
  trace::Trace t = small_jacobi();
  LogicalStructure ls = extract_structure(t, Options::charm());
  std::ostringstream os;
  write_structure(ls, os);
  std::string text = os.str();
  text.resize(text.size() / 2);
  std::istringstream is(text);
  EXPECT_THROW(read_structure(is, t), std::runtime_error);
}

TEST(StructureIo, FileRoundTrip) {
  trace::Trace t = small_jacobi();
  LogicalStructure ls = extract_structure(t, Options::charm());
  std::string path = ::testing::TempDir() + "/s.lstruct";
  ASSERT_TRUE(save_structure(ls, path));
  LogicalStructure back = load_structure(path, t);
  EXPECT_EQ(back.global_step, ls.global_step);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace logstruct::order
