/// §3.3: "As each phase is handled individually, this stage could be
/// parallelized." Verify the parallel step assignment is bit-identical to
/// the serial one across applications and thread counts.

#include <gtest/gtest.h>

#include "apps/jacobi2d.hpp"
#include "apps/lassen.hpp"
#include "apps/lulesh.hpp"
#include "order/stepping.hpp"

namespace logstruct::order {
namespace {

void expect_identical(const trace::Trace& t, Options base) {
  LogicalStructure serial = extract_structure(t, base);
  for (int threads : {2, 4, 8}) {
    Options par = base;
    par.step.threads = threads;
    LogicalStructure parallel = extract_structure(t, par);
    ASSERT_EQ(parallel.global_step, serial.global_step)
        << "threads=" << threads;
    ASSERT_EQ(parallel.local_step, serial.local_step);
    ASSERT_EQ(parallel.w, serial.w);
    ASSERT_EQ(parallel.chare_sequence, serial.chare_sequence);
    ASSERT_EQ(parallel.order_conflicts, serial.order_conflicts);
  }
}

TEST(ParallelStepping, JacobiIdentical) {
  apps::Jacobi2DConfig cfg;
  cfg.chares_x = 8;
  cfg.chares_y = 8;
  cfg.num_pes = 8;
  cfg.iterations = 4;
  expect_identical(apps::run_jacobi2d(cfg), Options::charm());
}

TEST(ParallelStepping, LuleshIdentical) {
  apps::LuleshConfig cfg;
  cfg.iterations = 6;
  expect_identical(apps::run_lulesh_charm(cfg), Options::charm());
}

TEST(ParallelStepping, LuleshMpiIdentical) {
  apps::LuleshConfig cfg;
  cfg.iterations = 4;
  expect_identical(apps::run_lulesh_mpi(cfg), Options::mpi());
}

TEST(ParallelStepping, LassenNoReorderIdentical) {
  apps::LassenConfig cfg;
  cfg.iterations = 5;
  expect_identical(apps::run_lassen_charm(cfg),
                   Options::charm_no_reorder());
}

TEST(ParallelStepping, MoreThreadsThanPhases) {
  apps::Jacobi2DConfig cfg;
  cfg.chares_x = 2;
  cfg.chares_y = 2;
  cfg.num_pes = 2;
  cfg.iterations = 1;
  expect_identical(apps::run_jacobi2d(cfg), Options::charm());
}

}  // namespace
}  // namespace logstruct::order
