/// Fault-injection property tests for the whole ingestion pipeline:
/// serialize a golden workload, damage it with the deterministic
/// TraceCorruptor, and push the wreckage through recover → repair →
/// extract_structure. The properties are the tentpole guarantees:
///
///   1. never crash, never throw, always terminate;
///   2. the RecoveryReport accounts for every injected fault class;
///   3. the salvaged trace validates and survives phase extraction;
///   4. an UNcorrupted recovering read is bit-identical to the strict
///      path — the 12 golden structure hashes, at 1 and 4 threads;
///   5. degraded chares quarantine phases instead of aborting (and DO
///      abort under Options::allow_degraded = false).

#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "golden_fixtures.hpp"
#include "order/causality.hpp"
#include "order/stepping.hpp"
#include "trace/corruptor.hpp"
#include "trace/diagnostics.hpp"
#include "trace/io.hpp"
#include "trace/repair.hpp"
#include "trace/validate.hpp"

namespace logstruct::order {
namespace {

using golden::Golden;
using golden::kGoldens;
using golden::ScopedDefaultParallelism;
using golden::structure_hash;
using trace::DiagCode;
using trace::FaultKind;
using trace::ReadOptions;
using trace::RecoveryReport;
using trace::TraceCorruptor;

std::string serialize(const trace::Trace& t) {
  std::ostringstream os;
  trace::write_trace(t, os);
  return os.str();
}

/// The three workloads the corruption matrix runs over: enough diversity
/// (stencil, unstructured, speculative) to exercise every repair path
/// while staying fast on one core.
const Golden& workload(int i) {
  static const Golden* const kSubset[] = {
      &kGoldens[0],   // jacobi2d/charm
      &kGoldens[2],   // lulesh/charm
      &kGoldens[11],  // pdes/charm
  };
  return *kSubset[i];
}
constexpr int kNumWorkloads = 3;

/// Does the report account for this fault class? Each corruptor fault
/// has at least one diagnostic code it MUST surface as; anything else
/// counted on top is fine.
bool accounted(FaultKind kind, const RecoveryReport& r) {
  switch (kind) {
    case FaultKind::DropLines:
    case FaultKind::FlipBytes:
    case FaultKind::PerturbTimestamps:
      // Damage scattered across arbitrary record types: any non-empty
      // report accounts for it (sequential ids make drops visible, and
      // perturbed timestamps exceed every block span).
      return r.total() > 0;
    case FaultKind::TruncateTail:
      return r.count(DiagCode::TruncatedFile) >= 1;
    case FaultKind::DuplicateLines:
      return r.count(DiagCode::DuplicateRecord) +
                 r.count(DiagCode::DeduplicatedRecord) >=
             1;
    case FaultKind::LsblkFlipBlock:
    case FaultKind::LsblkTruncateDir:
    case FaultKind::LsblkZeroFooter:
      // Binary container faults; exercised by the blocked-storage suite
      // (tests/trace/storage_fault_test.cpp), not the text matrix.
      return r.total() > 0;
  }
  return false;
}

TEST(FaultInjection, CorruptionMatrixNeverCrashesAndIsAccounted) {
  for (int w = 0; w < kNumWorkloads; ++w) {
    const Golden& g = workload(w);
    const std::string clean = serialize(g.make());
    for (int k = 0; k < trace::kNumTextFaultKinds; ++k) {
      const auto kind = static_cast<FaultKind>(k);
      for (std::uint64_t seed = 1; seed <= 3; ++seed) {
        SCOPED_TRACE(std::string(g.name) + " / " +
                     trace::fault_kind_name(kind) + " / seed " +
                     std::to_string(seed));
        TraceCorruptor corruptor(seed);
        const std::string damaged = corruptor.corrupt(clean, kind);
        ASSERT_NE(damaged, clean);

        std::istringstream in(damaged);
        RecoveryReport report;
        trace::Trace t =
            trace::read_trace(in, ReadOptions::recovering(), report);

        EXPECT_TRUE(accounted(kind, report)) << report.to_string();
        EXPECT_TRUE(trace::validate(t).empty());
        if (report.fatal() || t.num_events() == 0) continue;

        // The salvage must terminate the full pipeline; degraded
        // chares quarantine phases instead of killing extraction.
        LogicalStructure ls = extract_structure(t, g.opts());
        EXPECT_GE(ls.num_phases(), 0);
        std::int32_t flagged = 0;
        for (std::int32_t p = 0; p < ls.num_phases(); ++p)
          if (ls.phases.is_degraded(p)) ++flagged;
        EXPECT_EQ(flagged, ls.phases.degraded_phases);
        if (t.num_degraded_chares() == 0) {
          EXPECT_EQ(ls.phases.degraded_phases, 0);
        }
      }
    }
  }
}

TEST(FaultInjection, UncorruptedRecoveryIsBitIdenticalAtOneThread) {
  ScopedDefaultParallelism scope(1);
  for (const Golden& g : kGoldens) {
    SCOPED_TRACE(g.name);
    const std::string text = serialize(g.make());
    std::istringstream in(text);
    RecoveryReport report;
    trace::Trace t =
        trace::read_trace(in, ReadOptions::recovering(), report);
    EXPECT_TRUE(report.empty()) << report.to_string();
    LogicalStructure ls = extract_structure(t, g.opts());
    EXPECT_EQ(structure_hash(t, ls), g.expected);
    EXPECT_EQ(ls.phases.degraded_phases, 0);
  }
}

TEST(FaultInjection, UncorruptedRecoveryIsBitIdenticalAtFourThreads) {
  ScopedDefaultParallelism scope(4);
  for (const Golden& g : kGoldens) {
    SCOPED_TRACE(g.name);
    const std::string text = serialize(g.make());
    std::istringstream in(text);
    RecoveryReport report;
    trace::Trace t =
        trace::read_trace(in, ReadOptions::recovering(), report);
    EXPECT_TRUE(report.empty()) << report.to_string();
    LogicalStructure ls = extract_structure(t, g.opts());
    EXPECT_EQ(structure_hash(t, ls), g.expected);
  }
}

/// A degraded trace built through the repair path, used by the
/// quarantine tests below.
trace::Trace degraded_jacobi() {
  const std::string text = serialize(golden::jacobi_small());
  TraceCorruptor corruptor(4);
  std::string damaged = corruptor.corrupt(text, FaultKind::DropLines);
  std::istringstream in(damaged);
  RecoveryReport report;
  return trace::read_trace(in, ReadOptions::recovering(), report);
}

TEST(FaultInjection, DegradedCharesQuarantinePhases) {
  trace::Trace t = degraded_jacobi();
  ASSERT_GT(t.num_degraded_chares(), 0)
      << "seed no longer severs a send/recv pair; pick another";
  Options opts = Options::charm();
  ASSERT_TRUE(opts.allow_degraded);
  LogicalStructure ls = extract_structure(t, opts);
  EXPECT_GT(ls.phases.degraded_phases, 0);
  EXPECT_EQ(ls.phases.degraded.size(),
            static_cast<std::size_t>(ls.num_phases()));
  std::int32_t flagged = 0;
  for (std::int32_t p = 0; p < ls.num_phases(); ++p)
    if (ls.phases.is_degraded(p)) ++flagged;
  EXPECT_EQ(flagged, ls.phases.degraded_phases);
}

/// Causality x fault injection: a repaired trace must still extract to
/// a causality-clean structure with the checker pass armed (no abort),
/// and the standalone report must show degraded edges quarantined
/// rather than judged. Every fault class x 4 seeds.
TEST(FaultInjection, RepairedTracesAreCausalityCleanOrQuarantined) {
  const Golden& g = workload(0);  // jacobi2d/charm
  const std::string clean = serialize(g.make());
  for (int k = 0; k < trace::kNumTextFaultKinds; ++k) {
    const auto kind = static_cast<FaultKind>(k);
    for (std::uint64_t seed = 1; seed <= 4; ++seed) {
      SCOPED_TRACE(std::string(trace::fault_kind_name(kind)) + " / seed " +
                   std::to_string(seed));
      TraceCorruptor corruptor(seed);
      const std::string damaged = corruptor.corrupt(clean, kind);
      std::istringstream in(damaged);
      RecoveryReport report;
      trace::Trace t =
          trace::read_trace(in, ReadOptions::recovering(), report);
      if (report.fatal() || t.num_events() == 0) continue;

      // In-pipeline: the pass aborts on any violation, so surviving
      // extraction IS the assertion.
      Options opts = g.opts();
      opts.check_causality = true;
      LogicalStructure ls = extract_structure(t, opts);

      // Standalone: zero violations, and any edge touching a degraded
      // phase shows up as quarantined, never as a judgment.
      CausalityReport creport = check_causality(t, ls);
      EXPECT_TRUE(creport.clean())
          << creport.total_violations << " violations, first: "
          << (creport.violations.empty()
                  ? "<none stored>"
                  : creport.violations.front().detail);
      if (ls.phases.degraded_phases > 0) {
        EXPECT_GT(creport.skipped_degraded, 0);
      }
    }
  }
}

using FaultInjectionDeathTest = ::testing::Test;

TEST(FaultInjectionDeathTest, StrictOrderRefusesDegradedTraces) {
  trace::Trace t = degraded_jacobi();
  ASSERT_GT(t.num_degraded_chares(), 0);
  Options opts = Options::charm();
  opts.allow_degraded = false;
  EXPECT_DEATH(extract_structure(t, opts), "allow_degraded");
}

}  // namespace
}  // namespace logstruct::order
