#include "order/block_units.hpp"

#include <gtest/gtest.h>

#include "trace/builder.hpp"

namespace logstruct::order {
namespace {

/// when-block [recv] immediately followed by serial_1 [send] on one chare.
struct AbsorbTrace {
  trace::Trace trace;
  trace::BlockId b_when, b_serial;
  trace::EventId recv, send;
};

AbsorbTrace make_absorb_trace() {
  AbsorbTrace m;
  trace::TraceBuilder tb;
  trace::ChareId c = tb.add_chare("c");
  trace::ChareId d = tb.add_chare("d");
  trace::EntryId e_when = tb.add_entry("recvResult");
  trace::EntryId e_serial = tb.add_entry("serial_1", false, 1, {e_when});
  trace::EntryId e_plain = tb.add_entry("plain");

  m.b_when = tb.begin_block(c, 0, e_when, 0);
  m.recv = tb.add_recv(m.b_when, 0, trace::kNone);
  tb.end_block(m.b_when, 10);
  m.b_serial = tb.begin_block(c, 0, e_serial, 10);
  m.send = tb.add_send(m.b_serial, 15);
  tb.end_block(m.b_serial, 20);
  // Match the send somewhere.
  trace::BlockId bd = tb.begin_block(d, 1, e_plain, 100);
  tb.add_recv(bd, 100, m.send);
  tb.end_block(bd, 110);
  m.trace = tb.finish(2);
  return m;
}

TEST(BlockUnits, AbsorptionGroupsWhenIntoSerial) {
  AbsorbTrace m = make_absorb_trace();
  BlockUnits u = compute_block_units(m.trace, /*sdag_absorption=*/true);
  EXPECT_EQ(u.rep[static_cast<std::size_t>(m.b_when)], m.b_serial);
  // The serial's unit holds both events, time-ordered.
  const auto& unit =
      u.events[static_cast<std::size_t>(m.b_serial)];
  ASSERT_EQ(unit.size(), 2u);
  EXPECT_EQ(unit[0], m.recv);
  EXPECT_EQ(unit[1], m.send);
  EXPECT_EQ(u.unit_of_event[static_cast<std::size_t>(m.recv)], m.b_serial);
  EXPECT_EQ(u.unit_of_event[static_cast<std::size_t>(m.send)], m.b_serial);
  // The absorbed block's own bucket is empty.
  EXPECT_TRUE(u.events[static_cast<std::size_t>(m.b_when)].empty());
}

TEST(BlockUnits, WithoutAbsorptionBlocksStaySeparate) {
  AbsorbTrace m = make_absorb_trace();
  BlockUnits u = compute_block_units(m.trace, /*sdag_absorption=*/false);
  EXPECT_EQ(u.rep[static_cast<std::size_t>(m.b_when)], m.b_when);
  EXPECT_EQ(u.events[static_cast<std::size_t>(m.b_when)].size(), 1u);
  EXPECT_EQ(u.events[static_cast<std::size_t>(m.b_serial)].size(), 1u);
  EXPECT_EQ(u.unit_of_event[static_cast<std::size_t>(m.recv)], m.b_when);
}

TEST(BlockUnits, EventlessBlocksHaveEmptyUnits) {
  trace::TraceBuilder tb;
  trace::ChareId c = tb.add_chare("c");
  trace::EntryId e = tb.add_entry("go");
  trace::BlockId b = tb.begin_block(c, 0, e, 0);
  tb.end_block(b, 10);
  trace::Trace t = tb.finish(1);
  BlockUnits u = compute_block_units(t, true);
  EXPECT_TRUE(u.events[static_cast<std::size_t>(b)].empty());
}

}  // namespace
}  // namespace logstruct::order
