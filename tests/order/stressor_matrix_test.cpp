/// Combined-stressor matrix: migration, load balancing, clock skew, and
/// scheduling seeds together. Whatever the simulator throws at it, the
/// pipeline's structural guarantees must hold for every option preset —
/// the strongest end-to-end statement the suite makes.

#include <gtest/gtest.h>

#include <tuple>
#include <vector>

#include "apps/jacobi2d.hpp"
#include "apps/lassen.hpp"
#include "order/stepping.hpp"
#include "order/validate.hpp"
#include "order_fixtures.hpp"
#include "trace/skew.hpp"
#include "trace/validate.hpp"
#include "util/rng.hpp"

namespace logstruct::order {
namespace {

/// (seed, migrate, load-balance, skew-ns)
using Stressors = std::tuple<std::uint64_t, bool, bool, std::int64_t>;

class StressorMatrix : public ::testing::TestWithParam<Stressors> {};

trace::Trace skewed(trace::Trace t, std::int64_t magnitude,
                    std::uint64_t seed) {
  if (magnitude == 0) return t;
  util::Rng rng(seed ^ 0x5CE3ULL);
  std::vector<trace::TimeNs> delta(
      static_cast<std::size_t>(t.num_procs()));
  for (auto& d : delta) d = rng.uniform_range(-magnitude, magnitude);
  return trace::apply_clock_skew(t, delta);
}

TEST_P(StressorMatrix, JacobiInvariantsHold) {
  auto [seed, migrate, lb, skew_ns] = GetParam();
  apps::Jacobi2DConfig cfg;
  cfg.chares_x = 4;
  cfg.chares_y = 4;
  cfg.num_pes = 4;
  cfg.iterations = 4;
  cfg.seed = seed;
  if (migrate) cfg.migrate_at_iteration = 1;
  if (lb) {
    cfg.lb_at_iteration = 2;
    cfg.slow_chare = 5;
    cfg.slow_every_iteration = true;
  }
  trace::Trace t = skewed(apps::run_jacobi2d(cfg), skew_ns, seed);
  // Skew legitimately lets receives precede their sends across PEs; only
  // unskewed traces validate cleanly.
  if (skew_ns == 0) {
    ASSERT_TRUE(trace::validate(t).empty());
  }

  for (const Options& opts :
       {Options::charm(), Options::charm_no_reorder(),
        Options::charm_no_inference()}) {
    LogicalStructure ls = extract_structure(t, opts);
    auto problems = validate_structure(t, ls);
    EXPECT_TRUE(problems.empty())
        << "seed=" << seed << " migrate=" << migrate << " lb=" << lb
        << " skew=" << skew_ns << ": " << problems.front();
  }
}

TEST_P(StressorMatrix, LassenInvariantsHold) {
  auto [seed, migrate, lb, skew_ns] = GetParam();
  (void)migrate;  // LASSEN exposes LB, not ad-hoc migration
  apps::LassenConfig cfg;
  cfg.iterations = 5;
  cfg.seed = seed;
  if (lb) cfg.lb_period = 2;
  trace::Trace t = skewed(apps::run_lassen_charm(cfg), skew_ns, seed);
  if (skew_ns == 0) {
    ASSERT_TRUE(trace::validate(t).empty());
  }
  LogicalStructure ls = extract_structure(t, Options::charm());
  auto problems = validate_structure(t, ls);
  EXPECT_TRUE(problems.empty()) << problems.front();
}

INSTANTIATE_TEST_SUITE_P(
    Matrix, StressorMatrix,
    ::testing::Combine(::testing::Values<std::uint64_t>(1, 29),
                       ::testing::Bool(), ::testing::Bool(),
                       ::testing::Values<std::int64_t>(0, 1500)));

}  // namespace
}  // namespace logstruct::order
