#include "order/merges.hpp"

#include <gtest/gtest.h>

#include "graph/leaps.hpp"
#include "order/infer.hpp"
#include "order/initial.hpp"
#include "trace/builder.hpp"

namespace logstruct::order {
namespace {

TEST(Merges, DependencyMergeJoinsMatchingEnds) {
  trace::TraceBuilder tb;
  trace::ChareId a = tb.add_chare("a");
  trace::ChareId b = tb.add_chare("b");
  trace::EntryId e = tb.add_entry("go");
  trace::BlockId ba = tb.begin_block(a, 0, e, 0);
  trace::EventId s = tb.add_send(ba, 10);
  tb.end_block(ba, 20);
  trace::BlockId bb = tb.begin_block(b, 1, e, 100);
  trace::EventId r = tb.add_recv(bb, 100, s);
  tb.end_block(bb, 110);
  trace::Trace t = tb.finish(2);

  PartitionGraph pg = build_initial_partitions(t, PartitionOptions{});
  EXPECT_NE(pg.part_of(s), pg.part_of(r));
  dependency_merge(pg);
  EXPECT_EQ(pg.part_of(s), pg.part_of(r));
}

TEST(Merges, DependencyMergeSkipsMixedKinds) {
  // An app->runtime pair classifies as runtime on BOTH ends, so the merge
  // happens; this guards the classification rather than a skip. A truly
  // mixed pair only arises from earlier cycle merges.
  trace::TraceBuilder tb;
  trace::ChareId a = tb.add_chare("a");
  trace::ChareId r = tb.add_chare("mgr", trace::kNone, -1, 0, true);
  trace::EntryId e = tb.add_entry("go");
  trace::EntryId er = tb.add_entry("rt", true);
  trace::BlockId ba = tb.begin_block(a, 0, e, 0);
  trace::EventId s = tb.add_send(ba, 10);
  tb.end_block(ba, 20);
  trace::BlockId br = tb.begin_block(r, 0, er, 100);
  trace::EventId rv = tb.add_recv(br, 100, s);
  tb.end_block(br, 110);
  trace::Trace t = tb.finish(1);

  PartitionGraph pg = build_initial_partitions(t, PartitionOptions{});
  EXPECT_TRUE(pg.runtime(pg.part_of(s)));
  EXPECT_TRUE(pg.runtime(pg.part_of(rv)));
  dependency_merge(pg);
  EXPECT_EQ(pg.part_of(s), pg.part_of(rv));
}

/// Paper Fig. 4 scenario: a serial block's app events are split by an
/// intervening runtime dependency. Algorithm 2 (adjacent serial
/// happened-before, same-kind partitions) deliberately does NOT weld the
/// app runs across the runtime piece — that separation carries LASSEN's
/// two-step control phases — and the later leap merge is what reunites
/// split pieces that really belong to one phase.
TEST(Merges, RepairLeavesSplitRunsForLeapMerge) {
  trace::TraceBuilder tb;
  trace::ChareId a = tb.add_chare("a");
  trace::ChareId b = tb.add_chare("b");
  trace::ChareId r = tb.add_chare("mgr", trace::kNone, -1, 0, true);
  trace::EntryId e = tb.add_entry("go");
  trace::EntryId er = tb.add_entry("rt", true);

  // Block on a: [app send s1, runtime send sr, app send s2].
  trace::BlockId ba = tb.begin_block(a, 0, e, 0);
  trace::EventId s1 = tb.add_send(ba, 10);
  trace::EventId sr = tb.add_send(ba, 20);
  trace::EventId s2 = tb.add_send(ba, 30);
  tb.end_block(ba, 40);
  // Matches.
  trace::BlockId bb1 = tb.begin_block(b, 1, e, 100);
  tb.add_recv(bb1, 100, s1);
  tb.end_block(bb1, 105);
  trace::BlockId brt = tb.begin_block(r, 0, er, 110);
  tb.add_recv(brt, 110, sr);
  tb.end_block(brt, 115);
  trace::BlockId bb2 = tb.begin_block(b, 1, e, 120);
  tb.add_recv(bb2, 120, s2);
  tb.end_block(bb2, 125);
  trace::Trace t = tb.finish(2);

  PartitionGraph pg = build_initial_partitions(t, PartitionOptions{});
  // Split: s1 | sr | s2 in three initial partitions.
  EXPECT_NE(pg.part_of(s1), pg.part_of(s2));
  EXPECT_NE(pg.part_of(s1), pg.part_of(sr));
  EXPECT_FALSE(pg.runtime(pg.part_of(s1)));
  EXPECT_TRUE(pg.runtime(pg.part_of(sr)));

  dependency_merge(pg);
  repair_merge(pg, PartitionOptions{});
  // The repair alone keeps all three pieces apart (adjacent pairs differ
  // in kind)...
  EXPECT_NE(pg.part_of(s1), pg.part_of(s2));
  EXPECT_NE(pg.part_of(s1), pg.part_of(sr));

  // ...which is correct: the block's chain edges order them
  // app -> runtime -> app, so they are sequential phases, not one. The
  // leap enforcement leaves that sequence alone (different leaps never
  // merge).
  enforce_leap_property(pg, PartitionOptions{});
  EXPECT_NE(pg.part_of(s1), pg.part_of(s2));
  auto leaps = graph::compute_leaps(pg.dag());
  EXPECT_LT(leaps[static_cast<std::size_t>(pg.part_of(s1))],
            leaps[static_cast<std::size_t>(pg.part_of(sr))]);
  EXPECT_LT(leaps[static_cast<std::size_t>(pg.part_of(sr))],
            leaps[static_cast<std::size_t>(pg.part_of(s2))]);
}

/// §3.1.3 second rule: one multi-chare serial-n phase flowing into
/// several serial-(n+1) partitions merges those successors.
TEST(Merges, NeighborSerialMergeGroupsSuccessors) {
  trace::TraceBuilder tb;
  trace::ChareId a = tb.add_chare("a");
  trace::ChareId b = tb.add_chare("b");
  trace::EntryId s0 = tb.add_entry("serial_0", false, 0);
  trace::EntryId s1 = tb.add_entry("serial_1", false, 1);

  // serial_0 on a and b: a sends to b, whose serial_0 block replies, so
  // the dependency merge chains everything into one multi-chare phase.
  trace::BlockId a0 = tb.begin_block(a, 0, s0, 0);
  trace::EventId sa = tb.add_send(a0, 5);
  tb.end_block(a0, 10);
  trace::BlockId b0 = tb.begin_block(b, 1, s0, 20);
  tb.add_recv(b0, 20, sa);
  trace::EventId sb = tb.add_send(b0, 22);
  tb.end_block(b0, 25);
  trace::BlockId a0r = tb.begin_block(a, 0, s0, 40);
  tb.add_recv(a0r, 40, sb);
  tb.end_block(a0r, 45);

  // serial_1 on each chare: disconnected singleton partitions.
  trace::ChareId c = tb.add_chare("c");
  trace::ChareId d = tb.add_chare("d");
  trace::BlockId a1 = tb.begin_block(a, 0, s1, 50);
  trace::EventId sa1 = tb.add_send(a1, 50);
  tb.end_block(a1, 55);
  trace::BlockId b1 = tb.begin_block(b, 1, s1, 50);
  trace::EventId sb1 = tb.add_send(b1, 50);
  tb.end_block(b1, 55);
  trace::BlockId cr = tb.begin_block(c, 0, s1, 80);
  tb.add_recv(cr, 80, sa1);
  tb.end_block(cr, 85);
  trace::BlockId dr = tb.begin_block(d, 1, s1, 80);
  tb.add_recv(dr, 80, sb1);
  tb.end_block(dr, 85);
  trace::Trace t = tb.finish(2);

  PartitionOptions opts;
  PartitionGraph pg = build_initial_partitions(t, opts);
  pg.cycle_merge();
  dependency_merge(pg);
  repair_merge(pg, opts);
  // serial_0 group merged into one multi-chare phase; serial_1 halves
  // still separate.
  ASSERT_EQ(pg.part_of(sa), pg.part_of(sb));
  ASSERT_NE(pg.part_of(sa1), pg.part_of(sb1));

  neighbor_serial_merge(pg, opts);
  EXPECT_EQ(pg.part_of(sa1), pg.part_of(sb1));
}

TEST(Merges, NeighborSerialMergeIgnoresSingleChareSources) {
  // A single-chare serial_0 partition flowing into two serial_1
  // partitions is NOT a chare-group handoff: no merge.
  trace::TraceBuilder tb;
  trace::ChareId a = tb.add_chare("a");
  trace::ChareId c = tb.add_chare("c");
  trace::EntryId s0 = tb.add_entry("serial_0", false, 0);
  trace::EntryId s1 = tb.add_entry("serial_1", false, 1);
  trace::BlockId a0 = tb.begin_block(a, 0, s0, 0);
  trace::EventId s = tb.add_send(a0, 5);
  tb.end_block(a0, 10);
  trace::BlockId crx = tb.begin_block(c, 1, s0, 20);
  tb.add_recv(crx, 20, s);
  tb.end_block(crx, 25);
  // Two separate serial_1 executions on a, each its own message chain.
  trace::BlockId a1 = tb.begin_block(a, 0, s1, 50);
  trace::EventId s1a = tb.add_send(a1, 50);
  tb.end_block(a1, 55);
  trace::BlockId cr1 = tb.begin_block(c, 1, s1, 80);
  tb.add_recv(cr1, 80, s1a);
  tb.end_block(cr1, 85);
  trace::Trace t = tb.finish(2);

  PartitionOptions opts;
  PartitionGraph pg = build_initial_partitions(t, opts);
  pg.cycle_merge();
  dependency_merge(pg);
  std::int32_t before = pg.num_partitions();
  neighbor_serial_merge(pg, opts);
  EXPECT_EQ(pg.num_partitions(), before);
}

}  // namespace
}  // namespace logstruct::order
