#include "order/partition_graph.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "trace/builder.hpp"

namespace logstruct::order {
namespace {

/// Four single-event partitions on four chares (one block each).
struct Fixture {
  trace::Trace trace;
  std::vector<trace::EventId> events;
};

Fixture make_four_events() {
  Fixture f;
  trace::TraceBuilder tb;
  trace::EntryId e = tb.add_entry("go");
  for (int i = 0; i < 4; ++i) {
    trace::ChareId c = tb.add_chare("c" + std::to_string(i));
    trace::BlockId b = tb.begin_block(c, 0, e, i * 10);
    f.events.push_back(tb.add_send(b, i * 10));
    tb.end_block(b, i * 10 + 5);
  }
  f.trace = tb.finish(1);
  return f;
}

TEST(PartitionGraph, BuildAndQuery) {
  Fixture f = make_four_events();
  PartitionGraph pg(f.trace);
  for (int i = 0; i < 4; ++i)
    pg.add_partition({f.events[static_cast<std::size_t>(i)]}, i % 2 == 0);
  pg.add_edge(0, 1);
  pg.add_edge(1, 2);
  pg.finalize();

  EXPECT_EQ(pg.num_partitions(), 4);
  EXPECT_TRUE(pg.runtime(0));
  EXPECT_FALSE(pg.runtime(1));
  EXPECT_EQ(pg.part_of(f.events[2]), 2);
  EXPECT_TRUE(pg.dag().has_edge(0, 1));
  ASSERT_EQ(pg.chares(0).size(), 1u);
}

TEST(PartitionGraph, ApplyMergesRelabelsEverything) {
  Fixture f = make_four_events();
  PartitionGraph pg(f.trace);
  for (int i = 0; i < 4; ++i)
    pg.add_partition({f.events[static_cast<std::size_t>(i)]}, false);
  pg.add_edge(0, 1);
  pg.add_edge(2, 3);
  pg.finalize();

  std::vector<std::pair<PartId, PartId>> pairs{{0, 2}};
  EXPECT_TRUE(pg.apply_merges(pairs));
  EXPECT_EQ(pg.num_partitions(), 3);
  EXPECT_EQ(pg.part_of(f.events[0]), pg.part_of(f.events[2]));
  // Merged partition keeps both chares and both edges.
  PartId merged = pg.part_of(f.events[0]);
  EXPECT_EQ(pg.chares(merged).size(), 2u);
  EXPECT_EQ(pg.events(merged).size(), 2u);
  EXPECT_EQ(pg.dag().successors(merged).size(), 2u);
}

TEST(PartitionGraph, MergedEventsStayTimeSorted) {
  Fixture f = make_four_events();
  PartitionGraph pg(f.trace);
  for (int i = 0; i < 4; ++i)
    pg.add_partition({f.events[static_cast<std::size_t>(i)]}, false);
  pg.finalize();
  std::vector<std::pair<PartId, PartId>> pairs{{3, 0}, {0, 2}};
  pg.apply_merges(pairs);
  PartId merged = pg.part_of(f.events[0]);
  auto events = pg.events(merged);
  for (std::size_t i = 1; i < events.size(); ++i) {
    EXPECT_LE(f.trace.event(events[i - 1]).time,
              f.trace.event(events[i]).time);
  }
}

TEST(PartitionGraph, CycleMergeCollapsesScc) {
  Fixture f = make_four_events();
  PartitionGraph pg(f.trace);
  for (int i = 0; i < 4; ++i)
    pg.add_partition({f.events[static_cast<std::size_t>(i)]}, false);
  pg.add_edge(0, 1);
  pg.add_edge(1, 2);
  pg.add_edge(2, 0);  // cycle 0-1-2
  pg.add_edge(2, 3);
  pg.finalize();

  EXPECT_TRUE(pg.cycle_merge());
  EXPECT_EQ(pg.num_partitions(), 2);
  EXPECT_EQ(pg.part_of(f.events[0]), pg.part_of(f.events[1]));
  EXPECT_EQ(pg.part_of(f.events[1]), pg.part_of(f.events[2]));
  EXPECT_NE(pg.part_of(f.events[0]), pg.part_of(f.events[3]));
  // Edge to 3 survives, graph is a DAG.
  PartId merged = pg.part_of(f.events[0]);
  EXPECT_TRUE(pg.dag().has_edge(merged, pg.part_of(f.events[3])));
}

TEST(PartitionGraph, CycleMergeNoOpOnDag) {
  Fixture f = make_four_events();
  PartitionGraph pg(f.trace);
  for (int i = 0; i < 4; ++i)
    pg.add_partition({f.events[static_cast<std::size_t>(i)]}, false);
  pg.add_edge(0, 1);
  pg.finalize();
  EXPECT_FALSE(pg.cycle_merge());
  EXPECT_EQ(pg.num_partitions(), 4);
}

TEST(PartitionGraph, RuntimeFlagPropagatesThroughMerge) {
  Fixture f = make_four_events();
  PartitionGraph pg(f.trace);
  pg.add_partition({f.events[0]}, false);
  pg.add_partition({f.events[1]}, true);
  pg.add_partition({f.events[2]}, false);
  pg.add_partition({f.events[3]}, false);
  pg.add_edge(0, 1);
  pg.add_edge(1, 0);  // app-runtime cycle
  pg.finalize();
  pg.cycle_merge();
  EXPECT_TRUE(pg.runtime(pg.part_of(f.events[0])));
  EXPECT_FALSE(pg.runtime(pg.part_of(f.events[2])));
}

TEST(PartitionGraph, FirstEventOfChare) {
  Fixture f = make_four_events();
  PartitionGraph pg(f.trace);
  for (int i = 0; i < 4; ++i)
    pg.add_partition({f.events[static_cast<std::size_t>(i)]}, false);
  pg.finalize();
  std::vector<std::pair<PartId, PartId>> pairs{{0, 1}};
  pg.apply_merges(pairs);
  PartId merged = pg.part_of(f.events[0]);
  EXPECT_EQ(pg.first_event_of_chare(merged, f.trace.event(f.events[1]).chare),
            f.events[1]);
  EXPECT_EQ(pg.first_event_of_chare(merged, f.trace.event(f.events[3]).chare),
            trace::kNone);
}

TEST(PartitionGraph, MergesAppliedCounter) {
  Fixture f = make_four_events();
  PartitionGraph pg(f.trace);
  for (int i = 0; i < 4; ++i)
    pg.add_partition({f.events[static_cast<std::size_t>(i)]}, false);
  pg.finalize();
  EXPECT_EQ(pg.merges_applied(), 0);
  std::vector<std::pair<PartId, PartId>> pairs{{0, 1}, {2, 3}};
  pg.apply_merges(pairs);
  EXPECT_EQ(pg.merges_applied(), 2);
}

/// Regression for the lazy-DAG hazard: dag() used to materialize into a
/// mutable member with no synchronization, so the FIRST dag() call racing
/// against other readers corrupted the adjacency build. Hammer a freshly
/// dirtied graph from many threads; under TSan this also proves the
/// double-checked guard publishes the finished DAG correctly.
TEST(PartitionGraph, ConcurrentDagReadersAfterDirty) {
  Fixture f = make_four_events();
  for (int round = 0; round < 50; ++round) {
    PartitionGraph pg(f.trace);
    for (int i = 0; i < 4; ++i)
      pg.add_partition({f.events[static_cast<std::size_t>(i)]}, false);
    pg.add_edge(0, 1);
    pg.add_edge(1, 2);
    pg.add_edge(2, 3);
    pg.finalize();  // leaves the DAG dirty — readers race to build it

    constexpr int kReaders = 8;
    std::atomic<int> ok{0};
    std::vector<std::thread> readers;
    readers.reserve(kReaders);
    for (int r = 0; r < kReaders; ++r) {
      readers.emplace_back([&pg, &ok] {
        const graph::Digraph& dag = pg.dag();
        if (dag.num_nodes() == 4 && dag.has_edge(0, 1) &&
            dag.has_edge(1, 2) && dag.has_edge(2, 3))
          ok.fetch_add(1, std::memory_order_relaxed);
      });
    }
    for (std::thread& th : readers) th.join();
    ASSERT_EQ(ok.load(), kReaders) << "round " << round;
  }
}

}  // namespace
}  // namespace logstruct::order
