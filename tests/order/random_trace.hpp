#pragma once

/// Randomized well-formed trace generator shared by the pipeline fuzz
/// tests and the causality property tests: random chares, placements,
/// serial blocks, fan-outs, untraced dependencies, and runtime chares.
/// Per-PE time is kept monotonic so blocks never overlap; receives
/// always follow their send.

#include <algorithm>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "trace/builder.hpp"
#include "util/rng.hpp"

namespace logstruct::order::testing {

inline trace::Trace random_trace(std::uint64_t seed) {
  util::Rng rng(seed);
  const std::int32_t num_procs = 2 + static_cast<std::int32_t>(rng.uniform(4));
  const std::int32_t num_chares =
      num_procs + static_cast<std::int32_t>(rng.uniform(12));
  const std::int32_t num_runtime = static_cast<std::int32_t>(rng.uniform(3));
  const std::int32_t rounds = 2 + static_cast<std::int32_t>(rng.uniform(6));

  trace::TraceBuilder tb;
  trace::ArrayId arr = tb.add_array("fuzz");
  std::vector<trace::ChareId> chares;
  std::vector<trace::ProcId> home;
  for (std::int32_t i = 0; i < num_chares; ++i) {
    trace::ProcId p = static_cast<trace::ProcId>(rng.uniform(
        static_cast<std::uint64_t>(num_procs)));
    chares.push_back(tb.add_chare("c" + std::to_string(i), arr, i, p));
    home.push_back(p);
  }
  for (std::int32_t i = 0; i < num_runtime; ++i) {
    trace::ProcId p = static_cast<trace::ProcId>(rng.uniform(
        static_cast<std::uint64_t>(num_procs)));
    chares.push_back(tb.add_chare("rt" + std::to_string(i), trace::kNone,
                                  -1, p, /*runtime=*/true));
    home.push_back(p);
  }
  std::vector<trace::EntryId> entries;
  for (int i = 0; i < 4; ++i)
    entries.push_back(
        tb.add_entry("e" + std::to_string(i), /*runtime=*/i == 3));

  std::vector<trace::TimeNs> proc_clock(
      static_cast<std::size_t>(num_procs), 0);
  // Sends whose receive is still owed: (send event, destination chare,
  // send time) — the receive must not precede the send.
  struct InFlight {
    trace::EventId send;
    std::size_t dst;
    trace::TimeNs sent_at;
  };
  std::vector<InFlight> in_flight;

  // Open a block on c's processor no earlier than `after`.
  auto open_block = [&](std::size_t c, trace::TimeNs after) {
    trace::ProcId p = home[c];
    trace::TimeNs t =
        std::max(proc_clock[static_cast<std::size_t>(p)], after) + 1 +
        static_cast<trace::TimeNs>(rng.uniform(500));
    trace::EntryId e = entries[rng.uniform(entries.size())];
    trace::BlockId b = tb.begin_block(chares[c], p, e, t);
    return std::pair{b, t};
  };

  for (std::int32_t round = 0; round < rounds; ++round) {
    // Deliver some owed receives.
    std::size_t deliver = in_flight.size() / 2 + rng.uniform(2);
    for (std::size_t k = 0; k < deliver && !in_flight.empty(); ++k) {
      std::size_t pick = rng.uniform(in_flight.size());
      auto [send_ev, dst, sent_at] = in_flight[pick];
      in_flight.erase(in_flight.begin() +
                      static_cast<std::ptrdiff_t>(pick));
      auto [b, t0] = open_block(dst, sent_at);
      tb.add_recv(b, t0, send_ev);
      trace::TimeNs end = t0 + 1 + static_cast<trace::TimeNs>(
                                       rng.uniform(300));
      // Maybe respond with sends from this block.
      std::size_t extra = rng.uniform(3);
      trace::TimeNs et = t0;
      for (std::size_t s = 0; s < extra; ++s) {
        et += 1 + static_cast<trace::TimeNs>(rng.uniform(100));
        trace::EventId ev = tb.add_send(b, et);
        std::size_t target = rng.uniform(chares.size());
        in_flight.push_back({ev, target, et});
      }
      end = std::max(end, et + 1);
      tb.end_block(b, end);
      proc_clock[static_cast<std::size_t>(home[dst])] = end;
    }
    // Spawn some fresh source blocks.
    std::size_t fresh = 1 + rng.uniform(3);
    for (std::size_t k = 0; k < fresh; ++k) {
      std::size_t src = rng.uniform(chares.size());
      auto [b, t0] = open_block(src, 0);
      trace::TimeNs et = t0;
      // Occasionally an untraced trigger (missing-dependency shape).
      if (rng.uniform(4) == 0) tb.add_recv(b, t0, trace::kNone);
      std::size_t sends = 1 + rng.uniform(3);
      for (std::size_t s = 0; s < sends; ++s) {
        et += 1 + static_cast<trace::TimeNs>(rng.uniform(100));
        trace::EventId ev = tb.add_send(b, et);
        std::size_t target = rng.uniform(chares.size());
        in_flight.push_back({ev, target, et});
      }
      tb.end_block(b, et + 1);
      proc_clock[static_cast<std::size_t>(home[src])] = et + 1;
    }
    // Occasional idle records.
    if (rng.uniform(2)) {
      trace::ProcId p = static_cast<trace::ProcId>(
          rng.uniform(static_cast<std::uint64_t>(num_procs)));
      trace::TimeNs t0 = proc_clock[static_cast<std::size_t>(p)];
      trace::TimeNs len = 1 + static_cast<trace::TimeNs>(rng.uniform(400));
      tb.add_idle(p, t0, t0 + len);
      proc_clock[static_cast<std::size_t>(p)] = t0 + len;
    }
  }
  // Drain every in-flight message so all sends are matched.
  while (!in_flight.empty()) {
    auto [send_ev, dst, sent_at] = in_flight.back();
    in_flight.pop_back();
    auto [b, t0] = open_block(dst, sent_at);
    tb.add_recv(b, t0, send_ev);
    tb.end_block(b, t0 + 1);
    proc_clock[static_cast<std::size_t>(home[dst])] = t0 + 1;
  }
  return tb.finish(num_procs);
}

}  // namespace logstruct::order::testing
