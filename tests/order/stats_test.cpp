#include "order/stats.hpp"

#include <gtest/gtest.h>

#include "apps/jacobi2d.hpp"
#include "apps/lulesh.hpp"
#include "order/stepping.hpp"

namespace logstruct::order {
namespace {

LogicalStructure jacobi_structure(trace::Trace& t) {
  apps::Jacobi2DConfig cfg;
  cfg.chares_x = 4;
  cfg.chares_y = 4;
  cfg.num_pes = 4;
  cfg.iterations = 2;
  t = apps::run_jacobi2d(cfg);
  return extract_structure(t, Options::charm());
}

TEST(Stats, BasicCountsConsistent) {
  trace::Trace t;
  LogicalStructure ls = jacobi_structure(t);
  StructureStats s = compute_stats(t, ls);
  EXPECT_EQ(s.num_phases, ls.num_phases());
  EXPECT_EQ(s.app_phases + s.runtime_phases, s.num_phases);
  EXPECT_EQ(s.width, ls.max_step + 1);
  EXPECT_EQ(s.chare_step_violations, 0);
  EXPECT_GT(s.avg_occupancy, 1.0);
  EXPECT_GT(s.merges, 0);
  EXPECT_GT(s.initial_partitions, s.num_phases);
}

TEST(Stats, PhaseTableSortedByOffset) {
  trace::Trace t;
  LogicalStructure ls = jacobi_structure(t);
  auto rows = phase_table(t, ls);
  ASSERT_EQ(rows.size(), static_cast<std::size_t>(ls.num_phases()));
  std::int64_t total_events = 0;
  for (std::size_t i = 0; i < rows.size(); ++i) {
    total_events += rows[i].events;
    if (i > 0) {
      EXPECT_GE(rows[i].offset, rows[i - 1].offset);
    }
    EXPECT_GE(rows[i].chares, 1);
    EXPECT_GE(rows[i].height, 0);
  }
  EXPECT_EQ(total_events, t.num_events());
}

TEST(Stats, StepOverlapSelfIsFull) {
  trace::Trace t;
  LogicalStructure ls = jacobi_structure(t);
  for (std::int32_t p = 0; p < ls.num_phases(); ++p)
    EXPECT_DOUBLE_EQ(step_overlap(ls, p, p), 1.0);
}

TEST(Stats, StepOverlapDisjointForChainedPhases) {
  trace::Trace t;
  LogicalStructure ls = jacobi_structure(t);
  for (auto [u, v] : ls.phases.dag.edges()) {
    EXPECT_DOUBLE_EQ(step_overlap(ls, u, v), 0.0);
    EXPECT_DOUBLE_EQ(step_overlap(ls, v, u), 0.0);
  }
}

TEST(Stats, CompactnessIsOneForTightPhases) {
  trace::Trace t;
  LogicalStructure ls = jacobi_structure(t);
  for (std::int32_t p = 0; p < ls.num_phases(); ++p) {
    double c = phase_compactness(t, ls, p);
    EXPECT_GT(c, 0.0);
    EXPECT_LE(c, 1.0);
  }
}

TEST(Stats, AblationHasMorePhases) {
  apps::LuleshConfig cfg;
  cfg.iterations = 3;
  trace::Trace t = apps::run_lulesh_charm(cfg);
  StructureStats full =
      compute_stats(t, extract_structure(t, Options::charm()));
  StructureStats ablated = compute_stats(
      t, extract_structure(t, Options::charm_no_inference()));
  EXPECT_GT(ablated.num_phases, full.num_phases);
  EXPECT_GE(ablated.width, full.width);
}

}  // namespace
}  // namespace logstruct::order
