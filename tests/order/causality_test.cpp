/// The vector-clock causality engine, property-tested against brute
/// force: HbClock unit semantics, CausalityOracle vs an O(V*E)
/// transitive closure on small and randomized traces (including tiny
/// clock budgets that force the saturation fallback), a 64-seed sweep
/// asserting every recovered structure is causality-clean at 1 and 4
/// threads, a deliberately-broken mutant pass caught with precise
/// diagnostics, and determinism of the concurrency metric.

#include <gtest/gtest.h>

#include <algorithm>
#include <utility>
#include <vector>

#include "metrics/concurrency.hpp"
#include "metrics/windows.hpp"
#include "order/causality.hpp"
#include "order/context.hpp"
#include "order/pass_manager.hpp"
#include "order/stepping.hpp"
#include "order_fixtures.hpp"
#include "random_trace.hpp"
#include "trace/diagnostics.hpp"
#include "trace/validate.hpp"

namespace logstruct::order {
namespace {

// --- HbClock unit semantics ---------------------------------------------

TEST(HbClock, RaiseAndCovers) {
  HbClock c;
  EXPECT_FALSE(c.covers(0, 0));
  c.raise(3, 5);  // chain 3 covered through positions [0, 5)
  EXPECT_TRUE(c.covers(3, 0));
  EXPECT_TRUE(c.covers(3, 4));
  EXPECT_FALSE(c.covers(3, 5));
  EXPECT_FALSE(c.covers(2, 0));
  c.raise(3, 2);  // raise never lowers
  EXPECT_TRUE(c.covers(3, 4));
  EXPECT_EQ(c.covered_len(3), 5);
  EXPECT_EQ(c.num_entries(), 1);
}

TEST(HbClock, MergeIsSortedUnionWithMax) {
  HbClock a;
  a.raise(1, 4);
  a.raise(5, 2);
  HbClock b;
  b.raise(1, 2);
  b.raise(3, 7);
  a.merge(b);
  EXPECT_EQ(a.num_entries(), 3);
  EXPECT_EQ(a.covered_len(1), 4);  // max(4, 2)
  EXPECT_EQ(a.covered_len(3), 7);
  EXPECT_EQ(a.covered_len(5), 2);
}

TEST(HbClock, SaturationPropagatesThroughMerge) {
  HbClock a;
  a.raise(1, 1);
  HbClock sat;
  sat.saturate();
  EXPECT_TRUE(sat.saturated());
  EXPECT_EQ(sat.num_entries(), 0);
  a.merge(sat);
  EXPECT_TRUE(a.saturated());
  EXPECT_EQ(a.num_entries(), 0);
}

// --- Brute-force oracle --------------------------------------------------

/// Ground truth: BFS transitive closure over the generating HB edges
/// (consecutive intra-block pairs + dependency rows). O(V * E) — only
/// for small traces.
class BruteForceHb {
 public:
  explicit BruteForceHb(const trace::Trace& t) {
    n_ = t.num_events();
    std::vector<std::vector<trace::EventId>> succ(
        static_cast<std::size_t>(n_));
    for (trace::BlockId b = 0; b < t.num_blocks(); ++b) {
      trace::EventId prev = trace::kNone;
      for (trace::EventId e : t.events_of_block(b)) {
        if (prev != trace::kNone)
          succ[static_cast<std::size_t>(prev)].push_back(e);
        prev = e;
      }
    }
    t.for_each_dependency([&](trace::EventId s, trace::EventId r) {
      if (s != r) succ[static_cast<std::size_t>(s)].push_back(r);
    });
    reach_.assign(static_cast<std::size_t>(n_) *
                      static_cast<std::size_t>(n_),
                  false);
    std::vector<trace::EventId> stack;
    for (trace::EventId a = 0; a < n_; ++a) {
      stack.assign(succ[static_cast<std::size_t>(a)].begin(),
                   succ[static_cast<std::size_t>(a)].end());
      while (!stack.empty()) {
        const trace::EventId x = stack.back();
        stack.pop_back();
        auto idx = static_cast<std::size_t>(a) *
                       static_cast<std::size_t>(n_) +
                   static_cast<std::size_t>(x);
        if (reach_[idx]) continue;
        reach_[idx] = true;
        for (trace::EventId y : succ[static_cast<std::size_t>(x)])
          stack.push_back(y);
      }
    }
  }

  [[nodiscard]] bool hb(trace::EventId a, trace::EventId b) const {
    if (a == b) return false;
    return reach_[static_cast<std::size_t>(a) *
                      static_cast<std::size_t>(n_) +
                  static_cast<std::size_t>(b)];
  }

 private:
  std::int32_t n_ = 0;
  std::vector<bool> reach_;
};

void expect_oracle_matches_brute_force(const trace::Trace& t,
                                       const CausalityOptions& opts,
                                       const char* label) {
  const BruteForceHb truth(t);
  const CausalityOracle oracle(t, opts);
  ASSERT_EQ(oracle.num_events(), t.num_events());
  for (trace::EventId a = 0; a < t.num_events(); ++a) {
    for (trace::EventId b = 0; b < t.num_events(); ++b) {
      ASSERT_EQ(oracle.hb(a, b), truth.hb(a, b))
          << label << ": hb(" << a << ", " << b << ") budget "
          << opts.max_clock_entries;
    }
  }
}

TEST(CausalityOracle, MatchesBruteForceOnRing) {
  trace::Trace t = testing::make_ring_trace(4).trace;
  expect_oracle_matches_brute_force(t, {}, "ring default");
  // A 1-entry budget saturates nearly every clock: every query now runs
  // through the level-pruned fallback walk and must still be exact.
  CausalityOptions tiny;
  tiny.max_clock_entries = 1;
  expect_oracle_matches_brute_force(t, tiny, "ring saturated");
}

TEST(CausalityOracle, LevelIsNecessaryForHb) {
  trace::Trace t = testing::make_ring_trace(6).trace;
  const CausalityOracle oracle(t);
  EXPECT_GE(oracle.max_level(), 2);
  for (trace::EventId a = 0; a < t.num_events(); ++a)
    for (trace::EventId b = 0; b < t.num_events(); ++b)
      if (oracle.hb(a, b)) {
        EXPECT_LT(oracle.level(a), oracle.level(b));
      }
}

TEST(CausalityOracle, HbIsIrreflexiveAndAntisymmetric) {
  trace::Trace t = testing::random_trace(7);
  const CausalityOracle oracle(t);
  for (trace::EventId a = 0; a < t.num_events(); ++a) {
    EXPECT_FALSE(oracle.hb(a, a));
    EXPECT_FALSE(oracle.concurrent(a, a));
    for (trace::EventId b = a + 1; b < t.num_events(); ++b) {
      EXPECT_FALSE(oracle.hb(a, b) && oracle.hb(b, a))
          << "cycle " << a << " <-> " << b;
      EXPECT_EQ(oracle.concurrent(a, b), oracle.concurrent(b, a));
    }
  }
}

class CausalitySeeds : public ::testing::TestWithParam<std::uint64_t> {};

/// Oracle-vs-brute-force agreement on randomized traces, at the default
/// budget, at a saturating budget of 2, and with a 4-thread build (the
/// clock tables must be bit-identical, so queries must agree too).
TEST_P(CausalitySeeds, OracleMatchesBruteForce) {
  trace::Trace t = testing::random_trace(GetParam());
  ASSERT_TRUE(trace::validate(t).empty());
  expect_oracle_matches_brute_force(t, {}, "random default");
  CausalityOptions tiny;
  tiny.max_clock_entries = 2;
  expect_oracle_matches_brute_force(t, tiny, "random saturated");
  CausalityOptions threaded;
  threaded.threads = 4;
  expect_oracle_matches_brute_force(t, threaded, "random threaded");
}

/// No pass output violates happened-before: every option set, at 1 and 4
/// threads, over the full seed sweep. This is the oracle acting as the
/// second ground truth next to the golden hashes.
TEST_P(CausalitySeeds, RecoveredStructureIsCausalityClean) {
  trace::Trace t = testing::random_trace(GetParam());
  const CausalityOracle oracle(t);
  for (const Options& base :
       {Options::charm(), Options::charm_no_reorder(), Options::mpi()}) {
    for (int threads : {1, 4}) {
      testing::ScopedDefaultParallelism scope(threads);
      Options opts = base;
      opts.threads = threads;
      LogicalStructure ls = extract_structure(t, opts);
      CausalityReport report = check_causality(t, ls, oracle);
      EXPECT_TRUE(report.clean())
          << "seed " << GetParam() << " threads " << threads << ": "
          << report.total_violations << " violations, first: "
          << (report.violations.empty()
                  ? "<none stored>"
                  : report.violations.front().detail);
      EXPECT_GT(report.edges_checked, 0);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(ManySeeds, CausalitySeeds,
                         ::testing::Range<std::uint64_t>(1, 65));

// --- Thread-count determinism of the clock tables ------------------------

TEST(CausalityOracle, ClockTablesBitIdenticalAcrossThreads) {
  trace::Trace t = testing::random_trace(11);
  CausalityOptions serial_opts;
  serial_opts.threads = 1;
  const CausalityOracle serial(t, serial_opts);
  for (int threads : {2, 4, 16}) {
    CausalityOptions opts;
    opts.threads = threads;
    const CausalityOracle parallel(t, opts);
    ASSERT_EQ(parallel.num_events(), serial.num_events());
    EXPECT_EQ(parallel.saturated_events(), serial.saturated_events());
    EXPECT_EQ(parallel.total_clock_entries(),
              serial.total_clock_entries());
    for (trace::EventId e = 0; e < t.num_events(); ++e) {
      EXPECT_EQ(parallel.level(e), serial.level(e)) << e;
      const HbClock& a = serial.clock(e);
      const HbClock& b = parallel.clock(e);
      ASSERT_EQ(a.num_entries(), b.num_entries()) << e;
      ASSERT_EQ(a.saturated(), b.saturated()) << e;
      for (std::int32_t c = 0; c < a.num_entries(); ++c) {
        const auto cz = static_cast<std::size_t>(c);
        EXPECT_EQ(a.entries()[cz].chain, b.entries()[cz].chain) << e;
        EXPECT_EQ(a.entries()[cz].len, b.entries()[cz].len) << e;
      }
    }
  }
}

// --- The mutant pass -----------------------------------------------------

/// Pick a dependency row the oracle certifies (both endpoints in
/// non-degraded phases) — the edge the mutant will break.
std::pair<trace::EventId, trace::EventId> certified_dep_edge(
    const trace::Trace& t, const LogicalStructure& ls,
    const CausalityOracle& oracle) {
  std::pair<trace::EventId, trace::EventId> picked{trace::kNone,
                                                   trace::kNone};
  t.for_each_dependency([&](trace::EventId s, trace::EventId r) {
    if (picked.first != trace::kNone) return;
    if (s == r || !oracle.hb(s, r)) return;
    const std::int32_t ps =
        ls.phases.phase_of_event[static_cast<std::size_t>(s)];
    const std::int32_t pr =
        ls.phases.phase_of_event[static_cast<std::size_t>(r)];
    if (ls.phases.is_degraded(ps) || ls.phases.is_degraded(pr)) return;
    picked = {s, r};
  });
  return picked;
}

/// A broken pass that swaps the steps of two causally-ordered events
/// must be caught by check_causality with the exact event pair.
TEST(CausalityMutant, SwappedStepsReportedWithProvenance) {
  trace::Trace t = testing::make_ring_trace(4).trace;
  LogicalStructure ls = extract_structure(t, Options::charm());
  const CausalityOracle oracle(t);
  ASSERT_TRUE(check_causality(t, ls, oracle).clean());

  auto [a, b] = certified_dep_edge(t, ls, oracle);
  ASSERT_NE(a, trace::kNone);
  std::swap(ls.global_step[static_cast<std::size_t>(a)],
            ls.global_step[static_cast<std::size_t>(b)]);

  CausalityReport report = check_causality(t, ls, oracle);
  EXPECT_FALSE(report.clean());
  bool found = false;
  for (const CausalityViolation& v : report.violations) {
    if (v.kind == CausalityViolation::Kind::StepOrder && v.a == a &&
        v.b == b)
      found = true;
  }
  EXPECT_TRUE(found) << "expected a step_order violation naming events "
                     << a << " -> " << b;

  // The structured mirror: every violation lands as a
  // causality_violation diagnostic, counts exact past the storage cap.
  trace::RecoveryReport rr;
  report.to_diagnostics(rr);
  EXPECT_EQ(rr.total(), report.total_violations);
  EXPECT_EQ(rr.worst(), trace::Severity::Error);
  ASSERT_FALSE(rr.diagnostics().empty());
  EXPECT_EQ(rr.diagnostics().front().code,
            trace::DiagCode::CausalityViolation);
}

/// Same mutant wired as a real pipeline pass: the check_causality pass
/// registered behind it must abort with the violation's provenance.
TEST(CausalityMutant, MutantPassDiesUnderCheckCausalityPass) {
  ::testing::GTEST_FLAG(death_test_style) = "threadsafe";
  trace::Trace t = testing::make_ring_trace(4).trace;
  OrderContext ctx(t, Options::charm());
  ctx.structure = extract_structure(t, Options::charm());
  const CausalityOracle oracle(t);
  auto [a, b] = certified_dep_edge(t, ctx.structure, oracle);
  ASSERT_NE(a, trace::kNone);

  PassManager pm;
  pm.add({.name = "mutant_swap_steps", .run = [&](OrderContext& c) {
            std::swap(c.structure.global_step[static_cast<std::size_t>(a)],
                      c.structure.global_step[static_cast<std::size_t>(b)]);
          }});
  pm.add({.name = "check_causality", .run = check_causality_pass});
  EXPECT_DEATH(pm.run(ctx), "causality violated");
}

// --- Concurrency metric --------------------------------------------------

TEST(ConcurrencyReport, DeterministicAcrossThreadsAndInternallyConsistent) {
  trace::Trace t = testing::random_trace(23);
  LogicalStructure ls = extract_structure(t, Options::charm());
  const metrics::WindowSet phase_windows =
      metrics::WindowSet::phases(t, ls.phases);
  const metrics::WindowSet bin_windows = metrics::WindowSet::time_bins(t, 6);

  for (const metrics::WindowSet* ws : {&bin_windows, &phase_windows}) {
    const metrics::ConcurrencyReport serial =
        metrics::concurrency_report(t, ls, *ws, 1);
    const metrics::ConcurrencyReport parallel =
        metrics::concurrency_report(t, ls, *ws, 4);
    EXPECT_EQ(serial.phase_pairs_unordered, parallel.phase_pairs_unordered);
    EXPECT_EQ(serial.phase_pairs_commuting, parallel.phase_pairs_commuting);
    ASSERT_EQ(serial.per_window.size(), parallel.per_window.size());
    for (std::size_t i = 0; i < serial.per_window.size(); ++i) {
      EXPECT_EQ(serial.per_window[i].phases_active,
                parallel.per_window[i].phases_active);
      EXPECT_EQ(serial.per_window[i].unordered_pairs,
                parallel.per_window[i].unordered_pairs);
      EXPECT_EQ(serial.per_window[i].commuting_pairs,
                parallel.per_window[i].commuting_pairs);
    }
    EXPECT_LE(serial.phase_pairs_commuting, serial.phase_pairs_unordered);
    EXPECT_LE(serial.phase_pairs_unordered, serial.phase_pairs_total);
  }

  // Each unordered pair contributes to both endpoints' degrees, so the
  // phase-window degree sum is exactly twice the census.
  const metrics::ConcurrencyReport by_phase =
      metrics::concurrency_report(t, ls, phase_windows, 1);
  std::int64_t degree_sum = 0;
  for (const metrics::WindowConcurrency& wc : by_phase.per_window)
    degree_sum += wc.unordered_pairs;
  EXPECT_EQ(degree_sum, 2 * by_phase.phase_pairs_unordered);
}

TEST(ConcurrencyReport, JsonCarriesSchemaAndCensus) {
  trace::Trace t = testing::make_ring_trace(4).trace;
  LogicalStructure ls = extract_structure(t, Options::charm());
  const metrics::WindowSet ws = metrics::WindowSet::phases(t, ls.phases);
  const metrics::ConcurrencyReport rep =
      metrics::concurrency_report(t, ls, ws, 1);
  const std::string doc =
      metrics::concurrency_report_json(t, "test", {&rep, 1});
  EXPECT_NE(doc.find("\"logstruct-concurrency/v1\""), std::string::npos);
  EXPECT_NE(doc.find("\"pairs_unordered\""), std::string::npos);
  EXPECT_NE(doc.find("\"commuting_pairs\""), std::string::npos);
}

}  // namespace
}  // namespace logstruct::order
