/// Cross-backend golden-structure matrix for the storage refactor.
///
/// Every golden workload (tests/order/golden_fixtures.hpp) must extract
/// to the recorded structure hash when its trace is frozen on the
/// blocked out-of-core backend — under a starved cache (constant
/// eviction) and an unbounded one, serial and threaded — and the
/// backend-independent trace_structure_hash must match the mem backend
/// bit-for-bit. This is the "no silent divergence" gate for the .lsblk
/// store: any dependency-row reordering, CSR off-by-one, or cache
/// corruption shows up as a hash mismatch on some cell of the matrix.

#include <gtest/gtest.h>

#include <cstdint>

#include "order/validate.hpp"
#include "trace/storage/blocked_trace.hpp"
#include "trace/storage/options.hpp"
#include "golden_fixtures.hpp"

namespace logstruct::order {
namespace {

using golden::Golden;
using golden::kGoldens;
using golden::ScopedDefaultParallelism;
using golden::structure_hash;
using trace::storage::BackendKind;
using trace::storage::ScopedStorageOptions;
using trace::storage::StorageOptions;

TEST(StorageGolden, BlockedBackendMatrixBitIdentical) {
  for (const Golden& g : kGoldens) {
    // Mem-backend reference for the backend-independent trace hash.
    // Pinned explicitly so a process-wide LOGSTRUCT_STORAGE=blocked
    // (the blocked-storage CI job) can't turn the baseline blocked.
    std::uint64_t mem_trace_hash = 0;
    {
      StorageOptions mem_opts;
      mem_opts.kind = BackendKind::Mem;
      ScopedStorageOptions mscope(mem_opts);
      trace::Trace t = g.make();
      ASSERT_EQ(t.storage_backend(), BackendKind::Mem) << g.name;
      mem_trace_hash = trace::storage::trace_structure_hash(t);
      LogicalStructure ls = extract_structure(t, g.opts());
      ASSERT_EQ(structure_hash(t, ls), g.expected) << g.name << " (mem)";
    }
    for (std::uint64_t cache_bytes : {1ull << 20, 0ull}) {
      for (int threads : {1, 4}) {
        StorageOptions opts;
        opts.kind = BackendKind::Blocked;
        opts.cache_bytes = cache_bytes;
        opts.block_bytes = 64 << 10;  // small blocks: more boundaries
        ScopedStorageOptions sscope(opts);
        ScopedDefaultParallelism pscope(threads);
        trace::Trace t = g.make();
        ASSERT_EQ(t.storage_backend(), BackendKind::Blocked) << g.name;
        EXPECT_EQ(trace::storage::trace_structure_hash(t), mem_trace_hash)
            << g.name << " trace hash diverges at cache=" << cache_bytes
            << " threads=" << threads;
        Options eopts = g.opts();
        eopts.threads = threads;
        LogicalStructure ls = extract_structure(t, eopts);
        EXPECT_TRUE(validate_structure(t, ls).empty()) << g.name;
        EXPECT_EQ(structure_hash(t, ls), g.expected)
            << g.name << " structure diverges at cache=" << cache_bytes
            << " threads=" << threads;
      }
    }
  }
}

}  // namespace
}  // namespace logstruct::order
