#include "order/phases.hpp"

#include <gtest/gtest.h>

#include <set>

#include "order_fixtures.hpp"
#include "trace/builder.hpp"

namespace logstruct::order {
namespace {

// --- The paper's Figure 3 walkthrough -------------------------------------

TEST(Phases, RingCollapsesToOnePhase) {
  // Each chare invokes its neighbor; the dependency merge creates a cycle
  // in the partition graph, and the cycle merge folds it into one phase.
  auto ring = testing::make_ring_trace(4);
  PhaseResult phases = find_phases(ring.trace, PartitionOptions{});
  EXPECT_EQ(phases.num_phases(), 1);
  EXPECT_EQ(phases.events[0].size(),
            static_cast<std::size_t>(ring.trace.num_events()));
  EXPECT_FALSE(phases.runtime[0]);
}

TEST(Phases, RingOfAnySizeCollapses) {
  for (int n : {2, 3, 8, 17}) {
    auto ring = testing::make_ring_trace(n);
    PhaseResult phases = find_phases(ring.trace, PartitionOptions{});
    EXPECT_EQ(phases.num_phases(), 1) << "ring size " << n;
  }
}

// --- dependency merge across one message ----------------------------------

TEST(Phases, MatchingEndsShareAPhase) {
  trace::TraceBuilder tb;
  trace::ChareId a = tb.add_chare("a");
  trace::ChareId b = tb.add_chare("b");
  trace::EntryId e = tb.add_entry("go");
  trace::BlockId ba = tb.begin_block(a, 0, e, 0);
  trace::EventId s = tb.add_send(ba, 10);
  tb.end_block(ba, 20);
  trace::BlockId bb = tb.begin_block(b, 1, e, 100);
  tb.add_recv(bb, 100, s);
  tb.end_block(bb, 120);
  trace::Trace t = tb.finish(2);

  PhaseResult phases = find_phases(t, PartitionOptions{});
  EXPECT_EQ(phases.num_phases(), 1);
}

// --- application / runtime separation --------------------------------------

/// One app chare sends to another app chare AND to a runtime chare from
/// the same serial block. The app-app dependency and the app-runtime
/// dependency must end in different phases.
TEST(Phases, AppAndRuntimePhasesSeparate) {
  trace::TraceBuilder tb;
  trace::ChareId a = tb.add_chare("a");
  trace::ChareId b = tb.add_chare("b");
  trace::ChareId r = tb.add_chare("mgr", trace::kNone, -1, 0, true);
  trace::EntryId e = tb.add_entry("go");
  trace::EntryId er = tb.add_entry("reduce", true);

  trace::BlockId ba = tb.begin_block(a, 0, e, 0);
  trace::EventId s_app = tb.add_send(ba, 10);
  trace::EventId s_rt = tb.add_send(ba, 20);
  tb.end_block(ba, 30);
  trace::BlockId bb = tb.begin_block(b, 1, e, 100);
  tb.add_recv(bb, 100, s_app);
  tb.end_block(bb, 110);
  trace::BlockId br = tb.begin_block(r, 0, er, 200);
  tb.add_recv(br, 200, s_rt);
  tb.end_block(br, 210);
  trace::Trace t = tb.finish(2);

  PhaseResult phases = find_phases(t, PartitionOptions{});
  ASSERT_EQ(phases.num_phases(), 2);
  std::int32_t app_phase = phases.phase_of_event[static_cast<std::size_t>(
      s_app)];
  std::int32_t rt_phase =
      phases.phase_of_event[static_cast<std::size_t>(s_rt)];
  EXPECT_NE(app_phase, rt_phase);
  EXPECT_FALSE(phases.runtime[static_cast<std::size_t>(app_phase)]);
  EXPECT_TRUE(phases.runtime[static_cast<std::size_t>(rt_phase)]);
}

TEST(Phases, NoSplitOptionMergesAppAndRuntime) {
  trace::TraceBuilder tb;
  trace::ChareId a = tb.add_chare("a");
  trace::ChareId r = tb.add_chare("mgr", trace::kNone, -1, 0, true);
  trace::EntryId e = tb.add_entry("go");
  trace::EntryId er = tb.add_entry("reduce", true);
  trace::BlockId ba = tb.begin_block(a, 0, e, 0);
  trace::EventId s1 = tb.add_send(ba, 10);  // to runtime
  trace::EventId s2 = tb.add_send(ba, 20);  // dangling app send
  tb.end_block(ba, 30);
  trace::BlockId br = tb.begin_block(r, 0, er, 100);
  tb.add_recv(br, 100, s1);
  tb.end_block(br, 110);
  trace::Trace t = tb.finish(1);
  (void)s2;

  PartitionOptions no_split;
  no_split.split_app_runtime = false;
  PhaseResult phases = find_phases(t, no_split);
  // Without the boundary split the serial block stays whole.
  EXPECT_EQ(phases.phase_of_event[static_cast<std::size_t>(s1)],
            phases.phase_of_event[static_cast<std::size_t>(s2)]);
}

// --- leap property / inferred ordering --------------------------------------

/// Two unrelated rounds of messaging between disjoint chare pairs, clearly
/// ordered in time per chare. With no recorded dependency between rounds,
/// source-order inference must order round 1 before round 2 per chare.
TEST(Phases, SourceOrderInferenceSequencesRounds) {
  trace::TraceBuilder tb;
  trace::ChareId a = tb.add_chare("a");
  trace::ChareId b = tb.add_chare("b");
  trace::EntryId e = tb.add_entry("go");

  // Round 1: a -> b.
  trace::BlockId ba1 = tb.begin_block(a, 0, e, 0);
  trace::EventId s1 = tb.add_send(ba1, 10);
  tb.end_block(ba1, 20);
  trace::BlockId bb1 = tb.begin_block(b, 1, e, 100);
  tb.add_recv(bb1, 100, s1);
  tb.end_block(bb1, 110);
  // Round 2: a -> b again, later, from a fresh serial block.
  trace::BlockId ba2 = tb.begin_block(a, 0, e, 500);
  trace::EventId s2 = tb.add_send(ba2, 510);
  tb.end_block(ba2, 520);
  trace::BlockId bb2 = tb.begin_block(b, 1, e, 600);
  tb.add_recv(bb2, 600, s2);
  tb.end_block(bb2, 610);
  trace::Trace t = tb.finish(2);

  PhaseResult phases = find_phases(t, PartitionOptions{});
  ASSERT_EQ(phases.num_phases(), 2);
  std::int32_t p1 = phases.phase_of_event[static_cast<std::size_t>(s1)];
  std::int32_t p2 = phases.phase_of_event[static_cast<std::size_t>(s2)];
  ASSERT_NE(p1, p2);
  EXPECT_TRUE(phases.dag.has_edge(p1, p2));
  EXPECT_LT(phases.leap[static_cast<std::size_t>(p1)],
            phases.leap[static_cast<std::size_t>(p2)]);
}

/// Same two rounds, but with inference disabled and leap merging on: the
/// overlapping-chare partitions at the same leap merge into one phase.
TEST(Phases, LeapMergeCombinesUnorderableRounds) {
  trace::TraceBuilder tb;
  trace::ChareId a = tb.add_chare("a");
  trace::ChareId b = tb.add_chare("b");
  trace::EntryId e = tb.add_entry("go");
  trace::BlockId ba1 = tb.begin_block(a, 0, e, 0);
  trace::EventId s1 = tb.add_send(ba1, 10);
  tb.end_block(ba1, 20);
  trace::BlockId bb1 = tb.begin_block(b, 1, e, 100);
  tb.add_recv(bb1, 100, s1);
  tb.end_block(bb1, 110);
  trace::BlockId ba2 = tb.begin_block(a, 0, e, 500);
  trace::EventId s2 = tb.add_send(ba2, 510);
  tb.end_block(ba2, 520);
  trace::BlockId bb2 = tb.begin_block(b, 1, e, 600);
  tb.add_recv(bb2, 600, s2);
  tb.end_block(bb2, 610);
  trace::Trace t = tb.finish(2);

  PartitionOptions opts;
  opts.infer_source_order = false;  // no Alg 3
  PhaseResult phases = find_phases(t, opts);
  EXPECT_EQ(phases.num_phases(), 1);
  EXPECT_EQ(phases.phase_of_event[static_cast<std::size_t>(s1)],
            phases.phase_of_event[static_cast<std::size_t>(s2)]);
}

/// Fig. 17 ablation: no inference AND no leap merge. The rounds stay
/// separate but are forced into sequence by physical-time edges.
TEST(Phases, AblationForcesSequenceWithoutMerging) {
  trace::TraceBuilder tb;
  trace::ChareId a = tb.add_chare("a");
  trace::ChareId b = tb.add_chare("b");
  trace::EntryId e = tb.add_entry("go");
  trace::BlockId ba1 = tb.begin_block(a, 0, e, 0);
  trace::EventId s1 = tb.add_send(ba1, 10);
  tb.end_block(ba1, 20);
  trace::BlockId bb1 = tb.begin_block(b, 1, e, 100);
  tb.add_recv(bb1, 100, s1);
  tb.end_block(bb1, 110);
  trace::BlockId ba2 = tb.begin_block(a, 0, e, 500);
  trace::EventId s2 = tb.add_send(ba2, 510);
  tb.end_block(ba2, 520);
  trace::BlockId bb2 = tb.begin_block(b, 1, e, 600);
  tb.add_recv(bb2, 600, s2);
  tb.end_block(bb2, 610);
  trace::Trace t = tb.finish(2);

  PartitionOptions opts;
  opts.infer_source_order = false;
  opts.leap_merge = false;
  PhaseResult phases = find_phases(t, opts);
  ASSERT_EQ(phases.num_phases(), 2);
  std::int32_t p1 = phases.phase_of_event[static_cast<std::size_t>(s1)];
  std::int32_t p2 = phases.phase_of_event[static_cast<std::size_t>(s2)];
  EXPECT_NE(phases.leap[static_cast<std::size_t>(p1)],
            phases.leap[static_cast<std::size_t>(p2)]);
}

// --- collectives -------------------------------------------------------------

TEST(Phases, CollectiveFormsOnePhase) {
  trace::TraceBuilder tb;
  trace::EntryId e = tb.add_entry("MPI_Allreduce");
  trace::CollectiveId coll = tb.begin_collective();
  for (int r = 0; r < 4; ++r) {
    trace::ChareId c = tb.add_chare("rank" + std::to_string(r));
    trace::BlockId b = tb.begin_block(c, r, e, r * 10);
    tb.add_collective_send(coll, b, r * 10);
    tb.add_collective_recv(coll, b, 1000);
    tb.end_block(b, 1000);
  }
  trace::Trace t = tb.finish(4);
  PhaseResult phases = find_phases(t, PartitionOptions{});
  EXPECT_EQ(phases.num_phases(), 1);
}

// --- statistics fields --------------------------------------------------------

TEST(Phases, PipelineStatsPopulated) {
  auto ring = testing::make_ring_trace(6);
  PhaseResult phases = find_phases(ring.trace, PartitionOptions{});
  EXPECT_GT(phases.initial_partitions, 1);
  EXPECT_GT(phases.merges, 0);
}

TEST(Phases, PhaseIdsOrderedByLeap) {
  trace::TraceBuilder tb;
  trace::ChareId a = tb.add_chare("a");
  trace::ChareId b = tb.add_chare("b");
  trace::EntryId e = tb.add_entry("go");
  trace::BlockId ba1 = tb.begin_block(a, 0, e, 0);
  trace::EventId s1 = tb.add_send(ba1, 10);
  tb.end_block(ba1, 20);
  trace::BlockId bb1 = tb.begin_block(b, 1, e, 100);
  tb.add_recv(bb1, 100, s1);
  tb.end_block(bb1, 110);
  trace::BlockId ba2 = tb.begin_block(a, 0, e, 500);
  trace::EventId s2 = tb.add_send(ba2, 510);
  tb.end_block(ba2, 520);
  trace::BlockId bb2 = tb.begin_block(b, 1, e, 600);
  tb.add_recv(bb2, 600, s2);
  tb.end_block(bb2, 610);
  trace::Trace t = tb.finish(2);

  PhaseResult phases = find_phases(t, PartitionOptions{});
  ASSERT_EQ(phases.num_phases(), 2);
  EXPECT_LE(phases.leap[0], phases.leap[1]);
  EXPECT_EQ(phases.phase_of_event[static_cast<std::size_t>(s1)], 0);
}

}  // namespace
}  // namespace logstruct::order
