#include "order/infer.hpp"

#include <gtest/gtest.h>

#include "apps/jacobi2d.hpp"
#include "apps/lulesh.hpp"
#include "apps/pdes.hpp"
#include "order/initial.hpp"
#include "order/merges.hpp"
#include "trace/builder.hpp"

namespace logstruct::order {
namespace {

/// Run the pipeline manually so the partition graph stays inspectable.
PartitionGraph run_pipeline(const trace::Trace& t,
                            const PartitionOptions& opts) {
  PartitionGraph pg = build_initial_partitions(t, opts);
  pg.cycle_merge();
  dependency_merge(pg);
  if (opts.repair_serial_blocks) repair_merge(pg, opts);
  if (opts.neighbor_serial_merge && opts.sdag_inference)
    neighbor_serial_merge(pg, opts);
  if (opts.infer_source_order) infer_source_order(pg);
  enforce_leap_property(pg, opts);
  enforce_chare_paths(pg);
  return pg;
}

TEST(Infer, PropertiesHoldOnJacobi) {
  apps::Jacobi2DConfig cfg;
  cfg.chares_x = 4;
  cfg.chares_y = 4;
  cfg.num_pes = 4;
  cfg.iterations = 3;
  trace::Trace t = apps::run_jacobi2d(cfg);
  PartitionGraph pg = run_pipeline(t, PartitionOptions{});
  EXPECT_TRUE(check_leap_property(pg));
  EXPECT_TRUE(check_chare_paths(pg));
}

TEST(Infer, PropertiesHoldOnLuleshAllOptionSets) {
  apps::LuleshConfig cfg;
  cfg.iterations = 3;
  trace::Trace t = apps::run_lulesh_charm(cfg);
  for (PartitionOptions opts :
       {Options::charm().partition, Options::charm_no_inference().partition}) {
    PartitionGraph pg = run_pipeline(t, opts);
    EXPECT_TRUE(check_leap_property(pg));
    EXPECT_TRUE(check_chare_paths(pg));
  }
}

TEST(Infer, PropertiesHoldOnPdesWithMissingDeps) {
  apps::PdesConfig cfg;
  trace::Trace t = apps::run_pdes(cfg);
  PartitionGraph pg = run_pipeline(t, PartitionOptions{});
  EXPECT_TRUE(check_leap_property(pg));
  EXPECT_TRUE(check_chare_paths(pg));
}

TEST(Infer, CheckDetectsLeapViolation) {
  // Two unconnected partitions on the same chare: both at leap 0.
  trace::TraceBuilder tb;
  trace::ChareId a = tb.add_chare("a");
  trace::EntryId e = tb.add_entry("go");
  trace::BlockId b1 = tb.begin_block(a, 0, e, 0);
  tb.add_send(b1, 0);
  tb.end_block(b1, 5);
  trace::BlockId b2 = tb.begin_block(a, 0, e, 10);
  tb.add_send(b2, 10);
  tb.end_block(b2, 15);
  trace::Trace t = tb.finish(1);

  PartitionGraph pg = build_initial_partitions(t, PartitionOptions{});
  EXPECT_FALSE(check_leap_property(pg));

  // Enforcement with leap_merge merges them (same kind, same leap).
  PartitionOptions opts;
  enforce_leap_property(pg, opts);
  EXPECT_TRUE(check_leap_property(pg));
  EXPECT_EQ(pg.num_partitions(), 1);
}

TEST(Infer, EnforcementWithoutMergeAddsOrderEdge) {
  trace::TraceBuilder tb;
  trace::ChareId a = tb.add_chare("a");
  trace::EntryId e = tb.add_entry("go");
  trace::BlockId b1 = tb.begin_block(a, 0, e, 0);
  trace::EventId s1 = tb.add_send(b1, 0);
  tb.end_block(b1, 5);
  trace::BlockId b2 = tb.begin_block(a, 0, e, 10);
  trace::EventId s2 = tb.add_send(b2, 10);
  tb.end_block(b2, 15);
  trace::Trace t = tb.finish(1);

  PartitionGraph pg = build_initial_partitions(t, PartitionOptions{});
  PartitionOptions opts;
  opts.leap_merge = false;  // Fig. 17 ablation path
  enforce_leap_property(pg, opts);
  EXPECT_TRUE(check_leap_property(pg));
  EXPECT_EQ(pg.num_partitions(), 2);
  // Ordered by physical time of the initial sources: s1's partition first.
  EXPECT_TRUE(pg.dag().has_edge(pg.part_of(s1), pg.part_of(s2)));
}

TEST(Infer, AppRuntimeOverlapOrderedNotMerged) {
  // One chare appearing in an app partition and a runtime partition with
  // no dependency between them: the fixpoint must order them by time, not
  // merge them.
  trace::TraceBuilder tb;
  trace::ChareId a = tb.add_chare("a");
  trace::ChareId r = tb.add_chare("mgr", trace::kNone, -1, 0, true);
  trace::EntryId e = tb.add_entry("go");
  trace::EntryId er = tb.add_entry("rt", true);
  trace::BlockId b1 = tb.begin_block(a, 0, e, 0);
  trace::EventId s_app = tb.add_send(b1, 0);  // dangling app send
  tb.end_block(b1, 5);
  trace::BlockId b2 = tb.begin_block(a, 0, e, 10);
  trace::EventId s_rt = tb.add_send(b2, 10);  // send to runtime chare
  tb.end_block(b2, 15);
  trace::BlockId b3 = tb.begin_block(r, 0, er, 100);
  tb.add_recv(b3, 100, s_rt);
  tb.end_block(b3, 110);
  trace::Trace t = tb.finish(1);

  PartitionGraph pg = build_initial_partitions(t, PartitionOptions{});
  dependency_merge(pg);
  PartitionOptions opts;
  enforce_leap_property(pg, opts);
  EXPECT_TRUE(check_leap_property(pg));
  PartId p_app = pg.part_of(s_app);
  PartId p_rt = pg.part_of(s_rt);
  EXPECT_NE(p_app, p_rt);
  EXPECT_FALSE(pg.runtime(p_app));
  EXPECT_TRUE(pg.runtime(p_rt));
  EXPECT_TRUE(pg.dag().has_edge(p_app, p_rt));  // earlier source first
}

TEST(Infer, CharePathEnforcementAddsSkipEdge) {
  // Paper Fig. 6: phase X's gray chare is missing from X's successors but
  // appears at a later leap in S; an edge X -> S must be added so both
  // cannot assign the gray chare the same global steps.
  //
  // A driver chare d opens phases X, Q, S with partition-initial sends at
  // increasing times (source-order inference chains X -> Q -> S). gray
  // receives in X and S but not in Q, so X's direct successors miss it.
  trace::TraceBuilder tb;
  trace::ChareId d = tb.add_chare("driver");
  trace::ChareId gray = tb.add_chare("gray");
  trace::ChareId aux = tb.add_chare("aux");
  trace::EntryId e = tb.add_entry("go");

  trace::BlockId dx = tb.begin_block(d, 0, e, 0);
  trace::EventId xs = tb.add_send(dx, 0);
  tb.end_block(dx, 5);
  trace::BlockId gx = tb.begin_block(gray, 1, e, 10);
  tb.add_recv(gx, 10, xs);
  tb.end_block(gx, 15);

  trace::BlockId dq = tb.begin_block(d, 0, e, 30);
  trace::EventId qs = tb.add_send(dq, 30);
  tb.end_block(dq, 35);
  trace::BlockId qa = tb.begin_block(aux, 0, e, 40);
  tb.add_recv(qa, 40, qs);
  tb.end_block(qa, 45);

  trace::BlockId ds = tb.begin_block(d, 0, e, 60);
  trace::EventId ss = tb.add_send(ds, 60);
  tb.end_block(ds, 65);
  trace::BlockId gs = tb.begin_block(gray, 1, e, 70);
  tb.add_recv(gs, 70, ss);
  tb.end_block(gs, 75);
  trace::Trace t = tb.finish(2);

  PartitionGraph pg = run_pipeline(t, PartitionOptions{});
  EXPECT_TRUE(check_chare_paths(pg));
  PartId px = pg.part_of(xs);
  PartId pq = pg.part_of(qs);
  PartId ps = pg.part_of(ss);
  ASSERT_NE(px, pq);
  ASSERT_NE(pq, ps);
  // The chain from source-order inference plus the Alg 5 skip edge.
  EXPECT_TRUE(pg.dag().has_edge(px, pq));
  EXPECT_TRUE(pg.dag().has_edge(pq, ps));
  EXPECT_TRUE(pg.dag().has_edge(px, ps));
}

}  // namespace
}  // namespace logstruct::order
