/// Golden-structure regression tests for the pass-manager refactor.
///
/// Each workload (tests/order/golden_fixtures.hpp) runs one bench app
/// through the full extraction pipeline and hashes the (phase DAG, step
/// assignment) output into a single 64-bit fingerprint. The expected
/// values were recorded on the pre-refactor pipeline (free-function
/// passes + full PartitionGraph rebuild per merge batch); the
/// pass-manager / incremental-merge rewrite must reproduce them
/// bit-identically. Charm++ and MPI flavors are both covered, plus the
/// `mpi_baseline13` and Fig. 17 ablation option sets.

#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>

#include "metrics/critical_path.hpp"
#include "metrics/duration.hpp"
#include "metrics/imbalance.hpp"
#include "metrics/lateness.hpp"
#include "order/validate.hpp"
#include "golden_fixtures.hpp"

namespace logstruct::order {
namespace {

using golden::Fnv;
using golden::Golden;
using golden::kGoldens;
using golden::ScopedDefaultParallelism;
using golden::structure_hash;

TEST(GoldenStructure, AllAppsBitIdentical) {
  for (const Golden& g : kGoldens) {
    trace::Trace t = g.make();
    LogicalStructure ls = extract_structure(t, g.opts());
    EXPECT_TRUE(validate_structure(t, ls).empty()) << g.name;
    std::uint64_t h = structure_hash(t, ls);
    EXPECT_EQ(h, g.expected)
        << g.name << ": got 0x" << std::hex << h << "ULL";
  }
}

/// Re-running the pipeline on the same trace must be deterministic — the
/// hashes above are only meaningful if nothing (hash maps, threads, RNG)
/// leaks iteration-order nondeterminism into the result.
TEST(GoldenStructure, ExtractionIsDeterministic) {
  trace::Trace t = golden::jacobi_small();
  LogicalStructure a = extract_structure(t, Options::charm());
  LogicalStructure b = extract_structure(t, Options::charm());
  EXPECT_EQ(structure_hash(t, a), structure_hash(t, b));
}

void mix_double(Fnv& f, double d) {
  std::uint64_t bits = 0;
  std::memcpy(&bits, &d, sizeof(bits));
  f.mix(static_cast<std::int64_t>(bits));
}

/// Fingerprint of every metric kernel's full output, doubles included via
/// their bit patterns — "identical" here means identical to the last bit,
/// which the fixed-grid reductions guarantee across thread counts.
std::uint64_t metrics_hash(const trace::Trace& t,
                           const LogicalStructure& ls, int threads) {
  Fnv f;
  metrics::Lateness late = metrics::lateness(t, ls, false, threads);
  for (trace::TimeNs v : late.per_event) f.mix(v);
  f.mix(late.max_value);
  f.mix(late.max_event);
  mix_double(f, late.mean);
  for (trace::TimeNs v : late.caused_by_chare) f.mix(v);
  metrics::CriticalPath cp = metrics::critical_path(t, ls, threads);
  for (trace::EventId e : cp.events) f.mix(e);
  f.mix(cp.length_ns);
  mix_double(f, cp.coverage);
  for (trace::TimeNs v : cp.chare_share) f.mix(v);
  metrics::DifferentialDuration dd =
      metrics::differential_duration(t, ls, threads);
  for (trace::TimeNs v : dd.per_event) f.mix(v);
  f.mix(dd.max_value);
  f.mix(dd.max_event);
  metrics::Imbalance imb = metrics::imbalance(t, ls, threads);
  for (trace::TimeNs v : imb.per_phase) f.mix(v);
  for (const auto& row : imb.per_phase_proc)
    for (trace::TimeNs v : row) f.mix(v);
  for (trace::TimeNs v : imb.per_event) f.mix(v);
  return f.value();
}

/// The determinism tentpole: every golden workload, rebuilt and
/// re-extracted at threads ∈ {1, 2, 4, 8}, must reproduce the recorded
/// serial structure hash bit-for-bit — and so must every metric kernel's
/// full output. The process default is overridden so the parallel trace
/// freeze (sorts + dependency table) runs threaded too, not just the
/// extraction passes.
TEST(GoldenStructure, ThreadCountMatrixBitIdentical) {
  for (const Golden& g : kGoldens) {
    std::uint64_t baseline_metrics = 0;
    for (int threads : {1, 2, 4, 8}) {
      ScopedDefaultParallelism scope(threads);
      trace::Trace t = g.make();
      Options opts = g.opts();
      opts.threads = threads;
      LogicalStructure ls = extract_structure(t, opts);
      EXPECT_EQ(structure_hash(t, ls), g.expected)
          << g.name << " at threads=" << threads;
      std::uint64_t mh = metrics_hash(t, ls, threads);
      if (threads == 1) {
        baseline_metrics = mh;
      } else {
        EXPECT_EQ(mh, baseline_metrics)
            << g.name << " metrics diverge at threads=" << threads;
      }
    }
  }
}

}  // namespace
}  // namespace logstruct::order
