/// Golden-structure regression tests for the pass-manager refactor.
///
/// Each workload below runs one bench app through the full extraction
/// pipeline and hashes the (phase DAG, step assignment) output into a
/// single 64-bit fingerprint. The expected values were recorded on the
/// pre-refactor pipeline (free-function passes + full PartitionGraph
/// rebuild per merge batch); the pass-manager / incremental-merge rewrite
/// must reproduce them bit-identically. Charm++ and MPI flavors are both
/// covered, plus the `mpi_baseline13` and Fig. 17 ablation option sets.

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <cstring>

#include "apps/jacobi2d.hpp"
#include "apps/lassen.hpp"
#include "apps/lulesh.hpp"
#include "apps/mergetree.hpp"
#include "apps/nasbt.hpp"
#include "apps/pdes.hpp"
#include "metrics/critical_path.hpp"
#include "metrics/duration.hpp"
#include "metrics/imbalance.hpp"
#include "metrics/lateness.hpp"
#include "order/stepping.hpp"
#include "order/validate.hpp"
#include "util/thread_pool.hpp"

namespace logstruct::order {
namespace {

/// FNV-1a, 64-bit. Deterministic across platforms for our int sequences.
class Fnv {
 public:
  void mix(std::int64_t v) {
    auto u = static_cast<std::uint64_t>(v);
    for (int i = 0; i < 8; ++i) {
      h_ ^= (u >> (8 * i)) & 0xffu;
      h_ *= 1099511628211ULL;
    }
  }
  [[nodiscard]] std::uint64_t value() const { return h_; }

 private:
  std::uint64_t h_ = 14695981039346656037ULL;
};

/// Fingerprint of everything the paper's end product promises: the phase
/// DAG (nodes, runtime flags, leaps, edges), the per-event phase and step
/// assignment, and the final per-chare sequences.
std::uint64_t structure_hash(const trace::Trace& trace,
                             const LogicalStructure& ls) {
  Fnv f;
  f.mix(trace.num_events());
  f.mix(ls.num_phases());
  for (std::int32_t p = 0; p < ls.num_phases(); ++p) {
    f.mix(ls.phases.runtime[static_cast<std::size_t>(p)] ? 1 : 0);
    f.mix(ls.phases.leap[static_cast<std::size_t>(p)]);
    f.mix(ls.phase_offset[static_cast<std::size_t>(p)]);
    f.mix(ls.phase_height[static_cast<std::size_t>(p)]);
    f.mix(static_cast<std::int64_t>(
        ls.phases.events[static_cast<std::size_t>(p)].size()));
  }
  for (auto [u, v] : ls.phases.dag.edges()) {
    f.mix(u);
    f.mix(v);
  }
  for (trace::EventId e = 0; e < trace.num_events(); ++e) {
    f.mix(ls.phases.phase_of_event[static_cast<std::size_t>(e)]);
    f.mix(ls.global_step[static_cast<std::size_t>(e)]);
  }
  for (const auto& seq : ls.chare_sequence) {
    f.mix(static_cast<std::int64_t>(seq.size()));
    for (trace::EventId e : seq) f.mix(e);
  }
  return f.value();
}

struct Golden {
  const char* name;
  trace::Trace (*make)();
  Options (*opts)();
  std::uint64_t expected;
};

trace::Trace jacobi_small() {
  apps::Jacobi2DConfig cfg;
  cfg.chares_x = 4;
  cfg.chares_y = 4;
  cfg.num_pes = 4;
  cfg.iterations = 2;
  return apps::run_jacobi2d(cfg);
}

trace::Trace lulesh_charm_small() {
  apps::LuleshConfig cfg;
  cfg.iterations = 2;
  return apps::run_lulesh_charm(cfg);
}

trace::Trace lulesh_mpi_small() {
  apps::LuleshConfig cfg;
  cfg.iterations = 2;
  return apps::run_lulesh_mpi(cfg);
}

trace::Trace lassen_charm_small() {
  apps::LassenConfig cfg;
  cfg.iterations = 4;
  return apps::run_lassen_charm(cfg);
}

trace::Trace lassen_mpi_small() {
  apps::LassenConfig cfg;
  cfg.iterations = 4;
  return apps::run_lassen_mpi(cfg);
}

trace::Trace mergetree_small() {
  apps::MergeTreeConfig cfg;
  cfg.num_ranks = 32;
  return apps::run_mergetree_mpi(cfg);
}

trace::Trace nasbt_small() { return apps::run_nasbt_mpi({}); }

trace::Trace pdes_small() { return apps::run_pdes({}); }

const Golden kGoldens[] = {
    {"jacobi2d/charm", jacobi_small, Options::charm, 0x923529b3b2bf2faaULL},
    {"jacobi2d/charm_no_reorder", jacobi_small, Options::charm_no_reorder,
     0x720980251dc78002ULL},
    {"lulesh/charm", lulesh_charm_small, Options::charm,
     0x50890b04041fb3d3ULL},
    {"lulesh/charm_no_inference(fig17)", lulesh_charm_small,
     Options::charm_no_inference, 0x402c6f88d8281526ULL},
    {"lulesh/mpi", lulesh_mpi_small, Options::mpi, 0x32ef90bfc07e662aULL},
    {"lulesh/mpi_baseline13", lulesh_mpi_small, Options::mpi_baseline13,
     0xf2aec2e63c903506ULL},
    {"lassen/charm", lassen_charm_small, Options::charm,
     0x9005e32ef50621a1ULL},
    {"lassen/mpi", lassen_mpi_small, Options::mpi, 0xccaf57915f2316d4ULL},
    {"mergetree/mpi", mergetree_small, Options::mpi, 0x096fc78620e84c5fULL},
    {"mergetree/mpi_baseline13", mergetree_small, Options::mpi_baseline13,
     0x0bb3997dfb0e7528ULL},
    {"nasbt/mpi", nasbt_small, Options::mpi, 0x76cd78df757d3f85ULL},
    {"pdes/charm", pdes_small, Options::charm, 0x960925480050563cULL},
};

TEST(GoldenStructure, AllAppsBitIdentical) {
  for (const Golden& g : kGoldens) {
    trace::Trace t = g.make();
    LogicalStructure ls = extract_structure(t, g.opts());
    EXPECT_TRUE(validate_structure(t, ls).empty()) << g.name;
    std::uint64_t h = structure_hash(t, ls);
    EXPECT_EQ(h, g.expected)
        << g.name << ": got 0x" << std::hex << h << "ULL";
  }
}

/// Re-running the pipeline on the same trace must be deterministic — the
/// hashes above are only meaningful if nothing (hash maps, threads, RNG)
/// leaks iteration-order nondeterminism into the result.
TEST(GoldenStructure, ExtractionIsDeterministic) {
  trace::Trace t = jacobi_small();
  LogicalStructure a = extract_structure(t, Options::charm());
  LogicalStructure b = extract_structure(t, Options::charm());
  EXPECT_EQ(structure_hash(t, a), structure_hash(t, b));
}

void mix_double(Fnv& f, double d) {
  std::uint64_t bits = 0;
  std::memcpy(&bits, &d, sizeof(bits));
  f.mix(static_cast<std::int64_t>(bits));
}

/// Fingerprint of every metric kernel's full output, doubles included via
/// their bit patterns — "identical" here means identical to the last bit,
/// which the fixed-grid reductions guarantee across thread counts.
std::uint64_t metrics_hash(const trace::Trace& t,
                           const LogicalStructure& ls, int threads) {
  Fnv f;
  metrics::Lateness late = metrics::lateness(t, ls, false, threads);
  for (trace::TimeNs v : late.per_event) f.mix(v);
  f.mix(late.max_value);
  f.mix(late.max_event);
  mix_double(f, late.mean);
  for (trace::TimeNs v : late.caused_by_chare) f.mix(v);
  metrics::CriticalPath cp = metrics::critical_path(t, ls, threads);
  for (trace::EventId e : cp.events) f.mix(e);
  f.mix(cp.length_ns);
  mix_double(f, cp.coverage);
  for (trace::TimeNs v : cp.chare_share) f.mix(v);
  metrics::DifferentialDuration dd =
      metrics::differential_duration(t, ls, threads);
  for (trace::TimeNs v : dd.per_event) f.mix(v);
  f.mix(dd.max_value);
  f.mix(dd.max_event);
  metrics::Imbalance imb = metrics::imbalance(t, ls, threads);
  for (trace::TimeNs v : imb.per_phase) f.mix(v);
  for (const auto& row : imb.per_phase_proc)
    for (trace::TimeNs v : row) f.mix(v);
  for (trace::TimeNs v : imb.per_event) f.mix(v);
  return f.value();
}

/// RAII process-default parallelism override, restored on scope exit so
/// one test cannot leak its thread count into another.
struct ScopedDefaultParallelism {
  explicit ScopedDefaultParallelism(int n)
      : prev(util::default_parallelism()) {
    util::set_default_parallelism(n);
  }
  ~ScopedDefaultParallelism() { util::set_default_parallelism(prev); }
  int prev;
};

/// The determinism tentpole: every golden workload, rebuilt and
/// re-extracted at threads ∈ {1, 2, 4, 8}, must reproduce the recorded
/// serial structure hash bit-for-bit — and so must every metric kernel's
/// full output. The process default is overridden so the parallel trace
/// freeze (sorts + dependency table) runs threaded too, not just the
/// extraction passes.
TEST(GoldenStructure, ThreadCountMatrixBitIdentical) {
  for (const Golden& g : kGoldens) {
    std::uint64_t baseline_metrics = 0;
    for (int threads : {1, 2, 4, 8}) {
      ScopedDefaultParallelism scope(threads);
      trace::Trace t = g.make();
      Options opts = g.opts();
      opts.threads = threads;
      LogicalStructure ls = extract_structure(t, opts);
      EXPECT_EQ(structure_hash(t, ls), g.expected)
          << g.name << " at threads=" << threads;
      std::uint64_t mh = metrics_hash(t, ls, threads);
      if (threads == 1) {
        baseline_metrics = mh;
      } else {
        EXPECT_EQ(mh, baseline_metrics)
            << g.name << " metrics diverge at threads=" << threads;
      }
    }
  }
}

}  // namespace
}  // namespace logstruct::order
