/// Randomized-trace robustness: generate arbitrary (but well-formed)
/// message-driven traces — random chares, placements, serial blocks,
/// fan-outs, untraced dependencies, runtime chares — and assert the
/// pipeline's invariants hold for every option set. This guards the
/// algorithm against shapes the proxy apps never produce.

#include <gtest/gtest.h>

#include "order/stats.hpp"
#include "order/stepping.hpp"
#include "order_fixtures.hpp"
#include "random_trace.hpp"
#include "trace/builder.hpp"
#include "trace/validate.hpp"
#include "util/rng.hpp"

namespace logstruct::order {
namespace {

class FuzzSeeds : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(FuzzSeeds, PipelineInvariantsHold) {
  trace::Trace t = testing::random_trace(GetParam());
  ASSERT_TRUE(trace::validate(t).empty());
  for (const Options& opts :
       {Options::charm(), Options::charm_no_reorder(),
        Options::charm_no_inference(), Options::mpi(),
        Options::mpi_baseline13()}) {
    LogicalStructure ls = extract_structure(t, opts);
    testing::expect_structure_invariants(t, ls);
  }
}

INSTANTIATE_TEST_SUITE_P(ManySeeds, FuzzSeeds,
                         ::testing::Range<std::uint64_t>(1, 65));

/// Thread-count fuzzing: the same random traces, extracted with a
/// seed-derived thread count (2..9, plus the oversubscribed 16) against a
/// threaded trace freeze, must match the serial structure exactly. Odd
/// shard splits, one-event partitions, and untraced dependencies all flow
/// through here — the shapes the proxy apps never produce.
TEST_P(FuzzSeeds, ThreadedMatchesSerial) {
  const std::uint64_t seed = GetParam();
  trace::Trace serial_trace = testing::random_trace(seed);
  LogicalStructure serial =
      extract_structure(serial_trace, Options::charm());
  const int threads =
      seed % 8 == 0 ? 16 : 2 + static_cast<int>(seed % 8);
  testing::ScopedDefaultParallelism scope(threads);
  trace::Trace t = testing::random_trace(seed);
  Options opts = Options::charm();
  opts.threads = threads;
  LogicalStructure ls = extract_structure(t, opts);
  testing::expect_structures_equal(serial, ls, "fuzz threaded");
}

}  // namespace
}  // namespace logstruct::order
