#pragma once

/// Shared invariant checks and synthetic traces for ordering tests.

#include <gtest/gtest.h>

#include "graph/scc.hpp"
#include "order/stepping.hpp"
#include "order/validate.hpp"
#include "trace/builder.hpp"

namespace logstruct::order::testing {

/// Assert the invariants every logical structure must satisfy (see
/// order::validate_structure for the list), plus conflict-free stepping.
inline void expect_structure_invariants(const trace::Trace& trace,
                                        const LogicalStructure& ls) {
  std::vector<std::string> problems = validate_structure(trace, ls);
  EXPECT_TRUE(problems.empty())
      << problems.size() << " problems; first: " << problems.front();
  EXPECT_EQ(ls.order_conflicts, 0);
}

/// The paper's Figure 3 trace: a ring of chares, each serial_0 invoking
/// recvResult on its left neighbor; recvResult guards a when-serial.
struct RingTrace {
  trace::Trace trace;
  int n = 4;
};

inline RingTrace make_ring_trace(int n = 4, trace::TimeNs stagger = 100) {
  trace::TraceBuilder tb;
  trace::ArrayId arr = tb.add_array("ring");
  std::vector<trace::ChareId> chares;
  for (int i = 0; i < n; ++i)
    chares.push_back(tb.add_chare("ring[" + std::to_string(i) + "]", arr, i,
                                  i % 2));
  trace::EntryId e_recv = tb.add_entry("recvResult");
  trace::EntryId e_s0 = tb.add_entry("serial_0", false, 0);
  trace::EntryId e_s1 = tb.add_entry("serial_1", false, 1, {e_recv});

  // serial_0 on every chare: a send to the left neighbor.
  std::vector<trace::EventId> sends;
  for (int i = 0; i < n; ++i) {
    trace::TimeNs t = i * stagger;
    trace::BlockId b = tb.begin_block(chares[static_cast<std::size_t>(i)],
                                      i % 2, e_s0, t);
    sends.push_back(tb.add_send(b, t + 10));
    tb.end_block(b, t + 20);
  }
  // recvResult + immediately-following serial_1 on the left neighbor.
  for (int i = 0; i < n; ++i) {
    int dst = (i + n - 1) % n;
    trace::TimeNs t = 2000 + i * stagger;
    trace::BlockId br = tb.begin_block(chares[static_cast<std::size_t>(dst)],
                                       dst % 2, e_recv, t);
    tb.add_recv(br, t, sends[static_cast<std::size_t>(i)]);
    tb.end_block(br, t + 30);
    trace::BlockId bs = tb.begin_block(chares[static_cast<std::size_t>(dst)],
                                       dst % 2, e_s1, t + 30);
    tb.end_block(bs, t + 60);
  }

  RingTrace out;
  out.trace = tb.finish(2);
  out.n = n;
  return out;
}

}  // namespace logstruct::order::testing
