#pragma once

/// Shared invariant checks and synthetic traces for ordering tests.

#include <gtest/gtest.h>

#include "graph/scc.hpp"
#include "order/stepping.hpp"
#include "order/validate.hpp"
#include "trace/builder.hpp"
#include "util/thread_pool.hpp"

namespace logstruct::order::testing {

/// RAII override of the process-wide default parallelism, restored on
/// scope exit so a threaded test cannot leak its count into later tests
/// (trace freezing and any Options::threads == 0 stage follow it).
struct ScopedDefaultParallelism {
  explicit ScopedDefaultParallelism(int n)
      : prev(util::default_parallelism()) {
    util::set_default_parallelism(n);
  }
  ~ScopedDefaultParallelism() { util::set_default_parallelism(prev); }
  ScopedDefaultParallelism(const ScopedDefaultParallelism&) = delete;
  ScopedDefaultParallelism& operator=(const ScopedDefaultParallelism&) =
      delete;
  int prev;
};

/// Field-for-field equality of two logical structures — the cross-check
/// used by the thread-count determinism tests. EXPECT (not ASSERT) so a
/// divergence reports every differing field at once.
inline void expect_structures_equal(const LogicalStructure& a,
                                    const LogicalStructure& b,
                                    const char* label = "") {
  EXPECT_EQ(a.global_step, b.global_step) << label;
  EXPECT_EQ(a.max_step, b.max_step) << label;
  EXPECT_EQ(a.order_conflicts, b.order_conflicts) << label;
  EXPECT_EQ(a.phases.phase_of_event, b.phases.phase_of_event) << label;
  EXPECT_EQ(a.phases.events, b.phases.events) << label;
  EXPECT_EQ(a.phases.runtime, b.phases.runtime) << label;
  EXPECT_EQ(a.phases.leap, b.phases.leap) << label;
  EXPECT_EQ(a.phases.dag.edges(), b.phases.dag.edges()) << label;
  EXPECT_EQ(a.phase_offset, b.phase_offset) << label;
  EXPECT_EQ(a.phase_height, b.phase_height) << label;
  EXPECT_EQ(a.chare_sequence, b.chare_sequence) << label;
}

/// Assert the invariants every logical structure must satisfy (see
/// order::validate_structure for the list), plus conflict-free stepping.
inline void expect_structure_invariants(const trace::Trace& trace,
                                        const LogicalStructure& ls) {
  std::vector<std::string> problems = validate_structure(trace, ls);
  EXPECT_TRUE(problems.empty())
      << problems.size() << " problems; first: " << problems.front();
  EXPECT_EQ(ls.order_conflicts, 0);
}

/// The paper's Figure 3 trace: a ring of chares, each serial_0 invoking
/// recvResult on its left neighbor; recvResult guards a when-serial.
struct RingTrace {
  trace::Trace trace;
  int n = 4;
};

inline RingTrace make_ring_trace(int n = 4, trace::TimeNs stagger = 100) {
  trace::TraceBuilder tb;
  trace::ArrayId arr = tb.add_array("ring");
  std::vector<trace::ChareId> chares;
  for (int i = 0; i < n; ++i)
    chares.push_back(tb.add_chare("ring[" + std::to_string(i) + "]", arr, i,
                                  i % 2));
  trace::EntryId e_recv = tb.add_entry("recvResult");
  trace::EntryId e_s0 = tb.add_entry("serial_0", false, 0);
  trace::EntryId e_s1 = tb.add_entry("serial_1", false, 1, {e_recv});

  // serial_0 on every chare: a send to the left neighbor.
  std::vector<trace::EventId> sends;
  for (int i = 0; i < n; ++i) {
    trace::TimeNs t = i * stagger;
    trace::BlockId b = tb.begin_block(chares[static_cast<std::size_t>(i)],
                                      i % 2, e_s0, t);
    sends.push_back(tb.add_send(b, t + 10));
    tb.end_block(b, t + 20);
  }
  // recvResult + immediately-following serial_1 on the left neighbor.
  for (int i = 0; i < n; ++i) {
    int dst = (i + n - 1) % n;
    trace::TimeNs t = 2000 + i * stagger;
    trace::BlockId br = tb.begin_block(chares[static_cast<std::size_t>(dst)],
                                       dst % 2, e_recv, t);
    tb.add_recv(br, t, sends[static_cast<std::size_t>(i)]);
    tb.end_block(br, t + 30);
    trace::BlockId bs = tb.begin_block(chares[static_cast<std::size_t>(dst)],
                                       dst % 2, e_s1, t + 30);
    tb.end_block(bs, t + 60);
  }

  RingTrace out;
  out.trace = tb.finish(2);
  out.n = n;
  return out;
}

}  // namespace logstruct::order::testing
