/// Cross-oracle golden matrix: every golden workload must extract with
/// the check_causality pass enabled — zero violations, no abort — and
/// still reproduce its recorded structure hash bit-for-bit, on both
/// storage backends at 1 and 4 threads. The vector-clock oracle and the
/// golden hashes are independent ground truths; this matrix pins them
/// to each other: a pass regression now needs to fool both a recorded
/// fingerprint and an exact happened-before check to land.

#include <gtest/gtest.h>

#include <cstdint>

#include "order/causality.hpp"
#include "trace/storage/blocked_trace.hpp"
#include "trace/storage/options.hpp"
#include "golden_fixtures.hpp"

namespace logstruct::order {
namespace {

using golden::Golden;
using golden::kGoldens;
using golden::ScopedDefaultParallelism;
using golden::structure_hash;
using trace::storage::BackendKind;
using trace::storage::ScopedStorageOptions;
using trace::storage::StorageOptions;

void expect_checked_extraction_matches(const Golden& g,
                                       const trace::Trace& t,
                                       int threads, const char* backend) {
  Options opts = g.opts();
  opts.threads = threads;
  opts.check_causality = true;  // the pass aborts on any violation
  LogicalStructure ls = extract_structure(t, opts);
  EXPECT_EQ(structure_hash(t, ls), g.expected)
      << g.name << " (" << backend << ", threads=" << threads
      << "): enabling check_causality must not change the structure";
  // The standalone report must agree with the in-pipeline pass: clean,
  // with real coverage.
  CausalityReport report = check_causality(t, ls);
  EXPECT_TRUE(report.clean())
      << g.name << " (" << backend << "): " << report.total_violations
      << " violations";
  EXPECT_GT(report.edges_checked, 0) << g.name;
  EXPECT_EQ(report.skipped_degraded, 0) << g.name;
}

TEST(CausalityGolden, MemBackendMatrixCleanAndBitIdentical) {
  StorageOptions mem_opts;
  mem_opts.kind = BackendKind::Mem;
  ScopedStorageOptions mscope(mem_opts);
  for (const Golden& g : kGoldens) {
    trace::Trace t = g.make();
    ASSERT_EQ(t.storage_backend(), BackendKind::Mem) << g.name;
    for (int threads : {1, 4}) {
      ScopedDefaultParallelism pscope(threads);
      expect_checked_extraction_matches(g, t, threads, "mem");
    }
  }
}

TEST(CausalityGolden, BlockedBackendMatrixCleanAndBitIdentical) {
  for (const Golden& g : kGoldens) {
    StorageOptions opts;
    opts.kind = BackendKind::Blocked;
    opts.cache_bytes = 1ull << 20;  // starved: constant eviction
    opts.block_bytes = 64 << 10;
    ScopedStorageOptions sscope(opts);
    trace::Trace t = g.make();
    ASSERT_EQ(t.storage_backend(), BackendKind::Blocked) << g.name;
    for (int threads : {1, 4}) {
      ScopedDefaultParallelism pscope(threads);
      expect_checked_extraction_matches(g, t, threads, "blocked");
    }
  }
}

/// The oracle itself must be backend-independent: identical clock
/// statistics and identical hb answers over a sample of event pairs,
/// mem vs blocked.
TEST(CausalityGolden, OracleBackendIndependent) {
  const Golden& g = kGoldens[0];  // jacobi2d/charm
  std::int64_t mem_entries = 0;
  std::int64_t mem_saturated = 0;
  std::vector<bool> mem_answers;
  {
    StorageOptions mem_opts;
    mem_opts.kind = BackendKind::Mem;
    ScopedStorageOptions mscope(mem_opts);
    trace::Trace t = g.make();
    CausalityOracle oracle(t);
    mem_entries = oracle.total_clock_entries();
    mem_saturated = oracle.saturated_events();
    const trace::EventId n = t.num_events();
    for (trace::EventId a = 0; a < n; a += 7)
      for (trace::EventId b = 0; b < n; b += 11)
        mem_answers.push_back(oracle.hb(a, b));
  }
  StorageOptions opts;
  opts.kind = BackendKind::Blocked;
  opts.cache_bytes = 1ull << 20;
  opts.block_bytes = 64 << 10;
  ScopedStorageOptions sscope(opts);
  trace::Trace t = g.make();
  CausalityOracle oracle(t);
  EXPECT_EQ(oracle.total_clock_entries(), mem_entries);
  EXPECT_EQ(oracle.saturated_events(), mem_saturated);
  std::size_t i = 0;
  const trace::EventId n = t.num_events();
  for (trace::EventId a = 0; a < n; a += 7)
    for (trace::EventId b = 0; b < n; b += 11)
      EXPECT_EQ(oracle.hb(a, b), mem_answers[i++]) << a << " -> " << b;
}

}  // namespace
}  // namespace logstruct::order
