#include "order/wclock.hpp"

#include <gtest/gtest.h>

#include "order/block_units.hpp"
#include "order/phases.hpp"
#include "trace/builder.hpp"

namespace logstruct::order {
namespace {

std::vector<std::int64_t> w_of(const trace::Trace& t, bool mpi_mode) {
  PartitionOptions popts;
  if (mpi_mode) popts = Options::mpi().partition;
  PhaseResult phases = find_phases(t, popts);
  BlockUnits units = compute_block_units(t, popts.sdag_inference);
  StepOptions sopts;
  sopts.mpi_mode = mpi_mode;
  return compute_w(t, phases, units, sopts);
}

TEST(WClock, SendsCountUpAlongSerialBlock) {
  // One block with three sends: w = 0, 1, 2 (paper §3.2.1).
  trace::TraceBuilder tb;
  trace::ChareId a = tb.add_chare("a");
  trace::ChareId b = tb.add_chare("b");
  trace::EntryId e = tb.add_entry("go");
  trace::BlockId blk = tb.begin_block(a, 0, e, 0);
  std::vector<trace::EventId> sends;
  for (int i = 0; i < 3; ++i) sends.push_back(tb.add_send(blk, 10 + i));
  tb.end_block(blk, 20);
  // Consume the sends so they're matched.
  for (int i = 0; i < 3; ++i) {
    trace::BlockId r = tb.begin_block(b, 1, e, 100 + i * 10);
    tb.add_recv(r, 100 + i * 10, sends[static_cast<std::size_t>(i)]);
    tb.end_block(r, 105 + i * 10);
  }
  trace::Trace t = tb.finish(2);
  auto w = w_of(t, false);
  EXPECT_EQ(w[static_cast<std::size_t>(sends[0])], 0);
  EXPECT_EQ(w[static_cast<std::size_t>(sends[1])], 1);
  EXPECT_EQ(w[static_cast<std::size_t>(sends[2])], 2);
}

TEST(WClock, RecvIsOnePastItsSend) {
  trace::TraceBuilder tb;
  trace::ChareId a = tb.add_chare("a");
  trace::ChareId b = tb.add_chare("b");
  trace::EntryId e = tb.add_entry("go");
  trace::BlockId blk = tb.begin_block(a, 0, e, 0);
  trace::EventId s0 = tb.add_send(blk, 10);
  trace::EventId s1 = tb.add_send(blk, 11);
  tb.end_block(blk, 20);
  trace::BlockId r0 = tb.begin_block(b, 1, e, 100);
  trace::EventId rv0 = tb.add_recv(r0, 100, s0);
  tb.end_block(r0, 105);
  trace::BlockId r1 = tb.begin_block(b, 1, e, 110);
  trace::EventId rv1 = tb.add_recv(r1, 110, s1);
  tb.end_block(r1, 115);
  trace::Trace t = tb.finish(2);
  auto w = w_of(t, false);
  EXPECT_EQ(w[static_cast<std::size_t>(rv0)],
            w[static_cast<std::size_t>(s0)] + 1);
  EXPECT_EQ(w[static_cast<std::size_t>(rv1)],
            w[static_cast<std::size_t>(s1)] + 1);
}

TEST(WClock, SendsAfterRecvCountUpFromIt) {
  // Block triggered by a recv with w_recv = 1; its sends get 2, 3.
  trace::TraceBuilder tb;
  trace::ChareId a = tb.add_chare("a");
  trace::ChareId b = tb.add_chare("b");
  trace::ChareId c = tb.add_chare("c");
  trace::EntryId e = tb.add_entry("go");
  trace::BlockId blk = tb.begin_block(a, 0, e, 0);
  trace::EventId s = tb.add_send(blk, 10);
  tb.end_block(blk, 20);
  trace::BlockId rb = tb.begin_block(b, 1, e, 100);
  trace::EventId r = tb.add_recv(rb, 100, s);
  trace::EventId s2 = tb.add_send(rb, 110);
  trace::EventId s3 = tb.add_send(rb, 111);
  tb.end_block(rb, 120);
  trace::BlockId rc = tb.begin_block(c, 0, e, 200);
  tb.add_recv(rc, 200, s2);
  tb.end_block(rc, 205);
  trace::BlockId rc2 = tb.begin_block(c, 0, e, 210);
  tb.add_recv(rc2, 210, s3);
  tb.end_block(rc2, 215);
  trace::Trace t = tb.finish(2);
  auto w = w_of(t, false);
  EXPECT_EQ(w[static_cast<std::size_t>(r)], 1);
  EXPECT_EQ(w[static_cast<std::size_t>(s2)], 2);
  EXPECT_EQ(w[static_cast<std::size_t>(s3)], 3);
}

TEST(WClock, CrossPhaseRecvRestartsAtZero) {
  // A recv whose matching send sits in an earlier phase is phase-initial.
  trace::TraceBuilder tb;
  trace::ChareId a = tb.add_chare("a");
  trace::ChareId r = tb.add_chare("mgr", trace::kNone, -1, 0, true);
  trace::EntryId e = tb.add_entry("go");
  trace::EntryId er = tb.add_entry("rt", true);
  trace::BlockId blk = tb.begin_block(a, 0, e, 0);
  trace::EventId s = tb.add_send(blk, 10);  // app -> runtime
  tb.end_block(blk, 20);
  trace::BlockId rb = tb.begin_block(r, 0, er, 100);
  trace::EventId rv = tb.add_recv(rb, 100, s);
  tb.end_block(rb, 110);
  trace::Trace t = tb.finish(1);
  auto w = w_of(t, false);
  // Send (runtime-classified event) and recv end up in the same runtime
  // partition via the dependency merge here, so this actually stays
  // in-phase: w(recv) = w(send) + 1 = 1.
  EXPECT_EQ(w[static_cast<std::size_t>(rv)],
            w[static_cast<std::size_t>(s)] + 1);
}

TEST(WClock, MpiSendPinnedAboveEveryPrecedingRecv) {
  // Figure 9's law: w_send = 1 + max{w_recv before it in process order}.
  trace::TraceBuilder tb;
  trace::ChareId r0 = tb.add_chare("r0");
  trace::ChareId r1 = tb.add_chare("r1");
  trace::EntryId es = tb.add_entry("MPI_Send");
  trace::EntryId er = tb.add_entry("MPI_Recv");

  // r0 sends twice to r1 (chain on r0: w 0, 1).
  trace::BlockId b0 = tb.begin_block(r0, 0, es, 0);
  trace::EventId sA = tb.add_send(b0, 0);
  tb.end_block(b0, 5);
  trace::BlockId b1 = tb.begin_block(r0, 0, es, 10);
  trace::EventId sB = tb.add_send(b1, 10);
  tb.end_block(b1, 15);
  // r1: recv A, recv B, then send back.
  trace::BlockId c0 = tb.begin_block(r1, 1, er, 100);
  trace::EventId rA = tb.add_recv(c0, 100, sA);
  tb.end_block(c0, 105);
  trace::BlockId c1 = tb.begin_block(r1, 1, er, 110);
  trace::EventId rB = tb.add_recv(c1, 110, sB);
  tb.end_block(c1, 115);
  trace::BlockId c2 = tb.begin_block(r1, 1, es, 120);
  trace::EventId sC = tb.add_send(c2, 120);
  tb.end_block(c2, 125);
  trace::BlockId b2 = tb.begin_block(r0, 0, er, 200);
  tb.add_recv(b2, 200, sC);
  tb.end_block(b2, 205);
  trace::Trace t = tb.finish(2);

  auto w = w_of(t, true);
  // All of this is dependency-connected into one phase (sC's send depends
  // on rA/rB through the relaxed process-order edges, closing a cycle
  // with r0's chain).
  if (w[static_cast<std::size_t>(sC)] != 0) {  // same-phase case
    EXPECT_EQ(w[static_cast<std::size_t>(sC)],
              std::max(w[static_cast<std::size_t>(rA)],
                       w[static_cast<std::size_t>(rB)]) +
                  1);
  }
}

}  // namespace
}  // namespace logstruct::order
