/// End-to-end property tests: run the full pipeline over simulator traces
/// across seeds and configurations and assert the structural invariants
/// the paper's phase-DAG properties guarantee.

#include <gtest/gtest.h>

#include "apps/jacobi2d.hpp"
#include "apps/lassen.hpp"
#include "apps/lulesh.hpp"
#include "apps/mergetree.hpp"
#include "apps/nasbt.hpp"
#include "apps/pdes.hpp"
#include "order/stats.hpp"
#include "order/stepping.hpp"
#include "order_fixtures.hpp"

namespace logstruct::order {
namespace {

class JacobiSeeds : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(JacobiSeeds, InvariantsHold) {
  apps::Jacobi2DConfig cfg;
  cfg.chares_x = 4;
  cfg.chares_y = 4;
  cfg.num_pes = 4;
  cfg.iterations = 3;
  cfg.seed = GetParam();
  trace::Trace t = apps::run_jacobi2d(cfg);
  LogicalStructure ls = extract_structure(t, Options::charm());
  testing::expect_structure_invariants(t, ls);
  StructureStats s = compute_stats(t, ls);
  EXPECT_EQ(s.chare_step_violations, 0);
  EXPECT_GT(s.app_phases, 0);
  EXPECT_GT(s.runtime_phases, 0);
}

INSTANTIATE_TEST_SUITE_P(Seeds, JacobiSeeds,
                         ::testing::Values(1u, 2u, 3u, 17u, 99u, 12345u));

class JacobiNoReorderSeeds : public ::testing::TestWithParam<std::uint64_t> {
};

TEST_P(JacobiNoReorderSeeds, InvariantsHold) {
  apps::Jacobi2DConfig cfg;
  cfg.chares_x = 4;
  cfg.chares_y = 4;
  cfg.num_pes = 4;
  cfg.iterations = 2;
  cfg.seed = GetParam();
  trace::Trace t = apps::run_jacobi2d(cfg);
  LogicalStructure ls = extract_structure(t, Options::charm_no_reorder());
  testing::expect_structure_invariants(t, ls);
}

INSTANTIATE_TEST_SUITE_P(Seeds, JacobiNoReorderSeeds,
                         ::testing::Values(1u, 7u, 1234u));

class LuleshCharmSeeds : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(LuleshCharmSeeds, InvariantsHoldAllOptionSets) {
  apps::LuleshConfig cfg;
  cfg.iterations = 3;
  cfg.seed = GetParam();
  trace::Trace t = apps::run_lulesh_charm(cfg);
  for (const Options& opts :
       {Options::charm(), Options::charm_no_inference(),
        Options::charm_no_reorder()}) {
    LogicalStructure ls = extract_structure(t, opts);
    testing::expect_structure_invariants(t, ls);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, LuleshCharmSeeds,
                         ::testing::Values(1u, 5u, 42u, 777u));

class LassenGrids
    : public ::testing::TestWithParam<std::pair<int, int>> {};

TEST_P(LassenGrids, InvariantsHold) {
  apps::LassenConfig cfg;
  cfg.chares_x = GetParam().first;
  cfg.chares_y = GetParam().second;
  cfg.iterations = 5;
  trace::Trace t = apps::run_lassen_charm(cfg);
  LogicalStructure ls = extract_structure(t, Options::charm());
  testing::expect_structure_invariants(t, ls);
}

INSTANTIATE_TEST_SUITE_P(Grids, LassenGrids,
                         ::testing::Values(std::pair{4, 2}, std::pair{8, 8},
                                           std::pair{3, 3}));

TEST(PipelineProperty, PdesWithAndWithoutDetectorTracing) {
  for (bool traced : {false, true}) {
    apps::PdesConfig cfg;
    cfg.trace_detector_calls = traced;
    trace::Trace t = apps::run_pdes(cfg);
    LogicalStructure ls = extract_structure(t, Options::charm());
    testing::expect_structure_invariants(t, ls);
  }
}

class MpiAppSeeds : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(MpiAppSeeds, LuleshMpiInvariants) {
  apps::LuleshConfig cfg;
  cfg.iterations = 2;
  cfg.seed = GetParam();
  trace::Trace t = apps::run_lulesh_mpi(cfg);
  for (const Options& opts : {Options::mpi(), Options::mpi_baseline13()}) {
    LogicalStructure ls = extract_structure(t, opts);
    testing::expect_structure_invariants(t, ls);
  }
}

TEST_P(MpiAppSeeds, MergeTreeInvariants) {
  apps::MergeTreeConfig cfg;
  cfg.num_ranks = 32;
  cfg.seed = GetParam();
  trace::Trace t = apps::run_mergetree_mpi(cfg);
  for (const Options& opts : {Options::mpi(), Options::mpi_baseline13()}) {
    LogicalStructure ls = extract_structure(t, opts);
    testing::expect_structure_invariants(t, ls);
  }
}

TEST_P(MpiAppSeeds, NasBtInvariants) {
  apps::NasBtConfig cfg;
  cfg.seed = GetParam();
  trace::Trace t = apps::run_nasbt_mpi(cfg);
  LogicalStructure ls = extract_structure(t, Options::mpi());
  testing::expect_structure_invariants(t, ls);
}

TEST_P(MpiAppSeeds, LassenMpiInvariants) {
  apps::LassenConfig cfg;
  cfg.iterations = 3;
  cfg.seed = GetParam();
  trace::Trace t = apps::run_lassen_mpi(cfg);
  LogicalStructure ls = extract_structure(t, Options::mpi());
  testing::expect_structure_invariants(t, ls);
}

INSTANTIATE_TEST_SUITE_P(Seeds, MpiAppSeeds,
                         ::testing::Values(1u, 2u, 31u, 555u));

TEST(PipelineProperty, DeterministicStructure) {
  apps::Jacobi2DConfig cfg;
  cfg.chares_x = 4;
  cfg.chares_y = 4;
  cfg.num_pes = 4;
  cfg.iterations = 2;
  trace::Trace t = apps::run_jacobi2d(cfg);
  LogicalStructure a = extract_structure(t, Options::charm());
  LogicalStructure b = extract_structure(t, Options::charm());
  EXPECT_EQ(a.global_step, b.global_step);
  EXPECT_EQ(a.phases.phase_of_event, b.phases.phase_of_event);
}

TEST(PipelineProperty, ReorderingNeverWidensStructure) {
  // The idealized replay should give a structure at most as wide (in max
  // step) as physical order for these regular apps.
  apps::Jacobi2DConfig cfg;
  cfg.chares_x = 8;
  cfg.chares_y = 8;
  cfg.num_pes = 8;
  cfg.iterations = 2;
  trace::Trace t = apps::run_jacobi2d(cfg);
  LogicalStructure reordered = extract_structure(t, Options::charm());
  LogicalStructure physical =
      extract_structure(t, Options::charm_no_reorder());
  EXPECT_LE(reordered.max_step, physical.max_step);
}

}  // namespace
}  // namespace logstruct::order
