/// End-to-end property tests: run the full pipeline over simulator traces
/// across seeds and configurations and assert the structural invariants
/// the paper's phase-DAG properties guarantee.

#include <gtest/gtest.h>

#include "apps/jacobi2d.hpp"
#include "apps/lassen.hpp"
#include "apps/lulesh.hpp"
#include "apps/mergetree.hpp"
#include "apps/nasbt.hpp"
#include "apps/pdes.hpp"
#include "order/stats.hpp"
#include "order/stepping.hpp"
#include "order_fixtures.hpp"

namespace logstruct::order {
namespace {

class JacobiSeeds : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(JacobiSeeds, InvariantsHold) {
  apps::Jacobi2DConfig cfg;
  cfg.chares_x = 4;
  cfg.chares_y = 4;
  cfg.num_pes = 4;
  cfg.iterations = 3;
  cfg.seed = GetParam();
  trace::Trace t = apps::run_jacobi2d(cfg);
  LogicalStructure ls = extract_structure(t, Options::charm());
  testing::expect_structure_invariants(t, ls);
  StructureStats s = compute_stats(t, ls);
  EXPECT_EQ(s.chare_step_violations, 0);
  EXPECT_GT(s.app_phases, 0);
  EXPECT_GT(s.runtime_phases, 0);
}

INSTANTIATE_TEST_SUITE_P(Seeds, JacobiSeeds,
                         ::testing::Values(1u, 2u, 3u, 17u, 99u, 12345u));

class JacobiNoReorderSeeds : public ::testing::TestWithParam<std::uint64_t> {
};

TEST_P(JacobiNoReorderSeeds, InvariantsHold) {
  apps::Jacobi2DConfig cfg;
  cfg.chares_x = 4;
  cfg.chares_y = 4;
  cfg.num_pes = 4;
  cfg.iterations = 2;
  cfg.seed = GetParam();
  trace::Trace t = apps::run_jacobi2d(cfg);
  LogicalStructure ls = extract_structure(t, Options::charm_no_reorder());
  testing::expect_structure_invariants(t, ls);
}

INSTANTIATE_TEST_SUITE_P(Seeds, JacobiNoReorderSeeds,
                         ::testing::Values(1u, 7u, 1234u));

class LuleshCharmSeeds : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(LuleshCharmSeeds, InvariantsHoldAllOptionSets) {
  apps::LuleshConfig cfg;
  cfg.iterations = 3;
  cfg.seed = GetParam();
  trace::Trace t = apps::run_lulesh_charm(cfg);
  for (const Options& opts :
       {Options::charm(), Options::charm_no_inference(),
        Options::charm_no_reorder()}) {
    LogicalStructure ls = extract_structure(t, opts);
    testing::expect_structure_invariants(t, ls);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, LuleshCharmSeeds,
                         ::testing::Values(1u, 5u, 42u, 777u));

class LassenGrids
    : public ::testing::TestWithParam<std::pair<int, int>> {};

TEST_P(LassenGrids, InvariantsHold) {
  apps::LassenConfig cfg;
  cfg.chares_x = GetParam().first;
  cfg.chares_y = GetParam().second;
  cfg.iterations = 5;
  trace::Trace t = apps::run_lassen_charm(cfg);
  LogicalStructure ls = extract_structure(t, Options::charm());
  testing::expect_structure_invariants(t, ls);
}

INSTANTIATE_TEST_SUITE_P(Grids, LassenGrids,
                         ::testing::Values(std::pair{4, 2}, std::pair{8, 8},
                                           std::pair{3, 3}));

TEST(PipelineProperty, PdesWithAndWithoutDetectorTracing) {
  for (bool traced : {false, true}) {
    apps::PdesConfig cfg;
    cfg.trace_detector_calls = traced;
    trace::Trace t = apps::run_pdes(cfg);
    LogicalStructure ls = extract_structure(t, Options::charm());
    testing::expect_structure_invariants(t, ls);
  }
}

class MpiAppSeeds : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(MpiAppSeeds, LuleshMpiInvariants) {
  apps::LuleshConfig cfg;
  cfg.iterations = 2;
  cfg.seed = GetParam();
  trace::Trace t = apps::run_lulesh_mpi(cfg);
  for (const Options& opts : {Options::mpi(), Options::mpi_baseline13()}) {
    LogicalStructure ls = extract_structure(t, opts);
    testing::expect_structure_invariants(t, ls);
  }
}

TEST_P(MpiAppSeeds, MergeTreeInvariants) {
  apps::MergeTreeConfig cfg;
  cfg.num_ranks = 32;
  cfg.seed = GetParam();
  trace::Trace t = apps::run_mergetree_mpi(cfg);
  for (const Options& opts : {Options::mpi(), Options::mpi_baseline13()}) {
    LogicalStructure ls = extract_structure(t, opts);
    testing::expect_structure_invariants(t, ls);
  }
}

TEST_P(MpiAppSeeds, NasBtInvariants) {
  apps::NasBtConfig cfg;
  cfg.seed = GetParam();
  trace::Trace t = apps::run_nasbt_mpi(cfg);
  LogicalStructure ls = extract_structure(t, Options::mpi());
  testing::expect_structure_invariants(t, ls);
}

TEST_P(MpiAppSeeds, LassenMpiInvariants) {
  apps::LassenConfig cfg;
  cfg.iterations = 3;
  cfg.seed = GetParam();
  trace::Trace t = apps::run_lassen_mpi(cfg);
  LogicalStructure ls = extract_structure(t, Options::mpi());
  testing::expect_structure_invariants(t, ls);
}

INSTANTIATE_TEST_SUITE_P(Seeds, MpiAppSeeds,
                         ::testing::Values(1u, 2u, 31u, 555u));

TEST(PipelineProperty, DeterministicStructure) {
  apps::Jacobi2DConfig cfg;
  cfg.chares_x = 4;
  cfg.chares_y = 4;
  cfg.num_pes = 4;
  cfg.iterations = 2;
  trace::Trace t = apps::run_jacobi2d(cfg);
  LogicalStructure a = extract_structure(t, Options::charm());
  LogicalStructure b = extract_structure(t, Options::charm());
  EXPECT_EQ(a.global_step, b.global_step);
  EXPECT_EQ(a.phases.phase_of_event, b.phases.phase_of_event);
}

/// Thread-count cross-check over extreme phase shapes. Each workload is
/// rebuilt and re-extracted at several thread counts (the process default
/// is overridden too, so the parallel trace freeze runs threaded) and the
/// result must equal the serial structure field for field:
///  - many tiny phases: lassen with many short iterations — dozens of
///    small phases, so the per-phase fan-out sees 1-2 events per task;
///  - one giant phase: a single-chare chain — all events in one phase, so
///    one pool task gets everything and the rest sit idle;
///  - empty trace: zero events/phases — every parallel_for sees n == 0.
TEST(PipelineProperty, ThreadedMatchesSerialAcrossPhaseShapes) {
  struct Shape {
    const char* name;
    trace::Trace (*make)();
    Options (*opts)();
  };
  const Shape shapes[] = {
      {"many_tiny_phases",
       [] {
         apps::LassenConfig cfg;
         cfg.chares_x = 3;
         cfg.chares_y = 3;
         cfg.iterations = 12;
         return apps::run_lassen_charm(cfg);
       },
       Options::charm},
      {"one_giant_phase",
       [] {
         // One chare sending to itself: a single chain with no runtime
         // events collapses into one phase covering the whole trace.
         trace::TraceBuilder tb;
         trace::ChareId c = tb.add_chare("solo");
         trace::EntryId e = tb.add_entry("step");
         trace::EventId prev = trace::kNone;
         for (int i = 0; i < 200; ++i) {
           trace::TimeNs t = i * 100;
           trace::BlockId b = tb.begin_block(c, 0, e, t);
           if (prev != trace::kNone) tb.add_recv(b, t, prev);
           prev = tb.add_send(b, t + 10);
           tb.end_block(b, t + 20);
         }
         trace::BlockId last = tb.begin_block(c, 0, e, 200 * 100);
         tb.add_recv(last, 200 * 100, prev);
         tb.end_block(last, 200 * 100 + 20);
         return tb.finish(1);
       },
       Options::charm},
      {"empty_trace",
       [] {
         trace::TraceBuilder tb;
         tb.add_chare("lonely");
         return tb.finish(1);
       },
       Options::charm},
  };
  for (const Shape& shape : shapes) {
    trace::Trace serial_trace = shape.make();
    LogicalStructure serial =
        extract_structure(serial_trace, shape.opts());
    testing::expect_structure_invariants(serial_trace, serial);
    for (int threads : {2, 3, 8}) {
      testing::ScopedDefaultParallelism scope(threads);
      trace::Trace t = shape.make();
      Options opts = shape.opts();
      opts.threads = threads;
      LogicalStructure ls = extract_structure(t, opts);
      testing::expect_structures_equal(serial, ls, shape.name);
    }
  }
}

TEST(PipelineProperty, ReorderingNeverWidensStructure) {
  // The idealized replay should give a structure at most as wide (in max
  // step) as physical order for these regular apps.
  apps::Jacobi2DConfig cfg;
  cfg.chares_x = 8;
  cfg.chares_y = 8;
  cfg.num_pes = 8;
  cfg.iterations = 2;
  trace::Trace t = apps::run_jacobi2d(cfg);
  LogicalStructure reordered = extract_structure(t, Options::charm());
  LogicalStructure physical =
      extract_structure(t, Options::charm_no_reorder());
  EXPECT_LE(reordered.max_step, physical.max_step);
}

}  // namespace
}  // namespace logstruct::order
