#pragma once

/// \file golden_fixtures.hpp
/// The 12 golden workloads and the structure fingerprint shared by the
/// golden-structure regression test, the storage and causality golden
/// matrices, and the fault-injection property tests: all must agree on
/// what "bit-identical extraction" means, so the hash, the workload
/// table, and the recorded expected values live here once. The app
/// makers and the hash are *compiled* once too — into the
/// ls_test_fixtures support library (golden_fixtures.cpp) — so the ten
/// including test translation units stop rebuilding the app headers.

#include <cstdint>

#include "order/stepping.hpp"
#include "trace/trace.hpp"
#include "util/thread_pool.hpp"

namespace logstruct::order::golden {

/// FNV-1a, 64-bit. Deterministic across platforms for our int sequences.
class Fnv {
 public:
  void mix(std::int64_t v) {
    auto u = static_cast<std::uint64_t>(v);
    for (int i = 0; i < 8; ++i) {
      h_ ^= (u >> (8 * i)) & 0xffu;
      h_ *= 1099511628211ULL;
    }
  }
  [[nodiscard]] std::uint64_t value() const { return h_; }

 private:
  std::uint64_t h_ = 14695981039346656037ULL;
};

/// Fingerprint of everything the paper's end product promises: the phase
/// DAG (nodes, runtime flags, leaps, edges), the per-event phase and step
/// assignment, and the final per-chare sequences.
std::uint64_t structure_hash(const trace::Trace& trace,
                             const LogicalStructure& ls);

struct Golden {
  const char* name;
  trace::Trace (*make)();
  Options (*opts)();
  std::uint64_t expected;
};

trace::Trace jacobi_small();
trace::Trace lulesh_charm_small();
trace::Trace lulesh_mpi_small();
trace::Trace lassen_charm_small();
trace::Trace lassen_mpi_small();
trace::Trace mergetree_small();
trace::Trace nasbt_small();
trace::Trace pdes_small();

/// Recorded on the pre-pass-manager pipeline; every refactor since must
/// reproduce them bit-identically (see golden_structure_test.cpp).
extern const Golden kGoldens[12];

/// RAII process-default parallelism override, restored on scope exit so
/// one test cannot leak its thread count into another.
struct ScopedDefaultParallelism {
  explicit ScopedDefaultParallelism(int n)
      : prev(util::default_parallelism()) {
    util::set_default_parallelism(n);
  }
  ~ScopedDefaultParallelism() { util::set_default_parallelism(prev); }
  int prev;
};

}  // namespace logstruct::order::golden
