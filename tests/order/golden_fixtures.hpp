#pragma once

/// \file golden_fixtures.hpp
/// The 12 golden workloads and the structure fingerprint shared by the
/// golden-structure regression test and the fault-injection property
/// tests: both must agree on what "bit-identical extraction" means, so
/// the hash, the workload table, and the recorded expected values live
/// here once.

#include <cstdint>

#include "apps/jacobi2d.hpp"
#include "apps/lassen.hpp"
#include "apps/lulesh.hpp"
#include "apps/mergetree.hpp"
#include "apps/nasbt.hpp"
#include "apps/pdes.hpp"
#include "order/stepping.hpp"
#include "trace/trace.hpp"
#include "util/thread_pool.hpp"

namespace logstruct::order::golden {

/// FNV-1a, 64-bit. Deterministic across platforms for our int sequences.
class Fnv {
 public:
  void mix(std::int64_t v) {
    auto u = static_cast<std::uint64_t>(v);
    for (int i = 0; i < 8; ++i) {
      h_ ^= (u >> (8 * i)) & 0xffu;
      h_ *= 1099511628211ULL;
    }
  }
  [[nodiscard]] std::uint64_t value() const { return h_; }

 private:
  std::uint64_t h_ = 14695981039346656037ULL;
};

/// Fingerprint of everything the paper's end product promises: the phase
/// DAG (nodes, runtime flags, leaps, edges), the per-event phase and step
/// assignment, and the final per-chare sequences.
inline std::uint64_t structure_hash(const trace::Trace& trace,
                                    const LogicalStructure& ls) {
  Fnv f;
  f.mix(trace.num_events());
  f.mix(ls.num_phases());
  for (std::int32_t p = 0; p < ls.num_phases(); ++p) {
    f.mix(ls.phases.runtime[static_cast<std::size_t>(p)] ? 1 : 0);
    f.mix(ls.phases.leap[static_cast<std::size_t>(p)]);
    f.mix(ls.phase_offset[static_cast<std::size_t>(p)]);
    f.mix(ls.phase_height[static_cast<std::size_t>(p)]);
    f.mix(static_cast<std::int64_t>(
        ls.phases.events[static_cast<std::size_t>(p)].size()));
  }
  for (auto [u, v] : ls.phases.dag.edges()) {
    f.mix(u);
    f.mix(v);
  }
  for (trace::EventId e = 0; e < trace.num_events(); ++e) {
    f.mix(ls.phases.phase_of_event[static_cast<std::size_t>(e)]);
    f.mix(ls.global_step[static_cast<std::size_t>(e)]);
  }
  for (const auto& seq : ls.chare_sequence) {
    f.mix(static_cast<std::int64_t>(seq.size()));
    for (trace::EventId e : seq) f.mix(e);
  }
  return f.value();
}

struct Golden {
  const char* name;
  trace::Trace (*make)();
  Options (*opts)();
  std::uint64_t expected;
};

inline trace::Trace jacobi_small() {
  apps::Jacobi2DConfig cfg;
  cfg.chares_x = 4;
  cfg.chares_y = 4;
  cfg.num_pes = 4;
  cfg.iterations = 2;
  return apps::run_jacobi2d(cfg);
}

inline trace::Trace lulesh_charm_small() {
  apps::LuleshConfig cfg;
  cfg.iterations = 2;
  return apps::run_lulesh_charm(cfg);
}

inline trace::Trace lulesh_mpi_small() {
  apps::LuleshConfig cfg;
  cfg.iterations = 2;
  return apps::run_lulesh_mpi(cfg);
}

inline trace::Trace lassen_charm_small() {
  apps::LassenConfig cfg;
  cfg.iterations = 4;
  return apps::run_lassen_charm(cfg);
}

inline trace::Trace lassen_mpi_small() {
  apps::LassenConfig cfg;
  cfg.iterations = 4;
  return apps::run_lassen_mpi(cfg);
}

inline trace::Trace mergetree_small() {
  apps::MergeTreeConfig cfg;
  cfg.num_ranks = 32;
  return apps::run_mergetree_mpi(cfg);
}

inline trace::Trace nasbt_small() { return apps::run_nasbt_mpi({}); }

inline trace::Trace pdes_small() { return apps::run_pdes({}); }

/// Recorded on the pre-pass-manager pipeline; every refactor since must
/// reproduce them bit-identically (see golden_structure_test.cpp).
inline constexpr Golden kGoldens[] = {
    {"jacobi2d/charm", jacobi_small, Options::charm, 0x923529b3b2bf2faaULL},
    {"jacobi2d/charm_no_reorder", jacobi_small, Options::charm_no_reorder,
     0x720980251dc78002ULL},
    {"lulesh/charm", lulesh_charm_small, Options::charm,
     0x50890b04041fb3d3ULL},
    {"lulesh/charm_no_inference(fig17)", lulesh_charm_small,
     Options::charm_no_inference, 0x402c6f88d8281526ULL},
    {"lulesh/mpi", lulesh_mpi_small, Options::mpi, 0x32ef90bfc07e662aULL},
    {"lulesh/mpi_baseline13", lulesh_mpi_small, Options::mpi_baseline13,
     0xf2aec2e63c903506ULL},
    {"lassen/charm", lassen_charm_small, Options::charm,
     0x9005e32ef50621a1ULL},
    {"lassen/mpi", lassen_mpi_small, Options::mpi, 0xccaf57915f2316d4ULL},
    {"mergetree/mpi", mergetree_small, Options::mpi, 0x096fc78620e84c5fULL},
    {"mergetree/mpi_baseline13", mergetree_small, Options::mpi_baseline13,
     0x0bb3997dfb0e7528ULL},
    {"nasbt/mpi", nasbt_small, Options::mpi, 0x76cd78df757d3f85ULL},
    {"pdes/charm", pdes_small, Options::charm, 0x960925480050563cULL},
};

/// RAII process-default parallelism override, restored on scope exit so
/// one test cannot leak its thread count into another.
struct ScopedDefaultParallelism {
  explicit ScopedDefaultParallelism(int n)
      : prev(util::default_parallelism()) {
    util::set_default_parallelism(n);
  }
  ~ScopedDefaultParallelism() { util::set_default_parallelism(prev); }
  int prev;
};

}  // namespace logstruct::order::golden
