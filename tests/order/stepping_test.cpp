#include "order/stepping.hpp"

#include <gtest/gtest.h>

#include "order_fixtures.hpp"
#include "trace/builder.hpp"

namespace logstruct::order {
namespace {

TEST(Stepping, RingStructureInvariants) {
  auto ring = testing::make_ring_trace(6);
  LogicalStructure ls = extract_structure(ring.trace, Options::charm());
  testing::expect_structure_invariants(ring.trace, ls);
}

TEST(Stepping, SimpleChainSteps) {
  // a sends to b; b sends to c. Steps: send=0, recv=1, send=2, recv=3.
  trace::TraceBuilder tb;
  trace::ChareId a = tb.add_chare("a");
  trace::ChareId b = tb.add_chare("b");
  trace::ChareId c = tb.add_chare("c");
  trace::EntryId e = tb.add_entry("go");
  trace::BlockId ba = tb.begin_block(a, 0, e, 0);
  trace::EventId s1 = tb.add_send(ba, 10);
  tb.end_block(ba, 20);
  trace::BlockId bb = tb.begin_block(b, 1, e, 100);
  trace::EventId r1 = tb.add_recv(bb, 100, s1);
  trace::EventId s2 = tb.add_send(bb, 110);
  tb.end_block(bb, 120);
  trace::BlockId bc = tb.begin_block(c, 0, e, 200);
  trace::EventId r2 = tb.add_recv(bc, 200, s2);
  tb.end_block(bc, 210);
  trace::Trace t = tb.finish(2);

  LogicalStructure ls = extract_structure(t, Options::charm());
  EXPECT_EQ(ls.global_step[static_cast<std::size_t>(s1)], 0);
  EXPECT_EQ(ls.global_step[static_cast<std::size_t>(r1)], 1);
  EXPECT_EQ(ls.global_step[static_cast<std::size_t>(s2)], 2);
  EXPECT_EQ(ls.global_step[static_cast<std::size_t>(r2)], 3);
  EXPECT_EQ(ls.max_step, 3);
}

TEST(Stepping, ParallelSendsShareStepZero) {
  // Two disjoint pairs exchanging at the same time: both sends at step 0.
  trace::TraceBuilder tb;
  trace::EntryId e = tb.add_entry("go");
  std::vector<trace::EventId> sends;
  for (int i = 0; i < 2; ++i) {
    trace::ChareId src = tb.add_chare("src" + std::to_string(i));
    trace::ChareId dst = tb.add_chare("dst" + std::to_string(i));
    trace::BlockId bs = tb.begin_block(src, i, e, 0);
    trace::EventId s = tb.add_send(bs, 10);
    tb.end_block(bs, 20);
    trace::BlockId bd = tb.begin_block(dst, i, e, 100);
    tb.add_recv(bd, 100 + i, s);
    tb.end_block(bd, 120 + i);
    sends.push_back(s);
  }
  trace::Trace t = tb.finish(2);
  LogicalStructure ls = extract_structure(t, Options::charm());
  // The pairs have no dependency between them; whether they land in one
  // or two phases, each send is phase-initial.
  EXPECT_EQ(ls.local_step[static_cast<std::size_t>(sends[0])], 0);
  EXPECT_EQ(ls.local_step[static_cast<std::size_t>(sends[1])], 0);
}

TEST(Stepping, PhaseOffsetsSequencePhases) {
  // Two rounds between the same chares (source-order inferred sequence):
  // global steps of round 2 start after round 1 ends.
  trace::TraceBuilder tb;
  trace::ChareId a = tb.add_chare("a");
  trace::ChareId b = tb.add_chare("b");
  trace::EntryId e = tb.add_entry("go");
  trace::BlockId ba1 = tb.begin_block(a, 0, e, 0);
  trace::EventId s1 = tb.add_send(ba1, 10);
  tb.end_block(ba1, 20);
  trace::BlockId bb1 = tb.begin_block(b, 1, e, 100);
  trace::EventId r1 = tb.add_recv(bb1, 100, s1);
  tb.end_block(bb1, 110);
  trace::BlockId ba2 = tb.begin_block(a, 0, e, 500);
  trace::EventId s2 = tb.add_send(ba2, 510);
  tb.end_block(ba2, 520);
  trace::BlockId bb2 = tb.begin_block(b, 1, e, 600);
  trace::EventId r2 = tb.add_recv(bb2, 600, s2);
  tb.end_block(bb2, 610);
  trace::Trace t = tb.finish(2);

  LogicalStructure ls = extract_structure(t, Options::charm());
  EXPECT_EQ(ls.global_step[static_cast<std::size_t>(s1)], 0);
  EXPECT_EQ(ls.global_step[static_cast<std::size_t>(r1)], 1);
  EXPECT_EQ(ls.global_step[static_cast<std::size_t>(s2)], 2);
  EXPECT_EQ(ls.global_step[static_cast<std::size_t>(r2)], 3);
}

// --- the w clock / reordering (paper Fig. 7) ------------------------------

/// Gray chare receives from blue (chare id low) and white (chare id high)
/// at the same w; the physical arrival order is white first. Reordering
/// must place blue's sink before white's (tie broken by source chare id).
TEST(Stepping, TieBrokenBySourceChareId) {
  trace::TraceBuilder tb;
  trace::ChareId blue = tb.add_chare("blue");    // id 0
  trace::ChareId white = tb.add_chare("white");  // id 1
  trace::ChareId gray = tb.add_chare("gray");    // id 2
  trace::EntryId e = tb.add_entry("go");

  trace::BlockId b_blue = tb.begin_block(blue, 0, e, 0);
  trace::EventId s_blue = tb.add_send(b_blue, 10);
  tb.end_block(b_blue, 20);
  trace::BlockId b_white = tb.begin_block(white, 1, e, 0);
  trace::EventId s_white = tb.add_send(b_white, 10);
  tb.end_block(b_white, 20);

  // Physical arrival: white's message first.
  trace::BlockId g1 = tb.begin_block(gray, 2, e, 100);
  trace::EventId r_white = tb.add_recv(g1, 100, s_white);
  tb.end_block(g1, 110);
  trace::BlockId g2 = tb.begin_block(gray, 2, e, 120);
  trace::EventId r_blue = tb.add_recv(g2, 120, s_blue);
  tb.end_block(g2, 130);
  trace::Trace t = tb.finish(3);

  LogicalStructure reordered = extract_structure(t, Options::charm());
  // Both receives have w = 1; source chare ids order blue before white.
  EXPECT_LT(reordered.pos_in_chare[static_cast<std::size_t>(r_blue)],
            reordered.pos_in_chare[static_cast<std::size_t>(r_white)]);

  LogicalStructure physical = extract_structure(t, Options::charm_no_reorder());
  EXPECT_LT(physical.pos_in_chare[static_cast<std::size_t>(r_white)],
            physical.pos_in_chare[static_cast<std::size_t>(r_blue)]);
}

/// Reordering undoes scheduling noise: two waves of messages to one chare
/// arrive interleaved; replay order groups them by wave.
TEST(Stepping, ReorderGroupsByWave) {
  trace::TraceBuilder tb;
  trace::ChareId src = tb.add_chare("src");
  trace::ChareId hub = tb.add_chare("hub");
  trace::EntryId e = tb.add_entry("go");

  // src sends m1 then (after a long pause within the same serial block
  // boundary rules) m2 from a second block; m2 arrives BEFORE m1.
  trace::BlockId b1 = tb.begin_block(src, 0, e, 0);
  trace::EventId s1 = tb.add_send(b1, 10);
  trace::EventId s2 = tb.add_send(b1, 20);
  tb.end_block(b1, 30);
  trace::BlockId h1 = tb.begin_block(hub, 1, e, 100);
  trace::EventId r2 = tb.add_recv(h1, 100, s2);  // second send first!
  tb.end_block(h1, 110);
  trace::BlockId h2 = tb.begin_block(hub, 1, e, 120);
  trace::EventId r1 = tb.add_recv(h2, 120, s1);
  tb.end_block(h2, 130);
  trace::Trace t = tb.finish(2);

  LogicalStructure ls = extract_structure(t, Options::charm());
  // w(s1)=0 < w(s2)=1, so r1 (w=1) replays before r2 (w=2).
  EXPECT_LT(ls.w[static_cast<std::size_t>(s1)],
            ls.w[static_cast<std::size_t>(s2)]);
  EXPECT_LT(ls.pos_in_chare[static_cast<std::size_t>(r1)],
            ls.pos_in_chare[static_cast<std::size_t>(r2)]);
  testing::expect_structure_invariants(t, ls);
}

// --- MPI-mode reordering (paper Fig. 9) ------------------------------------

/// The Figure 9 scenario: a process has receives with w {3, 6} before a
/// send and a receive with w {4} after it in physical time. The send gets
/// w = 7 and the late receive (4) reorders to before the send; receives
/// physically before the send stay before it.
TEST(Stepping, MpiSendPinnedAfterPriorReceives) {
  trace::TraceBuilder tb;
  trace::EntryId es = tb.add_entry("MPI_Send");
  trace::EntryId er = tb.add_entry("MPI_Recv");

  // Build three source ranks that send chains of various depths to rank 3,
  // so the receives on rank 3 carry distinct w values.
  trace::ChareId r0 = tb.add_chare("rank0");
  trace::ChareId r1 = tb.add_chare("rank1");
  trace::ChareId r3 = tb.add_chare("rank3");

  // Chains on rank0: s->s->s->s gives w values 0,1,2,3 for its sends.
  trace::BlockId b;
  std::vector<trace::EventId> r0_sends;
  for (int i = 0; i < 4; ++i) {
    b = tb.begin_block(r0, 0, es, i * 10);
    r0_sends.push_back(tb.add_send(b, i * 10));
    tb.end_block(b, i * 10 + 5);
  }
  std::vector<trace::EventId> r1_sends;
  for (int i = 0; i < 2; ++i) {
    b = tb.begin_block(r1, 1, es, i * 10);
    r1_sends.push_back(tb.add_send(b, i * 10));
    tb.end_block(b, i * 10 + 5);
  }

  // rank3 physical order: recv(r0#3), recv(r1#1), send(to r1), recv(r1#0).
  b = tb.begin_block(r3, 3, er, 100);
  trace::EventId ra = tb.add_recv(b, 100, r0_sends[3]);
  tb.end_block(b, 105);
  b = tb.begin_block(r3, 3, er, 110);
  trace::EventId rb = tb.add_recv(b, 110, r1_sends[1]);
  tb.end_block(b, 115);
  b = tb.begin_block(r3, 3, es, 120);
  trace::EventId sc = tb.add_send(b, 120);
  tb.end_block(b, 125);
  b = tb.begin_block(r3, 3, er, 130);
  trace::EventId rd = tb.add_recv(b, 130, r1_sends[0]);
  tb.end_block(b, 135);
  // Match sc somewhere so it is not dangling.
  b = tb.begin_block(r1, 1, er, 200);
  tb.add_recv(b, 200, sc);
  tb.end_block(b, 205);

  // Consume r0's dangling sends on rank1 so every send is matched.
  for (int i = 0; i < 3; ++i) {
    b = tb.begin_block(r1, 1, er, 300 + i * 10);
    tb.add_recv(b, 300 + i * 10, r0_sends[static_cast<std::size_t>(i)]);
    tb.end_block(b, 300 + i * 10 + 5);
  }
  trace::Trace t = tb.finish(4);

  LogicalStructure ls = extract_structure(t, Options::mpi());
  // The send is pinned after every receive that physically preceded it —
  // under the relaxed receive-order edges this holds structurally: the
  // send's phase succeeds the receives' phases, so its global step is
  // strictly larger.
  EXPECT_GT(ls.global_step[static_cast<std::size_t>(sc)],
            ls.global_step[static_cast<std::size_t>(ra)]);
  EXPECT_GT(ls.global_step[static_cast<std::size_t>(sc)],
            ls.global_step[static_cast<std::size_t>(rb)]);
  // The physically-later receive rd has a small w and reorders to before
  // the send; ra and rb stay before the send.
  EXPECT_LT(ls.pos_in_chare[static_cast<std::size_t>(rd)],
            ls.pos_in_chare[static_cast<std::size_t>(sc)]);
  EXPECT_LT(ls.pos_in_chare[static_cast<std::size_t>(ra)],
            ls.pos_in_chare[static_cast<std::size_t>(sc)]);
  EXPECT_LT(ls.pos_in_chare[static_cast<std::size_t>(rb)],
            ls.pos_in_chare[static_cast<std::size_t>(sc)]);
}

TEST(Stepping, NoReorderKeepsPhysicalOrderPerChare) {
  auto ring = testing::make_ring_trace(5, /*stagger=*/77);
  LogicalStructure ls =
      extract_structure(ring.trace, Options::charm_no_reorder());
  testing::expect_structure_invariants(ring.trace, ls);
  for (const auto& seq : ls.chare_sequence) {
    for (std::size_t i = 1; i < seq.size(); ++i) {
      EXPECT_LE(ring.trace.event(seq[i - 1]).time,
                ring.trace.event(seq[i]).time);
    }
  }
}

TEST(Stepping, UntracedRecvIsPhaseInitial) {
  trace::TraceBuilder tb;
  trace::ChareId a = tb.add_chare("a");
  trace::EntryId e = tb.add_entry("go");
  trace::BlockId b = tb.begin_block(a, 0, e, 0);
  trace::EventId r = tb.add_recv(b, 0, trace::kNone);
  trace::EventId s = tb.add_send(b, 10);
  tb.end_block(b, 20);
  trace::ChareId c = tb.add_chare("c");
  trace::BlockId bc = tb.begin_block(c, 1, e, 100);
  tb.add_recv(bc, 100, s);
  tb.end_block(bc, 110);
  trace::Trace t = tb.finish(2);

  LogicalStructure ls = extract_structure(t, Options::charm());
  EXPECT_EQ(ls.local_step[static_cast<std::size_t>(r)], 0);
  EXPECT_EQ(ls.w[static_cast<std::size_t>(r)], 0);
}

}  // namespace
}  // namespace logstruct::order
