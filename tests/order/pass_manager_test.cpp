/// PassManager + OrderContext unit tests: registration order, disabled
/// passes, record bookkeeping, per-pass invariant checking against real
/// app traces (including the ablation option sets), and the context's
/// epoch-keyed caches.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "apps/jacobi2d.hpp"
#include "apps/lulesh.hpp"
#include "obs/memstats.hpp"
#include "order/context.hpp"
#include "order/pass_manager.hpp"
#include "order/phases.hpp"
#include "order/stepping.hpp"

namespace logstruct::order {
namespace {

trace::Trace small_jacobi() {
  apps::Jacobi2DConfig cfg;
  cfg.chares_x = 3;
  cfg.chares_y = 3;
  cfg.num_pes = 3;
  cfg.iterations = 2;
  return apps::run_jacobi2d(cfg);
}

TEST(PassManager, RunsInRegistrationOrderAndRecords) {
  trace::Trace t = small_jacobi();
  OrderContext ctx(t, Options::charm());

  std::vector<std::string> ran;
  PassManager pm;
  pm.add({.name = "a", .run = [&](OrderContext&) { ran.push_back("a"); }});
  pm.add({.name = "skipped",
          .run = [&](OrderContext&) { ran.push_back("skipped"); },
          .enabled = false});
  pm.add({.name = "b", .run = [&](OrderContext&) { ran.push_back("b"); }});
  pm.run(ctx);

  EXPECT_EQ(ran, (std::vector<std::string>{"a", "b"}));
  ASSERT_EQ(pm.records().size(), 3u);
  EXPECT_EQ(pm.records()[0].name, "a");
  EXPECT_TRUE(pm.records()[0].ran);
  EXPECT_EQ(pm.records()[1].name, "skipped");
  EXPECT_FALSE(pm.records()[1].ran);
  EXPECT_EQ(pm.records()[2].name, "b");
  for (const PassRecord& r : pm.records()) EXPECT_GE(r.seconds, 0.0);
}

TEST(PassManager, RecordsPartitionCountOncePgExists) {
  trace::Trace t = small_jacobi();
  Options opts = Options::charm();
  OrderContext ctx(t, opts);
  run_partition_pipeline(ctx, nullptr, nullptr);
  ASSERT_TRUE(ctx.has_pg());
  EXPECT_GT(ctx.phases.num_phases(), 0);
}

TEST(PassManager, PartitionRecordsCoverEveryRegisteredPass) {
  trace::Trace t = small_jacobi();
  std::vector<PassRecord> records;
  PhaseResult phases = find_phases(t, Options::charm().partition, nullptr,
                                   &records);
  EXPECT_GT(phases.num_phases(), 0);
  const std::vector<std::string> expected = {
      "initial",          "dependency_merge",      "repair",
      "neighbor_serial",  "infer_source_order",    "enforce_leap_property",
      "enforce_chare_paths", "finalize"};
  ASSERT_EQ(records.size(), expected.size());
  for (std::size_t i = 0; i < expected.size(); ++i) {
    EXPECT_EQ(records[i].name, expected[i]);
    EXPECT_TRUE(records[i].ran) << expected[i];
    EXPECT_GE(records[i].alloc_bytes, 0) << expected[i];
  }
  // With the counting operator new linked, the initial partition pass
  // builds the whole PartitionGraph and must show real allocation.
  if (obs::alloc_hook_active()) {
    EXPECT_GT(records[0].alloc_bytes, 0);
  }
}

TEST(PassManager, DisabledPassesStillRecordedUnderAblations) {
  trace::Trace t = small_jacobi();
  std::vector<PassRecord> records;
  (void)find_phases(t, Options::mpi_baseline13().partition, nullptr,
                    &records);
  bool saw_disabled = false;
  for (const PassRecord& r : records)
    if (!r.ran) saw_disabled = true;
  EXPECT_TRUE(saw_disabled)
      << "mpi_baseline13 must express ablations as disabled passes";
}

/// The debug invariant checker (DAG-ness, event coverage, leap property,
/// chare paths after each pass) must pass on real traces — including the
/// ablation option sets — and not change the result.
TEST(PassManager, InvariantCheckedRunMatchesPlainRun) {
  struct Case {
    const char* name;
    Options opts;
  };
  const Case cases[] = {
      {"charm", Options::charm()},
      {"charm_no_inference", Options::charm_no_inference()},
      {"mpi_baseline13", Options::mpi_baseline13()},
  };
  trace::Trace t = small_jacobi();
  for (const Case& c : cases) {
    LogicalStructure plain = extract_structure(t, c.opts);
    Options checked = c.opts;
    checked.partition.check_passes = true;
    LogicalStructure verified = extract_structure(t, checked);
    EXPECT_EQ(plain.num_phases(), verified.num_phases()) << c.name;
    EXPECT_EQ(plain.global_step, verified.global_step) << c.name;
  }
}

TEST(PassManager, InvariantCheckedRunOnLulesh) {
  apps::LuleshConfig cfg;
  cfg.iterations = 2;
  trace::Trace t = apps::run_lulesh_charm(cfg);
  Options opts = Options::charm();
  opts.partition.check_passes = true;
  LogicalStructure ls = extract_structure(t, opts);
  EXPECT_GT(ls.num_phases(), 0);
}

TEST(OrderContext, LeapCacheInvalidatesOnEpoch) {
  trace::Trace t = small_jacobi();
  OrderContext ctx(t, Options::charm());
  run_partition_pipeline(ctx, nullptr, nullptr);

  const auto& first = ctx.leaps();
  ASSERT_EQ(first.size(),
            static_cast<std::size_t>(ctx.pg().num_partitions()));
  // Same epoch: the cached vector is returned (same object, same values).
  EXPECT_EQ(&ctx.leaps(), &first);

  std::uint64_t epoch = ctx.pg().epoch();
  // A structural mutation moves the epoch; the cache must recompute and
  // still agree with a fresh leap computation.
  if (ctx.pg().num_partitions() >= 2) {
    std::vector<std::pair<PartId, PartId>> extra = {{0, 1}};
    ctx.pg().add_edges_bulk(extra);
    EXPECT_GT(ctx.pg().epoch(), epoch);
    const auto& after = ctx.leaps();
    EXPECT_EQ(after.size(),
              static_cast<std::size_t>(ctx.pg().num_partitions()));
  }
}

TEST(OrderContext, UnitsComputedOncePerFlavor) {
  trace::Trace t = small_jacobi();
  OrderContext ctx(t, Options::charm());
  const BlockUnits& raw = ctx.units(false);
  const BlockUnits& absorbed = ctx.units(true);
  EXPECT_EQ(&ctx.units(false), &raw);
  EXPECT_EQ(&ctx.units(true), &absorbed);
  EXPECT_EQ(raw.unit_of_event.size(),
            static_cast<std::size_t>(t.num_events()));
}

TEST(OrderContext, ScratchBuffersComeBackCleared) {
  trace::Trace t = small_jacobi();
  OrderContext ctx(t, Options::charm());
  auto& pairs = ctx.scratch_pairs();
  pairs.push_back({0, 1});
  EXPECT_TRUE(ctx.scratch_pairs().empty());
  auto& edges = ctx.scratch_edges();
  edges.push_back({2, 3});
  EXPECT_TRUE(ctx.scratch_edges().empty());
  // Distinct buffers: holding both at once is allowed.
  EXPECT_NE(&ctx.scratch_pairs(), &ctx.scratch_edges());
}

}  // namespace
}  // namespace logstruct::order
