#pragma once

/// \file program.hpp
/// Per-rank operation lists for the MPI-model simulator.
///
/// The paper's MPI traces (LULESH, LASSEN, merge tree, NAS BT) are
/// communication skeletons: fixed sequences of sends, receives, collectives
/// and compute spans per rank. A Program captures exactly that; the
/// simulator (mpisim.hpp) replays it with blocking semantics and a
/// LogP-style cost model.

#include <cstdint>
#include <span>
#include <vector>

#include "trace/ids.hpp"

namespace logstruct::sim::mpi {

struct Op {
  enum class Kind : std::uint8_t { Send, Recv, Allreduce, Compute };
  Kind kind = Kind::Compute;
  std::int32_t peer = -1;        ///< Send: destination; Recv: source
  std::int32_t tag = 0;          ///< Send/Recv matching tag
  std::int64_t bytes = 64;       ///< Send payload size (cost model)
  trace::TimeNs duration = 0;    ///< Compute span
};

class Program {
 public:
  explicit Program(std::int32_t num_ranks);

  void send(std::int32_t rank, std::int32_t dst, std::int32_t tag,
            std::int64_t bytes = 64);
  void recv(std::int32_t rank, std::int32_t src, std::int32_t tag);
  /// Collective: the k-th allreduce call on each rank forms one operation;
  /// every rank must call it the same number of times.
  void allreduce(std::int32_t rank);

  /// Append, for EVERY rank, the point-to-point ops of a tree-based
  /// allreduce (binary reduce to rank 0, then broadcast back) using tags
  /// [tag, tag+1]. The paper abstracts collectives into single calls
  /// (§7.1); this is the un-abstracted alternative, exposing the
  /// runtime-internal dependencies as ordinary messages.
  void tree_allreduce(std::int32_t tag, std::int64_t bytes = 64);
  void compute(std::int32_t rank, trace::TimeNs duration);

  [[nodiscard]] std::int32_t num_ranks() const {
    return static_cast<std::int32_t>(ops_.size());
  }
  [[nodiscard]] std::span<const Op> ops(std::int32_t rank) const {
    return ops_[static_cast<std::size_t>(rank)];
  }
  [[nodiscard]] std::size_t total_ops() const;

 private:
  Op& push(std::int32_t rank);

  std::vector<std::vector<Op>> ops_;
};

}  // namespace logstruct::sim::mpi
