#include "sim/mpi/mpisim.hpp"

#include <deque>
#include <map>
#include <string>
#include <vector>

#include "obs/obs.hpp"
#include "trace/builder.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"

namespace logstruct::sim::mpi {

namespace {

struct PendingSend {
  trace::TimeNs arrival;
  trace::EventId event;
};

struct AllreduceGroup {
  std::vector<trace::TimeNs> entry;   ///< per-rank entry clock
  std::vector<bool> entered;
  std::int32_t entered_count = 0;
};

}  // namespace

trace::Trace simulate(const Program& program, const MpiConfig& cfg) {
  const std::int32_t n = program.num_ranks();
  OBS_SPAN(span, "sim/mpi/run");
  span.attr("ranks", n);
  span.attr("ops", static_cast<std::int64_t>(program.total_ops()));
  util::Rng rng(cfg.seed);
  trace::TraceBuilder tb;

  trace::ArrayId procs_array = tb.add_array("ranks");
  std::vector<trace::ChareId> rank_chare;
  rank_chare.reserve(static_cast<std::size_t>(n));
  for (std::int32_t r = 0; r < n; ++r) {
    rank_chare.push_back(tb.add_chare("rank[" + std::to_string(r) + "]",
                                      procs_array, r, r));
  }
  trace::EntryId e_send = tb.add_entry("MPI_Send");
  trace::EntryId e_recv = tb.add_entry("MPI_Recv");
  trace::EntryId e_allreduce = tb.add_entry("MPI_Allreduce");

  std::vector<std::size_t> pc(static_cast<std::size_t>(n), 0);
  std::vector<trace::TimeNs> clock(static_cast<std::size_t>(n), 0);

  // FIFO of in-flight messages per (src, dst, tag).
  std::map<std::tuple<std::int32_t, std::int32_t, std::int32_t>,
           std::deque<PendingSend>>
      channels;

  // Allreduce instances by arrival order per rank.
  std::vector<std::int32_t> coll_index(static_cast<std::size_t>(n), 0);
  std::vector<AllreduceGroup> groups;

  auto group_for = [&](std::int32_t k) -> AllreduceGroup& {
    while (static_cast<std::size_t>(k) >= groups.size()) {
      AllreduceGroup g;
      g.entry.assign(static_cast<std::size_t>(n), 0);
      g.entered.assign(static_cast<std::size_t>(n), false);
      groups.push_back(std::move(g));
    }
    return groups[static_cast<std::size_t>(k)];
  };

  std::size_t remaining = program.total_ops();
  bool progress = true;
  while (remaining > 0) {
    LS_CHECK_MSG(progress, "MPI program deadlocked (unmatched recv or "
                           "mismatched collective counts)");
    progress = false;

    for (std::int32_t r = 0; r < n; ++r) {
      auto ops = program.ops(r);
      while (pc[static_cast<std::size_t>(r)] < ops.size()) {
        const Op& op = ops[pc[static_cast<std::size_t>(r)]];
        trace::TimeNs& t = clock[static_cast<std::size_t>(r)];

        if (op.kind == Op::Kind::Compute) {
          t += op.duration;
        } else if (op.kind == Op::Kind::Send) {
          trace::BlockId b = tb.begin_block(rank_chare[
              static_cast<std::size_t>(r)], r, e_send, t);
          trace::EventId s = tb.add_send(b, t);
          tb.end_block(b, t + cfg.op_overhead_ns);
          trace::TimeNs arrival =
              t + cfg.base_latency_ns + op.bytes * cfg.per_byte_ns +
              static_cast<trace::TimeNs>(rng.uniform(
                  static_cast<std::uint64_t>(
                      std::max<std::int64_t>(cfg.jitter_ns, 1))));
          channels[{r, op.peer, op.tag}].push_back({arrival, s});
          t += cfg.op_overhead_ns;
          OBS_COUNTER_INC("sim/mpi/messages_sent");
        } else if (op.kind == Op::Kind::Recv) {
          auto it = channels.find({op.peer, r, op.tag});
          if (it == channels.end() || it->second.empty()) break;  // blocked
          PendingSend msg = it->second.front();
          it->second.pop_front();
          trace::TimeNs ready = std::max(t, msg.arrival);
          if (cfg.record_recv_wait_as_idle && ready > t)
            tb.add_idle(r, t, ready);
          trace::BlockId b = tb.begin_block(rank_chare[
              static_cast<std::size_t>(r)], r, e_recv, ready);
          tb.add_recv(b, ready, msg.event);
          tb.end_block(b, ready + cfg.op_overhead_ns);
          t = ready + cfg.op_overhead_ns;
          OBS_COUNTER_INC("sim/mpi/messages_received");
        } else {  // Allreduce
          std::int32_t k = coll_index[static_cast<std::size_t>(r)];
          AllreduceGroup& g = group_for(k);
          if (!g.entered[static_cast<std::size_t>(r)]) {
            g.entered[static_cast<std::size_t>(r)] = true;
            g.entry[static_cast<std::size_t>(r)] = t;
            ++g.entered_count;
          }
          if (g.entered_count < n) break;  // wait for the others

          // Everyone arrived: complete the collective for all ranks.
          trace::TimeNs last = 0;
          for (trace::TimeNs e : g.entry) last = std::max(last, e);
          trace::TimeNs done = last + cfg.collective_cost_ns;
          trace::CollectiveId coll = tb.begin_collective();
          OBS_COUNTER_INC("sim/mpi/collectives");
          for (std::int32_t q = 0; q < n; ++q) {
            trace::TimeNs entry_q = g.entry[static_cast<std::size_t>(q)];
            trace::BlockId b = tb.begin_block(
                rank_chare[static_cast<std::size_t>(q)], q, e_allreduce,
                entry_q);
            tb.add_collective_send(coll, b, entry_q);
            tb.add_collective_recv(coll, b, done);
            tb.end_block(b, done);
            clock[static_cast<std::size_t>(q)] = done;
            ++coll_index[static_cast<std::size_t>(q)];
            // Every other rank was necessarily parked on this allreduce;
            // advance their program counters past it.
            if (q != r) {
              LS_CHECK_MSG(pc[static_cast<std::size_t>(q)] <
                                   program.ops(q).size() &&
                               program.ops(q)[pc[static_cast<std::size_t>(q)]]
                                       .kind == Op::Kind::Allreduce,
                           "collective completion out of step");
              ++pc[static_cast<std::size_t>(q)];
            }
          }
        }

        ++pc[static_cast<std::size_t>(r)];
        --remaining;
        if (op.kind == Op::Kind::Allreduce) {
          // The other n-1 ranks' allreduce ops completed too.
          remaining -= static_cast<std::size_t>(n - 1);
        }
        progress = true;
      }
    }
  }

  return tb.finish(n);
}

}  // namespace logstruct::sim::mpi
