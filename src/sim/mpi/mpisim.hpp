#pragma once

/// \file mpisim.hpp
/// Timed blocking replay of an MPI Program into a Trace.
///
/// Trace shape matches the message-passing model of Isaacs et al. [13] as
/// described in the paper (§3.2.1, §3.4): every communication call is its
/// own serial block holding a single dependency event; per-process physical
/// order carries the implicit happened-before; collectives are abstracted
/// into single calls (one block per rank with an entering Send and a
/// leaving Recv, matched through trace::Collective).

#include <cstdint>

#include "sim/mpi/program.hpp"
#include "trace/trace.hpp"

namespace logstruct::sim::mpi {

struct MpiConfig {
  std::uint64_t seed = 1;
  std::int64_t base_latency_ns = 2000;
  std::int64_t per_byte_ns = 1;
  std::int64_t jitter_ns = 500;        ///< uniform [0, jitter) per message
  std::int64_t op_overhead_ns = 100;   ///< block length of a send/recv call
  std::int64_t collective_cost_ns = 3000;  ///< allreduce fan-in+fan-out cost
  bool record_recv_wait_as_idle = true;
};

/// Replay the program. LS_CHECK-fails on deadlock (unmatched recv /
/// mismatched collective counts — a bug in the generator, not input data).
trace::Trace simulate(const Program& program, const MpiConfig& cfg);

}  // namespace logstruct::sim::mpi
