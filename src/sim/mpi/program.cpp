#include "sim/mpi/program.hpp"

#include "util/check.hpp"

namespace logstruct::sim::mpi {

Program::Program(std::int32_t num_ranks)
    : ops_(static_cast<std::size_t>(num_ranks)) {
  LS_CHECK(num_ranks > 0);
}

Op& Program::push(std::int32_t rank) {
  LS_CHECK(rank >= 0 && static_cast<std::size_t>(rank) < ops_.size());
  ops_[static_cast<std::size_t>(rank)].emplace_back();
  return ops_[static_cast<std::size_t>(rank)].back();
}

void Program::send(std::int32_t rank, std::int32_t dst, std::int32_t tag,
                   std::int64_t bytes) {
  LS_CHECK(dst >= 0 && static_cast<std::size_t>(dst) < ops_.size());
  LS_CHECK_MSG(dst != rank, "self-send not supported in the MPI model");
  Op& op = push(rank);
  op.kind = Op::Kind::Send;
  op.peer = dst;
  op.tag = tag;
  op.bytes = bytes;
}

void Program::recv(std::int32_t rank, std::int32_t src, std::int32_t tag) {
  LS_CHECK(src >= 0 && static_cast<std::size_t>(src) < ops_.size());
  Op& op = push(rank);
  op.kind = Op::Kind::Recv;
  op.peer = src;
  op.tag = tag;
}

void Program::allreduce(std::int32_t rank) {
  Op& op = push(rank);
  op.kind = Op::Kind::Allreduce;
}

void Program::compute(std::int32_t rank, trace::TimeNs duration) {
  LS_CHECK(duration >= 0);
  Op& op = push(rank);
  op.kind = Op::Kind::Compute;
  op.duration = duration;
}

void Program::tree_allreduce(std::int32_t tag, std::int64_t bytes) {
  const auto n = static_cast<std::int32_t>(ops_.size());
  // Reduce phase: each rank receives from its (binary-tree) children in
  // ascending order, then sends to its parent. Broadcast phase mirrors it.
  for (std::int32_t r = 0; r < n; ++r) {
    for (std::int32_t k = 1; k <= 2; ++k) {
      std::int32_t child = 2 * r + k;
      if (child < n) recv(r, child, tag);
    }
    if (r != 0) send(r, (r - 1) / 2, tag, bytes);
  }
  for (std::int32_t r = 0; r < n; ++r) {
    if (r != 0) recv(r, (r - 1) / 2, tag + 1);
    for (std::int32_t k = 1; k <= 2; ++k) {
      std::int32_t child = 2 * r + k;
      if (child < n) send(r, child, tag + 1, bytes);
    }
  }
}

std::size_t Program::total_ops() const {
  std::size_t n = 0;
  for (const auto& r : ops_) n += r.size();
  return n;
}

}  // namespace logstruct::sim::mpi
