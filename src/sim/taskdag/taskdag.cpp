#include "sim/taskdag/taskdag.hpp"

#include <algorithm>
#include <map>

#include "trace/builder.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"

namespace logstruct::sim::taskdag {

TaskId TaskGraph::add(std::int32_t owner, trace::TimeNs duration,
                      std::vector<TaskId> deps, std::string label) {
  auto id = static_cast<TaskId>(tasks.size());
  for (TaskId d : deps)
    LS_CHECK_MSG(d >= 0 && d < id, "task depends on a later task");
  LS_CHECK(owner >= 0);
  num_owners = std::max(num_owners, owner + 1);
  tasks.push_back(Task{owner, duration, std::move(deps), std::move(label)});
  return id;
}

trace::Trace simulate(const TaskGraph& graph, const TaskDagConfig& cfg) {
  LS_CHECK(cfg.num_workers > 0);
  util::Rng rng(cfg.seed);
  trace::TraceBuilder tb;

  trace::ArrayId array = tb.add_array("domain");
  std::vector<trace::ChareId> owner_chare;
  for (std::int32_t o = 0; o < graph.num_owners; ++o)
    owner_chare.push_back(tb.add_chare("domain[" + std::to_string(o) + "]",
                                       array, o, /*home=*/0));
  std::map<std::string, trace::EntryId> entries;
  auto entry_of = [&](const std::string& label) {
    auto it = entries.find(label);
    if (it == entries.end())
      it = entries.emplace(label, tb.add_entry(label)).first;
    return it->second;
  };

  const auto n = graph.tasks.size();
  std::vector<std::vector<TaskId>> dependents(n);
  // Scheduling-only successors: the same-owner serialization (exclusive
  // data access). Not traced — like Charm++'s implicit per-chare
  // serialization, it is a property of the execution model, not a
  // recorded dependency.
  std::vector<std::vector<TaskId>> sched_dependents(n);
  std::vector<std::int32_t> missing(n, 0);
  std::vector<TaskId> prev_of_owner(
      static_cast<std::size_t>(graph.num_owners), -1);
  for (std::size_t t = 0; t < n; ++t) {
    missing[t] = static_cast<std::int32_t>(graph.tasks[t].deps.size());
    for (TaskId d : graph.tasks[t].deps)
      dependents[static_cast<std::size_t>(d)].push_back(
          static_cast<TaskId>(t));
    auto owner = static_cast<std::size_t>(graph.tasks[t].owner);
    TaskId prev = prev_of_owner[owner];
    if (prev >= 0 &&
        std::find(graph.tasks[t].deps.begin(), graph.tasks[t].deps.end(),
                  prev) == graph.tasks[t].deps.end()) {
      ++missing[t];
      sched_dependents[static_cast<std::size_t>(prev)].push_back(
          static_cast<TaskId>(t));
    }
    prev_of_owner[owner] = static_cast<TaskId>(t);
  }

  // Dependency-satisfaction Send recorded in the producer's block, one
  // per dependent: send_event[producer][k] pairs with dependents[p][k].
  std::vector<std::vector<trace::EventId>> send_event(n);
  std::vector<trace::TimeNs> ready_time(n, 0);

  std::vector<TaskId> ready;
  for (std::size_t t = 0; t < n; ++t)
    if (missing[t] == 0) ready.push_back(static_cast<TaskId>(t));

  std::vector<trace::TimeNs> worker_free(
      static_cast<std::size_t>(cfg.num_workers), 0);
  std::size_t done = 0;
  while (done < n) {
    LS_CHECK_MSG(!ready.empty(), "task graph deadlocked (cyclic deps?)");
    // Pick the (ready task, worker) pair with the earliest start; break
    // ties randomly (or FIFO) for scheduling noise.
    auto w = static_cast<std::size_t>(
        std::min_element(worker_free.begin(), worker_free.end()) -
        worker_free.begin());
    std::size_t pick = 0;
    trace::TimeNs best_start = 0;
    for (std::size_t i = 0; i < ready.size(); ++i) {
      trace::TimeNs start = std::max(
          worker_free[w], ready_time[static_cast<std::size_t>(ready[i])]);
      bool better =
          i == 0 || start < best_start ||
          (start == best_start && cfg.random_ready_order && rng.uniform(2));
      if (better) {
        pick = i;
        best_start = start;
      }
    }
    TaskId task = ready[pick];
    ready.erase(ready.begin() + static_cast<std::ptrdiff_t>(pick));
    const TaskGraph::Task& info = graph.tasks[static_cast<std::size_t>(task)];

    if (best_start > worker_free[w])
      tb.add_idle(static_cast<trace::ProcId>(w), worker_free[w], best_start);

    trace::BlockId b = tb.begin_block(
        owner_chare[static_cast<std::size_t>(info.owner)],
        static_cast<trace::ProcId>(w), entry_of(info.label), best_start);
    // Receives: one per satisfied dependency, matched to the producer's
    // recorded Send toward this task.
    for (TaskId d : info.deps) {
      const auto& deps_of_d = dependents[static_cast<std::size_t>(d)];
      auto k = static_cast<std::size_t>(
          std::find(deps_of_d.begin(), deps_of_d.end(), task) -
          deps_of_d.begin());
      tb.add_recv(b, best_start, send_event[static_cast<std::size_t>(d)][k]);
    }
    trace::TimeNs finish = best_start + info.duration;
    // Dependency-satisfaction sends at task completion.
    for (std::size_t k = 0;
         k < dependents[static_cast<std::size_t>(task)].size(); ++k) {
      send_event[static_cast<std::size_t>(task)].push_back(
          tb.add_send(b, finish));
    }
    tb.end_block(b, finish);
    worker_free[w] = finish;
    ++done;

    for (TaskId dep : dependents[static_cast<std::size_t>(task)]) {
      ready_time[static_cast<std::size_t>(dep)] =
          std::max(ready_time[static_cast<std::size_t>(dep)],
                   finish + cfg.ready_latency_ns);
      if (--missing[static_cast<std::size_t>(dep)] == 0)
        ready.push_back(dep);
    }
    for (TaskId dep : sched_dependents[static_cast<std::size_t>(task)]) {
      ready_time[static_cast<std::size_t>(dep)] = std::max(
          ready_time[static_cast<std::size_t>(dep)], finish);
      if (--missing[static_cast<std::size_t>(dep)] == 0)
        ready.push_back(dep);
    }
  }
  return tb.finish(cfg.num_workers);
}

TaskGraph stencil_1d(std::int32_t width, std::int32_t steps,
                     trace::TimeNs base_ns, trace::TimeNs noise_ns,
                     std::uint64_t seed) {
  LS_CHECK(width > 0 && steps > 0);
  util::Rng rng(seed);
  TaskGraph g;
  std::vector<TaskId> prev(static_cast<std::size_t>(width), -1);
  for (std::int32_t t = 0; t < steps; ++t) {
    std::vector<TaskId> cur(static_cast<std::size_t>(width));
    for (std::int32_t i = 0; i < width; ++i) {
      std::vector<TaskId> deps;
      if (t > 0) {
        for (std::int32_t j = std::max(0, i - 1);
             j <= std::min(width - 1, i + 1); ++j)
          deps.push_back(prev[static_cast<std::size_t>(j)]);
      }
      cur[static_cast<std::size_t>(i)] =
          g.add(i, base_ns + rng.uniform_range(0, noise_ns),
                std::move(deps), "stencil");
    }
    prev = std::move(cur);
  }
  return g;
}

TaskGraph fork_join(std::int32_t levels, trace::TimeNs work_ns,
                    std::uint64_t seed) {
  LS_CHECK(levels >= 1);
  util::Rng rng(seed);
  TaskGraph g;
  const std::int32_t leaves = 1 << (levels - 1);

  // Owners: leaf index for leaves; internal nodes own their range midpoint
  // so every subtree keeps one stable timeline.
  struct Node {
    TaskId task;
    std::int32_t lo, hi;
  };
  // Fork phase: root spawns two children per level.
  std::vector<Node> frontier{
      {g.add(leaves / 2, work_ns, {}, "fork"), 0, leaves}};
  for (std::int32_t l = 1; l < levels; ++l) {
    std::vector<Node> next;
    for (const Node& node : frontier) {
      std::int32_t mid = (node.lo + node.hi) / 2;
      trace::TimeNs noisy =
          work_ns + rng.uniform_range(0, work_ns / 2);
      next.push_back({g.add((node.lo + mid) / 2, noisy, {node.task},
                            l + 1 == levels ? "leaf" : "fork"),
                      node.lo, mid});
      next.push_back({g.add((mid + node.hi) / 2, noisy, {node.task},
                            l + 1 == levels ? "leaf" : "fork"),
                      mid, node.hi});
    }
    frontier = std::move(next);
  }
  // Join phase back up.
  while (frontier.size() > 1) {
    std::vector<Node> next;
    for (std::size_t i = 0; i + 1 < frontier.size(); i += 2) {
      const Node& a = frontier[i];
      const Node& b = frontier[i + 1];
      next.push_back({g.add((a.lo + b.hi) / 2, work_ns,
                            {a.task, b.task}, "join"),
                      a.lo, b.hi});
    }
    frontier = std::move(next);
  }
  return g;
}

}  // namespace logstruct::sim::taskdag
