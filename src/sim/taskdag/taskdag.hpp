#pragma once

/// \file taskdag.hpp
/// A second, generic task-based runtime (paper §7: "we expect our
/// organization by data sub-domains, constraints on phases, and reordering
/// scheme to apply to other task-based models").
///
/// Models the OmpSs/OCR-style execution the paper's §7.1 guidelines cover:
/// tasks with explicit dependencies, dynamically list-scheduled onto
/// workers. Tracing follows the guidelines verbatim:
///  1. every task carries the DATA it acts on (an `owner` sub-domain id —
///     the chare analog; the analysis builds sub-domain timelines),
///  2. control flow between tasks is recorded as dependency events
///     (producer completion = Send, consumer start = Recv),
///  3. each task execution is a serial block.
///
/// Scheduling is non-deterministic (seeded ready-queue tie-breaking), so
/// the physical order scrambles exactly like Charm++'s and the recovered
/// structure has real work to do.

#include <cstdint>
#include <string>
#include <vector>

#include "trace/trace.hpp"

namespace logstruct::sim::taskdag {

using TaskId = std::int32_t;

struct TaskGraph {
  struct Task {
    std::int32_t owner = 0;         ///< data sub-domain the task acts on
    trace::TimeNs duration = 1000;  ///< execution cost
    std::vector<TaskId> deps;       ///< must complete before this starts
    std::string label;              ///< entry-method analog (groups tasks)
  };

  /// Add a task; dependencies must reference earlier ids.
  TaskId add(std::int32_t owner, trace::TimeNs duration,
             std::vector<TaskId> deps, std::string label);

  [[nodiscard]] std::size_t size() const { return tasks.size(); }

  std::vector<Task> tasks;
  std::int32_t num_owners = 0;
};

struct TaskDagConfig {
  std::int32_t num_workers = 4;
  std::uint64_t seed = 1;
  /// Dependency-satisfaction latency (producer end -> consumer may start).
  std::int64_t ready_latency_ns = 300;
  /// Pick ready tasks randomly instead of FIFO (more scheduling noise).
  bool random_ready_order = true;
};

/// Execute the graph on the simulated workers and return the trace:
/// owners become (application) chares, workers become processors, task
/// executions become serial blocks, and every dependency becomes a
/// traced Send/Recv pair.
trace::Trace simulate(const TaskGraph& graph, const TaskDagConfig& cfg);

/// Example generator: an iterated 1D stencil — task (i, t) depends on
/// tasks (i-1, t-1), (i, t-1), (i+1, t-1). Owners are the positions i,
/// so the recovered structure should show one phase per time step.
TaskGraph stencil_1d(std::int32_t width, std::int32_t steps,
                     trace::TimeNs base_ns = 5000,
                     trace::TimeNs noise_ns = 1000,
                     std::uint64_t seed = 1);

/// Example generator: recursive fork-join (binary task tree of `levels`
/// levels down and the matching joins back up). Owners are the leaf-range
/// midpoints, giving each subtree a stable timeline.
TaskGraph fork_join(std::int32_t levels, trace::TimeNs work_ns = 4000,
                    std::uint64_t seed = 1);

}  // namespace logstruct::sim::taskdag
