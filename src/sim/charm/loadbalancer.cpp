#include "sim/charm/loadbalancer.hpp"

#include <algorithm>
#include <numeric>
#include <vector>

#include "obs/obs.hpp"
#include "sim/charm/runtime.hpp"
#include "util/check.hpp"

namespace logstruct::sim::charm {

void LbManager::on_message(trace::EntryId entry, const MsgData& data) {
  Runtime& runtime = rt();
  LS_CHECK(entry == runtime.entry_lb_sync_);
  LS_CHECK(data.ints.size() == 2 && data.doubles.size() == 1);
  const auto array = static_cast<trace::ArrayId>(data.ints[0]);
  const auto chare = static_cast<trace::ChareId>(data.ints[1]);
  const auto load = static_cast<trace::TimeNs>(data.doubles[0]);

  auto it = runtime.lb_configs_.find(array);
  LS_CHECK_MSG(it != runtime.lb_configs_.end(),
               "at_sync() on an array without configure_lb()");
  Runtime::LbConfig& cfg = it->second;
  cfg.reports.emplace_back(chare, load);
  runtime.compute(runtime.config().reduction_cost_ns);
  if (static_cast<std::int32_t>(cfg.reports.size()) <
      runtime.array_size(array))
    return;

  // Everyone synced: compute the new placement.
  const std::int32_t pes = runtime.num_pes();
  std::vector<std::pair<trace::ChareId, trace::ProcId>> moves;
  switch (cfg.strategy) {
    case LbStrategy::Rotate: {
      for (const auto& [c, l] : cfg.reports) {
        (void)l;
        moves.emplace_back(c, (runtime.pe_of(c) + 1) % pes);
      }
      break;
    }
    case LbStrategy::Greedy: {
      // Heaviest chares first onto the least-loaded PE. Deterministic
      // tie-breaking by chare id / PE id.
      std::vector<std::pair<trace::ChareId, trace::TimeNs>> sorted =
          cfg.reports;
      std::sort(sorted.begin(), sorted.end(),
                [](const auto& a, const auto& b) {
                  if (a.second != b.second) return a.second > b.second;
                  return a.first < b.first;
                });
      std::vector<trace::TimeNs> pe_load(static_cast<std::size_t>(pes), 0);
      for (const auto& [c, l] : sorted) {
        auto lightest = static_cast<trace::ProcId>(
            std::min_element(pe_load.begin(), pe_load.end()) -
            pe_load.begin());
        moves.emplace_back(c, lightest);
        pe_load[static_cast<std::size_t>(lightest)] += l;
      }
      break;
    }
  }
  runtime.compute(
      runtime.config().reduction_cost_ns *
      static_cast<trace::TimeNs>(cfg.reports.size()));  // strategy work
  OBS_COUNTER_ADD("sim/charm/lb_migrations",
                  static_cast<std::int64_t>(moves.size()));
  for (const auto& [c, pe] : moves) {
    runtime.migrate_chare(c, pe, /*poke_reductions=*/false);
    runtime.chare_load_[static_cast<std::size_t>(c)] = 0;
  }
  cfg.reports.clear();

  // Release the array: one traced broadcast, like a reduction callback.
  runtime.broadcast(array, cfg.resume_entry);
}

}  // namespace logstruct::sim::charm
