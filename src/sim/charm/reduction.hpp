#pragma once

/// \file reduction.hpp
/// Per-PE CkReductionMgr runtime chare.
///
/// Reductions follow the Charm++ shape the paper instruments in §5: each
/// array element `contribute()`s to the reduction manager on its own PE
/// (process-local messages — the events §5 adds to tracing); once a
/// manager has every local contribution plus its tree children's partial
/// results, it forwards up a reduction tree of the participating PEs; the
/// root delivers the combined value through the callback.

#include <cstdint>
#include <map>
#include <utility>

#include "sim/charm/chare.hpp"
#include "sim/charm/message.hpp"

namespace logstruct::sim::charm {

class ReductionMgr final : public Chare {
 public:
  void on_message(trace::EntryId entry, const MsgData& data) override;

  /// Wire encoding of reduction messages (RED_LOCAL / RED_TREE):
  ///   ints   = {array, seq, op, cb.kind, cb.target, cb.entry, weight}
  ///   doubles= {value}
  /// `weight` is the number of original contributions folded into `value`
  /// (used only for sanity checking).
  static MsgData encode(trace::ArrayId array, std::int32_t seq, ReducerOp op,
                        const Callback& cb, double value, std::int64_t weight);

 private:
  struct Slot {
    trace::ArrayId array = trace::kNone;
    std::int32_t seq = 0;
    std::int32_t local_seen = 0;
    std::int32_t child_seen = 0;
    std::int64_t weight = 0;
    double value = 0;
    bool has_value = false;
    ReducerOp op = ReducerOp::Sum;
    Callback cb;
  };

  void combine(Slot& slot, double value, ReducerOp op);
  void complete(trace::ArrayId array, const Slot& slot);
  /// Re-evaluate one slot's completion condition; fires the tree message
  /// or callback and erases the slot when satisfied. Returns true if the
  /// slot completed. Needed both on message arrival and after a chare
  /// migrates away (the expected local count shrinks).
  bool try_complete(Slot& slot);

  std::map<std::pair<trace::ArrayId, std::int32_t>, Slot> slots_;
};

}  // namespace logstruct::sim::charm
