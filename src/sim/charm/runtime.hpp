#pragma once

/// \file runtime.hpp
/// Discrete-event Charm++-model runtime.
///
/// Simulates: chare arrays with static placement, per-PE message queues
/// with FIFO-by-arrival scheduling, uninterruptible entry executions,
/// cross-PE latency + jitter, broadcasts, SDAG-style immediately-scheduled
/// serials, and reductions through per-PE CkReductionMgr runtime chares.
/// Every execution is recorded through trace::TraceBuilder according to the
/// message's TraceFlags; run() returns the finished Trace.
///
/// Usage sketch:
///   Runtime rt(cfg);
///   EntryId go = rt.register_entry("go");
///   ArrayId arr = rt.create_array<MyChare>("workers", 64, args...);
///   rt.start(rt.array_element(arr, 0), go);
///   trace::Trace t = rt.run();

#include <memory>
#include <queue>
#include <string>
#include <vector>

#include <unordered_map>

#include "sim/charm/chare.hpp"
#include "sim/charm/config.hpp"
#include "sim/charm/loadbalancer.hpp"
#include "sim/charm/message.hpp"
#include "trace/builder.hpp"
#include "trace/trace.hpp"
#include "util/rng.hpp"

namespace logstruct::sim::charm {

class ReductionMgr;

class Runtime {
 public:
  explicit Runtime(RuntimeConfig cfg);
  ~Runtime();

  Runtime(const Runtime&) = delete;
  Runtime& operator=(const Runtime&) = delete;

  // --- setup -------------------------------------------------------------
  trace::EntryId register_entry(std::string name, bool runtime = false,
                                std::int32_t sdag_serial = -1,
                                std::vector<trace::EntryId> when_entries = {});

  /// Create an array of N chares of type T constructed as T(args...).
  /// T must derive from Chare.
  template <typename T, typename... Args>
  trace::ArrayId create_array(const std::string& name, std::int32_t count,
                              Placement placement, Args&&... args) {
    trace::ArrayId a = begin_array(name, count, placement);
    for (std::int32_t i = 0; i < count; ++i) {
      add_array_element(a, i, std::make_unique<T>(args...));
    }
    return a;
  }

  /// Create a single chare outside any array. `runtime` marks runtime
  /// chares (completion detectors, managers) that the analysis groups by
  /// process rather than by chare.
  template <typename T, typename... Args>
  trace::ChareId create_singleton(const std::string& name, trace::ProcId pe,
                                  bool runtime, Args&&... args) {
    return add_singleton(name, pe, std::make_unique<T>(args...), runtime);
  }

  [[nodiscard]] trace::ChareId array_element(trace::ArrayId a,
                                             std::int32_t index) const;
  [[nodiscard]] std::int32_t array_size(trace::ArrayId a) const;
  [[nodiscard]] trace::ProcId pe_of(trace::ChareId c) const;
  [[nodiscard]] std::int32_t num_pes() const { return cfg_.num_pes; }

  /// Inject the bootstrap message that starts the program (delivered at
  /// t=0, recorded as a block with no incoming dependency).
  void start(trace::ChareId chare, trace::EntryId entry, MsgData data = {});

  /// Run the scheduler to quiescence and return the trace.
  trace::Trace run();

  // --- services callable from inside entry methods ------------------------
  /// Advance the executing PE's clock (simulated computation).
  void compute(trace::TimeNs ns);

  /// Remote method invocation. Returns the traced Send event id (kNone if
  /// untraced). bytes feeds the network cost model.
  trace::EventId send(trace::ChareId dst, trace::EntryId entry,
                      MsgData data = {}, std::int64_t bytes = 64,
                      TraceFlags flags = TraceFlags::traced());

  /// Invoke an entry on every element of an array: ONE traced Send event
  /// with fan-out edges to all receivers (Charm++ array broadcast).
  trace::EventId broadcast(trace::ArrayId array, trace::EntryId entry,
                           MsgData data = {}, std::int64_t bytes = 64,
                           TraceFlags flags = TraceFlags::traced());

  /// Schedule an SDAG serial to run on the current chare immediately after
  /// the current entry method completes (no scheduler gap), as its own
  /// serial block — the pattern the §2.1 absorption rule reconstructs.
  void schedule_immediate(trace::EntryId entry, MsgData data = {});

  /// Contribute to a reduction over the calling chare's array. All elements
  /// must contribute once per reduction; completion delivers `value`
  /// combined with `op` through `cb`. Goes through the per-PE
  /// CkReductionMgr runtime chares (traced per cfg.trace_local_reductions).
  void contribute(double value, ReducerOp op, Callback cb);

  /// Migrate the calling chare to another PE. Takes effect for messages
  /// posted after the call; messages already in flight still execute on
  /// the PE they were addressed to (no forwarding, like anytime-migration
  /// without a location manager). The old PE's reduction manager is poked
  /// so reductions waiting on this chare's former location re-evaluate.
  void migrate(trace::ProcId new_pe);

  // --- load balancing ------------------------------------------------------
  /// Enable AtSync balancing for an array: when every element has called
  /// at_sync(), `strategy` reassigns chares to PEs using their measured
  /// compute loads and every element receives `resume_entry`. Must be
  /// called before run(). No reductions may be in flight across a sync.
  void configure_lb(trace::ArrayId array, LbStrategy strategy,
                    trace::EntryId resume_entry);

  /// Report the calling chare's load to the balancer and park until the
  /// balancing step broadcasts the configured resume entry.
  void at_sync();

  /// Measured compute (ns) of a chare since the last balancing step.
  [[nodiscard]] trace::TimeNs load_of(trace::ChareId c) const {
    return chare_load_[static_cast<std::size_t>(c)];
  }

  /// Simulation clock of the currently executing entry method.
  [[nodiscard]] trace::TimeNs now() const { return exec_.clock; }

  /// Chare currently executing (kNone outside an entry method).
  [[nodiscard]] trace::ChareId current_chare() const { return exec_.chare; }

  /// Deterministic per-app randomness (workload synthesis).
  util::Rng& app_rng() { return app_rng_; }

  [[nodiscard]] const RuntimeConfig& config() const { return cfg_; }

 private:
  friend class ReductionMgr;
  friend class LbManager;

  struct LbConfig {
    LbStrategy strategy = LbStrategy::Rotate;
    trace::EntryId resume_entry = trace::kNone;
    std::vector<std::pair<trace::ChareId, trace::TimeNs>> reports;
  };

  /// Runtime-side migration (LBManager moves other chares).
  void migrate_chare(trace::ChareId c, trace::ProcId new_pe,
                     bool poke_reductions);

  struct ArrayMeta {
    std::string name;
    std::vector<trace::ChareId> elements;
    std::vector<std::int32_t> per_pe_count;      ///< elements hosted per PE
    mutable std::vector<trace::ProcId> parts;    ///< cached participants
  };

  struct ExecState {
    bool active = false;
    trace::ChareId chare = trace::kNone;
    trace::ProcId pe = trace::kNone;
    trace::EntryId entry = trace::kNone;
    trace::TimeNs begin = 0;
    trace::TimeNs clock = 0;
    trace::BlockId block = trace::kNone;  ///< lazily created
    bool want_block = false;
    /// SDAG serials queued by schedule_immediate during this execution.
    std::vector<std::pair<trace::EntryId, MsgData>> immediates;
  };

  struct QueueOrder {
    bool operator()(const Message& a, const Message& b) const {
      if (a.arrival != b.arrival) return a.arrival > b.arrival;
      return a.seq > b.seq;  // min-heap: earliest arrival, then FIFO
    }
  };

  trace::ArrayId begin_array(const std::string& name, std::int32_t count,
                             Placement placement);
  void add_array_element(trace::ArrayId a, std::int32_t index,
                         std::unique_ptr<Chare> chare);
  trace::ChareId add_singleton(const std::string& name, trace::ProcId pe,
                               std::unique_ptr<Chare> chare, bool runtime);

  trace::ProcId place(Placement placement, std::int32_t index,
                      std::int32_t count) const;

  /// Deliver a message (compute arrival, push on the destination queue).
  void post(trace::ChareId dst, trace::EntryId entry, MsgData data,
            std::int64_t bytes, TraceFlags flags, trace::EventId send_event,
            trace::TimeNs send_time, trace::ProcId src_pe);

  [[nodiscard]] trace::TimeNs latency(trace::ProcId from, trace::ProcId to,
                                      std::int64_t bytes);

  /// Execute one delivered message as an entry-method execution on the
  /// scheduler PE that dequeued it (which can differ from the chare's
  /// current home right after a migration).
  void execute(const Message& msg, trace::TimeNs start, trace::ProcId pe);

  /// Create the block record on first traced content.
  trace::BlockId ensure_block();

  // Reduction support (used by contribute / ReductionMgr).
  [[nodiscard]] std::int32_t local_elements(trace::ArrayId a,
                                            trace::ProcId pe) const;
  [[nodiscard]] std::vector<trace::ProcId> participants(trace::ArrayId a)
      const;
  [[nodiscard]] trace::ChareId mgr_chare(trace::ProcId pe) const {
    return mgr_chares_[static_cast<std::size_t>(pe)];
  }

  RuntimeConfig cfg_;
  trace::TraceBuilder tb_;
  util::Rng net_rng_;
  util::Rng app_rng_;

  std::vector<std::unique_ptr<Chare>> chares_;  // indexed by ChareId
  std::vector<ArrayMeta> arrays_;
  std::vector<trace::ChareId> mgr_chares_;  // one CkReductionMgr per PE
  trace::EntryId entry_red_local_ = trace::kNone;
  trace::EntryId entry_red_tree_ = trace::kNone;
  trace::EntryId entry_red_recheck_ = trace::kNone;

  std::vector<std::priority_queue<Message, std::vector<Message>, QueueOrder>>
      queues_;
  std::vector<trace::TimeNs> pe_free_;
  std::uint64_t next_seq_ = 0;
  std::size_t pending_msgs_ = 0;

  ExecState exec_;
  std::vector<std::int32_t> contribute_seq_;  ///< per-chare reduction counter
  std::vector<trace::TimeNs> chare_load_;     ///< compute since last LB
  trace::ChareId lb_manager_ = trace::kNone;
  trace::EntryId entry_lb_sync_ = trace::kNone;
  std::unordered_map<trace::ArrayId, LbConfig> lb_configs_;
  Placement placement_ = Placement::Block;    ///< placement of array in flight
  std::int32_t pending_count_ = 0;            ///< size of array in flight
  bool ran_ = false;
};

}  // namespace logstruct::sim::charm
