#pragma once

/// \file loadbalancer.hpp
/// AtSync-style load balancing (Charm++'s LBManager shape).
///
/// Array elements call Runtime::at_sync() at a synchronization point; each
/// call ships the chare's measured load (compute time since the last
/// balancing step) to the LBManager runtime chare on PE 0. When every
/// element has reported, the manager runs the configured strategy,
/// migrates chares, and broadcasts resume messages. The whole exchange is
/// traced, so balancing shows up as a runtime phase — and afterwards the
/// chare timelines span processors (paper §1, challenge 2).

#include <cstdint>

#include "sim/charm/chare.hpp"
#include "sim/charm/message.hpp"

namespace logstruct::sim::charm {

enum class LbStrategy : std::int32_t {
  /// Rotate every chare to the next PE — deterministic, load-oblivious.
  Rotate = 0,
  /// Greedy: heaviest chares first onto the least-loaded PE.
  Greedy = 1,
};

class Runtime;

/// Internal runtime chare implementing the manager side; created lazily by
/// the Runtime on the first at_sync().
class LbManager final : public Chare {
 public:
  void on_message(trace::EntryId entry, const MsgData& data) override;

 private:
  std::int32_t seen_ = 0;
};

}  // namespace logstruct::sim::charm
