#pragma once

/// \file config.hpp
/// Configuration of the Charm++-model runtime simulator.

#include <cstdint>

#include "trace/ids.hpp"

namespace logstruct::sim::charm {

/// Network / messaging cost model. All costs in nanoseconds.
struct NetworkConfig {
  std::int64_t base_latency_ns = 2000;  ///< cross-PE base latency
  std::int64_t per_byte_ns = 1;         ///< cross-PE serialization cost
  std::int64_t jitter_ns = 500;         ///< uniform [0, jitter) extra delay
  std::int64_t local_latency_ns = 200;  ///< same-PE queue turnaround
};

struct RuntimeConfig {
  std::int32_t num_pes = 8;
  std::uint64_t seed = 1;
  NetworkConfig net;

  /// Fixed scheduler cost charged at the start of every entry execution.
  std::int64_t entry_overhead_ns = 100;
  /// Cost of issuing one remote method invocation.
  std::int64_t send_overhead_ns = 100;
  /// Compute cost the reduction manager charges per handled message.
  std::int64_t reduction_cost_ns = 200;

  /// Paper §5 additions: record the process-local reduction events
  /// (contribute -> CkReductionMgr messages and the manager's local
  /// gathering blocks). When false, only the explicit inter-processor
  /// reduction messages appear in the trace — the pre-§5 behaviour.
  bool trace_local_reductions = true;
};

/// How array elements map to processing elements.
enum class Placement {
  Block,       ///< element i on PE floor(i * P / N)-style contiguous blocks
  RoundRobin,  ///< element i on PE i % P
};

}  // namespace logstruct::sim::charm
