#include "sim/charm/reduction.hpp"

#include <algorithm>

#include "obs/obs.hpp"
#include "sim/charm/runtime.hpp"
#include "util/check.hpp"

namespace logstruct::sim::charm {

MsgData ReductionMgr::encode(trace::ArrayId array, std::int32_t seq,
                             ReducerOp op, const Callback& cb, double value,
                             std::int64_t weight) {
  MsgData m;
  m.ints = {array,
            seq,
            static_cast<std::int64_t>(op),
            static_cast<std::int64_t>(cb.kind),
            cb.target,
            cb.entry,
            weight};
  m.doubles = {value};
  return m;
}

void ReductionMgr::combine(Slot& slot, double value, ReducerOp op) {
  if (!slot.has_value) {
    slot.value = value;
    slot.has_value = true;
    slot.op = op;
    return;
  }
  LS_CHECK_MSG(slot.op == op, "mixed reducer ops in one reduction");
  switch (op) {
    case ReducerOp::Sum:
      slot.value += value;
      break;
    case ReducerOp::Max:
      slot.value = std::max(slot.value, value);
      break;
    case ReducerOp::Min:
      slot.value = std::min(slot.value, value);
      break;
  }
}

void ReductionMgr::on_message(trace::EntryId entry, const MsgData& data) {
  Runtime& runtime = rt();

  if (entry == runtime.entry_red_recheck_) {
    // A chare migrated off this PE: pending reductions may now have every
    // remaining local contribution. Re-evaluate everything.
    runtime.compute(runtime.config().reduction_cost_ns);
    for (auto it = slots_.begin(); it != slots_.end();) {
      if (try_complete(it->second)) {
        it = slots_.erase(it);
      } else {
        ++it;
      }
    }
    return;
  }

  LS_CHECK(data.ints.size() == 7 && data.doubles.size() == 1);
  const auto array = static_cast<trace::ArrayId>(data.ints[0]);
  const auto seq = static_cast<std::int32_t>(data.ints[1]);
  const auto op = static_cast<ReducerOp>(data.ints[2]);
  Callback cb;
  cb.kind = static_cast<Callback::Kind>(data.ints[3]);
  cb.target = static_cast<std::int32_t>(data.ints[4]);
  cb.entry = static_cast<trace::EntryId>(data.ints[5]);
  const std::int64_t weight = data.ints[6];
  const double value = data.doubles[0];

  Slot& slot = slots_[{array, seq}];
  slot.array = array;
  slot.seq = seq;
  slot.cb = cb;
  combine(slot, value, op);
  slot.weight += weight;
  if (entry == runtime.entry_red_local_) {
    ++slot.local_seen;
  } else {
    LS_CHECK(entry == runtime.entry_red_tree_);
    ++slot.child_seen;
    OBS_COUNTER_INC("sim/charm/reduction_tree_fanins");
  }
  runtime.compute(runtime.config().reduction_cost_ns);

  if (try_complete(slot)) slots_.erase({array, seq});
}

bool ReductionMgr::try_complete(Slot& slot) {
  Runtime& runtime = rt();
  const trace::ArrayId array = slot.array;

  // Completion test: all local contributions in, all child subtrees in.
  auto parts = runtime.participants(array);
  auto it = std::find(parts.begin(), parts.end(), pe());
  if (it == parts.end()) {
    // This PE no longer hosts any element (everyone migrated away). With
    // anytime migration the manager may still hold contributions; forward
    // the partial straight to the current root.
    if (slot.local_seen + slot.child_seen == 0 || parts.empty())
      return false;
    runtime.send(runtime.mgr_chare(parts.front()), runtime.entry_red_tree_,
                 encode(array, slot.seq, slot.op, slot.cb, slot.value,
                        slot.weight),
                 32, TraceFlags::traced());
    return true;
  }
  const std::int32_t pos = static_cast<std::int32_t>(it - parts.begin());
  const std::int32_t n = static_cast<std::int32_t>(parts.size());
  std::int32_t expected_children = 0;
  if (2 * pos + 1 < n) ++expected_children;
  if (2 * pos + 2 < n) ++expected_children;

  if (slot.local_seen < runtime.local_elements(array, pe()) ||
      slot.child_seen < expected_children)
    return false;
  if (pos == 0) {
    complete(array, slot);
  } else {
    const trace::ProcId parent =
        parts[static_cast<std::size_t>((pos - 1) / 2)];
    runtime.send(runtime.mgr_chare(parent), runtime.entry_red_tree_,
                 encode(array, slot.seq, slot.op, slot.cb, slot.value,
                        slot.weight),
                 32, TraceFlags::traced());
  }
  return true;
}

void ReductionMgr::complete(trace::ArrayId array, const Slot& slot) {
  Runtime& runtime = rt();
  LS_CHECK_MSG(slot.weight == runtime.array_size(array),
               "reduction completed with missing contributions");
  MsgData result;
  result.doubles = {slot.value};
  switch (slot.cb.kind) {
    case Callback::Kind::SendToChare:
      runtime.send(slot.cb.target, slot.cb.entry, std::move(result));
      break;
    case Callback::Kind::BroadcastArray:
      runtime.broadcast(slot.cb.target, slot.cb.entry, std::move(result));
      break;
  }
}

}  // namespace logstruct::sim::charm
