#pragma once

/// \file message.hpp
/// Messages, payloads, reduction callbacks.

#include <cstdint>
#include <vector>

#include "trace/ids.hpp"

namespace logstruct::sim::charm {

/// Marshalled entry-method parameters. The proxy applications only move
/// small scalar payloads; generic enough for all of them.
struct MsgData {
  std::vector<std::int64_t> ints;
  std::vector<double> doubles;
};

/// Reduction combiners supported by the simulated CkReduction.
enum class ReducerOp : std::int32_t { Sum = 0, Max = 1, Min = 2 };

/// Where a completed reduction delivers its result.
struct Callback {
  enum class Kind : std::int32_t { SendToChare = 0, BroadcastArray = 1 };
  Kind kind = Kind::SendToChare;
  /// SendToChare: destination chare id; BroadcastArray: array id.
  std::int32_t target = trace::kNone;
  trace::EntryId entry = trace::kNone;

  static Callback send(trace::ChareId chare, trace::EntryId entry) {
    return Callback{Kind::SendToChare, chare, entry};
  }
  static Callback broadcast(trace::ArrayId array, trace::EntryId entry) {
    return Callback{Kind::BroadcastArray, array, entry};
  }
};

/// Tracing disposition of a message (see DESIGN.md): which parts of the
/// delivery get recorded.
struct TraceFlags {
  bool send = true;   ///< record the Send event at the call site
  bool block = true;  ///< record the receiving entry execution as a block
  bool recv = true;   ///< record the Recv event inside that block

  static constexpr TraceFlags traced() { return {true, true, true}; }
  /// Untraced control transfer whose execution is still visible (the PDES
  /// completion-detector case, paper Fig. 24).
  static constexpr TraceFlags untraced_send() { return {false, true, true}; }
  /// Fully invisible (pre-§5 local reduction events).
  static constexpr TraceFlags invisible() { return {false, false, false}; }
  /// Bootstrap execution: a visible block with no incoming dependency.
  static constexpr TraceFlags bootstrap() { return {false, true, false}; }
};

/// An in-flight or queued message (internal to the scheduler).
struct Message {
  trace::ChareId dst = trace::kNone;
  trace::EntryId entry = trace::kNone;
  MsgData data;
  trace::EventId send_event = trace::kNone;  ///< traced Send, if any
  trace::TimeNs arrival = 0;
  std::uint64_t seq = 0;  ///< FIFO tie-break within equal arrivals
  TraceFlags flags;
};

}  // namespace logstruct::sim::charm
