#pragma once

/// \file chare.hpp
/// Base class for user-defined chares.
///
/// Mirrors the Charm++ programming model: a chare is an object whose entry
/// methods are invoked by messages; entry methods run uninterrupted; all
/// interaction with the world goes through the runtime (sends, reductions,
/// broadcasts, simulated compute time).

#include "sim/charm/message.hpp"
#include "trace/ids.hpp"

namespace logstruct::sim::charm {

class Runtime;

class Chare {
 public:
  virtual ~Chare() = default;

  /// Entry-method dispatch: invoked by the scheduler for every delivered
  /// message. `entry` identifies which entry method to run.
  virtual void on_message(trace::EntryId entry, const MsgData& data) = 0;

  [[nodiscard]] trace::ChareId id() const { return id_; }
  [[nodiscard]] trace::ArrayId array() const { return array_; }
  /// Flat index within the owning array (-1 for singletons).
  [[nodiscard]] std::int32_t index() const { return index_; }
  [[nodiscard]] trace::ProcId pe() const { return pe_; }

 protected:
  /// The runtime; only valid once the chare is registered (always true
  /// inside on_message).
  [[nodiscard]] Runtime& rt() const { return *rt_; }

 private:
  friend class Runtime;
  Runtime* rt_ = nullptr;
  trace::ChareId id_ = trace::kNone;
  trace::ArrayId array_ = trace::kNone;
  std::int32_t index_ = -1;
  trace::ProcId pe_ = trace::kNone;
};

}  // namespace logstruct::sim::charm
