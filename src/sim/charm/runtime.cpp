#include "sim/charm/runtime.hpp"

#include <algorithm>

#include "obs/obs.hpp"
#include "sim/charm/loadbalancer.hpp"
#include "sim/charm/reduction.hpp"
#include "util/check.hpp"

namespace logstruct::sim::charm {

Runtime::Runtime(RuntimeConfig cfg)
    : cfg_(cfg),
      net_rng_(cfg.seed),
      app_rng_(util::Rng(cfg.seed).fork(0x5EED)),
      queues_(static_cast<std::size_t>(cfg.num_pes)),
      pe_free_(static_cast<std::size_t>(cfg.num_pes), 0) {
  LS_CHECK(cfg_.num_pes > 0);
  entry_red_local_ = register_entry("_contribute_local", /*runtime=*/true);
  entry_red_tree_ = register_entry("_reduction_tree", /*runtime=*/true);
  entry_red_recheck_ = register_entry("_reduction_recheck", /*runtime=*/true);
  for (trace::ProcId p = 0; p < cfg_.num_pes; ++p) {
    trace::ChareId c =
        add_singleton("CkReductionMgr(" + std::to_string(p) + ")", p,
                      std::make_unique<ReductionMgr>(), /*runtime=*/true);
    mgr_chares_.push_back(c);
  }
}

Runtime::~Runtime() = default;

trace::EntryId Runtime::register_entry(
    std::string name, bool runtime, std::int32_t sdag_serial,
    std::vector<trace::EntryId> when_entries) {
  return tb_.add_entry(std::move(name), runtime, sdag_serial,
                       std::move(when_entries));
}

trace::ArrayId Runtime::begin_array(const std::string& name,
                                    std::int32_t count, Placement placement) {
  LS_CHECK(count > 0);
  trace::ArrayId id = tb_.add_array(name);
  // tb_ array ids and arrays_ indices advance together.
  LS_CHECK(static_cast<std::size_t>(id) == arrays_.size());
  ArrayMeta meta;
  meta.name = name;
  meta.per_pe_count.assign(static_cast<std::size_t>(cfg_.num_pes), 0);
  arrays_.push_back(std::move(meta));
  // Stash placement for add_array_element via a temporary: the element adder
  // recomputes from (index, count) so we record both here.
  placement_ = placement;
  pending_count_ = count;
  return id;
}

void Runtime::add_array_element(trace::ArrayId a, std::int32_t index,
                                std::unique_ptr<Chare> chare) {
  ArrayMeta& meta = arrays_[static_cast<std::size_t>(a)];
  trace::ProcId pe = place(placement_, index, pending_count_);
  trace::ChareId id =
      tb_.add_chare(meta.name + "[" + std::to_string(index) + "]", a, index,
                    pe, /*runtime=*/false);
  LS_CHECK(static_cast<std::size_t>(id) == chares_.size());
  chare->rt_ = this;
  chare->id_ = id;
  chare->array_ = a;
  chare->index_ = index;
  chare->pe_ = pe;
  chares_.push_back(std::move(chare));
  contribute_seq_.push_back(0);
  chare_load_.push_back(0);
  meta.elements.push_back(id);
  ++meta.per_pe_count[static_cast<std::size_t>(pe)];
  meta.parts.clear();  // invalidate cache
}

trace::ChareId Runtime::add_singleton(const std::string& name,
                                      trace::ProcId pe,
                                      std::unique_ptr<Chare> chare,
                                      bool runtime) {
  LS_CHECK(pe >= 0 && pe < cfg_.num_pes);
  trace::ChareId id = tb_.add_chare(name, trace::kNone, -1, pe, runtime);
  LS_CHECK(static_cast<std::size_t>(id) == chares_.size());
  chare->rt_ = this;
  chare->id_ = id;
  chare->pe_ = pe;
  chares_.push_back(std::move(chare));
  contribute_seq_.push_back(0);
  chare_load_.push_back(0);
  return id;
}

trace::ProcId Runtime::place(Placement placement, std::int32_t index,
                             std::int32_t count) const {
  switch (placement) {
    case Placement::Block:
      return static_cast<trace::ProcId>(
          (static_cast<std::int64_t>(index) * cfg_.num_pes) / count);
    case Placement::RoundRobin:
      return index % cfg_.num_pes;
  }
  return 0;
}

trace::ChareId Runtime::array_element(trace::ArrayId a,
                                      std::int32_t index) const {
  const ArrayMeta& meta = arrays_[static_cast<std::size_t>(a)];
  LS_CHECK(index >= 0 &&
           static_cast<std::size_t>(index) < meta.elements.size());
  return meta.elements[static_cast<std::size_t>(index)];
}

std::int32_t Runtime::array_size(trace::ArrayId a) const {
  return static_cast<std::int32_t>(
      arrays_[static_cast<std::size_t>(a)].elements.size());
}

trace::ProcId Runtime::pe_of(trace::ChareId c) const {
  return chares_[static_cast<std::size_t>(c)]->pe();
}

std::int32_t Runtime::local_elements(trace::ArrayId a, trace::ProcId pe)
    const {
  return arrays_[static_cast<std::size_t>(a)]
      .per_pe_count[static_cast<std::size_t>(pe)];
}

std::vector<trace::ProcId> Runtime::participants(trace::ArrayId a) const {
  const ArrayMeta& meta = arrays_[static_cast<std::size_t>(a)];
  if (meta.parts.empty()) {
    for (trace::ProcId p = 0; p < cfg_.num_pes; ++p) {
      if (meta.per_pe_count[static_cast<std::size_t>(p)] > 0)
        meta.parts.push_back(p);
    }
  }
  return meta.parts;
}

void Runtime::start(trace::ChareId chare, trace::EntryId entry, MsgData data) {
  LS_CHECK_MSG(!ran_, "start() after run()");
  Message msg;
  msg.dst = chare;
  msg.entry = entry;
  msg.data = std::move(data);
  msg.arrival = 0;
  msg.seq = next_seq_++;
  msg.flags = TraceFlags::bootstrap();
  queues_[static_cast<std::size_t>(pe_of(chare))].push(std::move(msg));
  ++pending_msgs_;
}

trace::TimeNs Runtime::latency(trace::ProcId from, trace::ProcId to,
                               std::int64_t bytes) {
  if (from == to) return cfg_.net.local_latency_ns;
  return cfg_.net.base_latency_ns + bytes * cfg_.net.per_byte_ns +
         static_cast<trace::TimeNs>(
             net_rng_.uniform(static_cast<std::uint64_t>(
                 std::max<std::int64_t>(cfg_.net.jitter_ns, 1))));
}

void Runtime::post(trace::ChareId dst, trace::EntryId entry, MsgData data,
                   std::int64_t bytes, TraceFlags flags,
                   trace::EventId send_event, trace::TimeNs send_time,
                   trace::ProcId src_pe) {
  Message msg;
  msg.dst = dst;
  msg.entry = entry;
  msg.data = std::move(data);
  msg.send_event = send_event;
  msg.arrival = send_time + latency(src_pe, pe_of(dst), bytes);
  msg.seq = next_seq_++;
  msg.flags = flags;
  queues_[static_cast<std::size_t>(pe_of(dst))].push(std::move(msg));
  ++pending_msgs_;
  OBS_COUNTER_INC("sim/charm/messages_enqueued");
}

trace::BlockId Runtime::ensure_block() {
  LS_CHECK(exec_.active);
  if (exec_.block == trace::kNone) {
    exec_.block =
        tb_.begin_block(exec_.chare, exec_.pe, exec_.entry, exec_.begin);
  }
  return exec_.block;
}

void Runtime::compute(trace::TimeNs ns) {
  LS_CHECK_MSG(exec_.active, "compute() outside an entry method");
  LS_CHECK(ns >= 0);
  exec_.clock += ns;
  chare_load_[static_cast<std::size_t>(exec_.chare)] += ns;
}

trace::EventId Runtime::send(trace::ChareId dst, trace::EntryId entry,
                             MsgData data, std::int64_t bytes,
                             TraceFlags flags) {
  LS_CHECK_MSG(exec_.active, "send() outside an entry method");
  trace::EventId ev = trace::kNone;
  trace::TimeNs t_send = exec_.clock;
  if (flags.send) {
    ensure_block();
    ev = tb_.add_send(exec_.block, t_send);
  }
  exec_.clock += cfg_.send_overhead_ns;
  post(dst, entry, std::move(data), bytes, flags, ev, t_send, exec_.pe);
  return ev;
}

trace::EventId Runtime::broadcast(trace::ArrayId array, trace::EntryId entry,
                                  MsgData data, std::int64_t bytes,
                                  TraceFlags flags) {
  LS_CHECK_MSG(exec_.active, "broadcast() outside an entry method");
  const ArrayMeta& meta = arrays_[static_cast<std::size_t>(array)];
  trace::EventId ev = trace::kNone;
  trace::TimeNs t_send = exec_.clock;
  if (flags.send) {
    ensure_block();
    ev = tb_.add_send(exec_.block, t_send);
  }
  exec_.clock += cfg_.send_overhead_ns;
  for (trace::ChareId dst : meta.elements) {
    post(dst, entry, data, bytes, flags, ev, t_send, exec_.pe);
  }
  return ev;
}

void Runtime::schedule_immediate(trace::EntryId entry, MsgData data) {
  LS_CHECK_MSG(exec_.active, "schedule_immediate() outside an entry method");
  exec_.immediates.emplace_back(entry, std::move(data));
}

void Runtime::migrate_chare(trace::ChareId c, trace::ProcId new_pe,
                            bool poke_reductions) {
  LS_CHECK(new_pe >= 0 && new_pe < cfg_.num_pes);
  Chare& chare = *chares_[static_cast<std::size_t>(c)];
  trace::ProcId old_pe = chare.pe();
  if (old_pe == new_pe) return;
  chare.pe_ = new_pe;
  OBS_COUNTER_INC("sim/charm/migrations");
  if (chare.array() != trace::kNone) {
    ArrayMeta& meta = arrays_[static_cast<std::size_t>(chare.array())];
    --meta.per_pe_count[static_cast<std::size_t>(old_pe)];
    ++meta.per_pe_count[static_cast<std::size_t>(new_pe)];
    meta.parts.clear();  // participant set may have changed
    // A reduction waiting for this chare's contribution on the old PE may
    // now be complete there; let the manager re-evaluate its slots. The
    // poke is runtime machinery, not application control flow: invisible.
    if (poke_reductions)
      send(mgr_chare(old_pe), entry_red_recheck_, {}, 16,
           TraceFlags::invisible());
  }
}

void Runtime::migrate(trace::ProcId new_pe) {
  LS_CHECK_MSG(exec_.active, "migrate() outside an entry method");
  migrate_chare(exec_.chare, new_pe, /*poke_reductions=*/true);
  exec_.clock += cfg_.entry_overhead_ns;  // pack + registration cost
}

void Runtime::configure_lb(trace::ArrayId array, LbStrategy strategy,
                           trace::EntryId resume_entry) {
  LS_CHECK_MSG(!ran_, "configure_lb() after run()");
  if (lb_manager_ == trace::kNone) {
    entry_lb_sync_ = register_entry("_lb_sync", /*runtime=*/true);
    lb_manager_ = add_singleton("LBManager", /*pe=*/0,
                                std::make_unique<LbManager>(),
                                /*runtime=*/true);
  }
  LbConfig cfg;
  cfg.strategy = strategy;
  cfg.resume_entry = resume_entry;
  lb_configs_[array] = std::move(cfg);
}

void Runtime::at_sync() {
  LS_CHECK_MSG(exec_.active, "at_sync() outside an entry method");
  Chare& self = *chares_[static_cast<std::size_t>(exec_.chare)];
  LS_CHECK_MSG(self.array() != trace::kNone &&
                   lb_configs_.count(self.array()) != 0,
               "at_sync() without configure_lb()");
  MsgData report;
  report.ints = {self.array(), exec_.chare};
  report.doubles = {static_cast<double>(
      chare_load_[static_cast<std::size_t>(exec_.chare)])};
  send(lb_manager_, entry_lb_sync_, std::move(report), 32);
}

void Runtime::contribute(double value, ReducerOp op, Callback cb) {
  LS_CHECK_MSG(exec_.active, "contribute() outside an entry method");
  Chare& self = *chares_[static_cast<std::size_t>(exec_.chare)];
  LS_CHECK_MSG(self.array() != trace::kNone,
               "contribute() from a chare outside any array");
  std::int32_t seq = contribute_seq_[static_cast<std::size_t>(exec_.chare)]++;
  TraceFlags flags = cfg_.trace_local_reductions ? TraceFlags::traced()
                                                 : TraceFlags::invisible();
  // The contribution counts against the chare's CURRENT home (which can
  // differ from the executing PE right after a migration, when a message
  // addressed to the old home is still being drained there).
  send(mgr_chare(pe_of(exec_.chare)), entry_red_local_,
       ReductionMgr::encode(self.array(), seq, op, cb, value, /*weight=*/1),
       32, flags);
}

void Runtime::execute(const Message& msg, trace::TimeNs start,
                      trace::ProcId pe) {
  OBS_COUNTER_INC("sim/charm/messages_delivered");
  exec_.active = true;
  exec_.chare = msg.dst;
  exec_.pe = pe;
  exec_.entry = msg.entry;
  exec_.begin = start;
  exec_.clock = start;
  exec_.block = trace::kNone;
  exec_.want_block = msg.flags.block;
  exec_.immediates.clear();

  if (msg.flags.block) ensure_block();
  if (msg.flags.recv) {
    ensure_block();
    tb_.add_recv(exec_.block, start, msg.send_event);
  }
  exec_.clock += cfg_.entry_overhead_ns;

  chares_[static_cast<std::size_t>(msg.dst)]->on_message(msg.entry, msg.data);

  if (exec_.block != trace::kNone) tb_.end_block(exec_.block, exec_.clock);

  // SDAG serials scheduled by this execution run back-to-back on the same
  // PE with no scheduler gap (that contiguity is what absorption detects).
  std::size_t next_immediate = 0;
  std::vector<std::pair<trace::EntryId, MsgData>> chain =
      std::move(exec_.immediates);
  while (next_immediate < chain.size()) {
    auto [entry, data] = std::move(chain[next_immediate++]);
    exec_.entry = entry;
    exec_.begin = exec_.clock;
    exec_.block = trace::kNone;
    exec_.immediates.clear();
    ensure_block();  // serial blocks are always recorded
    exec_.clock += cfg_.entry_overhead_ns;
    chares_[static_cast<std::size_t>(exec_.chare)]->on_message(entry, data);
    tb_.end_block(exec_.block, exec_.clock);
    for (auto& more : exec_.immediates) chain.push_back(std::move(more));
  }

  exec_.active = false;
}

trace::Trace Runtime::run() {
  LS_CHECK_MSG(!ran_, "run() called twice");
  ran_ = true;
  OBS_SPAN(span, "sim/charm/run");

  while (pending_msgs_ > 0) {
    // Pick the execution that starts earliest across all PEs.
    trace::ProcId best_pe = trace::kNone;
    trace::TimeNs best_start = 0;
    for (trace::ProcId p = 0; p < cfg_.num_pes; ++p) {
      auto& q = queues_[static_cast<std::size_t>(p)];
      if (q.empty()) continue;
      trace::TimeNs s =
          std::max(pe_free_[static_cast<std::size_t>(p)], q.top().arrival);
      if (best_pe == trace::kNone || s < best_start ||
          (s == best_start && q.top().seq <
                                  queues_[static_cast<std::size_t>(best_pe)]
                                      .top()
                                      .seq)) {
        best_pe = p;
        best_start = s;
      }
    }
    LS_CHECK(best_pe != trace::kNone);

    auto& q = queues_[static_cast<std::size_t>(best_pe)];
    Message msg = q.top();
    q.pop();
    --pending_msgs_;

    trace::TimeNs free_at = pe_free_[static_cast<std::size_t>(best_pe)];
    if (best_start > free_at) tb_.add_idle(best_pe, free_at, best_start);

    execute(msg, best_start, best_pe);
    pe_free_[static_cast<std::size_t>(best_pe)] = exec_.clock;
  }

  span.attr("events", tb_.num_events());
  span.attr("pes", cfg_.num_pes);
  return tb_.finish(cfg_.num_pes);
}

}  // namespace logstruct::sim::charm
