#pragma once

/// \file projections.hpp
/// Charm++ Projections-style log compatibility.
///
/// The Charm++ tracing framework the paper instruments (§2.1, §5) writes
/// one text log per processor plus an .sts metadata file; Projections
/// visualizes them. This module writes and reads that shape of data so
/// traces produced here can be eyeballed against the original tooling's
/// conventions, and so the §5 additions have a concrete serialization:
///
///   <name>.sts         — entry/chare tables:
///                          ENTRY <id> <runtime> <sdag> <name...>
///                          CHARE <id> <array> <index> <runtime> <name...>
///   <name>.<pe>.log    — time-ordered records per PE:
///                          CREATION <event> <entry> <time> <dest-pe>
///                          BEGIN_PROCESSING <event> <entry> <time>
///                              <chare> <src-event>
///                          END_PROCESSING <event> <time>
///                          BEGIN_IDLE <time> / END_IDLE <time>
///
/// Event numbers are global ids; a receive's <src-event> names the
/// CREATION that produced it (-1 when the dependency was not traced —
/// the PDES situation). Collectives are not representable (they are an
/// MPI-model abstraction); exporting a trace containing them fails.

#include <string>

#include "trace/diagnostics.hpp"
#include "trace/trace.hpp"

namespace logstruct::trace {

/// Write `<prefix>.sts` and `<prefix>.<pe>.log` for every PE.
/// Returns false on I/O failure or if the trace holds collectives.
bool write_projections(const Trace& trace, const std::string& prefix);

/// Read logs written by write_projections. Throws std::runtime_error on
/// malformed input or missing files.
Trace read_projections(const std::string& prefix);

/// Read with explicit options. In ReadOptions::recovering() mode missing
/// PE logs, truncated tails (crashed runs), garbled lines, and dangling
/// creation references become diagnostics in `report` instead of
/// exceptions; the salvage goes through trace::repair(). Never throws on
/// malformed content — an unreadable/foreign .sts yields a Fatal report
/// and an empty Trace. Strict mode behaves exactly like
/// read_projections(prefix). See docs/ROBUSTNESS.md.
Trace read_projections(const std::string& prefix,
                       const ReadOptions& options, RecoveryReport& report);

}  // namespace logstruct::trace
