#pragma once

/// \file event.hpp
/// Plain-data records of the trace model.
///
/// Mirrors the information content of Charm++'s tracing framework after the
/// paper's §5 additions: entry-method executions (SerialBlock) with begin /
/// end times, message events (Send/Recv) with matching, chare + chare-array
/// identity on every application event, runtime-chare labeling, SDAG serial
/// numbering, and per-processor idle spans.

#include <string>
#include <vector>

#include "trace/ids.hpp"

namespace logstruct::trace {

enum class EventKind : std::uint8_t { Send, Recv };

/// Provenance of one row in the flat dependency table (trace.hpp).
enum class DepKind : std::uint8_t {
  Match = 0,       ///< point-to-point send/recv partner match
  Fanout = 1,      ///< additional receiver of a broadcast send
  Collective = 2,  ///< cross-product row of a collective's sends x recvs
};

/// A dependency event: an instantaneous endpoint of a control dependency.
/// A Recv is the moment the runtime dequeues a message and begins the
/// corresponding entry method; a Send is a remote method invocation call.
struct Event {
  EventKind kind = EventKind::Send;
  TimeNs time = 0;
  ChareId chare = kNone;
  ProcId proc = kNone;
  BlockId block = kNone;  ///< owning serial block
  /// Recv: matching Send event (kNone if the dependency was not traced).
  /// Send: first matched Recv (kNone if unmatched); additional receivers of
  /// a broadcast live in Trace::fanout(). Collective members use kNone and
  /// are matched through Trace::collectives().
  EventId partner = kNone;
};

/// One uninterruptible entry-method execution ("serial block", §3.1.1).
/// Plain data so block columns can live out of core; the block's events
/// (in physical-time order) are served by Trace::events_of_block().
struct SerialBlock {
  ChareId chare = kNone;
  ProcId proc = kNone;
  EntryId entry = kNone;
  TimeNs begin = 0;
  TimeNs end = 0;
  EventId trigger = kNone;  ///< the Recv that awakened this block, if any
};

/// Entry-method metadata. SDAG `serial` sections carry their parse-order
/// number in sdag_serial; a serial guarded by `when e()` lists e in
/// when_entries (used by the absorption rule of §2.1).
struct EntryInfo {
  std::string name;
  bool runtime = false;
  std::int32_t sdag_serial = -1;
  std::vector<EntryId> when_entries;
};

struct ChareInfo {
  std::string name;
  ArrayId array = kNone;   ///< owning chare array, kNone for singletons
  std::int32_t index = -1; ///< flat index within the array
  ProcId home = kNone;     ///< PE the chare lived on (informative)
  bool runtime = false;    ///< runtime chare (e.g. CkReductionMgr)
};

struct ArrayInfo {
  std::string name;
  bool runtime = false;
};

/// A span of recorded scheduler idle time on one processor.
struct IdleSpan {
  ProcId proc = kNone;
  TimeNs begin = 0;
  TimeNs end = 0;
};

/// An abstracted collective operation (MPI model): every member posts one
/// Send on entry and one Recv on exit; each Recv depends on every Send.
struct Collective {
  std::vector<EventId> sends;
  std::vector<EventId> recvs;
};

}  // namespace logstruct::trace
