#pragma once

/// \file io.hpp
/// Plain-text trace serialization (.lstrace).
///
/// A line-oriented format in the spirit of Charm++ Projections logs: one
/// record per line, fully self-contained, diff-friendly. Used by the
/// trace_inspect example and to archive simulator outputs.
///
/// Two reading modes (see docs/ROBUSTNESS.md):
///  - strict (default): throw std::runtime_error at the first malformed
///    record — right for archived traces that are supposed to be clean.
///  - recovering (ReadOptions::recovering()): skip garbled lines, tolerate
///    a truncated tail, run trace::repair() on the salvage, and return a
///    best-effort Trace plus a RecoveryReport. Never throws on malformed
///    content; the worst case is a Fatal report with an empty Trace.

#include <iosfwd>
#include <string>

#include "trace/diagnostics.hpp"
#include "trace/trace.hpp"

namespace logstruct::trace {

/// Serialize a trace; deterministic byte-for-byte for a given trace.
void write_trace(const Trace& trace, std::ostream& out);

/// Parse a trace written by write_trace. Throws std::runtime_error on
/// malformed input (strict mode; equivalent to ReadOptions::strict()).
Trace read_trace(std::istream& in);

/// Parse with explicit options. In recover mode, problems land in
/// `report` instead of being thrown; see the file comment. In strict
/// mode this behaves exactly like read_trace(std::istream&) and `report`
/// stays empty on success.
Trace read_trace(std::istream& in, const ReadOptions& options,
                 RecoveryReport& report);

/// File wrappers. Both report failure the same way: a structured
/// DiagCode::IoError (or reader diagnostics) in `report`, never an
/// exception. save_trace returns false iff the file could not be written;
/// load_trace returns an empty Trace with report.fatal() set when the
/// file is missing or (in strict-as-recover terms) unreadable.
bool save_trace(const Trace& trace, const std::string& path,
                RecoveryReport& report);
Trace load_trace(const std::string& path, const ReadOptions& options,
                 RecoveryReport& report);

/// Historical conveniences: save_trace returns false on I/O failure
/// (dropping the diagnostics); load_trace throws std::runtime_error when
/// the file is missing or malformed.
bool save_trace(const Trace& trace, const std::string& path);
Trace load_trace(const std::string& path);

}  // namespace logstruct::trace
