#pragma once

/// \file io.hpp
/// Plain-text trace serialization (.lstrace).
///
/// A line-oriented format in the spirit of Charm++ Projections logs: one
/// record per line, fully self-contained, diff-friendly. Used by the
/// trace_inspect example and to archive simulator outputs.

#include <iosfwd>
#include <string>

#include "trace/trace.hpp"

namespace logstruct::trace {

/// Serialize a trace; deterministic byte-for-byte for a given trace.
void write_trace(const Trace& trace, std::ostream& out);

/// Parse a trace written by write_trace. Throws std::runtime_error on
/// malformed input.
Trace read_trace(std::istream& in);

/// Convenience file wrappers; return false / throw on I/O failure.
bool save_trace(const Trace& trace, const std::string& path);
Trace load_trace(const std::string& path);

}  // namespace logstruct::trace
