#pragma once

/// \file validate.hpp
/// Structural validation of traces.
///
/// Unlike LS_CHECK (logic errors), these are *input* diagnostics: a trace
/// read from disk or produced by a buggy tracing hook gets a list of
/// human-readable problems instead of an abort.

#include <string>
#include <vector>

#include "trace/trace.hpp"

namespace logstruct::util {
class Flags;
}

namespace logstruct::trace {

/// Returns a list of problems; empty means the trace is well-formed.
/// Checks: event times inside their block spans, blocks time-ordered and
/// non-overlapping per processor, partner symmetry (recv <-> send),
/// triggers are receives owned by their block, idle spans positive and
/// non-overlapping per processor, collective members have the right kinds.
std::vector<std::string> validate(const Trace& trace);

/// Shared harness hook for the `--validate` flag (defined by
/// util::define_obs_flags). When the flag is off, does nothing and
/// returns true. When on, runs validate() on `trace`, prints every
/// problem to stderr prefixed with `label`, and returns whether the
/// trace was clean. Harnesses call it once per ingested trace:
///   if (!trace::validate_cli(flags, tr, "jacobi")) return 1;
bool validate_cli(const util::Flags& flags, const Trace& trace,
                  const std::string& label);

}  // namespace logstruct::trace
