#pragma once

/// \file validate.hpp
/// Structural validation of traces.
///
/// Unlike LS_CHECK (logic errors), these are *input* diagnostics: a trace
/// read from disk or produced by a buggy tracing hook gets a list of
/// human-readable problems instead of an abort.

#include <string>
#include <vector>

#include "trace/trace.hpp"

namespace logstruct::trace {

/// Returns a list of problems; empty means the trace is well-formed.
/// Checks: event times inside their block spans, blocks time-ordered and
/// non-overlapping per processor, partner symmetry (recv <-> send),
/// triggers are receives owned by their block, idle spans positive and
/// non-overlapping per processor, collective members have the right kinds.
std::vector<std::string> validate(const Trace& trace);

}  // namespace logstruct::trace
