#include "trace/corruptor.hpp"

#include <algorithm>
#include <cctype>
#include <cstring>
#include <sstream>

#include "trace/storage/format.hpp"
#include "util/rng.hpp"

namespace logstruct::trace {

namespace {

std::vector<std::string> split_lines(const std::string& text) {
  std::vector<std::string> lines;
  std::string::size_type pos = 0;
  while (pos < text.size()) {
    std::string::size_type nl = text.find('\n', pos);
    if (nl == std::string::npos) {
      lines.push_back(text.substr(pos));
      break;
    }
    lines.push_back(text.substr(pos, nl - pos));
    pos = nl + 1;
  }
  return lines;
}

std::string join_lines(const std::vector<std::string>& lines) {
  std::string out;
  for (const std::string& l : lines) {
    out += l;
    out += '\n';
  }
  return out;
}

/// Interior lines are fair game for line faults; the first line (header)
/// stays so parsers get past the magic, and the last non-empty line (the
/// end marker) stays so line faults don't degenerate into truncation —
/// TruncateTail owns that failure mode.
struct Body {
  std::size_t first;  ///< first corruptible index
  std::size_t count;  ///< number of corruptible lines
};

Body body_of(const std::vector<std::string>& lines) {
  if (lines.size() <= 2) return {0, 0};
  return {1, lines.size() - 2};
}

/// What the Lsblk* faults need to know about a container image: where the
/// data blocks end and the tail (tables + directory + metadata) begins.
struct LsblkShape {
  bool valid = false;
  std::uint32_t version = 0;
  std::uint64_t directory_offset = 0;
  std::uint64_t data_end = 0;  ///< first byte past the last data block
};

LsblkShape lsblk_shape(const std::string& bytes) {
  using storage::ColumnDesc;
  using storage::ColumnDescV2;
  using storage::FileHeader;
  LsblkShape shape;
  if (bytes.size() < sizeof(FileHeader)) return shape;
  FileHeader header;
  std::memcpy(&header, bytes.data(), sizeof(header));
  if (header.magic != storage::kMagic || header.directory_offset == 0 ||
      header.directory_offset > bytes.size())
    return shape;
  const std::size_t desc_bytes = header.version >= 2
                                     ? sizeof(ColumnDescV2)
                                     : sizeof(ColumnDesc);
  if (header.directory_offset + header.num_columns * desc_bytes >
      bytes.size())
    return shape;
  // The data region ends at the lowest table offset any column records.
  std::uint64_t data_end = header.directory_offset;
  for (std::uint32_t i = 0; i < header.num_columns; ++i) {
    std::uint64_t offsets_offset = 0;  // field at +16 in both desc layouts
    std::memcpy(&offsets_offset,
                bytes.data() + header.directory_offset + i * desc_bytes + 16,
                sizeof(offsets_offset));
    if (offsets_offset >= sizeof(FileHeader) && offsets_offset < data_end)
      data_end = offsets_offset;
  }
  shape.version = header.version;
  shape.directory_offset = header.directory_offset;
  shape.data_end = data_end;
  shape.valid = data_end > sizeof(FileHeader);
  return shape;
}

}  // namespace

const char* fault_kind_name(FaultKind kind) {
  switch (kind) {
    case FaultKind::DropLines: return "drop_lines";
    case FaultKind::TruncateTail: return "truncate_tail";
    case FaultKind::DuplicateLines: return "duplicate_lines";
    case FaultKind::PerturbTimestamps: return "perturb_timestamps";
    case FaultKind::FlipBytes: return "flip_bytes";
    case FaultKind::LsblkFlipBlock: return "lsblk_flip_block";
    case FaultKind::LsblkTruncateDir: return "lsblk_truncate_dir";
    case FaultKind::LsblkZeroFooter: return "lsblk_zero_footer";
  }
  return "?";
}

bool parse_fault_kind(const std::string& name, FaultKind* out) {
  for (int k = 0; k < kNumFaultKinds; ++k) {
    FaultKind kind = static_cast<FaultKind>(k);
    if (name == fault_kind_name(kind)) {
      *out = kind;
      return true;
    }
  }
  return false;
}

std::string CorruptionSummary::to_string() const {
  std::ostringstream os;
  os << fault_kind_name(kind) << " seed=" << seed;
  if (lines_dropped) os << " dropped=" << lines_dropped;
  if (lines_duplicated) os << " duplicated=" << lines_duplicated;
  if (bytes_truncated) os << " truncated_bytes=" << bytes_truncated;
  if (timestamps_perturbed) os << " perturbed=" << timestamps_perturbed;
  if (bytes_flipped) os << " flipped=" << bytes_flipped;
  if (footer_zeroed) os << " footer_zeroed=" << footer_zeroed;
  return os.str();
}

TraceCorruptor::TraceCorruptor(std::uint64_t seed, double intensity)
    : seed_(seed), intensity_(std::clamp(intensity, 0.0, 1.0)) {}

std::string TraceCorruptor::corrupt(const std::string& text, FaultKind kind,
                                    CorruptionSummary* summary) {
  CorruptionSummary local;
  CorruptionSummary& s = summary ? *summary : local;
  s = CorruptionSummary{};
  s.kind = kind;
  s.seed = seed_;
  ++stream_;
  switch (kind) {
    case FaultKind::DropLines:
      return drop_lines(split_lines(text), s);
    case FaultKind::TruncateTail:
      return truncate_tail(text, s);
    case FaultKind::DuplicateLines:
      return duplicate_lines(split_lines(text), s);
    case FaultKind::PerturbTimestamps:
      return perturb_timestamps(split_lines(text), s);
    case FaultKind::FlipBytes:
      return flip_bytes(text, s);
    case FaultKind::LsblkFlipBlock:
      return lsblk_flip_block(text, s);
    case FaultKind::LsblkTruncateDir:
      return lsblk_truncate_dir(text, s);
    case FaultKind::LsblkZeroFooter:
      return lsblk_zero_footer(text, s);
  }
  return text;
}

std::string TraceCorruptor::drop_lines(std::vector<std::string> lines,
                                       CorruptionSummary& s) {
  const Body body = body_of(lines);
  if (body.count == 0) return join_lines(lines);
  util::Rng rng = util::Rng(seed_).fork(stream_);
  std::int64_t want = std::max<std::int64_t>(
      1, static_cast<std::int64_t>(intensity_ *
                                   static_cast<double>(body.count)));
  std::vector<std::string> out;
  out.reserve(lines.size());
  // Pick victim indices, then emit everything else in order.
  std::vector<char> drop(lines.size(), 0);
  for (std::int64_t i = 0; i < want; ++i) {
    std::size_t victim = body.first + rng.uniform(body.count);
    if (!drop[victim]) {
      drop[victim] = 1;
      ++s.lines_dropped;
    }
  }
  for (std::size_t i = 0; i < lines.size(); ++i)
    if (!drop[i]) out.push_back(std::move(lines[i]));
  return join_lines(out);
}

std::string TraceCorruptor::truncate_tail(const std::string& text,
                                          CorruptionSummary& s) {
  if (text.size() < 2) return text;
  util::Rng rng = util::Rng(seed_).fork(stream_);
  // Keep at least the first line; cut anywhere in the second half of the
  // rest (possibly mid-line, like a real crash).
  std::string::size_type header_end = text.find('\n');
  if (header_end == std::string::npos) return text;
  const std::size_t lo = header_end + 1;
  const std::size_t hi = text.size() - 1;  // always cut something
  const std::size_t cut =
      lo + static_cast<std::size_t>(
               rng.uniform(static_cast<std::uint64_t>(hi - lo + 1)));
  s.bytes_truncated = static_cast<std::int64_t>(text.size() - cut);
  return text.substr(0, cut);
}

std::string TraceCorruptor::duplicate_lines(std::vector<std::string> lines,
                                            CorruptionSummary& s) {
  const Body body = body_of(lines);
  if (body.count == 0) return join_lines(lines);
  util::Rng rng = util::Rng(seed_).fork(stream_);
  std::int64_t want = std::max<std::int64_t>(
      1, static_cast<std::int64_t>(intensity_ *
                                   static_cast<double>(body.count)));
  std::vector<char> dup(lines.size(), 0);
  for (std::int64_t i = 0; i < want; ++i) {
    std::size_t victim = body.first + rng.uniform(body.count);
    if (!dup[victim]) {
      dup[victim] = 1;
      ++s.lines_duplicated;
    }
  }
  std::vector<std::string> out;
  out.reserve(lines.size() + static_cast<std::size_t>(s.lines_duplicated));
  for (std::size_t i = 0; i < lines.size(); ++i) {
    out.push_back(lines[i]);
    if (dup[i]) out.push_back(std::move(lines[i]));
  }
  return join_lines(out);
}

std::string TraceCorruptor::perturb_timestamps(
    std::vector<std::string> lines, CorruptionSummary& s) {
  const Body body = body_of(lines);
  if (body.count == 0) return join_lines(lines);
  util::Rng rng = util::Rng(seed_).fork(stream_);
  std::int64_t want = std::max<std::int64_t>(
      1, static_cast<std::int64_t>(intensity_ *
                                   static_cast<double>(body.count)));
  // Deltas far beyond any real trace duration, so a perturbed time is
  // guaranteed to land outside its block span (the recovery property
  // tests rely on a perturbation always being detectable).
  constexpr std::int64_t kDeltaLo = std::int64_t{1} << 40;
  constexpr std::int64_t kDeltaHi = std::int64_t{1} << 50;
  std::int64_t budget = want;
  for (std::int64_t attempt = 0; attempt < want * 8 && budget > 0;
       ++attempt) {
    std::size_t victim = body.first + rng.uniform(body.count);
    std::string& line = lines[victim];
    // Collect the spans of whole decimal numbers on the line (skipping
    // the leading record tag, which is never numeric in our formats).
    struct NumSpan { std::size_t begin, len; };
    std::vector<NumSpan> nums;
    std::size_t i = 0;
    while (i < line.size()) {
      if (std::isdigit(static_cast<unsigned char>(line[i])) ||
          (line[i] == '-' && i + 1 < line.size() &&
           std::isdigit(static_cast<unsigned char>(line[i + 1])))) {
        std::size_t j = i + (line[i] == '-' ? 1 : 0);
        while (j < line.size() &&
               std::isdigit(static_cast<unsigned char>(line[j])))
          ++j;
        const bool boundary_ok =
            (i == 0 || line[i - 1] == ' ') &&
            (j == line.size() || line[j] == ' ');
        if (boundary_ok) nums.push_back({i, j - i});
        i = j;
      } else {
        ++i;
      }
    }
    if (nums.empty()) continue;
    const NumSpan target = nums[rng.uniform(nums.size())];
    std::int64_t value = 0;
    try {
      value = std::stoll(line.substr(target.begin, target.len));
    } catch (...) {
      continue;  // number too large to parse; leave it garbled as-is
    }
    const std::int64_t delta = rng.uniform_range(kDeltaLo, kDeltaHi);
    const std::int64_t perturbed =
        rng.uniform(2) ? value + delta : value - delta;
    line = line.substr(0, target.begin) + std::to_string(perturbed) +
           line.substr(target.begin + target.len);
    ++s.timestamps_perturbed;
    --budget;
  }
  return join_lines(lines);
}

std::string TraceCorruptor::flip_bytes(std::string text,
                                       CorruptionSummary& s) {
  if (text.empty()) return text;
  util::Rng rng = util::Rng(seed_).fork(stream_);
  std::int64_t want = std::max<std::int64_t>(
      1,
      static_cast<std::int64_t>(intensity_ *
                                static_cast<double>(text.size()) / 16.0));
  for (std::int64_t i = 0; i < want; ++i) {
    const std::size_t pos = rng.uniform(text.size());
    const unsigned bit = static_cast<unsigned>(rng.uniform(8));
    text[pos] = static_cast<char>(
        static_cast<unsigned char>(text[pos]) ^ (1u << bit));
    ++s.bytes_flipped;
  }
  return text;
}

std::string TraceCorruptor::lsblk_flip_block(std::string bytes,
                                             CorruptionSummary& s) {
  const LsblkShape shape = lsblk_shape(bytes);
  if (!shape.valid) return bytes;
  util::Rng rng = util::Rng(seed_).fork(stream_);
  const std::uint64_t span =
      shape.data_end - sizeof(storage::FileHeader);
  const std::int64_t want = std::max<std::int64_t>(
      1, static_cast<std::int64_t>(intensity_ * static_cast<double>(span) /
                                   4096.0));
  for (std::int64_t i = 0; i < want; ++i) {
    const std::size_t pos =
        sizeof(storage::FileHeader) + static_cast<std::size_t>(
                                          rng.uniform(span));
    const unsigned bit = static_cast<unsigned>(rng.uniform(8));
    bytes[pos] = static_cast<char>(
        static_cast<unsigned char>(bytes[pos]) ^ (1u << bit));
    ++s.bytes_flipped;
  }
  return bytes;
}

std::string TraceCorruptor::lsblk_truncate_dir(const std::string& bytes,
                                               CorruptionSummary& s) {
  const LsblkShape shape = lsblk_shape(bytes);
  if (!shape.valid) return bytes;
  util::Rng rng = util::Rng(seed_).fork(stream_);
  // Cut anywhere from the start of the directory to the last byte: the
  // footer is always lost, the directory usually mid-entry.
  const std::uint64_t span = bytes.size() - shape.directory_offset;
  const std::size_t cut =
      static_cast<std::size_t>(shape.directory_offset +
                               rng.uniform(span));
  s.bytes_truncated = static_cast<std::int64_t>(bytes.size() - cut);
  return bytes.substr(0, cut);
}

std::string TraceCorruptor::lsblk_zero_footer(std::string bytes,
                                              CorruptionSummary& s) {
  const LsblkShape shape = lsblk_shape(bytes);
  if (!shape.valid || shape.version < 2 ||
      bytes.size() < sizeof(storage::CommitFooter))
    return bytes;
  std::memset(bytes.data() + bytes.size() - sizeof(storage::CommitFooter),
              0, sizeof(storage::CommitFooter));
  s.footer_zeroed = 1;
  return bytes;
}

}  // namespace logstruct::trace
