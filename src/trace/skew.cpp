#include "trace/skew.hpp"

#include "util/check.hpp"

namespace logstruct::trace {

Trace apply_clock_skew(const Trace& trace, std::span<const TimeNs> delta) {
  LS_CHECK(delta.size() >= static_cast<std::size_t>(trace.num_procs()));
  // Materialize the shifted primary columns from the accessors (works
  // against either backend) and re-freeze: per-chare time orders can
  // change under skew, and the output lands on the backend currently
  // selected by storage::default_options().
  Trace out;
  out.chares_ = trace.chares_;
  out.arrays_ = trace.arrays_;
  out.entries_ = trace.entries_;
  out.collectives_ = trace.collectives_;
  out.degraded_chare_ = trace.degraded_chare_;
  out.num_procs_ = trace.num_procs_;

  out.events_.reserve(static_cast<std::size_t>(trace.num_events()));
  for (Event e : trace.events()) {
    e.time += delta[static_cast<std::size_t>(e.proc)];
    out.events_.push_back(e);
  }
  out.blocks_.reserve(static_cast<std::size_t>(trace.num_blocks()));
  for (SerialBlock b : trace.blocks()) {
    b.begin += delta[static_cast<std::size_t>(b.proc)];
    b.end += delta[static_cast<std::size_t>(b.proc)];
    out.blocks_.push_back(b);
  }
  out.idles_.reserve(trace.idles().size());
  for (IdleSpan s : trace.idles()) {
    s.begin += delta[static_cast<std::size_t>(s.proc)];
    s.end += delta[static_cast<std::size_t>(s.proc)];
    out.idles_.push_back(s);
  }
  out.freeze();
  return out;
}

}  // namespace logstruct::trace
