#include "trace/skew.hpp"

#include "util/check.hpp"

namespace logstruct::trace {

Trace apply_clock_skew(const Trace& trace, std::span<const TimeNs> delta) {
  LS_CHECK(delta.size() >= static_cast<std::size_t>(trace.num_procs()));
  Trace out = trace;
  for (Event& e : out.events_) e.time += delta[static_cast<std::size_t>(e.proc)];
  for (SerialBlock& b : out.blocks_) {
    b.begin += delta[static_cast<std::size_t>(b.proc)];
    b.end += delta[static_cast<std::size_t>(b.proc)];
  }
  for (IdleSpan& s : out.idles_) {
    s.begin += delta[static_cast<std::size_t>(s.proc)];
    s.end += delta[static_cast<std::size_t>(s.proc)];
  }
  out.freeze();  // per-chare time orders can change under skew
  return out;
}

}  // namespace logstruct::trace
