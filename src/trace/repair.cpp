#include "trace/repair.hpp"

#include <algorithm>
#include <sstream>
#include <unordered_map>

#include "obs/obs.hpp"
#include "util/check.hpp"

namespace logstruct::trace {

namespace {

/// Ids beyond (table size + slack) are garbage, not gaps: stubbing or
/// remapping them would let one flipped digit allocate unbounded memory.
constexpr std::int64_t kIdSlack = 4096;

/// Claimed processor counts above this are treated as garbled (the freeze
/// allocates per-PE index lists).
constexpr std::int32_t kMaxProcs = 1 << 20;

/// Timestamps are clamped into ±2^53 ns (~104 days) so downstream sums
/// and differences can never overflow, sanitizers included.
constexpr TimeNs kTimeCap = TimeNs{1} << 53;

template <typename... Args>
std::string cat(Args&&... args) {
  std::ostringstream os;
  (os << ... << args);
  return os.str();
}

TimeNs clamp_time(TimeNs t, std::int64_t* clamped) {
  if (t > kTimeCap) {
    ++*clamped;
    return kTimeCap;
  }
  if (t < -kTimeCap) {
    ++*clamped;
    return -kTimeCap;
  }
  return t;
}

/// Sort a raw table by claimed id (file order preserved within one id),
/// drop duplicates and out-of-cap ids, and report gaps. Returns the
/// number of distinct valid ids; `remap` (when non-null) receives
/// claimed id -> dense index.
template <typename Rec>
std::int64_t normalize_ids(
    std::vector<Rec>& recs, const char* what, RecoveryReport& report,
    std::unordered_map<std::int64_t, std::int32_t>* remap) {
  const std::int64_t cap =
      static_cast<std::int64_t>(recs.size()) + kIdSlack;
  std::vector<Rec> kept;
  kept.reserve(recs.size());
  for (Rec& r : recs) {
    if (r.id < 0 || r.id >= cap) {
      report.add(DiagCode::DroppedRecord, Severity::Warning,
                 cat(what, " id ", r.id, " out of plausible range"));
      continue;
    }
    kept.push_back(std::move(r));
  }
  std::stable_sort(kept.begin(), kept.end(),
                   [](const Rec& a, const Rec& b) { return a.id < b.id; });
  std::vector<Rec> out;
  out.reserve(kept.size());
  std::int64_t prev = -1;
  for (Rec& r : kept) {
    if (r.id == prev) {
      report.add(DiagCode::DeduplicatedRecord, Severity::Warning,
                 cat("duplicate ", what, " id ", r.id, " dropped"));
      continue;
    }
    if (prev >= 0 && r.id != prev + 1) {
      report.add(DiagCode::NonSequentialId, Severity::Warning,
                 cat(what, " ids skip from ", prev, " to ", r.id,
                     " (lines lost)"));
    }
    prev = r.id;
    out.push_back(std::move(r));
  }
  if (remap) {
    remap->clear();
    remap->reserve(out.size());
    for (std::size_t i = 0; i < out.size(); ++i)
      (*remap)[out[i].id] = static_cast<std::int32_t>(i);
  }
  recs = std::move(out);
  return static_cast<std::int64_t>(recs.size());
}

/// Densify a metadata table, synthesizing placeholder records for gaps so
/// surviving references by original id stay correct. `needed` extends the
/// table when later records reference ids past the claimed maximum.
template <typename Info>
std::vector<Info> densify_meta(std::vector<RawRecord<Info>>& recs,
                               std::int64_t needed, const char* what,
                               RecoveryReport& report) {
  std::int64_t size = recs.empty() ? 0 : recs.back().id + 1;
  size = std::max(size, needed);
  std::vector<Info> out(static_cast<std::size_t>(size));
  std::vector<char> present(static_cast<std::size_t>(size), 0);
  for (RawRecord<Info>& r : recs) {
    out[static_cast<std::size_t>(r.id)] = std::move(r.info);
    present[static_cast<std::size_t>(r.id)] = 1;
  }
  for (std::int64_t i = 0; i < size; ++i) {
    if (present[static_cast<std::size_t>(i)]) continue;
    out[static_cast<std::size_t>(i)].name = cat("<recovered ", what, ' ', i,
                                                '>');
    report.add(DiagCode::StubbedMetadata, Severity::Warning,
               cat(what, ' ', i, " lost; placeholder synthesized"));
  }
  return out;
}

}  // namespace

void repair(RawTrace& raw, RecoveryReport& report) {
  OBS_SPAN_ANON("trace/repair");
  std::int64_t clamped = 0;

  // --- metadata tables: dedup, then densify with stubs -----------------
  normalize_ids(raw.arrays, "array", report, nullptr);
  normalize_ids(raw.chares, "chare", report, nullptr);
  normalize_ids(raw.entries, "entry", report, nullptr);
  normalize_ids(raw.blocks, "block", report, nullptr);

  // References may name metadata ids whose defining lines were lost; the
  // reference proves the record existed, so extend the stub range to
  // cover it (within the anti-balloon cap).
  const std::int64_t chare_cap =
      static_cast<std::int64_t>(raw.chares.size()) + kIdSlack;
  const std::int64_t entry_cap =
      static_cast<std::int64_t>(raw.entries.size()) + kIdSlack;
  const std::int64_t array_cap =
      static_cast<std::int64_t>(raw.arrays.size()) + kIdSlack;
  std::int64_t chares_needed = 0, entries_needed = 0, arrays_needed = 0;
  for (const RawBlock& b : raw.blocks) {
    if (b.chare >= 0 && b.chare < chare_cap)
      chares_needed = std::max(chares_needed, b.chare + 1);
    if (b.entry >= 0 && b.entry < entry_cap)
      entries_needed = std::max(entries_needed, b.entry + 1);
  }
  for (const RawRecord<ChareInfo>& c : raw.chares) {
    if (c.info.array != kNone && c.info.array >= 0 &&
        c.info.array < array_cap)
      arrays_needed = std::max(arrays_needed,
                               static_cast<std::int64_t>(c.info.array) + 1);
  }

  std::vector<ArrayInfo> arrays =
      densify_meta(raw.arrays, arrays_needed, "array", report);
  std::vector<ChareInfo> chares =
      densify_meta(raw.chares, chares_needed, "chare", report);
  std::vector<EntryInfo> entries =
      densify_meta(raw.entries, entries_needed, "entry", report);

  // Fix intra-metadata references on the densified tables.
  for (ChareInfo& c : chares) {
    if (c.array != kNone &&
        (c.array < 0 ||
         static_cast<std::size_t>(c.array) >= arrays.size())) {
      report.add(DiagCode::DanglingReference, Severity::Warning,
                 cat("chare references lost array ", c.array));
      c.array = kNone;
    }
  }
  for (EntryInfo& e : entries) {
    auto bad = [&](EntryId w) {
      return w < 0 || static_cast<std::size_t>(w) >= entries.size();
    };
    for (EntryId w : e.when_entries) {
      if (bad(w))
        report.add(DiagCode::DanglingReference, Severity::Warning,
                   cat("entry when-list references lost entry ", w));
    }
    e.when_entries.erase(
        std::remove_if(e.when_entries.begin(), e.when_entries.end(), bad),
        e.when_entries.end());
    if (e.sdag_serial < -1) e.sdag_serial = -1;
  }

  // --- processor count --------------------------------------------------
  if (raw.num_procs < 0 || raw.num_procs > kMaxProcs) {
    report.add(DiagCode::ParseError, Severity::Warning,
               cat("implausible processor count ", raw.num_procs,
                   "; recomputing from content"));
    raw.num_procs = 0;
  }

  // --- blocks: drop unusable ones, clamp spans --------------------------
  const std::int32_t proc_cap = std::max(raw.num_procs, kMaxProcs);
  std::unordered_map<std::int64_t, std::int32_t> block_remap;
  {
    std::vector<RawBlock> kept;
    kept.reserve(raw.blocks.size());
    for (RawBlock& b : raw.blocks) {
      const bool bad_chare =
          b.chare < 0 || static_cast<std::size_t>(b.chare) >= chares.size();
      const bool bad_entry =
          b.entry < 0 ||
          static_cast<std::size_t>(b.entry) >= entries.size();
      const bool bad_proc = b.proc < 0 || b.proc >= proc_cap;
      if (bad_chare || bad_entry || bad_proc) {
        report.add(DiagCode::DanglingReference, Severity::Error,
                   cat("block ", b.id, " dropped: invalid ",
                       bad_chare ? "chare" : bad_proc ? "proc" : "entry",
                       " reference"));
        continue;
      }
      b.begin = clamp_time(b.begin, &clamped);
      b.end = clamp_time(b.end, &clamped);
      if (b.has_end && b.end < b.begin) {
        report.add(DiagCode::SynthesizedBlockEnd, Severity::Warning,
                   cat("block ", b.id, " ended before it began; end reset"));
        b.has_end = false;
        b.end = b.begin;
      }
      kept.push_back(std::move(b));
    }
    raw.blocks = std::move(kept);
    block_remap.reserve(raw.blocks.size());
    for (std::size_t i = 0; i < raw.blocks.size(); ++i)
      block_remap[raw.blocks[i].id] = static_cast<std::int32_t>(i);
    raw.num_procs = std::max(raw.num_procs, 0);
    for (const RawBlock& b : raw.blocks)
      raw.num_procs = std::max(raw.num_procs, b.proc + 1);
  }

  // --- events: dedup/densify, remap block refs, clamp times ------------
  std::unordered_map<std::int64_t, std::int32_t> event_remap;
  normalize_ids(raw.events, "event", report, nullptr);
  {
    std::vector<RawEvent> kept;
    kept.reserve(raw.events.size());
    for (RawEvent& e : raw.events) {
      auto it = block_remap.find(e.block);
      if (it == block_remap.end()) {
        report.add(DiagCode::DanglingReference, Severity::Error,
                   cat("event ", e.id, " dropped: its block ", e.block,
                       " was lost"));
        continue;
      }
      e.block = it->second;
      e.time = clamp_time(e.time, &clamped);
      kept.push_back(std::move(e));
    }
    raw.events = std::move(kept);
    event_remap.reserve(raw.events.size());
    for (std::size_t i = 0; i < raw.events.size(); ++i)
      event_remap[raw.events[i].id] = static_cast<std::int32_t>(i);
  }

  auto mark_degraded = [&](std::int64_t chare) {
    if (chare >= 0 && static_cast<std::size_t>(chare) < chares.size())
      raw.degraded_chares.push_back(chare);
  };

  // Partner references live on the receive side (send-side values are
  // rebuilt at freeze). A partner that was lost, or that is not a send,
  // degrades to the untraced-dependency case the pipeline already
  // handles — and quarantines the chares involved.
  for (std::size_t i = 0; i < raw.events.size(); ++i) {
    RawEvent& e = raw.events[i];
    if (e.kind != EventKind::Recv) {
      e.partner = kNone;  // rebuilt from the recv side
      continue;
    }
    if (e.partner == kNone) continue;
    auto it = event_remap.find(e.partner);
    const std::int64_t recv_chare =
        raw.blocks[static_cast<std::size_t>(e.block)].chare;
    if (it == event_remap.end()) {
      report.add(DiagCode::DroppedDanglingPartner, Severity::Warning,
                 cat("recv ", e.id, " lost its matching send ", e.partner));
      e.partner = kNone;
      mark_degraded(recv_chare);
      continue;
    }
    const RawEvent& s = raw.events[static_cast<std::size_t>(it->second)];
    if (s.kind != EventKind::Send ||
        it->second == static_cast<std::int32_t>(i)) {
      report.add(DiagCode::DroppedDanglingPartner, Severity::Warning,
                 cat("recv ", e.id, " partnered with a non-send; match "
                     "dropped"));
      e.partner = kNone;
      mark_degraded(recv_chare);
      continue;
    }
    e.partner = it->second;
  }

  // --- per-block event containment and block-end synthesis -------------
  {
    std::vector<std::vector<std::int32_t>> events_of_block(
        raw.blocks.size());
    for (std::size_t i = 0; i < raw.events.size(); ++i)
      events_of_block[static_cast<std::size_t>(raw.events[i].block)]
          .push_back(static_cast<std::int32_t>(i));
    for (std::size_t b = 0; b < raw.blocks.size(); ++b) {
      RawBlock& blk = raw.blocks[b];
      if (!blk.has_end) {
        TimeNs end = blk.begin;
        for (std::int32_t ei : events_of_block[b])
          end = std::max(end, raw.events[static_cast<std::size_t>(ei)].time);
        blk.end = end;
        blk.has_end = true;
        report.add(DiagCode::SynthesizedBlockEnd, Severity::Warning,
                   cat("block ", blk.id, " end synthesized at t=", end,
                       " (log truncated)"));
      }
      for (std::int32_t ei : events_of_block[b]) {
        RawEvent& e = raw.events[static_cast<std::size_t>(ei)];
        const TimeNs fixed = std::clamp(e.time, blk.begin, blk.end);
        if (fixed != e.time) {
          report.add(DiagCode::ClampedTimestamp, Severity::Warning,
                     cat("event ", e.id, " at t=", e.time,
                         " clamped into its block span [", blk.begin, ",",
                         blk.end, "]"));
          e.time = fixed;
        }
      }
    }
  }

  // --- per-proc block overlap resolution --------------------------------
  // A perturbed begin/end line (or a synthesized end) can make two
  // serial blocks on one PE overlap, which no real execution produces.
  // Sweep each PE's blocks in the (begin, id) order Trace::freeze uses
  // and push an overlapping begin up to its predecessor's end. A clamp
  // can change the sort order, so repeat until a sweep finds nothing;
  // every clamp strictly increases a begin bounded by the max end, so
  // this terminates. Runs after end synthesis (which can extend spans)
  // and re-contains events itself — the block-level diagnostic covers
  // the events dragged along with the span.
  {
    std::vector<std::size_t> order(raw.blocks.size());
    for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
    bool moved_any = false;
    bool changed = true;
    while (changed) {
      changed = false;
      std::sort(order.begin(), order.end(),
                [&](std::size_t a, std::size_t b) {
                  const RawBlock& ba = raw.blocks[a];
                  const RawBlock& bb = raw.blocks[b];
                  if (ba.proc != bb.proc) return ba.proc < bb.proc;
                  if (ba.begin != bb.begin) return ba.begin < bb.begin;
                  return a < b;
                });
      for (std::size_t i = 1; i < order.size(); ++i) {
        const RawBlock& prev = raw.blocks[order[i - 1]];
        RawBlock& cur = raw.blocks[order[i]];
        if (cur.proc != prev.proc || cur.begin >= prev.end) continue;
        report.add(DiagCode::ClampedTimestamp, Severity::Warning,
                   cat("block ", cur.id, " began at t=", cur.begin,
                       " inside block ", prev.id, " on proc ", cur.proc,
                       "; begin clamped to t=", prev.end));
        cur.begin = prev.end;
        if (cur.end < cur.begin) cur.end = cur.begin;
        changed = true;
        moved_any = true;
      }
    }
    if (moved_any) {
      for (RawEvent& e : raw.events) {
        const RawBlock& blk = raw.blocks[static_cast<std::size_t>(e.block)];
        e.time = std::clamp(e.time, blk.begin, blk.end);
      }
    }
  }

  // --- causality: a recv may not precede its send -----------------------
  for (RawEvent& e : raw.events) {
    if (e.kind != EventKind::Recv || e.partner == kNone) continue;
    const RawEvent& s = raw.events[static_cast<std::size_t>(e.partner)];
    if (s.time <= e.time) continue;
    const RawBlock& blk = raw.blocks[static_cast<std::size_t>(e.block)];
    if (s.time <= blk.end) {
      report.add(DiagCode::ClampedTimestamp, Severity::Warning,
                 cat("recv ", e.id, " at t=", e.time,
                     " preceded its send; clamped to t=", s.time));
      e.time = s.time;
    } else {
      // Clamping would push the recv outside its block; the match cannot
      // be salvaged without breaking well-formedness.
      report.add(DiagCode::DroppedDanglingPartner, Severity::Warning,
                 cat("recv ", e.id, " precedes its send by more than its "
                     "block span; match dropped"));
      mark_degraded(blk.chare);
      mark_degraded(raw.blocks[static_cast<std::size_t>(s.block)].chare);
      e.partner = kNone;
    }
  }

  // --- idle spans: range, duplicates, per-proc overlap ------------------
  {
    std::vector<IdleSpan> kept;
    kept.reserve(raw.idles.size());
    for (IdleSpan s : raw.idles) {
      s.begin = clamp_time(s.begin, &clamped);
      s.end = clamp_time(s.end, &clamped);
      if (s.proc < 0 || s.proc >= proc_cap || s.end <= s.begin) {
        report.add(DiagCode::DroppedRecord, Severity::Warning,
                   cat("idle span on proc ", s.proc,
                       " dropped (empty or invalid)"));
        continue;
      }
      raw.num_procs = std::max(raw.num_procs, s.proc + 1);
      kept.push_back(s);
    }
    // Overlap/duplicate pass over a (proc, begin) sorted view; output
    // order stays the file order (write_trace round-trips).
    std::vector<std::int32_t> order(kept.size());
    for (std::size_t i = 0; i < order.size(); ++i)
      order[i] = static_cast<std::int32_t>(i);
    std::stable_sort(order.begin(), order.end(),
                     [&](std::int32_t a, std::int32_t b) {
                       const IdleSpan& x = kept[static_cast<std::size_t>(a)];
                       const IdleSpan& y = kept[static_cast<std::size_t>(b)];
                       if (x.proc != y.proc) return x.proc < y.proc;
                       if (x.begin != y.begin) return x.begin < y.begin;
                       return x.end < y.end;
                     });
    std::vector<char> drop(kept.size(), 0);
    for (std::size_t i = 1; i < order.size(); ++i) {
      IdleSpan& prev = kept[static_cast<std::size_t>(order[i - 1])];
      IdleSpan& cur = kept[static_cast<std::size_t>(order[i])];
      if (cur.proc != prev.proc) continue;
      if (cur.begin == prev.begin && cur.end == prev.end) {
        report.add(DiagCode::DeduplicatedRecord, Severity::Warning,
                   cat("duplicate idle span on proc ", cur.proc,
                       " dropped"));
        drop[static_cast<std::size_t>(order[i])] = 1;
        // Keep prev as the comparison anchor for the next span.
        order[i] = order[i - 1];
        continue;
      }
      if (cur.begin < prev.end) {
        if (cur.end <= prev.end) {
          report.add(DiagCode::DroppedRecord, Severity::Warning,
                     cat("idle span on proc ", cur.proc,
                         " nested inside another; dropped"));
          drop[static_cast<std::size_t>(order[i])] = 1;
          order[i] = order[i - 1];
        } else {
          report.add(DiagCode::ClampedTimestamp, Severity::Warning,
                     cat("overlapping idle spans on proc ", cur.proc,
                         "; begin clamped to t=", prev.end));
          cur.begin = prev.end;
        }
      }
    }
    std::vector<IdleSpan> out;
    out.reserve(kept.size());
    for (std::size_t i = 0; i < kept.size(); ++i)
      if (!drop[i]) out.push_back(kept[i]);
    raw.idles = std::move(out);
  }

  // --- collectives: remap members, enforce member kinds -----------------
  {
    std::vector<RawCollective> kept;
    kept.reserve(raw.collectives.size());
    for (RawCollective& coll : raw.collectives) {
      RawCollective fixed;
      auto remap_members = [&](const std::vector<std::int64_t>& in,
                               EventKind want,
                               std::vector<std::int64_t>& out) {
        for (std::int64_t m : in) {
          auto it = event_remap.find(m);
          if (it == event_remap.end() ||
              raw.events[static_cast<std::size_t>(it->second)].kind !=
                  want) {
            report.add(DiagCode::DanglingReference, Severity::Warning,
                       cat("collective member ", m,
                           " lost or wrong kind; dropped"));
            continue;
          }
          out.push_back(it->second);
        }
      };
      remap_members(coll.sends, EventKind::Send, fixed.sends);
      remap_members(coll.recvs, EventKind::Recv, fixed.recvs);
      if (fixed.sends.empty() && fixed.recvs.empty()) {
        if (!coll.sends.empty() || !coll.recvs.empty())
          report.add(DiagCode::DroppedRecord, Severity::Warning,
                     "collective dropped: every member was lost");
        continue;
      }
      kept.push_back(std::move(fixed));
    }
    raw.collectives = std::move(kept);
  }

  if (clamped > 0)
    report.add(DiagCode::ClampedTimestamp, Severity::Warning,
               cat(clamped, " timestamp(s) outside the sane range were "
                   "clamped"));

  // Stash the densified metadata back through the raw record vectors so
  // build_trace can move it out.
  raw.arrays.clear();
  for (std::size_t i = 0; i < arrays.size(); ++i)
    raw.arrays.push_back({static_cast<std::int64_t>(i),
                          std::move(arrays[i])});
  raw.chares.clear();
  for (std::size_t i = 0; i < chares.size(); ++i)
    raw.chares.push_back({static_cast<std::int64_t>(i),
                          std::move(chares[i])});
  raw.entries.clear();
  for (std::size_t i = 0; i < entries.size(); ++i)
    raw.entries.push_back({static_cast<std::int64_t>(i),
                           std::move(entries[i])});

  // Degraded set: dedup, bound-check.
  std::sort(raw.degraded_chares.begin(), raw.degraded_chares.end());
  raw.degraded_chares.erase(std::unique(raw.degraded_chares.begin(),
                                        raw.degraded_chares.end()),
                            raw.degraded_chares.end());
}

Trace build_trace(RawTrace&& raw, int threads) {
  Trace trace;
  trace.num_procs_ = raw.num_procs;
  trace.arrays_.reserve(raw.arrays.size());
  for (auto& r : raw.arrays) trace.arrays_.push_back(std::move(r.info));
  trace.chares_.reserve(raw.chares.size());
  for (auto& r : raw.chares) trace.chares_.push_back(std::move(r.info));
  trace.entries_.reserve(raw.entries.size());
  for (auto& r : raw.entries) trace.entries_.push_back(std::move(r.info));

  trace.blocks_.reserve(raw.blocks.size());
  for (const RawBlock& b : raw.blocks) {
    LS_CHECK_MSG(b.chare >= 0 && static_cast<std::size_t>(b.chare) <
                                     trace.chares_.size(),
                 "build_trace: unrepaired chare reference");
    LS_CHECK_MSG(b.entry >= 0 && static_cast<std::size_t>(b.entry) <
                                     trace.entries_.size(),
                 "build_trace: unrepaired entry reference");
    SerialBlock blk;
    blk.chare = static_cast<ChareId>(b.chare);
    blk.proc = b.proc;
    blk.entry = static_cast<EntryId>(b.entry);
    blk.begin = b.begin;
    blk.end = b.end;
    trace.blocks_.push_back(std::move(blk));
  }

  trace.events_.reserve(raw.events.size());
  for (std::size_t i = 0; i < raw.events.size(); ++i) {
    const RawEvent& re = raw.events[i];
    LS_CHECK_MSG(re.block >= 0 && static_cast<std::size_t>(re.block) <
                                      trace.blocks_.size(),
                 "build_trace: unrepaired block reference");
    SerialBlock& blk = trace.blocks_[static_cast<std::size_t>(re.block)];
    Event e;
    e.kind = re.kind;
    e.time = re.time;
    e.block = static_cast<BlockId>(re.block);
    e.chare = blk.chare;
    e.proc = blk.proc;
    e.partner =
        re.partner == kNone ? kNone : static_cast<EventId>(re.partner);
    trace.events_.push_back(e);
  }

  // The trigger is each block's first receive in (time, id) order — the
  // same event the historical stable-sort-by-time pass picked, found
  // here with a single argmin scan (the freeze sorts the within-block
  // event lists itself).
  for (std::size_t i = 0; i < trace.events_.size(); ++i) {
    const Event& e = trace.events_[i];
    if (e.kind != EventKind::Recv) continue;
    SerialBlock& blk = trace.blocks_[static_cast<std::size_t>(e.block)];
    if (blk.trigger == kNone ||
        e.time <
            trace.events_[static_cast<std::size_t>(blk.trigger)].time)
      blk.trigger = static_cast<EventId>(i);
  }

  // Send-side matching rebuilt from the recv side, in recv id order (the
  // same order the strict reader produces).
  for (EventId id = 0; id < static_cast<EventId>(trace.events_.size());
       ++id) {
    Event& e = trace.events_[static_cast<std::size_t>(id)];
    if (e.kind != EventKind::Recv || e.partner == kNone) continue;
    LS_CHECK_MSG(e.partner >= 0 && static_cast<std::size_t>(e.partner) <
                                       trace.events_.size(),
                 "build_trace: unrepaired partner reference");
    Event& s = trace.events_[static_cast<std::size_t>(e.partner)];
    LS_CHECK_MSG(s.kind == EventKind::Send,
                 "build_trace: unrepaired partner kind");
    if (s.partner == kNone) s.partner = id;
    // Fan-out rows are rebuilt from the recv side at freeze time.
  }

  trace.collectives_.reserve(raw.collectives.size());
  for (const RawCollective& coll : raw.collectives) {
    Collective c;
    c.sends.reserve(coll.sends.size());
    for (std::int64_t s : coll.sends)
      c.sends.push_back(static_cast<EventId>(s));
    c.recvs.reserve(coll.recvs.size());
    for (std::int64_t r : coll.recvs)
      c.recvs.push_back(static_cast<EventId>(r));
    trace.collectives_.push_back(std::move(c));
  }

  trace.idles_ = std::move(raw.idles);

  if (!raw.degraded_chares.empty()) {
    trace.degraded_chare_.assign(trace.chares_.size(), 0);
    for (std::int64_t c : raw.degraded_chares) {
      if (c >= 0 && static_cast<std::size_t>(c) < trace.chares_.size())
        trace.degraded_chare_[static_cast<std::size_t>(c)] = 1;
    }
  }

  trace.freeze(threads);
  return trace;
}

}  // namespace logstruct::trace
