#pragma once

/// \file sdag.hpp
/// Structured Dagger (SDAG) inference (paper §2.1).
///
/// SDAG control flow is implemented by the runtime and not directly traced,
/// so two pieces of structure are reconstructed from entry-method naming:
///
/// 1. *Absorption*: the serial guarded by `when e()` runs immediately after
///    the arrival of e; the e-execution directly preceding a serial on the
///    same chare is treated as part of that serial for ordering purposes.
/// 2. *Serial adjacency*: serial n observed directly before serial n+1 in
///    true time on the same chare implies happened-before.

#include <utility>
#include <vector>

#include "trace/trace.hpp"

namespace logstruct::trace {

/// For every block, the block it is absorbed into for ordering (itself when
/// not absorbed). Chains are flattened: the result is always a
/// representative that maps to itself.
std::vector<BlockId> compute_sdag_absorption(const Trace& trace);

/// Inferred happened-before pairs (earlier block, later block): for each
/// chare, a block of SDAG serial n is linked to the nearest later block of
/// serial n+1 on that chare.
std::vector<std::pair<BlockId, BlockId>> sdag_happened_before(
    const Trace& trace);

}  // namespace logstruct::trace
