#include "trace/selftrace.hpp"

#include <algorithm>
#include <string>
#include <unordered_map>
#include <vector>

#include "trace/builder.hpp"

namespace logstruct::trace {

Trace spans_to_trace(std::span<const obs::Span> spans) {
  TraceBuilder tb;
  if (spans.empty()) return tb.finish(0);

  const std::size_t n = spans.size();

  // Nesting depth per span; a parent always has a smaller id than its
  // children (ids are assigned at begin time).
  std::vector<std::int32_t> depth(n, 0);
  std::int32_t max_depth = 0;
  std::int32_t max_thread = 0;
  TimeNs horizon = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const obs::Span& s = spans[i];
    if (s.parent != obs::kNoSpan &&
        static_cast<std::size_t>(s.parent) < i)
      depth[i] = depth[static_cast<std::size_t>(s.parent)] + 1;
    max_depth = std::max(max_depth, depth[i]);
    max_thread = std::max(max_thread, s.thread);
    horizon = std::max({horizon, s.begin_ns, s.end_ns});
  }
  const std::int32_t lanes = max_depth + 1;
  const std::int32_t num_procs = (max_thread + 1) * lanes;

  auto proc_of = [&](std::size_t i) {
    return static_cast<ProcId>(spans[i].thread * lanes + depth[i]);
  };
  auto end_of = [&](std::size_t i) {
    // Open spans are clamped to the snapshot horizon.
    const obs::Span& s = spans[i];
    return std::max(s.begin_ns, s.open ? horizon : s.end_ns);
  };

  // One chare and one entry per distinct span name.
  ArrayId self_array = tb.add_array("self");
  std::unordered_map<std::string, ChareId> chare_of_name;
  std::unordered_map<std::string, EntryId> entry_of_name;
  std::vector<ChareId> chare(n);
  std::vector<EntryId> entry(n);
  for (std::size_t i = 0; i < n; ++i) {
    const std::string& name = spans[i].name;
    auto [cit, cnew] = chare_of_name.try_emplace(name, kNone);
    if (cnew) {
      cit->second = tb.add_chare(
          name, self_array,
          static_cast<std::int32_t>(chare_of_name.size()) - 1, proc_of(i));
      entry_of_name[name] = tb.add_entry(name);
    }
    chare[i] = cit->second;
    entry[i] = entry_of_name[name];
  }

  // Blocks first (all stay open while dependency events are added).
  std::vector<BlockId> block(n);
  for (std::size_t i = 0; i < n; ++i)
    block[i] = tb.begin_block(chare[i], proc_of(i), entry[i],
                              spans[i].begin_ns);

  // Parent -> child message per nesting edge. Ids increase with begin
  // time per thread, so per-block events stay time-sorted.
  for (std::size_t i = 0; i < n; ++i) {
    const obs::Span& s = spans[i];
    if (s.parent == obs::kNoSpan || static_cast<std::size_t>(s.parent) >= i)
      continue;
    const std::size_t p = static_cast<std::size_t>(s.parent);
    // A child that escaped its parent's window (mismatched end calls)
    // gets no edge rather than an invalid event placement.
    if (s.begin_ns < spans[p].begin_ns || s.begin_ns > end_of(p)) continue;
    EventId send = tb.add_send(block[p], s.begin_ns);
    tb.add_recv(block[i], s.begin_ns, send);
  }

  for (std::size_t i = 0; i < n; ++i) tb.end_block(block[i], end_of(i));
  return tb.finish(num_procs);
}

Trace self_trace() {
  auto spans = obs::PipelineTracer::global().snapshot();
  return spans_to_trace(spans);
}

}  // namespace logstruct::trace
