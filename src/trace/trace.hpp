#pragma once

/// \file trace.hpp
/// Immutable event trace container.
///
/// A Trace is produced by a TraceBuilder (fed by the simulators or the
/// reader) and then frozen; the ordering pipeline and metrics only read it.
/// Freezing also materializes a flat, columnar dependency table (send id,
/// recv id, kind — one row per traced control dependency) so the hottest
/// consumers iterate plain arrays instead of chasing hash maps through a
/// `std::function`.

#include <cstdint>
#include <iosfwd>
#include <span>
#include <unordered_map>
#include <vector>

#include "trace/event.hpp"
#include "trace/ids.hpp"

namespace logstruct::trace {

class TraceBuilder;
class Trace;
struct RawTrace;

/// Declared here for friendship; see skew.hpp / io.hpp / repair.hpp.
Trace apply_clock_skew(const Trace& trace, std::span<const TimeNs> delta);
Trace read_trace(std::istream& in);
Trace build_trace(RawTrace&& raw, int threads);

/// Provenance of one row in the flat dependency table.
enum class DepKind : std::uint8_t {
  Match = 0,       ///< point-to-point send/recv partner match
  Fanout = 1,      ///< additional receiver of a broadcast send
  Collective = 2,  ///< cross-product row of a collective's sends x recvs
};

class Trace {
 public:
  Trace() = default;

  // --- table access ---------------------------------------------------
  [[nodiscard]] std::span<const Event> events() const { return events_; }
  [[nodiscard]] std::span<const SerialBlock> blocks() const { return blocks_; }
  [[nodiscard]] std::span<const ChareInfo> chares() const { return chares_; }
  [[nodiscard]] std::span<const ArrayInfo> arrays() const { return arrays_; }
  [[nodiscard]] std::span<const EntryInfo> entries() const { return entries_; }
  [[nodiscard]] std::span<const IdleSpan> idles() const { return idles_; }
  [[nodiscard]] std::span<const Collective> collectives() const {
    return collectives_;
  }

  [[nodiscard]] const Event& event(EventId id) const {
    return events_[static_cast<std::size_t>(id)];
  }
  [[nodiscard]] const SerialBlock& block(BlockId id) const {
    return blocks_[static_cast<std::size_t>(id)];
  }
  [[nodiscard]] const ChareInfo& chare(ChareId id) const {
    return chares_[static_cast<std::size_t>(id)];
  }
  [[nodiscard]] const EntryInfo& entry(EntryId id) const {
    return entries_[static_cast<std::size_t>(id)];
  }

  [[nodiscard]] std::int32_t num_procs() const { return num_procs_; }
  [[nodiscard]] std::int32_t num_events() const {
    return static_cast<std::int32_t>(events_.size());
  }
  [[nodiscard]] std::int32_t num_blocks() const {
    return static_cast<std::int32_t>(blocks_.size());
  }
  [[nodiscard]] std::int32_t num_chares() const {
    return static_cast<std::int32_t>(chares_.size());
  }

  // --- derived relations ----------------------------------------------
  /// Additional receivers of a broadcast send (beyond Event::partner).
  [[nodiscard]] std::span<const EventId> fanout(EventId send) const;

  /// All receivers of a send: partner plus fanout, as a span over the
  /// frozen dependency table (no allocation). Empty if unmatched.
  [[nodiscard]] std::span<const EventId> receivers(EventId send) const;

  // --- flat dependency table (frozen; SoA) ----------------------------
  /// Number of rows: one per point-to-point match, broadcast fan-out
  /// receiver, and collective sends x recvs pair.
  [[nodiscard]] std::int64_t num_dependencies() const {
    return static_cast<std::int64_t>(dep_send_.size());
  }
  /// Column of sending event ids, one per dependency row.
  [[nodiscard]] std::span<const EventId> dep_sends() const {
    return dep_send_;
  }
  /// Column of receiving event ids, aligned with dep_sends().
  [[nodiscard]] std::span<const EventId> dep_recvs() const {
    return dep_recv_;
  }
  /// Column of row provenance kinds, aligned with dep_sends().
  [[nodiscard]] std::span<const DepKind> dep_kinds() const {
    return dep_kind_;
  }

  /// Invoke fn(send_event, recv_event) for every traced control dependency:
  /// point-to-point matches, broadcast fan-outs, and the cross product of
  /// each collective's sends x recvs. Rows stream from the flat table, so
  /// the callback is statically dispatched (no std::function).
  template <typename Fn>
  void for_each_dependency(Fn&& fn) const {
    const EventId* send = dep_send_.data();
    const EventId* recv = dep_recv_.data();
    for (std::size_t i = 0, n = dep_send_.size(); i < n; ++i)
      fn(send[i], recv[i]);
  }

  /// Blocks of a chare in begin-time order.
  [[nodiscard]] std::span<const BlockId> blocks_of_chare(ChareId c) const {
    return chare_blocks_[static_cast<std::size_t>(c)];
  }

  /// Blocks on a processor in begin-time order.
  [[nodiscard]] std::span<const BlockId> blocks_of_proc(ProcId p) const {
    return proc_blocks_[static_cast<std::size_t>(p)];
  }

  /// True iff the event touches the runtime: its own chare is a runtime
  /// chare, or its traced partner's chare is (paper §3.1: partitions with
  /// such dependencies are runtime partitions).
  [[nodiscard]] bool is_runtime_event(EventId id) const;

  /// True iff the chare is a runtime chare.
  [[nodiscard]] bool is_runtime_chare(ChareId id) const {
    return chares_[static_cast<std::size_t>(id)].runtime;
  }

  // --- recovery provenance ----------------------------------------------
  /// True iff trace-level recovery (trace::repair / a recovering reader)
  /// altered this chare's dependencies — dropped a partner, removed an
  /// event or block. Downstream passes quarantine such chares instead of
  /// trusting their structure (order::PhaseResult::degraded).
  [[nodiscard]] bool is_degraded_chare(ChareId id) const {
    return !degraded_chare_.empty() &&
           degraded_chare_[static_cast<std::size_t>(id)] != 0;
  }

  /// Number of chares flagged degraded by recovery (0 for clean traces).
  [[nodiscard]] std::int32_t num_degraded_chares() const;

  /// Events per chare in physical-time order (ties broken by id).
  [[nodiscard]] std::span<const EventId> events_of_chare(ChareId c) const {
    return chare_events_[static_cast<std::size_t>(c)];
  }

  /// Total recorded idle on one processor.
  [[nodiscard]] TimeNs total_idle(ProcId p) const;

  /// Latest timestamp in the trace (block ends and idle ends included).
  [[nodiscard]] TimeNs end_time() const;

 private:
  friend class TraceBuilder;
  friend Trace apply_clock_skew(const Trace& trace,
                                std::span<const TimeNs> delta);
  friend Trace read_trace(std::istream& in);
  friend Trace build_trace(RawTrace&& raw, int threads);

  /// Build derived indices; called once by TraceBuilder::finish().
  /// `threads` fans the per-list sorts and the dependency-table fill out
  /// over the shared pool (0 = util::default_parallelism()); the frozen
  /// trace is bit-identical for any value.
  void freeze(int threads = 0);

  std::vector<Event> events_;
  std::vector<SerialBlock> blocks_;
  std::vector<ChareInfo> chares_;
  std::vector<ArrayInfo> arrays_;
  std::vector<EntryInfo> entries_;
  std::vector<IdleSpan> idles_;
  std::vector<Collective> collectives_;
  std::unordered_map<EventId, std::vector<EventId>> fanout_;
  std::int32_t num_procs_ = 0;

  /// Per chare, 1 iff recovery repaired its dependencies away; empty for
  /// traces that never went through repair (the common case).
  std::vector<std::uint8_t> degraded_chare_;

  // derived
  std::vector<std::vector<BlockId>> chare_blocks_;
  std::vector<std::vector<BlockId>> proc_blocks_;
  std::vector<std::vector<EventId>> chare_events_;

  // flat dependency table. The point-to-point prefix is grouped by send
  // id (partner row first, then fanout rows), so dep_begin_ is a CSR
  // index over it: receivers(s) = dep_recv_[dep_begin_[s]..dep_begin_[s+1]).
  // Collective cross-product rows follow the p2p prefix.
  std::vector<EventId> dep_send_;
  std::vector<EventId> dep_recv_;
  std::vector<DepKind> dep_kind_;
  std::vector<std::int32_t> dep_begin_;
};

}  // namespace logstruct::trace
