#pragma once

/// \file trace.hpp
/// Immutable event trace container over a pluggable storage backend.
///
/// A Trace is produced by a TraceBuilder (fed by the simulators or the
/// reader) and then frozen; the ordering pipeline and metrics only read
/// it. Freezing materializes flat columnar tables — events, blocks,
/// idles, the SoA dependency table with its CSR `dep_begin_` index, and
/// CSR groupings per block / chare / processor — behind one of two
/// backends (trace/storage/options.hpp):
///  - mem: the columns live in std::vector, exactly the historical
///    layout, zero overhead;
///  - blocked: freezing streams the columns into an unlinked `.lsblk`
///    container (bounded RSS via external sorts) and reads come back
///    through the process-wide block cache as pinned views.
/// Accessors return backend-neutral types: storage::ColumnView for whole
/// columns, storage::PinnedSpan for contiguous ranges, records by value.
/// Both backends produce bit-identical logical content — the golden
/// structure-hash suite runs the matrix.

#include <cstdint>
#include <iosfwd>
#include <span>
#include <string>
#include <vector>

#include "trace/event.hpp"
#include "trace/ids.hpp"
#include "trace/storage/blocked_data.hpp"
#include "trace/storage/options.hpp"

namespace logstruct::trace {

class TraceBuilder;
class Trace;
struct RawTrace;

/// Declared here for friendship; see skew.hpp / io.hpp / repair.hpp.
Trace apply_clock_skew(const Trace& trace, std::span<const TimeNs> delta);
Trace read_trace(std::istream& in);
Trace build_trace(RawTrace&& raw, int threads);

namespace storage {
/// Declared here for friendship; see trace/storage/blocked_trace.hpp.
void freeze_blocked(Trace& trace, int threads);
Trace open_blocked_trace(const std::string& path);
void write_blocked_file(const Trace& trace, const std::string& path,
                        std::uint32_t block_bytes,
                        std::uint32_t version = kFormatVersion);
std::string serialize_trace_metadata(const Trace& trace);
void deserialize_trace_metadata(const std::string& blob, Trace& trace);
std::uint64_t trace_structure_hash(const Trace& trace);
}  // namespace storage

class Trace {
 public:
  Trace() = default;

  // --- table access ---------------------------------------------------
  [[nodiscard]] storage::ColumnView<Event> events() const {
    if (blocked_) return storage::ColumnView<Event>(&blocked_->events);
    return {events_.data(), events_.size()};
  }
  [[nodiscard]] storage::ColumnView<SerialBlock> blocks() const {
    if (blocked_) return storage::ColumnView<SerialBlock>(&blocked_->blocks);
    return {blocks_.data(), blocks_.size()};
  }
  [[nodiscard]] storage::ColumnView<IdleSpan> idles() const {
    if (blocked_) return storage::ColumnView<IdleSpan>(&blocked_->idles);
    return {idles_.data(), idles_.size()};
  }
  [[nodiscard]] std::span<const ChareInfo> chares() const { return chares_; }
  [[nodiscard]] std::span<const ArrayInfo> arrays() const { return arrays_; }
  [[nodiscard]] std::span<const EntryInfo> entries() const { return entries_; }
  [[nodiscard]] std::span<const Collective> collectives() const {
    return collectives_;
  }

  // The per-row accessors keep the mem arm small enough to always
  // inline (a predicted branch plus a vector load the optimizer can
  // scalarize); the blocked arms live out of line in trace.cpp, so hot
  // loops on the default backend pay nothing for the seam.
  [[nodiscard]] Event event(EventId id) const {
    if (blocked_) [[unlikely]] return event_blocked(id);
    return events_[static_cast<std::size_t>(id)];
  }
  [[nodiscard]] SerialBlock block(BlockId id) const {
    if (blocked_) [[unlikely]] return block_blocked(id);
    return blocks_[static_cast<std::size_t>(id)];
  }
  /// Just the event's timestamp — the field sort comparators key on;
  /// loads one word on the mem backend instead of copying the row.
  [[nodiscard]] TimeNs event_time(EventId id) const {
    if (blocked_) [[unlikely]] return event_blocked(id).time;
    return events_[static_cast<std::size_t>(id)].time;
  }
  [[nodiscard]] const ChareInfo& chare(ChareId id) const {
    return chares_[static_cast<std::size_t>(id)];
  }
  [[nodiscard]] const EntryInfo& entry(EntryId id) const {
    return entries_[static_cast<std::size_t>(id)];
  }

  [[nodiscard]] std::int32_t num_procs() const { return num_procs_; }
  [[nodiscard]] std::int32_t num_events() const {
    return static_cast<std::int32_t>(blocked_ ? blocked_->events.size()
                                              : events_.size());
  }
  [[nodiscard]] std::int32_t num_blocks() const {
    return static_cast<std::int32_t>(blocked_ ? blocked_->blocks.size()
                                              : blocks_.size());
  }
  [[nodiscard]] std::int32_t num_chares() const {
    return static_cast<std::int32_t>(chares_.size());
  }

  /// Which backend serves this trace (storage::BackendKind).
  [[nodiscard]] storage::BackendKind storage_backend() const {
    return blocked_ ? storage::BackendKind::Blocked
                    : storage::BackendKind::Mem;
  }

  // --- derived relations ----------------------------------------------
  /// Additional receivers of a broadcast send (beyond Event::partner).
  [[nodiscard]] storage::PinnedSpan<EventId> fanout(EventId send) const;

  /// All receivers of a send: partner plus fanout, in recv-id order (the
  /// partner is always the lowest). Empty if unmatched.
  [[nodiscard]] storage::PinnedSpan<EventId> receivers(EventId send) const;

  // --- flat dependency table (frozen; SoA) ----------------------------
  /// Number of rows: one per point-to-point match, broadcast fan-out
  /// receiver, and collective sends x recvs pair.
  [[nodiscard]] std::int64_t num_dependencies() const {
    return static_cast<std::int64_t>(blocked_ ? blocked_->dep_send.size()
                                              : dep_send_.size());
  }
  /// Column of sending event ids, one per dependency row.
  [[nodiscard]] storage::ColumnView<EventId> dep_sends() const {
    if (blocked_) return storage::ColumnView<EventId>(&blocked_->dep_send);
    return {dep_send_.data(), dep_send_.size()};
  }
  /// Column of receiving event ids, aligned with dep_sends().
  [[nodiscard]] storage::ColumnView<EventId> dep_recvs() const {
    if (blocked_) return storage::ColumnView<EventId>(&blocked_->dep_recv);
    return {dep_recv_.data(), dep_recv_.size()};
  }
  /// Column of row provenance kinds, aligned with dep_sends().
  [[nodiscard]] storage::ColumnView<DepKind> dep_kinds() const {
    if (blocked_) return storage::ColumnView<DepKind>(&blocked_->dep_kind);
    return {dep_kind_.data(), dep_kind_.size()};
  }

  /// Invoke fn(send_event, recv_event) for every traced control dependency:
  /// point-to-point matches, broadcast fan-outs, and the cross product of
  /// each collective's sends x recvs. Rows stream from the flat table
  /// (chunk-at-a-time under the blocked backend), so the callback is
  /// statically dispatched (no std::function).
  template <typename Fn>
  void for_each_dependency(Fn&& fn) const {
    if (!blocked_) {
      const EventId* send = dep_send_.data();
      const EventId* recv = dep_recv_.data();
      for (std::size_t i = 0, n = dep_send_.size(); i < n; ++i)
        fn(send[i], recv[i]);
      return;
    }
    const storage::BlockedColumn<EventId>& recvs = blocked_->dep_recv;
    blocked_->dep_send.for_each_chunk(
        [&](const EventId* send, std::size_t n, std::size_t base) {
          storage::PinnedSpan<EventId> recv = recvs.pin(base, base + n);
          for (std::size_t i = 0; i < n; ++i) fn(send[i], recv[i]);
        });
  }

  /// Blocks of a chare in begin-time order.
  [[nodiscard]] storage::PinnedSpan<BlockId> blocks_of_chare(ChareId c) const {
    const auto lo = chare_blocks_begin_[static_cast<std::size_t>(c)];
    const auto hi = chare_blocks_begin_[static_cast<std::size_t>(c) + 1];
    if (blocked_) [[unlikely]]
      return pin_blocked(blocked_->chare_blocks, lo, hi);
    return {{}, chare_blocks_.data() + lo, static_cast<std::size_t>(hi - lo)};
  }

  /// Blocks on a processor in begin-time order.
  [[nodiscard]] storage::PinnedSpan<BlockId> blocks_of_proc(ProcId p) const {
    const auto lo = proc_blocks_begin_[static_cast<std::size_t>(p)];
    const auto hi = proc_blocks_begin_[static_cast<std::size_t>(p) + 1];
    if (blocked_) [[unlikely]]
      return pin_blocked(blocked_->proc_blocks, lo, hi);
    return {{}, proc_blocks_.data() + lo, static_cast<std::size_t>(hi - lo)};
  }

  /// Events of one serial block in physical-time order (ties by id).
  [[nodiscard]] storage::PinnedSpan<EventId> events_of_block(BlockId b) const {
    if (blocked_) [[unlikely]] return events_of_block_blocked(b);
    const auto lo = block_ev_begin_[static_cast<std::size_t>(b)];
    const auto hi = block_ev_begin_[static_cast<std::size_t>(b) + 1];
    return {{}, block_events_.data() + lo, static_cast<std::size_t>(hi - lo)};
  }

  /// True iff the event touches the runtime: its own chare is a runtime
  /// chare, or its traced partner's chare is (paper §3.1: partitions with
  /// such dependencies are runtime partitions).
  [[nodiscard]] bool is_runtime_event(EventId id) const;

  /// True iff the chare is a runtime chare.
  [[nodiscard]] bool is_runtime_chare(ChareId id) const {
    return chares_[static_cast<std::size_t>(id)].runtime;
  }

  // --- recovery provenance ----------------------------------------------
  /// True iff trace-level recovery (trace::repair / a recovering reader)
  /// altered this chare's dependencies — dropped a partner, removed an
  /// event or block. Downstream passes quarantine such chares instead of
  /// trusting their structure (order::PhaseResult::degraded).
  [[nodiscard]] bool is_degraded_chare(ChareId id) const {
    return !degraded_chare_.empty() &&
           degraded_chare_[static_cast<std::size_t>(id)] != 0;
  }

  /// Number of chares flagged degraded by recovery (0 for clean traces).
  [[nodiscard]] std::int32_t num_degraded_chares() const;

  /// Events per chare in physical-time order (ties broken by id).
  [[nodiscard]] storage::PinnedSpan<EventId> events_of_chare(ChareId c) const {
    const auto lo = chare_events_begin_[static_cast<std::size_t>(c)];
    const auto hi = chare_events_begin_[static_cast<std::size_t>(c) + 1];
    if (blocked_) [[unlikely]]
      return pin_blocked(blocked_->chare_events, lo, hi);
    return {{}, chare_events_.data() + lo, static_cast<std::size_t>(hi - lo)};
  }

  /// Total recorded idle on one processor (cached at freeze).
  [[nodiscard]] TimeNs total_idle(ProcId p) const {
    const auto i = static_cast<std::size_t>(p);
    return i < idle_total_.size() ? idle_total_[i] : 0;
  }

  /// Latest timestamp in the trace (block ends and idle ends included;
  /// cached at freeze).
  [[nodiscard]] TimeNs end_time() const { return end_time_; }

 private:
  friend class TraceBuilder;
  friend Trace apply_clock_skew(const Trace& trace,
                                std::span<const TimeNs> delta);
  friend Trace read_trace(std::istream& in);
  friend Trace build_trace(RawTrace&& raw, int threads);
  friend void storage::freeze_blocked(Trace& trace, int threads);
  friend Trace storage::open_blocked_trace(const std::string& path);
  friend void storage::write_blocked_file(const Trace& trace,
                                          const std::string& path,
                                          std::uint32_t block_bytes,
                                          std::uint32_t version);
  friend std::string storage::serialize_trace_metadata(const Trace& trace);
  friend void storage::deserialize_trace_metadata(const std::string& blob,
                                                  Trace& trace);
  friend std::uint64_t storage::trace_structure_hash(const Trace& trace);

  /// Build derived indices and caches against the backend selected by
  /// storage::default_options(); called once by TraceBuilder::finish().
  /// `threads` fans the sorts and table fills out over the shared pool
  /// (0 = util::default_parallelism()); the frozen trace is bit-identical
  /// for any value and for either backend.
  void freeze(int threads = 0);

  /// The historical all-vector freeze (mem backend).
  void freeze_mem(int threads);

  [[nodiscard]] std::int32_t dep_begin_at(std::size_t i) const {
    if (blocked_) [[unlikely]] return dep_begin_blocked(i);
    return dep_begin_[i];
  }
  [[nodiscard]] std::int64_t block_ev_begin_at(std::size_t i) const {
    if (blocked_) [[unlikely]] return block_ev_begin_blocked(i);
    return block_ev_begin_[i];
  }

  // Out-of-line blocked arms of the inline accessors above (trace.cpp);
  // never inlined so the mem fast paths stay call-free.
  [[nodiscard]] Event event_blocked(EventId id) const;
  [[nodiscard]] SerialBlock block_blocked(BlockId id) const;
  [[nodiscard]] storage::PinnedSpan<EventId> events_of_block_blocked(
      BlockId b) const;
  [[nodiscard]] std::int32_t dep_begin_blocked(std::size_t i) const;
  [[nodiscard]] std::int64_t block_ev_begin_blocked(std::size_t i) const;
  template <typename T>
  [[nodiscard]] static storage::PinnedSpan<T> pin_blocked(
      const storage::BlockedColumn<T>& col, std::int64_t lo, std::int64_t hi);

  // Metadata tables: RAM-resident under both backends (small, string-
  // bearing, O(chares + entries), not O(events)).
  std::vector<ChareInfo> chares_;
  std::vector<ArrayInfo> arrays_;
  std::vector<EntryInfo> entries_;
  std::vector<Collective> collectives_;
  std::int32_t num_procs_ = 0;

  /// Per chare, 1 iff recovery repaired its dependencies away; empty for
  /// traces that never went through repair (the common case).
  std::vector<std::uint8_t> degraded_chare_;

  // Freeze-time caches (both backends).
  TimeNs end_time_ = 0;
  std::vector<TimeNs> idle_total_;  ///< per processor

  // Small CSR begin arrays, RAM-resident under both backends
  // (O(chares + procs), and hot in every partition-graph walk).
  std::vector<std::int64_t> chare_blocks_begin_;
  std::vector<std::int64_t> proc_blocks_begin_;
  std::vector<std::int64_t> chare_events_begin_;

  // Primary columns (mem backend; construction staging for blocked —
  // released once freeze_blocked streams them out).
  std::vector<Event> events_;
  std::vector<SerialBlock> blocks_;
  std::vector<IdleSpan> idles_;

  // Derived flat columns (mem backend only).
  std::vector<BlockId> chare_blocks_;
  std::vector<BlockId> proc_blocks_;
  std::vector<EventId> chare_events_;
  std::vector<EventId> block_events_;
  std::vector<std::int64_t> block_ev_begin_;  ///< blocks + 1

  // Flat dependency table. The point-to-point prefix is grouped by send
  // id (partner row first, then fanout rows in recv-id order), so
  // dep_begin_ is a CSR index over it:
  // receivers(s) = dep_recv_[dep_begin_[s]..dep_begin_[s+1]).
  // Collective cross-product rows follow the p2p prefix.
  std::vector<EventId> dep_send_;
  std::vector<EventId> dep_recv_;
  std::vector<DepKind> dep_kind_;
  std::vector<std::int32_t> dep_begin_;  ///< events + 1

  /// Blocked backend; nullptr under mem. Shared: copies of a Trace
  /// reference the same immutable store.
  std::shared_ptr<storage::BlockedTraceData> blocked_;
};

}  // namespace logstruct::trace
