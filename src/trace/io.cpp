#include "trace/io.hpp"

#include <fstream>
#include <sstream>
#include <stdexcept>

#include "util/check.hpp"

namespace logstruct::trace {

namespace {

constexpr const char* kMagic = "lstrace";
constexpr int kVersion = 1;

// Names may contain spaces; they are always the last field and written
// after a '|' sentinel.
std::string read_name(std::istringstream& line) {
  std::string sep;
  line >> sep;
  if (sep != "|") throw std::runtime_error("lstrace: expected '|' before name");
  std::string name;
  std::getline(line, name);
  if (!name.empty() && name.front() == ' ') name.erase(0, 1);
  return name;
}

}  // namespace

void write_trace(const Trace& trace, std::ostream& out) {
  out << kMagic << ' ' << kVersion << '\n';
  out << "procs " << trace.num_procs() << '\n';

  for (std::size_t i = 0; i < trace.arrays().size(); ++i) {
    const ArrayInfo& a = trace.arrays()[i];
    out << "array " << i << ' ' << (a.runtime ? 1 : 0) << " | " << a.name
        << '\n';
  }
  for (std::size_t i = 0; i < trace.chares().size(); ++i) {
    const ChareInfo& c = trace.chares()[i];
    out << "chare " << i << ' ' << c.array << ' ' << c.index << ' ' << c.home
        << ' ' << (c.runtime ? 1 : 0) << " | " << c.name << '\n';
  }
  for (std::size_t i = 0; i < trace.entries().size(); ++i) {
    const EntryInfo& e = trace.entries()[i];
    out << "entry " << i << ' ' << (e.runtime ? 1 : 0) << ' ' << e.sdag_serial
        << ' ' << e.when_entries.size();
    for (EntryId w : e.when_entries) out << ' ' << w;
    out << " | " << e.name << '\n';
  }
  for (BlockId b = 0; b < trace.num_blocks(); ++b) {
    const SerialBlock& blk = trace.block(b);
    out << "block " << b << ' ' << blk.chare << ' ' << blk.proc << ' '
        << blk.entry << ' ' << blk.begin << ' ' << blk.end << '\n';
  }
  for (EventId e = 0; e < trace.num_events(); ++e) {
    const Event& ev = trace.event(e);
    out << "event " << e << ' ' << (ev.kind == EventKind::Send ? 'S' : 'R')
        << ' ' << ev.time << ' ' << ev.block << ' ' << ev.partner << '\n';
  }
  for (const IdleSpan& s : trace.idles()) {
    out << "idle " << s.proc << ' ' << s.begin << ' ' << s.end << '\n';
  }
  for (const Collective& coll : trace.collectives()) {
    out << "coll " << coll.sends.size();
    for (EventId s : coll.sends) out << ' ' << s;
    out << ' ' << coll.recvs.size();
    for (EventId r : coll.recvs) out << ' ' << r;
    out << '\n';
  }
  out << "end\n";
}

Trace read_trace(std::istream& in) {
  Trace trace;
  std::string word;
  int version = 0;
  in >> word >> version;
  if (word != kMagic || version != kVersion)
    throw std::runtime_error("lstrace: bad header");
  in.ignore();  // trailing newline

  std::string line;
  bool saw_end = false;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    std::istringstream ls(line);
    std::string tag;
    ls >> tag;
    if (tag == "procs") {
      ls >> trace.num_procs_;
    } else if (tag == "array") {
      std::size_t id;
      int runtime;
      ls >> id >> runtime;
      ArrayInfo a;
      a.runtime = runtime != 0;
      a.name = read_name(ls);
      if (id != trace.arrays_.size())
        throw std::runtime_error("lstrace: non-sequential array id");
      trace.arrays_.push_back(std::move(a));
    } else if (tag == "chare") {
      std::size_t id;
      ChareInfo c;
      int runtime;
      ls >> id >> c.array >> c.index >> c.home >> runtime;
      c.runtime = runtime != 0;
      c.name = read_name(ls);
      if (id != trace.chares_.size())
        throw std::runtime_error("lstrace: non-sequential chare id");
      trace.chares_.push_back(std::move(c));
    } else if (tag == "entry") {
      std::size_t id;
      int runtime;
      std::size_t nwhen;
      EntryInfo e;
      ls >> id >> runtime >> e.sdag_serial >> nwhen;
      e.runtime = runtime != 0;
      e.when_entries.resize(nwhen);
      for (auto& w : e.when_entries) ls >> w;
      e.name = read_name(ls);
      if (id != trace.entries_.size())
        throw std::runtime_error("lstrace: non-sequential entry id");
      trace.entries_.push_back(std::move(e));
    } else if (tag == "block") {
      std::size_t id;
      SerialBlock b;
      ls >> id >> b.chare >> b.proc >> b.entry >> b.begin >> b.end;
      if (id != trace.blocks_.size())
        throw std::runtime_error("lstrace: non-sequential block id");
      trace.blocks_.push_back(std::move(b));
    } else if (tag == "event") {
      std::size_t id;
      char kind;
      Event e;
      ls >> id >> kind >> e.time >> e.block >> e.partner;
      e.kind = kind == 'S' ? EventKind::Send : EventKind::Recv;
      if (id != trace.events_.size())
        throw std::runtime_error("lstrace: non-sequential event id");
      if (e.block < 0 ||
          static_cast<std::size_t>(e.block) >= trace.blocks_.size())
        throw std::runtime_error("lstrace: event references unknown block");
      SerialBlock& blk = trace.blocks_[static_cast<std::size_t>(e.block)];
      e.chare = blk.chare;
      e.proc = blk.proc;
      trace.events_.push_back(e);
      blk.events.push_back(static_cast<EventId>(id));
      if (e.kind == EventKind::Recv && blk.trigger == kNone)
        blk.trigger = static_cast<EventId>(id);
    } else if (tag == "idle") {
      IdleSpan s;
      ls >> s.proc >> s.begin >> s.end;
      trace.idles_.push_back(s);
    } else if (tag == "coll") {
      Collective coll;
      std::size_t n;
      ls >> n;
      coll.sends.resize(n);
      for (auto& s : coll.sends) ls >> s;
      ls >> n;
      coll.recvs.resize(n);
      for (auto& r : coll.recvs) ls >> r;
      trace.collectives_.push_back(std::move(coll));
    } else if (tag == "end") {
      saw_end = true;
      break;
    } else {
      throw std::runtime_error("lstrace: unknown record '" + tag + "'");
    }
    if (!ls && !ls.eof()) throw std::runtime_error("lstrace: parse error");
  }
  if (!saw_end) throw std::runtime_error("lstrace: truncated file");

  // Rebuild send-side matching: partners were written from the recv side.
  for (EventId id = 0; id < static_cast<EventId>(trace.events_.size()); ++id) {
    Event& e = trace.events_[static_cast<std::size_t>(id)];
    if (e.kind != EventKind::Recv || e.partner == kNone) continue;
    if (e.partner < 0 ||
        static_cast<std::size_t>(e.partner) >= trace.events_.size())
      throw std::runtime_error("lstrace: recv has out-of-range partner");
    Event& s = trace.events_[static_cast<std::size_t>(e.partner)];
    if (s.kind != EventKind::Send)
      throw std::runtime_error("lstrace: recv partnered with a recv");
    if (s.partner == kNone) {
      s.partner = id;
    } else if (s.partner != id) {
      trace.fanout_[e.partner].push_back(id);
    }
  }
  // Send partners as written are recomputed above; clear stale values for
  // sends whose recv list was empty (they keep kNone naturally) — nothing
  // further needed.

  trace.freeze();
  return trace;
}

bool save_trace(const Trace& trace, const std::string& path) {
  std::ofstream f(path);
  if (!f) return false;
  write_trace(trace, f);
  return static_cast<bool>(f);
}

Trace load_trace(const std::string& path) {
  std::ifstream f(path);
  if (!f) throw std::runtime_error("cannot open trace file: " + path);
  return read_trace(f);
}

}  // namespace logstruct::trace
