#include "trace/io.hpp"

#include <fstream>
#include <sstream>
#include <stdexcept>

#include "trace/repair.hpp"
#include "util/check.hpp"

namespace logstruct::trace {

namespace {

constexpr const char* kMagic = "lstrace";
constexpr int kVersion = 1;

/// A list-length field larger than this is garbage, not data; parsing it
/// verbatim would let one garbled digit drive a multi-gigabyte resize.
constexpr std::int64_t kMaxListLen = 1 << 20;

// Names may contain spaces; they are always the last field and written
// after a '|' sentinel.
std::string read_name(std::istringstream& line) {
  std::string sep;
  line >> sep;
  if (sep != "|") throw std::runtime_error("lstrace: expected '|' before name");
  std::string name;
  std::getline(line, name);
  if (!name.empty() && name.front() == ' ') name.erase(0, 1);
  return name;
}

// Tolerant variant: false instead of throwing.
bool try_read_name(std::istringstream& line, std::string* out) {
  std::string sep;
  line >> sep;
  if (sep != "|") return false;
  std::string name;
  std::getline(line, name);
  if (!name.empty() && name.front() == ' ') name.erase(0, 1);
  *out = std::move(name);
  return true;
}

/// Narrow an int64 field into an int32 id slot; out-of-range values become
/// kNone so they surface as dangling references instead of wrapping into
/// accidentally-valid ids.
std::int32_t narrow_id(std::int64_t v) {
  if (v < INT32_MIN || v > INT32_MAX) return kNone;
  return static_cast<std::int32_t>(v);
}

}  // namespace

void write_trace(const Trace& trace, std::ostream& out) {
  out << kMagic << ' ' << kVersion << '\n';
  out << "procs " << trace.num_procs() << '\n';

  for (std::size_t i = 0; i < trace.arrays().size(); ++i) {
    const ArrayInfo& a = trace.arrays()[i];
    out << "array " << i << ' ' << (a.runtime ? 1 : 0) << " | " << a.name
        << '\n';
  }
  for (std::size_t i = 0; i < trace.chares().size(); ++i) {
    const ChareInfo& c = trace.chares()[i];
    out << "chare " << i << ' ' << c.array << ' ' << c.index << ' ' << c.home
        << ' ' << (c.runtime ? 1 : 0) << " | " << c.name << '\n';
  }
  for (std::size_t i = 0; i < trace.entries().size(); ++i) {
    const EntryInfo& e = trace.entries()[i];
    out << "entry " << i << ' ' << (e.runtime ? 1 : 0) << ' ' << e.sdag_serial
        << ' ' << e.when_entries.size();
    for (EntryId w : e.when_entries) out << ' ' << w;
    out << " | " << e.name << '\n';
  }
  for (BlockId b = 0; b < trace.num_blocks(); ++b) {
    const SerialBlock& blk = trace.block(b);
    out << "block " << b << ' ' << blk.chare << ' ' << blk.proc << ' '
        << blk.entry << ' ' << blk.begin << ' ' << blk.end << '\n';
  }
  for (EventId e = 0; e < trace.num_events(); ++e) {
    const Event& ev = trace.event(e);
    out << "event " << e << ' ' << (ev.kind == EventKind::Send ? 'S' : 'R')
        << ' ' << ev.time << ' ' << ev.block << ' ' << ev.partner << '\n';
  }
  for (const IdleSpan& s : trace.idles()) {
    out << "idle " << s.proc << ' ' << s.begin << ' ' << s.end << '\n';
  }
  for (const Collective& coll : trace.collectives()) {
    out << "coll " << coll.sends.size();
    for (EventId s : coll.sends) out << ' ' << s;
    out << ' ' << coll.recvs.size();
    for (EventId r : coll.recvs) out << ' ' << r;
    out << '\n';
  }
  // Recovery provenance survives a save/load round trip. Written only for
  // repaired traces, so clean traces serialize byte-identically to every
  // earlier version of the format.
  if (trace.num_degraded_chares() > 0) {
    out << "degraded " << trace.num_degraded_chares();
    for (ChareId c = 0; c < trace.num_chares(); ++c)
      if (trace.is_degraded_chare(c)) out << ' ' << c;
    out << '\n';
  }
  out << "end\n";
}

Trace read_trace(std::istream& in) {
  Trace trace;
  std::string word;
  int version = 0;
  in >> word >> version;
  if (word != kMagic || version != kVersion)
    throw std::runtime_error("lstrace: bad header");
  in.ignore();  // trailing newline

  std::string line;
  bool saw_end = false;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    std::istringstream ls(line);
    std::string tag;
    ls >> tag;
    if (tag == "procs") {
      ls >> trace.num_procs_;
    } else if (tag == "array") {
      std::size_t id;
      int runtime;
      ls >> id >> runtime;
      ArrayInfo a;
      a.runtime = runtime != 0;
      a.name = read_name(ls);
      if (id != trace.arrays_.size())
        throw std::runtime_error("lstrace: non-sequential array id");
      trace.arrays_.push_back(std::move(a));
    } else if (tag == "chare") {
      std::size_t id;
      ChareInfo c;
      int runtime;
      ls >> id >> c.array >> c.index >> c.home >> runtime;
      c.runtime = runtime != 0;
      c.name = read_name(ls);
      if (id != trace.chares_.size())
        throw std::runtime_error("lstrace: non-sequential chare id");
      trace.chares_.push_back(std::move(c));
    } else if (tag == "entry") {
      std::size_t id;
      int runtime;
      std::size_t nwhen;
      EntryInfo e;
      ls >> id >> runtime >> e.sdag_serial >> nwhen;
      e.runtime = runtime != 0;
      if (nwhen > static_cast<std::size_t>(kMaxListLen))
        throw std::runtime_error("lstrace: implausible when-list length");
      e.when_entries.resize(nwhen);
      for (auto& w : e.when_entries) ls >> w;
      e.name = read_name(ls);
      if (id != trace.entries_.size())
        throw std::runtime_error("lstrace: non-sequential entry id");
      trace.entries_.push_back(std::move(e));
    } else if (tag == "block") {
      std::size_t id;
      SerialBlock b;
      ls >> id >> b.chare >> b.proc >> b.entry >> b.begin >> b.end;
      if (id != trace.blocks_.size())
        throw std::runtime_error("lstrace: non-sequential block id");
      trace.blocks_.push_back(std::move(b));
    } else if (tag == "event") {
      std::size_t id;
      char kind;
      Event e;
      ls >> id >> kind >> e.time >> e.block >> e.partner;
      e.kind = kind == 'S' ? EventKind::Send : EventKind::Recv;
      if (id != trace.events_.size())
        throw std::runtime_error("lstrace: non-sequential event id");
      if (e.block < 0 ||
          static_cast<std::size_t>(e.block) >= trace.blocks_.size())
        throw std::runtime_error("lstrace: event references unknown block");
      SerialBlock& blk = trace.blocks_[static_cast<std::size_t>(e.block)];
      e.chare = blk.chare;
      e.proc = blk.proc;
      trace.events_.push_back(e);
      if (e.kind == EventKind::Recv && blk.trigger == kNone)
        blk.trigger = static_cast<EventId>(id);
    } else if (tag == "idle") {
      IdleSpan s;
      ls >> s.proc >> s.begin >> s.end;
      trace.idles_.push_back(s);
    } else if (tag == "coll") {
      Collective coll;
      std::size_t n;
      ls >> n;
      if (n > static_cast<std::size_t>(kMaxListLen))
        throw std::runtime_error("lstrace: implausible collective size");
      coll.sends.resize(n);
      for (auto& s : coll.sends) ls >> s;
      ls >> n;
      if (n > static_cast<std::size_t>(kMaxListLen))
        throw std::runtime_error("lstrace: implausible collective size");
      coll.recvs.resize(n);
      for (auto& r : coll.recvs) ls >> r;
      trace.collectives_.push_back(std::move(coll));
    } else if (tag == "degraded") {
      std::size_t n;
      ls >> n;
      if (n > trace.chares_.size())
        throw std::runtime_error("lstrace: implausible degraded count");
      trace.degraded_chare_.assign(trace.chares_.size(), 0);
      for (std::size_t i = 0; i < n; ++i) {
        ChareId c;
        ls >> c;
        if (c < 0 || static_cast<std::size_t>(c) >= trace.chares_.size())
          throw std::runtime_error("lstrace: degraded id out of range");
        trace.degraded_chare_[static_cast<std::size_t>(c)] = 1;
      }
    } else if (tag == "end") {
      saw_end = true;
      break;
    } else {
      throw std::runtime_error("lstrace: unknown record '" + tag + "'");
    }
    if (!ls && !ls.eof()) throw std::runtime_error("lstrace: parse error");
  }
  if (!saw_end) throw std::runtime_error("lstrace: truncated file");

  // Rebuild send-side matching: partners were written from the recv side.
  for (EventId id = 0; id < static_cast<EventId>(trace.events_.size()); ++id) {
    Event& e = trace.events_[static_cast<std::size_t>(id)];
    if (e.kind != EventKind::Recv || e.partner == kNone) continue;
    if (e.partner < 0 ||
        static_cast<std::size_t>(e.partner) >= trace.events_.size())
      throw std::runtime_error("lstrace: recv has out-of-range partner");
    Event& s = trace.events_[static_cast<std::size_t>(e.partner)];
    if (s.kind != EventKind::Send)
      throw std::runtime_error("lstrace: recv partnered with a recv");
    if (s.partner == kNone) s.partner = id;
    // Later receivers of a broadcast keep their own partner field; the
    // freeze rebuilds the fan-out rows from the recv side.
  }
  // Send partners as written are recomputed above; clear stale values for
  // sends whose recv list was empty (they keep kNone naturally) — nothing
  // further needed.

  trace.freeze();
  return trace;
}

namespace {

/// Recovering lstrace parse: salvage whatever lines survive into a
/// RawTrace, then repair + freeze. Never throws on malformed content.
Trace read_trace_recovering(std::istream& in, RecoveryReport& report) {
  RawTrace raw;
  std::int64_t lineno = 1;
  std::string header;
  if (!std::getline(in, header)) {
    report.add(DiagCode::BadHeader, Severity::Fatal, "empty stream");
    return build_trace(std::move(raw), 0);
  }
  {
    std::istringstream hs(header);
    std::string word;
    int version = 0;
    hs >> word >> version;
    if (word != kMagic || version != kVersion) {
      report.add(DiagCode::BadHeader, Severity::Fatal,
                 "not an lstrace stream (or unsupported version)", -1, 1);
      return build_trace(std::move(raw), 0);
    }
  }

  bool saw_end = false;
  std::string line;
  while (!saw_end && std::getline(in, line)) {
    ++lineno;
    if (line.empty()) continue;
    std::istringstream ls(line);
    std::string tag;
    ls >> tag;
    auto parse_error = [&](const char* what) {
      report.add(DiagCode::ParseError, Severity::Warning,
                 std::string("garbled ") + what + " record skipped", -1,
                 lineno);
    };
    if (tag == "procs") {
      std::int64_t n = 0;
      ls >> n;
      if (ls.fail() || n < 0 || n > INT32_MAX) {
        parse_error("procs");
      } else {
        raw.num_procs = static_cast<std::int32_t>(n);
      }
    } else if (tag == "array") {
      RawRecord<ArrayInfo> r;
      int runtime = 0;
      ls >> r.id >> runtime;
      if (ls.fail() || !try_read_name(ls, &r.info.name)) {
        parse_error("array");
        continue;
      }
      r.info.runtime = runtime != 0;
      raw.arrays.push_back(std::move(r));
    } else if (tag == "chare") {
      RawRecord<ChareInfo> r;
      std::int64_t array = 0, index = 0, home = 0;
      int runtime = 0;
      ls >> r.id >> array >> index >> home >> runtime;
      if (ls.fail() || !try_read_name(ls, &r.info.name)) {
        parse_error("chare");
        continue;
      }
      r.info.array = narrow_id(array);
      r.info.index = narrow_id(index);
      r.info.home = narrow_id(home);
      r.info.runtime = runtime != 0;
      raw.chares.push_back(std::move(r));
    } else if (tag == "entry") {
      RawRecord<EntryInfo> r;
      std::int64_t sdag = 0, nwhen = 0;
      int runtime = 0;
      ls >> r.id >> runtime >> sdag >> nwhen;
      if (ls.fail() || nwhen < 0 || nwhen > kMaxListLen) {
        parse_error("entry");
        continue;
      }
      r.info.runtime = runtime != 0;
      r.info.sdag_serial = narrow_id(sdag);
      r.info.when_entries.resize(static_cast<std::size_t>(nwhen));
      std::int64_t w = 0;
      for (auto& we : r.info.when_entries) {
        ls >> w;
        we = narrow_id(w);
      }
      if (ls.fail() || !try_read_name(ls, &r.info.name)) {
        parse_error("entry");
        continue;
      }
      raw.entries.push_back(std::move(r));
    } else if (tag == "block") {
      RawBlock b;
      std::int64_t proc = 0;
      ls >> b.id >> b.chare >> proc >> b.entry >> b.begin >> b.end;
      if (ls.fail()) {
        parse_error("block");
        continue;
      }
      b.proc = narrow_id(proc);
      raw.blocks.push_back(b);
    } else if (tag == "event") {
      RawEvent e;
      char kind = 0;
      ls >> e.id >> kind >> e.time >> e.block >> e.partner;
      if (ls.fail() || (kind != 'S' && kind != 'R')) {
        parse_error("event");
        continue;
      }
      e.kind = kind == 'S' ? EventKind::Send : EventKind::Recv;
      raw.events.push_back(e);
    } else if (tag == "idle") {
      IdleSpan s;
      std::int64_t proc = 0;
      ls >> proc >> s.begin >> s.end;
      if (ls.fail()) {
        parse_error("idle");
        continue;
      }
      s.proc = narrow_id(proc);
      raw.idles.push_back(s);
    } else if (tag == "coll") {
      RawCollective coll;
      std::int64_t n = 0;
      ls >> n;
      if (ls.fail() || n < 0 || n > kMaxListLen) {
        parse_error("coll");
        continue;
      }
      coll.sends.resize(static_cast<std::size_t>(n));
      for (auto& s : coll.sends) ls >> s;
      ls >> n;
      if (ls.fail() || n < 0 || n > kMaxListLen) {
        parse_error("coll");
        continue;
      }
      coll.recvs.resize(static_cast<std::size_t>(n));
      for (auto& r : coll.recvs) ls >> r;
      if (ls.fail()) {
        parse_error("coll");
        continue;
      }
      raw.collectives.push_back(std::move(coll));
    } else if (tag == "degraded") {
      std::int64_t n = 0;
      ls >> n;
      if (ls.fail() || n < 0 || n > kMaxListLen) {
        parse_error("degraded");
        continue;
      }
      std::vector<std::int64_t> ids(static_cast<std::size_t>(n));
      for (auto& c : ids) ls >> c;
      if (ls.fail()) {
        parse_error("degraded");
        continue;
      }
      raw.degraded_chares.insert(raw.degraded_chares.end(), ids.begin(),
                                 ids.end());
    } else if (tag == "end") {
      saw_end = true;
    } else {
      report.add(DiagCode::UnknownRecord, Severity::Warning,
                 "unknown record '" + tag + "' skipped", -1, lineno);
    }
  }
  if (!saw_end)
    report.add(DiagCode::TruncatedFile, Severity::Warning,
               "stream ended before the end marker", -1, lineno);

  repair(raw, report);
  return build_trace(std::move(raw), 0);
}

}  // namespace

Trace read_trace(std::istream& in, const ReadOptions& options,
                 RecoveryReport& report) {
  if (options.recover) return read_trace_recovering(in, report);
  return read_trace(in);
}

bool save_trace(const Trace& trace, const std::string& path,
                RecoveryReport& report) {
  std::ofstream f(path);
  if (!f) {
    report.add(DiagCode::IoError, Severity::Fatal,
               "cannot open for writing: " + path);
    return false;
  }
  write_trace(trace, f);
  f.flush();
  if (!f) {
    report.add(DiagCode::IoError, Severity::Fatal,
               "write failed: " + path);
    return false;
  }
  return true;
}

Trace load_trace(const std::string& path, const ReadOptions& options,
                 RecoveryReport& report) {
  std::ifstream f(path);
  if (!f) {
    report.add(DiagCode::IoError, Severity::Fatal,
               "cannot open trace file: " + path);
    return build_trace(RawTrace{}, 0);
  }
  if (options.recover) return read_trace_recovering(f, report);
  try {
    return read_trace(f);
  } catch (const std::exception& e) {
    report.add(DiagCode::ParseError, Severity::Fatal, e.what());
    return build_trace(RawTrace{}, 0);
  }
}

bool save_trace(const Trace& trace, const std::string& path) {
  RecoveryReport report;
  return save_trace(trace, path, report);
}

Trace load_trace(const std::string& path) {
  std::ifstream f(path);
  if (!f) throw std::runtime_error("cannot open trace file: " + path);
  return read_trace(f);
}

}  // namespace logstruct::trace
