#pragma once

/// \file format.hpp
/// The versioned `.lsblk` on-disk container (docs/FORMATS.md).
///
/// Layout (v2): a fixed header, then data blocks appended in whatever
/// order the writer's columns filled them (the paged layout is what lets
/// a single streaming pass interleave appends to every column with
/// bounded RAM), then the *tail* — per-column block-offset tables,
/// per-column CRC32C tables, the column directory, the trace-metadata
/// blob — and finally a fixed-size commit footer:
///
///   [Header]                     40 B; directory_offset patched at finish
///   [block][block]...            raw column data, block_bytes each
///                                (a column's last block may be short)
///   [offset tables]              u64 file offset per block, per column
///   [crc tables]                 u32 CRC32C per block, per column (v2)
///   [directory]                  ColumnDescV2 per column (v2)
///   [metadata blob]              trace tables that stay RAM-resident
///   [CommitFooter]               40 B; written + fsynced LAST (v2)
///
/// Durability contract (v2): finish() fsyncs the data blocks, then
/// writes the tail and the patched header and fsyncs again, and only
/// then writes + fsyncs the footer. A valid footer therefore proves the
/// whole file is exactly what the writer committed (its tail_crc covers
/// every tail byte, its header_crc the patched header); a missing or
/// garbled footer proves a torn write. v1 files (version 1, 24-byte
/// ColumnDesc, no CRC tables, no footer) remain readable — their
/// checksum status is "absent", not an error.
///
/// Every integer is little-endian; the container is written and read on
/// the same host class (this is a working-set spill format first, an
/// interchange format second), so no byte-swapping is performed.

#include <cstdint>

namespace logstruct::trace::storage {

inline constexpr std::uint32_t kMagic = 0x4b4c4253u;  // "SBLK"
inline constexpr std::uint32_t kFormatVersion = 2;
inline constexpr std::uint32_t kFormatVersionV1 = 1;

/// Footer magic "SBLKCMT2": distinct from kMagic so a footer read from a
/// wild offset can never be mistaken for a header (and vice versa).
inline constexpr std::uint64_t kFooterMagic = 0x32544d434b4c4253ull;

/// Stable column identifiers. Values are written to disk — append only.
enum class ColumnId : std::uint32_t {
  Events = 0,        ///< trace::Event, frozen id order
  Blocks = 1,        ///< trace::SerialBlock (POD), frozen id order
  Idles = 2,         ///< trace::IdleSpan, recorded order
  DepSend = 3,       ///< EventId, dep-table row order
  DepRecv = 4,       ///< EventId, aligned with DepSend
  DepKind = 5,       ///< trace::DepKind, aligned with DepSend
  DepBegin = 6,      ///< i32 CSR index over the p2p prefix (events+1)
  BlockEvents = 7,   ///< EventId, grouped by block, (time, id) order
  BlockEvBegin = 8,  ///< i64 CSR index over BlockEvents (blocks+1)
  ChareEvents = 9,   ///< EventId, grouped by chare, (time, id) order
  ChareBlocks = 10,  ///< BlockId, grouped by chare, (begin, id) order
  ProcBlocks = 11,   ///< BlockId, grouped by proc, (begin, id) order
};
inline constexpr std::uint32_t kNumColumns = 12;

struct FileHeader {
  std::uint32_t magic = kMagic;
  std::uint32_t version = kFormatVersion;
  std::uint32_t block_bytes = 0;
  std::uint32_t num_columns = kNumColumns;
  std::uint64_t directory_offset = 0;  ///< patched at finish()
  std::uint64_t meta_offset = 0;
  std::uint64_t meta_bytes = 0;
};
static_assert(sizeof(FileHeader) == 40, "on-disk header layout");

/// One v1 directory entry. The block-offset table for the column lives
/// at `offsets_offset`: ceil(byte_size / payload) u64 file positions.
struct ColumnDesc {
  std::uint32_t id = 0;
  std::uint32_t elem_bytes = 0;
  std::uint64_t byte_size = 0;
  std::uint64_t offsets_offset = 0;
};
static_assert(sizeof(ColumnDesc) == 24, "on-disk v1 directory layout");

/// One v2 directory entry: v1 plus the column's CRC32C table (one u32
/// per block, same count as the offset table; 0 when the column is
/// empty).
struct ColumnDescV2 {
  std::uint32_t id = 0;
  std::uint32_t elem_bytes = 0;
  std::uint64_t byte_size = 0;
  std::uint64_t offsets_offset = 0;
  std::uint64_t crcs_offset = 0;
};
static_assert(sizeof(ColumnDescV2) == 32, "on-disk v2 directory layout");

/// The v2 commit record, at the very end of the file. Only written (and
/// fsynced) after every byte it vouches for is durable.
struct CommitFooter {
  std::uint64_t magic = kFooterMagic;
  std::uint32_t version = kFormatVersion;
  std::uint32_t header_crc = 0;   ///< CRC32C of the final 40-byte header
  std::uint64_t tail_offset = 0;  ///< first byte after the last data block
  std::uint64_t file_bytes = 0;   ///< total size including this footer
  std::uint32_t tail_crc = 0;     ///< CRC32C over [tail_offset, footer)
  std::uint32_t footer_crc = 0;   ///< CRC32C of the preceding 36 bytes
};
static_assert(sizeof(CommitFooter) == 40, "on-disk footer layout");

}  // namespace logstruct::trace::storage
