#pragma once

/// \file format.hpp
/// The versioned `.lsblk` on-disk container (docs/FORMATS.md).
///
/// Layout: a fixed header, then data blocks appended in whatever order
/// the writer's columns filled them (the paged layout is what lets a
/// single streaming pass interleave appends to every column with bounded
/// RAM), then per-column block-offset tables, the column directory, and
/// a trace-metadata blob. The header is patched at finish() with the
/// directory offset, so readers seek straight to it.
///
///   [Header]
///   [block][block]...            raw column data, block_bytes each
///                                (a column's last block may be short)
///   [offset tables]              u64 file offset per block, per column
///   [directory]                  ColumnDesc per column
///   [metadata blob]              trace tables that stay RAM-resident
///
/// Every integer is little-endian; the container is written and read on
/// the same host class (this is a working-set spill format first, an
/// interchange format second), so no byte-swapping is performed.

#include <cstdint>

namespace logstruct::trace::storage {

inline constexpr std::uint32_t kMagic = 0x4b4c4253u;  // "SBLK"
inline constexpr std::uint32_t kFormatVersion = 1;

/// Stable column identifiers. Values are written to disk — append only.
enum class ColumnId : std::uint32_t {
  Events = 0,        ///< trace::Event, frozen id order
  Blocks = 1,        ///< trace::SerialBlock (POD), frozen id order
  Idles = 2,         ///< trace::IdleSpan, recorded order
  DepSend = 3,       ///< EventId, dep-table row order
  DepRecv = 4,       ///< EventId, aligned with DepSend
  DepKind = 5,       ///< trace::DepKind, aligned with DepSend
  DepBegin = 6,      ///< i32 CSR index over the p2p prefix (events+1)
  BlockEvents = 7,   ///< EventId, grouped by block, (time, id) order
  BlockEvBegin = 8,  ///< i64 CSR index over BlockEvents (blocks+1)
  ChareEvents = 9,   ///< EventId, grouped by chare, (time, id) order
  ChareBlocks = 10,  ///< BlockId, grouped by chare, (begin, id) order
  ProcBlocks = 11,   ///< BlockId, grouped by proc, (begin, id) order
};
inline constexpr std::uint32_t kNumColumns = 12;

struct FileHeader {
  std::uint32_t magic = kMagic;
  std::uint32_t version = kFormatVersion;
  std::uint32_t block_bytes = 0;
  std::uint32_t num_columns = kNumColumns;
  std::uint64_t directory_offset = 0;  ///< patched at finish()
  std::uint64_t meta_offset = 0;
  std::uint64_t meta_bytes = 0;
};
static_assert(sizeof(FileHeader) == 40, "on-disk header layout");

/// One directory entry. The block-offset table for the column lives at
/// `offsets_offset`: ceil(byte_size / block_bytes) u64 file positions.
struct ColumnDesc {
  std::uint32_t id = 0;
  std::uint32_t elem_bytes = 0;
  std::uint64_t byte_size = 0;
  std::uint64_t offsets_offset = 0;
};
static_assert(sizeof(ColumnDesc) == 24, "on-disk directory layout");

}  // namespace logstruct::trace::storage
