#include "trace/storage/blocked_trace.hpp"

#include <unistd.h>

#include <atomic>
#include <cstring>
#include <stdexcept>

#include "obs/obs.hpp"
#include "obs/progress.hpp"
#include "trace/repair.hpp"
#include "trace/storage/extsort.hpp"
#include "trace/storage/options.hpp"
#include "util/check.hpp"

namespace logstruct::trace::storage {

namespace {

// ------------------------------------------------- metadata blob codec

class ByteWriter {
 public:
  void raw(const void* data, std::size_t bytes) {
    out_.append(static_cast<const char*>(data), bytes);
  }
  void u8(std::uint8_t v) { raw(&v, 1); }
  void i32(std::int32_t v) { raw(&v, 4); }
  void i64(std::int64_t v) { raw(&v, 8); }
  void u64(std::uint64_t v) { raw(&v, 8); }
  void str(const std::string& s) {
    u64(s.size());
    raw(s.data(), s.size());
  }
  template <typename T>
  void vec(const std::vector<T>& v) {
    static_assert(std::is_trivially_copyable_v<T>);
    u64(v.size());
    raw(v.data(), v.size() * sizeof(T));
  }
  [[nodiscard]] std::string take() { return std::move(out_); }

 private:
  std::string out_;
};

class ByteReader {
 public:
  explicit ByteReader(const std::string& blob)
      : p_(blob.data()), end_(blob.data() + blob.size()) {}
  void raw(void* data, std::size_t bytes) {
    if (static_cast<std::size_t>(end_ - p_) < bytes)
      throw std::runtime_error("lsblk: truncated trace metadata");
    std::memcpy(data, p_, bytes);
    p_ += bytes;
  }
  std::uint8_t u8() {
    std::uint8_t v;
    raw(&v, 1);
    return v;
  }
  std::int32_t i32() {
    std::int32_t v;
    raw(&v, 4);
    return v;
  }
  std::int64_t i64() {
    std::int64_t v;
    raw(&v, 8);
    return v;
  }
  std::uint64_t u64() {
    std::uint64_t v;
    raw(&v, 8);
    return v;
  }
  std::string str() {
    const std::uint64_t n = len();
    std::string s(n, '\0');
    raw(s.data(), n);
    return s;
  }
  template <typename T>
  std::vector<T> vec() {
    static_assert(std::is_trivially_copyable_v<T>);
    const std::uint64_t n = len();
    std::vector<T> v(n);
    raw(v.data(), n * sizeof(T));
    return v;
  }

 private:
  std::uint64_t len() {
    const std::uint64_t n = u64();
    if (n > static_cast<std::uint64_t>(end_ - p_))
      throw std::runtime_error("lsblk: truncated trace metadata");
    return n;
  }
  const char* p_;
  const char* end_;
};

constexpr std::uint32_t kMetaVersion = 1;

// ---------------------------------------------------- column streaming

template <typename T, typename View>
void append_column(BlockStoreWriter& writer, ColumnId col, const View& view) {
  writer.set_elem_bytes(col, sizeof(T));
  view.for_each_chunk([&](const T* chunk, std::size_t n, std::size_t) {
    writer.append(col, chunk, n * sizeof(T));
  });
}

std::string make_spill_path(const StorageOptions& opts) {
  static std::atomic<std::uint64_t> counter{0};
  return resolve_spill_dir(opts) + "/lsblk-" + std::to_string(::getpid()) +
         "-" + std::to_string(counter.fetch_add(1)) + ".tmp";
}

}  // namespace

std::string serialize_trace_metadata(const Trace& trace) {
  ByteWriter w;
  w.i32(static_cast<std::int32_t>(kMetaVersion));
  w.i32(trace.num_procs_);
  w.i64(trace.end_time_);
  w.vec(trace.idle_total_);
  w.vec(trace.degraded_chare_);
  w.u64(trace.chares_.size());
  for (const ChareInfo& c : trace.chares_) {
    w.str(c.name);
    w.i32(c.array);
    w.i32(c.index);
    w.i32(c.home);
    w.u8(c.runtime ? 1 : 0);
  }
  w.u64(trace.arrays_.size());
  for (const ArrayInfo& a : trace.arrays_) {
    w.str(a.name);
    w.u8(a.runtime ? 1 : 0);
  }
  w.u64(trace.entries_.size());
  for (const EntryInfo& e : trace.entries_) {
    w.str(e.name);
    w.u8(e.runtime ? 1 : 0);
    w.i32(e.sdag_serial);
    w.vec(e.when_entries);
  }
  w.u64(trace.collectives_.size());
  for (const Collective& c : trace.collectives_) {
    w.vec(c.sends);
    w.vec(c.recvs);
  }
  w.vec(trace.chare_blocks_begin_);
  w.vec(trace.proc_blocks_begin_);
  w.vec(trace.chare_events_begin_);
  return w.take();
}

void deserialize_trace_metadata(const std::string& blob, Trace& trace) {
  ByteReader r(blob);
  if (r.i32() != static_cast<std::int32_t>(kMetaVersion))
    throw std::runtime_error("lsblk: unsupported trace metadata version");
  trace.num_procs_ = r.i32();
  trace.end_time_ = r.i64();
  trace.idle_total_ = r.vec<TimeNs>();
  trace.degraded_chare_ = r.vec<std::uint8_t>();
  trace.chares_.resize(r.u64());
  for (ChareInfo& c : trace.chares_) {
    c.name = r.str();
    c.array = r.i32();
    c.index = r.i32();
    c.home = r.i32();
    c.runtime = r.u8() != 0;
  }
  trace.arrays_.resize(r.u64());
  for (ArrayInfo& a : trace.arrays_) {
    a.name = r.str();
    a.runtime = r.u8() != 0;
  }
  trace.entries_.resize(r.u64());
  for (EntryInfo& e : trace.entries_) {
    e.name = r.str();
    e.runtime = r.u8() != 0;
    e.sdag_serial = r.i32();
    e.when_entries = r.vec<EntryId>();
  }
  trace.collectives_.resize(r.u64());
  for (Collective& c : trace.collectives_) {
    c.sends = r.vec<EventId>();
    c.recvs = r.vec<EventId>();
  }
  trace.chare_blocks_begin_ = r.vec<std::int64_t>();
  trace.proc_blocks_begin_ = r.vec<std::int64_t>();
  trace.chare_events_begin_ = r.vec<std::int64_t>();
}

void freeze_blocked(Trace& trace, int threads) {
  OBS_SPAN(span, "trace/freeze_blocked");
  const StorageOptions opts = default_options();
  const std::string path = make_spill_path(opts);
  BlockStoreWriter writer(path, opts.block_bytes);

  const std::size_t num_events = trace.events_.size();
  const std::size_t num_blocks = trace.blocks_.size();
  const std::size_t num_chares = trace.chares_.size();
  const std::size_t num_procs =
      static_cast<std::size_t>(trace.num_procs_);
  span.attr("events", static_cast<std::int64_t>(num_events));

  // Run-buffer budget of each external sort; the largest transient the
  // blocked freeze allocates beyond the construction staging itself.
  constexpr std::size_t kRunBytes = 16u << 20;

  // Progress covers both halves of every external sort: the push sweeps
  // and the k-way merge emit callbacks. Ticks are strided (one shared
  // atomic bump per 64Ki records) so the hot loops stay untouched. The
  // total budgets one push tick and one emit tick per candidate record:
  // three event-keyed sweeps scan num_events each, two block-keyed
  // sweeps scan num_blocks each. Sweeps that filter at push time
  // (blockless events, non-recv deps) emit fewer records than budgeted,
  // so the bar can finish short of 100% — an over-estimate, never a
  // stall at full.
  obs::Progress progress(
      "trace/freeze_blocked",
      2 * static_cast<std::int64_t>(3 * num_events + 2 * num_blocks));
  std::int64_t strided = 0;
  const auto stride_tick = [&strided] {
    if ((++strided & 0xFFFF) == 0) obs::Progress::tick(0x10000);
  };

  // Primary columns stream straight out in frozen (id) order.
  writer.set_elem_bytes(ColumnId::Events, sizeof(Event));
  writer.append(ColumnId::Events, trace.events_.data(),
                num_events * sizeof(Event));
  writer.set_elem_bytes(ColumnId::Blocks, sizeof(SerialBlock));
  writer.append(ColumnId::Blocks, trace.blocks_.data(),
                num_blocks * sizeof(SerialBlock));
  writer.set_elem_bytes(ColumnId::Idles, sizeof(IdleSpan));
  writer.append(ColumnId::Idles, trace.idles_.data(),
                trace.idles_.size() * sizeof(IdleSpan));

  // Per-block event lists: sort (block, time, id), stream the ids plus
  // the CSR begin column. Same (time, id) in-block order as the mem
  // backend's per-segment sorts.
  {
    struct Rec {
      BlockId block;
      TimeNs time;
      EventId id;
    };
    struct Less {
      bool operator()(const Rec& a, const Rec& b) const {
        if (a.block != b.block) return a.block < b.block;
        if (a.time != b.time) return a.time < b.time;
        return a.id < b.id;
      }
    };
    ExternalSorter<Rec, Less> sorter(kRunBytes, threads);
    for (std::size_t e = 0; e < num_events; ++e) {
      const Event& ev = trace.events_[e];
      if (ev.block != kNone)
        sorter.push({ev.block, ev.time, static_cast<EventId>(e)});
      stride_tick();
    }
    writer.set_elem_bytes(ColumnId::BlockEvents, sizeof(EventId));
    writer.set_elem_bytes(ColumnId::BlockEvBegin, sizeof(std::int64_t));
    std::int64_t count = 0;
    std::size_t next = 0;
    sorter.finish([&](const Rec& rec) {
      while (next <= static_cast<std::size_t>(rec.block)) {
        writer.append(ColumnId::BlockEvBegin, &count, sizeof(count));
        ++next;
      }
      writer.append(ColumnId::BlockEvents, &rec.id, sizeof(rec.id));
      ++count;
      stride_tick();
    });
    while (next <= num_blocks) {
      writer.append(ColumnId::BlockEvBegin, &count, sizeof(count));
      ++next;
    }
  }

  // Per-chare event lists: sort (chare, time, id); the small begin array
  // stays RAM-resident on the Trace.
  {
    struct Rec {
      ChareId chare;
      TimeNs time;
      EventId id;
    };
    struct Less {
      bool operator()(const Rec& a, const Rec& b) const {
        if (a.chare != b.chare) return a.chare < b.chare;
        if (a.time != b.time) return a.time < b.time;
        return a.id < b.id;
      }
    };
    ExternalSorter<Rec, Less> sorter(kRunBytes, threads);
    for (std::size_t e = 0; e < num_events; ++e) {
      const Event& ev = trace.events_[e];
      sorter.push({ev.chare, ev.time, static_cast<EventId>(e)});
      stride_tick();
    }
    writer.set_elem_bytes(ColumnId::ChareEvents, sizeof(EventId));
    trace.chare_events_begin_.clear();
    trace.chare_events_begin_.reserve(num_chares + 1);
    std::int64_t count = 0;
    std::size_t next = 0;
    sorter.finish([&](const Rec& rec) {
      while (next <= static_cast<std::size_t>(rec.chare)) {
        trace.chare_events_begin_.push_back(count);
        ++next;
      }
      writer.append(ColumnId::ChareEvents, &rec.id, sizeof(rec.id));
      ++count;
      stride_tick();
    });
    while (next <= num_chares) {
      trace.chare_events_begin_.push_back(count);
      ++next;
    }
  }

  // Per-chare and per-PE block lists: sort (group, begin, id).
  {
    struct Rec {
      std::int32_t group;
      TimeNs begin;
      BlockId id;
    };
    struct Less {
      bool operator()(const Rec& a, const Rec& b) const {
        if (a.group != b.group) return a.group < b.group;
        if (a.begin != b.begin) return a.begin < b.begin;
        return a.id < b.id;
      }
    };
    const auto emit_groups = [&](ColumnId col, std::size_t groups,
                                 std::vector<std::int64_t>& begin,
                                 ExternalSorter<Rec, Less>& sorter) {
      writer.set_elem_bytes(col, sizeof(BlockId));
      begin.clear();
      begin.reserve(groups + 1);
      std::int64_t count = 0;
      std::size_t next = 0;
      sorter.finish([&](const Rec& rec) {
        while (next <= static_cast<std::size_t>(rec.group)) {
          begin.push_back(count);
          ++next;
        }
        writer.append(col, &rec.id, sizeof(rec.id));
        ++count;
        stride_tick();
      });
      while (next <= groups) {
        begin.push_back(count);
        ++next;
      }
    };
    {
      ExternalSorter<Rec, Less> sorter(kRunBytes, threads);
      for (std::size_t b = 0; b < num_blocks; ++b) {
        const SerialBlock& blk = trace.blocks_[b];
        sorter.push({blk.chare, blk.begin, static_cast<BlockId>(b)});
        stride_tick();
      }
      emit_groups(ColumnId::ChareBlocks, num_chares,
                  trace.chare_blocks_begin_, sorter);
    }
    {
      ExternalSorter<Rec, Less> sorter(kRunBytes, threads);
      for (std::size_t b = 0; b < num_blocks; ++b) {
        const SerialBlock& blk = trace.blocks_[b];
        if (blk.proc >= 0 && blk.proc < trace.num_procs_)
          sorter.push({blk.proc, blk.begin, static_cast<BlockId>(b)});
        stride_tick();
      }
      emit_groups(ColumnId::ProcBlocks, num_procs,
                  trace.proc_blocks_begin_, sorter);
    }
  }

  // Dependency table: every recv naming send s is one row (s, r); the
  // (s, r) sort groups rows by send with the partner (lowest recv id)
  // first — identical to the mem backend's scatter. The CSR begin column
  // streams alongside; collective cross-product rows follow the prefix.
  {
    struct Rec {
      EventId send;
      EventId recv;
    };
    struct Less {
      bool operator()(const Rec& a, const Rec& b) const {
        if (a.send != b.send) return a.send < b.send;
        return a.recv < b.recv;
      }
    };
    ExternalSorter<Rec, Less> sorter(kRunBytes, threads);
    for (std::size_t r = 0; r < num_events; ++r) {
      const Event& e = trace.events_[r];
      if (e.kind == EventKind::Recv && e.partner != kNone)
        sorter.push({e.partner, static_cast<EventId>(r)});
      stride_tick();
    }
    writer.set_elem_bytes(ColumnId::DepSend, sizeof(EventId));
    writer.set_elem_bytes(ColumnId::DepRecv, sizeof(EventId));
    writer.set_elem_bytes(ColumnId::DepKind, sizeof(DepKind));
    writer.set_elem_bytes(ColumnId::DepBegin, sizeof(std::int32_t));
    std::int32_t count = 0;
    std::size_t next = 0;
    sorter.finish([&](const Rec& rec) {
      while (next <= static_cast<std::size_t>(rec.send)) {
        writer.append(ColumnId::DepBegin, &count, sizeof(count));
        ++next;
      }
      const DepKind kind =
          trace.events_[static_cast<std::size_t>(rec.send)].partner ==
                  rec.recv
              ? DepKind::Match
              : DepKind::Fanout;
      writer.append(ColumnId::DepSend, &rec.send, sizeof(rec.send));
      writer.append(ColumnId::DepRecv, &rec.recv, sizeof(rec.recv));
      writer.append(ColumnId::DepKind, &kind, sizeof(kind));
      ++count;
      stride_tick();
    });
    while (next <= num_events) {
      writer.append(ColumnId::DepBegin, &count, sizeof(count));
      ++next;
    }
    for (const Collective& coll : trace.collectives_) {
      const DepKind kind = DepKind::Collective;
      for (EventId s : coll.sends) {
        for (EventId r : coll.recvs) {
          writer.append(ColumnId::DepSend, &s, sizeof(s));
          writer.append(ColumnId::DepRecv, &r, sizeof(r));
          writer.append(ColumnId::DepKind, &kind, sizeof(kind));
        }
      }
    }
  }

  writer.finish(serialize_trace_metadata(trace));

  auto data = std::make_shared<BlockedTraceData>();
  data->store = std::make_unique<BlockStore>(path);
  data->store->unlink_backing_file();  // spill store: fd keeps it alive
  data->bind_columns();
  trace.blocked_ = std::move(data);

  // Release the construction staging and any mem-backend leftovers.
  trace.events_ = {};
  trace.blocks_ = {};
  trace.idles_ = {};
  trace.chare_blocks_ = {};
  trace.proc_blocks_ = {};
  trace.chare_events_ = {};
  trace.block_events_ = {};
  trace.block_ev_begin_ = {};
  trace.dep_send_ = {};
  trace.dep_recv_ = {};
  trace.dep_kind_ = {};
  trace.dep_begin_ = {};
}

Trace open_blocked_trace(const std::string& path) {
  Trace trace;
  auto data = std::make_shared<BlockedTraceData>();
  data->store = std::make_unique<BlockStore>(path);
  deserialize_trace_metadata(data->store->metadata(), trace);
  data->bind_columns();
  trace.blocked_ = std::move(data);
  LS_CHECK_MSG(trace.chare_blocks_begin_.size() == trace.chares_.size() + 1,
               "lsblk: metadata/column shape mismatch");
  return trace;
}

namespace {

/// Visit every element of `col` that lives in a non-quarantined block,
/// as (global element index, element). Blocks lost to quarantine leave
/// index gaps — exactly the shape trace::repair() was built to close.
template <typename T, typename Fn>
void for_each_surviving(const BlockStore& store, ColumnId col,
                        RecoveryReport& report, Fn&& fn) {
  const std::uint32_t elem = store.column_elem_bytes(col);
  if (elem == 0 || store.column_bytes(col) == 0) return;
  if (elem != sizeof(T)) {
    report.add(DiagCode::BadHeader, Severity::Error,
               "lsblk: column " +
                   std::to_string(static_cast<std::uint32_t>(col)) +
                   " element size mismatch; column dropped");
    return;
  }
  const std::size_t elems_per_block = store.column_payload(col) / elem;
  std::vector<char> scratch(store.block_bytes());
  const std::uint32_t blocks = store.num_blocks(col);
  for (std::uint32_t b = 0; b < blocks; ++b) {
    if (store.is_quarantined(col, b)) continue;
    const std::uint32_t size = store.block_size(col, b);
    try {
      store.read_block(col, b, scratch.data());
    } catch (const StorageError&) {
      continue;  // rot the scan missed; already the scan's diagnostic
    }
    const std::size_t base = std::size_t{b} * elems_per_block;
    const T* p = reinterpret_cast<const T*>(scratch.data());
    for (std::uint32_t i = 0; i * elem < size; ++i) fn(base + i, p[i]);
  }
}

}  // namespace

Trace open_blocked_trace(const std::string& path,
                         const StorageOptions& options,
                         RecoveryReport& report, int threads) {
  if (!options.recover) return open_blocked_trace(path);
  OBS_SPAN(span, "trace/open_blocked_recovering");

  auto store =
      std::make_unique<BlockStore>(path, OpenOptions::recovering(&report));
  if (!store->salvageable()) return Trace{};  // Fatal already recorded
  store->scan_blocks(&report);

  // The metadata blob holds the chare / entry / collective tables; a
  // trace cannot be rebuilt without them. (Under a valid footer the blob
  // is checksummed, so this only fires on v1 rot or a torn tail.)
  Trace meta;
  try {
    deserialize_trace_metadata(store->metadata(), meta);
  } catch (const std::exception& e) {
    report.add({DiagCode::ContainerTruncated, Severity::Fatal, -1, -1,
                std::string("trace metadata unusable: ") + e.what()});
    return Trace{};
  }

  if (report.ok() && store->num_quarantined() == 0) {
    // Fully intact: serve straight from the container, strict-style.
    try {
      store.reset();
      return open_blocked_trace(path);
    } catch (const std::exception& e) {
      report.add({DiagCode::BadHeader, Severity::Error, -1, -1,
                  std::string("strict re-open failed: ") + e.what()});
      store = std::make_unique<BlockStore>(
          path, OpenOptions::recovering(&report));
      if (!store->salvageable()) return Trace{};
      store->scan_blocks(&report);
    }
  }

  // Salvage: primary columns only. Derived columns (dependency table,
  // CSR groupings) are recomputed by the freeze inside build_trace(), so
  // damage there costs nothing; damage to the primaries surfaces as id
  // gaps that repair() closes with full provenance.
  RawTrace raw;
  raw.num_procs = meta.num_procs();
  std::int64_t next_id = 0;
  for (const ChareInfo& c : meta.chares()) raw.chares.push_back({next_id++, c});
  next_id = 0;
  for (const ArrayInfo& a : meta.arrays()) raw.arrays.push_back({next_id++, a});
  next_id = 0;
  for (const EntryInfo& e : meta.entries())
    raw.entries.push_back({next_id++, e});
  for (const Collective& c : meta.collectives()) {
    RawCollective rc;
    rc.sends.assign(c.sends.begin(), c.sends.end());
    rc.recvs.assign(c.recvs.begin(), c.recvs.end());
    raw.collectives.push_back(std::move(rc));
  }
  for (ChareId c = 0; c < meta.num_chares(); ++c)
    if (meta.is_degraded_chare(c)) raw.degraded_chares.push_back(c);

  for_each_surviving<Event>(
      *store, ColumnId::Events, report,
      [&](std::size_t id, const Event& e) {
        raw.events.push_back({static_cast<std::int64_t>(id), e.kind, e.time,
                              e.block, e.partner});
      });
  for_each_surviving<SerialBlock>(
      *store, ColumnId::Blocks, report,
      [&](std::size_t id, const SerialBlock& b) {
        raw.blocks.push_back({static_cast<std::int64_t>(id), b.chare, b.proc,
                              b.entry, b.begin, b.end, true});
      });
  for_each_surviving<IdleSpan>(
      *store, ColumnId::Idles, report,
      [&](std::size_t, const IdleSpan& s) { raw.idles.push_back(s); });
  store.reset();

  repair(raw, report);
  return build_trace(std::move(raw), threads);
}

void write_blocked_file(const Trace& trace, const std::string& path,
                        std::uint32_t block_bytes, std::uint32_t version) {
  OBS_SPAN(span, "trace/write_blocked_file");
  BlockStoreWriter writer(path, block_bytes, version);
  append_column<Event>(writer, ColumnId::Events, trace.events());
  append_column<SerialBlock>(writer, ColumnId::Blocks, trace.blocks());
  append_column<IdleSpan>(writer, ColumnId::Idles, trace.idles());
  append_column<EventId>(writer, ColumnId::DepSend, trace.dep_sends());
  append_column<EventId>(writer, ColumnId::DepRecv, trace.dep_recvs());
  append_column<DepKind>(writer, ColumnId::DepKind, trace.dep_kinds());

  const auto view_i32 = [&](const BlockedColumn<std::int32_t>* col,
                            const std::vector<std::int32_t>& mem) {
    return trace.blocked_ ? ColumnView<std::int32_t>(col)
                          : ColumnView<std::int32_t>(mem.data(), mem.size());
  };
  const auto view_i64 = [&](const BlockedColumn<std::int64_t>* col,
                            const std::vector<std::int64_t>& mem) {
    return trace.blocked_ ? ColumnView<std::int64_t>(col)
                          : ColumnView<std::int64_t>(mem.data(), mem.size());
  };
  const auto view_id = [&](const BlockedColumn<std::int32_t>* col,
                           const std::vector<std::int32_t>& mem) {
    return trace.blocked_ ? ColumnView<std::int32_t>(col)
                          : ColumnView<std::int32_t>(mem.data(), mem.size());
  };
  const BlockedTraceData* b = trace.blocked_.get();
  append_column<std::int32_t>(
      writer, ColumnId::DepBegin,
      view_i32(b ? &b->dep_begin : nullptr, trace.dep_begin_));
  append_column<EventId>(
      writer, ColumnId::BlockEvents,
      view_id(b ? &b->block_events : nullptr, trace.block_events_));
  append_column<std::int64_t>(
      writer, ColumnId::BlockEvBegin,
      view_i64(b ? &b->block_ev_begin : nullptr, trace.block_ev_begin_));
  append_column<EventId>(
      writer, ColumnId::ChareEvents,
      view_id(b ? &b->chare_events : nullptr, trace.chare_events_));
  append_column<BlockId>(
      writer, ColumnId::ChareBlocks,
      view_id(b ? &b->chare_blocks : nullptr, trace.chare_blocks_));
  append_column<BlockId>(
      writer, ColumnId::ProcBlocks,
      view_id(b ? &b->proc_blocks : nullptr, trace.proc_blocks_));
  writer.finish(serialize_trace_metadata(trace));
}

namespace {

struct Fnv1a {
  std::uint64_t h = 1469598103934665603ull;
  void byte(std::uint8_t b) {
    h ^= b;
    h *= 1099511628211ull;
  }
  void u64(std::uint64_t v) {
    for (int i = 0; i < 8; ++i) byte(static_cast<std::uint8_t>(v >> (8 * i)));
  }
  void i64(std::int64_t v) { u64(static_cast<std::uint64_t>(v)); }
  void i32(std::int32_t v) {
    u64(static_cast<std::uint64_t>(static_cast<std::uint32_t>(v)));
  }
  void str(const std::string& s) {
    u64(s.size());
    for (char c : s) byte(static_cast<std::uint8_t>(c));
  }
};

}  // namespace

std::uint64_t trace_structure_hash(const Trace& trace) {
  Fnv1a h;
  h.i32(trace.num_procs());
  h.i32(trace.num_events());
  h.i32(trace.num_blocks());
  h.i32(trace.num_chares());
  h.i64(trace.num_dependencies());
  h.i64(trace.end_time());

  for (const Event& e : trace.events()) {
    h.byte(static_cast<std::uint8_t>(e.kind));
    h.i64(e.time);
    h.i32(e.chare);
    h.i32(e.proc);
    h.i32(e.block);
    h.i32(e.partner);
  }
  for (const SerialBlock& b : trace.blocks()) {
    h.i32(b.chare);
    h.i32(b.proc);
    h.i32(b.entry);
    h.i64(b.begin);
    h.i64(b.end);
    h.i32(b.trigger);
  }
  for (const IdleSpan& s : trace.idles()) {
    h.i32(s.proc);
    h.i64(s.begin);
    h.i64(s.end);
  }
  trace.dep_sends().for_each_chunk(
      [&](const EventId* p, std::size_t n, std::size_t) {
        for (std::size_t i = 0; i < n; ++i) h.i32(p[i]);
      });
  trace.dep_recvs().for_each_chunk(
      [&](const EventId* p, std::size_t n, std::size_t) {
        for (std::size_t i = 0; i < n; ++i) h.i32(p[i]);
      });
  trace.dep_kinds().for_each_chunk(
      [&](const DepKind* p, std::size_t n, std::size_t) {
        for (std::size_t i = 0; i < n; ++i)
          h.byte(static_cast<std::uint8_t>(p[i]));
      });
  for (BlockId b = 0; b < trace.num_blocks(); ++b) {
    const auto span = trace.events_of_block(b);
    h.u64(span.size());
    for (EventId e : span) h.i32(e);
  }
  for (ChareId c = 0; c < trace.num_chares(); ++c) {
    const auto events = trace.events_of_chare(c);
    h.u64(events.size());
    for (EventId e : events) h.i32(e);
    const auto blocks = trace.blocks_of_chare(c);
    h.u64(blocks.size());
    for (BlockId b : blocks) h.i32(b);
  }
  for (ProcId p = 0; p < trace.num_procs(); ++p) {
    const auto blocks = trace.blocks_of_proc(p);
    h.u64(blocks.size());
    for (BlockId b : blocks) h.i32(b);
    h.i64(trace.total_idle(p));
  }
  for (const ChareInfo& c : trace.chares()) {
    h.str(c.name);
    h.i32(c.array);
    h.i32(c.index);
    h.i32(c.home);
    h.byte(c.runtime ? 1 : 0);
  }
  for (const ArrayInfo& a : trace.arrays()) {
    h.str(a.name);
    h.byte(a.runtime ? 1 : 0);
  }
  for (const EntryInfo& e : trace.entries()) {
    h.str(e.name);
    h.byte(e.runtime ? 1 : 0);
    h.i32(e.sdag_serial);
    h.u64(e.when_entries.size());
    for (EntryId w : e.when_entries) h.i32(w);
  }
  for (const Collective& c : trace.collectives()) {
    h.u64(c.sends.size());
    for (EventId s : c.sends) h.i32(s);
    h.u64(c.recvs.size());
    for (EventId r : c.recvs) h.i32(r);
  }
  h.i32(trace.num_degraded_chares());
  for (ChareId c = 0; c < trace.num_chares(); ++c)
    if (trace.is_degraded_chare(c)) h.i32(c);
  return h.h;
}

}  // namespace logstruct::trace::storage
