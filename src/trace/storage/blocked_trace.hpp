#pragma once

/// \file blocked_trace.hpp
/// Entry points of the blocked trace backend (docs/STORAGE.md).
///
/// freeze_blocked() is called by Trace::freeze() when the process
/// default backend is Blocked: it streams the frozen columns into an
/// unlinked spill `.lsblk` (external sorts keep the transient RSS at the
/// run-buffer size) and swaps the Trace onto the store. The named-file
/// functions back tools/trace_convert: write_blocked_file() persists any
/// frozen trace as a `.lsblk`, open_blocked_trace() serves one without
/// re-freezing, and trace_structure_hash() is the backend-independent
/// fingerprint used to verify round trips and cross-backend equality.

#include <cstdint>
#include <string>

#include "trace/diagnostics.hpp"
#include "trace/trace.hpp"

namespace logstruct::trace::storage {

// (Declared in trace/trace.hpp for friendship; restated here as the
// public surface.)
//
// void freeze_blocked(Trace& trace, int threads);
// Trace open_blocked_trace(const std::string& path);
// void write_blocked_file(const Trace& trace, const std::string& path,
//                         std::uint32_t block_bytes,
//                         std::uint32_t version);
// std::string serialize_trace_metadata(const Trace& trace);
// std::uint64_t trace_structure_hash(const Trace& trace);

/// Recovering open (StorageOptions::recovering()): never throws on a
/// damaged container. An intact file is served exactly like the strict
/// open; a damaged one is salvaged — unreadable / checksum-failing
/// blocks quarantined, the surviving events / blocks / idles rebuilt
/// through trace::repair() + build_trace() with every loss recorded in
/// `report` (chares that lost data carry degraded provenance). Worst
/// case is a Fatal diagnostic and an empty Trace: a clean refusal.
/// `options.recover == false` degrades to the strict open.
[[nodiscard]] Trace open_blocked_trace(const std::string& path,
                                       const StorageOptions& options,
                                       RecoveryReport& report,
                                       int threads = 0);

}  // namespace logstruct::trace::storage
