#pragma once

/// \file blocked_trace.hpp
/// Entry points of the blocked trace backend (docs/STORAGE.md).
///
/// freeze_blocked() is called by Trace::freeze() when the process
/// default backend is Blocked: it streams the frozen columns into an
/// unlinked spill `.lsblk` (external sorts keep the transient RSS at the
/// run-buffer size) and swaps the Trace onto the store. The named-file
/// functions back tools/trace_convert: write_blocked_file() persists any
/// frozen trace as a `.lsblk`, open_blocked_trace() serves one without
/// re-freezing, and trace_structure_hash() is the backend-independent
/// fingerprint used to verify round trips and cross-backend equality.

#include <cstdint>
#include <string>

#include "trace/trace.hpp"

namespace logstruct::trace::storage {

// (Declared in trace/trace.hpp for friendship; restated here as the
// public surface.)
//
// void freeze_blocked(Trace& trace, int threads);
// Trace open_blocked_trace(const std::string& path);
// void write_blocked_file(const Trace& trace, const std::string& path,
//                         std::uint32_t block_bytes);
// std::string serialize_trace_metadata(const Trace& trace);
// std::uint64_t trace_structure_hash(const Trace& trace);

}  // namespace logstruct::trace::storage
