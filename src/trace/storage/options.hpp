#pragma once

/// \file options.hpp
/// Process-wide storage-backend selection for trace::Trace.
///
/// Every Trace freezes against the options in effect at freeze time:
/// `mem` keeps the frozen columns in std::vector (the historical layout,
/// zero overhead); `blocked` streams them into an unlinked `.lsblk`
/// container (storage/format.hpp) and serves reads through the global
/// block cache. Defaults come from the environment —
///   LOGSTRUCT_STORAGE      mem|blocked
///   LOGSTRUCT_CACHE_MB     block-cache byte budget in MiB (0 = unbounded)
///   LOGSTRUCT_STORAGE_DIR  directory for spill files (default $TMPDIR)
/// — so the full test suite can run blocked without touching harness
/// code; the shared `--storage` / `--cache-mb` flags (util/obs_flags.hpp)
/// override the environment when passed explicitly.

#include <cstdint>
#include <string>

namespace logstruct::trace::storage {

enum class BackendKind : std::uint8_t { Mem = 0, Blocked = 1 };

struct StorageOptions {
  BackendKind kind = BackendKind::Mem;
  /// Block-cache byte budget shared by every open store (0 = unbounded).
  std::uint64_t cache_bytes = 256ull << 20;
  /// Fixed block size of newly written .lsblk containers.
  std::uint32_t block_bytes = 256u << 10;
  /// Directory for freeze-time spill files; empty = $TMPDIR or /tmp.
  std::string dir;
  /// Open mode for named `.lsblk` files (mirrors ReadOptions::recover):
  /// false = strict, throw StorageError at the first sign of damage;
  /// true = salvage — quarantine unreadable / checksum-failing blocks,
  /// rebuild from the survivors via trace::repair(), and report every
  /// loss through a RecoveryReport (docs/ROBUSTNESS.md).
  bool recover = false;

  [[nodiscard]] static StorageOptions recovering() {
    StorageOptions o;
    o.recover = true;
    return o;
  }
};

/// The process defaults. First call reads the LOGSTRUCT_STORAGE* /
/// LOGSTRUCT_CACHE_MB environment; later calls return the stored value
/// (as overridden by set_default_options). Thread-safe.
[[nodiscard]] StorageOptions default_options();

/// Replace the process defaults (applies the cache budget immediately).
void set_default_options(const StorageOptions& opts);

/// Spill directory with the empty-string fallback resolved.
[[nodiscard]] std::string resolve_spill_dir(const StorageOptions& opts);

/// RAII override of the process defaults, for tests that pin a backend
/// or cache budget without leaking it into later tests.
class ScopedStorageOptions {
 public:
  explicit ScopedStorageOptions(const StorageOptions& opts)
      : saved_(default_options()) {
    set_default_options(opts);
  }
  ~ScopedStorageOptions() { set_default_options(saved_); }
  ScopedStorageOptions(const ScopedStorageOptions&) = delete;
  ScopedStorageOptions& operator=(const ScopedStorageOptions&) = delete;

 private:
  StorageOptions saved_;
};

}  // namespace logstruct::trace::storage
