#include "trace/storage/io_engine.hpp"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <sstream>
#include <thread>

#include "obs/obs.hpp"

namespace logstruct::trace::storage {

namespace {

// --------------------------------------------------------- system engine

class SystemIoEngine final : public IoEngine {
 public:
  int open(const char* path, int flags, int mode) override {
    return ::open(path, flags, mode);
  }
  int close(int fd) override { return ::close(fd); }
  long pread(int fd, void* buf, std::size_t bytes,
             std::uint64_t offset) override {
    return ::pread(fd, buf, bytes, static_cast<off_t>(offset));
  }
  long pwrite(int fd, const void* buf, std::size_t bytes,
              std::uint64_t offset) override {
    return ::pwrite(fd, buf, bytes, static_cast<off_t>(offset));
  }
  int fsync(int fd) override { return ::fsync(fd); }
  std::int64_t file_size(int fd) override {
    struct stat st;
    if (::fstat(fd, &st) != 0) return -1;
    return static_cast<std::int64_t>(st.st_size);
  }
};

std::atomic<IoEngine*> g_override{nullptr};

// ----------------------------------------------------- deterministic rng

std::uint64_t splitmix64(std::uint64_t x) {
  x += 0x9E3779B97F4A7C15ull;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
  return x ^ (x >> 31);
}

double unit(std::uint64_t h) { return static_cast<double>(h >> 11) * 0x1.0p-53; }

// ----------------------------------------------------------- retry knobs

constexpr int kMaxTransientRetries = 6;
constexpr int kMaxEintrResumes = 65536;

bool transient_errno(int err) { return err == EIO || err == EAGAIN; }

void backoff(int attempt) {
  // 32us, 64us, ... ~2ms total over kMaxTransientRetries attempts: long
  // enough to outlive a controller hiccup, short enough for fault-matrix
  // tests to hammer thousands of injected failures.
  std::this_thread::sleep_for(std::chrono::microseconds(32ll << attempt));
}

std::string io_msg(const IoContext& ctx, const char* what,
                   std::uint64_t offset, std::size_t remaining,
                   std::size_t total) {
  std::ostringstream os;
  os << "lsblk: " << ctx.op << " '" << (ctx.path ? *ctx.path : "?") << '\'';
  if (ctx.column >= 0) os << " col=" << ctx.column;
  if (ctx.block >= 0) os << " block=" << ctx.block;
  os << " offset=" << offset << ": " << what;
  if (remaining > 0 && total > 0)
    os << " (" << remaining << " of " << total << " bytes missing)";
  return os.str();
}

}  // namespace

IoEngine& IoEngine::system() {
  static SystemIoEngine engine;
  return engine;
}

IoEngine& IoEngine::current() {
  if (IoEngine* e = g_override.load(std::memory_order_acquire)) return *e;
  static IoEngine* def = [] {
    if (const char* spec = std::getenv("LOGSTRUCT_IO_FAULTS")) {
      if (*spec != '\0') {
        static FaultyIoEngine faulty{FaultSpec::parse(spec)};
        return static_cast<IoEngine*>(&faulty);
      }
    }
    return &system();
  }();
  return *def;
}

void IoEngine::set_current(IoEngine* engine) {
  g_override.store(engine, std::memory_order_release);
}

// ------------------------------------------------------------ fault spec

FaultSpec FaultSpec::parse(const std::string& spec) {
  FaultSpec out;
  std::size_t pos = 0;
  while (pos < spec.size()) {
    std::size_t end = spec.find_first_of(",;", pos);
    if (end == std::string::npos) end = spec.size();
    const std::string item = spec.substr(pos, end - pos);
    pos = end + 1;
    if (item.empty()) continue;
    const std::size_t eq = item.find('=');
    if (eq == std::string::npos)
      throw std::invalid_argument("LOGSTRUCT_IO_FAULTS: expected key=value, "
                                  "got '" + item + "'");
    const std::string key = item.substr(0, eq);
    const std::string val = item.substr(eq + 1);
    char* endp = nullptr;
    const auto as_u64 = [&]() -> std::uint64_t {
      const unsigned long long v = std::strtoull(val.c_str(), &endp, 10);
      if (endp == val.c_str() || *endp != '\0')
        throw std::invalid_argument("LOGSTRUCT_IO_FAULTS: bad integer for '" +
                                    key + "'");
      return v;
    };
    const auto as_prob = [&]() -> double {
      const double v = std::strtod(val.c_str(), &endp);
      if (endp == val.c_str() || *endp != '\0' || v < 0.0 || v > 1.0)
        throw std::invalid_argument(
            "LOGSTRUCT_IO_FAULTS: bad probability for '" + key + "'");
      return v;
    };
    if (key == "seed") out.seed = as_u64();
    else if (key == "eintr") out.eintr = as_prob();
    else if (key == "eio") out.eio = as_prob();
    else if (key == "short_read") out.short_read = as_prob();
    else if (key == "short_write") out.short_write = as_prob();
    else if (key == "bitflip") out.bitflip = as_prob();
    else if (key == "enospc_at") out.enospc_at = as_u64();
    else if (key == "truncate_at") out.truncate_at = as_u64();
    else
      throw std::invalid_argument("LOGSTRUCT_IO_FAULTS: unknown key '" + key +
                                  "'");
  }
  return out;
}

// ----------------------------------------------------------- fault engine

FaultyIoEngine::FaultyIoEngine(const FaultSpec& spec, IoEngine* inner)
    : spec_(spec), inner_(inner != nullptr ? inner : &IoEngine::system()) {}

bool FaultyIoEngine::roll(double p, std::uint64_t key) {
  if (p <= 0.0) return false;
  const bool hit = unit(splitmix64(spec_.seed ^ splitmix64(key))) < p;
  if (hit) faults_.fetch_add(1, std::memory_order_relaxed);
  return hit;
}

int FaultyIoEngine::open(const char* path, int flags, int mode) {
  return inner_->open(path, flags, mode);
}

int FaultyIoEngine::close(int fd) { return inner_->close(fd); }

long FaultyIoEngine::pread(int fd, void* buf, std::size_t bytes,
                           std::uint64_t offset) {
  const std::uint64_t call = calls_.fetch_add(1, std::memory_order_relaxed);
  if (roll(spec_.eintr, call * 8 + 0)) {
    errno = EINTR;
    return -1;
  }
  if (roll(spec_.eio, call * 8 + 1)) {
    errno = EIO;
    return -1;
  }
  std::size_t want = bytes;
  if (spec_.truncate_at > 0) {
    if (offset >= spec_.truncate_at) {
      faults_.fetch_add(1, std::memory_order_relaxed);
      return 0;  // past the torn tail: EOF
    }
    if (offset + want > spec_.truncate_at)
      want = static_cast<std::size_t>(spec_.truncate_at - offset);
  }
  if (want > 1 && roll(spec_.short_read, call * 8 + 2)) want /= 2;
  const long n = inner_->pread(fd, buf, want, offset);
  if (n > 0 && spec_.bitflip > 0.0) {
    // Persistent per-offset corruption: the flip is a pure function of
    // the 64-byte cell's file offset, so every re-read of the same
    // range sees identical damage (what checksums must catch — a retry
    // must NOT make it go away).
    auto* p = static_cast<unsigned char*>(buf);
    const std::uint64_t lo_cell = offset / 64;
    const std::uint64_t hi_cell = (offset + static_cast<std::uint64_t>(n) + 63) / 64;
    for (std::uint64_t cell = lo_cell; cell < hi_cell; ++cell) {
      const std::uint64_t h =
          splitmix64(spec_.seed ^ splitmix64(cell * 8 + 0xB17Fu));
      if (unit(h) >= spec_.bitflip) continue;
      const std::uint64_t byte = cell * 64 + ((h >> 8) & 63);
      if (byte < offset || byte >= offset + static_cast<std::uint64_t>(n))
        continue;
      p[byte - offset] ^= static_cast<unsigned char>(1u << ((h >> 16) & 7));
      faults_.fetch_add(1, std::memory_order_relaxed);
    }
  }
  return n;
}

long FaultyIoEngine::pwrite(int fd, const void* buf, std::size_t bytes,
                            std::uint64_t offset) {
  const std::uint64_t call = calls_.fetch_add(1, std::memory_order_relaxed);
  if (roll(spec_.eintr, call * 8 + 4)) {
    errno = EINTR;
    return -1;
  }
  if (roll(spec_.eio, call * 8 + 5)) {
    errno = EIO;
    return -1;
  }
  std::size_t want = bytes;
  if (spec_.enospc_at > 0) {
    const std::uint64_t used = written_.load(std::memory_order_relaxed);
    if (used >= spec_.enospc_at) {
      faults_.fetch_add(1, std::memory_order_relaxed);
      errno = ENOSPC;
      return -1;
    }
    if (used + want > spec_.enospc_at)
      want = static_cast<std::size_t>(spec_.enospc_at - used);
  }
  if (want > 1 && roll(spec_.short_write, call * 8 + 6)) want /= 2;
  const long n = inner_->pwrite(fd, buf, want, offset);
  if (n > 0) written_.fetch_add(static_cast<std::uint64_t>(n),
                                std::memory_order_relaxed);
  return n;
}

int FaultyIoEngine::fsync(int fd) { return inner_->fsync(fd); }

std::int64_t FaultyIoEngine::file_size(int fd) {
  const std::int64_t n = inner_->file_size(fd);
  if (n < 0) return n;
  if (spec_.truncate_at > 0 &&
      n > static_cast<std::int64_t>(spec_.truncate_at))
    return static_cast<std::int64_t>(spec_.truncate_at);
  return n;
}

// ---------------------------------------------------------- retry policy

void pread_all(IoEngine& io, int fd, void* data, std::size_t bytes,
               std::uint64_t offset, const IoContext& ctx) {
  char* p = static_cast<char*>(data);
  std::size_t left = bytes;
  int retries = 0;
  int eintr = 0;
  while (left > 0) {
    const long n = io.pread(fd, p, left, offset);
    if (n < 0) {
      const int err = errno;
      if (err == EINTR) {
        if (++eintr > kMaxEintrResumes)
          throw StorageError(
              DiagCode::BlockUnreadable,
              io_msg(ctx, "EINTR storm exceeded resume cap", offset, left,
                     bytes));
        continue;
      }
      if (transient_errno(err) && retries < kMaxTransientRetries) {
        OBS_COUNTER_INC("trace/storage/io/retries");
        backoff(retries++);
        continue;
      }
      if (transient_errno(err)) OBS_COUNTER_INC("trace/storage/io/gave_up");
      throw StorageError(DiagCode::BlockUnreadable,
                         io_msg(ctx, std::strerror(err), offset, left,
                                bytes));
    }
    if (n == 0)
      throw StorageError(
          DiagCode::ContainerTruncated,
          io_msg(ctx, "unexpected end of file", offset, left, bytes));
    p += n;
    left -= static_cast<std::size_t>(n);
    offset += static_cast<std::uint64_t>(n);
  }
}

void pwrite_all(IoEngine& io, int fd, const void* data, std::size_t bytes,
                std::uint64_t offset, const IoContext& ctx) {
  const char* p = static_cast<const char*>(data);
  std::size_t left = bytes;
  int retries = 0;
  int eintr = 0;
  while (left > 0) {
    const long n = io.pwrite(fd, p, left, offset);
    if (n < 0) {
      const int err = errno;
      if (err == EINTR) {
        if (++eintr > kMaxEintrResumes)
          throw StorageError(
              DiagCode::IoError,
              io_msg(ctx, "EINTR storm exceeded resume cap", offset, left,
                     bytes));
        continue;
      }
      if (transient_errno(err) && retries < kMaxTransientRetries) {
        OBS_COUNTER_INC("trace/storage/io/retries");
        backoff(retries++);
        continue;
      }
      if (transient_errno(err)) OBS_COUNTER_INC("trace/storage/io/gave_up");
      throw StorageError(DiagCode::IoError,
                         io_msg(ctx, std::strerror(err), offset, left,
                                bytes));
    }
    if (n == 0)
      throw StorageError(DiagCode::IoError,
                         io_msg(ctx, "write made no progress", offset, left,
                                bytes));
    p += n;
    left -= static_cast<std::size_t>(n);
    offset += static_cast<std::uint64_t>(n);
  }
}

void fsync_all(IoEngine& io, int fd, const IoContext& ctx) {
  int retries = 0;
  for (;;) {
    if (io.fsync(fd) == 0) return;
    const int err = errno;
    if (err == EINTR) continue;
    if (transient_errno(err) && retries < kMaxTransientRetries) {
      OBS_COUNTER_INC("trace/storage/io/retries");
      backoff(retries++);
      continue;
    }
    if (transient_errno(err)) OBS_COUNTER_INC("trace/storage/io/gave_up");
    throw StorageError(DiagCode::IoError,
                       io_msg(ctx, std::strerror(err), 0, 0, 0));
  }
}

void fsync_parent_dir(IoEngine& io, const std::string& path) {
  const std::size_t slash = path.find_last_of('/');
  const std::string dir = slash == std::string::npos
                              ? std::string(".")
                              : path.substr(0, slash == 0 ? 1 : slash);
  const int fd = io.open(dir.c_str(), O_RDONLY | O_CLOEXEC, 0);
  if (fd < 0) return;  // best effort: some filesystems refuse dir opens
  (void)io.fsync(fd);  // EINVAL on exotic filesystems: also best effort
  (void)io.close(fd);
}

}  // namespace logstruct::trace::storage
