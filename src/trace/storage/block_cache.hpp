#pragma once

/// \file block_cache.hpp
/// Process-wide concurrent block cache over BlockStore readers.
///
/// One cache serves every open store; entries are keyed by the store's
/// generation id plus (column, block). Sixteen independently locked
/// shards each run strict LRU within a per-shard slice of the byte
/// budget. A hit (or a filled miss) returns a shared_ptr to the block's
/// buffer — that reference IS the pin: eviction only drops the cache's
/// own reference, so a reader's span stays valid for as long as it holds
/// the pointer, even under a tiny budget with heavy eviction.
///
/// Hit/miss/eviction totals feed the obs registry
/// (trace/storage/cache/*) and are mirrored in stats() for benches.

#include <atomic>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <unordered_map>

#include "trace/storage/block_store.hpp"
#include "trace/storage/format.hpp"

namespace logstruct::trace::storage {

/// A pinned, cached block: `bytes` valid bytes at data.get().
struct CachedBlock {
  std::shared_ptr<const char[]> data;
  std::uint32_t bytes = 0;
};

class BlockCache {
 public:
  static BlockCache& global();

  /// Fetch one block, reading through `store` on a miss. Thread-safe.
  CachedBlock get(const BlockStore& store, ColumnId col, std::uint32_t block);

  /// Replace the byte budget (0 = unbounded) and evict down to it.
  void set_budget(std::uint64_t bytes);

  /// Drop every entry belonging to a store generation (store teardown).
  void purge(std::uint64_t generation);

  struct Stats {
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t evictions = 0;
    std::uint64_t resident_bytes = 0;
  };
  [[nodiscard]] Stats stats() const;

  /// Zero the hit/miss/eviction totals (bench isolation); entries stay.
  void reset_stats();

 private:
  BlockCache() = default;

  struct Key {
    std::uint64_t generation;
    std::uint64_t slot;  // col << 32 | block
    bool operator==(const Key&) const = default;
  };
  struct KeyHash {
    std::size_t operator()(const Key& k) const {
      std::uint64_t h = k.generation * 0x9e3779b97f4a7c15ull;
      h ^= k.slot + 0x9e3779b97f4a7c15ull + (h << 6) + (h >> 2);
      return static_cast<std::size_t>(h);
    }
  };
  struct Entry {
    CachedBlock block;
    std::list<Key>::iterator lru_pos;
  };
  struct Shard {
    mutable std::mutex mutex;
    std::unordered_map<Key, Entry, KeyHash> map;
    std::list<Key> lru;  // front = most recent
    std::uint64_t bytes = 0;
  };

  static constexpr std::uint32_t kShards = 16;

  Shard& shard_for(const Key& k) {
    return shards_[KeyHash{}(k) % kShards];
  }
  /// Evict LRU entries until the shard fits its budget slice. Caller
  /// holds the shard lock; evicted buffers die here unless pinned.
  void evict_locked(Shard& shard, std::uint64_t budget);

  [[nodiscard]] std::uint64_t shard_budget() const {
    const std::uint64_t total = budget_.load(std::memory_order_relaxed);
    return total == 0 ? 0 : (total / kShards == 0 ? 1 : total / kShards);
  }

  Shard shards_[kShards];
  std::atomic<std::uint64_t> budget_{0};  // 0 = unbounded
  std::atomic<std::uint64_t> hits_{0};
  std::atomic<std::uint64_t> misses_{0};
  std::atomic<std::uint64_t> evictions_{0};
};

/// Monotonic generation ids for BlockStore instances (never reused).
std::uint64_t next_store_generation();

}  // namespace logstruct::trace::storage
