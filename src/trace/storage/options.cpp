#include "trace/storage/options.hpp"

#include <cstdlib>
#include <mutex>

#include "trace/storage/block_cache.hpp"

namespace logstruct::trace::storage {

namespace {

std::mutex g_mutex;

StorageOptions read_env_options() {
  StorageOptions opts;
  if (const char* kind = std::getenv("LOGSTRUCT_STORAGE")) {
    if (std::string(kind) == "blocked") opts.kind = BackendKind::Blocked;
  }
  if (const char* mb = std::getenv("LOGSTRUCT_CACHE_MB")) {
    char* end = nullptr;
    const long long v = std::strtoll(mb, &end, 10);
    if (end != mb && v >= 0)
      opts.cache_bytes = static_cast<std::uint64_t>(v) << 20;
  }
  if (const char* dir = std::getenv("LOGSTRUCT_STORAGE_DIR")) opts.dir = dir;
  return opts;
}

StorageOptions& stored_options() {
  static StorageOptions opts = [] {
    StorageOptions o = read_env_options();
    BlockCache::global().set_budget(o.cache_bytes);
    return o;
  }();
  return opts;
}

}  // namespace

StorageOptions default_options() {
  std::lock_guard<std::mutex> lock(g_mutex);
  return stored_options();
}

void set_default_options(const StorageOptions& opts) {
  std::lock_guard<std::mutex> lock(g_mutex);
  stored_options() = opts;
  BlockCache::global().set_budget(opts.cache_bytes);
}

std::string resolve_spill_dir(const StorageOptions& opts) {
  if (!opts.dir.empty()) return opts.dir;
  if (const char* tmp = std::getenv("TMPDIR")) {
    if (*tmp) return tmp;
  }
  return "/tmp";
}

}  // namespace logstruct::trace::storage
