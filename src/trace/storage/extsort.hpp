#pragma once

/// \file extsort.hpp
/// Bounded-RSS external sorter for the blocked freeze path.
///
/// Records are pushed in arbitrary order into a fixed-size run buffer;
/// a full buffer is sorted (parallel segment sort + pairwise merges on
/// the shared pool) and spilled as one run to an unlinked temp file.
/// finish() k-way-merges the runs through small per-run read buffers and
/// emits records in globally sorted order.
///
/// Determinism: the comparators used by freeze are total orders (every
/// key ends in a unique id), so the emitted order is unique regardless
/// of thread count, run boundaries, or buffer sizes. The tie-break on
/// run index below is belt and braces, not load-bearing.
///
/// A sorter whose input fits in a single run never touches the disk.

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <stdexcept>
#include <type_traits>
#include <utility>
#include <vector>

#include "trace/storage/io_engine.hpp"
#include "util/thread_pool.hpp"

#include <unistd.h>

namespace logstruct::trace::storage {

/// Display name used in I/O diagnostics for the unlinked spill file.
inline const std::string& spill_path_name() {
  static const std::string name = "<extsort-spill>";
  return name;
}

template <typename Rec, typename Less>
class ExternalSorter {
  static_assert(std::is_trivially_copyable_v<Rec>);

 public:
  ExternalSorter(std::size_t run_bytes, int threads, Less less = Less{})
      : run_records_(run_bytes / sizeof(Rec) < 1024
                         ? 1024
                         : run_bytes / sizeof(Rec)),
        threads_(util::resolve_threads(threads)),
        less_(less) {
    buf_.reserve(run_records_);
  }

  ~ExternalSorter() {
    if (file_ != nullptr) std::fclose(file_);
  }

  ExternalSorter(const ExternalSorter&) = delete;
  ExternalSorter& operator=(const ExternalSorter&) = delete;

  void push(const Rec& rec) {
    buf_.push_back(rec);
    if (buf_.size() >= run_records_) spill();
  }

  [[nodiscard]] std::size_t size() const {
    return total_ + buf_.size();
  }

  /// Sort-and-emit every pushed record, ascending by the comparator.
  /// Single use; the sorter is drained afterwards.
  template <typename Emit>
  void finish(Emit&& emit) {
    if (file_ == nullptr) {  // everything fits in RAM
      sort_buf();
      for (const Rec& rec : buf_) emit(rec);
      buf_.clear();
      buf_.shrink_to_fit();
      return;
    }
    spill();
    merge_runs(emit);
  }

 private:
  struct RunCursor {
    std::uint64_t file_offset;   // next unread byte of this run
    std::uint64_t remaining;     // records left on disk
    std::vector<Rec> buffer;
    std::size_t pos = 0;

    bool refill(IoEngine& io, int fd, std::size_t buf_records) {
      if (remaining == 0) return false;
      const std::size_t take =
          remaining < buf_records ? static_cast<std::size_t>(remaining)
                                  : buf_records;
      buffer.resize(take);
      IoContext ctx;
      ctx.op = "extsort run read";
      ctx.path = &spill_path_name();
      pread_all(io, fd, buffer.data(), take * sizeof(Rec), file_offset,
                ctx);
      file_offset += take * sizeof(Rec);
      remaining -= take;
      pos = 0;
      return true;
    }
  };

  void sort_buf() {
    const std::size_t n = buf_.size();
    const int t = threads_;
    if (t <= 1 || n < 8192) {
      std::sort(buf_.begin(), buf_.end(), less_);
      return;
    }
    // Sort t contiguous segments in parallel, then merge pairs; both
    // steps are order-deterministic for any thread count.
    std::vector<std::size_t> bounds(t + 1);
    for (int i = 0; i <= t; ++i)
      bounds[i] = n * static_cast<std::size_t>(i) / t;
    util::parallel_for(t, t, [&](std::int64_t i) {
      std::sort(buf_.begin() + bounds[i], buf_.begin() + bounds[i + 1],
                less_);
    });
    for (int width = 1; width < t; width *= 2) {
      for (int i = 0; i + width <= t; i += 2 * width) {
        const int hi = i + 2 * width < t ? i + 2 * width : t;
        std::inplace_merge(buf_.begin() + bounds[i],
                           buf_.begin() + bounds[i + width],
                           buf_.begin() + bounds[hi], less_);
      }
    }
  }

  void spill() {
    if (buf_.empty()) return;
    if (file_ == nullptr) {
      file_ = std::tmpfile();  // unlinked on creation: never leaks
      if (file_ == nullptr)
        throw std::runtime_error("extsort: tmpfile failed");
    }
    sort_buf();
    IoContext ctx;
    ctx.op = "extsort run write";
    ctx.path = &spill_path_name();
    pwrite_all(*io_, ::fileno(file_), buf_.data(),
               buf_.size() * sizeof(Rec), write_offset_, ctx);
    write_offset_ += buf_.size() * sizeof(Rec);
    run_records_per_run_.push_back(buf_.size());
    total_ += buf_.size();
    buf_.clear();
  }

  template <typename Emit>
  void merge_runs(Emit&& emit) {
    const int fd = ::fileno(file_);
    const std::size_t runs = run_records_per_run_.size();
    const std::size_t buf_records_raw = run_records_ / (runs + 1);
    const std::size_t buf_records =
        buf_records_raw < 256 ? 256 : buf_records_raw;

    std::vector<RunCursor> cursors(runs);
    std::uint64_t offset = 0;
    for (std::size_t r = 0; r < runs; ++r) {
      cursors[r].file_offset = offset;
      cursors[r].remaining = run_records_per_run_[r];
      offset += run_records_per_run_[r] * sizeof(Rec);
      cursors[r].refill(*io_, fd, buf_records);
    }

    // Binary min-heap of run indices, keyed by each run's head record.
    auto heap_less = [&](std::size_t a, std::size_t b) {
      const Rec& ra = cursors[a].buffer[cursors[a].pos];
      const Rec& rb = cursors[b].buffer[cursors[b].pos];
      if (less_(ra, rb)) return true;
      if (less_(rb, ra)) return false;
      return a < b;
    };
    std::vector<std::size_t> heap;
    heap.reserve(runs);
    auto sift_down = [&](std::size_t i) {
      for (;;) {
        std::size_t best = i;
        const std::size_t l = 2 * i + 1, r = 2 * i + 2;
        if (l < heap.size() && heap_less(heap[l], heap[best])) best = l;
        if (r < heap.size() && heap_less(heap[r], heap[best])) best = r;
        if (best == i) return;
        std::swap(heap[i], heap[best]);
        i = best;
      }
    };
    for (std::size_t r = 0; r < runs; ++r)
      if (!cursors[r].buffer.empty()) heap.push_back(r);
    for (std::size_t i = heap.size(); i-- > 0;) sift_down(i);

    while (!heap.empty()) {
      const std::size_t r = heap[0];
      RunCursor& cur = cursors[r];
      emit(cur.buffer[cur.pos]);
      ++cur.pos;
      if (cur.pos == cur.buffer.size() &&
          !cur.refill(*io_, fd, buf_records)) {
        heap[0] = heap.back();
        heap.pop_back();
      }
      if (!heap.empty()) sift_down(0);
    }
  }

  std::vector<Rec> buf_;
  std::size_t run_records_;
  int threads_;
  Less less_;
  IoEngine* io_ = &IoEngine::current();
  std::FILE* file_ = nullptr;
  std::uint64_t write_offset_ = 0;
  std::vector<std::uint64_t> run_records_per_run_;
  std::size_t total_ = 0;
};

}  // namespace logstruct::trace::storage
