#pragma once

/// \file column.hpp
/// Typed read access over blocked columns, and the backend-neutral view
/// the Trace accessors hand out.
///
/// Three pieces:
///  - PinnedSpan<T>: a contiguous range plus the shared_ptr that keeps
///    its backing buffer alive. For the mem backend the keepalive is
///    empty (the Trace owns the vector); for the blocked backend it pins
///    a cached block — or an owned copy when the range straddles blocks —
///    so eviction can never invalidate a span a reader still holds.
///  - BlockedColumn<T>: element reads over one column of a BlockStore.
///    get(i) runs through a small thread-local cursor table (direct
///    mapped, keyed by store generation + column + block) so sequential
///    scans touch the shared cache once per block, not once per element.
///  - ColumnView<T>: what accessors like Trace::events() return. Wraps
///    either a raw pointer (mem) or a BlockedColumn (blocked) behind
///    size()/operator[]/input iterators, so `for (const T& x : view)`
///    and indexed loops compile unchanged against both backends.

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <iterator>
#include <memory>
#include <type_traits>

#include "trace/storage/block_cache.hpp"

namespace logstruct::trace::storage {

template <typename T>
struct PinnedSpan {
  static_assert(std::is_trivially_copyable_v<T>);

  std::shared_ptr<const void> keepalive;
  const T* ptr = nullptr;
  std::size_t count = 0;

  [[nodiscard]] const T* begin() const { return ptr; }
  [[nodiscard]] const T* end() const { return ptr + count; }
  [[nodiscard]] std::size_t size() const { return count; }
  [[nodiscard]] bool empty() const { return count == 0; }
  [[nodiscard]] const T& front() const { return ptr[0]; }
  [[nodiscard]] const T& back() const { return ptr[count - 1]; }
  const T& operator[](std::size_t i) const { return ptr[i]; }
};

namespace detail {

/// Direct-mapped thread-local cursor: the last block each (store, column)
/// hash slot touched on this thread. The shared_ptr doubles as a pin, so
/// at most kCursorSlots blocks per thread are held against eviction.
struct CursorSlot {
  std::uint64_t generation = 0;  // 0 = empty (generations start at 1)
  std::uint64_t key = 0;         // col << 32 | block
  std::shared_ptr<const char[]> data;
};
inline constexpr std::size_t kCursorSlots = 8;

inline CursorSlot& cursor_slot(std::uint64_t generation, std::uint32_t col) {
  thread_local CursorSlot slots[kCursorSlots];
  return slots[(generation ^ col) & (kCursorSlots - 1)];
}

}  // namespace detail

template <typename T>
class BlockedColumn {
  static_assert(std::is_trivially_copyable_v<T>);

 public:
  BlockedColumn() = default;
  BlockedColumn(const BlockStore* store, ColumnId col)
      : store_(store),
        col_(col),
        size_(store->column_bytes(col) / sizeof(T)),
        per_block_(store->column_payload(col) >= sizeof(T)
                       ? store->column_payload(col) / sizeof(T)
                       : 1) {}

  [[nodiscard]] std::size_t size() const { return size_; }

  /// One element by value, through the thread-local cursor.
  [[nodiscard]] T get(std::size_t i) const {
    const std::size_t blk = i / per_block_;
    const std::uint64_t key =
        (static_cast<std::uint64_t>(col_) << 32) | blk;
    detail::CursorSlot& slot =
        detail::cursor_slot(store_->generation(), static_cast<std::uint32_t>(col_));
    if (slot.generation != store_->generation() || slot.key != key) {
      CachedBlock b = BlockCache::global().get(
          *store_, static_cast<ColumnId>(col_), static_cast<std::uint32_t>(blk));
      slot.data = std::move(b.data);
      slot.generation = store_->generation();
      slot.key = key;
    }
    T out;
    std::memcpy(&out, slot.data.get() + (i % per_block_) * sizeof(T),
                sizeof(T));
    return out;
  }

  /// Pin [lo, hi) as one contiguous span. A range inside a single block
  /// aliases the cached buffer; a straddling range is copied into an
  /// owned buffer (both stay valid while the span is held).
  [[nodiscard]] PinnedSpan<T> pin(std::size_t lo, std::size_t hi) const {
    const std::size_t count = hi - lo;
    if (count == 0) return {};
    const std::size_t first = lo / per_block_;
    const std::size_t last = (hi - 1) / per_block_;
    if (first == last) {
      CachedBlock b = BlockCache::global().get(
          *store_, col_, static_cast<std::uint32_t>(first));
      const T* base = reinterpret_cast<const T*>(b.data.get());
      return {std::shared_ptr<const void>(b.data, b.data.get()),
              base + (lo - first * per_block_), count};
    }
    std::shared_ptr<T[]> buf(new T[count]);
    std::size_t out = 0;
    for (std::size_t idx = lo; idx < hi;) {
      const std::size_t blk = idx / per_block_;
      const std::size_t off = idx % per_block_;
      const std::size_t room = per_block_ - off;
      const std::size_t take = room < hi - idx ? room : hi - idx;
      CachedBlock b = BlockCache::global().get(
          *store_, col_, static_cast<std::uint32_t>(blk));
      std::memcpy(buf.get() + out, b.data.get() + off * sizeof(T),
                  take * sizeof(T));
      out += take;
      idx += take;
    }
    const T* base = buf.get();
    return {std::shared_ptr<const void>(std::move(buf), base), base, count};
  }

  /// Visit the column as maximal contiguous chunks (one per block).
  template <typename Fn>
  void for_each_chunk(Fn&& fn) const {
    for (std::size_t base = 0; base < size_; base += per_block_) {
      const std::size_t n =
          per_block_ < size_ - base ? per_block_ : size_ - base;
      PinnedSpan<T> span = pin(base, base + n);
      fn(span.ptr, n, base);
    }
  }

 private:
  const BlockStore* store_ = nullptr;
  ColumnId col_ = ColumnId::Events;
  std::size_t size_ = 0;
  std::size_t per_block_ = 1;
};

template <typename T>
class ColumnView {
 public:
  ColumnView() = default;
  ColumnView(const T* data, std::size_t n) : mem_(data), size_(n) {}
  explicit ColumnView(const BlockedColumn<T>* col)
      : blocked_(col), size_(col->size()) {}

  [[nodiscard]] std::size_t size() const { return size_; }
  [[nodiscard]] bool empty() const { return size_ == 0; }
  T operator[](std::size_t i) const {
    if (mem_) [[likely]] return mem_[i];
    return blocked_get(i);
  }
  [[nodiscard]] T front() const { return (*this)[0]; }
  [[nodiscard]] T back() const { return (*this)[size_ - 1]; }

  class iterator {
   public:
    using iterator_category = std::input_iterator_tag;
    using value_type = T;
    using difference_type = std::ptrdiff_t;
    using pointer = const T*;
    using reference = T;

    iterator() = default;
    iterator(const ColumnView* view, std::size_t i) : view_(view), i_(i) {}
    reference operator*() const { return (*view_)[i_]; }
    iterator& operator++() {
      ++i_;
      return *this;
    }
    iterator operator++(int) {
      iterator copy = *this;
      ++i_;
      return copy;
    }
    bool operator==(const iterator& o) const { return i_ == o.i_; }
    bool operator!=(const iterator& o) const { return i_ != o.i_; }

   private:
    const ColumnView* view_ = nullptr;
    std::size_t i_ = 0;
  };

  [[nodiscard]] iterator begin() const { return {this, 0}; }
  [[nodiscard]] iterator end() const { return {this, size_}; }

  /// Visit the sequence as contiguous chunks: fn(ptr, count, base_index).
  template <typename Fn>
  void for_each_chunk(Fn&& fn) const {
    if (size_ == 0) return;
    if (mem_) {
      fn(mem_, size_, std::size_t{0});
      return;
    }
    blocked_->for_each_chunk(fn);
  }

 private:
  // Out of line so operator[]'s mem arm inlines to a bare load in hot
  // loops; the blocked arm pays one call on top of the cursor walk.
#if defined(__GNUC__) || defined(__clang__)
  __attribute__((noinline))
#endif
  T blocked_get(std::size_t i) const {
    return blocked_->get(i);
  }

  const T* mem_ = nullptr;
  const BlockedColumn<T>* blocked_ = nullptr;
  std::size_t size_ = 0;
};

}  // namespace logstruct::trace::storage
