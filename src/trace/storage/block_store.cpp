#include "trace/storage/block_store.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <stdexcept>

#include "trace/storage/block_cache.hpp"

namespace logstruct::trace::storage {

namespace {

[[noreturn]] void throw_errno(const std::string& what,
                              const std::string& path) {
  throw std::runtime_error("lsblk: " + what + " '" + path +
                           "': " + std::strerror(errno));
}

void pwrite_all(int fd, const void* data, std::size_t bytes,
                std::uint64_t offset, const std::string& path) {
  const char* p = static_cast<const char*>(data);
  while (bytes > 0) {
    const ssize_t n = ::pwrite(fd, p, bytes, static_cast<off_t>(offset));
    if (n < 0) {
      if (errno == EINTR) continue;
      throw_errno("write", path);
    }
    p += n;
    bytes -= static_cast<std::size_t>(n);
    offset += static_cast<std::uint64_t>(n);
  }
}

void pread_all(int fd, void* data, std::size_t bytes, std::uint64_t offset,
               const std::string& path) {
  char* p = static_cast<char*>(data);
  while (bytes > 0) {
    const ssize_t n = ::pread(fd, p, bytes, static_cast<off_t>(offset));
    if (n < 0) {
      if (errno == EINTR) continue;
      throw_errno("read", path);
    }
    if (n == 0) throw std::runtime_error("lsblk: short read '" + path + "'");
    p += n;
    bytes -= static_cast<std::size_t>(n);
    offset += static_cast<std::uint64_t>(n);
  }
}

}  // namespace

// ---------------------------------------------------------------- writer

BlockStoreWriter::BlockStoreWriter(const std::string& path,
                                   std::uint32_t block_bytes)
    : path_(path), block_bytes_(block_bytes) {
  if (block_bytes_ < 4096) block_bytes_ = 4096;
  fd_ = ::open(path.c_str(), O_CREAT | O_TRUNC | O_RDWR | O_CLOEXEC, 0644);
  if (fd_ < 0) throw_errno("create", path);
  FileHeader header;
  header.block_bytes = block_bytes_;
  write_raw(&header, sizeof(header));
}

BlockStoreWriter::~BlockStoreWriter() {
  if (fd_ >= 0) ::close(fd_);
}

void BlockStoreWriter::write_raw(const void* data, std::size_t bytes) {
  pwrite_all(fd_, data, bytes, file_pos_, path_);
  file_pos_ += bytes;
}

void BlockStoreWriter::set_elem_bytes(ColumnId col, std::uint32_t elem_bytes) {
  ColState& c = cols_[static_cast<std::uint32_t>(col)];
  if (elem_bytes == 0 || elem_bytes > block_bytes_)
    throw std::runtime_error("lsblk: bad element size for '" + path_ + "'");
  c.elem_bytes = elem_bytes;
  c.payload = block_bytes_ / elem_bytes * elem_bytes;
}

void BlockStoreWriter::append(ColumnId col, const void* data,
                              std::size_t bytes) {
  ColState& c = cols_[static_cast<std::uint32_t>(col)];
  if (c.payload == 0)
    throw std::runtime_error("lsblk: append before set_elem_bytes to '" +
                             path_ + "'");
  c.byte_size += bytes;
  const char* p = static_cast<const char*>(data);
  while (bytes > 0) {
    if (c.buffer.capacity() == 0) c.buffer.reserve(c.payload);
    const std::size_t room = c.payload - c.buffer.size();
    const std::size_t take = bytes < room ? bytes : room;
    c.buffer.insert(c.buffer.end(), p, p + take);
    p += take;
    bytes -= take;
    if (c.buffer.size() == c.payload) flush_block(c);
  }
}

void BlockStoreWriter::flush_block(ColState& col) {
  if (col.buffer.empty()) return;
  col.block_offsets.push_back(file_pos_);
  write_raw(col.buffer.data(), col.buffer.size());
  col.buffer.clear();
}

void BlockStoreWriter::finish(const std::string& metadata) {
  if (finished_) return;
  finished_ = true;
  for (ColState& c : cols_) flush_block(c);

  std::uint64_t offsets_offsets[kNumColumns] = {};
  for (std::uint32_t i = 0; i < kNumColumns; ++i) {
    ColState& c = cols_[i];
    if (c.block_offsets.empty()) continue;
    offsets_offsets[i] = file_pos_;
    write_raw(c.block_offsets.data(),
              c.block_offsets.size() * sizeof(std::uint64_t));
  }

  FileHeader header;
  header.block_bytes = block_bytes_;
  header.directory_offset = file_pos_;
  for (std::uint32_t i = 0; i < kNumColumns; ++i) {
    ColumnDesc desc;
    desc.id = i;
    desc.elem_bytes = cols_[i].elem_bytes;
    desc.byte_size = cols_[i].byte_size;
    desc.offsets_offset = offsets_offsets[i];
    write_raw(&desc, sizeof(desc));
  }

  header.meta_offset = file_pos_;
  header.meta_bytes = metadata.size();
  write_raw(metadata.data(), metadata.size());

  pwrite_all(fd_, &header, sizeof(header), 0, path_);
  ::close(fd_);
  fd_ = -1;
}

// ---------------------------------------------------------------- reader

BlockStore::BlockStore(const std::string& path)
    : path_(path), generation_(next_store_generation()) {
  fd_ = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd_ < 0) throw_errno("open", path);
  FileHeader header;
  pread_all(fd_, &header, sizeof(header), 0, path_);
  if (header.magic != kMagic)
    throw std::runtime_error("lsblk: bad magic in '" + path + "'");
  if (header.version != kFormatVersion)
    throw std::runtime_error("lsblk: unsupported version in '" + path + "'");
  if (header.num_columns != kNumColumns || header.block_bytes == 0)
    throw std::runtime_error("lsblk: corrupt header in '" + path + "'");
  block_bytes_ = header.block_bytes;

  std::uint64_t pos = header.directory_offset;
  for (std::uint32_t i = 0; i < kNumColumns; ++i) {
    ColumnDesc desc;
    pread_all(fd_, &desc, sizeof(desc), pos, path_);
    pos += sizeof(desc);
    if (desc.id != i)
      throw std::runtime_error("lsblk: corrupt directory in '" + path + "'");
    ColState& c = cols_[i];
    c.byte_size = desc.byte_size;
    c.elem_bytes = desc.elem_bytes;
    if (desc.byte_size == 0) continue;
    if (desc.elem_bytes == 0 || desc.elem_bytes > block_bytes_)
      throw std::runtime_error("lsblk: corrupt directory in '" + path + "'");
    c.payload = block_bytes_ / desc.elem_bytes * desc.elem_bytes;
    const std::uint64_t blocks =
        (desc.byte_size + c.payload - 1) / c.payload;
    c.block_offsets.resize(blocks);
    pread_all(fd_, c.block_offsets.data(), blocks * sizeof(std::uint64_t),
              desc.offsets_offset, path_);
  }

  metadata_.resize(header.meta_bytes);
  if (header.meta_bytes > 0)
    pread_all(fd_, metadata_.data(), header.meta_bytes, header.meta_offset,
              path_);
}

BlockStore::~BlockStore() {
  BlockCache::global().purge(generation_);
  if (fd_ >= 0) ::close(fd_);
}

void BlockStore::unlink_backing_file() { ::unlink(path_.c_str()); }

std::uint32_t BlockStore::block_size(ColumnId col,
                                     std::uint32_t block) const {
  const ColState& c = cols_[static_cast<std::uint32_t>(col)];
  const std::uint64_t begin = std::uint64_t{block} * c.payload;
  const std::uint64_t left = c.byte_size - begin;
  return left < c.payload ? static_cast<std::uint32_t>(left) : c.payload;
}

void BlockStore::read_block(ColumnId col, std::uint32_t block,
                            void* out) const {
  const ColState& c = cols_[static_cast<std::uint32_t>(col)];
  pread_all(fd_, out, block_size(col, block), c.block_offsets[block], path_);
}

}  // namespace logstruct::trace::storage
