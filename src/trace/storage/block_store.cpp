#include "trace/storage/block_store.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstddef>
#include <cstring>
#include <sstream>

#include "obs/obs.hpp"
#include "trace/storage/block_cache.hpp"
#include "util/crc32c.hpp"

namespace logstruct::trace::storage {

namespace {

std::string open_msg(const char* what, const std::string& path,
                     const std::string& why) {
  return "lsblk: " + std::string(what) + " '" + path + "': " + why;
}

std::string block_msg(const std::string& path, ColumnId col,
                      std::uint32_t block, std::uint64_t offset,
                      const std::string& why) {
  std::ostringstream os;
  os << "lsblk: block '" << path << "' col="
     << static_cast<std::uint32_t>(col) << " block=" << block
     << " offset=" << offset << ": " << why;
  return os.str();
}

}  // namespace

// ---------------------------------------------------------------- writer

BlockStoreWriter::BlockStoreWriter(const std::string& path,
                                   std::uint32_t block_bytes,
                                   std::uint32_t version)
    : io_(&IoEngine::current()),
      path_(path),
      block_bytes_(block_bytes),
      version_(version) {
  if (block_bytes_ < 4096) block_bytes_ = 4096;
  if (version_ != kFormatVersionV1 && version_ != kFormatVersion)
    throw StorageError(DiagCode::IoError,
                       open_msg("create", path, "unsupported writer version"));
  fd_ = io_->open(path.c_str(), O_CREAT | O_TRUNC | O_RDWR | O_CLOEXEC,
                  0644);
  if (fd_ < 0)
    throw StorageError(DiagCode::IoError,
                       open_msg("create", path, std::strerror(errno)));
  FileHeader header;
  header.version = version_;
  header.block_bytes = block_bytes_;
  write_raw(&header, sizeof(header));
}

BlockStoreWriter::~BlockStoreWriter() {
  if (fd_ >= 0) io_->close(fd_);
}

void BlockStoreWriter::write_raw(const void* data, std::size_t bytes) {
  IoContext ctx;
  ctx.op = "write";
  ctx.path = &path_;
  pwrite_all(*io_, fd_, data, bytes, file_pos_, ctx);
  file_pos_ += bytes;
}

void BlockStoreWriter::write_tail(const void* data, std::size_t bytes) {
  tail_crc_ = util::crc32c_extend(tail_crc_, data, bytes);
  write_raw(data, bytes);
}

void BlockStoreWriter::set_elem_bytes(ColumnId col, std::uint32_t elem_bytes) {
  ColState& c = cols_[static_cast<std::uint32_t>(col)];
  if (elem_bytes == 0 || elem_bytes > block_bytes_)
    throw StorageError(DiagCode::IoError,
                       open_msg("write", path_, "bad element size"));
  c.elem_bytes = elem_bytes;
  c.payload = block_bytes_ / elem_bytes * elem_bytes;
}

void BlockStoreWriter::append(ColumnId col, const void* data,
                              std::size_t bytes) {
  ColState& c = cols_[static_cast<std::uint32_t>(col)];
  if (c.payload == 0)
    throw StorageError(DiagCode::IoError,
                       open_msg("write", path_,
                                "append before set_elem_bytes"));
  c.byte_size += bytes;
  const char* p = static_cast<const char*>(data);
  while (bytes > 0) {
    if (c.buffer.capacity() == 0) c.buffer.reserve(c.payload);
    const std::size_t room = c.payload - c.buffer.size();
    const std::size_t take = bytes < room ? bytes : room;
    c.buffer.insert(c.buffer.end(), p, p + take);
    p += take;
    bytes -= take;
    if (c.buffer.size() == c.payload) flush_block(c);
  }
}

void BlockStoreWriter::flush_block(ColState& col) {
  if (col.buffer.empty()) return;
  col.block_offsets.push_back(file_pos_);
  if (version_ >= 2)
    col.block_crcs.push_back(
        util::crc32c(col.buffer.data(), col.buffer.size()));
  write_raw(col.buffer.data(), col.buffer.size());
  col.buffer.clear();
}

void BlockStoreWriter::finish(const std::string& metadata) {
  if (finished_) return;
  finished_ = true;
  for (ColState& c : cols_) flush_block(c);

  IoContext sync_ctx;
  sync_ctx.op = "commit";
  sync_ctx.path = &path_;

  // (1) Every data block durable before any pointer to it exists.
  fsync_all(*io_, fd_, sync_ctx);

  const std::uint64_t tail_offset = file_pos_;
  tail_crc_ = 0;

  std::uint64_t offsets_offsets[kNumColumns] = {};
  std::uint64_t crcs_offsets[kNumColumns] = {};
  for (std::uint32_t i = 0; i < kNumColumns; ++i) {
    ColState& c = cols_[i];
    if (c.block_offsets.empty()) continue;
    offsets_offsets[i] = file_pos_;
    write_tail(c.block_offsets.data(),
               c.block_offsets.size() * sizeof(std::uint64_t));
  }
  if (version_ >= 2) {
    for (std::uint32_t i = 0; i < kNumColumns; ++i) {
      ColState& c = cols_[i];
      if (c.block_crcs.empty()) continue;
      crcs_offsets[i] = file_pos_;
      write_tail(c.block_crcs.data(),
                 c.block_crcs.size() * sizeof(std::uint32_t));
    }
  }

  FileHeader header;
  header.version = version_;
  header.block_bytes = block_bytes_;
  header.directory_offset = file_pos_;
  for (std::uint32_t i = 0; i < kNumColumns; ++i) {
    if (version_ >= 2) {
      ColumnDescV2 desc;
      desc.id = i;
      desc.elem_bytes = cols_[i].elem_bytes;
      desc.byte_size = cols_[i].byte_size;
      desc.offsets_offset = offsets_offsets[i];
      desc.crcs_offset = crcs_offsets[i];
      write_tail(&desc, sizeof(desc));
    } else {
      ColumnDesc desc;
      desc.id = i;
      desc.elem_bytes = cols_[i].elem_bytes;
      desc.byte_size = cols_[i].byte_size;
      desc.offsets_offset = offsets_offsets[i];
      write_tail(&desc, sizeof(desc));
    }
  }

  header.meta_offset = file_pos_;
  header.meta_bytes = metadata.size();
  write_tail(metadata.data(), metadata.size());

  // (2) Tail + patched header durable before the commit footer: a
  // reader that sees the footer may trust everything it covers.
  IoContext hdr_ctx;
  hdr_ctx.op = "write header";
  hdr_ctx.path = &path_;
  pwrite_all(*io_, fd_, &header, sizeof(header), 0, hdr_ctx);
  fsync_all(*io_, fd_, sync_ctx);

  if (version_ >= 2) {
    CommitFooter footer;
    footer.version = version_;
    footer.header_crc = util::crc32c(&header, sizeof(header));
    footer.tail_offset = tail_offset;
    footer.file_bytes = file_pos_ + sizeof(CommitFooter);
    footer.tail_crc = tail_crc_;
    footer.footer_crc =
        util::crc32c(&footer, offsetof(CommitFooter, footer_crc));
    write_raw(&footer, sizeof(footer));
    fsync_all(*io_, fd_, sync_ctx);
  }

  // (3) The directory entry itself, for freshly created files.
  fsync_parent_dir(*io_, path_);
  io_->close(fd_);
  fd_ = -1;
}

// ---------------------------------------------------------------- reader

BlockStore::BlockStore(const std::string& path, const OpenOptions& options)
    : io_(&IoEngine::current()),
      path_(path),
      generation_(next_store_generation()) {
  if (!options.recover) {
    open_impl(options);
    salvageable_ = true;
    return;
  }
  try {
    open_impl(options);
    salvageable_ = true;
  } catch (const StorageError& e) {
    if (options.report != nullptr)
      options.report->add(e.code(), Severity::Fatal, e.what());
    salvageable_ = false;
  } catch (const std::exception& e) {
    if (options.report != nullptr)
      options.report->add(DiagCode::BadHeader, Severity::Fatal, e.what());
    salvageable_ = false;
  }
}

void BlockStore::open_impl(const OpenOptions& options) {
  fd_ = io_->open(path_.c_str(), O_RDONLY | O_CLOEXEC, 0);
  if (fd_ < 0)
    throw StorageError(DiagCode::IoError,
                       open_msg("open", path_, std::strerror(errno)));
  const std::int64_t fsize = io_->file_size(fd_);
  if (fsize < static_cast<std::int64_t>(sizeof(FileHeader)))
    throw StorageError(
        DiagCode::ContainerTruncated,
        open_msg("open", path_, "file shorter than the header"));

  IoContext hdr_ctx;
  hdr_ctx.op = "read header";
  hdr_ctx.path = &path_;
  FileHeader header;
  pread_all(*io_, fd_, &header, sizeof(header), 0, hdr_ctx);
  if (header.magic != kMagic)
    throw StorageError(DiagCode::BadHeader,
                       open_msg("open", path_, "bad magic"));
  if (header.version != kFormatVersionV1 && header.version != kFormatVersion)
    throw StorageError(DiagCode::BadHeader,
                       open_msg("open", path_, "unsupported version"));
  if (header.num_columns != kNumColumns || header.block_bytes == 0)
    throw StorageError(DiagCode::BadHeader,
                       open_msg("open", path_, "corrupt header"));
  version_ = header.version;
  block_bytes_ = header.block_bytes;
  if (header.directory_offset == 0 ||
      header.directory_offset > static_cast<std::uint64_t>(fsize))
    throw StorageError(
        DiagCode::ContainerTruncated,
        open_msg("open", path_,
                 "never finalized (torn mid-freeze?): no directory"));

  // --- v2 commit footer -------------------------------------------------
  std::uint64_t tail_offset = header.directory_offset;
  if (version_ >= 2) {
    const auto verify_footer = [&]() -> std::string {
      if (fsize < static_cast<std::int64_t>(sizeof(FileHeader) +
                                            sizeof(CommitFooter)))
        return "file too short for a footer";
      CommitFooter footer;
      IoContext ctx;
      ctx.op = "read footer";
      ctx.path = &path_;
      try {
        pread_all(*io_, fd_, &footer, sizeof(footer),
                  static_cast<std::uint64_t>(fsize) - sizeof(CommitFooter),
                  ctx);
      } catch (const std::exception& e) {
        return e.what();
      }
      if (footer.magic != kFooterMagic) return "footer magic missing";
      if (util::crc32c(&footer, offsetof(CommitFooter, footer_crc)) !=
          footer.footer_crc)
        return "footer checksum mismatch";
      if (footer.version != version_) return "footer version mismatch";
      if (footer.file_bytes != static_cast<std::uint64_t>(fsize))
        return "footer disagrees with file size";
      if (footer.header_crc != util::crc32c(&header, sizeof(header)))
        return "header checksum mismatch";
      if (footer.tail_offset >
          static_cast<std::uint64_t>(fsize) - sizeof(CommitFooter))
        return "footer tail offset out of range";
      std::uint64_t tail_bytes = static_cast<std::uint64_t>(fsize) -
                                 sizeof(CommitFooter) - footer.tail_offset;
      // Stream the tail CRC in bounded chunks: the tail carries the
      // metadata blob, which can be tens of MB on large traces, and the
      // open must not spike RSS by its full size.
      std::vector<char> chunk(
          static_cast<std::size_t>(std::min<std::uint64_t>(
              tail_bytes > 0 ? tail_bytes : 1, 1u << 20)));
      ctx.op = "read tail";
      std::uint32_t tail_crc = 0;
      std::uint64_t at = footer.tail_offset;
      try {
        while (tail_bytes > 0) {
          const std::size_t n = static_cast<std::size_t>(
              std::min<std::uint64_t>(tail_bytes, chunk.size()));
          pread_all(*io_, fd_, chunk.data(), n, at, ctx);
          tail_crc = util::crc32c_extend(tail_crc, chunk.data(), n);
          at += n;
          tail_bytes -= n;
        }
      } catch (const std::exception& e) {
        return e.what();
      }
      if (tail_crc != footer.tail_crc) return "tail checksum mismatch";
      tail_offset = footer.tail_offset;
      return {};
    };
    const std::string bad = verify_footer();
    if (bad.empty()) {
      footer_valid_ = true;
    } else if (!options.recover) {
      throw StorageError(DiagCode::ContainerTruncated,
                         open_msg("open", path_,
                                  "commit footer invalid (" + bad + ")"));
    } else {
      options.report->add(
          DiagCode::ContainerTruncated, Severity::Error,
          open_msg("open", path_,
                   "commit footer invalid (" + bad +
                       "); salvaging from the directory scan"));
      tail_offset = header.directory_offset;
    }
  }
  data_limit_ = tail_offset;

  // --- directory, offset tables, checksum tables ------------------------
  const std::size_t desc_bytes =
      version_ >= 2 ? sizeof(ColumnDescV2) : sizeof(ColumnDesc);
  if (header.directory_offset + kNumColumns * desc_bytes >
      static_cast<std::uint64_t>(fsize))
    throw StorageError(DiagCode::ContainerTruncated,
                       open_msg("open", path_, "directory out of range"));

  const auto corrupt_dir = [&](const char* why) -> StorageError {
    return StorageError(DiagCode::ContainerTruncated,
                        open_msg("open", path_,
                                 std::string("corrupt directory: ") + why));
  };

  std::uint64_t pos = header.directory_offset;
  IoContext dir_ctx;
  dir_ctx.op = "read directory";
  dir_ctx.path = &path_;
  for (std::uint32_t i = 0; i < kNumColumns; ++i) {
    ColumnDescV2 desc;
    if (version_ >= 2) {
      pread_all(*io_, fd_, &desc, sizeof(ColumnDescV2), pos, dir_ctx);
    } else {
      ColumnDesc v1;
      pread_all(*io_, fd_, &v1, sizeof(ColumnDesc), pos, dir_ctx);
      desc.id = v1.id;
      desc.elem_bytes = v1.elem_bytes;
      desc.byte_size = v1.byte_size;
      desc.offsets_offset = v1.offsets_offset;
      desc.crcs_offset = 0;
    }
    pos += desc_bytes;
    if (desc.id != i) throw corrupt_dir("column ids out of order");
    ColState& c = cols_[i];
    c.byte_size = desc.byte_size;
    c.elem_bytes = desc.elem_bytes;
    if (desc.byte_size == 0) continue;
    if (desc.elem_bytes == 0 || desc.elem_bytes > block_bytes_)
      throw corrupt_dir("element size out of range");
    c.payload = block_bytes_ / desc.elem_bytes * desc.elem_bytes;
    const std::uint64_t blocks =
        (desc.byte_size + c.payload - 1) / c.payload;
    if (desc.offsets_offset < sizeof(FileHeader) ||
        desc.offsets_offset + blocks * sizeof(std::uint64_t) >
            static_cast<std::uint64_t>(fsize))
      throw corrupt_dir("offset table out of range");
    c.block_offsets.resize(static_cast<std::size_t>(blocks));
    IoContext tab_ctx;
    tab_ctx.op = "read offset table";
    tab_ctx.path = &path_;
    tab_ctx.column = static_cast<std::int32_t>(i);
    pread_all(*io_, fd_, c.block_offsets.data(),
              blocks * sizeof(std::uint64_t), desc.offsets_offset, tab_ctx);
    if (version_ >= 2) {
      if (desc.crcs_offset < sizeof(FileHeader) ||
          desc.crcs_offset + blocks * sizeof(std::uint32_t) >
              static_cast<std::uint64_t>(fsize))
        throw corrupt_dir("checksum table out of range");
      c.block_crcs.resize(static_cast<std::size_t>(blocks));
      tab_ctx.op = "read checksum table";
      pread_all(*io_, fd_, c.block_crcs.data(),
                blocks * sizeof(std::uint32_t), desc.crcs_offset, tab_ctx);
      // Value-initialized (all zero): nothing is verified yet.
      c.verified.reset(
          new std::atomic<std::uint8_t>[static_cast<std::size_t>(blocks)]());
    }
    // Pre-quarantine blocks whose recorded offsets cannot be right: in
    // strict mode that is a corrupt directory; in recover mode only the
    // affected blocks are lost, not the file.
    c.quarantined.assign(static_cast<std::size_t>(blocks), 0);
    for (std::uint32_t b = 0; b < blocks; ++b) {
      const std::uint64_t off = c.block_offsets[b];
      const std::uint64_t size = block_size(static_cast<ColumnId>(i), b);
      if (off >= sizeof(FileHeader) && off + size <= data_limit_) continue;
      if (!options.recover) throw corrupt_dir("block offset out of range");
      c.quarantined[b] = 1;
      ++quarantined_count_;
      options.report->add(
          DiagCode::BlockUnreadable, Severity::Error,
          block_msg(path_, static_cast<ColumnId>(i), b, off,
                    "recorded offset out of range; block quarantined"));
    }
  }

  // --- metadata blob ----------------------------------------------------
  if (header.meta_offset + header.meta_bytes >
          static_cast<std::uint64_t>(fsize) ||
      (header.meta_bytes > 0 && header.meta_offset < sizeof(FileHeader)))
    throw StorageError(DiagCode::ContainerTruncated,
                       open_msg("open", path_, "metadata out of range"));
  metadata_.resize(header.meta_bytes);
  if (header.meta_bytes > 0) {
    IoContext meta_ctx;
    meta_ctx.op = "read metadata";
    meta_ctx.path = &path_;
    pread_all(*io_, fd_, metadata_.data(), header.meta_bytes,
              header.meta_offset, meta_ctx);
  }
}

BlockStore::~BlockStore() {
  BlockCache::global().purge(generation_);
  if (fd_ >= 0) io_->close(fd_);
}

void BlockStore::unlink_backing_file() { ::unlink(path_.c_str()); }

std::uint32_t BlockStore::block_size(ColumnId col,
                                     std::uint32_t block) const {
  const ColState& c = cols_[static_cast<std::uint32_t>(col)];
  const std::uint64_t begin = std::uint64_t{block} * c.payload;
  const std::uint64_t left = c.byte_size - begin;
  return left < c.payload ? static_cast<std::uint32_t>(left) : c.payload;
}

void BlockStore::read_block_checked(ColumnId col, std::uint32_t block,
                                    void* out, bool audit) const {
  const ColState& c = cols_[static_cast<std::uint32_t>(col)];
  const std::uint32_t size = block_size(col, block);
  const std::uint64_t offset = c.block_offsets[block];
  IoContext ctx;
  ctx.op = "read block";
  ctx.path = &path_;
  ctx.column = static_cast<std::int32_t>(col);
  ctx.block = static_cast<std::int64_t>(block);
  pread_all(*io_, fd_, out, size, offset, ctx);
  if (version_ < 2 || c.block_crcs.empty()) return;
  // Verify-once-per-open: the first read of each block pays the CRC;
  // later cache re-faults of a block that already verified serve the
  // same immutable committed bytes and skip it (a starved cache would
  // otherwise pay the full checksum rate on every eviction cycle).
  // Audit surfaces (verify_block / scan_blocks) always re-check.
  std::atomic<std::uint8_t>* verified = c.verified.get();
  if (!audit && verified != nullptr &&
      verified[block].load(std::memory_order_relaxed) != 0)
    return;
  const std::uint32_t want = c.block_crcs[block];
  if (util::crc32c(out, size) == want) {
    if (verified != nullptr)
      verified[block].store(1, std::memory_order_relaxed);
    return;
  }
  // One re-read: corruption picked up in flight heals; rot on the
  // platter does not (the fault engine's bit flips are offset-keyed for
  // exactly this reason).
  OBS_COUNTER_INC("trace/storage/io/retries");
  pread_all(*io_, fd_, out, size, offset, ctx);
  const std::uint32_t got = util::crc32c(out, size);
  if (got == want) {
    if (verified != nullptr)
      verified[block].store(1, std::memory_order_relaxed);
    return;
  }
  OBS_COUNTER_INC("trace/storage/io/gave_up");
  std::ostringstream why;
  why << "checksum mismatch (stored=0x" << std::hex << want
      << " computed=0x" << got << ")";
  throw StorageError(DiagCode::BlockChecksumMismatch,
                     block_msg(path_, col, block, offset, why.str()));
}

void BlockStore::read_block(ColumnId col, std::uint32_t block,
                            void* out) const {
  const ColState& c = cols_[static_cast<std::uint32_t>(col)];
  if (block < c.quarantined.size() && c.quarantined[block] != 0)
    throw StorageError(
        DiagCode::BlockChecksumMismatch,
        block_msg(path_, col, block,
                  block < c.block_offsets.size() ? c.block_offsets[block]
                                                 : 0,
                  "block is quarantined"));
  read_block_checked(col, block, out);
}

BlockStatus BlockStore::verify_block(ColumnId col,
                                     std::uint32_t block) const {
  std::vector<char> scratch(block_size(col, block));
  try {
    read_block_checked(col, block, scratch.data(), /*audit=*/true);
  } catch (const StorageError& e) {
    return e.code() == DiagCode::BlockChecksumMismatch
               ? BlockStatus::ChecksumMismatch
               : BlockStatus::Unreadable;
  }
  return checksums_present() ? BlockStatus::Ok : BlockStatus::ChecksumAbsent;
}

std::int64_t BlockStore::scan_blocks(RecoveryReport* report) {
  std::int64_t total = 0;
  for (std::uint32_t i = 0; i < kNumColumns; ++i) {
    ColState& c = cols_[i];
    const std::uint32_t blocks =
        static_cast<std::uint32_t>(c.block_offsets.size());
    if (c.quarantined.size() < blocks) c.quarantined.assign(blocks, 0);
    for (std::uint32_t b = 0; b < blocks; ++b) {
      if (c.quarantined[b] != 0) {
        ++total;
        continue;
      }
      std::vector<char> scratch(block_size(static_cast<ColumnId>(i), b));
      try {
        read_block_checked(static_cast<ColumnId>(i), b, scratch.data(),
                           /*audit=*/true);
        continue;
      } catch (const StorageError& e) {
        c.quarantined[b] = 1;
        ++total;
        if (report != nullptr) {
          const DiagCode code =
              e.code() == DiagCode::BlockChecksumMismatch
                  ? DiagCode::BlockChecksumMismatch
                  : DiagCode::BlockUnreadable;
          report->add(code, Severity::Error, e.what());
        }
      }
    }
  }
  quarantined_count_ = total;
  return total;
}

}  // namespace logstruct::trace::storage
