#include "trace/storage/block_cache.hpp"

#include "obs/obs.hpp"

namespace logstruct::trace::storage {

namespace {

/// Derived hit-rate gauge in basis points (9980 = 99.80%), refreshed
/// every 1024 lookups so the blocked-storage sweep's hit-rate claim is
/// scrapeable live over /metrics instead of only computed post-hoc in
/// the bench harness. Throttled: two extra relaxed loads per refresh,
/// nothing per ordinary lookup.
inline void maybe_publish_hit_rate(std::int64_t hits, std::int64_t misses) {
#if LOGSTRUCT_OBS
  const std::int64_t total = hits + misses;
  if (total == 0 || (total & 1023) != 0) return;
  OBS_GAUGE_SET("trace/storage/cache_hit_rate", hits * 10000 / total);
#else
  (void)hits;
  (void)misses;
#endif
}

}  // namespace

BlockCache& BlockCache::global() {
  static BlockCache cache;
  return cache;
}

std::uint64_t next_store_generation() {
  static std::atomic<std::uint64_t> next{1};
  return next.fetch_add(1, std::memory_order_relaxed);
}

CachedBlock BlockCache::get(const BlockStore& store, ColumnId col,
                            std::uint32_t block) {
  const Key key{store.generation(),
                (static_cast<std::uint64_t>(col) << 32) | block};
  Shard& shard = shard_for(key);
  {
    std::lock_guard<std::mutex> lock(shard.mutex);
    auto it = shard.map.find(key);
    if (it != shard.map.end()) {
      shard.lru.splice(shard.lru.begin(), shard.lru, it->second.lru_pos);
      const std::int64_t hits =
          hits_.fetch_add(1, std::memory_order_relaxed) + 1;
      OBS_COUNTER_INC("trace/storage/cache/hits");
      maybe_publish_hit_rate(hits, misses_.load(std::memory_order_relaxed));
      return it->second.block;
    }
  }

  // Miss: read outside the shard lock so concurrent misses on different
  // blocks of the same shard overlap their I/O.
  const std::uint32_t bytes = store.block_size(col, block);
  std::shared_ptr<char[]> buf(new char[bytes]);
  store.read_block(col, block, buf.get());
  CachedBlock filled{std::shared_ptr<const char[]>(std::move(buf)), bytes};
  const std::int64_t misses =
      misses_.fetch_add(1, std::memory_order_relaxed) + 1;
  OBS_COUNTER_INC("trace/storage/cache/misses");
  maybe_publish_hit_rate(hits_.load(std::memory_order_relaxed), misses);

  std::lock_guard<std::mutex> lock(shard.mutex);
  auto it = shard.map.find(key);
  if (it != shard.map.end()) {
    // Another thread filled it while we read; keep the cached copy.
    shard.lru.splice(shard.lru.begin(), shard.lru, it->second.lru_pos);
    return it->second.block;
  }
  shard.lru.push_front(key);
  shard.map.emplace(key, Entry{filled, shard.lru.begin()});
  shard.bytes += bytes;
  evict_locked(shard, shard_budget());
  return filled;
}

void BlockCache::evict_locked(Shard& shard, std::uint64_t budget) {
  if (budget == 0) return;  // unbounded
  while (shard.bytes > budget && shard.lru.size() > 1) {
    const Key victim = shard.lru.back();
    auto it = shard.map.find(victim);
    shard.bytes -= it->second.block.bytes;
    shard.map.erase(it);
    shard.lru.pop_back();
    evictions_.fetch_add(1, std::memory_order_relaxed);
    OBS_COUNTER_INC("trace/storage/cache/evictions");
  }
}

void BlockCache::set_budget(std::uint64_t bytes) {
  budget_.store(bytes, std::memory_order_relaxed);
  const std::uint64_t per_shard = shard_budget();
  for (Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mutex);
    evict_locked(shard, per_shard);
  }
}

void BlockCache::purge(std::uint64_t generation) {
  for (Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mutex);
    for (auto it = shard.lru.begin(); it != shard.lru.end();) {
      if (it->generation == generation) {
        auto entry = shard.map.find(*it);
        shard.bytes -= entry->second.block.bytes;
        shard.map.erase(entry);
        it = shard.lru.erase(it);
      } else {
        ++it;
      }
    }
  }
}

BlockCache::Stats BlockCache::stats() const {
  Stats s;
  s.hits = hits_.load(std::memory_order_relaxed);
  s.misses = misses_.load(std::memory_order_relaxed);
  s.evictions = evictions_.load(std::memory_order_relaxed);
  for (const Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mutex);
    s.resident_bytes += shard.bytes;
  }
  return s;
}

void BlockCache::reset_stats() {
  hits_.store(0, std::memory_order_relaxed);
  misses_.store(0, std::memory_order_relaxed);
  evictions_.store(0, std::memory_order_relaxed);
}

}  // namespace logstruct::trace::storage
